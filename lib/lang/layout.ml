module Region_attr = Numa_vm.Region_attr
module System = Numa_system.System

type obj_spec = {
  o_name : string;
  o_words : int;
  o_sharing : Region_attr.sharing;
  o_owner : int option;
}

let obj ?owner ~name ~words ~sharing () =
  if words <= 0 then invalid_arg "Layout.obj: words must be positive";
  { o_name = name; o_words = words; o_sharing = sharing; o_owner = owner }

type placement = { p_obj : obj_spec; p_region : string; p_offset_words : int }

type planned_region = {
  r_name : string;
  r_sharing : Region_attr.sharing;
  r_words : int;
}

type plan = { regions : planned_region list; placements : placement list }

let naive objects =
  let offset = ref 0 in
  let placements =
    List.map
      (fun o ->
        let p = { p_obj = o; p_region = "data"; p_offset_words = !offset } in
        offset := !offset + o.o_words;
        p)
      objects
  in
  {
    regions =
      [
        {
          r_name = "data";
          r_sharing = Region_attr.Declared_write_shared;
          r_words = max 1 !offset;
        };
      ];
    placements;
  }

let round_up_to words page_words = (words + page_words - 1) / page_words * page_words

(* Group key: private objects split per owner; everything else by class. *)
type group_key = G_private of int option | G_read_shared | G_write_shared

let group_of o =
  match o.o_sharing with
  | Region_attr.Declared_private -> G_private o.o_owner
  | Region_attr.Declared_read_shared -> G_read_shared
  | Region_attr.Declared_write_shared -> G_write_shared

let group_name = function
  | G_private (Some t) -> Printf.sprintf "private.%d" t
  | G_private None -> "private"
  | G_read_shared -> "read-shared"
  | G_write_shared -> "write-shared"

let group_sharing = function
  | G_private _ -> Region_attr.Declared_private
  | G_read_shared -> Region_attr.Declared_read_shared
  | G_write_shared -> Region_attr.Declared_write_shared

let segregated ~page_words ?(pad_write_shared = true) objects =
  if page_words <= 0 then invalid_arg "Layout.segregated: page size must be positive";
  (* Stable grouping in first-appearance order. *)
  let order = ref [] in
  let members = Hashtbl.create 8 in
  List.iter
    (fun o ->
      let g = group_of o in
      if not (Hashtbl.mem members g) then begin
        order := g :: !order;
        Hashtbl.replace members g []
      end;
      Hashtbl.replace members g (o :: Hashtbl.find members g))
    objects;
  let groups = List.rev !order in
  let regions = ref [] and placements = ref [] in
  List.iter
    (fun g ->
      let objs = List.rev (Hashtbl.find members g) in
      let name = group_name g in
      let offset = ref 0 in
      List.iter
        (fun o ->
          (* Writably-shared objects get page-aligned starts so they do not
             interfere with each other either. *)
          if pad_write_shared && g = G_write_shared then
            offset := round_up_to !offset page_words;
          placements := { p_obj = o; p_region = name; p_offset_words = !offset } :: !placements;
          offset := !offset + o.o_words)
        objs;
      regions :=
        {
          r_name = name;
          r_sharing = group_sharing g;
          r_words = max 1 (round_up_to !offset page_words);
        }
        :: !regions)
    groups;
  { regions = List.rev !regions; placements = List.rev !placements }

type located = {
  l_base_word : int;
  l_words : int;
  l_arr_base_vpage : int;
  l_words_per_page : int;
}

let materialise sys plan =
  let config = System.config sys in
  let words_per_page = config.Numa_machine.Config.page_size_words in
  let bases = Hashtbl.create 8 in
  List.iter
    (fun r ->
      let pages = (r.r_words + words_per_page - 1) / words_per_page in
      let region =
        System.alloc_region sys ~name:("layout." ^ r.r_name) ~kind:Region_attr.Data
          ~sharing:r.r_sharing ~pages ()
      in
      Hashtbl.replace bases r.r_name region.System.base_vpage)
    plan.regions;
  let located = Hashtbl.create 16 in
  List.iter
    (fun p ->
      match Hashtbl.find_opt bases p.p_region with
      | None -> invalid_arg "Layout.materialise: placement in unknown region"
      | Some base ->
          Hashtbl.replace located p.p_obj.o_name
            {
              l_base_word = p.p_offset_words;
              l_words = p.p_obj.o_words;
              l_arr_base_vpage = base;
              l_words_per_page = words_per_page;
            })
    plan.placements;
  located

let vpage_of_word l i =
  if i < 0 || i >= l.l_words then invalid_arg "Layout.vpage_of_word: out of range";
  l.l_arr_base_vpage + ((l.l_base_word + i) / l.l_words_per_page)

let describe plan =
  let buf = Buffer.create 256 in
  List.iter
    (fun r ->
      Printf.bprintf buf "region %-16s %6d words\n" r.r_name r.r_words;
      List.iter
        (fun p ->
          if p.p_region = r.r_name then
            Printf.bprintf buf "  +%-6d %-24s (%d words)\n" p.p_offset_words
              p.p_obj.o_name p.p_obj.o_words)
        plan.placements)
    plan.regions;
  Buffer.contents buf
