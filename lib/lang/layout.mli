(** The language-processor layout tool the paper calls for.

    Section 4.2: "Not all false sharing is explicit in application source
    code ... Loaders arrange data segments without regard to what objects
    are near to and far from each other", and section 5 asks what language
    processors can do to automate the reduction of false sharing. This
    module is that tool for our simulated programs: given the program's
    objects with their declared sharing, it produces a page-level data
    layout.

    Two strategies are provided:

    - {!naive} mimics a 1989 loader: every object packed into one data
      segment in declaration order, no padding. Objects with different
      sharing classes share pages, so a single writably-shared object can
      drag its page-mates into global memory.
    - {!segregated} is the automated version of the paper's manual fix:
      objects are grouped by sharing class (private objects further
      grouped per owning thread), each group starts on a fresh page, and
      writably-shared objects are additionally padded apart so they do not
      interfere with each other. *)

type obj_spec = {
  o_name : string;
  o_words : int;
  o_sharing : Numa_vm.Region_attr.sharing;
  o_owner : int option;
      (** owning thread for private objects, when known; used to give each
          thread its own private pages *)
}

val obj :
  ?owner:int -> name:string -> words:int -> sharing:Numa_vm.Region_attr.sharing -> unit ->
  obj_spec

type placement = {
  p_obj : obj_spec;
  p_region : string;  (** name of the region the object landed in *)
  p_offset_words : int;  (** word offset within that region *)
}

type planned_region = {
  r_name : string;
  r_sharing : Numa_vm.Region_attr.sharing;  (** declared sharing of the region *)
  r_words : int;  (** size including padding *)
}

type plan = { regions : planned_region list; placements : placement list }

val naive : obj_spec list -> plan
(** One region ("data"), declaration order, declared write-shared (the
    loader knows nothing). *)

val segregated : page_words:int -> ?pad_write_shared:bool -> obj_spec list -> plan
(** Group by class and owner; every group page-aligned. With
    [pad_write_shared] (default true) each writably-shared object also
    starts on its own page. Raises [Invalid_argument] on a non-positive
    page size. *)

type located = { l_base_word : int; l_words : int; l_arr_base_vpage : int; l_words_per_page : int }

val materialise :
  Numa_system.System.t -> plan -> (string, located) Hashtbl.t
(** Allocate the plan's regions in the system's task and return, for each
    object, where it lives: the object's first word's page is
    [l_arr_base_vpage + l_base_word / l_words_per_page]. *)

val vpage_of_word : located -> int -> int
(** Virtual page holding the object's [i]-th word. *)

val describe : plan -> string
(** Human-readable layout listing: region sizes and object placements. *)
