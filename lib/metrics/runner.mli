(** Drives applications through the simulator under the measurement
    protocol of section 3.1. *)

open Numa_machine

type run_spec = {
  policy : Numa_system.System.policy_spec;
  n_cpus : int;
  nthreads : int;
  scale : float;
  seed : int64;
  scheduler : Numa_sim.Engine.scheduler_mode;
  unix_master : bool;
  config_tweak : Config.t -> Config.t;
      (** applied to the ACE base configuration; identity for the paper's
          machine, used by the G/L and page-size ablations *)
  faults : Numa_faults.Plan.t;
      (** deterministic fault schedule for the measured run; the T_global
          and T_local baselines of {!measure} always run fault-free *)
  paranoid : bool;  (** audit protocol invariants from the daemon tick *)
  profiling : bool;
      (** attach the simulated-time profiler; measured reports then carry
          a [profile] section (deterministic, so safe in golden JSON) *)
  victim : Numa_vm.Pageout.victim;
      (** pageout victim-selection policy (default [Clock]); only matters
          under memory pressure *)
  pt_mode : Pt.mode;
      (** page-table materialisation (default [Off] = free translation);
          applied to the measured run {e and} both baselines, so gamma
          under [Shared]/[Replicated _] compares like with like *)
}

val default_spec : run_spec
(** Move-limit(4), 7 CPUs, 7 threads, scale 1.0, affinity scheduling, no
    faults. *)

val config_for : run_spec -> n_cpus:int -> Config.t
(** The machine configuration a spec runs on: the ACE at [n_cpus]
    processors with the spec's tweak applied. *)

val run : Numa_apps.App_sig.t -> run_spec -> Numa_system.Report.t
(** One run: build a fresh system, set the application up, run it. *)

type measurement = {
  app_name : string;
  times : Model.times;  (** user times in seconds *)
  gl : float;  (** the G/L ratio used for this program's model *)
  alpha : float;  (** equation 4 *)
  beta : float;  (** equation 5 *)
  gamma : float;  (** equation 1 *)
  r_numa : Numa_system.Report.t;
  r_global : Numa_system.Report.t;
  r_local : Numa_system.Report.t;
}

val measure : Numa_apps.App_sig.t -> run_spec -> measurement
(** The paper's three-run protocol: T_numa under [spec]'s policy, T_global
    under the all-global policy, and T_local with one thread on a one-CPU
    machine; then the derived model parameters. [spec.policy] is the policy
    measured as "numa". *)

val measure_many :
  ?jobs:int -> Numa_apps.App_sig.t list -> run_spec -> measurement list
(** {!measure} for each application, distributed over [jobs] domains
    ({!Parallel.map}); results are in application order and identical to
    the sequential ones. *)

val times_to_json : Model.times -> Numa_obs.Json.t

val measurement_to_json : measurement -> Numa_obs.Json.t
(** The full three-run measurement — model parameters plus all three
    {!Numa_system.Report.to_json} reports — as one JSON object, the record
    format the benchmark harness writes. *)

val app_gl : Numa_apps.App_sig.t -> Config.t -> float
(** G/L for the program's reference mix: the fetch ratio (2.3) for
    fetch-dominated programs, the 45%-store mix (~2.0) otherwise —
    Table 3, footnote 3. *)
