(** The pressure sweep: every Table 4 application run with its logical-page
    pool shrunk to a fraction of its working set, so the pageout daemon and
    the per-frame paging state machine carry the run.

    Each application is first run with ample memory to price the
    pressure-free machine and measure its working set (the pages the final
    placement sweep reports as touched); each variant then re-runs it on a
    machine whose pool is the working set divided by the variant's ratio,
    under one of the two victim policies, optionally with a frame squeeze
    injected on top (the chaos interaction). Every pressured run is
    paranoid, so the protocol {e and} per-frame paging invariants are
    audited from the daemon tick while the pager is busiest; the sweep
    reports the total violation count so a regression fails loudly. *)

type variant = {
  ratio : int;  (** working-set / RAM; 1 = just fits, 8 = severe *)
  victim : Numa_vm.Pageout.victim;
  squeeze : bool;  (** also inject a 50% frame squeeze on node 0 at 5 ms *)
}

val variant_name : variant -> string
(** e.g. ["4x/clock+squeeze"]. *)

val default_variants : unit -> variant list
(** Ratios 1, 2, 4, 8 under both victim policies, plus the squeeze
    interaction at ratio 4. *)

type cell = {
  app_name : string;
  ram_pages : int;  (** the shrunk pool the run got *)
  footprint_pages : int;  (** working set measured on the ample run *)
  time_s : float;  (** user + system seconds — pressure's cost is kernel work *)
  slowdown : float;  (** [time_s] over the ample-memory run's *)
  page_ins : int;
  evictions : int;
  writebacks_started : int;  (** async, from the daemon tick *)
  sync_writebacks : int;  (** paid inline by evictions of dirty pages *)
  oom_faults : int;  (** faults the pager could not rescue; 0 = healthy *)
  invariant_violations : int;
  r : Numa_system.Report.t;
}

type row = {
  variant : variant;
  cells : cell list;  (** one per app, in app order *)
  mean_slowdown : float;
  page_ins : int;
  evictions : int;
  writebacks_started : int;
  sync_writebacks : int;
  oom_faults : int;
  invariant_checks : int;
  invariant_violations : int;  (** 0 = every audit passed under pressure *)
}

val run :
  ?jobs:int ->
  ?apps:Numa_apps.App_sig.t list ->
  ?variants:variant list ->
  ?spec:Runner.run_spec ->
  unit ->
  row list
(** Measure the [variants] x [apps] matrix through {!Parallel.map}
    ([spec]'s faults/victim/config_tweak are the base; each run layers its
    variant's pool shrink, victim and optional squeeze plan on top and
    forces [paranoid]). Rows come back in variant order. Defaults:
    {!default_variants} against the Table 4 set. [Invalid_argument] if
    [apps] or [variants] is empty or a ratio is < 1. *)

val total_violations : row list -> int
val total_oom : row list -> int

val render : topology:string -> row list -> string
(** Text table: per-app slowdown columns plus paging and violation totals,
    one row per variant in matrix order. *)

val to_json : topology:string -> row list -> Numa_obs.Json.t
(** The whole sweep, including every cell's full report — the artifact the
    CI smoke job uploads. *)
