open Numa_util
module Report = Numa_system.Report
module Sys_ = Numa_system.System
module Config = Numa_machine.Config
module Plan = Numa_faults.Plan

(* The slate: the paper's policy, both baselines it is judged against, and
   the topology-aware variant — enough to show the tail-latency ordering
   without pricing every shipped policy. *)
let default_policies () =
  [
    Sys_.Move_limit { threshold = 4 };
    Sys_.All_global;
    Sys_.Never_pin;
    Sys_.Bandwidth_aware { threshold = 4 };
  ]

let default_topologies () = [ "ace"; "multi-socket"; "butterfly" ]

(* Node 1 drops out at 5 ms of simulated time — mid-warmup, so the drain
   and re-placement storm lands before arrivals and the serving tail shows
   steady-state life on the shrunken machine, not the drain transient. *)
let offline_plan () =
  match Plan.of_string "node-offline:1@5" with
  | Ok plan -> plan
  | Error msg -> invalid_arg ("Serve_sweep.offline_plan: " ^ msg)

type cell = {
  policy : Sys_.policy_spec;
  faulted : bool;  (** ran under {!offline_plan}, not fault-free *)
  serving : Report.serving;
  user_s : float;
  invariant_checks : int;
  invariant_violations : int;
  r : Report.t;
}

type row = {
  topology : string;
  cells : cell list;  (** one per policy, fault-free, in slate order *)
  offline : cell;  (** the default policy with node 1 offlined mid-warmup *)
  p99_spread : float;
      (** worst over best fault-free p99 — the tail-latency gap placement
          policy alone opens on this machine *)
}

let robustness_of_report (r : Report.t) =
  match r.Report.robustness with
  | Some rb -> (rb.Report.invariant_checks, rb.Report.invariant_violations)
  | None -> (0, 0)

let serving_of_report ~policy (r : Report.t) =
  match r.Report.serving with
  | Some s -> s
  | None ->
      invalid_arg
        (Printf.sprintf
           "Serve_sweep: run under %s produced no serving section (not a serve app?)"
           (Sys_.policy_spec_name policy))

let topology_tweak ~spec ~topology c =
  match Config.of_topology_name ~n_cpus:c.Config.n_cpus topology with
  | Some c -> spec.Runner.config_tweak c
  | None -> invalid_arg (Printf.sprintf "Serve_sweep: unknown topology %S" topology)

let cell_of_run ~policy ~faulted (r : Report.t) =
  let invariant_checks, invariant_violations = robustness_of_report r in
  {
    policy;
    faulted;
    serving = serving_of_report ~policy r;
    user_s = Report.total_user_s r;
    invariant_checks;
    invariant_violations;
    r;
  }

let run ?jobs ?app ?policies ?topologies ?(spec = Runner.default_spec) () =
  let app = match app with Some a -> a | None -> Numa_apps.Serve.app in
  let policies = match policies with Some l -> l | None -> default_policies () in
  let topologies =
    match topologies with Some l -> l | None -> default_topologies ()
  in
  if policies = [] then invalid_arg "Serve_sweep.run: no policies";
  if topologies = [] then invalid_arg "Serve_sweep.run: no topologies";
  (* The whole grid fans out at once: per topology, every policy fault-free
     plus the default policy with a node offlined. Every run is paranoid —
     a tail measured on an incoherent protocol would be worthless — and
     open-loop arrivals make the cells comparable: the offered load is
     identical everywhere, only the queues differ. *)
  let offline = offline_plan () in
  let jobs_list =
    List.concat_map
      (fun topology ->
        List.map (fun p -> (topology, p, false)) policies
        @ [ (topology, List.hd policies, true) ])
      topologies
  in
  let measured =
    Parallel.map ?jobs
      (fun (topology, policy, faulted) ->
        let r =
          Runner.run app
            {
              spec with
              Runner.policy;
              config_tweak = topology_tweak ~spec ~topology;
              faults = (if faulted then offline else Plan.empty);
              paranoid = true;
            }
        in
        cell_of_run ~policy ~faulted r)
      jobs_list
  in
  let rec group topologies measured =
    match topologies with
    | [] -> []
    | topology :: rest ->
        let n = List.length policies + 1 in
        let mine = List.filteri (fun i _ -> i < n) measured in
        let remaining = List.filteri (fun i _ -> i >= n) measured in
        let cells = List.filter (fun c -> not c.faulted) mine in
        let offline = List.find (fun c -> c.faulted) mine in
        let p99s =
          List.map (fun c -> float_of_int c.serving.Report.p99_us) cells
        in
        let best = List.fold_left Float.min infinity p99s in
        let worst = List.fold_left Float.max 0. p99s in
        {
          topology;
          cells;
          offline;
          p99_spread = (if best > 0. then worst /. best else nan);
        }
        :: group rest remaining
  in
  group topologies measured

let all_cells rows =
  List.concat_map (fun row -> row.cells @ [ row.offline ]) rows

let total_violations rows =
  List.fold_left (fun acc c -> acc + c.invariant_violations) 0 (all_cells rows)

let cell_label c =
  Sys_.policy_spec_name c.policy ^ if c.faulted then " +node-offline" else ""

let render ~scale rows =
  let table =
    Text_table.create
      ~columns:
        [
          ("Topology", Text_table.Left);
          ("Policy", Text_table.Left);
          ("mean us", Text_table.Right);
          ("p50", Text_table.Right);
          ("p95", Text_table.Right);
          ("p99", Text_table.Right);
          ("p99.9", Text_table.Right);
          ("max", Text_table.Right);
          ("queue p99", Text_table.Right);
          ("req/s", Text_table.Right);
          ("violations", Text_table.Right);
        ]
  in
  List.iter
    (fun row ->
      List.iter
        (fun c ->
          let s = c.serving in
          Text_table.add_row table
            [
              row.topology;
              cell_label c;
              Printf.sprintf "%.1f" s.Report.mean_us;
              Text_table.cell_int s.Report.p50_us;
              Text_table.cell_int s.Report.p95_us;
              Text_table.cell_int s.Report.p99_us;
              Text_table.cell_int s.Report.p999_us;
              Text_table.cell_int s.Report.max_us;
              Text_table.cell_int s.Report.queue_p99_us;
              Printf.sprintf "%.0f" s.Report.throughput_rps;
              Text_table.cell_int c.invariant_violations;
            ])
        (row.cells @ [ row.offline ]))
    rows;
  let spreads =
    String.concat ", "
      (List.map
         (fun row -> Printf.sprintf "%s %.1fx" row.topology row.p99_spread)
         rows)
  in
  Printf.sprintf
    "Serve sweep at scale %g: open-loop request latency (microseconds) per \
     placement policy and machine; identical offered load in every cell, so \
     the spread is pure policy. p99 spread (worst/best fault-free policy): \
     %s. %d invariant violations across the grid.\n%s"
    scale spreads (total_violations rows) (Text_table.render table)

let serving_to_json (s : Report.serving) : Numa_obs.Json.t =
  let open Numa_obs.Json in
  Obj
    [
      ("requests", Int s.Report.requests);
      ("throughput_rps", Float s.Report.throughput_rps);
      ("mean_us", Float s.Report.mean_us);
      ("p50_us", Int s.Report.p50_us);
      ("p95_us", Int s.Report.p95_us);
      ("p99_us", Int s.Report.p99_us);
      ("p999_us", Int s.Report.p999_us);
      ("max_us", Int s.Report.max_us);
      ("queue_mean_us", Float s.Report.queue_mean_us);
      ("queue_p99_us", Int s.Report.queue_p99_us);
    ]

let to_json rows : Numa_obs.Json.t =
  let open Numa_obs.Json in
  let cell_json c =
    Obj
      [
        ("policy", String (Sys_.policy_spec_name c.policy));
        ("faulted", Bool c.faulted);
        ("user_s", Float c.user_s);
        ("latency", serving_to_json c.serving);
        ("invariant_checks", Int c.invariant_checks);
        ("invariant_violations", Int c.invariant_violations);
        ("report", Report.to_json c.r);
      ]
  in
  Obj
    [
      ("total_violations", Int (total_violations rows));
      ( "topologies",
        List
          (List.map
             (fun row ->
               Obj
                 [
                   ("topology", String row.topology);
                   ("p99_spread", Float row.p99_spread);
                   ("policies", List (List.map cell_json row.cells));
                   ("node_offline", cell_json row.offline);
                 ])
             rows) );
    ]
