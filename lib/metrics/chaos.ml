open Numa_util
module Sys_ = Numa_system.System
module Plan = Numa_faults.Plan

type scenario = { name : string; plan : Plan.t }

let scenario name spec =
  match Plan.of_string spec with
  | Ok plan -> { name; plan }
  | Error msg -> invalid_arg (Printf.sprintf "Chaos.scenario %s: %s" name msg)

(* The default fault matrix. Times are milliseconds of simulated time; the
   Table 4 programs run for a few hundred, so everything lands early enough
   to shape most of the run. Every plan fits a machine with two CPU nodes,
   which is what the CI smoke corner provides. *)
let default_scenarios () =
  [
    scenario "healthy" "";
    scenario "node-offline" "node-offline:1@5";
    scenario "node-flap" "node-offline:1@5,node-online:1@40";
    scenario "link-degrade" "link-degrade:0:1:8@5..80";
    scenario "frame-squeeze" "frame-squeeze:0:0.25@5,frame-squeeze:1:0.25@5";
    scenario "spurious-shootdowns" "spurious-shootdown:0.5";
    scenario "storm"
      "node-offline:1@5,frame-squeeze:0:0.5@10,link-degrade:0:1:4@5..60,\
       spurious-shootdown:0.2";
  ]

type cell = {
  app_name : string;
  gamma : float;  (** faulted T_numa over the {e intact} machine's T_local *)
  user_s : float;
  r : Numa_system.Report.t;  (** the faulted run's report *)
}

type row = {
  scenario : scenario;
  cells : cell list;
  mean_gamma : float;
  faults_injected : int;
  node_drains : int;
  drained_pages : int;
  reclaim_retries : int;
  spurious_shootdowns : int;
  invariant_checks : int;
  invariant_violations : int;
}

let mean xs =
  match xs with
  | [] -> nan
  | _ -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let sum_robustness cells f =
  List.fold_left
    (fun acc c ->
      match c.r.Numa_system.Report.robustness with
      | None -> acc
      | Some rb -> acc + f rb)
    0 cells

let run ?jobs ?apps ?scenarios ?(spec = Runner.default_spec) () =
  let apps = match apps with Some l -> l | None -> Numa_apps.Registry.table4 in
  let scenarios =
    match scenarios with Some l -> l | None -> default_scenarios ()
  in
  if apps = [] then invalid_arg "Chaos.run: no apps";
  if scenarios = [] then invalid_arg "Chaos.run: no scenarios";
  (* One clean T_local per app prices the intact machine; then the whole
     scenario x app product fans out. Every faulted run is paranoid, so the
     invariant checker rides along with every injected fault batch AND the
     daemon tick — gamma numbers from a run that went incoherent would be
     worthless. *)
  let locals =
    Parallel.map ?jobs
      (fun app ->
        Runner.run app
          {
            spec with
            Runner.n_cpus = 1;
            nthreads = 1;
            faults = Plan.empty;
            paranoid = false;
          })
      apps
  in
  let t_local = List.map Numa_system.Report.total_user_s locals in
  let jobs_list =
    List.concat_map (fun s -> List.map (fun app -> (s, app)) apps) scenarios
  in
  let measured =
    Parallel.map ?jobs
      (fun (s, app) ->
        Runner.run app { spec with Runner.faults = s.plan; paranoid = true })
      jobs_list
  in
  let rec group scenarios measured =
    match scenarios with
    | [] -> []
    | s :: rest ->
        let n = List.length apps in
        let rs = List.filteri (fun i _ -> i < n) measured in
        let remaining = List.filteri (fun i _ -> i >= n) measured in
        let cells =
          List.map2
            (fun (app, tl) r ->
              let user_s = Numa_system.Report.total_user_s r in
              {
                app_name = app.Numa_apps.App_sig.name;
                gamma = (if tl > 0. then user_s /. tl else nan);
                user_s;
                r;
              })
            (List.combine apps t_local) rs
        in
        let open Numa_system.Report in
        {
          scenario = s;
          cells;
          mean_gamma = mean (List.map (fun c -> c.gamma) cells);
          faults_injected = sum_robustness cells (fun rb -> rb.faults_injected);
          node_drains = sum_robustness cells (fun rb -> rb.node_drains);
          drained_pages = sum_robustness cells (fun rb -> rb.drained_pages);
          reclaim_retries = sum_robustness cells (fun rb -> rb.reclaim_retries);
          spurious_shootdowns =
            sum_robustness cells (fun rb -> rb.spurious_shootdowns);
          invariant_checks = sum_robustness cells (fun rb -> rb.invariant_checks);
          invariant_violations =
            sum_robustness cells (fun rb -> rb.invariant_violations);
        }
        :: group rest remaining
  in
  group scenarios measured

let total_violations rows =
  List.fold_left (fun acc r -> acc + r.invariant_violations) 0 rows

let render ~topology rows =
  let apps =
    match rows with [] -> [] | r :: _ -> List.map (fun c -> c.app_name) r.cells
  in
  let table =
    Text_table.create
      ~columns:
        (("Scenario", Text_table.Left)
        :: List.map (fun a -> (a, Text_table.Right)) apps
        @ [
            ("mean gamma", Text_table.Right);
            ("faults", Text_table.Right);
            ("drains", Text_table.Right);
            ("reclaims", Text_table.Right);
            ("violations", Text_table.Right);
          ])
  in
  List.iter
    (fun r ->
      Text_table.add_row table
        ((r.scenario.name
         :: List.map (fun c -> Text_table.cell_f2 c.gamma) r.cells)
        @ [
            Text_table.cell_f2 r.mean_gamma;
            Text_table.cell_int r.faults_injected;
            Text_table.cell_int r.node_drains;
            Text_table.cell_int r.reclaim_retries;
            Text_table.cell_int r.invariant_violations;
          ]))
    rows;
  Printf.sprintf
    "Chaos sweep on %s: per-app and mean gamma under injected faults \
     (T_numa/T_local against the intact machine; the healthy row is the \
     fault-free reference). %d invariant violations across the matrix.\n%s"
    topology (total_violations rows) (Text_table.render table)

let to_json ~topology rows : Numa_obs.Json.t =
  let open Numa_obs.Json in
  Obj
    [
      ("topology", String topology);
      ("total_violations", Int (total_violations rows));
      ( "scenarios",
        List
          (List.map
             (fun r ->
               Obj
                 [
                   ("scenario", String r.scenario.name);
                   ("plan", String (Plan.to_string r.scenario.plan));
                   ("mean_gamma", Float r.mean_gamma);
                   ("faults_injected", Int r.faults_injected);
                   ("node_drains", Int r.node_drains);
                   ("drained_pages", Int r.drained_pages);
                   ("reclaim_retries", Int r.reclaim_retries);
                   ("spurious_shootdowns", Int r.spurious_shootdowns);
                   ("invariant_checks", Int r.invariant_checks);
                   ("invariant_violations", Int r.invariant_violations);
                   ( "apps",
                     List
                       (List.map
                          (fun c ->
                            Obj
                              [
                                ("app", String c.app_name);
                                ("gamma", Float c.gamma);
                                ("user_s", Float c.user_s);
                                ("report", Numa_system.Report.to_json c.r);
                              ])
                          r.cells) );
                 ])
             rows) );
    ]
