(** The numbers published in the paper, for side-by-side comparison in
    experiment output and EXPERIMENTS.md. Times are in seconds on the 1989
    ACE prototype and are {e not} expected to match the simulator; the
    model parameters (alpha, beta, gamma) and orderings are the
    reproduction targets. *)

type table3_row = {
  app : string;
  t_global : float;
  t_numa : float;
  t_local : float;
  alpha : float option;  (** [None] renders as the paper's "na" *)
  beta : float;
  gamma : float;
}

val table3 : table3_row list

type table4_row = {
  app : string;
  s_numa : float;
  s_global : float;
  delta_s : float option;  (** [None] = the paper's "na" (negative noise) *)
  t_numa : float;
  overhead_pct : float;  (** the Delta-S / T_numa column, in percent *)
}

val table4 : table4_row list

val find_table3 : string -> table3_row option
val find_table4 : string -> table4_row option
