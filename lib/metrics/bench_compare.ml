module Json = Numa_obs.Json

type app_summary = { app : string; gamma : float; t_numa_s : float }

type summary = {
  scale : float;
  cpus : int;
  events_per_sec : float option;
  apps : app_summary list;
}

let float_field j key =
  match Json.member j key with
  | None -> Error (Printf.sprintf "missing field %S" key)
  | Some v -> (
      match Json.to_float v with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "field %S is not a number" key))

let ( let* ) = Result.bind

(* A full bench record stores each app's numbers inside its measurement
   (gamma at top level, t_numa nested under times); the compact baseline
   stores them flat. Accept either spelling. *)
let app_of_json j =
  match Json.member j "app" with
  | Some (Json.String app) ->
      let* gamma = float_field j "gamma" in
      let* t_numa_s =
        match Json.member j "times" with
        | Some times -> float_field times "t_numa_s"
        | None -> float_field j "t_numa_s"
      in
      Ok { app; gamma; t_numa_s }
  | Some _ | None -> Error "measurement without an \"app\" string field"

let summary_of_json j =
  let* scale = float_field j "scale" in
  let* cpus =
    match Json.member j "cpus" with
    | Some (Json.Int n) -> Ok n
    | Some _ -> Error "field \"cpus\" is not an integer"
    | None -> Error "missing field \"cpus\""
  in
  let events_per_sec =
    Option.bind (Json.member j "events_per_sec") Json.to_float
  in
  let measurements =
    match (Json.member j "measurements", Json.member j "apps") with
    | Some m, _ | None, Some m -> Some m
    | None, None -> None
  in
  let* apps =
    match measurements with
    | Some (Json.List ms) ->
        List.fold_left
          (fun acc m ->
            let* acc = acc in
            let* a = app_of_json m in
            Ok (a :: acc))
          (Ok []) ms
        |> Result.map List.rev
    | Some _ -> Error "field \"measurements\"/\"apps\" is not a list"
    | None -> Error "missing field \"measurements\" (or \"apps\")"
  in
  Ok { scale; cpus; events_per_sec; apps }

let load path =
  match Json.load path with
  | Error _ as e -> e
  | Ok j -> (
      match summary_of_json j with
      | Ok _ as ok -> ok
      | Error msg -> Error (Printf.sprintf "%s: %s" path msg))

let to_json t =
  Json.Obj
    ([ ("scale", Json.Float t.scale); ("cpus", Json.Int t.cpus) ]
    @ (match t.events_per_sec with
      | None -> []
      | Some e -> [ ("events_per_sec", Json.Float e) ])
    @ [
        ( "apps",
          Json.List
            (List.map
               (fun a ->
                 Json.Obj
                   [
                     ("app", Json.String a.app);
                     ("gamma", Json.Float a.gamma);
                     ("t_numa_s", Json.Float a.t_numa_s);
                   ])
               t.apps) );
      ])

type line = {
  label : string;
  old_v : float;
  new_v : float;
  delta_pct : float;
  regressed : bool;
}

(* [worse_when_higher]: gamma and run time regress upward, throughput
   regresses downward. *)
let mk_line ~max_regress ~worse_when_higher label old_v new_v =
  let delta_pct = if old_v = 0. then 0. else (new_v -. old_v) /. old_v *. 100. in
  let bad = if worse_when_higher then delta_pct else -.delta_pct in
  { label; old_v; new_v; delta_pct; regressed = bad > max_regress }

let diff ~baseline ~current ~max_regress =
  if baseline.scale <> current.scale then
    Error
      (Printf.sprintf "records are not comparable: scale %.3f vs %.3f"
         baseline.scale current.scale)
  else if baseline.cpus <> current.cpus then
    Error
      (Printf.sprintf "records are not comparable: %d vs %d cpus" baseline.cpus
         current.cpus)
  else
    let throughput =
      match (baseline.events_per_sec, current.events_per_sec) with
      | Some o, Some n when o > 0. ->
          [ mk_line ~max_regress ~worse_when_higher:false "events/sec" o n ]
      | _ -> []
    in
    let per_app =
      List.concat_map
        (fun (b : app_summary) ->
          match List.find_opt (fun c -> c.app = b.app) current.apps with
          | None -> []
          | Some c ->
              [
                mk_line ~max_regress ~worse_when_higher:true (b.app ^ " gamma")
                  b.gamma c.gamma;
                mk_line ~max_regress ~worse_when_higher:true (b.app ^ " t_numa")
                  b.t_numa_s c.t_numa_s;
              ])
        baseline.apps
    in
    if per_app = [] && throughput = [] then
      Error "records share no comparable metrics (no common applications)"
    else Ok (throughput @ per_app)

let regressed lines = List.exists (fun l -> l.regressed) lines

let render lines =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%-28s %14s %14s %9s\n" "metric" "baseline" "current" "delta");
  List.iter
    (fun l ->
      Buffer.add_string buf
        (Printf.sprintf "%-28s %14.6g %14.6g %+8.2f%%%s\n" l.label l.old_v l.new_v
           l.delta_pct
           (if l.regressed then "  REGRESSED" else "")))
    lines;
  Buffer.contents buf
