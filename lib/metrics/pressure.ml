open Numa_util
module Report = Numa_system.Report
module Plan = Numa_faults.Plan

type variant = {
  ratio : int;
  victim : Numa_vm.Pageout.victim;
  squeeze : bool;
}

let variant_name v =
  Printf.sprintf "%dx/%s%s" v.ratio
    (Numa_vm.Pageout.victim_name v.victim)
    (if v.squeeze then "+squeeze" else "")

(* The default matrix: every ratio under both victim policies, plus the
   chaos interaction — a frame squeeze on top of an already-pressured
   machine — at one representative ratio. The squeeze plan touches only
   node 0, so it fits any machine the sweep runs on. *)
let default_variants () =
  let pure =
    List.concat_map
      (fun ratio ->
        List.map
          (fun victim -> { ratio; victim; squeeze = false })
          [ Numa_vm.Pageout.Clock; Numa_vm.Pageout.Lru_approx ])
      [ 1; 2; 4; 8 ]
  in
  pure
  @ List.map
      (fun victim -> { ratio = 4; victim; squeeze = true })
      [ Numa_vm.Pageout.Clock; Numa_vm.Pageout.Lru_approx ]

let squeeze_plan =
  match Plan.of_string "frame-squeeze:0:0.5@5" with
  | Ok p -> p
  | Error msg -> invalid_arg ("Pressure.squeeze_plan: " ^ msg)

type cell = {
  app_name : string;
  ram_pages : int;
  footprint_pages : int;
  time_s : float;
  slowdown : float;
  page_ins : int;
  evictions : int;
  writebacks_started : int;
  sync_writebacks : int;
  oom_faults : int;
  invariant_violations : int;
  r : Report.t;
}

type row = {
  variant : variant;
  cells : cell list;
  mean_slowdown : float;
  page_ins : int;
  evictions : int;
  writebacks_started : int;
  sync_writebacks : int;
  oom_faults : int;
  invariant_checks : int;
  invariant_violations : int;
}

let mean xs =
  match xs with
  | [] -> nan
  | _ -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

(* Pages the run ever gave content: everything the final placement sweep
   does not report as untouched. The ample baseline run never pages, so
   this is the program's working set in logical pages. *)
let footprint_of_report (r : Report.t) =
  let untouched =
    match List.assoc_opt "untouched" r.Report.placement with
    | Some n -> n
    | None -> 0
  in
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 r.Report.placement in
  total - untouched

let paging_of_report (r : Report.t) =
  match r.Report.paging with
  | Some p -> (p.Report.page_ins, p.Report.evictions, p.Report.writebacks_started,
               p.Report.sync_writebacks)
  | None -> (0, 0, 0, 0)

let robustness_of_report (r : Report.t) =
  match r.Report.robustness with
  | Some rb -> (rb.Report.oom_faults, rb.Report.invariant_checks,
                rb.Report.invariant_violations)
  | None -> (0, 0, 0)

(* Slowdown over user + system time: the point of pressure is the kernel
   work it induces (page-ins, writebacks, evictions), all of which is
   charged as system time — a user-time-only gamma would hide the disk. *)
let run_time_s (r : Report.t) = Report.total_user_s r +. Report.total_system_s r

let cell_of_run app ~baseline ~footprint ~ram (r : Report.t) =
  let time_s = run_time_s r in
  let base_s = run_time_s baseline in
  let page_ins, evictions, writebacks_started, sync_writebacks = paging_of_report r in
  let oom_faults, _, invariant_violations = robustness_of_report r in
  {
    app_name = app.Numa_apps.App_sig.name;
    ram_pages = ram;
    footprint_pages = footprint;
    time_s;
    slowdown = (if base_s > 0. then time_s /. base_s else nan);
    page_ins;
    evictions;
    writebacks_started;
    sync_writebacks;
    oom_faults;
    invariant_violations;
    r;
  }

let run ?jobs ?apps ?variants ?(spec = Runner.default_spec) () =
  let apps = match apps with Some l -> l | None -> Numa_apps.Registry.table4 in
  let variants = match variants with Some l -> l | None -> default_variants () in
  if apps = [] then invalid_arg "Pressure.run: no apps";
  if variants = [] then invalid_arg "Pressure.run: no variants";
  List.iter
    (fun v -> if v.ratio < 1 then invalid_arg "Pressure.run: ratio must be >= 1")
    variants;
  (* One ample run per app prices the pressure-free machine and measures
     the working set; then the variant x app product fans out, each run
     on a machine whose logical-page pool is the working set divided by
     the variant's ratio. Every pressured run is paranoid: the per-frame
     paging relation is checked from the daemon tick while the pager is
     busiest. *)
  let baselines =
    Parallel.map ?jobs
      (fun app -> Runner.run app { spec with Runner.faults = Plan.empty })
      apps
  in
  let footprints = List.map footprint_of_report baselines in
  let jobs_list =
    List.concat_map
      (fun v ->
        List.map2
          (fun app (baseline, footprint) -> (v, app, baseline, footprint))
          apps
          (List.combine baselines footprints))
      variants
  in
  let measured =
    Parallel.map ?jobs
      (fun (v, app, baseline, footprint) ->
        let ram = max 8 ((footprint + v.ratio - 1) / v.ratio) in
        let tweak c =
          let c = spec.Runner.config_tweak c in
          { c with Numa_machine.Config.global_pages = ram }
        in
        let r =
          Runner.run app
            {
              spec with
              Runner.config_tweak = tweak;
              faults = (if v.squeeze then squeeze_plan else Plan.empty);
              paranoid = true;
              victim = v.victim;
            }
        in
        cell_of_run app ~baseline ~footprint ~ram r)
      jobs_list
  in
  let rec group variants measured =
    match variants with
    | [] -> []
    | v :: rest ->
        let n = List.length apps in
        let cells = List.filteri (fun i _ -> i < n) measured in
        let remaining = List.filteri (fun i _ -> i >= n) measured in
        let sum f = List.fold_left (fun acc c -> acc + f c) 0 cells in
        {
          variant = v;
          cells;
          mean_slowdown = mean (List.map (fun c -> c.slowdown) cells);
          page_ins = sum (fun c -> c.page_ins);
          evictions = sum (fun c -> c.evictions);
          writebacks_started = sum (fun c -> c.writebacks_started);
          sync_writebacks = sum (fun c -> c.sync_writebacks);
          oom_faults = sum (fun c -> c.oom_faults);
          invariant_checks =
            List.fold_left
              (fun acc c ->
                let _, checks, _ = robustness_of_report c.r in
                acc + checks)
              0 cells;
          invariant_violations = sum (fun c -> c.invariant_violations);
        }
        :: group rest remaining
  in
  group variants measured

let total_violations rows =
  List.fold_left (fun acc r -> acc + r.invariant_violations) 0 rows

let total_oom rows = List.fold_left (fun acc r -> acc + r.oom_faults) 0 rows

let render ~topology rows =
  let apps =
    match rows with [] -> [] | r :: _ -> List.map (fun c -> c.app_name) r.cells
  in
  let table =
    Text_table.create
      ~columns:
        (("Pressure", Text_table.Left)
        :: List.map (fun a -> (a, Text_table.Right)) apps
        @ [
            ("mean slowdown", Text_table.Right);
            ("page-ins", Text_table.Right);
            ("evictions", Text_table.Right);
            ("writebacks", Text_table.Right);
            ("oom", Text_table.Right);
            ("violations", Text_table.Right);
          ])
  in
  List.iter
    (fun r ->
      Text_table.add_row table
        ((variant_name r.variant
         :: List.map (fun c -> Text_table.cell_f2 c.slowdown) r.cells)
        @ [
            Text_table.cell_f2 r.mean_slowdown;
            Text_table.cell_int r.page_ins;
            Text_table.cell_int r.evictions;
            Text_table.cell_int (r.writebacks_started + r.sync_writebacks);
            Text_table.cell_int r.oom_faults;
            Text_table.cell_int r.invariant_violations;
          ]))
    rows;
  Printf.sprintf
    "Pressure sweep on %s: per-app slowdown against the ample-memory run, \
     at working-set/RAM ratios under both victim policies (ratio/victim \
     rows; +squeeze adds a frame squeeze on top of the pressure). %d \
     invariant violations across the matrix.\n%s"
    topology (total_violations rows) (Text_table.render table)

let to_json ~topology rows : Numa_obs.Json.t =
  let open Numa_obs.Json in
  Obj
    [
      ("topology", String topology);
      ("total_violations", Int (total_violations rows));
      ("total_oom_faults", Int (total_oom rows));
      ( "variants",
        List
          (List.map
             (fun r ->
               Obj
                 [
                   ("variant", String (variant_name r.variant));
                   ("ratio", Int r.variant.ratio);
                   ("victim", String (Numa_vm.Pageout.victim_name r.variant.victim));
                   ("squeeze", Bool r.variant.squeeze);
                   ("mean_slowdown", Float r.mean_slowdown);
                   ("page_ins", Int r.page_ins);
                   ("evictions", Int r.evictions);
                   ("writebacks_started", Int r.writebacks_started);
                   ("sync_writebacks", Int r.sync_writebacks);
                   ("oom_faults", Int r.oom_faults);
                   ("invariant_checks", Int r.invariant_checks);
                   ("invariant_violations", Int r.invariant_violations);
                   ( "apps",
                     List
                       (List.map
                          (fun c ->
                            Obj
                              [
                                ("app", String c.app_name);
                                ("ram_pages", Int c.ram_pages);
                                ("footprint_pages", Int c.footprint_pages);
                                ("time_s", Float c.time_s);
                                ("slowdown", Float c.slowdown);
                                ("page_ins", Int c.page_ins);
                                ("evictions", Int c.evictions);
                                ("report", Report.to_json c.r);
                              ])
                          r.cells) );
                 ])
             rows) );
    ]
