(** Performance-regression observatory: compare two benchmark records.

    The benchmark harness ([bench/main.ml] via [BENCH_JSON_OUT]) writes a
    JSON record carrying the run configuration, the wall-clock event
    throughput of the reproduction pass, and the full Table 3
    measurements. This module summarizes such a record down to the
    numbers worth gating on — events/sec (wall-clock, noisy) and each
    application's gamma expansion factor and NUMA-policy run time
    (virtual-time, deterministic) — and diffs two summaries, flagging
    any metric that moved in the bad direction by more than a threshold.

    Summaries round-trip through JSON, so a compact baseline can be
    committed to the repository and compared against fresh bench output
    in CI. [summary_of_json] accepts both the full bench record and the
    compact form written by [to_json]. *)

type app_summary = {
  app : string;
  gamma : float;  (** T_numa / T_local — lower is better *)
  t_numa_s : float;  (** virtual seconds under the NUMA policy *)
}

type summary = {
  scale : float;
  cpus : int;
  events_per_sec : float option;  (** wall-clock; absent in old records *)
  apps : app_summary list;
}

val summary_of_json : Numa_obs.Json.t -> (summary, string) result
val load : string -> (summary, string) result
(** Parse a bench record (full or compact) from a file. *)

val to_json : summary -> Numa_obs.Json.t
(** The compact baseline form. *)

type line = {
  label : string;
  old_v : float;
  new_v : float;
  delta_pct : float;  (** (new - old) / old * 100 *)
  regressed : bool;  (** moved in the bad direction beyond the threshold *)
}

val diff : baseline:summary -> current:summary -> max_regress:float -> (line list, string) result
(** One line per comparable metric. [Error] when the records are not
    comparable at all (different scale or CPU count, or no common
    applications); missing individual metrics are skipped silently.
    [max_regress] is a percentage: events/sec may drop, and gamma and
    t_numa may rise, by up to that much before a line is flagged. *)

val regressed : line list -> bool

val render : line list -> string
(** Table with one row per metric, flagged rows marked [REGRESSED]. *)
