(** Reproduction of Table 3: measured user times and computed model
    parameters for the application mix. *)

type row = {
  m : Runner.measurement;
  alpha_counted : float;
      (** directly counted alpha of the numa run, as a cross-check on the
          model-derived value *)
}

val run :
  ?apps:Numa_apps.App_sig.t list ->
  ?jobs:int ->
  ?spec:Runner.run_spec ->
  unit ->
  row list
(** Runs the full three-measurement protocol for every application
    (default: the paper's eight, at the default spec), distributing
    applications over [jobs] domains ({!Parallel.map}; default
    sequential). This is the heavyweight entry point behind
    [bench/main.exe table3]. *)

val render : row list -> string
(** The table in the paper's layout (T_global, T_numa, T_local, alpha,
    beta, gamma), with the measured-vs-paper comparison appended. *)

val render_comparison : row list -> string
(** Side-by-side measured vs published alpha/beta/gamma. *)
