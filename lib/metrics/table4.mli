(** Reproduction of Table 4: total system time of the NUMA-managed and
    all-global runs on 7 processors, and the NUMA-management overhead
    Delta-S / T_numa. *)

type row = {
  app_name : string;
  s_numa : float;  (** seconds of system time, policy run *)
  s_global : float;  (** seconds of system time, all-global run *)
  delta_s : float option;  (** [None] when negative (the paper's "na") *)
  t_numa : float;
  overhead_pct : float;
}

val of_measurements : Table3.row list -> row list
(** Table 4 is computed from the same runs as Table 3; pass the rows for
    the five Table-4 programs (others are filtered by name). *)

val run : ?spec:Runner.run_spec -> unit -> row list
(** Standalone: run the five Table-4 programs and derive the rows. *)

val render : row list -> string
val render_comparison : row list -> string
