open Numa_util

type row = {
  app_name : string;
  s_numa : float;
  s_global : float;
  delta_s : float option;
  t_numa : float;
  overhead_pct : float;
}

let table4_names =
  List.map (fun (a : Numa_apps.App_sig.t) -> a.Numa_apps.App_sig.name) Numa_apps.Registry.table4

let of_measurements rows =
  List.filter_map
    (fun (r : Table3.row) ->
      let m = r.Table3.m in
      if not (List.mem m.Runner.app_name table4_names) then None
      else begin
        let s_numa = Numa_system.Report.total_system_s m.Runner.r_numa in
        let s_global = Numa_system.Report.total_system_s m.Runner.r_global in
        let raw = s_numa -. s_global in
        let delta_s = if raw > 0. then Some raw else None in
        let t_numa = m.Runner.times.Model.t_numa in
        Some
          {
            app_name = m.Runner.app_name;
            s_numa;
            s_global;
            delta_s;
            t_numa;
            overhead_pct =
              (match delta_s with Some d -> 100. *. d /. t_numa | None -> 0.);
          }
      end)
    rows

let run ?(spec = Runner.default_spec) () =
  of_measurements (Table3.run ~apps:Numa_apps.Registry.table4 ~spec ())

let render rows =
  let table =
    Text_table.create
      ~columns:
        [
          ("Application", Text_table.Left);
          ("Snuma", Text_table.Right);
          ("Sglobal", Text_table.Right);
          ("dS", Text_table.Right);
          ("Tnuma", Text_table.Right);
          ("dS/Tnuma", Text_table.Right);
        ]
  in
  List.iter
    (fun r ->
      Text_table.add_row table
        [
          r.app_name;
          Text_table.cell_f1 r.s_numa;
          Text_table.cell_f1 r.s_global;
          (match r.delta_s with Some d -> Text_table.cell_f1 d | None -> "na");
          Text_table.cell_f1 r.t_numa;
          (match r.delta_s with
          | Some _ -> Text_table.cell_pct r.overhead_pct
          | None -> "0%");
        ])
    rows;
  "Table 4: total system time for runs on 7 processors (simulated seconds)\n"
  ^ Text_table.render table

let render_comparison rows =
  let table =
    Text_table.create
      ~columns:
        [
          ("Application", Text_table.Left);
          ("dS/Tnuma meas", Text_table.Right);
          ("dS/Tnuma paper", Text_table.Right);
        ]
  in
  List.iter
    (fun r ->
      match Paper_values.find_table4 r.app_name with
      | None -> ()
      | Some p ->
          Text_table.add_row table
            [
              r.app_name;
              Text_table.cell_pct r.overhead_pct;
              Text_table.cell_pct p.Paper_values.overhead_pct;
            ])
    rows;
  "Measured vs paper (Table 4 NUMA-management overhead)\n" ^ Text_table.render table
