open Numa_util
module Report = Numa_system.Report
module Pt = Numa_machine.Pt
module Config = Numa_machine.Config

type variant = { mode : Pt.mode; topology : string }

let variant_name v = Printf.sprintf "%s/%s" (Pt.mode_to_string v.mode) v.topology

let default_modes () = [ Pt.Off; Pt.Shared; Pt.Replicated None; Pt.Replicated (Some 2) ]
let default_topologies () = [ "ace"; "multi-socket" ]

let default_variants () =
  List.concat_map
    (fun topology -> List.map (fun mode -> { mode; topology }) (default_modes ()))
    (default_topologies ())

type cell = {
  app_name : string;
  time_s : float;
  slowdown : float;  (** vs the [Off] run of the same app and topology *)
  walks : int;
  walk_levels : int;
  walk_ns : float;
  walk_share : float;
  pte_updates : int;
  pte_shootdowns : int;
  replicas_built : int;
  global_pt_pages : int;
  tlb_miss_rate : float;
  invariant_violations : int;
  r : Report.t;
}

type row = {
  variant : variant;
  cells : cell list;
  mean_slowdown : float;
  mean_walk_share : float;
  walks : int;
  pte_updates : int;
  pte_shootdowns : int;
  replicas_built : int;
  global_pt_pages : int;
  invariant_checks : int;
  invariant_violations : int;
}

let mean xs =
  match xs with
  | [] -> nan
  | _ -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

(* User + system time: the walk and shootdown charges are kernel work, so
   a user-time-only slowdown would hide exactly the cost being measured. *)
let run_time_s (r : Report.t) = Report.total_user_s r +. Report.total_system_s r

let robustness_of_report (r : Report.t) =
  match r.Report.robustness with
  | Some rb -> (rb.Report.invariant_checks, rb.Report.invariant_violations)
  | None -> (0, 0)

let cell_of_run app ~baseline (r : Report.t) =
  let time_s = run_time_s r in
  let base_s = run_time_s baseline in
  let walks, walk_levels, walk_ns, pte_updates, pte_shootdowns, built, global_pt =
    match r.Report.pt with
    | Some p ->
        ( p.Report.walks,
          p.Report.walk_levels,
          p.Report.walk_ns,
          p.Report.pte_updates,
          p.Report.pte_shootdowns,
          p.Report.replicas_built,
          p.Report.global_pt_pages )
    | None -> (0, 0, 0., 0, 0, 0, 0)
  in
  let _, invariant_violations = robustness_of_report r in
  let total_ns = r.Report.total_user_ns +. r.Report.total_system_ns in
  {
    app_name = app.Numa_apps.App_sig.name;
    time_s;
    slowdown = (if base_s > 0. then time_s /. base_s else nan);
    walks;
    walk_levels;
    walk_ns;
    walk_share = (if total_ns > 0. then walk_ns /. total_ns else 0.);
    pte_updates;
    pte_shootdowns;
    replicas_built = built;
    global_pt_pages = global_pt;
    tlb_miss_rate =
      (let total = r.Report.tlb_hits + r.Report.tlb_misses in
       if total = 0 then 0. else float_of_int r.Report.tlb_misses /. float_of_int total);
    invariant_violations;
    r;
  }

let topology_tweak ~spec ~topology c =
  match
    Config.of_topology_name ~n_cpus:c.Config.n_cpus topology
  with
  | Some c -> spec.Runner.config_tweak c
  | None -> invalid_arg (Printf.sprintf "Pt_sweep: unknown topology %S" topology)

let run ?jobs ?apps ?variants ?(spec = Runner.default_spec) () =
  let apps = match apps with Some l -> l | None -> Numa_apps.Registry.table4 in
  let variants = match variants with Some l -> l | None -> default_variants () in
  if apps = [] then invalid_arg "Pt_sweep.run: no apps";
  if variants = [] then invalid_arg "Pt_sweep.run: no variants";
  let topologies =
    List.sort_uniq String.compare (List.map (fun v -> v.topology) variants)
  in
  (* One free-translation run per (app, topology) prices the machine the
     walks are laid on top of; the mode x app x topology product then fans
     out. Every materialised run is paranoid, so the page-table relation
     (master = MMU image, replicas = master image) is audited from the
     daemon tick while tables churn. *)
  let baselines =
    Parallel.map ?jobs
      (fun (topology, app) ->
        ( (topology, app.Numa_apps.App_sig.name),
          Runner.run app
            {
              spec with
              Runner.config_tweak = topology_tweak ~spec ~topology;
              pt_mode = Pt.Off;
            } ))
      (List.concat_map (fun t -> List.map (fun a -> (t, a)) apps) topologies)
  in
  let baseline_for ~topology app =
    List.assoc (topology, app.Numa_apps.App_sig.name) baselines
  in
  let measured =
    Parallel.map ?jobs
      (fun (v, app) ->
        let r =
          match v.mode with
          | Pt.Off -> baseline_for ~topology:v.topology app
          | Pt.Shared | Pt.Replicated _ ->
              Runner.run app
                {
                  spec with
                  Runner.config_tweak = topology_tweak ~spec ~topology:v.topology;
                  pt_mode = v.mode;
                  paranoid = true;
                }
        in
        cell_of_run app ~baseline:(baseline_for ~topology:v.topology app) r)
      (List.concat_map (fun v -> List.map (fun a -> (v, a)) apps) variants)
  in
  let rec group variants measured =
    match variants with
    | [] -> []
    | v :: rest ->
        let n = List.length apps in
        let cells = List.filteri (fun i _ -> i < n) measured in
        let remaining = List.filteri (fun i _ -> i >= n) measured in
        let sum f = List.fold_left (fun acc c -> acc + f c) 0 cells in
        {
          variant = v;
          cells;
          mean_slowdown = mean (List.map (fun c -> c.slowdown) cells);
          mean_walk_share = mean (List.map (fun c -> c.walk_share) cells);
          walks = sum (fun c -> c.walks);
          pte_updates = sum (fun c -> c.pte_updates);
          pte_shootdowns = sum (fun c -> c.pte_shootdowns);
          replicas_built = sum (fun c -> c.replicas_built);
          global_pt_pages = sum (fun c -> c.global_pt_pages);
          invariant_checks =
            List.fold_left
              (fun acc c -> acc + fst (robustness_of_report c.r))
              0 cells;
          invariant_violations = sum (fun c -> c.invariant_violations);
        }
        :: group rest remaining
  in
  group variants measured

let total_violations rows =
  List.fold_left (fun acc r -> acc + r.invariant_violations) 0 rows

let render rows =
  let apps =
    match rows with [] -> [] | r :: _ -> List.map (fun c -> c.app_name) r.cells
  in
  let table =
    Text_table.create
      ~columns:
        (("PT mode", Text_table.Left)
        :: List.map (fun a -> (a, Text_table.Right)) apps
        @ [
            ("mean slowdown", Text_table.Right);
            ("walk share", Text_table.Right);
            ("walks", Text_table.Right);
            ("shootdowns", Text_table.Right);
            ("replicas", Text_table.Right);
            ("violations", Text_table.Right);
          ])
  in
  List.iter
    (fun r ->
      Text_table.add_row table
        ((variant_name r.variant
         :: List.map (fun c -> Text_table.cell_f2 c.slowdown) r.cells)
        @ [
            Text_table.cell_f2 r.mean_slowdown;
            Printf.sprintf "%.1f%%" (100. *. r.mean_walk_share);
            Text_table.cell_int r.walks;
            Text_table.cell_int r.pte_shootdowns;
            Text_table.cell_int r.replicas_built;
            Text_table.cell_int r.invariant_violations;
          ]))
    rows;
  Printf.sprintf
    "Page-table sweep: per-app slowdown against the free-translation run \
     of the same topology (mode/topology rows). Walk share is the fraction \
     of total time spent in multi-level walks — it separates walk-heavy \
     applications (TLB-hostile reference streams) from walk-light ones, \
     and replication earns its shootdown traffic exactly when that share \
     is large and remote. %d invariant violations across the matrix.\n%s"
    (total_violations rows) (Text_table.render table)

let to_json rows : Numa_obs.Json.t =
  let open Numa_obs.Json in
  Obj
    [
      ("total_violations", Int (total_violations rows));
      ( "variants",
        List
          (List.map
             (fun r ->
               Obj
                 [
                   ("variant", String (variant_name r.variant));
                   ("mode", String (Pt.mode_to_string r.variant.mode));
                   ("topology", String r.variant.topology);
                   ("mean_slowdown", Float r.mean_slowdown);
                   ("mean_walk_share", Float r.mean_walk_share);
                   ("walks", Int r.walks);
                   ("pte_updates", Int r.pte_updates);
                   ("pte_shootdowns", Int r.pte_shootdowns);
                   ("replicas_built", Int r.replicas_built);
                   ("global_pt_pages", Int r.global_pt_pages);
                   ("invariant_checks", Int r.invariant_checks);
                   ("invariant_violations", Int r.invariant_violations);
                   ( "apps",
                     List
                       (List.map
                          (fun c ->
                            Obj
                              [
                                ("app", String c.app_name);
                                ("time_s", Float c.time_s);
                                ("slowdown", Float c.slowdown);
                                ("walks", Int c.walks);
                                ("walk_levels", Int c.walk_levels);
                                ("walk_ns", Float c.walk_ns);
                                ("walk_share", Float c.walk_share);
                                ("tlb_miss_rate", Float c.tlb_miss_rate);
                                ("pte_updates", Int c.pte_updates);
                                ("pte_shootdowns", Int c.pte_shootdowns);
                                ("replicas_built", Int c.replicas_built);
                                ("report", Report.to_json c.r);
                              ])
                          r.cells) );
                 ])
             rows) );
    ]
