open Numa_util

type row = { m : Runner.measurement; alpha_counted : float }

let run ?apps ?jobs ?(spec = Runner.default_spec) () =
  let apps = match apps with Some l -> l | None -> Numa_apps.Registry.table3 in
  List.map
    (fun m -> { m; alpha_counted = m.Runner.r_numa.Numa_system.Report.alpha_counted })
    (Runner.measure_many ?jobs apps spec)

(* ParMult's alpha is meaningless (beta = 0 means the denominator of
   equation 4 is measurement noise); the paper prints "na". We apply the
   same rule when the global/local spread is under half a percent. *)
let alpha_is_meaningful (m : Runner.measurement) =
  let t = m.Runner.times in
  t.Model.t_global -. t.Model.t_local > 0.005 *. t.Model.t_local

let cell_alpha r =
  if alpha_is_meaningful r.m then Text_table.cell_f2 r.m.Runner.alpha else "na"

let render rows =
  let table =
    Text_table.create
      ~columns:
        [
          ("Application", Text_table.Left);
          ("Tglobal", Text_table.Right);
          ("Tnuma", Text_table.Right);
          ("Tlocal", Text_table.Right);
          ("alpha", Text_table.Right);
          ("beta", Text_table.Right);
          ("gamma", Text_table.Right);
          ("alpha(counted)", Text_table.Right);
        ]
  in
  List.iter
    (fun r ->
      let t = r.m.Runner.times in
      Text_table.add_row table
        [
          r.m.Runner.app_name;
          Text_table.cell_f1 t.Model.t_global;
          Text_table.cell_f1 t.Model.t_numa;
          Text_table.cell_f1 t.Model.t_local;
          cell_alpha r;
          Text_table.cell_f2 r.m.Runner.beta;
          Text_table.cell_f2 r.m.Runner.gamma;
          Text_table.cell_f2 r.alpha_counted;
        ])
    rows;
  "Table 3: measured user times (simulated seconds) and computed model parameters\n"
  ^ Text_table.render table

let render_comparison rows =
  let table =
    Text_table.create
      ~columns:
        [
          ("Application", Text_table.Left);
          ("alpha meas", Text_table.Right);
          ("alpha paper", Text_table.Right);
          ("beta meas", Text_table.Right);
          ("beta paper", Text_table.Right);
          ("gamma meas", Text_table.Right);
          ("gamma paper", Text_table.Right);
        ]
  in
  List.iter
    (fun r ->
      match Paper_values.find_table3 r.m.Runner.app_name with
      | None -> ()
      | Some p ->
          Text_table.add_row table
            [
              r.m.Runner.app_name;
              cell_alpha r;
              (match p.Paper_values.alpha with
              | None -> "na"
              | Some a -> Text_table.cell_f2 a);
              Text_table.cell_f2 r.m.Runner.beta;
              Text_table.cell_f2 p.Paper_values.beta;
              Text_table.cell_f2 r.m.Runner.gamma;
              Text_table.cell_f2 p.Paper_values.gamma;
            ])
    rows;
  "Measured vs paper (Table 3 model parameters)\n" ^ Text_table.render table
