type times = { t_global : float; t_numa : float; t_local : float }

let gamma t = t.t_numa /. t.t_local

let alpha t = (t.t_global -. t.t_numa) /. (t.t_global -. t.t_local)

let beta t ~gl = (t.t_global -. t.t_local) /. t.t_local *. (1. /. (gl -. 1.))

let predicted_t_numa ~t_local ~alpha ~beta ~gl =
  t_local *. ((1. -. beta) +. (beta *. (alpha +. ((1. -. alpha) *. gl))))

let valid_times t =
  let tolerance = 1.005 in
  t.t_local > 0. && t.t_numa > 0. && t.t_global > 0.
  && t.t_numa <= t.t_global *. tolerance
  && t.t_local <= t.t_numa *. tolerance
