open Numa_util
module Sys_ = Numa_system.System

type cell = { app_name : string; m : Runner.measurement }

type row = {
  policy : Sys_.policy_spec;
  cells : cell list;
  mean_gamma : float;
  mean_alpha : float;
  mean_beta : float;
  total_moves : int;
  total_pins : int;
}

let mean xs =
  match xs with
  | [] -> nan
  | _ -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

(* Mean over the cells where the paper would print a number at all;
   ParMult-style apps with no writable sharing make alpha "na" (nan), and
   one nan would otherwise poison the whole policy's column. *)
let mean_defined xs = mean (List.filter (fun x -> not (Float.is_nan x)) xs)

let run ?jobs ?policies ?apps ?(spec = Runner.default_spec) () =
  let policies = match policies with Some l -> l | None -> Sys_.builtin_policy_specs in
  let apps = match apps with Some l -> l | None -> Numa_apps.Registry.table4 in
  if policies = [] then invalid_arg "Tournament.run: no policies";
  if apps = [] then invalid_arg "Tournament.run: no apps";
  (* Fan the full policy x app product through the domain pool at once:
     the matrix is embarrassingly parallel and the long pole is whichever
     single measurement is slowest, not whichever policy is. *)
  let jobs_list =
    List.concat_map (fun p -> List.map (fun app -> (p, app)) apps) policies
  in
  let measured =
    Parallel.map ?jobs
      (fun (p, app) ->
        let m = Runner.measure app { spec with Runner.policy = p } in
        { app_name = m.Runner.app_name; m })
      jobs_list
  in
  let rec group policies measured =
    match policies with
    | [] -> []
    | p :: rest ->
        let n = List.length apps in
        let cells = List.filteri (fun i _ -> i < n) measured in
        let remaining = List.filteri (fun i _ -> i >= n) measured in
        let gammas = List.map (fun c -> c.m.Runner.gamma) cells in
        let alphas = List.map (fun c -> c.m.Runner.alpha) cells in
        let betas = List.map (fun c -> c.m.Runner.beta) cells in
        let sum f = List.fold_left (fun acc c -> acc + f c.m.Runner.r_numa) 0 cells in
        {
          policy = p;
          cells;
          mean_gamma = mean gammas;
          mean_alpha = mean_defined alphas;
          mean_beta = mean betas;
          total_moves = sum (fun r -> r.Numa_system.Report.numa_moves);
          total_pins = sum (fun r -> r.Numa_system.Report.pins);
        }
        :: group rest remaining
  in
  let rows = group policies measured in
  (* Best policy first: gamma is the user-time expansion over all-local
     (equation 1), so smaller is better. The sort is stable, so ties keep
     registration order. *)
  List.stable_sort (fun a b -> Float.compare a.mean_gamma b.mean_gamma) rows

let render ~topology rows =
  let apps =
    match rows with [] -> [] | r :: _ -> List.map (fun c -> c.app_name) r.cells
  in
  let table =
    Text_table.create
      ~columns:
        (("Policy", Text_table.Left)
        :: List.map (fun a -> (a, Text_table.Right)) apps
        @ [
            ("mean gamma", Text_table.Right);
            ("mean alpha", Text_table.Right);
            ("mean beta", Text_table.Right);
            ("moves", Text_table.Right);
            ("pins", Text_table.Right);
          ])
  in
  List.iter
    (fun r ->
      Text_table.add_row table
        ((Sys_.policy_spec_name r.policy
         :: List.map (fun c -> Text_table.cell_f2 c.m.Runner.gamma) r.cells)
        @ [
            Text_table.cell_f2 r.mean_gamma;
            (if Float.is_nan r.mean_alpha then "na" else Text_table.cell_f2 r.mean_alpha);
            Text_table.cell_f2 r.mean_beta;
            Text_table.cell_int r.total_moves;
            Text_table.cell_int r.total_pins;
          ]))
    rows;
  Printf.sprintf
    "Policy tournament on %s: per-app and mean gamma (T_numa/T_local; 1.00 is \
     all-local speed, smaller is better), best policy first\n%s"
    topology (Text_table.render table)

let to_json ~topology rows : Numa_obs.Json.t =
  let open Numa_obs.Json in
  Obj
    [
      ("topology", String topology);
      ( "policies",
        List
          (List.map
             (fun r ->
               Obj
                 [
                   ("policy", String (Sys_.policy_spec_name r.policy));
                   ("mean_gamma", Float r.mean_gamma);
                   ("mean_alpha", Float r.mean_alpha);
                   ("mean_beta", Float r.mean_beta);
                   ("total_moves", Int r.total_moves);
                   ("total_pins", Int r.total_pins);
                   ( "apps",
                     List
                       (List.map
                          (fun c ->
                            let m = c.m in
                            Obj
                              [
                                ("app", String c.app_name);
                                ("gamma", Float m.Runner.gamma);
                                ("alpha", Float m.Runner.alpha);
                                ("beta", Float m.Runner.beta);
                                ("times", Runner.times_to_json m.Runner.times);
                                ( "moves",
                                  Int m.Runner.r_numa.Numa_system.Report.numa_moves );
                                ("pins", Int m.Runner.r_numa.Numa_system.Report.pins);
                              ])
                          r.cells) );
                 ])
             rows) );
    ]
