(** The serve sweep: the open-loop serving workload ({!Numa_apps.Serve})
    under a grid of placement policies and machine topologies, reported as
    tail-latency percentiles.

    Batch sweeps price a policy by total run time; a served system is
    priced by what its slowest requests see. Because the arrival process
    is open-loop (the same offered load hits every cell), any latency
    difference between cells is pure placement policy: service-time
    inflation compounds into queueing and shows up at p99/p99.9 long
    before it moves the mean. Every run is paranoid, and each topology
    row also runs the default policy with a node offlined mid-warmup —
    the serving system must degrade (a bigger tail) without a single
    protocol invariant violation. *)

val default_policies : unit -> Numa_system.System.policy_spec list
(** Move-limit(4), all-global, never-pin, bandwidth-aware(4). *)

val default_topologies : unit -> string list
(** ["ace"; "multi-socket"; "butterfly"]. *)

val offline_plan : unit -> Numa_faults.Plan.t
(** Node 1 offlined at 5 ms — mid-warmup, so the tail shows steady-state
    serving on the shrunken machine, not the drain transient. *)

type cell = {
  policy : Numa_system.System.policy_spec;
  faulted : bool;  (** ran under {!offline_plan}, not fault-free *)
  serving : Numa_system.Report.serving;
  user_s : float;
  invariant_checks : int;
  invariant_violations : int;  (** 0 = the protocol stayed coherent *)
  r : Numa_system.Report.t;
}

type row = {
  topology : string;
  cells : cell list;  (** one per policy, fault-free, in slate order *)
  offline : cell;  (** the default policy with node 1 offlined mid-warmup *)
  p99_spread : float;
      (** worst over best fault-free p99 — the tail-latency gap placement
          policy alone opens on this machine *)
}

val run :
  ?jobs:int ->
  ?app:Numa_apps.App_sig.t ->
  ?policies:Numa_system.System.policy_spec list ->
  ?topologies:string list ->
  ?spec:Runner.run_spec ->
  unit ->
  row list
(** Measure the grid through {!Parallel.map}: per topology, every policy
    fault-free plus the first policy under {!offline_plan}; [spec.policy]
    and [spec.faults] are replaced cell by cell and every run forces
    [paranoid]. [app] must fill the report's [serving] section (default
    {!Numa_apps.Serve.app}; [Invalid_argument] otherwise). Rows come back
    in topology order, deterministic for a fixed spec. *)

val total_violations : row list -> int

val render : scale:float -> row list -> string
(** Text table: one line per (topology, policy) cell plus each topology's
    node-offline line — latency percentiles in microseconds, throughput,
    and violations. *)

val to_json : row list -> Numa_obs.Json.t
(** The JSON artifact: per-topology p99 spread and per-cell latency
    summaries, each cell carrying its full {!Numa_system.Report.to_json}
    (whose [serving] key round-trips the same numbers). *)
