(** The resilience sweep: {no-resilience, retry, retry+hedge,
    retry+breaker} x {intact, node-offline, link-degrade, frame-squeeze},
    every cell paranoid, on a pinned 4-worker machine at ~80% utilisation
    with a 1.5 ms deadline.

    The grid answers one question per column pair: how much goodput
    (in-deadline completions per second) does each mechanism recover,
    relative to the same config's intact run, when the machine degrades
    mid-serving? The node-offline scenario doubles as the CI acceptance
    gate: retry+breaker must hold at least twice the no-resilience
    goodput on the same seed ({!node_offline_gate}).

    Everything is virtual-time deterministic: same seed, same JSON, byte
    for byte, at any [--jobs]. *)

type mechanisms = {
  label : string;
  retry : Numa_apps.Resilience.retry option;
  hedge : Numa_apps.Resilience.hedge option;
  breaker : Numa_apps.Resilience.breaker option;
}

val configs : unit -> mechanisms list
(** The slate, in grid order: no-resilience (observe-only deadline),
    retry, retry+hedge, retry+breaker. *)

type cell = {
  config : string;  (** {!mechanisms} label *)
  scenario_name : string;
  res : Numa_system.Report.resilience;
  serving : Numa_system.Report.serving;
  invariant_checks : int;
  invariant_violations : int;
  user_s : float;
  r : Numa_system.Report.t;
}

type row = { name : string; cells : cell list (* one per config, slate order *) }

val run : ?jobs:int -> ?spec:Runner.run_spec -> unit -> row list
(** Fan the 16-cell grid out ([jobs] ways) and group it by scenario. The
    sweep pins [n_cpus]/[nthreads]/[scale]/faults and forces paranoid
    mode; only the seed (and scheduler knobs) of [spec] carry over. *)

val total_violations : row list -> int
(** Protocol invariant violations plus request-conservation violations,
    summed over the grid; nonzero fails the experiments section. *)

type gate = {
  no_resilience_goodput : float;
  retry_breaker_goodput : float;
  ratio : float;  (** retry+breaker over no-resilience, node-offline scenario *)
}

val node_offline_gate : row list -> gate
(** The acceptance-gate numbers from the node-offline row. *)

val render : row list -> string
(** Text table: SLO%, goodput, goodput vs the config's intact run,
    retry/hedge/shed/breaker volume, violations. *)

val to_json : row list -> Numa_obs.Json.t
(** Deterministic artifact: the gate, and per cell the resilience
    section, goodput-vs-intact and the full run report. *)
