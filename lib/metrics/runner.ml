open Numa_machine
module System = Numa_system.System

type run_spec = {
  policy : System.policy_spec;
  n_cpus : int;
  nthreads : int;
  scale : float;
  seed : int64;
  scheduler : Numa_sim.Engine.scheduler_mode;
  unix_master : bool;
  config_tweak : Config.t -> Config.t;
  faults : Numa_faults.Plan.t;
  paranoid : bool;
  profiling : bool;
  victim : Numa_vm.Pageout.victim;
  pt_mode : Pt.mode;
}

let default_spec =
  {
    policy = System.Move_limit { threshold = 4 };
    n_cpus = 7;
    nthreads = 7;
    scale = 1.0;
    seed = 42L;
    scheduler = Numa_sim.Engine.Affinity;
    unix_master = false;
    config_tweak = Fun.id;
    faults = Numa_faults.Plan.empty;
    paranoid = false;
    profiling = false;
    victim = Numa_vm.Pageout.Clock;
    pt_mode = Pt.Off;
  }

let config_for spec ~n_cpus = spec.config_tweak (Config.ace ~n_cpus ())

let run_with (app : Numa_apps.App_sig.t) spec ~policy ~n_cpus ~nthreads =
  let config = config_for spec ~n_cpus in
  let sys =
    System.create ~policy ~scheduler:spec.scheduler ~unix_master:spec.unix_master
      ~faults:spec.faults ~paranoid:spec.paranoid ~profiling:spec.profiling
      ~victim:spec.victim ~pt_mode:spec.pt_mode ~config ()
  in
  app.Numa_apps.App_sig.setup sys
    { Numa_apps.App_sig.nthreads; scale = spec.scale; seed = spec.seed };
  System.run sys

let run app spec =
  run_with app spec ~policy:spec.policy ~n_cpus:spec.n_cpus ~nthreads:spec.nthreads

let app_gl (app : Numa_apps.App_sig.t) config =
  if app.Numa_apps.App_sig.fetch_dominated then Config.global_to_local_fetch_ratio config
  else Config.global_to_local_ratio config ~store_fraction:0.45

type measurement = {
  app_name : string;
  times : Model.times;
  gl : float;
  alpha : float;
  beta : float;
  gamma : float;
  r_numa : Numa_system.Report.t;
  r_global : Numa_system.Report.t;
  r_local : Numa_system.Report.t;
}

let measure (app : Numa_apps.App_sig.t) spec =
  let r_numa = run app spec in
  (* The two baselines define the model's reference scale, so they run on
     the healthy machine even when the measured run is faulted — gamma of
     a chaos run is "how much slower than the intact all-local machine". *)
  let clean = { spec with faults = Numa_faults.Plan.empty } in
  let r_global =
    run_with app clean ~policy:System.All_global ~n_cpus:spec.n_cpus
      ~nthreads:spec.nthreads
  in
  (* T_local: one thread on a one-processor system, so that every page is
     private and local (section 3.1). *)
  let r_local = run_with app clean ~policy:spec.policy ~n_cpus:1 ~nthreads:1 in
  let times =
    {
      Model.t_numa = Numa_system.Report.total_user_s r_numa;
      t_global = Numa_system.Report.total_user_s r_global;
      t_local = Numa_system.Report.total_user_s r_local;
    }
  in
  let gl = app_gl app (config_for spec ~n_cpus:spec.n_cpus) in
  {
    app_name = app.Numa_apps.App_sig.name;
    times;
    gl;
    alpha = Model.alpha times;
    beta = Model.beta times ~gl;
    gamma = Model.gamma times;
    r_numa;
    r_global;
    r_local;
  }

let measure_many ?jobs apps spec = Parallel.map ?jobs (fun app -> measure app spec) apps

module Json = Numa_obs.Json

let times_to_json (tm : Model.times) =
  Json.Obj
    [
      ("t_numa_s", Json.Float tm.Model.t_numa);
      ("t_global_s", Json.Float tm.Model.t_global);
      ("t_local_s", Json.Float tm.Model.t_local);
    ]

let measurement_to_json m =
  Json.Obj
    [
      ("app", Json.String m.app_name);
      ("times", times_to_json m.times);
      ("gl", Json.Float m.gl);
      ("alpha", Json.Float m.alpha);
      ("beta", Json.Float m.beta);
      ("gamma", Json.Float m.gamma);
      ("run_numa", Numa_system.Report.to_json m.r_numa);
      ("run_global", Numa_system.Report.to_json m.r_global);
      ("run_local", Numa_system.Report.to_json m.r_local);
    ]
