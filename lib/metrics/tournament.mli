(** The policy tournament: every placement policy against every
    application on one machine, under the three-run measurement protocol.

    Each (policy, app) cell is a full {!Runner.measure} — T_numa under
    the candidate policy, T_global and T_local as the usual baselines —
    so policies are compared on the paper's own model parameters
    (gamma/alpha/beta) rather than raw times. The whole matrix fans out
    through {!Parallel.map}. *)

type cell = { app_name : string; m : Runner.measurement }

type row = {
  policy : Numa_system.System.policy_spec;
  cells : cell list;  (** one per app, in app order *)
  mean_gamma : float;  (** arithmetic mean of per-app gamma (equation 1) *)
  mean_alpha : float;
      (** mean over the apps where alpha is meaningful; [nan] when it is
          meaningful nowhere *)
  mean_beta : float;
  total_moves : int;  (** sum of NUMA page moves across the T_numa runs *)
  total_pins : int;  (** sum of pages left pinned across the T_numa runs *)
}

val run :
  ?jobs:int ->
  ?policies:Numa_system.System.policy_spec list ->
  ?apps:Numa_apps.App_sig.t list ->
  ?spec:Runner.run_spec ->
  unit ->
  row list
(** Measure the full [policies] x [apps] matrix ([spec.policy] is
    ignored; each row replaces it with its own policy). Defaults: every
    shipped policy ({!Numa_system.System.builtin_policy_specs}) against
    the Table 4 application set, on [spec]'s machine. Rows come back
    sorted best-first by mean gamma (stable, so ties keep registration
    order). *)

val render : topology:string -> row list -> string
(** Text comparison table: per-app gamma columns plus the
    mean-gamma/alpha/beta and move/pin totals, best policy first. *)

val to_json : topology:string -> row list -> Numa_obs.Json.t
(** The JSON artifact: per-policy summaries with per-app
    gamma/alpha/beta, the three times, and move/pin counts. *)
