(** Studies beyond the paper's two tables: the policy-parameter and design
    questions the paper raises in sections 2.3.2, 4.2, 4.3, 4.6, 4.7 and 5.
    Each returns structured rows plus a renderer, and is reachable from
    [bin/experiments.exe]. *)

(** {1 Move-threshold sweep (section 2.3.2)} *)

type threshold_row = {
  ts_app : string;
  ts_threshold : int option;  (** [None] = never pin *)
  ts_t_numa : float;
  ts_t_system : float;
  ts_gamma : float;
  ts_moves : int;
  ts_pins : int;
}

val threshold_sweep :
  ?apps:Numa_apps.App_sig.t list ->
  ?jobs:int ->
  ?thresholds:int option list ->
  ?spec:Runner.run_spec ->
  unit ->
  threshold_row list
(** [?jobs] here and in the other sweeps distributes the independent runs
    over that many domains ({!Parallel.map}); rows come back in the same
    order, with the same values, as the sequential sweep. *)

val render_threshold_sweep : threshold_row list -> string

(** {1 Scheduler affinity (section 4.7)} *)

type scheduler_row = {
  sc_app : string;
  sc_affinity_user : float;
  sc_single_queue_user : float;
  sc_slowdown : float;  (** single-queue / affinity user time *)
}

val scheduler_study :
  ?apps:Numa_apps.App_sig.t list -> ?jobs:int -> ?spec:Runner.run_spec -> unit ->
  scheduler_row list

val render_scheduler_study : scheduler_row list -> string

(** {1 G/L ratio sensitivity} *)

type gl_row = {
  gl_factor : float;  (** multiplier on global reference times *)
  gl_ratio : float;  (** resulting G/L (mixed) *)
  gl_gamma : float;
  gl_alpha : float;
}

val gl_sweep :
  ?app:Numa_apps.App_sig.t -> ?jobs:int -> ?factors:float list -> ?spec:Runner.run_spec ->
  unit -> gl_row list

val render_gl_sweep : gl_row list -> string

(** {1 Placement pragmas (section 4.3)} *)

type pragma_row = {
  pr_variant : string;
  pr_t_numa : float;
  pr_s_numa : float;
  pr_moves : int;
}

val pragma_study : ?spec:Runner.run_spec -> unit -> pragma_row list
(** primes3 with and without noncacheable pragmas on its shared vectors. *)

val render_pragma_study : pragma_row list -> string

(** {1 Unix master (section 4.6)} *)

type unix_master_row = {
  um_variant : string;
  um_user : float;
  um_system : float;
  um_stack_global_refs : int;  (** global references made to stack regions *)
}

val unix_master_study : ?spec:Runner.run_spec -> unit -> unix_master_row list

val render_unix_master_study : unix_master_row list -> string

(** {1 Processor-count sweep} *)

type cpu_row = {
  cs_app : string;
  cs_cpus : int;
  cs_t_numa : float;
  cs_gamma : float;
  cs_alpha_counted : float;
}

val cpu_sweep :
  ?apps:Numa_apps.App_sig.t list -> ?jobs:int -> ?cpu_counts:int list ->
  ?spec:Runner.run_spec -> unit -> cpu_row list
(** The paper's method requires measurements "not vary too much with the
    number of processors"; this sweep checks that requirement for our
    programs (T_numa and alpha across 2-8 CPUs). *)

val render_cpu_sweep : cpu_row list -> string

(** {1 Butterfly-class machines (section 4.4)} *)

type butterfly_row = {
  bf_app : string;
  bf_gamma_ace : float;
  bf_gamma_butterfly : float;
  bf_alpha_ace : float;
  bf_alpha_butterfly : float;
}

val butterfly_study :
  ?apps:Numa_apps.App_sig.t list -> ?jobs:int -> ?spec:Runner.run_spec -> unit ->
  butterfly_row list
(** The same programs on a machine whose shared level is as slow as remote
    memory (no physically global memory): placement quality (alpha) is
    machine-independent, but the penalty for the residual shared
    references grows with the steeper ratio. *)

val render_butterfly_study : butterfly_row list -> string

(** {1 Topology sweep (N-node distance matrices)} *)

type topology_row = {
  tp_topology : string;
  tp_app : string;
  tp_t_numa : float;
  tp_gamma : float;
  tp_alpha : float;
  tp_remote_refs : int;
  tp_global_refs : int;
  tp_moves : int;
}

val topology_sweep :
  ?apps:Numa_apps.App_sig.t list ->
  ?jobs:int ->
  ?topologies:string list ->
  ?spec:Runner.run_spec ->
  unit ->
  topology_row list
(** The same workload and policy on machines that differ only in their
    distance matrix ({!Numa_machine.Config.builtin_topologies} by
    default: the classic ACE, the scalar butterfly retiming, the true
    striped-shared-level butterfly, and a two-tier multi-socket matrix).
    Placement quality (alpha) is machine-independent; the cost of the
    residual shared and remote references is not. *)

val render_topology_sweep : topology_row list -> string

(** {1 IPC-bus contention} *)

type bus_row = {
  bu_bandwidth_mb_s : float;  (** 0 = infinite (the default model) *)
  bu_t_numa : float;
  bu_t_global : float;
  bu_bus_delay_s : float;  (** queueing delay in the all-global run *)
  bu_gamma : float;
}

val bus_study :
  ?app:Numa_apps.App_sig.t -> ?jobs:int -> ?bandwidths:float list ->
  ?spec:Runner.run_spec -> unit -> bus_row list
(** Sweep the IPC-bus bandwidth (MB/s) for a global-memory-intensive
    program (default gfetch) and show where the paper's "relatively free
    of bus contention" assumption breaks: with the real 80 MB/s bus the
    7-CPU fetch stream is comfortably under capacity, but a few times less
    bandwidth makes the all-global run queue-bound. *)

val render_bus_study : bus_row list -> string

(** {1 Remote references (section 4.4)} *)

type remote_row = {
  rm_variant : string;
  rm_producer_user : float;  (** user seconds of the producing CPU *)
  rm_total_user : float;
  rm_remote_refs : int;
}

val remote_study : ?spec:Runner.run_spec -> unit -> remote_row list
(** The lopsided workload with the status buffer under normal policy
    (pinned global) vs homed in the producer's local memory. *)

val render_remote_study : remote_row list -> string

(** {1 Thread migration (section 4.7)} *)

type migration_row = {
  mg_variant : string;
  mg_user : float;
  mg_moves : int;
  mg_pins : int;
  mg_alpha : float;
}

val migration_study : ?spec:Runner.run_spec -> unit -> migration_row list
(** The re-homed thread with and without kernel page migration. *)

val render_migration_study : migration_row list -> string

(** {1 Pin reconsideration (footnote 4 / section 5)} *)

type reconsider_row = { rc_policy : string; rc_user : float; rc_final_global_pages : int }

val reconsider_study : ?spec:Runner.run_spec -> ?window_ms:float -> unit -> reconsider_row list
(** The phase-shifting workload under move-limit vs the reconsider
    extension. *)

val render_reconsider_study : reconsider_row list -> string
