(** The paper's analytical model of section 3.1.

    Program execution time is modelled (equation 2) as

    {v T_numa = T_local ((1 - beta) + beta (alpha + (1 - alpha) G/L)) v}

    where [alpha] is the fraction of writable-data references that hit
    local memory and [beta] the fraction of all-local run time spent
    referencing writable data. Setting alpha = 0 gives the all-global model
    (equation 3); solving the two simultaneously yields the measurement
    equations 4 and 5 implemented here. *)

type times = { t_global : float; t_numa : float; t_local : float }
(** The three measured user times (any consistent unit). *)

val gamma : times -> float
(** User-time expansion factor: T_numa / T_local (equation 1). *)

val alpha : times -> float
(** Equation 4: (T_global - T_numa) / (T_global - T_local). Degenerate
    denominators (a program that never references writable memory) yield
    [nan]; callers render that as the paper's "na". *)

val beta : times -> gl:float -> float
(** Equation 5: ((T_global - T_local) / T_local) * (L / (G - L)). *)

val predicted_t_numa : t_local:float -> alpha:float -> beta:float -> gl:float -> float
(** Equation 2, forward direction: used by tests to confirm the
    solve/measure round trip and by the what-if ablations. *)

val valid_times : times -> bool
(** Sanity: all positive and T_local <= T_numa <= T_global (up to noise
    tolerance); the model's applicability condition. *)
