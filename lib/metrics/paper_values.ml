type table3_row = {
  app : string;
  t_global : float;
  t_numa : float;
  t_local : float;
  alpha : float option;
  beta : float;
  gamma : float;
}

let table3 =
  [
    { app = "parmult"; t_global = 67.4; t_numa = 67.4; t_local = 67.3; alpha = None; beta = 0.00; gamma = 1.00 };
    { app = "gfetch"; t_global = 60.2; t_numa = 60.2; t_local = 26.5; alpha = Some 0.0; beta = 1.0; gamma = 2.27 };
    { app = "imatmult"; t_global = 82.1; t_numa = 69.0; t_local = 68.2; alpha = Some 0.94; beta = 0.26; gamma = 1.01 };
    { app = "primes1"; t_global = 18502.2; t_numa = 17413.9; t_local = 17413.3; alpha = Some 1.0; beta = 0.06; gamma = 1.00 };
    { app = "primes2"; t_global = 5754.3; t_numa = 4972.9; t_local = 4968.9; alpha = Some 0.99; beta = 0.16; gamma = 1.00 };
    { app = "primes3"; t_global = 39.1; t_numa = 37.4; t_local = 28.8; alpha = Some 0.17; beta = 0.36; gamma = 1.30 };
    { app = "fft"; t_global = 687.4; t_numa = 449.0; t_local = 438.4; alpha = Some 0.96; beta = 0.56; gamma = 1.02 };
    { app = "plytrace"; t_global = 56.9; t_numa = 38.8; t_local = 38.0; alpha = Some 0.96; beta = 0.50; gamma = 1.02 };
  ]

type table4_row = {
  app : string;
  s_numa : float;
  s_global : float;
  delta_s : float option;
  t_numa : float;
  overhead_pct : float;
}

let table4 =
  [
    { app = "imatmult"; s_numa = 4.5; s_global = 1.2; delta_s = Some 3.3; t_numa = 82.1; overhead_pct = 4.0 };
    { app = "primes1"; s_numa = 1.4; s_global = 2.3; delta_s = None; t_numa = 17413.9; overhead_pct = 0.0 };
    { app = "primes2"; s_numa = 29.9; s_global = 8.5; delta_s = Some 21.4; t_numa = 4972.9; overhead_pct = 0.4 };
    { app = "primes3"; s_numa = 11.2; s_global = 1.9; delta_s = Some 9.3; t_numa = 37.4; overhead_pct = 24.9 };
    { app = "fft"; s_numa = 21.1; s_global = 10.0; delta_s = Some 11.1; t_numa = 449.0; overhead_pct = 2.5 };
  ]

let find_table3 app = List.find_opt (fun (r : table3_row) -> r.app = app) table3
let find_table4 app = List.find_opt (fun (r : table4_row) -> r.app = app) table4
