let sequential_map f items = List.map f items

let domain_map ~jobs f (items : 'a list) =
  let items = Array.of_list items in
  let n = Array.length items in
  let results : ('b, exn * Printexc.raw_backtrace) result option array =
    Array.make n None
  in
  let next = Atomic.make 0 in
  let rec worker () =
    let i = Atomic.fetch_and_add next 1 in
    if i < n then begin
      let r =
        try Ok (f items.(i))
        with e -> Error (e, Printexc.get_raw_backtrace ())
      in
      results.(i) <- Some r;
      worker ()
    end
  in
  let helpers = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join helpers;
  Array.to_list
    (Array.map
       (function
         | Some (Ok v) -> v
         | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
         | None -> assert false)
       results)

let map ?(jobs = 1) f items =
  let n = List.length items in
  let jobs = min (max jobs 1) (max n 1) in
  if jobs = 1 then sequential_map f items else domain_map ~jobs f items
