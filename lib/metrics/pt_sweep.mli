(** The page-table sweep: every application run under each page-table
    materialisation mode, on each topology, against the free-translation
    run of the same machine.

    Translation used to be free; [--pt-mode] makes it a priced multi-level
    walk whose cost depends on where the table pages live. The sweep
    separates walk-heavy applications (TLB-hostile reference streams that
    miss the software TLB often) from walk-light ones, and shows where
    Mitosis-style per-node replication pays: the walk share collapses
    exactly when walks were many {e and} remote, at the price of the
    shootdown traffic every PTE change now multiplies. Every materialised
    run is paranoid, so the page-table relation (master table = exact
    image of the MMU, replicas = exact image of the master) is audited
    from the daemon tick while tables churn; the sweep reports the total
    violation count so a regression fails loudly. *)

open Numa_machine

type variant = { mode : Pt.mode; topology : string }

val variant_name : variant -> string
(** e.g. ["replicated/ace"]. *)

val default_modes : unit -> Pt.mode list
(** [Off], [Shared], eager [Replicated None], on-demand
    [Replicated (Some 2)]. *)

val default_topologies : unit -> string list
(** ["ace"] (shared global bus) and ["multi-socket"] (distance matters
    most, so replication has the most to win). *)

val default_variants : unit -> variant list
(** The full {!default_modes} x {!default_topologies} product, grouped by
    topology. *)

type cell = {
  app_name : string;
  time_s : float;  (** user + system seconds — walks are kernel work *)
  slowdown : float;  (** vs the [Off] run of the same app and topology *)
  walks : int;
  walk_levels : int;
  walk_ns : float;
  walk_share : float;  (** fraction of total time spent walking tables *)
  pte_updates : int;
  pte_shootdowns : int;
  replicas_built : int;
  global_pt_pages : int;  (** table pages that fell back to the shared level *)
  tlb_miss_rate : float;  (** what makes an app walk-heavy in the first place *)
  invariant_violations : int;
  r : Numa_system.Report.t;
}

type row = {
  variant : variant;
  cells : cell list;  (** one per app, in app order *)
  mean_slowdown : float;
  mean_walk_share : float;
  walks : int;
  pte_updates : int;
  pte_shootdowns : int;
  replicas_built : int;
  global_pt_pages : int;
  invariant_checks : int;
  invariant_violations : int;  (** 0 = every audit passed while tables churned *)
}

val run :
  ?jobs:int ->
  ?apps:Numa_apps.App_sig.t list ->
  ?variants:variant list ->
  ?spec:Runner.run_spec ->
  unit ->
  row list
(** Measure the [variants] x [apps] matrix through {!Parallel.map}. Each
    variant's topology overrides the base machine (then [spec]'s
    [config_tweak] applies on top); each materialised run forces
    [paranoid]. [Off] rows reuse the baseline runs, so they always read
    slowdown 1.00. Rows come back in variant order. Defaults:
    {!default_variants} against the Table 4 set. [Invalid_argument] if
    [apps] or [variants] is empty or a topology is unknown. *)

val total_violations : row list -> int

val render : row list -> string
(** Text table: per-app slowdown columns plus walk-share, walk, shootdown
    and violation totals, one row per variant in matrix order. *)

val to_json : row list -> Numa_obs.Json.t
(** The whole sweep, including every cell's full report — the artifact the
    CI smoke job uploads. *)
