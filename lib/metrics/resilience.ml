open Numa_util
module Report = Numa_system.Report
module Plan = Numa_faults.Plan
module R = Numa_apps.Resilience

(* The sweep's machine and traffic are pinned, not inherited: the gate it
   feeds (retry+breaker recovers >= 2x the no-resilience goodput under a
   mid-serving node outage) is an acceptance criterion, so the scenario
   that demonstrates it must not drift with the caller's --cpus/--scale.
   4 shard workers at 11k req/s is ~80% utilisation — enough headroom to
   serve cleanly when intact, no slack to hide an outage backlog. *)
let sweep_cpus = 4
let sweep_scale = 0.05
let deadline_us = 1_500
let arrival () = Dist.arrival ~rate_per_s:11_000. ~burst:1. ()

(* Mid-serving outage with recovery: arrivals span ~100..191 ms, node 1
   dies at 110 ms and returns at 160 ms. The no-resilience tier keeps
   serving its backlog in arrival order and misses deadlines for the rest
   of the run; breakers shed the stale backlog and catch back up. *)
let node_offline_plan = "node-offline:1@110,node-online:1@160"

(* The bus degrade covers the same window. Serve pushes little bus
   traffic, so this scenario measures (honestly) how little a degraded
   interconnect moves an almost-local workload. *)
let link_degrade_plan = "link-degrade:0:1:8@110..160"

(* Squeeze node 1's frame pool to zero before warmup faults anything in:
   shard 1 can never place its pages locally and serves out of global
   memory for the whole run — a permanently slow shard, the classic
   breaker motivation. *)
let frame_squeeze_plan = "frame-squeeze:1:0@0"

type mechanisms = {
  label : string;
  retry : R.retry option;
  hedge : R.hedge option;
  breaker : R.breaker option;
}

let default_retry = { R.max_attempts = 3; base_backoff_ns = 0.2e6; max_backoff_ns = 2e6; jitter = 0.5 }
let default_hedge = { R.factor = 1. }
let default_breaker = { R.failures = 5; cooldown_ns = 5e6 }

let configs () =
  [
    { label = "no-resilience"; retry = None; hedge = None; breaker = None };
    { label = "retry"; retry = Some default_retry; hedge = None; breaker = None };
    {
      label = "retry+hedge";
      retry = Some default_retry;
      hedge = Some default_hedge;
      breaker = None;
    };
    {
      label = "retry+breaker";
      retry = Some default_retry;
      hedge = None;
      breaker = Some default_breaker;
    };
  ]

type scenario = { scenario : string; plan : string }

let scenarios () =
  [
    { scenario = "intact"; plan = "" };
    { scenario = "node-offline"; plan = node_offline_plan };
    { scenario = "link-degrade"; plan = link_degrade_plan };
    { scenario = "frame-squeeze"; plan = frame_squeeze_plan };
  ]

type cell = {
  config : string;
  scenario_name : string;
  res : Report.resilience;
  serving : Report.serving;
  invariant_checks : int;
  invariant_violations : int;
  user_s : float;
  r : Report.t;
}

type row = { name : string; cells : cell list (* one per config, slate order *) }

let plan_of_string s =
  if s = "" then Plan.empty
  else
    match Plan.of_string s with
    | Ok p -> p
    | Error msg -> invalid_arg ("Resilience sweep: bad plan: " ^ msg)

let resilience_of (r : Report.t) ~config ~scenario =
  match r.Report.resilience with
  | Some res -> res
  | None ->
      invalid_arg
        (Printf.sprintf
           "Resilience sweep: run %s/%s produced no resilience section" scenario
           config)

let serving_of (r : Report.t) ~config ~scenario =
  match r.Report.serving with
  | Some s -> s
  | None ->
      invalid_arg
        (Printf.sprintf "Resilience sweep: run %s/%s produced no serving section"
           scenario config)

let run ?jobs ?(spec = Runner.default_spec) () =
  let spec =
    {
      spec with
      Runner.n_cpus = sweep_cpus;
      nthreads = sweep_cpus;
      scale = sweep_scale;
      paranoid = true;
      config_tweak = Fun.id;
      faults = Plan.empty;
    }
  in
  let configs = configs () in
  let scenarios = scenarios () in
  let grid =
    List.concat_map (fun sc -> List.map (fun c -> (sc, c)) configs) scenarios
  in
  let measured =
    Parallel.map ?jobs
      (fun (sc, c) ->
        let resilience = R.make ~deadline_us ?retry:c.retry ?hedge:c.hedge ?breaker:c.breaker () in
        let app = Numa_apps.Serve.make ~arrival:(arrival ()) ~resilience () in
        let r =
          Runner.run app { spec with Runner.faults = plan_of_string sc.plan }
        in
        let invariant_checks, invariant_violations =
          match r.Report.robustness with
          | Some rb -> (rb.Report.invariant_checks, rb.Report.invariant_violations)
          | None -> (0, 0)
        in
        {
          config = c.label;
          scenario_name = sc.scenario;
          res = resilience_of r ~config:c.label ~scenario:sc.scenario;
          serving = serving_of r ~config:c.label ~scenario:sc.scenario;
          invariant_checks;
          invariant_violations;
          user_s = Report.total_user_s r;
          r;
        })
      grid
  in
  let rec group scenarios measured =
    match scenarios with
    | [] -> []
    | sc :: rest ->
        let n = List.length configs in
        let mine = List.filteri (fun i _ -> i < n) measured in
        let remaining = List.filteri (fun i _ -> i >= n) measured in
        { name = sc.scenario; cells = mine } :: group rest remaining
  in
  group scenarios measured

let all_cells rows = List.concat_map (fun row -> row.cells) rows

let total_violations rows =
  List.fold_left
    (fun acc c -> acc + c.invariant_violations + c.res.Report.conservation_violations)
    0 (all_cells rows)

let find_cell rows ~scenario ~config =
  match List.find_opt (fun row -> row.name = scenario) rows with
  | None -> None
  | Some row -> List.find_opt (fun c -> c.config = config) row.cells

(* Goodput of the same config on the intact machine — the denominator of
   the "recovered" column. *)
let intact_goodput rows ~config =
  match find_cell rows ~scenario:"intact" ~config with
  | Some c -> c.res.Report.goodput_rps
  | None -> nan

type gate = {
  no_resilience_goodput : float;
  retry_breaker_goodput : float;
  ratio : float;  (** retry+breaker over no-resilience, node-offline scenario *)
}

(* The CI acceptance gate: under the node-offline scenario, retry+breaker
   must keep at least twice the goodput of the no-resilience tier on the
   same seed. *)
let node_offline_gate rows =
  let goodput config =
    match find_cell rows ~scenario:"node-offline" ~config with
    | Some c -> c.res.Report.goodput_rps
    | None -> nan
  in
  let base = goodput "no-resilience" in
  let rb = goodput "retry+breaker" in
  {
    no_resilience_goodput = base;
    retry_breaker_goodput = rb;
    ratio = (if base > 0. then rb /. base else nan);
  }

let retries_started (res : Report.resilience) =
  let total = Array.fold_left ( + ) 0 res.Report.attempts_started in
  let firsts = if Array.length res.Report.attempts_started > 0 then res.Report.attempts_started.(0) else 0 in
  max 0 (total - firsts - res.Report.hedges)

let render rows =
  let table =
    Text_table.create
      ~columns:
        [
          ("Scenario", Text_table.Left);
          ("Config", Text_table.Left);
          ("SLO %", Text_table.Right);
          ("goodput/s", Text_table.Right);
          ("vs intact", Text_table.Right);
          ("timeouts", Text_table.Right);
          ("retries", Text_table.Right);
          ("hedges (wins)", Text_table.Right);
          ("shed", Text_table.Right);
          ("opens", Text_table.Right);
          ("failovers", Text_table.Right);
          ("violations", Text_table.Right);
        ]
  in
  List.iter
    (fun row ->
      List.iter
        (fun c ->
          let res = c.res in
          let intact = intact_goodput rows ~config:c.config in
          Text_table.add_row table
            [
              row.name;
              c.config;
              Printf.sprintf "%.1f" res.Report.slo_pct;
              Printf.sprintf "%.0f" res.Report.goodput_rps;
              (if Float.is_nan intact || intact <= 0. then "-"
               else Printf.sprintf "%.2fx" (res.Report.goodput_rps /. intact));
              Text_table.cell_int res.Report.timeouts;
              Text_table.cell_int (retries_started res);
              Printf.sprintf "%d (%d)" res.Report.hedges res.Report.hedge_wins;
              Text_table.cell_int res.Report.shed;
              Text_table.cell_int res.Report.breaker_opens;
              Text_table.cell_int res.Report.shard_failovers;
              Text_table.cell_int
                (c.invariant_violations + res.Report.conservation_violations);
            ])
        row.cells)
    rows;
  let gate = node_offline_gate rows in
  Printf.sprintf
    "Resilience sweep: %d shard workers at 11k req/s open-loop, %d us deadline, \
     identical offered load and seed in every cell. \"vs intact\" compares each \
     config's goodput (in-deadline completions per second of serving span) to \
     its own intact run. Node-offline recovery: retry+breaker holds %.0f \
     goodput/s against %.0f without resilience (%.2fx, gate >= 2x). %d \
     invariant/conservation violations across the grid.\n%s"
    sweep_cpus deadline_us gate.retry_breaker_goodput gate.no_resilience_goodput
    gate.ratio (total_violations rows)
    (Text_table.render table)

let resilience_to_json (res : Report.resilience) : Numa_obs.Json.t =
  let open Numa_obs.Json in
  Obj
    [
      ("spec", String res.Report.res_spec);
      ("deadline_us", Int res.Report.deadline_us);
      ("arrived", Int res.Report.arrived);
      ("served_in_deadline", Int res.Report.served_in_deadline);
      ("timed_out", Int res.Report.timed_out);
      ("shed", Int res.Report.shed);
      ("timeouts", Int res.Report.timeouts);
      ( "attempts_started",
        List (Array.to_list (Array.map (fun n -> Int n) res.Report.attempts_started))
      );
      ("hedges", Int res.Report.hedges);
      ("hedge_wins", Int res.Report.hedge_wins);
      ("breaker_opens", Int res.Report.breaker_opens);
      ("breaker_transitions", Int res.Report.breaker_transitions);
      ("shard_failovers", Int res.Report.shard_failovers);
      ("goodput_rps", Float res.Report.goodput_rps);
      ("slo_pct", Float res.Report.slo_pct);
      ("conservation_violations", Int res.Report.conservation_violations);
    ]

let to_json rows : Numa_obs.Json.t =
  let open Numa_obs.Json in
  let gate = node_offline_gate rows in
  let cell_json c =
    let intact = intact_goodput rows ~config:c.config in
    Obj
      [
        ("config", String c.config);
        ("scenario", String c.scenario_name);
        ("resilience", resilience_to_json c.res);
        ( "goodput_vs_intact",
          if Float.is_nan intact || intact <= 0. then Null
          else Float (c.res.Report.goodput_rps /. intact) );
        ("user_s", Float c.user_s);
        ("invariant_checks", Int c.invariant_checks);
        ("invariant_violations", Int c.invariant_violations);
        ("report", Report.to_json c.r);
      ]
  in
  Obj
    [
      ("total_violations", Int (total_violations rows));
      ( "node_offline_gate",
        Obj
          [
            ("no_resilience_goodput", Float gate.no_resilience_goodput);
            ("retry_breaker_goodput", Float gate.retry_breaker_goodput);
            ("ratio", Float gate.ratio);
          ] );
      ( "scenarios",
        List
          (List.map
             (fun row ->
               Obj
                 [
                   ("scenario", String row.name);
                   ("configs", List (List.map cell_json row.cells));
                 ])
             rows) );
    ]
