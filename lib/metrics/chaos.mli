(** The chaos sweep: every Table 4 application under a matrix of injected
    fault scenarios, with the protocol invariant checker riding along.

    Each cell is one {e faulted} run of an application, priced against the
    same application's fault-free single-CPU run (the T_local baseline),
    so gamma reads exactly like Table 4's: how much slower than the intact
    all-local machine. A graceful system degrades — gamma grows toward
    the all-global figure as local memory goes away — but never answers
    wrong: every faulted run is paranoid, and the sweep reports the total
    violation count so a regression fails loudly. *)

type scenario = { name : string; plan : Numa_faults.Plan.t }

val scenario : string -> string -> scenario
(** [scenario name spec] parses [spec] with {!Numa_faults.Plan.of_string};
    [Invalid_argument] on a malformed spec. *)

val default_scenarios : unit -> scenario list
(** The shipped matrix: healthy (fault-free reference), node-offline,
    node-flap, link-degrade, frame-squeeze, spurious-shootdowns, and a
    combined storm. Every plan fits a two-CPU-node machine. *)

type cell = {
  app_name : string;
  gamma : float;  (** faulted T_numa over the {e intact} machine's T_local *)
  user_s : float;
  r : Numa_system.Report.t;  (** the faulted run's report *)
}

type row = {
  scenario : scenario;
  cells : cell list;  (** one per app, in app order *)
  mean_gamma : float;
  faults_injected : int;
  node_drains : int;
  drained_pages : int;
  reclaim_retries : int;
  spurious_shootdowns : int;
  invariant_checks : int;
  invariant_violations : int;  (** 0 = the protocol stayed coherent *)
}

val run :
  ?jobs:int ->
  ?apps:Numa_apps.App_sig.t list ->
  ?scenarios:scenario list ->
  ?spec:Runner.run_spec ->
  unit ->
  row list
(** Measure the [scenarios] x [apps] matrix through {!Parallel.map}
    ([spec.faults] is ignored; each row replaces it with its scenario's
    plan and forces [paranoid]). Rows come back in scenario order.
    Defaults: {!default_scenarios} against the Table 4 set. *)

val total_violations : row list -> int

val render : topology:string -> row list -> string
(** Text table: per-app gamma columns plus fault/drain/reclaim/violation
    totals, one row per scenario in matrix order. *)

val to_json : topology:string -> row list -> Numa_obs.Json.t
(** The JSON artifact: per-scenario robustness totals and per-app gamma,
    each cell carrying its full faulted {!Numa_system.Report.to_json}. *)
