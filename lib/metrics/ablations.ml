open Numa_util
module System = Numa_system.System
module Report = Numa_system.Report
module App_sig = Numa_apps.App_sig

(* --- threshold sweep ---------------------------------------------------- *)

type threshold_row = {
  ts_app : string;
  ts_threshold : int option;
  ts_t_numa : float;
  ts_t_system : float;
  ts_gamma : float;
  ts_moves : int;
  ts_pins : int;
}

let default_thresholds = [ Some 0; Some 1; Some 2; Some 4; Some 8; Some 16; None ]

let threshold_sweep ?apps ?jobs ?(thresholds = default_thresholds)
    ?(spec = Runner.default_spec) () =
  let apps =
    match apps with
    | Some l -> l
    | None -> [ Option.get (Numa_apps.Registry.find "primes3") ]
  in
  (* T_local once per app, to derive gamma per threshold. *)
  let local_spec = { spec with Runner.n_cpus = 1; nthreads = 1 } in
  let t_locals =
    Parallel.map ?jobs
      (fun (app : App_sig.t) -> Report.total_user_s (Runner.run app local_spec))
      apps
  in
  let work =
    List.concat_map
      (fun ((app : App_sig.t), t_local) ->
        List.map (fun threshold -> (app, t_local, threshold)) thresholds)
      (List.combine apps t_locals)
  in
  Parallel.map ?jobs
    (fun ((app : App_sig.t), t_local, threshold) ->
      let policy =
        match threshold with
        | Some t -> System.Move_limit { threshold = t }
        | None -> System.Never_pin
      in
      let r = Runner.run app { spec with Runner.policy } in
      let t_numa = Report.total_user_s r in
      {
        ts_app = app.App_sig.name;
        ts_threshold = threshold;
        ts_t_numa = t_numa;
        ts_t_system = Report.total_system_s r;
        ts_gamma = t_numa /. t_local;
        ts_moves = r.Report.numa_moves;
        ts_pins = r.Report.pins;
      })
    work

let render_threshold_sweep rows =
  let table =
    Text_table.create
      ~columns:
        [
          ("Application", Text_table.Left);
          ("threshold", Text_table.Right);
          ("Tnuma", Text_table.Right);
          ("Tsystem", Text_table.Right);
          ("gamma", Text_table.Right);
          ("moves", Text_table.Right);
          ("pins", Text_table.Right);
        ]
  in
  List.iter
    (fun r ->
      Text_table.add_row table
        [
          r.ts_app;
          (match r.ts_threshold with Some t -> string_of_int t | None -> "inf");
          Text_table.cell_f1 r.ts_t_numa;
          Text_table.cell_f1 r.ts_t_system;
          Text_table.cell_f2 r.ts_gamma;
          string_of_int r.ts_moves;
          string_of_int r.ts_pins;
        ])
    rows;
  "Ablation A1: move-threshold sweep (section 2.3.2 policy parameter)\n"
  ^ Text_table.render table

(* --- scheduler study ----------------------------------------------------- *)

type scheduler_row = {
  sc_app : string;
  sc_affinity_user : float;
  sc_single_queue_user : float;
  sc_slowdown : float;
}

let scheduler_study ?apps ?jobs ?(spec = Runner.default_spec) () =
  let apps =
    match apps with
    | Some l -> l
    | None ->
        List.filter_map Numa_apps.Registry.find [ "imatmult"; "fft"; "plytrace" ]
  in
  Parallel.map ?jobs
    (fun (app : App_sig.t) ->
      let affinity =
        Runner.run app { spec with Runner.scheduler = Numa_sim.Engine.Affinity }
      in
      (* Original Mach: a single run queue; oversubscribe so migration
         actually happens. *)
      let single =
        Runner.run app
          {
            spec with
            Runner.scheduler = Numa_sim.Engine.Single_queue;
            nthreads = spec.Runner.nthreads;
          }
      in
      let a = Report.total_user_s affinity and s = Report.total_user_s single in
      {
        sc_app = app.App_sig.name;
        sc_affinity_user = a;
        sc_single_queue_user = s;
        sc_slowdown = (if a > 0. then s /. a else 0.);
      })
    apps

let render_scheduler_study rows =
  let table =
    Text_table.create
      ~columns:
        [
          ("Application", Text_table.Left);
          ("affinity (s)", Text_table.Right);
          ("single-queue (s)", Text_table.Right);
          ("slowdown", Text_table.Right);
        ]
  in
  List.iter
    (fun r ->
      Text_table.add_row table
        [
          r.sc_app;
          Text_table.cell_f1 r.sc_affinity_user;
          Text_table.cell_f1 r.sc_single_queue_user;
          Text_table.cell_f2 r.sc_slowdown;
        ])
    rows;
  "Ablation A3: processor affinity vs original Mach single queue (section 4.7)\n"
  ^ Text_table.render table

(* --- G/L sweep ------------------------------------------------------------ *)

type gl_row = { gl_factor : float; gl_ratio : float; gl_gamma : float; gl_alpha : float }

let gl_sweep ?app ?jobs ?(factors = [ 0.75; 1.0; 1.5; 2.0; 3.0 ])
    ?(spec = Runner.default_spec) () =
  let app =
    match app with Some a -> a | None -> Option.get (Numa_apps.Registry.find "fft")
  in
  Parallel.map ?jobs
    (fun factor ->
      let tweak (c : Numa_machine.Config.t) =
        {
          c with
          Numa_machine.Config.global_fetch_ns = c.Numa_machine.Config.global_fetch_ns *. factor;
          global_store_ns = c.Numa_machine.Config.global_store_ns *. factor;
        }
      in
      let spec = { spec with Runner.config_tweak = tweak } in
      let m = Runner.measure app spec in
      {
        gl_factor = factor;
        gl_ratio =
          Numa_machine.Config.global_to_local_ratio
            (tweak (Numa_machine.Config.ace ~n_cpus:spec.Runner.n_cpus ()))
            ~store_fraction:0.45;
        gl_gamma = m.Runner.gamma;
        gl_alpha = m.Runner.alpha;
      })
    factors

let render_gl_sweep rows =
  let table =
    Text_table.create
      ~columns:
        [
          ("global x", Text_table.Right);
          ("G/L", Text_table.Right);
          ("gamma", Text_table.Right);
          ("alpha", Text_table.Right);
        ]
  in
  List.iter
    (fun r ->
      Text_table.add_row table
        [
          Text_table.cell_f2 r.gl_factor;
          Text_table.cell_f2 r.gl_ratio;
          Text_table.cell_f2 r.gl_gamma;
          Text_table.cell_f2 r.gl_alpha;
        ])
    rows;
  "Ablation A4: sensitivity to the global/local latency ratio\n"
  ^ Text_table.render table

(* --- pragma study ---------------------------------------------------------- *)

type pragma_row = { pr_variant : string; pr_t_numa : float; pr_s_numa : float; pr_moves : int }

let pragma_study ?(spec = Runner.default_spec) () =
  List.map
    (fun name ->
      let app = Option.get (Numa_apps.Registry.find name) in
      let r = Runner.run app spec in
      {
        pr_variant = name;
        pr_t_numa = Report.total_user_s r;
        pr_s_numa = Report.total_system_s r;
        pr_moves = r.Report.numa_moves;
      })
    [ "primes3"; "primes3-pragma" ]

let render_pragma_study rows =
  let table =
    Text_table.create
      ~columns:
        [
          ("variant", Text_table.Left);
          ("Tnuma", Text_table.Right);
          ("Snuma", Text_table.Right);
          ("moves", Text_table.Right);
        ]
  in
  List.iter
    (fun r ->
      Text_table.add_row table
        [
          r.pr_variant;
          Text_table.cell_f1 r.pr_t_numa;
          Text_table.cell_f1 r.pr_s_numa;
          string_of_int r.pr_moves;
        ])
    rows;
  "Ablation A5: noncacheable pragma on primes3's shared vectors (section 4.3)\n"
  ^ Text_table.render table

(* --- unix master ------------------------------------------------------------ *)

type unix_master_row = {
  um_variant : string;
  um_user : float;
  um_system : float;
  um_stack_global_refs : int;
}

let stack_global_refs (r : Report.t) =
  List.fold_left
    (fun acc (name, c) ->
      let is_stack =
        (* stack regions are named "<thread>.stack" by the system layer *)
        String.length name > 6 && String.sub name (String.length name - 6) 6 = ".stack"
      in
      if is_stack then acc + c.Report.global_reads + c.Report.global_writes else acc)
    0 r.Report.per_region

let unix_master_study ?(spec = Runner.default_spec) () =
  let app = Option.get (Numa_apps.Registry.find "syscall-mix") in
  List.map
    (fun (variant, unix_master) ->
      let r = Runner.run app { spec with Runner.unix_master } in
      {
        um_variant = variant;
        um_user = Report.total_user_s r;
        um_system = Report.total_system_s r;
        um_stack_global_refs = stack_global_refs r;
      })
    [ ("master-touches-stacks", true); ("fixed-syscalls", false) ]

let render_unix_master_study rows =
  let table =
    Text_table.create
      ~columns:
        [
          ("variant", Text_table.Left);
          ("user (s)", Text_table.Right);
          ("system (s)", Text_table.Right);
          ("global stack refs", Text_table.Right);
        ]
  in
  List.iter
    (fun r ->
      Text_table.add_row table
        [
          r.um_variant;
          Text_table.cell_f1 r.um_user;
          Text_table.cell_f1 r.um_system;
          string_of_int r.um_stack_global_refs;
        ])
    rows;
  "Ablation A6: system calls on the Unix master sharing user stacks (section 4.6)\n"
  ^ Text_table.render table

(* --- processor-count sweep --------------------------------------------------------- *)

type cpu_row = {
  cs_app : string;
  cs_cpus : int;
  cs_t_numa : float;
  cs_gamma : float;
  cs_alpha_counted : float;
}

let cpu_sweep ?apps ?jobs ?(cpu_counts = [ 2; 4; 6; 8 ]) ?(spec = Runner.default_spec) () =
  let apps =
    match apps with
    | Some l -> l
    | None -> List.filter_map Numa_apps.Registry.find [ "imatmult"; "primes3" ]
  in
  let t_locals =
    Parallel.map ?jobs
      (fun (app : App_sig.t) ->
        Report.total_user_s (Runner.run app { spec with Runner.n_cpus = 1; nthreads = 1 }))
      apps
  in
  let work =
    List.concat_map
      (fun ((app : App_sig.t), t_local) ->
        List.map (fun cpus -> (app, t_local, cpus)) cpu_counts)
      (List.combine apps t_locals)
  in
  Parallel.map ?jobs
    (fun ((app : App_sig.t), t_local, cpus) ->
      let r = Runner.run app { spec with Runner.n_cpus = cpus; nthreads = cpus } in
      let t_numa = Report.total_user_s r in
      {
        cs_app = app.App_sig.name;
        cs_cpus = cpus;
        cs_t_numa = t_numa;
        cs_gamma = (if t_local > 0. then t_numa /. t_local else 0.);
        cs_alpha_counted = r.Report.alpha_counted;
      })
    work

let render_cpu_sweep rows =
  let table =
    Text_table.create
      ~columns:
        [
          ("Application", Text_table.Left);
          ("CPUs", Text_table.Right);
          ("Tnuma", Text_table.Right);
          ("gamma", Text_table.Right);
          ("alpha", Text_table.Right);
        ]
  in
  List.iter
    (fun r ->
      Text_table.add_row table
        [
          r.cs_app;
          string_of_int r.cs_cpus;
          Text_table.cell_f1 r.cs_t_numa;
          Text_table.cell_f2 r.cs_gamma;
          Text_table.cell_f2 r.cs_alpha_counted;
        ])
    rows;
  "Ablation A13: measurement stability across processor counts\n"
  ^ Text_table.render table

(* --- butterfly-class machines ------------------------------------------------------- *)

type butterfly_row = {
  bf_app : string;
  bf_gamma_ace : float;
  bf_gamma_butterfly : float;
  bf_alpha_ace : float;
  bf_alpha_butterfly : float;
}

let butterfly_study ?apps ?jobs ?(spec = Runner.default_spec) () =
  let apps =
    match apps with
    | Some l -> l
    | None -> List.filter_map Numa_apps.Registry.find [ "imatmult"; "primes3"; "fft" ]
  in
  Parallel.map ?jobs
    (fun (app : App_sig.t) ->
      let measure tweak =
        Runner.measure app { spec with Runner.config_tweak = tweak }
      in
      let ace = measure Fun.id in
      let butterfly =
        measure (fun (c : Numa_machine.Config.t) ->
            let b = Numa_machine.Config.butterfly_like ~n_cpus:c.Numa_machine.Config.n_cpus () in
            b)
      in
      {
        bf_app = app.App_sig.name;
        bf_gamma_ace = ace.Runner.gamma;
        bf_gamma_butterfly = butterfly.Runner.gamma;
        bf_alpha_ace = ace.Runner.r_numa.Report.alpha_counted;
        bf_alpha_butterfly = butterfly.Runner.r_numa.Report.alpha_counted;
      })
    apps

let render_butterfly_study rows =
  let table =
    Text_table.create
      ~columns:
        [
          ("Application", Text_table.Left);
          ("gamma ACE", Text_table.Right);
          ("gamma Butterfly", Text_table.Right);
          ("alpha ACE", Text_table.Right);
          ("alpha Butterfly", Text_table.Right);
        ]
  in
  List.iter
    (fun r ->
      Text_table.add_row table
        [
          r.bf_app;
          Text_table.cell_f2 r.bf_gamma_ace;
          Text_table.cell_f2 r.bf_gamma_butterfly;
          Text_table.cell_f2 r.bf_alpha_ace;
          Text_table.cell_f2 r.bf_alpha_butterfly;
        ])
    rows;
  "Ablation A14: a Butterfly-class machine (shared level at remote speed, section 4.4)\n"
  ^ Text_table.render table

(* --- topology sweep ------------------------------------------------------------ *)

type topology_row = {
  tp_topology : string;
  tp_app : string;
  tp_t_numa : float;
  tp_gamma : float;
  tp_alpha : float;
  tp_remote_refs : int;
  tp_global_refs : int;
  tp_moves : int;
}

(* The same workload on machines that differ only in their distance
   matrix: the classic two-level ACE, the scalar "butterfly-like"
   retiming, the true all-local butterfly (shared level striped over CPU
   nodes), and a two-tier 4-socket matrix. The placement machinery is
   identical in every run — exactly the machine-independence claim of
   section 4.4. *)
let topology_sweep ?apps ?jobs ?(topologies = Numa_machine.Config.builtin_topologies)
    ?(spec = Runner.default_spec) () =
  let apps =
    match apps with
    | Some l -> l
    | None -> List.filter_map Numa_apps.Registry.find [ "imatmult"; "primes3" ]
  in
  let work =
    List.concat_map
      (fun (app : App_sig.t) -> List.map (fun topo -> (app, topo)) topologies)
      apps
  in
  Parallel.map ?jobs
    (fun ((app : App_sig.t), topo_name) ->
      let tweak (c : Numa_machine.Config.t) =
        match
          Numa_machine.Config.of_topology_name ~n_cpus:c.Numa_machine.Config.n_cpus
            topo_name
        with
        | Some c' -> c'
        | None -> failwith ("topology_sweep: unknown topology " ^ topo_name)
      in
      let m = Runner.measure app { spec with Runner.config_tweak = tweak } in
      let refs = m.Runner.r_numa.Report.refs_all in
      {
        tp_topology = topo_name;
        tp_app = app.App_sig.name;
        tp_t_numa = m.Runner.times.Model.t_numa;
        tp_gamma = m.Runner.gamma;
        tp_alpha = m.Runner.r_numa.Report.alpha_counted;
        tp_remote_refs = refs.Report.remote_reads + refs.Report.remote_writes;
        tp_global_refs = refs.Report.global_reads + refs.Report.global_writes;
        tp_moves = m.Runner.r_numa.Report.numa_moves;
      })
    work

let render_topology_sweep rows =
  let table =
    Text_table.create
      ~columns:
        [
          ("Application", Text_table.Left);
          ("topology", Text_table.Left);
          ("Tnuma", Text_table.Right);
          ("gamma", Text_table.Right);
          ("alpha", Text_table.Right);
          ("global refs", Text_table.Right);
          ("remote refs", Text_table.Right);
          ("moves", Text_table.Right);
        ]
  in
  List.iter
    (fun r ->
      Text_table.add_row table
        [
          r.tp_app;
          r.tp_topology;
          Text_table.cell_f1 r.tp_t_numa;
          Text_table.cell_f2 r.tp_gamma;
          Text_table.cell_f2 r.tp_alpha;
          string_of_int r.tp_global_refs;
          string_of_int r.tp_remote_refs;
          string_of_int r.tp_moves;
        ])
    rows;
  "Ablation A15: one policy across N-node topologies (ACE / butterfly / multi-socket)\n"
  ^ Text_table.render table

(* --- bus contention --------------------------------------------------------------- *)

type bus_row = {
  bu_bandwidth_mb_s : float;
  bu_t_numa : float;
  bu_t_global : float;
  bu_bus_delay_s : float;
  bu_gamma : float;
}

let bus_study ?app ?jobs ?(bandwidths = [ 0.; 80.; 40.; 20.; 10. ])
    ?(spec = Runner.default_spec) () =
  let app =
    match app with Some a -> a | None -> Option.get (Numa_apps.Registry.find "gfetch")
  in
  Parallel.map ?jobs
    (fun mb_s ->
      let words_per_ns = mb_s *. 1e6 /. 4. /. 1e9 in
      let tweak (c : Numa_machine.Config.t) =
        { c with Numa_machine.Config.bus_words_per_ns = words_per_ns }
      in
      let spec = { spec with Runner.config_tweak = tweak } in
      let r_numa = Runner.run app spec in
      let r_global = Runner.run app { spec with Runner.policy = System.All_global } in
      let local_spec = { spec with Runner.n_cpus = 1; nthreads = 1 } in
      let t_local = Report.total_user_s (Runner.run app local_spec) in
      let t_numa = Report.total_user_s r_numa in
      {
        bu_bandwidth_mb_s = mb_s;
        bu_t_numa = t_numa;
        bu_t_global = Report.total_user_s r_global;
        bu_bus_delay_s = r_global.Report.bus_delay_ns /. 1e9;
        bu_gamma = (if t_local > 0. then t_numa /. t_local else 0.);
      })
    bandwidths

let render_bus_study rows =
  let table =
    Text_table.create
      ~columns:
        [
          ("bus MB/s", Text_table.Right);
          ("Tnuma", Text_table.Right);
          ("Tglobal", Text_table.Right);
          ("bus delay (global run)", Text_table.Right);
          ("gamma", Text_table.Right);
        ]
  in
  List.iter
    (fun r ->
      Text_table.add_row table
        [
          (if r.bu_bandwidth_mb_s = 0. then "inf" else Text_table.cell_f1 r.bu_bandwidth_mb_s);
          Text_table.cell_f1 r.bu_t_numa;
          Text_table.cell_f1 r.bu_t_global;
          Text_table.cell_f1 r.bu_bus_delay_s;
          Text_table.cell_f2 r.bu_gamma;
        ])
    rows;
  "Ablation A11: IPC-bus contention (gfetch, 7 CPUs hammering global memory)\n"
  ^ Text_table.render table

(* --- remote references --------------------------------------------------------- *)

type remote_row = {
  rm_variant : string;
  rm_producer_user : float;
  rm_total_user : float;
  rm_remote_refs : int;
}

let remote_study ?(spec = Runner.default_spec) () =
  List.map
    (fun name ->
      let app = Option.get (Numa_apps.Registry.find name) in
      let r = Runner.run app spec in
      {
        rm_variant = name;
        rm_producer_user = r.Report.user_ns_per_cpu.(0) /. 1e9;
        rm_total_user = Report.total_user_s r;
        rm_remote_refs =
          r.Report.refs_all.Report.remote_reads + r.Report.refs_all.Report.remote_writes;
      })
    [ "lopsided"; "lopsided-homed" ]

let render_remote_study rows =
  let table =
    Text_table.create
      ~columns:
        [
          ("variant", Text_table.Left);
          ("producer user (s)", Text_table.Right);
          ("total user (s)", Text_table.Right);
          ("remote refs", Text_table.Right);
        ]
  in
  List.iter
    (fun r ->
      Text_table.add_row table
        [
          r.rm_variant;
          Text_table.cell_f2 r.rm_producer_user;
          Text_table.cell_f2 r.rm_total_user;
          string_of_int r.rm_remote_refs;
        ])
    rows;
  "Ablation A9: remote references for lopsided sharing (section 4.4)\n"
  ^ Text_table.render table

(* --- thread migration ------------------------------------------------------------ *)

type migration_row = {
  mg_variant : string;
  mg_user : float;
  mg_moves : int;
  mg_pins : int;
  mg_alpha : float;
}

let migration_study ?(spec = Runner.default_spec) () =
  List.map
    (fun name ->
      let app = Option.get (Numa_apps.Registry.find name) in
      let r = Runner.run app spec in
      {
        mg_variant = name;
        mg_user = Report.total_user_s r;
        mg_moves = r.Report.numa_moves;
        mg_pins = r.Report.pins;
        mg_alpha = r.Report.alpha_counted;
      })
    [ "rebalance"; "rebalance-migrate" ]

let render_migration_study rows =
  let table =
    Text_table.create
      ~columns:
        [
          ("variant", Text_table.Left);
          ("user (s)", Text_table.Right);
          ("moves", Text_table.Right);
          ("pins", Text_table.Right);
          ("alpha", Text_table.Right);
        ]
  in
  List.iter
    (fun r ->
      Text_table.add_row table
        [
          r.mg_variant;
          Text_table.cell_f1 r.mg_user;
          string_of_int r.mg_moves;
          string_of_int r.mg_pins;
          Text_table.cell_f2 r.mg_alpha;
        ])
    rows;
  "Ablation A12: load-balancing migration, with and without page migration (section 4.7)\n"
  ^ Text_table.render table

(* --- reconsideration --------------------------------------------------------- *)

type reconsider_row = { rc_policy : string; rc_user : float; rc_final_global_pages : int }

let final_global_pages (r : Report.t) =
  match List.assoc_opt "global-writable" r.Report.placement with Some n -> n | None -> 0

let reconsider_study ?(spec = Runner.default_spec) ?(window_ms = 50.) () =
  let app = Option.get (Numa_apps.Registry.find "phased") in
  List.map
    (fun (name, policy) ->
      let r = Runner.run app { spec with Runner.policy } in
      {
        rc_policy = name;
        rc_user = Report.total_user_s r;
        rc_final_global_pages = final_global_pages r;
      })
    [
      ("move-limit(4)", System.Move_limit { threshold = 4 });
      ( Printf.sprintf "reconsider(4, %.0f ms)" window_ms,
        System.Reconsider { threshold = 4; window_ns = window_ms *. 1e6 } );
    ]

let render_reconsider_study rows =
  let table =
    Text_table.create
      ~columns:
        [
          ("policy", Text_table.Left);
          ("user (s)", Text_table.Right);
          ("pages left in global", Text_table.Right);
        ]
  in
  List.iter
    (fun r ->
      Text_table.add_row table
        [ r.rc_policy; Text_table.cell_f1 r.rc_user; string_of_int r.rc_final_global_pages ])
    rows;
  "Ablation A8: reconsidering pinning decisions on the phase-shifting workload\n"
  ^ Text_table.render table
