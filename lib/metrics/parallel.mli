(** Order-preserving parallel map over OCaml domains.

    The experiment matrix is embarrassingly parallel: every simulated run
    builds a fresh {!Numa_system.System.t} and shares no mutable state
    with any other run, so runs distribute across domains freely and each
    produces the identical (deterministic) report it would produce
    sequentially — only wall-clock changes. Results come back in input
    order regardless of completion order, so downstream table renderers
    see exactly the sequential output.

    Work is handed out through a single atomic cursor (self-balancing:
    long runs do not stall short ones behind a static partition). If any
    [f] raises, the first failing item's exception is re-raised (with its
    backtrace) after all domains join; remaining items still run. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f items] is [List.map f items] evaluated on [jobs] domains
    ([jobs <= 1], the default, runs plain sequential [List.map] on the
    calling domain — no domain is spawned). [jobs] is clamped to the item
    count. *)
