(** Counters kept by the NUMA layer.

    These feed Table 4 (system-time decomposition) and the ablation
    experiments; they are bookkeeping only and have no influence on
    placement. *)

type t = {
  mutable enters : int;  (** pmap_enter calls (resolved faults) *)
  mutable zero_fills_local : int;
  mutable zero_fills_global : int;
  mutable copies_to_local : int;  (** global -> local page copies *)
  mutable syncs_to_global : int;  (** local -> global page copies *)
  mutable replicas_flushed : int;
  mutable mappings_dropped : int;
  mutable moves : int;  (** inter-local-memory page transfers *)
  mutable local_fallbacks : int;
      (** LOCAL decisions demoted to GLOBAL because the local memory was full *)
  mutable tlb_hits : int;  (** software-TLB fast-path translations *)
  mutable tlb_misses : int;  (** translations that walked the MMU hash table *)
  mutable tlb_shootdowns : int;
      (** live software-TLB entries precisely invalidated by protocol
          actions (ownership moves, pins, pageout, unmaps) *)
  mutable node_drains : int;
      (** times a node's local memory was taken offline and drained *)
  mutable drained_pages : int;
      (** local copies synced/flushed off dying nodes by those drains *)
  mutable reclaim_retries : int;
      (** local-frame allocation failures retried through page-out *)
  mutable reclaim_rescues : int;  (** retries that then got a frame *)
  mutable spurious_shootdowns : int;
      (** injected mapping invalidations (fault plan noise) *)
  move_histogram : Numa_util.Histogram.t;
      (** distribution of per-page move counts, recorded when a page is
          freed and for all live pages via {!record_final_moves} *)
}

val create : unit -> t

val record_final_moves : t -> int -> unit
(** Add one page's final move count to the histogram. *)

val tlb_hit_rate : t -> float
(** hits / (hits + misses), 0 when no translations have been counted. *)

val pp : Format.formatter -> t -> unit

val to_assoc : t -> (string * string) list
(** For report rendering. *)
