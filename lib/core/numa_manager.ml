open Numa_machine

type state = Untouched | Read_only | Local_writable of int | Global_writable | Homed of int

type request_result = { final_state : state; moved : bool; fell_back_global : bool }

type page = {
  mutable state : state;
  replicas : (int, Frame_table.local_frame) Hashtbl.t;  (** node -> frame *)
  mutable needs_zero : bool;
  mutable moves : int;
}

type t = {
  config : Config.t;
  topo : Topo.t;  (** resolved once; prices protocol page copies per node pair *)
  frames : Frame_table.t;
  mmu : Mmu.t;
  sink : Cost_sink.t;
  stats : Numa_stats.t;
  obs : Numa_obs.Hub.t;
  pages : page array;
  mutable reclaim : (avoid:int -> by_cpu:int -> bool) option;
      (** page-out hook: try to free frames, sparing logical page [avoid]
          and charging eviction writebacks to [by_cpu]; returns whether
          anything was evicted *)
}

let create ?obs ~config ~frames ~mmu ~sink ~stats () =
  let fresh _ =
    { state = Untouched; replicas = Hashtbl.create 4; needs_zero = false; moves = 0 }
  in
  let obs = match obs with Some h -> h | None -> Numa_obs.Hub.create () in
  {
    config;
    topo = Config.topology config;
    frames;
    mmu;
    sink;
    stats;
    obs;
    pages = Array.init config.Config.global_pages fresh;
    reclaim = None;
  }

let set_reclaim t f = t.reclaim <- Some f

(* Emission sites construct events only when a sink is listening, keeping
   the un-observed hot path at one branch. *)
let observe t ev = if Numa_obs.Hub.enabled t.obs then Numa_obs.Hub.emit t.obs ev

let page t lpage =
  if lpage < 0 || lpage >= Array.length t.pages then
    invalid_arg "Numa_manager: logical page out of range";
  t.pages.(lpage)

let state_of t ~lpage = (page t lpage).state

let replica_frame t ~lpage ~node = Hashtbl.find_opt (page t lpage).replicas node

let replica_nodes t ~lpage =
  Hashtbl.fold (fun node _ acc -> node :: acc) (page t lpage).replicas []

let moves_of t ~lpage = (page t lpage).moves

let charge t ~cpu ?cat ~lpage ns = Cost_sink.charge t.sink ~cpu ?cat ~lpage ns

(* A failed local-frame allocation retries once through the pager: page-out
   may flush replicas off the full node. Pointless when the node is
   offline or squeezed to zero — allocation is refused outright there, so
   LOCAL degrades straight to GLOBAL. [avoid] spares the page being
   placed from its own reclaim pass. *)
let reclaim_once t ~lpage ~node =
  match t.reclaim with
  | Some reclaim when Frame_table.local_capacity t.frames ~node > 0 ->
      t.stats.reclaim_retries <- t.stats.reclaim_retries + 1;
      reclaim ~avoid:lpage ~by_cpu:node
  | Some _ | None -> false

let alloc_local_reclaiming t ~lpage ~node =
  match Frame_table.alloc_local t.frames ~node with
  | Some frame -> Some frame
  | None ->
      if not (reclaim_once t ~lpage ~node) then None
      else (
        match Frame_table.alloc_local t.frames ~node with
        | Some frame ->
            t.stats.reclaim_rescues <- t.stats.reclaim_rescues + 1;
            Some frame
        | None -> None)

(* --- primitive protocol actions ------------------------------------- *)

(* Drop every mapping of [lpage] on [node]; they all point at the node's
   replica (we never map remote frames). *)
let drop_mappings_on_node t ~lpage ~node ~by_cpu =
  List.iter
    (fun (e : Mmu.entry) ->
      if e.cpu = node then begin
        Mmu.remove_entry t.mmu e;
        t.stats.mappings_dropped <- t.stats.mappings_dropped + 1;
        charge t ~cpu:by_cpu ~cat:Numa_obs.Profile.Tlb_shootdown ~lpage
          (Cost.tlb_shootdown_ns t.config)
      end)
    (Mmu.entries_of_lpage t.mmu ~lpage)

(* Copy a node's dirty frame back to the global master. *)
let sync_node t ~lpage ~node ~by_cpu =
  let p = page t lpage in
  match Hashtbl.find_opt p.replicas node with
  | None -> invalid_arg "Numa_manager.sync_node: node holds no copy"
  | Some frame ->
      Frame_table.copy_local_to_global t.frames frame ~lpage;
      charge t ~cpu:by_cpu ~cat:Numa_obs.Profile.Page_copy ~lpage
        (Cost.place_page_copy_ns t.config ~topo:t.topo ~cpu:by_cpu
           ~src:(Topo.Node node) ~dst:(Topo.Shared lpage));
      t.stats.syncs_to_global <- t.stats.syncs_to_global + 1;
      observe t (Numa_obs.Event.Sync_to_global { lpage; node })

(* Drop a node's cached copy (mappings first, then the frame). *)
let flush_node t ~lpage ~node ~by_cpu =
  let p = page t lpage in
  match Hashtbl.find_opt p.replicas node with
  | None -> ()
  | Some frame ->
      drop_mappings_on_node t ~lpage ~node ~by_cpu;
      Frame_table.free_local t.frames frame;
      Hashtbl.remove p.replicas node;
      t.stats.replicas_flushed <- t.stats.replicas_flushed + 1;
      observe t (Numa_obs.Event.Replica_flush { lpage; node })

let unmap_all t ~lpage ~by_cpu =
  List.iter
    (fun (e : Mmu.entry) ->
      Mmu.remove_entry t.mmu e;
      t.stats.mappings_dropped <- t.stats.mappings_dropped + 1;
      charge t ~cpu:by_cpu ~cat:Numa_obs.Profile.Tlb_shootdown ~lpage
        (Cost.tlb_shootdown_ns t.config))
    (Mmu.entries_of_lpage t.mmu ~lpage)

(* Ensure [cpu] holds a local copy; the caller has checked capacity. *)
let copy_to_local t ~lpage ~cpu =
  let p = page t lpage in
  if not (Hashtbl.mem p.replicas cpu) then begin
    match Frame_table.alloc_local t.frames ~node:cpu with
    | None -> invalid_arg "Numa_manager.copy_to_local: pool exhausted (unchecked)"
    | Some frame ->
        Frame_table.copy_global_to_local t.frames ~lpage frame;
        charge t ~cpu ~cat:Numa_obs.Profile.Page_copy ~lpage
          (Cost.place_page_copy_ns t.config ~topo:t.topo ~cpu ~src:(Topo.Shared lpage)
             ~dst:(Topo.Node cpu));
        t.stats.copies_to_local <- t.stats.copies_to_local + 1;
        Hashtbl.replace p.replicas cpu frame;
        observe t (Numa_obs.Event.Replica_create { lpage; node = cpu })
  end

(* --- first touch ------------------------------------------------------ *)

let first_touch t ~lpage ~cpu ~access ~decision =
  let p = page t lpage in
  let place_global () =
    if p.needs_zero then begin
      Frame_table.zero_global t.frames ~lpage;
      charge t ~cpu ~cat:Numa_obs.Profile.Zero_fill ~lpage
        (Cost.place_page_zero_ns t.config ~topo:t.topo ~cpu ~dst:(Topo.Shared lpage));
      t.stats.zero_fills_global <- t.stats.zero_fills_global + 1;
      p.needs_zero <- false;
      observe t (Numa_obs.Event.Zero_fill { lpage; node = None })
    end;
    p.state <- Global_writable;
    Global_writable
  in
  match decision with
  | Protocol.Place_global ->
      { final_state = place_global (); moved = false; fell_back_global = false }
  | Protocol.Place_local -> (
      match alloc_local_reclaiming t ~lpage ~node:cpu with
      | None ->
          t.stats.local_fallbacks <- t.stats.local_fallbacks + 1;
          observe t (Numa_obs.Event.Local_fallback { lpage; cpu });
          { final_state = place_global (); moved = false; fell_back_global = true }
      | Some frame ->
          (* Lazy zero-fill lands directly in the right memory, avoiding the
             write-zeros-to-global-then-copy round trip (section 2.3.1). *)
          if p.needs_zero then begin
            Frame_table.zero_local t.frames ~lpage frame;
            charge t ~cpu ~cat:Numa_obs.Profile.Zero_fill ~lpage
              (Cost.place_page_zero_ns t.config ~topo:t.topo ~cpu ~dst:(Topo.Node cpu));
            t.stats.zero_fills_local <- t.stats.zero_fills_local + 1;
            p.needs_zero <- false;
            observe t (Numa_obs.Event.Zero_fill { lpage; node = Some cpu });
            (* A read leaves the page Read_only, whose invariant is that
               the global frame is the clean master; later replicas copy
               from it. Zero the master cell too — on the real machine the
               second replica would be copied from the first at comparable
               cost, so only the content bookkeeping is needed here. *)
            if access = Access.Load then Frame_table.zero_global t.frames ~lpage
          end
          else begin
            Frame_table.copy_global_to_local t.frames ~lpage frame;
            charge t ~cpu ~cat:Numa_obs.Profile.Page_copy ~lpage
              (Cost.place_page_copy_ns t.config ~topo:t.topo ~cpu ~src:(Topo.Shared lpage)
                 ~dst:(Topo.Node cpu));
            t.stats.copies_to_local <- t.stats.copies_to_local + 1
          end;
          Hashtbl.replace p.replicas cpu frame;
          observe t (Numa_obs.Event.Replica_create { lpage; node = cpu });
          let final_state =
            match access with
            | Access.Load -> Read_only
            | Access.Store -> Local_writable cpu
          in
          p.state <- final_state;
          { final_state; moved = false; fell_back_global = false })

(* --- steady-state requests ------------------------------------------- *)

let view_of_state ~cpu = function
  | Read_only -> Protocol.Sv_read_only
  | Global_writable -> Protocol.Sv_global_writable
  | Local_writable owner when owner = cpu -> Protocol.Sv_local_writable_own
  | Local_writable _ -> Protocol.Sv_local_writable_other
  | Untouched -> invalid_arg "Numa_manager.view_of_state: untouched"
  | Homed _ -> invalid_arg "Numa_manager.view_of_state: homed pages bypass the protocol"

(* A LOCAL decision that will need a fresh frame on a full node is demoted
   to GLOBAL up front, before any cleanup runs. *)
let needs_new_frame t ~lpage ~cpu outcome =
  List.mem Protocol.Copy_to_local outcome.Protocol.actions
  && not (Hashtbl.mem (page t lpage).replicas cpu)

let node_is_full t ~node =
  Frame_table.local_in_use t.frames ~node >= Frame_table.local_capacity t.frames ~node

(* Pre-demotion check: a full node gets one reclaim attempt before the
   LOCAL decision is demoted to GLOBAL. *)
let node_still_full t ~lpage ~node =
  node_is_full t ~node
  &&
  if reclaim_once t ~lpage ~node && not (node_is_full t ~node) then begin
    t.stats.reclaim_rescues <- t.stats.reclaim_rescues + 1;
    false
  end
  else true

let execute t ~lpage ~cpu ~(outcome : Protocol.outcome) =
  let p = page t lpage in
  let flushed_other = ref 0 in
  let owner () =
    match p.state with
    | Local_writable o -> o
    | Untouched | Read_only | Global_writable | Homed _ ->
        invalid_arg "Numa_manager.execute: sync on non-owned page"
  in
  let run = function
    | Protocol.Sync_and_flush_own ->
        let o = owner () in
        sync_node t ~lpage ~node:o ~by_cpu:cpu;
        flush_node t ~lpage ~node:o ~by_cpu:cpu;
        if o <> cpu then incr flushed_other
    | Protocol.Sync_and_flush_other ->
        let o = owner () in
        sync_node t ~lpage ~node:o ~by_cpu:cpu;
        flush_node t ~lpage ~node:o ~by_cpu:cpu;
        incr flushed_other
    | Protocol.Flush_all ->
        List.iter
          (fun node ->
            if node <> cpu then incr flushed_other;
            flush_node t ~lpage ~node ~by_cpu:cpu)
          (replica_nodes t ~lpage)
    | Protocol.Flush_other ->
        List.iter
          (fun node ->
            if node <> cpu then begin
              incr flushed_other;
              flush_node t ~lpage ~node ~by_cpu:cpu
            end)
          (replica_nodes t ~lpage)
    | Protocol.Unmap_all -> unmap_all t ~lpage ~by_cpu:cpu
    | Protocol.Copy_to_local -> copy_to_local t ~lpage ~cpu
  in
  List.iter run outcome.actions;
  (match outcome.new_state with
  | Protocol.Becomes_read_only -> p.state <- Read_only
  | Protocol.Becomes_local_writable -> p.state <- Local_writable cpu
  | Protocol.Becomes_global_writable -> p.state <- Global_writable);
  !flushed_other

(* Un-home a page: sync its contents to global, flush the home frame and
   every mapping; it becomes an ordinary global page. Used when the homing
   pragma is cleared and the page re-enters normal policy control. *)
let demote_homed t ~lpage ~cpu ~home =
  sync_node t ~lpage ~node:home ~by_cpu:cpu;
  unmap_all t ~lpage ~by_cpu:cpu;
  flush_node t ~lpage ~node:home ~by_cpu:cpu;
  (page t lpage).state <- Global_writable

let request t ~lpage ~cpu ~access ~decision =
  charge t ~cpu ~lpage (Cost.pmap_action_ns t.config);
  let p = page t lpage in
  (match p.state with
  | Homed h -> demote_homed t ~lpage ~cpu ~home:h
  | Untouched | Read_only | Local_writable _ | Global_writable -> ());
  match p.state with
  | Homed _ -> assert false
  | Untouched -> first_touch t ~lpage ~cpu ~access ~decision
  | Read_only | Local_writable _ | Global_writable ->
      let state = view_of_state ~cpu p.state in
      let decision, fell_back_global =
        if
          decision = Protocol.Place_local
          && needs_new_frame t ~lpage ~cpu (Protocol.transition ~access ~state ~decision)
          && node_still_full t ~lpage ~node:cpu
        then begin
          t.stats.local_fallbacks <- t.stats.local_fallbacks + 1;
          observe t (Numa_obs.Event.Local_fallback { lpage; cpu });
          (Protocol.Place_global, true)
        end
        else (decision, false)
      in
      let outcome = Protocol.transition ~access ~state ~decision in
      let flushed_other = execute t ~lpage ~cpu ~outcome in
      let moved = decision = Protocol.Place_local && flushed_other > 0 in
      if moved then begin
        p.moves <- p.moves + 1;
        t.stats.moves <- t.stats.moves + 1;
        observe t (Numa_obs.Event.Page_move { lpage; to_node = cpu; moves = p.moves })
      end;
      { final_state = p.state; moved; fell_back_global }

let request_homed t ~lpage ~cpu ~home =
  charge t ~cpu ~lpage (Cost.pmap_action_ns t.config);
  let p = page t lpage in
  match p.state with
  | Homed h when h = home -> { final_state = p.state; moved = false; fell_back_global = false }
  | _ -> (
      (* Clean up whatever cache state exists, leaving contents in the
         global master (the GLOBAL row of the tables). *)
      (match p.state with
      | Untouched ->
          if p.needs_zero then begin
            Frame_table.zero_global t.frames ~lpage;
            charge t ~cpu ~cat:Numa_obs.Profile.Zero_fill ~lpage
              (Cost.place_page_zero_ns t.config ~topo:t.topo ~cpu ~dst:(Topo.Shared lpage));
            t.stats.zero_fills_global <- t.stats.zero_fills_global + 1;
            p.needs_zero <- false;
            observe t (Numa_obs.Event.Zero_fill { lpage; node = None })
          end
      | Homed h -> demote_homed t ~lpage ~cpu ~home:h
      | Local_writable o ->
          sync_node t ~lpage ~node:o ~by_cpu:cpu;
          flush_node t ~lpage ~node:o ~by_cpu:cpu
      | Read_only ->
          List.iter (fun node -> flush_node t ~lpage ~node ~by_cpu:cpu)
            (replica_nodes t ~lpage)
      | Global_writable -> unmap_all t ~lpage ~by_cpu:cpu);
      p.state <- Global_writable;
      match alloc_local_reclaiming t ~lpage ~node:home with
      | None ->
          t.stats.local_fallbacks <- t.stats.local_fallbacks + 1;
          observe t (Numa_obs.Event.Local_fallback { lpage; cpu });
          { final_state = Global_writable; moved = false; fell_back_global = true }
      | Some frame ->
          Frame_table.copy_global_to_local t.frames ~lpage frame;
          charge t ~cpu ~cat:Numa_obs.Profile.Page_copy ~lpage
            (Cost.place_page_copy_ns t.config ~topo:t.topo ~cpu ~src:(Topo.Shared lpage)
               ~dst:(Topo.Node home));
          t.stats.copies_to_local <- t.stats.copies_to_local + 1;
          Hashtbl.replace p.replicas home frame;
          observe t (Numa_obs.Event.Replica_create { lpage; node = home });
          p.state <- Homed home;
          { final_state = p.state; moved = false; fell_back_global = false })

let migrate_owned_pages t ~src ~dst =
  if src = dst then 0
  else begin
    let moved = ref 0 in
    Array.iteri
      (fun lpage p ->
        match p.state with
        | Local_writable o when o = src ->
            (* The kernel on the destination performs the move. *)
            sync_node t ~lpage ~node:src ~by_cpu:dst;
            flush_node t ~lpage ~node:src ~by_cpu:dst;
            (match Frame_table.alloc_local t.frames ~node:dst with
            | Some frame ->
                Frame_table.copy_global_to_local t.frames ~lpage frame;
                charge t ~cpu:dst ~cat:Numa_obs.Profile.Page_copy ~lpage
                  (Cost.place_page_copy_ns t.config ~topo:t.topo ~cpu:dst
                     ~src:(Topo.Shared lpage) ~dst:(Topo.Node dst));
                t.stats.copies_to_local <- t.stats.copies_to_local + 1;
                Hashtbl.replace p.replicas dst frame;
                observe t (Numa_obs.Event.Replica_create { lpage; node = dst });
                p.state <- Local_writable dst;
                p.moves <- p.moves + 1;
                observe t
                  (Numa_obs.Event.Page_move { lpage; to_node = dst; moves = p.moves });
                incr moved
            | None ->
                t.stats.local_fallbacks <- t.stats.local_fallbacks + 1;
                observe t (Numa_obs.Event.Local_fallback { lpage; cpu = dst });
                p.state <- Global_writable)
        | Untouched | Read_only | Local_writable _ | Global_writable | Homed _ -> ())
      t.pages;
    !moved
  end

(* --- graceful degradation ---------------------------------------------- *)

(* Evacuate every cached copy from [node]'s local memory so the node can go
   offline: dirty owners sync back to global first (no data loss), homed
   pages are demoted, read-only replicas just flush. LOCAL placement on
   the node degrades to GLOBAL afterwards — a worse gamma, never a wrong
   answer. Returns the number of page copies evacuated. *)
let drain_node t ~node ~by_cpu =
  let drained = ref 0 in
  Array.iteri
    (fun lpage p ->
      match p.state with
      | Local_writable o when o = node ->
          sync_node t ~lpage ~node ~by_cpu;
          flush_node t ~lpage ~node ~by_cpu;
          p.state <- Global_writable;
          incr drained
      | Homed h when h = node ->
          demote_homed t ~lpage ~cpu:by_cpu ~home:h;
          incr drained
      | Read_only when Hashtbl.mem p.replicas node ->
          flush_node t ~lpage ~node ~by_cpu;
          incr drained;
          if Hashtbl.length p.replicas = 0 then p.state <- Global_writable
      | Untouched | Read_only | Local_writable _ | Global_writable | Homed _ -> ())
    t.pages;
  t.stats.node_drains <- t.stats.node_drains + 1;
  t.stats.drained_pages <- t.stats.drained_pages + !drained;
  !drained

(* An injected spurious shootdown drops every live mapping of the page.
   Mappings are pure acceleration over the directory, so correctness is
   unaffected — the next reference faults and re-maps. *)
let spurious_shootdown t ~lpage =
  let entries = Mmu.entries_of_lpage t.mmu ~lpage in
  List.iter
    (fun (e : Mmu.entry) ->
      Mmu.remove_entry t.mmu e;
      t.stats.mappings_dropped <- t.stats.mappings_dropped + 1;
      charge t ~cpu:e.cpu ~cat:Numa_obs.Profile.Tlb_shootdown ~lpage
        (Cost.tlb_shootdown_ns t.config))
    entries;
  t.stats.spurious_shootdowns <- t.stats.spurious_shootdowns + 1;
  List.length entries

(* --- pager / pool integration ----------------------------------------- *)

let mark_zero_fill t ~lpage =
  let p = page t lpage in
  (match p.state with
  | Untouched -> ()
  | Read_only | Local_writable _ | Global_writable | Homed _ ->
      invalid_arg "Numa_manager.mark_zero_fill: page is live");
  p.needs_zero <- true

let install_content t ~lpage ~content =
  let p = page t lpage in
  (match p.state with
  | Untouched -> ()
  | Read_only | Local_writable _ | Global_writable | Homed _ ->
      invalid_arg "Numa_manager.install_content: page is live");
  Frame_table.write_global t.frames ~lpage content;
  p.needs_zero <- false

let sync_if_dirty t ~lpage =
  let p = page t lpage in
  match p.state with
  | Local_writable owner ->
      (* Charged to the owner: the pageout daemon runs kernel code on the
         CPU whose memory holds the dirty copy. *)
      sync_node t ~lpage ~node:owner ~by_cpu:owner
  | Homed home -> sync_node t ~lpage ~node:home ~by_cpu:home
  | Untouched | Read_only | Global_writable -> ()

let reset_page t ~lpage =
  let p = page t lpage in
  Numa_stats.record_final_moves t.stats p.moves;
  observe t (Numa_obs.Event.Page_freed { lpage; moves = p.moves });
  List.iter
    (fun (e : Mmu.entry) ->
      Mmu.remove_entry t.mmu e;
      t.stats.mappings_dropped <- t.stats.mappings_dropped + 1)
    (Mmu.entries_of_lpage t.mmu ~lpage);
  Hashtbl.iter (fun _ frame -> Frame_table.free_local t.frames frame) p.replicas;
  Hashtbl.reset p.replicas;
  p.state <- Untouched;
  p.needs_zero <- false;
  p.moves <- 0

(* --- invariants -------------------------------------------------------- *)

let check_invariants t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let exception Bad of string in
  try
    Array.iteri
      (fun lpage p ->
        let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt in
        let mappings = Mmu.entries_of_lpage t.mmu ~lpage in
        let n_replicas = Hashtbl.length p.replicas in
        Hashtbl.iter
          (fun node (frame : Frame_table.local_frame) ->
            if frame.node <> node then
              fail "page %d: replica indexed under node %d lives on node %d" lpage node
                frame.node)
          p.replicas;
        match p.state with
        | Untouched ->
            if n_replicas <> 0 then fail "untouched page %d has replicas" lpage;
            if mappings <> [] then fail "untouched page %d has mappings" lpage
        | Global_writable ->
            if n_replicas <> 0 then fail "global page %d has replicas" lpage;
            List.iter
              (fun (e : Mmu.entry) ->
                match e.phys with
                | Mmu.Global_frame l when l = lpage -> ()
                | Mmu.Global_frame _ | Mmu.Frame _ ->
                    fail "global page %d has a non-global mapping" lpage)
              mappings
        | Read_only ->
            if n_replicas < 1 then fail "read-only page %d has no replicas" lpage;
            List.iter
              (fun (e : Mmu.entry) ->
                if Prot.compare e.prot Prot.Read_only > 0 then
                  fail "read-only page %d mapped writable on cpu %d" lpage e.cpu;
                match e.phys with
                | Mmu.Frame f when Hashtbl.find_opt p.replicas e.cpu = Some f -> ()
                | Mmu.Frame _ | Mmu.Global_frame _ ->
                    fail "read-only page %d: mapping on cpu %d not via its replica" lpage
                      e.cpu)
              mappings
        | Homed home ->
            if n_replicas <> 1 || not (Hashtbl.mem p.replicas home) then
              fail "homed page %d: replicas not exactly the home %d" lpage home;
            List.iter
              (fun (e : Mmu.entry) ->
                match e.phys with
                | Mmu.Frame f when Hashtbl.find_opt p.replicas home = Some f -> ()
                | Mmu.Frame _ | Mmu.Global_frame _ ->
                    fail "homed page %d: mapping not via the home frame" lpage)
              mappings
        | Local_writable owner ->
            if n_replicas <> 1 || not (Hashtbl.mem p.replicas owner) then
              fail "local-writable page %d: replicas not exactly the owner %d" lpage owner;
            List.iter
              (fun (e : Mmu.entry) ->
                if e.cpu <> owner then
                  fail "local-writable page %d mapped on non-owner cpu %d" lpage e.cpu;
                match e.phys with
                | Mmu.Frame f when Hashtbl.find_opt p.replicas owner = Some f -> ()
                | Mmu.Frame _ | Mmu.Global_frame _ ->
                    fail "local-writable page %d: mapping not via owner frame" lpage)
              mappings)
      t.pages;
    Ok ()
  with Bad msg -> err "%s" msg

let pp_state ppf = function
  | Untouched -> Format.pp_print_string ppf "untouched"
  | Read_only -> Format.pp_print_string ppf "read-only"
  | Local_writable n -> Format.fprintf ppf "local-writable(%d)" n
  | Global_writable -> Format.pp_print_string ppf "global-writable"
  | Homed n -> Format.fprintf ppf "homed(%d)" n
