(** The NUMA manager: effectful executor of the consistency {!Protocol}.

    Local memories are managed as caches over global memory (section 2.3.1):
    each logical page is permanently backed by its global frame and may
    additionally be replicated read-only in any number of local memories or
    held writable in exactly one. This module owns that directory and
    performs the protocol's sync / flush / unmap / copy actions against the
    {!Numa_machine.Frame_table} and {!Numa_machine.Mmu}, charging their
    simulated cost to the requesting CPU's system time.

    Policy is deliberately absent here: the caller (the pmap manager)
    supplies a {!Protocol.decision} per request and is told whether the
    request moved the page between local memories, which is what the policy
    layer counts. *)

open Numa_machine

type state =
  | Untouched
      (** no content yet (zero-fill pending) or freshly installed in global;
          no copies, no mappings *)
  | Read_only  (** replicated; global frame is the clean master *)
  | Local_writable of int  (** owned by one node; global master may be stale *)
  | Global_writable  (** lives in global; never cached *)
  | Homed of int
      (** section 4.4 extension: permanently resident in one node's local
          memory under a [Homed] pragma; other processors reference it
          remotely. Like a pinned page, it never moves again. *)

type request_result = {
  final_state : state;
  moved : bool;
      (** the request transferred the page's contents/copies away from some
          other node while placing it locally: the event the move-counting
          policy observes *)
  fell_back_global : bool;
      (** a LOCAL decision was demoted because the local memory was full *)
}

type t

val create :
  ?obs:Numa_obs.Hub.t ->
  config:Config.t ->
  frames:Frame_table.t ->
  mmu:Mmu.t ->
  sink:Cost_sink.t ->
  stats:Numa_stats.t ->
  unit ->
  t
(** [obs] (default: a fresh hub with no sinks) receives the protocol's
    lifecycle events — replica create/flush, sync-to-global, zero fill,
    page move, local-memory fallback, page free. Events are constructed
    only when a sink is attached. *)

val set_reclaim : t -> (avoid:int -> by_cpu:int -> bool) -> unit
(** Install the pager hook used when a local-frame allocation fails: the
    callback should try to evict pages (never logical page [avoid], which
    is the one being placed), charging any eviction writebacks to
    [by_cpu] (the allocating node), and return whether anything was
    freed, in which case the allocation is retried once before the LOCAL
    decision falls back to GLOBAL. Counted in [reclaim_retries] /
    [reclaim_rescues]. *)

val request :
  t -> lpage:int -> cpu:int -> access:Access.t -> decision:Protocol.decision ->
  request_result
(** Bring the page into a state satisfying the access on [cpu] under the
    policy decision, per Tables 1 and 2. After the call the caller may map
    the page on [cpu] (read-only if the state is [Read_only]). *)

val request_homed : t -> lpage:int -> cpu:int -> home:int -> request_result
(** Place (or keep) the page in [home]'s local memory, cleaning up any
    other cache state first — the straightforward protocol extension for
    remote references the paper sketches in section 4.4. Falls back to
    global memory when the home node's local memory is full. *)

val state_of : t -> lpage:int -> state

val replica_frame : t -> lpage:int -> node:int -> Frame_table.local_frame option
(** The node's cached copy, if any. *)

val replica_nodes : t -> lpage:int -> int list
(** Nodes holding a copy, unordered. *)

val moves_of : t -> lpage:int -> int
(** Inter-memory moves this page has made since (re)allocation. *)

val migrate_owned_pages : t -> src:int -> dst:int -> int
(** Kernel page migration (the section 4.7 load-balancing requirement:
    "migrate processes to new homes and move their local pages with
    them"): every page local-writable on [src] is synced, flushed and
    re-established local-writable on [dst]. Deliberate migration does not
    count against the policy's move threshold. Pages that do not fit in
    [dst]'s local memory are left in global memory. Returns the number of
    pages moved. *)

val drain_node : t -> node:int -> by_cpu:int -> int
(** Graceful degradation when a node's local memory goes offline: sync
    every dirty copy the node owns back to global, demote its homed pages,
    flush its read-only replicas, and return the page copies evacuated.
    Contents are never lost — pages the node served turn [Global_writable]
    (LOCAL degrades to GLOBAL). The caller takes the frame pool offline
    ({!Numa_machine.Frame_table.set_node_online}) afterwards; draining
    first keeps every free in order. Counted in [node_drains] /
    [drained_pages]. *)

val spurious_shootdown : t -> lpage:int -> int
(** Fault injection: drop every live mapping of the page (charging each
    mapping's CPU a TLB shootdown), as hardware glitches or overly eager
    kernels do. Mappings are re-established by the next fault, so this
    perturbs timing, never contents. Returns mappings dropped. *)

val mark_zero_fill : t -> lpage:int -> unit
(** The page will be zero-filled lazily at first placement. Only valid on
    an [Untouched] page. *)

val install_content : t -> lpage:int -> content:int -> unit
(** Page-in path: set the global master's contents. Only valid on an
    [Untouched] page. *)

val sync_if_dirty : t -> lpage:int -> unit
(** Ensure the global master holds current contents (copies a
    local-writable owner's frame back). Page-out path. *)

val reset_page : t -> lpage:int -> unit
(** Frame-free path (pmap_free_page): drop every mapping and cached copy,
    record the final move count, and forget placement history, returning
    the page to [Untouched]. *)

val check_invariants : t -> (unit, string) result
(** Directory/MMU consistency, used by the property-based tests:
    - [Read_only] pages have >= 1 replica and only read-only mappings, each
      mapping reaching its own node's replica;
    - [Local_writable] pages have exactly the owner's replica and mappings
      only on the owner;
    - [Global_writable] / [Untouched] pages have no replicas, and any
      mappings point at the global frame (none for [Untouched]). *)

val pp_state : Format.formatter -> state -> unit
