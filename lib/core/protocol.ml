open Numa_machine

type decision = Place_local | Place_global

type state_view =
  | Sv_read_only
  | Sv_global_writable
  | Sv_local_writable_own
  | Sv_local_writable_other

type action =
  | Sync_and_flush_own
  | Sync_and_flush_other
  | Flush_all
  | Flush_other
  | Unmap_all
  | Copy_to_local

type new_state = Becomes_read_only | Becomes_local_writable | Becomes_global_writable

type outcome = { actions : action list; new_state : new_state }

(* The GLOBAL row is identical in Tables 1 and 2: clean up any cached
   copies (syncing dirty ones) and leave the page in global memory. *)
let global_row state =
  match state with
  | Sv_read_only -> { actions = [ Flush_all ]; new_state = Becomes_global_writable }
  | Sv_global_writable -> { actions = []; new_state = Becomes_global_writable }
  | Sv_local_writable_own ->
      { actions = [ Sync_and_flush_own ]; new_state = Becomes_global_writable }
  | Sv_local_writable_other ->
      { actions = [ Sync_and_flush_other ]; new_state = Becomes_global_writable }

let transition ~access ~state ~decision =
  match (access, decision, state) with
  | _, Place_global, _ -> global_row state
  (* Table 1, LOCAL row: read requests. *)
  | Access.Load, Place_local, Sv_read_only ->
      { actions = [ Copy_to_local ]; new_state = Becomes_read_only }
  | Access.Load, Place_local, Sv_global_writable ->
      { actions = [ Unmap_all; Copy_to_local ]; new_state = Becomes_read_only }
  | Access.Load, Place_local, Sv_local_writable_own ->
      { actions = []; new_state = Becomes_local_writable }
  | Access.Load, Place_local, Sv_local_writable_other ->
      { actions = [ Sync_and_flush_other; Copy_to_local ]; new_state = Becomes_read_only }
  (* Table 2, LOCAL row: write requests. *)
  | Access.Store, Place_local, Sv_read_only ->
      { actions = [ Flush_other; Copy_to_local ]; new_state = Becomes_local_writable }
  | Access.Store, Place_local, Sv_global_writable ->
      { actions = [ Unmap_all; Copy_to_local ]; new_state = Becomes_local_writable }
  | Access.Store, Place_local, Sv_local_writable_own ->
      { actions = []; new_state = Becomes_local_writable }
  | Access.Store, Place_local, Sv_local_writable_other ->
      { actions = [ Sync_and_flush_other; Copy_to_local ]; new_state = Becomes_local_writable }

let all_state_views =
  [ Sv_read_only; Sv_global_writable; Sv_local_writable_own; Sv_local_writable_other ]

let all_decisions = [ Place_local; Place_global ]

let decision_to_string = function
  | Place_local -> "LOCAL"
  | Place_global -> "GLOBAL"

let state_view_to_string = function
  | Sv_read_only -> "Read-Only"
  | Sv_global_writable -> "Global-Writable"
  | Sv_local_writable_own -> "Local-Writable (own node)"
  | Sv_local_writable_other -> "Local-Writable (other node)"

let action_to_string = function
  | Sync_and_flush_own -> "sync&flush own"
  | Sync_and_flush_other -> "sync&flush other"
  | Flush_all -> "flush all"
  | Flush_other -> "flush other"
  | Unmap_all -> "unmap all"
  | Copy_to_local -> "copy to local"

let new_state_to_string = function
  | Becomes_read_only -> "Read-Only"
  | Becomes_local_writable -> "Local-Writable"
  | Becomes_global_writable -> "Global-Writable"

(* Render in the paper's three-line cell format: cleanup actions / copy
   line / new state. Actions other than Copy_to_local are cleanup. *)
let render_table access =
  let open Numa_util in
  let columns =
    ("Policy Decision", Text_table.Left)
    :: List.map (fun sv -> (state_view_to_string sv, Text_table.Left)) all_state_views
  in
  let table = Text_table.create ~columns in
  let cell_lines outcome =
    let cleanup =
      List.filter (fun a -> a <> Copy_to_local) outcome.actions
      |> List.map action_to_string
    in
    let cleanup_line = if cleanup = [] then "-" else String.concat "; " cleanup in
    let copy_line =
      if List.mem Copy_to_local outcome.actions then "copy to local" else "no copy"
    in
    (cleanup_line, copy_line, new_state_to_string outcome.new_state)
  in
  List.iter
    (fun decision ->
      let cells = List.map (fun sv -> cell_lines (transition ~access ~state:sv ~decision)) all_state_views in
      let line1 = List.map (fun (a, _, _) -> a) cells in
      let line2 = List.map (fun (_, b, _) -> b) cells in
      let line3 = List.map (fun (_, _, c) -> c) cells in
      Text_table.add_row table (decision_to_string decision :: line1);
      Text_table.add_row table ("" :: line2);
      Text_table.add_row table ("" :: line3);
      Text_table.add_rule table)
    all_decisions;
  let title =
    match access with
    | Access.Load -> "Table 1: NUMA Manager Actions for Read Requests"
    | Access.Store -> "Table 2: NUMA Manager Actions for Write Requests"
  in
  title ^ "\n" ^ Text_table.render table
