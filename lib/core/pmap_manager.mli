(** The ACE pmap layer (Figure 2 of the paper).

    Exports the machine-independent {!Numa_vm.Pmap_intf.ops} interface and
    coordinates the three modules below it: the MMU interface
    ({!Numa_machine.Mmu}), the {!Numa_manager} (cache consistency), and the
    {!Policy} (LOCAL/GLOBAL placement). Placement pragmas (section 4.3) are
    honoured here, overriding the policy for marked virtual ranges.

    Mapping protections follow the paper's min/max extension: a page in
    [Read_only] state is mapped read-only even when the region allows
    writing (so replicated-but-unwritten pages stay replicas until a write
    fault), while local-writable and global pages are mapped with the
    loosest legal protection to avoid spurious refaults. *)

open Numa_machine

type t

val create :
  ?obs:Numa_obs.Hub.t ->
  ?pt_mode:Pt.mode ->
  config:Config.t ->
  policy:Policy.t ->
  unit ->
  t
(** Builds a complete pmap layer with fresh machine state (frame table and
    MMU). [obs] (default: a fresh hub with no sinks) receives fault,
    policy-decision, pin/unpin and protocol lifecycle events; emission is
    guarded by sink presence, so an unobserved layer pays one branch.
    [pt_mode] (default {!Numa_machine.Pt.Off}) materialises the page
    tables: table pages take frames from the per-node pools, TLB misses
    pay charged walks, and PTE changes shoot down every replica table —
    [Off] keeps translation free exactly as before. *)

val ops : t -> Numa_vm.Pmap_intf.ops
(** The interface handed to the machine-independent VM system. *)

val set_policy : t -> Policy.t -> unit
(** Swap the placement policy. Existing cache state is kept; the paper's
    claim that a policy can be substituted without touching the NUMA
    manager is exactly this call. *)

val policy : t -> Policy.t
val manager : t -> Numa_manager.t

(** The per-frame paging state machine, created here and attached to the
    frame table so stores reach its dirty tracking. The pmap interface
    drives its transitions: [zero_page] -> born Dirty, [install_page] ->
    Reading -> Clean, [free_page] -> Empty; every fault-time {!ops}.enter
    bumps its LRU clock. *)
val paging : t -> Paging.t
val stats : t -> Numa_stats.t
val mmu : t -> Mmu.t
val frames : t -> Frame_table.t
val sink : t -> Cost_sink.t
val config : t -> Config.t

val obs : t -> Numa_obs.Hub.t
(** The event hub this layer (and its NUMA manager) emits into. *)

val set_pragma :
  t -> pmap:int -> vpage:int -> n:int -> Numa_vm.Region_attr.pragma option -> unit
(** Mark a virtual range cacheable / noncacheable (or clear the mark).
    Consulted before the policy on every fault in the range. *)

val pragma_at : t -> pmap:int -> vpage:int -> Numa_vm.Region_attr.pragma option

val migrate_node_pages : t -> src:int -> dst:int -> int
(** Kernel page migration for a thread that moved from [src] to [dst]:
    see {!Numa_manager.migrate_owned_pages}. *)

val reconsider_scan : t -> int
(** Reconsideration daemon tick: ask the policy for pins whose decision has
    expired and drop every mapping of those pages, so their next reference
    faults and gets a fresh placement decision. Returns the number of pages
    whose mappings were dropped. A no-op (returns 0) for policies that never
    reconsider. *)

val placement_summary : t -> (string * int) list
(** Count of logical pages per current state — the "where did pages end
    up" digest printed in reports. *)

val figure2 : unit -> string
(** ASCII rendering of the pmap-layer module structure (Figure 2). *)
