open Numa_machine

type report = {
  pages_checked : int;
  mappings_checked : int;
  replicas_checked : int;
  paging_checked : int;
  pt_checked : int;
  requests_checked : int;
  violations : string list;
}

let check ?pinned ?pool ?requests ~manager ~mmu ~frames ~(config : Config.t) () =
  let violations = ref [] in
  let mappings_checked = ref 0 in
  let replicas_checked = ref 0 in
  let paging_checked = ref 0 in
  let pt_checked = ref 0 in
  let paging = Frame_table.paging frames in
  let bad fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  for lpage = 0 to config.Config.global_pages - 1 do
    let state = Numa_manager.state_of manager ~lpage in
    let replica node = Numa_manager.replica_frame manager ~lpage ~node in
    let replicas =
      List.filter_map
        (fun node -> Option.map (fun f -> (node, f)) (replica node))
        (Numa_manager.replica_nodes manager ~lpage)
    in
    let mappings = Mmu.entries_of_lpage mmu ~lpage in
    mappings_checked := !mappings_checked + List.length mappings;
    replicas_checked := !replicas_checked + List.length replicas;
    (* Copies live where the directory says, in frames the pool still
       considers allocated, on memories that still exist. *)
    List.iter
      (fun (node, (frame : Frame_table.local_frame)) ->
        if frame.node <> node then
          bad "page %d: replica indexed under node %d lives in node %d's frame" lpage
            node frame.node;
        if Frame_table.frame_is_free frames frame then
          bad "page %d: replica on node %d points at freed frame %d" lpage node frame.id;
        if not (Frame_table.node_online frames ~node) then
          bad "page %d: replica survives on offline node %d" lpage node)
      replicas;
    (* Every mapping resolves to the copy the directory prescribes. *)
    let mapped_via_replica (e : Mmu.entry) ~node =
      match e.phys with
      | Mmu.Frame f -> replica node = Some f
      | Mmu.Global_frame _ -> false
    in
    (match state with
    | Numa_manager.Untouched ->
        if replicas <> [] then bad "untouched page %d holds local copies" lpage;
        if mappings <> [] then bad "untouched page %d is mapped" lpage
    | Numa_manager.Global_writable ->
        if replicas <> [] then bad "global page %d holds local copies" lpage;
        List.iter
          (fun (e : Mmu.entry) ->
            match e.phys with
            | Mmu.Global_frame l when l = lpage -> ()
            | Mmu.Global_frame _ | Mmu.Frame _ ->
                bad "global page %d: mapping on cpu %d bypasses the global frame" lpage
                  e.cpu)
          mappings
    | Numa_manager.Read_only ->
        if replicas = [] then bad "read-only page %d has no replicas" lpage;
        List.iter
          (fun (e : Mmu.entry) ->
            if Prot.compare e.prot Prot.Read_only > 0 then
              bad "read-only page %d mapped writable on cpu %d" lpage e.cpu;
            if not (mapped_via_replica e ~node:e.cpu) then
              bad "read-only page %d: mapping on cpu %d not via its node's replica" lpage
                e.cpu)
          mappings;
        (* Replicas of a clean page are caches of the global master: every
           cell must read back the coherent value. *)
        let master = Frame_table.read_global frames ~lpage in
        List.iter
          (fun (node, frame) ->
            let cached = Frame_table.read_local frame in
            if cached <> master then
              bad "read-only page %d: node %d caches %d but the global master holds %d"
                lpage node cached master)
          replicas
    | Numa_manager.Local_writable owner -> (
        (match replicas with
        | [ (node, _) ] when node = owner -> ()
        | _ ->
            bad "local-writable page %d: copies not exactly the owner %d's" lpage owner);
        List.iter
          (fun (e : Mmu.entry) ->
            if e.cpu <> owner then
              bad "local-writable page %d mapped on non-owner cpu %d" lpage e.cpu
            else if not (mapped_via_replica e ~node:owner) then
              bad "local-writable page %d: mapping not via the owner's frame" lpage)
          mappings;
        match replica owner with
        | Some frame when not (Frame_table.node_online frames ~node:owner) ->
            (* Redundant with the generic offline check, but names the real
               hazard: a dirty owner on a dead node is lost data. *)
            bad "local-writable page %d: dirty owner frame %d on offline node %d" lpage
              frame.id owner
        | Some _ | None -> ())
    | Numa_manager.Homed home ->
        (match replicas with
        | [ (node, _) ] when node = home -> ()
        | _ -> bad "homed page %d: copies not exactly the home %d's" lpage home);
        List.iter
          (fun (e : Mmu.entry) ->
            if not (mapped_via_replica e ~node:home) then
              bad "homed page %d: mapping on cpu %d not via the home frame" lpage e.cpu)
          mappings);
    (* A pinned page lives in global memory by decree; local copies mean
       the policy and the protocol disagree. Homed pages are exempt — the
       pragma overrides the policy. *)
    (match (pinned, state) with
    | Some _, Numa_manager.Homed _ | None, _ -> ()
    | Some is_pinned, _ ->
        if is_pinned ~lpage && replicas <> [] then
          bad "pinned page %d holds %d local cop%s" lpage (List.length replicas)
            (if List.length replicas = 1 then "y" else "ies"));
    (* The per-frame paging relation (checkable only under the full VM
       stack, whose zero_page/install_page discipline the states assume —
       hence the [pool] gate): nothing maps into an entry whose content
       is absent or still in flight, a free logical page's entry is
       Empty, and no page-in bracket is left open across a quiescent
       point. *)
    match (paging, pool) with
    | Some pg, Some pool ->
        incr paging_checked;
        let pst = Paging.state pg ~lpage in
        (match pst with
        | Paging.Empty | Paging.Reading ->
            if mappings <> [] then
              bad "page %d: mapped while its paging entry is %s" lpage
                (Paging.state_name pst);
            if replicas <> [] then
              bad "page %d: local copies while its paging entry is %s" lpage
                (Paging.state_name pst)
        | Paging.Clean | Paging.Dirty | Paging.Writeback -> ());
        if pst = Paging.Reading then
          bad "page %d: paging entry stuck in Reading between requests" lpage;
        if (not (Numa_vm.Lpage_pool.is_allocated pool lpage)) && pst <> Paging.Empty
        then
          bad "page %d: on the free list but its paging entry is %s" lpage
            (Paging.state_name pst)
    | _ -> ()
  done;
  (* RWLock-style pending-state bookkeeping: the in-flight writeback list
     and the per-entry Writeback states must be the same set (and the
     Dirty-only entry arrow makes "Writeback implies previously Dirty"
     structural — violating it raises at the transition itself). *)
  (match paging with
  | Some pg ->
      let inflight = Paging.in_flight_lpages pg in
      List.iter
        (fun lpage ->
          if Paging.state pg ~lpage <> Paging.Writeback then
            bad "page %d: on the in-flight writeback list but its entry is %s" lpage
              (Paging.state_name (Paging.state pg ~lpage)))
        inflight;
      let n_wb = Paging.count pg Paging.Writeback in
      if n_wb <> List.length inflight then
        bad "%d entries in Writeback but %d on the in-flight list" n_wb
          (List.length inflight)
  | None -> ());
  (* The page-table relation, when tables are materialised: the master
     table is an exact image of the MMU's forward map, every replica
     table agrees with the master (no shootdown is in flight between
     requests, so a disagreement is a stale replica PTE — the numaPTE
     failure mode), and no table page or replica PTE reaches a freed
     frame or a node that no longer exists. *)
  (match Mmu.pt mmu with
  | None -> ()
  | Some pt ->
      let pte_descr (p : Pt.pte) =
        match p.Pt.pte_frame with
        | Some f -> Printf.sprintf "lpage %d via frame %d@%d" p.Pt.pte_lpage f.Frame_table.id f.Frame_table.node
        | None -> Printf.sprintf "lpage %d via the global frame" p.Pt.pte_lpage
      in
      let same_pte (a : Pt.pte) (b : Pt.pte) =
        a.Pt.pte_lpage = b.Pt.pte_lpage
        && a.Pt.pte_prot = b.Pt.pte_prot
        && (match (a.Pt.pte_frame, b.Pt.pte_frame) with
           | None, None -> true
           | Some fa, Some fb ->
               fa.Frame_table.node = fb.Frame_table.node
               && fa.Frame_table.id = fb.Frame_table.id
           | None, Some _ | Some _, None -> false)
      in
      let check_target ~what ~pmap ~cpu ~vpage (p : Pt.pte) =
        match p.Pt.pte_frame with
        | None -> ()
        | Some f ->
            if Frame_table.frame_is_free frames f then
              bad "pmap %d %s PTE (cpu %d, vpage %d) maps freed frame %d on node %d"
                pmap what cpu vpage f.Frame_table.id f.Frame_table.node;
            if not (Frame_table.node_online frames ~node:f.Frame_table.node) then
              bad "pmap %d %s PTE (cpu %d, vpage %d) maps frame %d on offline node %d"
                pmap what cpu vpage f.Frame_table.id f.Frame_table.node
      in
      List.iter
        (fun pmap ->
          (* Master table vs the MMU: same mapping set, same targets. *)
          let entries = Mmu.entries_of_pmap mmu ~pmap in
          List.iter
            (fun (e : Mmu.entry) ->
              incr pt_checked;
              match Pt.master_pte pt ~pmap ~cpu:e.cpu ~vpage:e.vpage with
              | None ->
                  bad "pmap %d: mapping (cpu %d, vpage %d) has no master PTE" pmap
                    e.cpu e.vpage
              | Some p ->
                  let expect =
                    {
                      Pt.pte_lpage = e.lpage;
                      pte_frame =
                        (match e.phys with
                        | Mmu.Frame f -> Some f
                        | Mmu.Global_frame _ -> None);
                      pte_prot = e.prot;
                    }
                  in
                  if not (same_pte p expect) then
                    bad "pmap %d: master PTE (cpu %d, vpage %d) holds %s but the MMU \
                         maps %s"
                      pmap e.cpu e.vpage (pte_descr p) (pte_descr expect))
            entries;
          let n_master = List.length (Pt.master_ptes pt ~pmap) in
          if n_master <> List.length entries then
            bad "pmap %d: master table holds %d PTEs but the MMU holds %d mappings" pmap
              n_master (List.length entries);
          (* Replica tables vs the master. *)
          List.iter
            (fun node ->
              if not (Frame_table.node_online frames ~node) then
                bad "pmap %d: page-table replica survives on offline node %d" pmap node;
              List.iter
                (fun ((cpu, vpage), (p : Pt.pte)) ->
                  incr pt_checked;
                  check_target ~what:(Printf.sprintf "replica(node %d)" node) ~pmap ~cpu
                    ~vpage p;
                  match Pt.master_pte pt ~pmap ~cpu ~vpage with
                  | None ->
                      bad "pmap %d: STALE replica PTE on node %d (cpu %d, vpage %d) %s \
                           — master holds no entry"
                        pmap node cpu vpage (pte_descr p)
                  | Some m ->
                      if not (same_pte p m) then
                        bad "pmap %d: STALE replica PTE on node %d (cpu %d, vpage %d) \
                             holds %s but the master holds %s"
                          pmap node cpu vpage (pte_descr p) (pte_descr m))
                (Pt.replica_ptes pt ~pmap ~node);
              let n_replica = List.length (Pt.replica_ptes pt ~pmap ~node) in
              if n_replica <> n_master then
                bad "pmap %d: replica table on node %d holds %d PTEs but the master \
                     holds %d"
                  pmap node n_replica n_master)
            (Pt.replica_nodes pt ~pmap))
        (Pt.pmaps pt);
      (* Table pages themselves: allocated frames on live nodes, and the
         per-pool page-table census agrees with the tables' own count. *)
      let topo = Config.topology config in
      let counted = Array.make (Topo.cpu_nodes topo) 0 in
      List.iter
        (fun (node, (f : Frame_table.local_frame)) ->
          counted.(node) <- counted.(node) + 1;
          if Frame_table.frame_is_free frames f then
            bad "page-table page in freed frame %d on node %d" f.Frame_table.id node;
          if not (Frame_table.node_online frames ~node) then
            bad "page-table page survives in frame %d on offline node %d"
              f.Frame_table.id node)
        (Pt.table_frames pt);
      Array.iteri
        (fun node n ->
          let census = Frame_table.pt_in_use frames ~node in
          if census <> n then
            bad "node %d pool counts %d page-table frames but the tables hold %d" node
              census n)
        counted);
  (* Request conservation (served-traffic runs only): the closure sweeps
     the application's request ledger — every arrived request is exactly
     one of served-in-deadline / timed-out / shed / in-flight, never lost
     and never double-counted — and reports its findings in the same
     all-violations style as the protocol sweep above. *)
  let requests_checked =
    match requests with
    | None -> 0
    | Some sweep ->
        let checked, findings = sweep () in
        List.iter (fun v -> bad "%s" v) findings;
        checked
  in
  {
    pages_checked = config.Config.global_pages;
    mappings_checked = !mappings_checked;
    replicas_checked = !replicas_checked;
    paging_checked = !paging_checked;
    pt_checked = !pt_checked;
    requests_checked;
    violations = List.rev !violations;
  }

let result r =
  match r.violations with
  | [] -> Ok ()
  | v :: _ ->
      Error
        (Printf.sprintf "%d invariant violation%s, first: %s" (List.length r.violations)
           (if List.length r.violations = 1 then "" else "s")
           v)

let pp ppf r =
  Format.fprintf ppf "@[<v>checked %d pages, %d mappings, %d replicas: " r.pages_checked
    r.mappings_checked r.replicas_checked;
  (match r.violations with
  | [] -> Format.pp_print_string ppf "coherent"
  | vs ->
      Format.fprintf ppf "%d VIOLATIONS" (List.length vs);
      List.iter (fun v -> Format.fprintf ppf "@,  %s" v) vs);
  Format.fprintf ppf "@]"
