(** NUMA placement policies.

    The interface mirrors the paper's policy module: a single
    [cache_policy] function from (page, request) to LOCAL or GLOBAL
    (section 2.3.1), plus event notifications flowing back from the NUMA
    manager so a policy can count page moves. Policies are values, so the
    manager can be rewired with a different policy without modification —
    the property the paper calls out for its pmap layer design.

    {!move_limit} is the paper's policy (section 2.3.2): answer LOCAL until
    the page has moved between processors more than [threshold] times, then
    answer GLOBAL forever ("pinning"). The default threshold is 4, the
    paper's boot-time default. *)

type event =
  | Page_moved of { lpage : int }
      (** the consistency protocol moved the page's contents from one local
          memory to another (a transfer of page ownership) *)
  | Page_freed of { lpage : int }
      (** the logical page was freed and will be reallocated; placement
          history must be forgotten (footnote 4: pageout resets pinning) *)

type t = {
  name : string;
  decide : lpage:int -> cpu:int -> access:Numa_machine.Access.t -> Protocol.decision;
      (** the paper's [cache_policy] entry point, consulted on every fault *)
  note : event -> unit;  (** notifications from the NUMA manager *)
  n_pinned : unit -> int;
      (** distinct pages currently pinned in global memory by this policy
          (always 0 for policies without a pinning notion) *)
  expired_pins : unit -> int list;
      (** pages whose pinning decision should be reconsidered now. Pinned
          pages are mapped with loose protection and never fault again, so
          a policy that wants to reconsider must be polled: the pmap layer
          runs a periodic scan that drops the mappings of expired pins,
          forcing a fresh fault and a fresh decision. Empty for the paper's
          policies, which never reconsider (footnote 4). *)
  info : unit -> (string * string) list;
      (** human-readable parameter/state summary for reports *)
  explain : lpage:int -> string;
      (** one-line reason for the policy's current answer on [lpage]
          ("moves 5 > threshold 4; pinned GLOBAL"), attached to emitted
          {!Numa_obs.Event.Policy_decision} / [Page_pin] events and to the
          per-page audit *)
}

val move_limit : ?threshold:int -> n_pages:int -> unit -> t
(** The paper's policy. [threshold] defaults to 4; a page is pinned once
    its move count exceeds the threshold. *)

val all_global : unit -> t
(** Baseline for the paper's T_global measurement: every page is placed in
    global memory. *)

val never_pin : unit -> t
(** Always answers LOCAL: pages replicate and migrate forever. Equivalent
    to [move_limit] with an infinite threshold; writably-shared pages
    thrash. *)

val random : prng:Numa_util.Prng.t -> p_global:float -> n_pages:int -> t
(** Straw-man: each page is permanently assigned LOCAL or GLOBAL by a coin
    flip on first decision. Used in ablations to show that the simple
    counting policy carries real information. *)

val reconsider : ?threshold:int -> window_ns:float -> now:(unit -> float) -> n_pages:int -> unit -> t
(** Future-work extension (section 5): like {!move_limit}, but a pinning
    decision expires after [window_ns] of simulated time, after which the
    page's move count is reset and it may be cached locally again. *)
