(** NUMA placement policies.

    The interface mirrors the paper's policy module: a single
    [cache_policy] function from (page, request) to LOCAL or GLOBAL
    (section 2.3.1), plus event notifications flowing back from the NUMA
    manager so a policy can count page moves. Policies are values, so the
    manager can be rewired with a different policy without modification —
    the property the paper calls out for its pmap layer design.

    {!move_limit} is the paper's policy (section 2.3.2): answer LOCAL until
    the page has moved between processors more than [threshold] times, then
    answer GLOBAL forever ("pinning"). The default threshold is 4, the
    paper's boot-time default. *)

type event =
  | Page_moved of { lpage : int }
      (** the consistency protocol moved the page's contents from one local
          memory to another (a transfer of page ownership) *)
  | Page_freed of { lpage : int }
      (** the logical page was freed and will be reallocated; placement
          history must be forgotten (footnote 4: pageout resets pinning) *)

type t = {
  name : string;
  decide : lpage:int -> cpu:int -> access:Numa_machine.Access.t -> Protocol.decision;
      (** the paper's [cache_policy] entry point, consulted on every fault *)
  note : event -> unit;  (** notifications from the NUMA manager *)
  n_pinned : unit -> int;
      (** distinct pages currently pinned in global memory by this policy
          (always 0 for policies without a pinning notion) *)
  is_pinned : lpage:int -> bool;
      (** whether this specific page is currently pinned (or, for
          {!random}, sticky-assigned) to global memory. Pure query — must
          not flip any state. The invariant checker uses it: a pinned page
          must hold no local copies. *)
  expired_pins : unit -> int list;
      (** pages whose pinning decision should be reconsidered now. Pinned
          pages are mapped with loose protection and never fault again, so
          a policy that wants to reconsider must be polled: the pmap layer
          runs a periodic scan that drops the mappings of expired pins,
          forcing a fresh fault and a fresh decision. Empty for the paper's
          policies, which never reconsider (footnote 4). *)
  migrate_hints : unit -> (int * int) list;
      (** pending [(from_cpu, to_cpu)] thread re-homing recommendations,
          drained on read. A coordinated policy ({!migrate_threads}) may
          suggest that a thread running on [from_cpu] would be better
          homed on [to_cpu], next to the memory serving its pinned pages.
          The system layer polls this from its daemon tick and decides
          whether (and which thread) to move; placement-only policies
          always return []. *)
  info : unit -> (string * string) list;
      (** human-readable parameter/state summary for reports *)
  explain : lpage:int -> string;
      (** one-line reason for the policy's current answer on [lpage]
          ("moves 5 > threshold 4; pinned GLOBAL"), attached to emitted
          {!Numa_obs.Event.Policy_decision} / [Page_pin] events and to the
          per-page audit *)
}

val move_limit : ?threshold:int -> n_pages:int -> unit -> t
(** The paper's policy. [threshold] defaults to 4; a page is pinned once
    its move count exceeds the threshold. *)

val all_global : unit -> t
(** Baseline for the paper's T_global measurement: every page is placed in
    global memory. *)

val never_pin : unit -> t
(** Always answers LOCAL: pages replicate and migrate forever. Equivalent
    to [move_limit] with an infinite threshold; writably-shared pages
    thrash. *)

val random : prng:Numa_util.Prng.t -> p_global:float -> n_pages:int -> t
(** Straw-man: each page is assigned LOCAL or GLOBAL by a coin flip on
    first decision, and the assignment then sticks for the page's lifetime
    — except across a free: like every policy here, [random] honours
    footnote 4 and forgets the assignment on [Page_freed], so a recycled
    logical page gets a fresh flip. Used in ablations to show that the
    simple counting policy carries real information. *)

val reconsider : ?threshold:int -> window_ns:float -> now:(unit -> float) -> n_pages:int -> unit -> t
(** Future-work extension (section 5): like {!move_limit}, but a pinning
    decision expires after [window_ns] of simulated time, after which the
    page's move count is reset and it may be cached locally again. *)

val decay :
  ?threshold:float -> ?half_life_ns:float -> now:(unit -> float) -> n_pages:int -> unit -> t
(** Adaptive variant of {!move_limit}: the per-page move count decays
    exponentially with simulated time (halving every [half_life_ns],
    default 50 ms), so a bursty ping-pong phase does not pin a page
    forever. A page pins while its decayed score exceeds [threshold]
    (default 4.0) and is reported by [expired_pins] — and hence unpinned
    by the periodic rescan — once the score has leaked back under it. *)

val bandwidth_aware :
  ?threshold:int ->
  topo:Numa_machine.Topo.t ->
  pressure:(node:int -> float) ->
  n_pages:int ->
  unit ->
  t
(** Topology-driven placement in the spirit of Bandwidth-Aware Page
    Placement in NUMA (2020): keeps {!move_limit}'s pin-after-[threshold]
    backbone, but below the threshold it compares the modelled
    per-reference cost of the two placements — the shared-level home's
    matrix latency surcharged when the directed link to it is slow
    ({!Numa_machine.Topo.link_words_per_ns}), against the node's local
    latency scaled up as its frame pool fills ([pressure ~node] is the
    in-use fraction, 0.0–1.0). On striped machines this chooses which
    node serves a shared page: near stripes become cheap GLOBAL answers,
    far stripes over slow links are cached locally instead. *)

val migrate_threads : ?threshold:int -> topo:Numa_machine.Topo.t -> n_pages:int -> unit -> t
(** Coordinated thread-and-page placement in the spirit of Phoenix
    (2025): placement is exactly {!move_limit}, but each time a page
    pins, the policy queues a [(faulting_cpu, home_node)] re-homing hint
    via [migrate_hints] when the page's shared-level home is another CPU
    node's memory — moving the computation to its data instead of only
    the data to the computation. The hints are advisory; the hook is off
    unless the system layer polls and applies them. *)
