type event = Page_moved of { lpage : int } | Page_freed of { lpage : int }

type t = {
  name : string;
  decide : lpage:int -> cpu:int -> access:Numa_machine.Access.t -> Protocol.decision;
  note : event -> unit;
  n_pinned : unit -> int;
  expired_pins : unit -> int list;
  info : unit -> (string * string) list;
  explain : lpage:int -> string;
}

let no_expiry () = []

let move_limit ?(threshold = 4) ~n_pages () =
  if threshold < 0 then invalid_arg "Policy.move_limit: negative threshold";
  let moves = Array.make n_pages 0 in
  let pinned = Hashtbl.create 64 in
  let decide ~lpage ~cpu:_ ~access:_ =
    if moves.(lpage) > threshold then begin
      if not (Hashtbl.mem pinned lpage) then Hashtbl.replace pinned lpage ();
      Protocol.Place_global
    end
    else Protocol.Place_local
  in
  let note = function
    | Page_moved { lpage } -> moves.(lpage) <- moves.(lpage) + 1
    | Page_freed { lpage } ->
        moves.(lpage) <- 0;
        Hashtbl.remove pinned lpage
  in
  let explain ~lpage =
    if Hashtbl.mem pinned lpage then
      Printf.sprintf "move-limit: page moved %d times > threshold %d; pinned GLOBAL"
        moves.(lpage) threshold
    else
      Printf.sprintf "move-limit: moves %d <= threshold %d; cache LOCAL" moves.(lpage)
        threshold
  in
  {
    name = "move-limit";
    decide;
    note;
    n_pinned = (fun () -> Hashtbl.length pinned);
    expired_pins = no_expiry;
    explain;
    info =
      (fun () ->
        [
          ("threshold", string_of_int threshold);
          ("pinned pages", string_of_int (Hashtbl.length pinned));
        ]);
  }

let all_global () =
  {
    name = "all-global";
    decide = (fun ~lpage:_ ~cpu:_ ~access:_ -> Protocol.Place_global);
    note = (fun _ -> ());
    n_pinned = (fun () -> 0);
    expired_pins = no_expiry;
    explain = (fun ~lpage:_ -> "all-global: every page placed GLOBAL");
    info = (fun () -> []);
  }

let never_pin () =
  {
    name = "never-pin";
    decide = (fun ~lpage:_ ~cpu:_ ~access:_ -> Protocol.Place_local);
    note = (fun _ -> ());
    n_pinned = (fun () -> 0);
    expired_pins = no_expiry;
    explain = (fun ~lpage:_ -> "never-pin: every page cached LOCAL forever");
    info = (fun () -> []);
  }

let random ~prng ~p_global ~n_pages =
  if p_global < 0. || p_global > 1. then invalid_arg "Policy.random: bad probability";
  (* 0 = undecided, 1 = local, 2 = global; the flip is sticky so that the
     page does not bounce between memories on every fault. *)
  let assignment = Array.make n_pages 0 in
  let pinned = ref 0 in
  let decide ~lpage ~cpu:_ ~access:_ =
    if assignment.(lpage) = 0 then
      if Numa_util.Prng.float prng 1.0 < p_global then begin
        assignment.(lpage) <- 2;
        incr pinned
      end
      else assignment.(lpage) <- 1;
    if assignment.(lpage) = 2 then Protocol.Place_global else Protocol.Place_local
  in
  let note = function
    | Page_freed { lpage } ->
        if assignment.(lpage) = 2 then decr pinned;
        assignment.(lpage) <- 0
    | Page_moved _ -> ()
  in
  {
    name = "random";
    decide;
    note;
    n_pinned = (fun () -> !pinned);
    expired_pins = no_expiry;
    explain =
      (fun ~lpage ->
        match assignment.(lpage) with
        | 1 -> Printf.sprintf "random(p_global=%.2f): sticky coin flip chose LOCAL" p_global
        | 2 -> Printf.sprintf "random(p_global=%.2f): sticky coin flip chose GLOBAL" p_global
        | _ -> Printf.sprintf "random(p_global=%.2f): page not yet assigned" p_global);
    info = (fun () -> [ ("p_global", Printf.sprintf "%.2f" p_global) ]);
  }

let reconsider ?(threshold = 4) ~window_ns ~now ~n_pages () =
  if threshold < 0 then invalid_arg "Policy.reconsider: negative threshold";
  if window_ns <= 0. then invalid_arg "Policy.reconsider: window must be positive";
  let moves = Array.make n_pages 0 in
  let pinned_at = Hashtbl.create 64 in
  let decide ~lpage ~cpu:_ ~access:_ =
    if moves.(lpage) > threshold then begin
      let t = now () in
      match Hashtbl.find_opt pinned_at lpage with
      | None ->
          Hashtbl.replace pinned_at lpage t;
          Protocol.Place_global
      | Some since when t -. since < window_ns -> Protocol.Place_global
      | Some _ ->
          (* The pin has aged out: give the page a fresh chance locally. *)
          Hashtbl.remove pinned_at lpage;
          moves.(lpage) <- 0;
          Protocol.Place_local
    end
    else Protocol.Place_local
  in
  let note = function
    | Page_moved { lpage } -> moves.(lpage) <- moves.(lpage) + 1
    | Page_freed { lpage } ->
        moves.(lpage) <- 0;
        Hashtbl.remove pinned_at lpage
  in
  let explain ~lpage =
    match Hashtbl.find_opt pinned_at lpage with
    | Some since ->
        Printf.sprintf
          "reconsider: page moved %d times > threshold %d; pinned GLOBAL at t=%.0f ns \
           (expires after %.0f ns)"
          moves.(lpage) threshold since window_ns
    | None ->
        Printf.sprintf "reconsider: moves %d <= threshold %d; cache LOCAL" moves.(lpage)
          threshold
  in
  {
    name = "reconsider";
    decide;
    note;
    n_pinned = (fun () -> Hashtbl.length pinned_at);
    explain;
    expired_pins =
      (fun () ->
        let t = now () in
        Hashtbl.fold
          (fun lpage since acc -> if t -. since >= window_ns then lpage :: acc else acc)
          pinned_at []);
    info =
      (fun () ->
        [
          ("threshold", string_of_int threshold);
          ("window_ns", Printf.sprintf "%.0f" window_ns);
          ("pinned pages", string_of_int (Hashtbl.length pinned_at));
        ]);
  }
