module Topo = Numa_machine.Topo

type event = Page_moved of { lpage : int } | Page_freed of { lpage : int }

type t = {
  name : string;
  decide : lpage:int -> cpu:int -> access:Numa_machine.Access.t -> Protocol.decision;
  note : event -> unit;
  n_pinned : unit -> int;
  is_pinned : lpage:int -> bool;
  expired_pins : unit -> int list;
  migrate_hints : unit -> (int * int) list;
  info : unit -> (string * string) list;
  explain : lpage:int -> string;
}

let no_expiry () = []
let no_hints () = []

let move_limit ?(threshold = 4) ~n_pages () =
  if threshold < 0 then invalid_arg "Policy.move_limit: negative threshold";
  let moves = Array.make n_pages 0 in
  let pinned = Hashtbl.create 64 in
  let decide ~lpage ~cpu:_ ~access:_ =
    if moves.(lpage) > threshold then begin
      if not (Hashtbl.mem pinned lpage) then Hashtbl.replace pinned lpage ();
      Protocol.Place_global
    end
    else Protocol.Place_local
  in
  let note = function
    | Page_moved { lpage } -> moves.(lpage) <- moves.(lpage) + 1
    | Page_freed { lpage } ->
        moves.(lpage) <- 0;
        Hashtbl.remove pinned lpage
  in
  let explain ~lpage =
    if Hashtbl.mem pinned lpage then
      Printf.sprintf "move-limit: page moved %d times > threshold %d; pinned GLOBAL"
        moves.(lpage) threshold
    else
      Printf.sprintf "move-limit: moves %d <= threshold %d; cache LOCAL" moves.(lpage)
        threshold
  in
  {
    name = "move-limit";
    decide;
    note;
    n_pinned = (fun () -> Hashtbl.length pinned);
    is_pinned = (fun ~lpage -> Hashtbl.mem pinned lpage);
    expired_pins = no_expiry;
    migrate_hints = no_hints;
    explain;
    info =
      (fun () ->
        [
          ("threshold", string_of_int threshold);
          ("pinned pages", string_of_int (Hashtbl.length pinned));
        ]);
  }

let all_global () =
  {
    name = "all-global";
    decide = (fun ~lpage:_ ~cpu:_ ~access:_ -> Protocol.Place_global);
    note = (fun _ -> ());
    n_pinned = (fun () -> 0);
    is_pinned = (fun ~lpage:_ -> false);
    expired_pins = no_expiry;
    migrate_hints = no_hints;
    explain = (fun ~lpage:_ -> "all-global: every page placed GLOBAL");
    info = (fun () -> []);
  }

let never_pin () =
  {
    name = "never-pin";
    decide = (fun ~lpage:_ ~cpu:_ ~access:_ -> Protocol.Place_local);
    note = (fun _ -> ());
    n_pinned = (fun () -> 0);
    is_pinned = (fun ~lpage:_ -> false);
    expired_pins = no_expiry;
    migrate_hints = no_hints;
    explain = (fun ~lpage:_ -> "never-pin: every page cached LOCAL forever");
    info = (fun () -> []);
  }

let random ~prng ~p_global ~n_pages =
  if p_global < 0. || p_global > 1. then invalid_arg "Policy.random: bad probability";
  (* 0 = undecided, 1 = local, 2 = global; the flip is sticky so that the
     page does not bounce between memories on every fault. *)
  let assignment = Array.make n_pages 0 in
  let pinned = ref 0 in
  let decide ~lpage ~cpu:_ ~access:_ =
    if assignment.(lpage) = 0 then
      if Numa_util.Prng.float prng 1.0 < p_global then begin
        assignment.(lpage) <- 2;
        incr pinned
      end
      else assignment.(lpage) <- 1;
    if assignment.(lpage) = 2 then Protocol.Place_global else Protocol.Place_local
  in
  let note = function
    | Page_freed { lpage } ->
        if assignment.(lpage) = 2 then decr pinned;
        assignment.(lpage) <- 0
    | Page_moved _ -> ()
  in
  {
    name = "random";
    decide;
    note;
    n_pinned = (fun () -> !pinned);
    is_pinned = (fun ~lpage -> assignment.(lpage) = 2);
    expired_pins = no_expiry;
    migrate_hints = no_hints;
    explain =
      (fun ~lpage ->
        match assignment.(lpage) with
        | 1 -> Printf.sprintf "random(p_global=%.2f): sticky coin flip chose LOCAL" p_global
        | 2 -> Printf.sprintf "random(p_global=%.2f): sticky coin flip chose GLOBAL" p_global
        | _ -> Printf.sprintf "random(p_global=%.2f): page not yet assigned" p_global);
    info = (fun () -> [ ("p_global", Printf.sprintf "%.2f" p_global) ]);
  }

let reconsider ?(threshold = 4) ~window_ns ~now ~n_pages () =
  if threshold < 0 then invalid_arg "Policy.reconsider: negative threshold";
  if window_ns <= 0. then invalid_arg "Policy.reconsider: window must be positive";
  let moves = Array.make n_pages 0 in
  let pinned_at = Hashtbl.create 64 in
  let decide ~lpage ~cpu:_ ~access:_ =
    if moves.(lpage) > threshold then begin
      let t = now () in
      match Hashtbl.find_opt pinned_at lpage with
      | None ->
          Hashtbl.replace pinned_at lpage t;
          Protocol.Place_global
      | Some since when t -. since < window_ns -> Protocol.Place_global
      | Some _ ->
          (* The pin has aged out: give the page a fresh chance locally. *)
          Hashtbl.remove pinned_at lpage;
          moves.(lpage) <- 0;
          Protocol.Place_local
    end
    else Protocol.Place_local
  in
  let note = function
    | Page_moved { lpage } -> moves.(lpage) <- moves.(lpage) + 1
    | Page_freed { lpage } ->
        moves.(lpage) <- 0;
        Hashtbl.remove pinned_at lpage
  in
  let explain ~lpage =
    match Hashtbl.find_opt pinned_at lpage with
    | Some since ->
        Printf.sprintf
          "reconsider: page moved %d times > threshold %d; pinned GLOBAL at t=%.0f ns \
           (expires after %.0f ns)"
          moves.(lpage) threshold since window_ns
    | None ->
        Printf.sprintf "reconsider: moves %d <= threshold %d; cache LOCAL" moves.(lpage)
          threshold
  in
  {
    name = "reconsider";
    decide;
    note;
    n_pinned = (fun () -> Hashtbl.length pinned_at);
    is_pinned = (fun ~lpage -> Hashtbl.mem pinned_at lpage);
    migrate_hints = no_hints;
    explain;
    expired_pins =
      (fun () ->
        let t = now () in
        Hashtbl.fold
          (fun lpage since acc -> if t -. since >= window_ns then lpage :: acc else acc)
          pinned_at []);
    info =
      (fun () ->
        [
          ("threshold", string_of_int threshold);
          ("window_ns", Printf.sprintf "%.0f" window_ns);
          ("pinned pages", string_of_int (Hashtbl.length pinned_at));
        ]);
  }

let decay ?(threshold = 4.) ?(half_life_ns = 50e6) ~now ~n_pages () =
  if threshold < 0. then invalid_arg "Policy.decay: negative threshold";
  if half_life_ns <= 0. then invalid_arg "Policy.decay: half-life must be positive";
  (* The move count is a leaky counter: it halves every [half_life_ns] of
     simulated time, so a bursty ping-pong phase stops counting against the
     page once the phase is over. The decayed value is materialised lazily
     (on decide/note/scan) from (score, last-update) pairs, which keeps the
     policy O(1) per event like move_limit. *)
  let score = Array.make n_pages 0. in
  let last = Array.make n_pages 0. in
  let pinned = Hashtbl.create 64 in
  let current lpage =
    let dt = now () -. last.(lpage) in
    if dt <= 0. then score.(lpage) else score.(lpage) *. (0.5 ** (dt /. half_life_ns))
  in
  let refresh lpage =
    let s = current lpage in
    score.(lpage) <- s;
    last.(lpage) <- now ();
    s
  in
  let decide ~lpage ~cpu:_ ~access:_ =
    let s = refresh lpage in
    if s > threshold then begin
      Hashtbl.replace pinned lpage ();
      Protocol.Place_global
    end
    else begin
      Hashtbl.remove pinned lpage;
      Protocol.Place_local
    end
  in
  let note = function
    | Page_moved { lpage } ->
        let s = refresh lpage in
        score.(lpage) <- s +. 1.
    | Page_freed { lpage } ->
        score.(lpage) <- 0.;
        last.(lpage) <- now ();
        Hashtbl.remove pinned lpage
  in
  let explain ~lpage =
    if Hashtbl.mem pinned lpage then
      Printf.sprintf
        "decay: decayed move score %.2f > threshold %.1f (half-life %.0f ns); pinned \
         GLOBAL until the score decays"
        (current lpage) threshold half_life_ns
    else
      Printf.sprintf "decay: decayed move score %.2f <= threshold %.1f; cache LOCAL"
        (current lpage) threshold
  in
  {
    name = "decay";
    decide;
    note;
    n_pinned = (fun () -> Hashtbl.length pinned);
    is_pinned = (fun ~lpage -> Hashtbl.mem pinned lpage);
    explain;
    expired_pins =
      (fun () ->
        (* A pin whose score has leaked back under the threshold no longer
           has a reason to exist; hand it to the rescan so the page faults
           again and [decide] can answer LOCAL. *)
        Hashtbl.fold
          (fun lpage () acc -> if current lpage <= threshold then lpage :: acc else acc)
          pinned []);
    migrate_hints = no_hints;
    info =
      (fun () ->
        [
          ("threshold", Printf.sprintf "%.1f" threshold);
          ("half_life_ns", Printf.sprintf "%.0f" half_life_ns);
          ("pinned pages", string_of_int (Hashtbl.length pinned));
        ]);
  }

let bandwidth_aware ?(threshold = 4) ~topo ~pressure ~n_pages () =
  if threshold < 0 then invalid_arg "Policy.bandwidth_aware: negative threshold";
  (* Move-limit backbone (moves > threshold still pins), but instead of
     answering LOCAL unconditionally below the threshold, compare the
     modelled per-reference cost of the two placements from this CPU:

     - LOCAL costs the node's own fetch latency, scaled up steeply as the
       node's frame pool fills (a LOCAL answer against a full pool only
       buys a fallback-to-global plus eviction churn);
     - GLOBAL costs the matrix latency to the page's shared-level home
       (the memory board, or the stripe home [lpage mod cpu_nodes] on a
       Butterfly-class machine), surcharged when the directed link to that
       home is slow — one extra word-time per word on a congestible link.

     On a striped machine this is what chooses WHICH node serves a shared
     page: stripes homed on the faulting node are near-free GLOBAL answers,
     far stripes over slow links lose to LOCAL caching. A GLOBAL answer
     below the threshold is opportunistic, not a pin (like all_global,
     n_pinned does not count it), so the page can still be cached locally
     by a later faulting CPU with better geometry. *)
  let moves = Array.make n_pages 0 in
  let pinned = Hashtbl.create 64 in
  let cheap_global = ref 0 in
  let local_cost ~cpu =
    let base = Topo.fetch_ns topo ~from:cpu ~at:cpu in
    let p = pressure ~node:cpu in
    if p >= 1. then base *. 64.
    else if p >= 0.9 then base *. (1. +. ((p -. 0.9) *. 100.))
    else base
  in
  let shared_cost ~lpage ~cpu =
    let home = Topo.global_home topo ~lpage in
    let base = Topo.fetch_ns topo ~from:cpu ~at:home in
    match Topo.link_words_per_ns topo ~from:cpu ~at:home with
    | None -> base
    | Some bw -> base +. (1. /. bw)
  in
  let decide ~lpage ~cpu ~access:_ =
    if moves.(lpage) > threshold then begin
      if not (Hashtbl.mem pinned lpage) then Hashtbl.replace pinned lpage ();
      Protocol.Place_global
    end
    else if shared_cost ~lpage ~cpu <= local_cost ~cpu then begin
      incr cheap_global;
      Protocol.Place_global
    end
    else Protocol.Place_local
  in
  let note = function
    | Page_moved { lpage } -> moves.(lpage) <- moves.(lpage) + 1
    | Page_freed { lpage } ->
        moves.(lpage) <- 0;
        Hashtbl.remove pinned lpage
  in
  let explain ~lpage =
    if Hashtbl.mem pinned lpage then
      Printf.sprintf "bandwidth-aware: page moved %d times > threshold %d; pinned GLOBAL"
        moves.(lpage) threshold
    else
      Printf.sprintf
        "bandwidth-aware: moves %d <= threshold %d; next fault compares shared-home \
         latency+link bandwidth against local latency+frame pressure"
        moves.(lpage) threshold
  in
  {
    name = "bandwidth-aware";
    decide;
    note;
    n_pinned = (fun () -> Hashtbl.length pinned);
    is_pinned = (fun ~lpage -> Hashtbl.mem pinned lpage);
    expired_pins = no_expiry;
    migrate_hints = no_hints;
    explain;
    info =
      (fun () ->
        [
          ("threshold", string_of_int threshold);
          ("pinned pages", string_of_int (Hashtbl.length pinned));
          ("cheap-global decisions", string_of_int !cheap_global);
        ]);
  }

let migrate_threads ?(threshold = 4) ~topo ~n_pages () =
  if threshold < 0 then invalid_arg "Policy.migrate_threads: negative threshold";
  (* Phoenix-style coordination: placement is exactly move_limit, but when
     a page pins, the policy also asks "should the COMPUTATION move?". If
     the page's shared-level home is another CPU node's memory (always the
     case on striped machines, never on a board machine), the faulting
     CPU's work would run closer to its data over there, so the policy
     queues a (faulting_cpu, home_node) re-homing hint. The system layer
     consumes hints from its daemon tick and may move one thread per tick;
     the hint list is drained on read so a hint fires at most once. *)
  let moves = Array.make n_pages 0 in
  let pinned = Hashtbl.create 64 in
  let hints = ref [] in
  let hinted = ref 0 in
  let decide ~lpage ~cpu ~access:_ =
    if moves.(lpage) > threshold then begin
      if not (Hashtbl.mem pinned lpage) then begin
        Hashtbl.replace pinned lpage ();
        let home = Topo.global_home topo ~lpage in
        if home <> cpu && home < Topo.cpu_nodes topo then begin
          hints := (cpu, home) :: !hints;
          incr hinted
        end
      end;
      Protocol.Place_global
    end
    else Protocol.Place_local
  in
  let note = function
    | Page_moved { lpage } -> moves.(lpage) <- moves.(lpage) + 1
    | Page_freed { lpage } ->
        moves.(lpage) <- 0;
        Hashtbl.remove pinned lpage
  in
  let explain ~lpage =
    if Hashtbl.mem pinned lpage then
      Printf.sprintf
        "migrate-threads: page moved %d times > threshold %d; pinned GLOBAL (with a \
         thread re-homing hint toward its shared-level home)"
        moves.(lpage) threshold
    else
      Printf.sprintf "migrate-threads: moves %d <= threshold %d; cache LOCAL"
        moves.(lpage) threshold
  in
  {
    name = "migrate-threads";
    decide;
    note;
    n_pinned = (fun () -> Hashtbl.length pinned);
    is_pinned = (fun ~lpage -> Hashtbl.mem pinned lpage);
    expired_pins = no_expiry;
    migrate_hints =
      (fun () ->
        let out = List.rev !hints in
        hints := [];
        out);
    explain;
    info =
      (fun () ->
        [
          ("threshold", string_of_int threshold);
          ("pinned pages", string_of_int (Hashtbl.length pinned));
          ("migration hints issued", string_of_int !hinted);
        ]);
  }
