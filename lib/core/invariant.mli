(** The protocol invariant checker.

    A full sweep of the coherence directory against the MMU, the frame
    pools and (optionally) the policy's pin set, stating what the
    Li & Hudak-style protocol promises between requests:

    - a local-writable page is owned by exactly one node, whose frame
      holds the only copy, and is mapped only on that node;
    - replicas exist only while the page is read-only (or at its homed
      node), and each read-only replica's cell equals the global
      master's — a read anywhere observes the coherent value;
    - no mapping or replica reaches a freed frame or an offline node;
    - a page the policy has pinned global holds no local copies.

    Unlike {!Numa_manager.check_invariants} (the first-failure variant the
    property tests use on every step), this checker is built for fault
    drills: it never raises, it collects {e every} violation, and it is
    cheap enough to run from the daemon tick under [--paranoid], after
    each injected fault, and at the end of every run. *)

open Numa_machine

type report = {
  pages_checked : int;
  mappings_checked : int;
  replicas_checked : int;
  violations : string list;  (** empty = coherent; in page order *)
}

val check :
  ?pinned:(lpage:int -> bool) ->
  manager:Numa_manager.t ->
  mmu:Mmu.t ->
  frames:Frame_table.t ->
  config:Config.t ->
  unit ->
  report
(** [pinned] is usually the policy's [is_pinned]; omitting it skips the
    pinned-pages-hold-no-copies check. Read-only: the sweep never mutates
    protocol state. *)

val result : report -> (unit, string) result
(** [Ok ()] when coherent, otherwise a one-line summary naming the first
    violation and the total count. *)

val pp : Format.formatter -> report -> unit
