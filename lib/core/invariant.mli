(** The protocol invariant checker.

    A full sweep of the coherence directory against the MMU, the frame
    pools and (optionally) the policy's pin set, stating what the
    Li & Hudak-style protocol promises between requests:

    - a local-writable page is owned by exactly one node, whose frame
      holds the only copy, and is mapped only on that node;
    - replicas exist only while the page is read-only (or at its homed
      node), and each read-only replica's cell equals the global
      master's — a read anywhere observes the coherent value;
    - no mapping or replica reaches a freed frame or an offline node;
    - a page the policy has pinned global holds no local copies.

    Unlike {!Numa_manager.check_invariants} (the first-failure variant the
    property tests use on every step), this checker is built for fault
    drills: it never raises, it collects {e every} violation, and it is
    cheap enough to run from the daemon tick under [--paranoid], after
    each injected fault, and at the end of every run. *)

open Numa_machine

type report = {
  pages_checked : int;
  mappings_checked : int;
  replicas_checked : int;
  paging_checked : int;
      (** logical pages whose paging entry was checked against the
          per-frame relation; 0 without a [pool] or paging machine *)
  pt_checked : int;
      (** PTEs checked against the page-table relation (master table =
          exact image of the MMU, replicas = exact image of the master,
          nothing reaching freed frames or offline nodes); 0 when no
          {!Numa_machine.Pt.t} is attached to the MMU *)
  requests_checked : int;
      (** requests swept by the [requests] conservation closure (the
          served-traffic ledger: arrived = served-in-deadline + timed-out
          + shed + in-flight, each exactly once); 0 without one *)
  violations : string list;  (** empty = coherent; in page order *)
}

val check :
  ?pinned:(lpage:int -> bool) ->
  ?pool:Numa_vm.Lpage_pool.t ->
  ?requests:(unit -> int * string list) ->
  manager:Numa_manager.t ->
  mmu:Mmu.t ->
  frames:Frame_table.t ->
  config:Config.t ->
  unit ->
  report
(** [pinned] is usually the policy's [is_pinned]; omitting it skips the
    pinned-pages-hold-no-copies check. [requests] is the served-traffic
    request-conservation sweep a resilience-enabled serving app registers
    with the system layer: it returns (requests checked, violations) and
    must hold at {e any} instant of the run — double-resolved, lost or
    unaccounted requests become violations exactly like protocol
    breaches. [pool] enables the per-frame
    paging relation — no mapping or local copy into an Empty/Reading
    entry, free pool pages have Empty entries, no Reading bracket open
    at a quiescent point — which assumes the full VM stack's
    zero-fill/install discipline, hence the separate gate. Whenever the
    frame table carries a paging machine, the in-flight writeback list is
    also cross-checked against the per-entry Writeback states ("Writeback
    implies previously Dirty" is structural in
    {!Numa_machine.Paging.start_writeback} and cannot be violated at
    rest). Read-only: the sweep never mutates protocol state. *)

val result : report -> (unit, string) result
(** [Ok ()] when coherent, otherwise a one-line summary naming the first
    violation and the total count. *)

val pp : Format.formatter -> report -> unit
