type t = {
  mutable enters : int;
  mutable zero_fills_local : int;
  mutable zero_fills_global : int;
  mutable copies_to_local : int;
  mutable syncs_to_global : int;
  mutable replicas_flushed : int;
  mutable mappings_dropped : int;
  mutable moves : int;
  mutable local_fallbacks : int;
  mutable tlb_hits : int;
  mutable tlb_misses : int;
  mutable tlb_shootdowns : int;
  mutable node_drains : int;
  mutable drained_pages : int;
  mutable reclaim_retries : int;
  mutable reclaim_rescues : int;
  mutable spurious_shootdowns : int;
  move_histogram : Numa_util.Histogram.t;
}

let create () =
  {
    enters = 0;
    zero_fills_local = 0;
    zero_fills_global = 0;
    copies_to_local = 0;
    syncs_to_global = 0;
    replicas_flushed = 0;
    mappings_dropped = 0;
    moves = 0;
    local_fallbacks = 0;
    tlb_hits = 0;
    tlb_misses = 0;
    tlb_shootdowns = 0;
    node_drains = 0;
    drained_pages = 0;
    reclaim_retries = 0;
    reclaim_rescues = 0;
    spurious_shootdowns = 0;
    move_histogram = Numa_util.Histogram.create ();
  }

let tlb_hit_rate t =
  let total = t.tlb_hits + t.tlb_misses in
  if total = 0 then 0. else float_of_int t.tlb_hits /. float_of_int total

let record_final_moves t n = Numa_util.Histogram.add t.move_histogram n

let to_assoc t =
  [
    ("pmap enters", string_of_int t.enters);
    ("zero fills (local)", string_of_int t.zero_fills_local);
    ("zero fills (global)", string_of_int t.zero_fills_global);
    ("page copies to local", string_of_int t.copies_to_local);
    ("page syncs to global", string_of_int t.syncs_to_global);
    ("replicas flushed", string_of_int t.replicas_flushed);
    ("mappings dropped", string_of_int t.mappings_dropped);
    ("page moves", string_of_int t.moves);
    ("local-memory fallbacks", string_of_int t.local_fallbacks);
  ]
  @ (if t.tlb_hits + t.tlb_misses = 0 then []
     else
       [
         ("software-TLB hits", string_of_int t.tlb_hits);
         ("software-TLB misses", string_of_int t.tlb_misses);
         ("software-TLB shootdowns", string_of_int t.tlb_shootdowns);
         ("software-TLB hit rate", Printf.sprintf "%.4f" (tlb_hit_rate t));
       ])
  @ (* Degradation counters render only on faulted / memory-pressured runs
       so clean reports stay byte-identical to the pre-fault-injection era. *)
  (if
     t.node_drains + t.drained_pages + t.reclaim_retries + t.reclaim_rescues
     + t.spurious_shootdowns = 0
   then []
   else
     [
       ("node drains", string_of_int t.node_drains);
       ("pages drained", string_of_int t.drained_pages);
       ("reclaim retries", string_of_int t.reclaim_retries);
       ("reclaim rescues", string_of_int t.reclaim_rescues);
       ("spurious shootdowns", string_of_int t.spurious_shootdowns);
     ])
  @
  (* Distribution of final per-page move counts (recorded at page free):
     how close pages came to the pin threshold. *)
  let h = t.move_histogram in
  if Numa_util.Histogram.total h = 0 then []
  else
    [
      ("final-move samples", string_of_int (Numa_util.Histogram.total h));
      ("final moves (max)", string_of_int (Numa_util.Histogram.max_key h));
      ( "final moves (mean)",
        Printf.sprintf "%.2f" (Numa_util.Histogram.mean h) );
      ( "final moves (p99)",
        string_of_int (Numa_util.Histogram.percentile h 99.) );
    ]

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter (fun (k, v) -> Format.fprintf ppf "%s: %s@," k v) (to_assoc t);
  Format.fprintf ppf "@]"
