open Numa_machine

type t = {
  config : Config.t;
  frames : Frame_table.t;
  mmu : Mmu.t;
  sink : Cost_sink.t;
  stats : Numa_stats.t;
  obs : Numa_obs.Hub.t;
  manager : Numa_manager.t;
  paging : Paging.t;
  mutable policy : Policy.t;
  pragmas : (int * int, Numa_vm.Region_attr.pragma) Hashtbl.t;  (** (pmap, vpage) *)
  live_pmaps : (int, string) Hashtbl.t;
  mutable next_pmap : int;
  pending_tags : (int, unit) Hashtbl.t;
  mutable next_tag : int;
}

let create ?obs ?(pt_mode = Pt.Off) ~config ~policy () =
  let obs = match obs with Some h -> h | None -> Numa_obs.Hub.create () in
  let frames = Frame_table.create config in
  let mmu = Mmu.create ~obs config in
  let sink = Cost_sink.create ~n_cpus:config.Config.n_cpus in
  let stats = Numa_stats.create () in
  let manager = Numa_manager.create ~obs ~config ~frames ~mmu ~sink ~stats () in
  let paging = Paging.create ~sink ~obs ~config () in
  Frame_table.attach_paging frames paging;
  (* Materialised page tables: only attached when asked for, so the
     default pmap layer keeps today's free-walk translation exactly. *)
  (match pt_mode with
  | Pt.Off -> ()
  | Pt.Shared | Pt.Replicated _ ->
      Mmu.attach_pt mmu (Pt.create ~obs ~config ~frames ~sink ~mode:pt_mode ()));
  {
    config;
    frames;
    mmu;
    sink;
    stats;
    obs;
    manager;
    paging;
    policy;
    pragmas = Hashtbl.create 64;
    live_pmaps = Hashtbl.create 8;
    next_pmap = 0;
    pending_tags = Hashtbl.create 16;
    next_tag = 0;
  }

let set_policy t p = t.policy <- p
let policy t = t.policy
let manager t = t.manager
let paging t = t.paging
let stats t = t.stats
let mmu t = t.mmu
let frames t = t.frames
let sink t = t.sink
let config t = t.config
let obs t = t.obs

let set_pragma t ~pmap ~vpage ~n pragma =
  for v = vpage to vpage + n - 1 do
    match pragma with
    | None -> Hashtbl.remove t.pragmas (pmap, v)
    | Some p -> Hashtbl.replace t.pragmas (pmap, v) p
  done

let pragma_at t ~pmap ~vpage = Hashtbl.find_opt t.pragmas (pmap, vpage)

(* --- the pmap interface ------------------------------------------------ *)

let pmap_create t ~name =
  let id = t.next_pmap in
  t.next_pmap <- id + 1;
  Hashtbl.replace t.live_pmaps id name;
  id

let drop_entry t (e : Mmu.entry) =
  Mmu.remove_entry t.mmu e;
  t.stats.Numa_stats.mappings_dropped <- t.stats.Numa_stats.mappings_dropped + 1;
  Cost_sink.charge t.sink ~cpu:e.cpu ~cat:Numa_obs.Profile.Tlb_shootdown
    ~lpage:e.lpage (Cost.tlb_shootdown_ns t.config)

let pmap_destroy t id =
  if not (Hashtbl.mem t.live_pmaps id) then invalid_arg "pmap_destroy: unknown pmap";
  List.iter (drop_entry t) (Mmu.entries_of_pmap t.mmu ~pmap:id);
  Hashtbl.filter_map_inplace
    (fun (pm, _) pragma -> if pm = id then None else Some pragma)
    t.pragmas;
  Hashtbl.remove t.live_pmaps id

let enter t ~pmap ~cpu ~vpage ~lpage ~min_prot ~max_prot =
  if Prot.compare min_prot max_prot > 0 then
    invalid_arg "pmap_enter: min protection exceeds max";
  if min_prot = Prot.No_access then invalid_arg "pmap_enter: no-access mapping";
  let access =
    match min_prot with
    | Prot.Read_write -> Access.Store
    | Prot.Read_only -> Access.Load
    | Prot.No_access -> assert false
  in
  let obs_on = Numa_obs.Hub.enabled t.obs in
  (* Fault-time entry is the paging tier's reference signal: the LRU-approx
     victim policy compares these ticks. *)
  Paging.touch t.paging ~lpage;
  let result =
    match pragma_at t ~pmap ~vpage with
    | Some (Numa_vm.Region_attr.Homed home) ->
        Numa_manager.request_homed t.manager ~lpage ~cpu ~home
    | (Some Numa_vm.Region_attr.Noncacheable | Some Numa_vm.Region_attr.Cacheable | None)
      as pragma ->
        let decision =
          match pragma with
          | Some Numa_vm.Region_attr.Noncacheable -> Protocol.Place_global
          | Some Numa_vm.Region_attr.Cacheable -> Protocol.Place_local
          | Some (Numa_vm.Region_attr.Homed _) -> assert false
          | None ->
              let pinned_before = if obs_on then t.policy.Policy.n_pinned () else 0 in
              let decision = t.policy.Policy.decide ~lpage ~cpu ~access in
              if obs_on then begin
                let reason = t.policy.Policy.explain ~lpage in
                Numa_obs.Hub.emit t.obs
                  (Numa_obs.Event.Policy_decision
                     { lpage; cpu; global = decision = Protocol.Place_global; reason });
                if t.policy.Policy.n_pinned () > pinned_before then
                  Numa_obs.Hub.emit t.obs
                    (Numa_obs.Event.Page_pin { lpage; cpu; reason })
              end;
              decision
        in
        Numa_manager.request t.manager ~lpage ~cpu ~access ~decision
  in
  if result.Numa_manager.moved then t.policy.Policy.note (Policy.Page_moved { lpage });
  let phys, prot =
    match result.Numa_manager.final_state with
    | Numa_manager.Read_only -> (
        match Numa_manager.replica_frame t.manager ~lpage ~node:cpu with
        | Some frame -> (Mmu.Frame frame, Prot.Read_only)
        | None -> assert false (* the protocol just copied to local *))
    | Numa_manager.Local_writable owner -> (
        assert (owner = cpu);
        match Numa_manager.replica_frame t.manager ~lpage ~node:cpu with
        | Some frame -> (Mmu.Frame frame, max_prot)
        | None -> assert false)
    | Numa_manager.Global_writable -> (Mmu.Global_frame lpage, max_prot)
    | Numa_manager.Homed home -> (
        match Numa_manager.replica_frame t.manager ~lpage ~node:home with
        | Some frame -> (Mmu.Frame frame, max_prot)
        | None -> assert false)
    | Numa_manager.Untouched -> assert false
  in
  Mmu.enter t.mmu ~pmap ~cpu ~vpage ~lpage ~prot ~phys;
  t.stats.Numa_stats.enters <- t.stats.Numa_stats.enters + 1;
  if obs_on then
    Numa_obs.Hub.emit t.obs
      (Numa_obs.Event.Fault_resolved
         {
           cpu;
           vpage;
           lpage;
           write = access = Access.Store;
           state =
             Format.asprintf "%a" Numa_manager.pp_state result.Numa_manager.final_state;
         })

let protect t ~pmap ~vpage ~n prot =
  let doomed = ref [] in
  Mmu.iter_range t.mmu ~pmap ~vpage ~n (fun e ->
      let clamped = Prot.min e.prot prot in
      if clamped = Prot.No_access then doomed := e :: !doomed
      else if clamped <> e.prot then begin
        Mmu.set_prot t.mmu e clamped;
        Cost_sink.charge t.sink ~cpu:e.cpu ~cat:Numa_obs.Profile.Tlb_shootdown
          ~lpage:e.lpage (Cost.tlb_shootdown_ns t.config)
      end);
  List.iter (drop_entry t) !doomed

let remove t ~pmap ~vpage ~n =
  let doomed = ref [] in
  Mmu.iter_range t.mmu ~pmap ~vpage ~n (fun e -> doomed := e :: !doomed);
  List.iter (drop_entry t) !doomed

let remove_all t ~lpage = List.iter (drop_entry t) (Mmu.entries_of_lpage t.mmu ~lpage)

let free_page t ~lpage =
  Numa_manager.reset_page t.manager ~lpage;
  Paging.note_free t.paging ~lpage;
  t.policy.Policy.note (Policy.Page_freed { lpage });
  let tag = t.next_tag in
  t.next_tag <- tag + 1;
  Hashtbl.replace t.pending_tags tag ();
  tag

let free_page_sync t tag =
  (* Cleanup ran eagerly at [free_page]; the tag records that the lazy
     window closed. An unknown tag is a caller bug. *)
  if not (Hashtbl.mem t.pending_tags tag) then
    invalid_arg "pmap_free_page_sync: unknown or already-synced tag";
  Hashtbl.remove t.pending_tags tag

let resident t ~pmap ~cpu ~vpage =
  match Mmu.lookup t.mmu ~pmap ~cpu ~vpage with
  | None -> None
  | Some e -> Some (e.prot, Mmu.phys_location ~cpu e.phys)

let read_slot t ~pmap ~cpu ~vpage =
  match Mmu.lookup t.mmu ~pmap ~cpu ~vpage with
  | None -> invalid_arg "read_slot: not resident"
  | Some e -> (
      match e.phys with
      | Mmu.Frame f -> Frame_table.read_local f
      | Mmu.Global_frame l -> Frame_table.read_global t.frames ~lpage:l)

let write_slot t ~pmap ~cpu ~vpage v =
  match Mmu.lookup t.mmu ~pmap ~cpu ~vpage with
  | None -> invalid_arg "write_slot: not resident"
  | Some e -> (
      if not (Prot.allows e.prot Access.Store) then
        invalid_arg "write_slot: mapping not writable";
      match e.phys with
      | Mmu.Frame f -> Frame_table.write_local t.frames f v
      | Mmu.Global_frame l -> Frame_table.write_global t.frames ~lpage:l v)

let ops t : Numa_vm.Pmap_intf.ops =
  {
    pmap_create = (fun ~name -> pmap_create t ~name);
    pmap_destroy = (fun id -> pmap_destroy t id);
    enter =
      (fun ~pmap ~cpu ~vpage ~lpage ~min_prot ~max_prot ->
        enter t ~pmap ~cpu ~vpage ~lpage ~min_prot ~max_prot);
    protect = (fun ~pmap ~vpage ~n prot -> protect t ~pmap ~vpage ~n prot);
    remove = (fun ~pmap ~vpage ~n -> remove t ~pmap ~vpage ~n);
    remove_all = (fun ~lpage -> remove_all t ~lpage);
    zero_page =
      (fun ~lpage ->
        Numa_manager.mark_zero_fill t.manager ~lpage;
        (* Born dirty: a zero-filled page has no backing-store copy. *)
        Paging.note_zero_fill t.paging ~lpage);
    install_page =
      (fun ~lpage ~content ->
        (* The Reading bracket makes the install's own global write a
           non-mutation for dirty tracking and marks the entry as
           in-flight, un-evictable disk I/O. *)
        Paging.begin_read t.paging ~lpage;
        Numa_manager.install_content t.manager ~lpage ~content;
        Paging.end_read t.paging ~lpage);
    extract_content =
      (fun ~lpage ->
        Numa_manager.sync_if_dirty t.manager ~lpage;
        Frame_table.read_global t.frames ~lpage);
    free_page = (fun ~lpage -> free_page t ~lpage);
    free_page_sync = (fun tag -> free_page_sync t tag);
    resident = (fun ~pmap ~cpu ~vpage -> resident t ~pmap ~cpu ~vpage);
    read_slot = (fun ~pmap ~cpu ~vpage -> read_slot t ~pmap ~cpu ~vpage);
    write_slot = (fun ~pmap ~cpu ~vpage v -> write_slot t ~pmap ~cpu ~vpage v);
  }

let migrate_node_pages t ~src ~dst = Numa_manager.migrate_owned_pages t.manager ~src ~dst

let reconsider_scan t =
  let expired = t.policy.Policy.expired_pins () in
  List.iter
    (fun lpage ->
      if Numa_obs.Hub.enabled t.obs then
        Numa_obs.Hub.emit t.obs (Numa_obs.Event.Page_unpin { lpage });
      remove_all t ~lpage)
    expired;
  let n = List.length expired in
  if n > 0 && Numa_obs.Hub.enabled t.obs then
    Numa_obs.Hub.emit t.obs (Numa_obs.Event.Reconsider_scan { expired = n });
  n

let placement_summary t =
  let untouched = ref 0 and ro = ref 0 and lw = ref 0 and gw = ref 0 and homed = ref 0 in
  for lpage = 0 to t.config.Config.global_pages - 1 do
    match Numa_manager.state_of t.manager ~lpage with
    | Numa_manager.Untouched -> incr untouched
    | Numa_manager.Read_only -> incr ro
    | Numa_manager.Local_writable _ -> incr lw
    | Numa_manager.Global_writable -> incr gw
    | Numa_manager.Homed _ -> incr homed
  done;
  [
    ("untouched", !untouched);
    ("read-only (replicated)", !ro);
    ("local-writable", !lw);
    ("global-writable", !gw);
    ("homed", !homed);
  ]

let figure2 () =
  String.concat "\n"
    [
      "ACE pmap layer (Figure 2)";
      "";
      "        Mach machine-independent VM";
      "                  |";
      "           [pmap interface]";
      "                  |";
      "           +--------------+      +--------------+";
      "           | pmap manager | ---- | NUMA manager |";
      "           +--------------+      +--------------+";
      "                  |                     |";
      "           [mmu interface]       +-------------+";
      "                  |              | NUMA policy |";
      "           +--------------+      +-------------+";
      "           |  MMU (Rosetta)|";
      "           +--------------+";
      "";
    ]
