(** The NUMA manager's consistency protocol, as a pure function.

    This module is Tables 1 and 2 of the paper, verbatim: given the kind of
    request (read or write), the current state of the logical page as seen
    from the requesting processor, and the policy's decision (LOCAL or
    GLOBAL), it yields the ordered list of cleanup actions and the page's
    new state.

    Keeping the transition function pure and separate from its effectful
    executor ({!Numa_manager}) lets the test suite check the whole table
    exhaustively against the paper, and lets the benchmark harness print
    the tables for visual comparison. *)

type decision = Place_local | Place_global
(** The answer of the policy module's [cache_policy] function. *)

type state_view =
  | Sv_read_only
  | Sv_global_writable
  | Sv_local_writable_own  (** local-writable on the requesting node *)
  | Sv_local_writable_other  (** local-writable on some other node *)

type action =
  | Sync_and_flush_own
      (** copy the requester's own local-writable copy back to global
          memory, then drop its mappings and free the frame *)
  | Sync_and_flush_other
      (** ditto for the copy held by the (single) other owning node *)
  | Flush_all
      (** drop all replicas and their mappings, on every node *)
  | Flush_other
      (** drop replicas and mappings on every node except the requester *)
  | Unmap_all
      (** drop all virtual mappings (page lives in global; no copies) *)
  | Copy_to_local
      (** ensure the requester holds a copy in its local memory (a no-op
          when it already does) *)

type new_state = Becomes_read_only | Becomes_local_writable | Becomes_global_writable
(** [Becomes_local_writable] means local-writable on the requesting node. *)

type outcome = { actions : action list; new_state : new_state }

val transition :
  access:Numa_machine.Access.t -> state:state_view -> decision:decision -> outcome
(** The table entry: row [decision], column [state], in Table 1 for loads
    and Table 2 for stores. *)

val all_state_views : state_view list
val all_decisions : decision list

val decision_to_string : decision -> string
val state_view_to_string : state_view -> string
val action_to_string : action -> string
val new_state_to_string : new_state -> string

val render_table : Numa_machine.Access.t -> string
(** The full table in the paper's layout (Table 1 for [Load], Table 2 for
    [Store]): one row per policy decision, one column per page state, each
    cell listing cleanup actions, whether the page is copied to local
    memory, and the new state. *)
