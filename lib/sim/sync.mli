(** Synchronisation objects for simulated threads.

    Matching the paper's applications, locks are non-blocking spin locks
    and barriers are spin barriers: waiting threads burn user time polling,
    and every poll is a real memory reference to the object's page — so a
    lock word that gets pinned into global memory makes every subsequent
    acquisition more expensive, exactly as on the ACE.

    The engine drives all state transitions through {!acquire} /
    {!contend} / {!release}, which also emit lock events when an
    observability hub with an attached sink is supplied. *)

type lock = {
  lock_id : int;
  lock_vpage : int;  (** the page holding the lock word *)
  mutable holder : int option;  (** tid of the current holder *)
  mutable acquisitions : int;
  mutable contended_polls : int;  (** failed test-and-set attempts *)
}

type barrier = {
  barrier_id : int;
  barrier_vpage : int;  (** the page holding the arrival counter *)
  parties : int;
  mutable arrived : int;
  mutable generation : int;  (** bumped on each release *)
}

val make_lock : id:int -> vpage:int -> lock
val make_barrier : id:int -> vpage:int -> parties:int -> barrier

val acquire :
  ?obs:Numa_obs.Hub.t -> ?profile:Numa_obs.Profile.t -> lock -> tid:int -> cpu:int -> unit
(** Successful test-and-set: record the holder, bump the acquisition count
    and (when a sink is listening) emit {!Numa_obs.Event.Lock_acquired}.
    [profile] opens a hold interval stamped from the profiler clock. *)

val contend : ?obs:Numa_obs.Hub.t -> lock -> tid:int -> cpu:int -> unit
(** Failed test-and-set poll: bump the contention count and emit
    {!Numa_obs.Event.Lock_contended}. *)

val release :
  ?obs:Numa_obs.Hub.t -> ?profile:Numa_obs.Profile.t -> lock -> tid:int -> cpu:int -> unit
(** Clear the holder and emit {!Numa_obs.Event.Lock_released}, so the
    event stream brackets every hold interval; [profile] closes the
    interval opened by {!acquire}. *)
