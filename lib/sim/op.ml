type t =
  | Read of { vpage : int; count : int }
  | Write of { vpage : int; count : int; value : int }
  | Compute of { ns : float }
  | Lock_acquire of Sync.lock
  | Lock_release of Sync.lock
  | Barrier_wait of Sync.barrier
  | Syscall of { service_ns : float; touch_stack : bool }
  | Migrate of { cpu : int }
  | Sleep_until of { until_ns : float }
  | Deadline_push of { until_ns : float }
  | Deadline_pop

let pp ppf = function
  | Read { vpage; count } -> Format.fprintf ppf "read[%d x%d]" vpage count
  | Write { vpage; count; value } -> Format.fprintf ppf "write[%d x%d <- %d]" vpage count value
  | Compute { ns } -> Format.fprintf ppf "compute[%.0fns]" ns
  | Lock_acquire l -> Format.fprintf ppf "lock[%d]" l.Sync.lock_id
  | Lock_release l -> Format.fprintf ppf "unlock[%d]" l.Sync.lock_id
  | Barrier_wait b -> Format.fprintf ppf "barrier[%d]" b.Sync.barrier_id
  | Syscall { service_ns; touch_stack } ->
      Format.fprintf ppf "syscall[%.0fns%s]" service_ns (if touch_stack then ",stack" else "")
  | Migrate { cpu } -> Format.fprintf ppf "migrate[cpu%d]" cpu
  | Sleep_until { until_ns } -> Format.fprintf ppf "sleep[until %.0fns]" until_ns
  | Deadline_push { until_ns } -> Format.fprintf ppf "deadline[until %.0fns]" until_ns
  | Deadline_pop -> Format.fprintf ppf "deadline[pop]"
