open Numa_machine

type scheduler_mode = Affinity | Single_queue

(* [Float.max] with the NaN handling stripped: virtual times are never
   NaN, and this runs several times per event. Stays local so it inlines. *)
let fmax (a : float) b = if a < b then b else a

type config = {
  n_cpus : int;
  chunk_refs : int;
  compute_slice_ns : float;
  spin_poll_ns : float;
  unix_master : bool;
  max_events : int;
}

let default_config ~n_cpus =
  {
    n_cpus;
    chunk_refs = 2048;
    compute_slice_ns = 2_000_000. (* 2 ms *);
    spin_poll_ns = 10_000. (* 10 us *);
    unix_master = false;
    max_events = 200_000_000;
  }

exception Deadlock of string

type step = Finished | Blocked of Op.t * (int, step) Effect.Deep.continuation

(* The op currently being worked through, chunk by chunk. *)
type pending =
  | P_refs of {
      vpage : int;
      access : Access.t;
      mutable remaining : int;
      value : int;
      mutable last_value : int;
    }
  | P_compute of { mutable remaining_ns : float }
  | P_lock of Sync.lock
  | P_unlock of Sync.lock
  | P_barrier of { b : Sync.barrier; mutable arrived : bool; mutable gen : int }
  | P_syscall of { service_ns : float; touch_stack : bool }
  | P_migrate of { target : int }
  | P_sleep of { until_ns : float }
  | P_deadline_push of { until_ns : float }
  | P_deadline_pop

type thread = {
  tid : int;
  name : string;
  mutable cpu : int;
  stack_vpage : int option;
  mutable kont : (int, step) Effect.Deep.continuation option;
  mutable pending : pending option;
  mutable finished : bool;
  mutable ready_at : float;
  mutable deadlines : (int * float) list;
      (** armed cancellable timers, newest first: (timer id, absolute
          virtual-time deadline) *)
  mutable deadline : float;
      (** cached tightest armed deadline ([infinity] when none) — read at
          every chunk boundary, so it must be O(1) *)
}

type t = {
  config : config;
  memory : Memory_iface.t;
  scheduler : scheduler_mode;
  obs : Numa_obs.Hub.t;
  clock : float array;
  user : float array;
  system : float array;
  mutable vnow : float;
  events : Event_queue.t;  (* (time, seq) -> tid *)
  mutable seq : int;
  threads : (int, thread) Hashtbl.t;
  mutable thread_by_tid : thread array;
      (** flat tid index, rebuilt when [run] starts; threads cannot spawn
          after that *)
  mutable next_tid : int;
  mutable live : int;
  mutable spawn_rr : int;  (* round-robin cursor for default CPU assignment *)
  mutable next_timer_id : int;  (* deadline timer ids, allocated in event order *)
  mutable n_events : int;
  mutable next_sync_id : int;
  mutable running : bool;
  mutable completed : bool;
  mutable turn_hook : (now:float -> unit) option;
      (** fault injection taps every scheduling turn; [now] is the
          monotone virtual clock *)
  mutable profile : Numa_obs.Profile.t option;
      (** when set, every nanosecond a clock advances is attributed *)
  mutable run_wall_s : float;
      (** real seconds spent inside {!run} — the observatory's
          events/sec denominator; the only non-deterministic number the
          engine keeps, and it stays out of all reports *)
}

let create ?obs config ~memory ~scheduler =
  if config.n_cpus <= 0 then invalid_arg "Engine.create: n_cpus must be positive";
  if config.chunk_refs <= 0 then invalid_arg "Engine.create: chunk_refs must be positive";
  let obs = match obs with Some h -> h | None -> Numa_obs.Hub.create () in
  let t =
  {
    config;
    memory;
    scheduler;
    obs;
    clock = Array.make config.n_cpus 0.;
    user = Array.make config.n_cpus 0.;
    system = Array.make config.n_cpus 0.;
    vnow = 0.;
    events = Event_queue.create ();
    seq = 0;
    threads = Hashtbl.create 32;
    thread_by_tid = [||];
    next_tid = 0;
    live = 0;
    spawn_rr = 0;
    next_timer_id = 0;
    n_events = 0;
    next_sync_id = 0;
    running = false;
    completed = false;
    turn_hook = None;
    profile = None;
    run_wall_s = 0.;
  }
  in
  (* Events carry the engine's virtual clock, so a sink attached anywhere in
     the stack timestamps in simulated nanoseconds. *)
  Numa_obs.Hub.set_clock obs (fun () -> t.vnow);
  t

let obs t = t.obs
let set_turn_hook t hook = t.turn_hook <- Some hook

let set_profile t p =
  t.profile <- Some p;
  Numa_obs.Profile.set_clock p (fun () -> t.vnow)

let profile t = t.profile

let make_lock t ~vpage =
  let id = t.next_sync_id in
  t.next_sync_id <- id + 1;
  Sync.make_lock ~id ~vpage

let make_barrier t ~vpage ~parties =
  let id = t.next_sync_id in
  t.next_sync_id <- id + 1;
  Sync.make_barrier ~id ~vpage ~parties

let schedule t th time =
  th.ready_at <- time;
  Event_queue.add t.events ~time ~seq:t.seq ~tid:th.tid;
  t.seq <- t.seq + 1

let handler : (unit, step) Effect.Deep.handler =
  {
    retc = (fun () -> Finished);
    exnc = raise;
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Api.Sim_op op ->
            Some (fun (k : (a, step) Effect.Deep.continuation) -> Blocked (op, k))
        | _ -> None);
  }

let begin_pending = function
  | Op.Read { vpage; count } ->
      P_refs { vpage; access = Access.Load; remaining = count; value = 0; last_value = 0 }
  | Op.Write { vpage; count; value } ->
      P_refs { vpage; access = Access.Store; remaining = count; value; last_value = value }
  | Op.Compute { ns } -> P_compute { remaining_ns = ns }
  | Op.Lock_acquire l -> P_lock l
  | Op.Lock_release l -> P_unlock l
  | Op.Barrier_wait b -> P_barrier { b; arrived = false; gen = b.Sync.generation }
  | Op.Syscall { service_ns; touch_stack } -> P_syscall { service_ns; touch_stack }
  | Op.Migrate { cpu } -> P_migrate { target = cpu }
  | Op.Sleep_until { until_ns } -> P_sleep { until_ns }
  | Op.Deadline_push { until_ns } -> P_deadline_push { until_ns }
  | Op.Deadline_pop -> P_deadline_pop

let spawn t ?cpu ?stack_vpage ~name body =
  if t.running || t.completed then invalid_arg "Engine.spawn: engine already running";
  let cpu =
    match cpu with
    | Some c ->
        if c < 0 || c >= t.config.n_cpus then invalid_arg "Engine.spawn: bad cpu";
        c
    | None ->
        let c = t.spawn_rr mod t.config.n_cpus in
        t.spawn_rr <- t.spawn_rr + 1;
        c
  in
  let tid = t.next_tid in
  t.next_tid <- tid + 1;
  let th =
    {
      tid;
      name;
      cpu;
      stack_vpage;
      kont = None;
      pending = None;
      finished = false;
      ready_at = 0.;
      deadlines = [];
      deadline = infinity;
    }
  in
  Hashtbl.replace t.threads tid th;
  t.live <- t.live + 1;
  (* Launch the body up to its first operation right away; the first chunk
     is processed when the run loop pops the thread's initial event. *)
  (match Effect.Deep.match_with (fun () -> body ()) () handler with
  | Finished ->
      th.finished <- true;
      t.live <- t.live - 1
  | Blocked (op, k) ->
      th.kont <- Some k;
      th.pending <- Some (begin_pending op);
      schedule t th 0.);
  tid

(* Outcome of processing one chunk at time [start] on [cpu]:
   [user]/[system] durations consumed on that CPU, whether the whole op is
   now complete (with its result value), and — for operations that park the
   thread elsewhere (system calls) or that poll — an explicit next-ready
   time instead of cpu-clock progression. *)
type chunk_outcome = {
  d_user : float;
  d_system : float;
  completed : bool;
  result : int;
  ready_override : float option;
}

let chunk ~d_user ~d_system ?(completed = false) ?(result = 0) ?ready_override () =
  { d_user; d_system; completed; result; ready_override }

let access t th ~cpu ~vpage ~access:a ~count ~value =
  t.memory.Memory_iface.access ~cpu ~tid:th.tid ~vpage ~access:a ~count ~value

let process_chunk t th ~cpu ~start pending =
  match pending with
  | P_refs r ->
      let n = min r.remaining t.config.chunk_refs in
      let res = access t th ~cpu ~vpage:r.vpage ~access:r.access ~count:n ~value:r.value in
      r.remaining <- r.remaining - n;
      r.last_value <- res.Memory_iface.value;
      chunk ~d_user:res.Memory_iface.user_ns ~d_system:res.Memory_iface.system_ns
        ~completed:(r.remaining = 0) ~result:r.last_value ()
  | P_compute c ->
      let slice = Float.min c.remaining_ns t.config.compute_slice_ns in
      c.remaining_ns <- c.remaining_ns -. slice;
      (match t.profile with
      | Some p -> Numa_obs.Profile.charge_compute p ~cpu ~tid:th.tid slice
      | None -> ());
      chunk ~d_user:slice ~d_system:0. ~completed:(c.remaining_ns <= 0.) ()
  | P_lock l -> (
      match l.Sync.holder with
      | None ->
          (* Successful test-and-set: a fetch and a store on the lock page. *)
          let rd = access t th ~cpu ~vpage:l.Sync.lock_vpage ~access:Access.Load ~count:1 ~value:0 in
          let wr = access t th ~cpu ~vpage:l.Sync.lock_vpage ~access:Access.Store ~count:1 ~value:1 in
          Sync.acquire ~obs:t.obs ?profile:t.profile l ~tid:th.tid ~cpu;
          chunk
            ~d_user:(rd.Memory_iface.user_ns +. wr.Memory_iface.user_ns)
            ~d_system:(rd.Memory_iface.system_ns +. wr.Memory_iface.system_ns)
            ~completed:true ()
      | Some _ ->
          (* Busy: burn one poll interval in user state and try again. *)
          let rd = access t th ~cpu ~vpage:l.Sync.lock_vpage ~access:Access.Load ~count:1 ~value:0 in
          Sync.contend ~obs:t.obs l ~tid:th.tid ~cpu;
          let d_user = fmax rd.Memory_iface.user_ns t.config.spin_poll_ns in
          (match t.profile with
          | Some p ->
              (* The poll reference itself was charged as a ref by the
                 memory layer; only the poll padding is spin. *)
              Numa_obs.Profile.charge_lock_spin p ~cpu ~tid:th.tid
                ~lock_id:l.Sync.lock_id
                (d_user -. rd.Memory_iface.user_ns)
          | None -> ());
          chunk ~d_user ~d_system:rd.Memory_iface.system_ns ())
  | P_unlock l ->
      (match l.Sync.holder with
      | Some tid when tid = th.tid -> ()
      | Some _ | None ->
          failwith
            (Printf.sprintf "thread %d (%s) released lock %d it does not hold" th.tid
               th.name l.Sync.lock_id));
      (* The releasing store happens while the thread still holds the lock;
         only then does the holder flip. Anything the store triggers (fault
         handling, bus traffic, its Refs event) is thereby accounted inside
         the hold interval, and no other thread can observe the lock free
         before the memory traffic that freed it exists. *)
      let wr = access t th ~cpu ~vpage:l.Sync.lock_vpage ~access:Access.Store ~count:1 ~value:0 in
      Sync.release ~obs:t.obs ?profile:t.profile l ~tid:th.tid ~cpu;
      chunk ~d_user:wr.Memory_iface.user_ns ~d_system:wr.Memory_iface.system_ns
        ~completed:true ()
  | P_barrier pb ->
      let b = pb.b in
      if not pb.arrived then begin
        (* Arrival: read-modify-write of the counter. *)
        let rd = access t th ~cpu ~vpage:b.Sync.barrier_vpage ~access:Access.Load ~count:1 ~value:0 in
        let wr =
          access t th ~cpu ~vpage:b.Sync.barrier_vpage ~access:Access.Store ~count:1
            ~value:(b.Sync.arrived + 1)
        in
        pb.arrived <- true;
        pb.gen <- b.Sync.generation;
        b.Sync.arrived <- b.Sync.arrived + 1;
        let released = b.Sync.arrived = b.Sync.parties in
        if released then begin
          b.Sync.generation <- b.Sync.generation + 1;
          b.Sync.arrived <- 0
        end;
        chunk
          ~d_user:(rd.Memory_iface.user_ns +. wr.Memory_iface.user_ns)
          ~d_system:(rd.Memory_iface.system_ns +. wr.Memory_iface.system_ns)
          ~completed:released ()
      end
      else if b.Sync.generation > pb.gen then
        (* Release observed on this poll. *)
        let rd = access t th ~cpu ~vpage:b.Sync.barrier_vpage ~access:Access.Load ~count:1 ~value:0 in
        chunk ~d_user:rd.Memory_iface.user_ns ~d_system:rd.Memory_iface.system_ns
          ~completed:true ()
      else begin
        let rd = access t th ~cpu ~vpage:b.Sync.barrier_vpage ~access:Access.Load ~count:1 ~value:0 in
        let d_user = fmax rd.Memory_iface.user_ns t.config.spin_poll_ns in
        (match t.profile with
        | Some p ->
            Numa_obs.Profile.charge_barrier_spin p ~cpu ~tid:th.tid
              (d_user -. rd.Memory_iface.user_ns)
        | None -> ());
        chunk ~d_user ~d_system:rd.Memory_iface.system_ns ()
      end
  | P_migrate { target } ->
      if target < 0 || target >= t.config.n_cpus then
        failwith
          (Printf.sprintf "thread %d (%s) migrated to nonexistent cpu %d" th.tid th.name
             target);
      th.cpu <- target;
      (* A reschedule: the thread resumes on the target once it is past
         both its own time and the target's clock; the dispatch work is
         system time there. *)
      let resume = fmax start t.clock.(target) +. 50_000. in
      (match t.profile with
      | Some p ->
          (* The target clock jumps to [fmax start clock] (an idle gap if
             the event time is ahead) and then serves the dispatch. *)
          Numa_obs.Profile.charge_idle p ~cpu:target
            (fmax start t.clock.(target) -. t.clock.(target));
          Numa_obs.Profile.charge_dispatch p ~cpu:target 50_000.
      | None -> ());
      t.system.(target) <- t.system.(target) +. 50_000.;
      t.clock.(target) <- resume;
      chunk ~d_user:0. ~d_system:0. ~completed:true ~ready_override:resume ()
  | P_syscall { service_ns; touch_stack } ->
      let master = if t.config.unix_master then 0 else cpu in
      let start_service = fmax start t.clock.(master) in
      let stack_ns =
        if touch_stack then
          match th.stack_vpage with
          | None -> 0.
          | Some vpage ->
              (* The kernel reads arguments from and writes results to the
                 caller's stack while running on the (master) CPU. *)
              let rd = access t th ~cpu:master ~vpage ~access:Access.Load ~count:4 ~value:0 in
              let wr = access t th ~cpu:master ~vpage ~access:Access.Store ~count:4 ~value:0 in
              rd.Memory_iface.user_ns +. wr.Memory_iface.user_ns
              +. rd.Memory_iface.system_ns +. wr.Memory_iface.system_ns
        else 0.
      in
      let finish = start_service +. service_ns +. stack_ns in
      t.system.(master) <- t.system.(master) +. service_ns +. stack_ns;
      if Numa_obs.Hub.enabled t.obs then
        Numa_obs.Hub.emit t.obs
          (Numa_obs.Event.Syscall { tid = th.tid; cpu = master; service_ns });
      (match t.profile with
      | Some p ->
          (* Stack references charged themselves through the memory layer;
             the master's remaining clock advance is the wait for the
             master to come free plus the service itself. *)
          Numa_obs.Profile.charge_idle p ~cpu:master
            (start_service -. t.clock.(master));
          Numa_obs.Profile.charge_syscall p ~cpu:master service_ns
      | None -> ());
      t.clock.(master) <- fmax t.clock.(master) finish;
      (* The calling thread was blocked, not computing: its own CPU accrues
         neither user nor system time; it resumes when the call returns. *)
      chunk ~d_user:0. ~d_system:0. ~completed:true ~ready_override:finish ()
  | P_sleep { until_ns } ->
      (* An open-loop timer: park until the virtual deadline without
         touching any CPU clock. A deadline already past resumes at [start]
         (the sleeper was behind, e.g. a serving thread draining a queue
         backlog). The gap, if any, is charged as idle when the thread's
         next chunk finds its event time ahead of the CPU clock. *)
      chunk ~d_user:0. ~d_system:0. ~completed:true
        ~ready_override:(fmax start until_ns) ()
  | P_deadline_push { until_ns } ->
      (* Arm a cancellable timer. Free of simulated time: the deadline
         machinery models a kernel timer wheel whose cost is negligible
         next to a single remote reference. Ids are allocated in event
         order, so they are deterministic. *)
      let id = t.next_timer_id in
      t.next_timer_id <- id + 1;
      th.deadlines <- (id, until_ns) :: th.deadlines;
      if until_ns < th.deadline then th.deadline <- until_ns;
      chunk ~d_user:0. ~d_system:0. ~completed:true ~result:id ()
  | P_deadline_pop ->
      (match th.deadlines with
      | [] ->
          failwith
            (Printf.sprintf "thread %d (%s) popped a deadline it never pushed" th.tid
               th.name)
      | _ :: rest ->
          th.deadlines <- rest;
          th.deadline <- List.fold_left (fun a (_, u) -> Float.min a u) infinity rest);
      chunk ~d_user:0. ~d_system:0. ~completed:true ()

let pick_cpu t th =
  match t.scheduler with
  | Affinity -> th.cpu
  | Single_queue ->
      (* Original Mach: the next available processor takes the thread. *)
      let best = ref 0 in
      for c = 1 to t.config.n_cpus - 1 do
        if t.clock.(c) < t.clock.(!best) then best := c
      done;
      th.cpu <- !best;
      !best

let finish_thread t th =
  th.finished <- true;
  th.kont <- None;
  th.pending <- None;
  t.live <- t.live - 1

(* Process one scheduling turn for [th]: one chunk; on op completion,
   resume the thread body (possibly through several ops) while no other
   event is due earlier. *)
let turn t th =
  let cpu = pick_cpu t th in
  let start = fmax th.ready_at t.clock.(cpu) in
  (* The virtual clock is monotone: a turn that starts on a CPU whose
     local clock lags another CPU's must not drag [vnow] (and with it
     every observability timestamp) backwards. *)
  t.vnow <- fmax t.vnow start;
  (match t.turn_hook with None -> () | Some hook -> hook ~now:t.vnow);
  if Numa_obs.Hub.enabled t.obs then
    Numa_obs.Hub.emit t.obs
      (Numa_obs.Event.Dispatch { tid = th.tid; cpu; name = th.name });
  let rec go start =
    match th.pending with
    | None -> ()
    | Some _ when start >= th.deadline -> fire start
    | Some pending ->
        let o = process_chunk t th ~cpu ~start pending in
        t.user.(cpu) <- t.user.(cpu) +. o.d_user;
        t.system.(cpu) <- t.system.(cpu) +. o.d_system;
        let after =
          match o.ready_override with
          | Some v -> v
          | None ->
              (match t.profile with
              | Some p when start > t.clock.(cpu) ->
                  (* The thread's event time was ahead of its CPU's clock:
                     the CPU sat idle for the difference. *)
                  Numa_obs.Profile.charge_idle p ~cpu (start -. t.clock.(cpu))
              | Some _ | None -> ());
              t.clock.(cpu) <- start +. o.d_user +. o.d_system;
              t.clock.(cpu)
        in
        t.vnow <- fmax t.vnow after;
        if not o.completed then schedule t th after
        else begin
          th.pending <- None;
          match th.kont with
          | None -> assert false
          | Some k -> (
              th.kont <- None;
              match Effect.Deep.continue k o.result with
              | Finished -> finish_thread t th
              | Blocked (op, k') ->
                  th.kont <- Some k';
                  th.pending <- Some (begin_pending op);
                  (* Keep running inline while no other event is due first;
                     avoids heap churn for single-threaded phases. *)
                  let can_inline =
                    o.ready_override = None && Event_queue.min_time t.events >= after
                  in
                  if can_inline then begin
                    t.n_events <- t.n_events + 1;
                    if t.n_events > t.config.max_events then
                      failwith "Engine.run: event budget exceeded";
                    go after
                  end
                  else
                    (* A parked thread (sleep, syscall return) must still
                       observe its tightest deadline: wake at the deadline
                       instant instead of sleeping through it, so the
                       timer fires exactly on time. *)
                    schedule t th
                      (if after > th.deadline then fmax start th.deadline else after))
        end
  and fire start =
    (* The tightest armed timer has expired: abandon the current operation
       at this chunk boundary and unwind the thread with
       {!Api.Deadline_exceeded}. Scopes armed after the firing timer can
       no longer pop themselves (the unwind bypasses their pop), so they
       are disarmed here as well; outer scopes stay armed. *)
    let fired = th.deadline in
    let rec split = function
      | [] -> assert false
      | (id, u) :: rest -> if u <= fired then (id, rest) else split rest
    in
    let id, rest = split th.deadlines in
    th.deadlines <- rest;
    th.deadline <- List.fold_left (fun a (_, u) -> Float.min a u) infinity rest;
    th.pending <- None;
    match th.kont with
    | None -> assert false
    | Some k -> (
        th.kont <- None;
        (* Unwinding may itself perform operations (with_lock releases its
           lock on the way out); they surface here as a fresh blocked op
           and run at [start] — at or after the deadline instant, never
           before. *)
        match Effect.Deep.discontinue k (Api.Deadline_exceeded id) with
        | Finished -> finish_thread t th
        | Blocked (op, k') ->
            th.kont <- Some k';
            th.pending <- Some (begin_pending op);
            if Event_queue.min_time t.events >= start then begin
              t.n_events <- t.n_events + 1;
              if t.n_events > t.config.max_events then
                failwith "Engine.run: event budget exceeded";
              go start
            end
            else schedule t th start)
  in
  go start

let run t =
  if t.running || t.completed then invalid_arg "Engine.run: already running";
  t.running <- true;
  t.thread_by_tid <-
    Array.init t.next_tid (fun tid -> Hashtbl.find t.threads tid);
  let rec loop () =
    let tid = Event_queue.pop_min t.events in
    if tid < 0 then begin
      if t.live > 0 then
        raise
          (Deadlock
             (Printf.sprintf "%d thread(s) blocked with no runnable events" t.live))
    end
    else begin
      t.n_events <- t.n_events + 1;
      if t.n_events > t.config.max_events then
        failwith "Engine.run: event budget exceeded";
      let th = t.thread_by_tid.(tid) in
      if not th.finished then turn t th;
      loop ()
    end
  in
  let wall_start = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      t.run_wall_s <- t.run_wall_s +. (Unix.gettimeofday () -. wall_start))
    loop;
  t.running <- false;
  t.completed <- true

let now t = t.vnow
let clock_ns t ~cpu = t.clock.(cpu)
let run_wall_s t = t.run_wall_s

let events_per_sec t =
  if t.run_wall_s > 0. then float_of_int t.n_events /. t.run_wall_s else 0.

let user_ns t ~cpu = t.user.(cpu)
let system_ns t ~cpu = t.system.(cpu)
let total_user_ns t = Array.fold_left ( +. ) 0. t.user
let total_system_ns t = Array.fold_left ( +. ) 0. t.system
let elapsed_ns t = Array.fold_left Float.max 0. t.clock
let n_events t = t.n_events
let n_threads t = Hashtbl.length t.threads
let thread_cpu t ~tid = (Hashtbl.find t.threads tid).cpu

let rehome t ~tid ~cpu =
  if cpu < 0 || cpu >= t.config.n_cpus then invalid_arg "Engine.rehome: bad cpu";
  match Hashtbl.find_opt t.threads tid with
  | None -> false
  | Some th ->
      if th.finished || th.cpu = cpu then false
      else begin
        (* th.cpu is only read at the start of a scheduling turn
           (pick_cpu), so flipping it between chunks is a clean
           reschedule: the thread's next chunk runs on the target. The
           dispatch costs the same 50 us of system time as a
           self-migration (P_migrate), charged to the target CPU. *)
        th.cpu <- cpu;
        (match t.profile with
        | Some p -> Numa_obs.Profile.charge_dispatch p ~cpu 50_000.
        | None -> ());
        t.system.(cpu) <- t.system.(cpu) +. 50_000.;
        t.clock.(cpu) <- t.clock.(cpu) +. 50_000.;
        true
      end
