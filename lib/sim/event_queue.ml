(* Array-backed binary min-heap on (time, seq), payload tid. The three
   parallel arrays keep times unboxed and the steady-state pop+add cycle
   allocation-free; with a handful of live threads the sift depth is 1-2
   and the whole structure stays in cache. *)

type t = {
  mutable time : float array;
  mutable seq : int array;
  mutable tid : int array;
  mutable size : int;
}

let create () =
  { time = Array.make 64 0.; seq = Array.make 64 0; tid = Array.make 64 0; size = 0 }

let length t = t.size
let is_empty t = t.size = 0

(* Strict (time, seq) order: the monotone sequence number breaks ties so
   equal times pop in schedule order (determinism). *)
let wins t i j =
  t.time.(i) < t.time.(j) || (t.time.(i) = t.time.(j) && t.seq.(i) < t.seq.(j))

let swap t i j =
  let tm = t.time.(i) in
  t.time.(i) <- t.time.(j);
  t.time.(j) <- tm;
  let s = t.seq.(i) in
  t.seq.(i) <- t.seq.(j);
  t.seq.(j) <- s;
  let d = t.tid.(i) in
  t.tid.(i) <- t.tid.(j);
  t.tid.(j) <- d

let grow t =
  let cap = Array.length t.time in
  let cap' = 2 * cap in
  let time = Array.make cap' 0. and seq = Array.make cap' 0 and tid = Array.make cap' 0 in
  Array.blit t.time 0 time 0 cap;
  Array.blit t.seq 0 seq 0 cap;
  Array.blit t.tid 0 tid 0 cap;
  t.time <- time;
  t.seq <- seq;
  t.tid <- tid

let add t ~time ~seq ~tid =
  if t.size = Array.length t.time then grow t;
  let i = t.size in
  t.time.(i) <- time;
  t.seq.(i) <- seq;
  t.tid.(i) <- tid;
  t.size <- t.size + 1;
  let i = ref i in
  while !i > 0 && wins t !i ((!i - 1) / 2) do
    swap t !i ((!i - 1) / 2);
    i := (!i - 1) / 2
  done

let min_time t = if t.size = 0 then infinity else t.time.(0)

(* Returns the earliest tid, or -1 when empty. *)
let pop_min t =
  if t.size = 0 then -1
  else begin
    let result = t.tid.(0) in
    let n = t.size - 1 in
    t.size <- n;
    if n > 0 then begin
      t.time.(0) <- t.time.(n);
      t.seq.(0) <- t.seq.(n);
      t.tid.(0) <- t.tid.(n);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 in
        let r = l + 1 in
        let best = ref !i in
        if l < n && wins t l !best then best := l;
        if r < n && wins t r !best then best := r;
        if !best = !i then continue := false
        else begin
          swap t !i !best;
          i := !best
        end
      done
    end;
    result
  end

let clear t = t.size <- 0
