(** The discrete-event execution engine.

    Simulated threads are OCaml functions that perform {!Api} effects; the
    engine resumes them one bounded chunk of work at a time, in strict
    virtual-time order across all CPUs. Each CPU has its own clock; a
    thread's chunk runs at [max(event time, cpu clock)], which serialises
    threads sharing a CPU and makes chunk size the effective time-slicing
    granularity.

    Accounting follows Unix [time(1)], the paper's instrument: memory
    references, computation and spinning accrue {e user} time on the
    running CPU; fault handling, protocol actions and system-call service
    accrue {e system} time. T_numa and friends are sums of per-CPU user
    times (section 3.1).

    Two scheduler modes reproduce section 4.7: [Affinity] binds each thread
    to a CPU at spawn (the paper's modified scheduler); [Single_queue]
    models original Mach, re-dispatching a thread to the least-advanced CPU
    at every chunk boundary, destroying locality. *)

type scheduler_mode = Affinity | Single_queue

type config = {
  n_cpus : int;
  chunk_refs : int;  (** max references per chunk (interleaving granularity) *)
  compute_slice_ns : float;  (** max computation per chunk *)
  spin_poll_ns : float;  (** spin-lock / barrier poll interval *)
  unix_master : bool;  (** serialise system calls on CPU 0 (section 4.6) *)
  max_events : int;  (** safety valve against runaway simulations *)
}

val default_config : n_cpus:int -> config

type t

exception Deadlock of string
(** Raised when no thread can make progress (e.g. a lock was never
    released). *)

val create : ?obs:Numa_obs.Hub.t -> config -> memory:Memory_iface.t -> scheduler:scheduler_mode -> t
(** [obs] (default: a fresh, sink-less hub) receives scheduler dispatch,
    lock and system-call events. The engine points the hub's clock at its
    own virtual-time counter, so all events — including those emitted by
    lower layers sharing the hub — are stamped in simulated nanoseconds. *)

val obs : t -> Numa_obs.Hub.t

val set_profile : t -> Numa_obs.Profile.t -> unit
(** Attach a simulated-time profiler and point its clock at the engine's
    virtual counter. From then on every nanosecond the engine puts on a
    CPU clock is attributed: references and kernel charges through the
    memory layer, compute slices, spin padding, syscall service, dispatch
    and idle gaps directly here. Callers must also attach the profiler to
    the memory layer's {!Numa_machine.Cost_sink} (the {!Numa_system}
    layer does both). *)

val profile : t -> Numa_obs.Profile.t option

val set_turn_hook : t -> (now:float -> unit) -> unit
(** Install a callback invoked at the start of every scheduling turn with
    the (monotone) virtual clock — the fault injector's drive shaft. The
    hook runs before the turn's chunk, so actions it takes (rehoming
    threads, gating frame pools, degrading links) are visible to the very
    next simulated work. Keep it cheap: it runs per event. *)

val make_lock : t -> vpage:int -> Sync.lock
val make_barrier : t -> vpage:int -> parties:int -> Sync.barrier

val spawn : t -> ?cpu:int -> ?stack_vpage:int -> name:string -> (unit -> unit) -> int
(** Create a thread; returns its tid. Under [Affinity], [cpu] (default:
    round-robin over CPUs) is the thread's home for the whole run.
    [stack_vpage] names the thread's stack page, which system calls touch
    when the Unix-master model is active. Must be called before {!run}. *)

val run : t -> unit
(** Execute until every thread finishes. Raises {!Deadlock} or [Failure]
    (event budget exceeded) on pathological workloads. *)

val now : t -> float
(** Current virtual time; callable during [run] (e.g. from policies). *)

val clock_ns : t -> cpu:int -> float
(** A CPU's local clock — the conservation target for the profiler. *)

val run_wall_s : t -> float
(** Real seconds spent inside {!run} ([Unix.gettimeofday] around the
    event loop). Non-deterministic by nature: kept out of every report,
    consumed only by the bench observatory. *)

val events_per_sec : t -> float
(** Engine throughput, [n_events / run_wall_s]; [0.] before {!run}. *)

val user_ns : t -> cpu:int -> float
val system_ns : t -> cpu:int -> float
val total_user_ns : t -> float
val total_system_ns : t -> float
val elapsed_ns : t -> float
(** Wall-clock analogue: the largest CPU clock. *)

val n_events : t -> int
val n_threads : t -> int
val thread_cpu : t -> tid:int -> int
(** CPU the thread last ran on. *)

val rehome : t -> tid:int -> cpu:int -> bool
(** Externally re-home a live thread onto [cpu]: its next scheduling
    turn runs there (the home CPU is only read at turn start, so this is
    deterministic), at the same 50 us dispatch cost as a self-migration
    ({!Api.migrate}), charged to the target CPU. Returns [false] — and
    does nothing — if the thread is unknown, already finished, or
    already homed on [cpu]. Under the [Single_queue] scheduler the home
    CPU is advisory and the next idle processor still wins. *)
