type lock = {
  lock_id : int;
  lock_vpage : int;
  mutable holder : int option;
  mutable acquisitions : int;
  mutable contended_polls : int;
}

type barrier = {
  barrier_id : int;
  barrier_vpage : int;
  parties : int;
  mutable arrived : int;
  mutable generation : int;
}

let make_lock ~id ~vpage =
  { lock_id = id; lock_vpage = vpage; holder = None; acquisitions = 0; contended_polls = 0 }

let make_barrier ~id ~vpage ~parties =
  if parties <= 0 then invalid_arg "Sync.make_barrier: parties must be positive";
  { barrier_id = id; barrier_vpage = vpage; parties; arrived = 0; generation = 0 }
