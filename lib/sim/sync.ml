type lock = {
  lock_id : int;
  lock_vpage : int;
  mutable holder : int option;
  mutable acquisitions : int;
  mutable contended_polls : int;
}

type barrier = {
  barrier_id : int;
  barrier_vpage : int;
  parties : int;
  mutable arrived : int;
  mutable generation : int;
}

let make_lock ~id ~vpage =
  { lock_id = id; lock_vpage = vpage; holder = None; acquisitions = 0; contended_polls = 0 }

let make_barrier ~id ~vpage ~parties =
  if parties <= 0 then invalid_arg "Sync.make_barrier: parties must be positive";
  { barrier_id = id; barrier_vpage = vpage; parties; arrived = 0; generation = 0 }

(* State transitions live here so the counters and the observability events
   can never disagree about what happened to the lock. *)

let acquire ?obs ?profile l ~tid ~cpu =
  l.holder <- Some tid;
  l.acquisitions <- l.acquisitions + 1;
  (match profile with
  | Some p -> Numa_obs.Profile.lock_acquired p ~lock_id:l.lock_id
  | None -> ());
  match obs with
  | Some hub when Numa_obs.Hub.enabled hub ->
      Numa_obs.Hub.emit hub
        (Numa_obs.Event.Lock_acquired { lock_id = l.lock_id; cpu; tid })
  | Some _ | None -> ()

let contend ?obs l ~tid ~cpu =
  l.contended_polls <- l.contended_polls + 1;
  match obs with
  | Some hub when Numa_obs.Hub.enabled hub ->
      Numa_obs.Hub.emit hub
        (Numa_obs.Event.Lock_contended { lock_id = l.lock_id; cpu; tid })
  | Some _ | None -> ()

let release ?obs ?profile l ~tid ~cpu =
  l.holder <- None;
  (match profile with
  | Some p -> Numa_obs.Profile.lock_released p ~lock_id:l.lock_id
  | None -> ());
  match obs with
  | Some hub when Numa_obs.Hub.enabled hub ->
      Numa_obs.Hub.emit hub
        (Numa_obs.Event.Lock_released { lock_id = l.lock_id; cpu; tid })
  | Some _ | None -> ()
