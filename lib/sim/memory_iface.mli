(** What the engine needs from a memory system.

    The engine is generic over this record so it can be tested against a
    flat UMA memory and run in production against the full
    machine/VM/NUMA stack (wired up by [Numa_system]).

    [access] performs [count] back-to-back references by one CPU to one
    page, resolving faults as needed, and reports the virtual time consumed:
    [user_ns] for the references themselves and [system_ns] for any kernel
    work (faults, page copies) they triggered. For reads, [value] is the
    content observed; for writes it echoes the stored value. *)

type result = { user_ns : float; system_ns : float; value : int }

type t = {
  access :
    cpu:int ->
    tid:int ->
    vpage:int ->
    access:Numa_machine.Access.t ->
    count:int ->
    value:int ->
    result;
}

val flat : Numa_machine.Config.t -> t
(** A uniform-memory-access reference implementation: every reference at
    local speed, no faults, contents in a plain table. Used by the engine's
    own unit tests. *)
