(** The programming interface of simulated threads.

    These functions may only be called from inside a thread body running
    under {!Engine.run}; elsewhere they raise [Effect.Unhandled]. Pages are
    named by virtual page number within the workload's task; applications
    get them from the system layer's region allocator. *)

val read : ?count:int -> int -> unit
(** [read ~count vpage]: [count] (default 1) fetches from the page. *)

val read_value : int -> int
(** One fetch, returning the page cell's current content (used by
    coherence tests and by workloads that consume produced data). *)

val write : ?count:int -> ?value:int -> int -> unit
(** [write ~count ~value vpage]: [count] (default 1) stores; the page's
    content cell becomes [value] (default 0). *)

val compute : float -> unit
(** Pure computation for the given number of nanoseconds. *)

val lock : Sync.lock -> unit
(** Spin until the lock is acquired. Every poll references the lock's
    page. *)

val unlock : Sync.lock -> unit
(** Release; raises (at engine level) if the caller is not the holder. *)

val with_lock : Sync.lock -> (unit -> 'a) -> 'a
(** Acquire, run, release (also on exception). *)

val barrier : Sync.barrier -> unit
(** Arrive and spin until all parties have arrived. *)

val syscall : ?touch_stack:bool -> service_ns:float -> unit -> unit
(** Perform a Unix system call of the given service time. [touch_stack]
    (default false) makes the kernel reference the caller's user stack, the
    behaviour that shares stack pages with the Unix master (section 4.6). *)

val sleep_until : ns:float -> unit
(** Park the calling thread until the given instant of virtual time; a
    deadline already past returns immediately. The thread consumes no CPU
    while parked (the gap is idle, like a blocked system call), which is
    what makes open-loop arrival processes possible: a serving thread
    sleeps to the next request's arrival instant instead of spinning. *)

exception Deadline_exceeded of int
(** Raised inside a thread body when an armed {!with_deadline} timer
    fires; the payload is the timer id the engine handed out when the
    timer was pushed. [with_deadline] catches its own timer's exception,
    so user code only sees this while unwinding through cleanup handlers
    (e.g. the release half of {!with_lock}). *)

val with_deadline : until_ns:float -> (unit -> 'a) -> 'a option
(** [with_deadline ~until_ns f] runs [f] under a cancellable virtual-time
    timer: [Some (f ())] if it finishes before the instant [until_ns],
    [None] if the timer fires first — in which case the thread's current
    operation is abandoned at a chunk boundary no later than the deadline
    and the thread resumes (after the timer scope) at the deadline
    instant. Timers nest; an inner [with_deadline] can only tighten the
    effective deadline, and each scope observes only its own timer.
    Cancellation unwinds [f] with {!Deadline_exceeded}, so [with_lock]
    and [Fun.protect] cleanups run — but beware that a lock held at
    cancellation is released only as the unwind reaches its [with_lock].
    A deadline already past fires on the very next operation. *)

val migrate : cpu:int -> unit
(** Move the calling thread to another processor (costs a reschedule).
    Under the affinity scheduler this is the thread's new permanent home.
    Local pages do not follow automatically — pair with the pmap layer's
    page-migration call, or watch them bounce over one by one (and count
    against the move threshold) as they fault. *)

(**/**)

type _ Effect.t += Sim_op : Op.t -> int Effect.t
(** Exposed for the engine's handler only. *)
