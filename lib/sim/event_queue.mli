(** The engine's ready queue: an array-backed binary min-heap on
    (virtual time, sequence number) keys carrying a thread id.

    Monomorphic on purpose — this is the simulator's hottest structure:
    the comparison is inlined (no closure call per sift step), keys live
    in unboxed float/int arrays rather than tuples, and the empty checks
    ({!min_time}, {!pop_min}) allocate nothing. Ties on time pop in
    insertion (sequence) order, which the engine relies on for
    deterministic scheduling. *)

type t

val create : unit -> t
val length : t -> int
val is_empty : t -> bool

val add : t -> time:float -> seq:int -> tid:int -> unit

val min_time : t -> float
(** Earliest queued time, or [infinity] when empty. *)

val pop_min : t -> int
(** Remove and return the earliest entry's tid, or [-1] when empty. *)

val clear : t -> unit
