(** The operations a simulated thread can perform.

    Thread bodies are ordinary OCaml functions; each operation is delivered
    to the engine as an effect (see {!Api}), the engine charges virtual
    time for it, and the thread resumes. Memory operations are batched
    ([count] back-to-back references to one page): the engine slices large
    batches into bounded chunks so that consistency-protocol activity from
    other processors interleaves realistically. *)

type t =
  | Read of { vpage : int; count : int }
      (** [count] 32-bit fetches from one virtual page *)
  | Write of { vpage : int; count : int; value : int }
      (** [count] 32-bit stores; the page's content cell ends up holding
          [value] *)
  | Compute of { ns : float }
      (** pure computation (no data references) *)
  | Lock_acquire of Sync.lock
  | Lock_release of Sync.lock
  | Barrier_wait of Sync.barrier
  | Syscall of { service_ns : float; touch_stack : bool }
      (** a Unix system call; with the Unix-master model enabled it
          serialises on CPU 0, and with [touch_stack] it references the
          calling thread's stack page from the master CPU (section 4.6) *)
  | Migrate of { cpu : int }
      (** rebind the thread to another processor (the section 4.7 load
          balancing hook); its pages stay behind unless the kernel moves
          them too *)
  | Sleep_until of { until_ns : float }
      (** park until the given instant of virtual time (immediately if it
          is already past); consumes no CPU while parked — the open-loop
          waiting primitive of the serving workloads *)
  | Deadline_push of { until_ns : float }
      (** arm a cancellable virtual-time timer on the calling thread; the
          engine returns a fresh timer id, and if the thread is still
          inside the timer's scope when virtual time reaches [until_ns]
          its current operation is cancelled and
          {!Api.Deadline_exceeded} is raised carrying that id. Timers
          nest: the engine always fires on the tightest armed deadline. *)
  | Deadline_pop
      (** disarm the most recently pushed timer (normal in-time exit from
          an {!Api.with_deadline} scope) *)

val pp : Format.formatter -> t -> unit
