type _ Effect.t += Sim_op : Op.t -> int Effect.t

let perform op = Effect.perform (Sim_op op)

let read ?(count = 1) vpage =
  if count > 0 then ignore (perform (Op.Read { vpage; count }))

let read_value vpage = perform (Op.Read { vpage; count = 1 })

let write ?(count = 1) ?(value = 0) vpage =
  if count > 0 then ignore (perform (Op.Write { vpage; count; value }))

let compute ns = if ns > 0. then ignore (perform (Op.Compute { ns }))

let lock l = ignore (perform (Op.Lock_acquire l))

let unlock l = ignore (perform (Op.Lock_release l))

let with_lock l f =
  lock l;
  match f () with
  | v ->
      unlock l;
      v
  | exception e ->
      unlock l;
      raise e

let barrier b = ignore (perform (Op.Barrier_wait b))

let syscall ?(touch_stack = false) ~service_ns () =
  ignore (perform (Op.Syscall { service_ns; touch_stack }))

let migrate ~cpu = ignore (perform (Op.Migrate { cpu }))

let sleep_until ~ns = ignore (perform (Op.Sleep_until { until_ns = ns }))

exception Deadline_exceeded of int

let with_deadline ~until_ns f =
  let id = perform (Op.Deadline_push { until_ns }) in
  (* The pop lives inside the matched expression: a deadline that fires
     during [f] (or in the race window just before the pop is processed)
     lands in the exception branch either way, so the timer can never
     leak into the caller's scope. *)
  match
    let v = f () in
    ignore (perform Op.Deadline_pop);
    v
  with
  | v -> Some v
  | exception Deadline_exceeded id' when id' = id -> None
