type _ Effect.t += Sim_op : Op.t -> int Effect.t

let perform op = Effect.perform (Sim_op op)

let read ?(count = 1) vpage =
  if count > 0 then ignore (perform (Op.Read { vpage; count }))

let read_value vpage = perform (Op.Read { vpage; count = 1 })

let write ?(count = 1) ?(value = 0) vpage =
  if count > 0 then ignore (perform (Op.Write { vpage; count; value }))

let compute ns = if ns > 0. then ignore (perform (Op.Compute { ns }))

let lock l = ignore (perform (Op.Lock_acquire l))

let unlock l = ignore (perform (Op.Lock_release l))

let with_lock l f =
  lock l;
  match f () with
  | v ->
      unlock l;
      v
  | exception e ->
      unlock l;
      raise e

let barrier b = ignore (perform (Op.Barrier_wait b))

let syscall ?(touch_stack = false) ~service_ns () =
  ignore (perform (Op.Syscall { service_ns; touch_stack }))

let migrate ~cpu = ignore (perform (Op.Migrate { cpu }))

let sleep_until ~ns = ignore (perform (Op.Sleep_until { until_ns = ns }))
