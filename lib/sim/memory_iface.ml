open Numa_machine

type result = { user_ns : float; system_ns : float; value : int }

type t = {
  access :
    cpu:int -> tid:int -> vpage:int -> access:Access.t -> count:int -> value:int -> result;
}

let flat config =
  let cells : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let access ~cpu:_ ~tid:_ ~vpage ~access ~count ~value =
    let user_ns =
      Cost.references_ns config ~access ~where:Location.Local_here ~count
    in
    let value =
      match access with
      | Access.Store ->
          Hashtbl.replace cells vpage value;
          value
      | Access.Load -> Option.value (Hashtbl.find_opt cells vpage) ~default:0
    in
    { user_ns; system_ns = 0.; value }
  in
  { access }
