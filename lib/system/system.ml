open Numa_machine
module Engine = Numa_sim.Engine
module Sync = Numa_sim.Sync
module Memory_iface = Numa_sim.Memory_iface
module Region_attr = Numa_vm.Region_attr
module Policy = Numa_core.Policy

type policy_spec =
  | Move_limit of { threshold : int }
  | All_global
  | Never_pin
  | Random_assign of { p_global : float; seed : int64 }
  | Reconsider of { threshold : int; window_ns : float }
  | Decay of { threshold : float; half_life_ns : float }
  | Bandwidth_aware of { threshold : int }
  | Migrate_threads of { threshold : int }

let policy_spec_name = function
  | Move_limit { threshold } -> Printf.sprintf "move-limit(%d)" threshold
  | All_global -> "all-global"
  | Never_pin -> "never-pin"
  | Random_assign { p_global; _ } -> Printf.sprintf "random(%.2f)" p_global
  | Reconsider { threshold; _ } -> Printf.sprintf "reconsider(%d)" threshold
  | Decay { threshold; _ } -> Printf.sprintf "decay(%.1f)" threshold
  | Bandwidth_aware { threshold } -> Printf.sprintf "bandwidth-aware(%d)" threshold
  | Migrate_threads { threshold } -> Printf.sprintf "migrate-threads(%d)" threshold

let policy_spec_of_string s =
  match String.split_on_char ':' s with
  | [ "move-limit" ] -> Ok (Move_limit { threshold = 4 })
  | [ "move-limit"; n ] -> (
      match int_of_string_opt n with
      | Some threshold when threshold >= 0 -> Ok (Move_limit { threshold })
      | Some _ | None -> Error "move-limit threshold must be a non-negative int")
  | [ "all-global" ] -> Ok All_global
  | [ "never-pin" ] -> Ok Never_pin
  | [ "random"; p ] -> (
      match float_of_string_opt p with
      | Some p_global when p_global >= 0. && p_global <= 1. ->
          Ok (Random_assign { p_global; seed = 7L })
      | Some _ | None -> Error "random probability must be in [0,1]")
  | [ "reconsider"; n; w ] -> (
      match (int_of_string_opt n, float_of_string_opt w) with
      | Some threshold, Some window_ms when threshold >= 0 && window_ms > 0. ->
          Ok (Reconsider { threshold; window_ns = window_ms *. 1e6 })
      | _ -> Error "expected reconsider:<threshold>:<window-ms>")
  | [ "decay" ] -> Ok (Decay { threshold = 4.; half_life_ns = 50e6 })
  | [ "decay"; n; h ] -> (
      match (float_of_string_opt n, float_of_string_opt h) with
      | Some threshold, Some half_life_ms when threshold >= 0. && half_life_ms > 0. ->
          Ok (Decay { threshold; half_life_ns = half_life_ms *. 1e6 })
      | _ -> Error "expected decay:<threshold>:<half-life-ms>")
  | [ "bandwidth-aware" ] -> Ok (Bandwidth_aware { threshold = 4 })
  | [ "bandwidth-aware"; n ] -> (
      match int_of_string_opt n with
      | Some threshold when threshold >= 0 -> Ok (Bandwidth_aware { threshold })
      | Some _ | None -> Error "bandwidth-aware threshold must be a non-negative int")
  | [ "migrate-threads" ] -> Ok (Migrate_threads { threshold = 4 })
  | [ "migrate-threads"; n ] -> (
      match int_of_string_opt n with
      | Some threshold when threshold >= 0 -> Ok (Migrate_threads { threshold })
      | Some _ | None -> Error "migrate-threads threshold must be a non-negative int")
  | _ ->
      Error
        "unknown policy; use move-limit[:N], all-global, never-pin, random:P, \
         reconsider:N:MS, decay[:T:HL-MS], bandwidth-aware[:N], migrate-threads[:N]"

let builtin_policy_specs =
  [
    Move_limit { threshold = 4 };
    All_global;
    Never_pin;
    Random_assign { p_global = 0.5; seed = 7L };
    Reconsider { threshold = 4; window_ns = 50e6 };
    Decay { threshold = 4.; half_life_ns = 50e6 };
    Bandwidth_aware { threshold = 4 };
    Migrate_threads { threshold = 4 };
  ]

type region = {
  base_vpage : int;
  pages : int;
  attr : Region_attr.t;
  obj : Numa_vm.Vm_object.t;
  task : Numa_vm.Task.t;
  counts : Report.ref_counts;  (** shared by all regions with the same name *)
  writable_data : bool;  (** cached [Region_attr.is_writable_data attr] *)
}

type access_event = {
  at : float;
  cpu : int;
  tid : int;
  vpage : int;
  kind : Access.t;
  count : int;
  where : Location.relative;
  region : string;
}

type fault_notice =
  | Fault_node_offline of int
      (** the node just went offline; drain/evacuation/rehoming already ran *)
  | Fault_node_online of int  (** the node just came back *)

type t = {
  config : Config.t;
  topo : Topo.t;  (** resolved topology; the access path prices per node pair *)
  n_nodes : int;
  obs : Numa_obs.Hub.t;
  pmap_mgr : Numa_core.Pmap_manager.t;
  mmu : Mmu.t;
  frames : Frame_table.t;
  ref_ns : float array;
      (** per-reference user cost by [(cpu * n_nodes + node) * 2 + access],
          precomputed from the topology matrix so the access path does no
          cost-model calls *)
  ops : Numa_vm.Pmap_intf.ops;
  pool : Numa_vm.Lpage_pool.t;
  task : Numa_vm.Task.t;
  fault_ctx : Numa_vm.Fault.ctx;
  pageout : Numa_vm.Pageout.t;
  bus : Bus.t;
  engine : Engine.t;
  regions_by_vpage : (int * int, region) Hashtbl.t;  (** (task id, vpage) *)
  mutable tasks : Numa_vm.Task.t list;  (** additional tasks beyond the default *)
  mutable next_task_id : int;
  task_of_tid : (int, Numa_vm.Task.t) Hashtbl.t;
  mutable regions : region list;
  mutable next_obj_id : int;
  mutable n_threads : int;
  mutable locks : Sync.lock list;
  refs_all : Report.ref_counts;
  refs_writable : Report.ref_counts;
  per_region : (string, Report.ref_counts) Hashtbl.t;
  mutable hook : (access_event -> unit) option;
  mutable tasks_by_tid : Numa_vm.Task.t array;
      (** tid -> owning task, rebuilt when stale; valid only while
          [caches_valid] *)
  mutable regions_by_task : region option array array;
      (** task id -> vpage -> region, flat mirror of [regions_by_vpage] *)
  mutable caches_valid : bool;
      (** workload construction (spawn, alloc_region, map_shared) flips
          this off; the first access after that rebuilds both arrays *)
  mutable accesses_since_scan : int;
  reconsider_interval : int;
      (** access-count period of the reconsideration daemon (only matters
          for policies with expiring pins) *)
  apply_migrate_hints : bool;
      (** whether the daemon tick consumes the policy's thread re-homing
          hints; on only for [Migrate_threads] (the hook is opt-in) *)
  mutable thread_migrations : int;  (** re-homings actually applied *)
  injector : Numa_faults.Injector.t option;
      (** fault schedule, polled from the engine's turn hook; [None] on
          clean runs, which then take none of the paths below *)
  fault_plan : string;  (** canonical plan string, echoed in the report *)
  paranoid : bool;  (** audit protocol invariants from the daemon tick *)
  mutable faults_injected : int;
  mutable threads_rehomed : int;  (** threads moved off offline nodes *)
  mutable oom_faults : int;  (** faults that failed even after reclaim *)
  mutable invariant_checks : int;
  mutable invariant_violations : int;
  mutable first_violations : string list;
      (** verbatim findings of the first failing check, for the report *)
  profile : Numa_obs.Profile.t option;
      (** simulated-time profiler; [None] keeps every hot path and the
          report byte-identical to unprofiled releases *)
  mutable serving_cb : (unit -> Report.serving) option;
      (** registered by served-traffic apps at setup; invoked once when the
          report is assembled, so batch apps keep [serving = None] *)
  mutable resilience_cb : (unit -> Report.resilience) option;
      (** registered by resilience-enabled serving apps; same lifecycle as
          [serving_cb], so plain runs keep [resilience = None] *)
  mutable conservation_cb : (unit -> int * string list) option;
      (** the request-conservation sweep handed to {!Numa_core.Invariant}:
          (requests checked, violations); registered alongside
          [resilience_cb] and consulted by every invariant audit *)
  mutable fault_notify : (fault_notice -> unit) option;
      (** application-level fault subscription (the serve app's failover
          and breaker hooks); called after the system's own handling of
          the fault, so the subscriber observes post-drain state *)
}

(* --- reference accounting --------------------------------------------- *)

let bump (c : Report.ref_counts) ~(kind : Access.t) ~(where : Location.relative) ~count =
  match (where, kind) with
  | Location.Local_here, Access.Load -> c.local_reads <- c.local_reads + count
  | Location.Local_here, Access.Store -> c.local_writes <- c.local_writes + count
  | Location.In_global, Access.Load -> c.global_reads <- c.global_reads + count
  | Location.In_global, Access.Store -> c.global_writes <- c.global_writes + count
  | Location.Remote_local, Access.Load -> c.remote_reads <- c.remote_reads + count
  | Location.Remote_local, Access.Store -> c.remote_writes <- c.remote_writes + count

let region_counts t name =
  match Hashtbl.find_opt t.per_region name with
  | Some c -> c
  | None ->
      let c = Report.zero_counts () in
      Hashtbl.replace t.per_region name c;
      c

(* --- the memory interface handed to the engine ------------------------ *)

(* Threads and regions are fixed once the engine starts, so the per-access
   path indexes flat arrays instead of hashing (tid, task, vpage) tuples
   on every reference. Any construction call invalidates the caches. *)
let rebuild_caches t =
  let tasks = Array.make (max 1 t.n_threads) t.task in
  Hashtbl.iter
    (fun tid task -> if tid < Array.length tasks then tasks.(tid) <- task)
    t.task_of_tid;
  let by_task = Array.make t.next_task_id [||] in
  Hashtbl.iter
    (fun (task_id, vpage) region ->
      if task_id < Array.length by_task then begin
        if vpage >= Array.length by_task.(task_id) then begin
          let grown = Array.make (vpage + 1) None in
          Array.blit by_task.(task_id) 0 grown 0 (Array.length by_task.(task_id));
          by_task.(task_id) <- grown
        end;
        by_task.(task_id).(vpage) <- Some region
      end)
    t.regions_by_vpage;
  t.tasks_by_tid <- tasks;
  t.regions_by_task <- by_task;
  t.caches_valid <- true

(* Consume the policy's pending (from_cpu, to_cpu) re-homing hints: for
   each, move the lowest-tid live thread still homed on from_cpu. Hints
   are advisory — a hint whose source CPU no longer runs anything is
   dropped silently. *)
let apply_migrate_hints t =
  let pol = Numa_core.Pmap_manager.policy t.pmap_mgr in
  List.iter
    (fun (from_cpu, to_cpu) ->
      let n = Engine.n_threads t.engine in
      let rec try_tid tid =
        if tid < n then
          if
            Engine.thread_cpu t.engine ~tid = from_cpu
            && Engine.rehome t.engine ~tid ~cpu:to_cpu
          then begin
            t.thread_migrations <- t.thread_migrations + 1;
            if Numa_obs.Hub.enabled t.obs then
              Numa_obs.Hub.emit t.obs
                (Numa_obs.Event.Thread_migrated { tid; from_cpu; to_cpu })
          end
          else try_tid (tid + 1)
      in
      try_tid 0)
    (pol.Policy.migrate_hints ())

(* --- fault injection and the invariant audit --------------------------- *)

let run_invariant_check t =
  let pol = Numa_core.Pmap_manager.policy t.pmap_mgr in
  let report =
    Numa_core.Invariant.check ~pinned:pol.Policy.is_pinned ~pool:t.pool
      ?requests:t.conservation_cb
      ~manager:(Numa_core.Pmap_manager.manager t.pmap_mgr)
      ~mmu:t.mmu ~frames:t.frames ~config:t.config ()
  in
  t.invariant_checks <- t.invariant_checks + 1;
  let n = List.length report.Numa_core.Invariant.violations in
  if n > 0 then begin
    t.invariant_violations <- t.invariant_violations + n;
    if t.first_violations = [] then
      t.first_violations <- report.Numa_core.Invariant.violations
  end;
  if Numa_obs.Hub.enabled t.obs then
    Numa_obs.Hub.emit t.obs (Numa_obs.Event.Invariant_checked { violations = n });
  report

(* Move every thread homed on a dead node to the nearest CPU node whose
   memory is still online. The CPUs themselves keep running — only the
   node's local memory went away — but re-homing restores the meaning of
   LOCAL placements for those threads. *)
let rehome_threads_off t ~node =
  let n_cpus = t.config.Config.n_cpus in
  match
    Topo.nearest_cpu t.topo ~from:node ~ok:(fun c ->
        c <> node && c < n_cpus && Frame_table.node_online t.frames ~node:c)
  with
  | None -> 0
  | Some target ->
      let moved = ref 0 in
      for tid = 0 to Engine.n_threads t.engine - 1 do
        if
          Engine.thread_cpu t.engine ~tid = node
          && Engine.rehome t.engine ~tid ~cpu:target
        then begin
          incr moved;
          if Numa_obs.Hub.enabled t.obs then
            Numa_obs.Hub.emit t.obs
              (Numa_obs.Event.Thread_migrated { tid; from_cpu = node; to_cpu = target })
        end
      done;
      !moved

let apply_fault t (fired : Numa_faults.Injector.fired) =
  t.faults_injected <- t.faults_injected + 1;
  let emit ev = if Numa_obs.Hub.enabled t.obs then Numa_obs.Hub.emit t.obs ev in
  let mgr = Numa_core.Pmap_manager.manager t.pmap_mgr in
  match fired.Numa_faults.Injector.action with
  | Numa_faults.Injector.Set_node_offline node ->
      emit
        (Numa_obs.Event.Fault_injected
           { kind = "node-offline"; detail = Printf.sprintf "node %d" node });
      if Frame_table.node_online t.frames ~node then begin
        (* Drain first, while the pool is still addressable: dirty owners
           sync to global, replicas flush, frames free. Then close the
           pool and move the node's threads somewhere with live memory. *)
        let pages = Numa_core.Numa_manager.drain_node mgr ~node ~by_cpu:node in
        Frame_table.set_node_online t.frames ~node false;
        (* Page-table evacuation comes after the pool closes, so the
           re-homed table pages cannot land back on the dying node. *)
        (match Mmu.pt t.mmu with
        | Some pt -> Pt.node_offline pt ~node
        | None -> ());
        let threads = rehome_threads_off t ~node in
        t.threads_rehomed <- t.threads_rehomed + threads;
        emit (Numa_obs.Event.Node_drained { node; pages; threads });
        emit (Numa_obs.Event.Node_offline { node });
        match t.fault_notify with
        | Some f -> f (Fault_node_offline node)
        | None -> ()
      end
  | Numa_faults.Injector.Set_node_online node ->
      emit
        (Numa_obs.Event.Fault_injected
           { kind = "node-online"; detail = Printf.sprintf "node %d" node });
      Frame_table.set_node_online t.frames ~node true;
      emit (Numa_obs.Event.Node_online { node });
      (match t.fault_notify with
      | Some f -> f (Fault_node_online node)
      | None -> ())
  | Numa_faults.Injector.Begin_link_degrade { src; dst; factor } ->
      emit
        (Numa_obs.Event.Fault_injected
           {
             kind = "link-degrade";
             detail = Printf.sprintf "%d->%d by %g" src dst factor;
           });
      Bus.set_degrade t.bus ~src ~dst ~factor;
      emit (Numa_obs.Event.Link_degraded { src; dst; factor })
  | Numa_faults.Injector.End_link_degrade { src; dst } ->
      Bus.clear_degrade t.bus ~src ~dst;
      emit (Numa_obs.Event.Link_degraded { src; dst; factor = 1. })
  | Numa_faults.Injector.Squeeze_frames { node; frac } ->
      let limit = Frame_table.squeeze t.frames ~node ~frac in
      emit
        (Numa_obs.Event.Fault_injected
           {
             kind = "frame-squeeze";
             detail = Printf.sprintf "node %d to %d frames" node limit;
           })
  | Numa_faults.Injector.Corrupt_replica_pte { lpage } ->
      (* The bug shootdown-aware PTE management exists to prevent, planted
         on purpose: the next invariant audit must call it out. *)
      let detail =
        match Mmu.pt t.mmu with
        | None -> Printf.sprintf "lpage %d: no page tables attached" lpage
        | Some pt -> (
            match Pt.corrupt_replica pt ~lpage with
            | Some (pmap, node) ->
                Printf.sprintf "lpage %d: replica PTE in pmap %d, node %d" lpage pmap
                  node
            | None -> Printf.sprintf "lpage %d: no replica PTE to corrupt" lpage)
      in
      emit (Numa_obs.Event.Fault_injected { kind = "stale-pte"; detail })
  | Numa_faults.Injector.Spurious_shootdown { lpage } ->
      let dropped = Numa_core.Numa_manager.spurious_shootdown mgr ~lpage in
      emit
        (Numa_obs.Event.Fault_injected
           {
             kind = "spurious-shootdown";
             detail = Printf.sprintf "lpage %d, %d mappings" lpage dropped;
           })

let do_access t ~cpu ~tid ~vpage ~access:kind ~count ~value =
  (* Reconsideration daemon: a cheap periodic tick piggybacked on the
     access stream (the real system would use a kernel timer). *)
  t.accesses_since_scan <- t.accesses_since_scan + 1;
  if t.accesses_since_scan >= t.reconsider_interval then begin
    t.accesses_since_scan <- 0;
    (* Kernel work charged during the tick is the daemon's, not the
       application's; the profiler separates the two by context. *)
    (match t.profile with
    | Some p -> Numa_obs.Profile.set_context p Numa_obs.Profile.Daemon
    | None -> ());
    ignore (Numa_core.Pmap_manager.reconsider_scan t.pmap_mgr);
    (* Writeback daemon: retire page-ins/writebacks whose modeled disk
       latency has elapsed, launder dirty pages when the pool is low, and
       top the free list back up to the high-water mark. *)
    ignore (Numa_vm.Pageout.daemon_tick t.pageout ~now:(Engine.now t.engine) ~by_cpu:cpu);
    (* Replication daemon: under eager page-table replication, rebuild any
       replica a returned node is missing (a no-op in every other mode). *)
    (match Mmu.pt t.mmu with
    | Some pt -> ignore (Pt.daemon_sweep pt ~by_cpu:cpu)
    | None -> ());
    if t.apply_migrate_hints then apply_migrate_hints t;
    if t.paranoid then ignore (run_invariant_check t);
    (match t.profile with
    | Some p -> Numa_obs.Profile.set_context p Numa_obs.Profile.App
    | None -> ())
  end;
  if not t.caches_valid then rebuild_caches t;
  (* Resolve the reference in the issuing thread's address space. *)
  let thread_task =
    if tid < Array.length t.tasks_by_tid then t.tasks_by_tid.(tid) else t.task
  in
  let task_id = thread_task.Numa_vm.Task.id in
  let vpages =
    if task_id < Array.length t.regions_by_task then t.regions_by_task.(task_id)
    else [||]
  in
  let region =
    match if vpage < Array.length vpages then vpages.(vpage) else None with
    | Some r -> r
    | None ->
        failwith
          (Printf.sprintf "access to unmapped virtual page %d in task %d" vpage task_id)
  in
  let pmap = thread_task.Numa_vm.Task.pmap in
  (* Stable references resolve through the CPU's software TLB in O(1);
     only faults (and the retry after resolving one) walk the MMU hash
     table and the fault path below it. *)
  let rec ensure attempts =
    if attempts > 3 then failwith "fault loop did not converge";
    match Mmu.translate t.mmu ~pmap ~cpu ~vpage with
    | Some e when Prot.allows e.Mmu.prot kind -> e
    | Some _ | None -> (
        match Numa_vm.Fault.handle t.fault_ctx thread_task ~cpu ~vpage ~access:kind with
        | Ok () -> ensure (attempts + 1)
        | Error e ->
            (match e with
            | Numa_vm.Fault.Out_of_memory -> t.oom_faults <- t.oom_faults + 1
            | Numa_vm.Fault.No_region | Numa_vm.Fault.Protection_violation -> ());
            failwith
              (Printf.sprintf "page fault failed at vpage %d: %s" vpage
                 (Numa_vm.Fault.error_to_string e)))
  in
  let entry = ensure 0 in
  (* [where] keeps the paper's three reporting buckets; [node] is the
     physical node that serves the reference and prices it. On the
     classic ACE the two views coincide exactly. *)
  let where = Mmu.phys_location ~cpu entry.Mmu.phys in
  let node =
    match entry.Mmu.phys with
    | Mmu.Frame f -> f.Frame_table.node
    | Mmu.Global_frame lpage -> Topo.global_home t.topo ~lpage
  in
  let bus_delay =
    if node = cpu then 0.
    else
      (* Traffic to another node's memory crosses the interconnect. *)
      Bus.delay_ns ~cpu ~src:cpu ~dst:node t.bus ~now:(Engine.now t.engine) ~words:count
  in
  if Numa_obs.Hub.enabled t.obs then begin
    let loc =
      match where with
      | Location.Local_here -> Numa_obs.Event.Local
      | Location.In_global -> Numa_obs.Event.Global
      | Location.Remote_local -> Numa_obs.Event.Remote
    in
    Numa_obs.Hub.emit t.obs
      (Numa_obs.Event.Refs { cpu; n = count; write = kind = Access.Store; loc; node })
  end;
  let cost_idx =
    (((cpu * t.n_nodes) + node) * 2)
    + match kind with Access.Load -> 0 | Access.Store -> 1
  in
  let user_ns = (float_of_int count *. t.ref_ns.(cost_idx)) +. bus_delay in
  (match t.profile with
  | Some p ->
      let loc =
        match where with
        | Location.Local_here -> Numa_obs.Event.Local
        | Location.In_global -> Numa_obs.Event.Global
        | Location.Remote_local -> Numa_obs.Event.Remote
      in
      let lpage = entry.Mmu.lpage in
      Numa_obs.Profile.charge_ref p ~cpu ~dst:node ~loc ~lpage ~tid
        (float_of_int count *. t.ref_ns.(cost_idx));
      if bus_delay > 0. then Numa_obs.Profile.charge_bus p ~cpu ~dst:node ~lpage bus_delay
  | None -> ());
  let system_ns =
    Cost_sink.drain (Numa_core.Pmap_manager.sink t.pmap_mgr) ~cpu
  in
  let value =
    match kind with
    | Access.Store -> (
        match entry.Mmu.phys with
        | Mmu.Frame f ->
            Frame_table.write_local t.frames f value;
            value
        | Mmu.Global_frame l ->
            Frame_table.write_global t.frames ~lpage:l value;
            value)
    | Access.Load -> (
        match entry.Mmu.phys with
        | Mmu.Frame f -> Frame_table.read_local f
        | Mmu.Global_frame l -> Frame_table.read_global t.frames ~lpage:l)
  in
  bump t.refs_all ~kind ~where ~count;
  if region.writable_data then bump t.refs_writable ~kind ~where ~count;
  bump region.counts ~kind ~where ~count;
  (match t.hook with
  | None -> ()
  | Some f ->
      f
        {
          at = Engine.now t.engine;
          cpu;
          tid;
          vpage;
          kind;
          count;
          where;
          region = region.attr.Region_attr.name;
        });
  { Memory_iface.user_ns; system_ns; value }

(* --- construction ------------------------------------------------------ *)

let no_pressure ~node:_ = 0.

let policy_of_spec ?(pressure = no_pressure) spec ~n_pages ~now ~topo =
  match spec with
  | Move_limit { threshold } -> Policy.move_limit ~threshold ~n_pages ()
  | All_global -> Policy.all_global ()
  | Never_pin -> Policy.never_pin ()
  | Random_assign { p_global; seed } ->
      Policy.random ~prng:(Numa_util.Prng.create ~seed) ~p_global ~n_pages
  | Reconsider { threshold; window_ns } ->
      Policy.reconsider ~threshold ~window_ns ~now ~n_pages ()
  | Decay { threshold; half_life_ns } -> Policy.decay ~threshold ~half_life_ns ~now ~n_pages ()
  | Bandwidth_aware { threshold } -> Policy.bandwidth_aware ~threshold ~topo ~pressure ~n_pages ()
  | Migrate_threads { threshold } -> Policy.migrate_threads ~threshold ~topo ~n_pages ()

let build_policy = policy_of_spec

let create ?obs ?(policy = Move_limit { threshold = 4 }) ?(scheduler = Engine.Affinity)
    ?(chunk_refs = 2048) ?(spin_poll_ns = 10_000.) ?(unix_master = false)
    ?(faults = Numa_faults.Plan.empty) ?(paranoid = false) ?(profiling = false)
    ?(victim = Numa_vm.Pageout.Clock) ?(pt_mode = Pt.Off) ~config () =
  (match Config.validate config with
  | Ok _ -> ()
  | Error msg -> invalid_arg ("System.create: bad machine config: " ^ msg));
  (* One hub shared by every layer: the bus, the pmap/NUMA managers and the
     engine all emit into it, and the engine drives its clock. *)
  let obs = match obs with Some h -> h | None -> Numa_obs.Hub.create () in
  let topo = Config.topology config in
  (match
     Numa_faults.Plan.validate faults ~cpu_nodes:(Topo.cpu_nodes topo)
       ~n_nodes:(Topo.n_nodes topo)
   with
  | Ok () -> ()
  | Error msg -> invalid_arg ("System.create: bad fault plan: " ^ msg));
  let injector =
    if Numa_faults.Plan.is_empty faults then None
    else Some (Numa_faults.Injector.create faults ~n_pages:config.Config.global_pages)
  in
  let now_cell = ref (fun () -> 0.) in
  (* The bandwidth-aware policy consults per-node frame pressure, but the
     frame table only exists once the pmap manager does — and the manager
     needs the policy. Tie the knot with a cell, like [now_cell]. *)
  let frames_cell = ref None in
  let pressure ~node =
    match !frames_cell with
    | None -> 0.
    | Some frames ->
        let cap = Frame_table.local_capacity frames ~node in
        if cap <= 0 then 1.
        else float_of_int (Frame_table.local_in_use frames ~node) /. float_of_int cap
  in
  let pol =
    build_policy policy ~pressure ~n_pages:config.Config.global_pages
      ~now:(fun () -> !now_cell ())
      ~topo
  in
  let pmap_mgr = Numa_core.Pmap_manager.create ~obs ~pt_mode ~config ~policy:pol () in
  frames_cell := Some (Numa_core.Pmap_manager.frames pmap_mgr);
  let ops = Numa_core.Pmap_manager.ops pmap_mgr in
  let pool = Numa_vm.Lpage_pool.create config ~ops in
  let task = Numa_vm.Task.create ~ops ~id:0 ~name:"workload" in
  let pageout =
    Numa_vm.Pageout.create ~pool ~ops ~low_water:2
      ~high_water:(max 8 (config.Config.global_pages / 64))
      ~victim
      ~paging:(Numa_core.Pmap_manager.paging pmap_mgr)
      ()
  in
  let fault_ctx =
    {
      Numa_vm.Fault.ops;
      config;
      sink = Numa_core.Pmap_manager.sink pmap_mgr;
      pool;
      pageout = Some pageout;
      obs = Some obs;
    }
  in
  let tref = ref None in
  let memory =
    {
      Memory_iface.access =
        (fun ~cpu ~tid ~vpage ~access ~count ~value ->
          match !tref with
          | Some t -> do_access t ~cpu ~tid ~vpage ~access ~count ~value
          | None -> assert false);
    }
  in
  let engine_config =
    {
      (Engine.default_config ~n_cpus:config.Config.n_cpus) with
      Engine.chunk_refs;
      spin_poll_ns;
      unix_master;
    }
  in
  let engine = Engine.create ~obs engine_config ~memory ~scheduler in
  let bus = Bus.create ~obs config in
  let n_nodes = Topo.n_nodes topo in
  let profile =
    if not profiling then None
    else begin
      (* One profiler shared by the two charging paths: the engine (refs,
         compute, spin, syscalls, dispatch, idle) and the cost sink
         (kernel charges, flushed at drain time). *)
      let p =
        Numa_obs.Profile.create ~n_cpus:config.Config.n_cpus ~n_nodes
          ~n_pages:config.Config.global_pages
      in
      Engine.set_profile engine p;
      Cost_sink.set_profile (Numa_core.Pmap_manager.sink pmap_mgr) (Some p);
      Some p
    end
  in
  let t =
    {
      config;
      topo;
      n_nodes;
      obs;
      pmap_mgr;
      mmu = Numa_core.Pmap_manager.mmu pmap_mgr;
      frames = Numa_core.Pmap_manager.frames pmap_mgr;
      ref_ns =
        Array.init
          (config.Config.n_cpus * n_nodes * 2)
          (fun i ->
            let cpu = i / (n_nodes * 2) in
            let node = i / 2 mod n_nodes in
            Cost.node_reference_ns ~topo
              ~access:(if i land 1 = 0 then Access.Load else Access.Store)
              ~cpu ~node);
      ops;
      pool;
      task;
      fault_ctx;
      pageout;
      bus;
      engine;
      regions_by_vpage = Hashtbl.create 256;
      tasks = [];
      next_task_id = 1;
      task_of_tid = Hashtbl.create 32;
      regions = [];
      next_obj_id = 0;
      n_threads = 0;
      locks = [];
      refs_all = Report.zero_counts ();
      refs_writable = Report.zero_counts ();
      per_region = Hashtbl.create 32;
      hook = None;
      tasks_by_tid = [||];
      regions_by_task = [||];
      caches_valid = false;
      accesses_since_scan = 0;
      reconsider_interval = 512;
      apply_migrate_hints = (match policy with Migrate_threads _ -> true | _ -> false);
      thread_migrations = 0;
      injector;
      fault_plan = Numa_faults.Plan.to_string faults;
      paranoid;
      faults_injected = 0;
      threads_rehomed = 0;
      oom_faults = 0;
      invariant_checks = 0;
      invariant_violations = 0;
      first_violations = [];
      profile;
      serving_cb = None;
      resilience_cb = None;
      conservation_cb = None;
      fault_notify = None;
    }
  in
  tref := Some t;
  (now_cell := fun () -> Engine.now engine);
  (* A failed local-frame allocation retries once after page-out-driven
     reclamation before degrading to global. [ensure_free]'s own watermark
     is on the logical-page pool, which a full node does not necessarily
     deplete, so ask for one more free lpage than we have: that forces at
     least one eviction per retry. *)
  Numa_core.Numa_manager.set_reclaim
    (Numa_core.Pmap_manager.manager pmap_mgr)
    (fun ~avoid ~by_cpu ->
      Numa_vm.Pageout.ensure_free ~avoid ~by_cpu pageout
        ~needed:(Numa_vm.Lpage_pool.n_free pool + 1));
  (match t.injector with
  | None -> ()
  | Some inj ->
      Engine.set_turn_hook engine (fun ~now ->
          match Numa_faults.Injector.due inj ~now with
          | [] -> ()
          | fired ->
              (match t.profile with
              | Some p -> Numa_obs.Profile.set_context p Numa_obs.Profile.Degradation
              | None -> ());
              List.iter (fun f -> apply_fault t f) fired;
              (* Every injected batch is followed by a full protocol audit:
                 degradation must never mean a wrong answer. *)
              ignore (run_invariant_check t);
              (match t.profile with
              | Some p -> Numa_obs.Profile.set_context p Numa_obs.Profile.App
              | None -> ())));
  t

(* --- workload construction --------------------------------------------- *)

let register_region t ?pragma ~(task : Numa_vm.Task.t) ~attr ~obj ~pages ~max_prot () =
  let vm_region =
    Numa_vm.Vm_map.allocate task.Numa_vm.Task.map ~npages:pages ~obj ~obj_offset:0
      ~max_prot ~attr ()
  in
  let region =
    {
      base_vpage = vm_region.Numa_vm.Vm_map.base_vpage;
      pages;
      attr;
      obj;
      task;
      counts = region_counts t attr.Region_attr.name;
      writable_data = Region_attr.is_writable_data attr;
    }
  in
  for v = region.base_vpage to region.base_vpage + pages - 1 do
    Hashtbl.replace t.regions_by_vpage (task.Numa_vm.Task.id, v) region
  done;
  t.caches_valid <- false;
  (match pragma with
  | None -> ()
  | Some _ ->
      Numa_core.Pmap_manager.set_pragma t.pmap_mgr ~pmap:task.Numa_vm.Task.pmap
        ~vpage:region.base_vpage ~n:pages pragma);
  t.regions <- region :: t.regions;
  region

let max_prot_of_kind = function
  | Region_attr.Code -> Prot.Read_only
  | Region_attr.Data | Region_attr.Stack _ | Region_attr.Sync -> Prot.Read_write

let alloc_region t ?pragma ?task ~name ~kind ~sharing ~pages () =
  if pages <= 0 then invalid_arg "System.alloc_region: pages must be positive";
  let task = Option.value task ~default:t.task in
  let attr = Region_attr.v ?pragma ~name ~kind ~sharing () in
  let obj = Numa_vm.Vm_object.create ~id:t.next_obj_id ~name ~size_pages:pages in
  t.next_obj_id <- t.next_obj_id + 1;
  let region =
    register_region t ?pragma ~task ~attr ~obj ~pages ~max_prot:(max_prot_of_kind kind) ()
  in
  Numa_vm.Pageout.register t.pageout region.obj;
  region

let create_task t ~name =
  let task = Numa_vm.Task.create ~ops:t.ops ~id:t.next_task_id ~name in
  t.next_task_id <- t.next_task_id + 1;
  t.tasks <- task :: t.tasks;
  t.caches_valid <- false;
  task

let map_shared t ?pragma ~into source_region =
  (* Map the source region's memory object into another task: the Mach
     named-memory-object idiom -- both tasks reach the same logical pages
     through their own pmaps, and the NUMA layer sees the sharing. *)
  let attr = source_region.attr in
  register_region t ?pragma ~task:into ~attr ~obj:source_region.obj
    ~pages:source_region.pages
    ~max_prot:(max_prot_of_kind attr.Region_attr.kind)
    ()

let make_lock t ~name =
  let r =
    alloc_region t ~name ~kind:Region_attr.Sync ~sharing:Region_attr.Declared_write_shared
      ~pages:1 ()
  in
  let lock = Engine.make_lock t.engine ~vpage:r.base_vpage in
  t.locks <- lock :: t.locks;
  lock

let make_barrier t ~name ~parties =
  let r =
    alloc_region t ~name ~kind:Region_attr.Sync ~sharing:Region_attr.Declared_write_shared
      ~pages:1 ()
  in
  Engine.make_barrier t.engine ~vpage:r.base_vpage ~parties

let spawn t ?cpu ?task ?(stack_pages = 1) ~name body =
  let tid_guess = t.n_threads in
  let stack =
    alloc_region t ?task
      ~name:(Printf.sprintf "%s.stack" name)
      ~kind:(Region_attr.Stack tid_guess) ~sharing:Region_attr.Declared_private
      ~pages:stack_pages ()
  in
  let tid =
    Engine.spawn t.engine ?cpu ~stack_vpage:stack.base_vpage ~name (fun () ->
        body ~stack_vpage:stack.base_vpage)
  in
  (match task with
  | Some task -> Hashtbl.replace t.task_of_tid tid task
  | None -> ());
  t.n_threads <- t.n_threads + 1;
  t.caches_valid <- false;
  assert (tid = tid_guess);
  tid

let set_access_hook t hook = t.hook <- hook
let set_serving_collector t collect = t.serving_cb <- Some collect
let set_resilience_collector t collect = t.resilience_cb <- Some collect
let set_request_conservation t sweep = t.conservation_cb <- Some sweep
let set_fault_notify t f = t.fault_notify <- Some f

(* --- running and reporting --------------------------------------------- *)

let run t =
  Engine.run t.engine;
  (* Faulted, paranoid and resilience-enabled runs end with one last audit,
     so "completed with zero violations" is a statement about the final
     state too — including the request-conservation ledger. *)
  let audited =
    Option.is_some t.injector || t.paranoid || Option.is_some t.conservation_cb
  in
  if audited then ignore (run_invariant_check t);
  let stats = Numa_core.Pmap_manager.stats t.pmap_mgr in
  stats.Numa_core.Numa_stats.tlb_hits <- Mmu.tlb_hits t.mmu;
  stats.Numa_core.Numa_stats.tlb_misses <- Mmu.tlb_misses t.mmu;
  stats.Numa_core.Numa_stats.tlb_shootdowns <- Mmu.tlb_shootdowns t.mmu;
  let pol = Numa_core.Pmap_manager.policy t.pmap_mgr in
  let n_cpus = t.config.Config.n_cpus in
  let profile_snapshot =
    match t.profile with
    | None -> None
    | Some p ->
        Numa_obs.Profile.finalize p ~elapsed_ns:(Engine.elapsed_ns t.engine);
        Some (Numa_obs.Profile.snapshot p)
  in
  {
    Report.policy_name = pol.Policy.name;
    n_cpus;
    n_threads = t.n_threads;
    user_ns_per_cpu = Array.init n_cpus (fun cpu -> Engine.user_ns t.engine ~cpu);
    system_ns_per_cpu = Array.init n_cpus (fun cpu -> Engine.system_ns t.engine ~cpu);
    total_user_ns = Engine.total_user_ns t.engine;
    total_system_ns = Engine.total_system_ns t.engine;
    elapsed_ns = Engine.elapsed_ns t.engine;
    refs_all = t.refs_all;
    refs_writable_data = t.refs_writable;
    per_region =
      List.rev_map
        (fun r ->
          let name = r.attr.Region_attr.name in
          (name, region_counts t name))
        t.regions;
    alpha_counted = Report.local_fraction t.refs_writable;
    numa_enters = stats.Numa_core.Numa_stats.enters;
    numa_moves = stats.Numa_core.Numa_stats.moves;
    numa_copies_to_local = stats.Numa_core.Numa_stats.copies_to_local;
    numa_syncs_to_global = stats.Numa_core.Numa_stats.syncs_to_global;
    numa_replicas_flushed = stats.Numa_core.Numa_stats.replicas_flushed;
    numa_mappings_dropped = stats.Numa_core.Numa_stats.mappings_dropped;
    numa_zero_fills_local = stats.Numa_core.Numa_stats.zero_fills_local;
    numa_zero_fills_global = stats.Numa_core.Numa_stats.zero_fills_global;
    numa_local_fallbacks = stats.Numa_core.Numa_stats.local_fallbacks;
    tlb_hits = stats.Numa_core.Numa_stats.tlb_hits;
    tlb_misses = stats.Numa_core.Numa_stats.tlb_misses;
    tlb_shootdowns = stats.Numa_core.Numa_stats.tlb_shootdowns;
    pins = pol.Policy.n_pinned ();
    placement = Numa_core.Pmap_manager.placement_summary t.pmap_mgr;
    policy_info = pol.Policy.info ();
    n_events = Engine.n_events t.engine;
    lock_acquisitions = List.fold_left (fun acc l -> acc + l.Sync.acquisitions) 0 t.locks;
    lock_contended_polls =
      List.fold_left (fun acc l -> acc + l.Sync.contended_polls) 0 t.locks;
    bus_words = Bus.total_words t.bus;
    bus_delay_ns = Bus.total_delay_ns t.bus;
    robustness =
      (if audited then
         Some
           {
             Report.fault_plan = t.fault_plan;
             faults_injected = t.faults_injected;
             node_drains = stats.Numa_core.Numa_stats.node_drains;
             drained_pages = stats.Numa_core.Numa_stats.drained_pages;
             threads_rehomed = t.threads_rehomed;
             reclaim_retries = stats.Numa_core.Numa_stats.reclaim_retries;
             reclaim_rescues = stats.Numa_core.Numa_stats.reclaim_rescues;
             spurious_shootdowns = stats.Numa_core.Numa_stats.spurious_shootdowns;
             oom_faults = t.oom_faults;
             invariant_checks = t.invariant_checks;
             invariant_violations = t.invariant_violations;
             first_violations = t.first_violations;
           }
       else None);
    paging =
      (let pg = Numa_core.Pmap_manager.paging t.pmap_mgr in
       if not (Paging.active pg) then None
       else
         let s = Paging.stats pg in
         Some
           {
             Report.page_ins = s.Paging.page_ins;
             evictions = Numa_vm.Pageout.evictions t.pageout;
             clean_evictions = s.Paging.clean_evictions;
             dirty_evictions = s.Paging.dirty_evictions;
             writebacks_started = s.Paging.writebacks_started;
             writebacks_completed = s.Paging.writebacks_completed;
             writebacks_canceled = s.Paging.writebacks_canceled;
             sync_writebacks = s.Paging.sync_writebacks;
             redirtied = s.Paging.redirtied;
             disk_read_ns = s.Paging.disk_read_ns;
             disk_write_ns = s.Paging.disk_write_ns;
             resident_clean = s.Paging.n_clean;
             resident_dirty = s.Paging.n_dirty;
             in_writeback = s.Paging.n_writeback;
           });
    profile = profile_snapshot;
    pt =
      (match Mmu.pt t.mmu with
      | None -> None
      | Some pt ->
          let s = Pt.stats pt in
          Some
            {
              Report.pt_mode = Pt.mode_to_string (Pt.mode pt);
              walks = s.Pt.walks;
              walk_levels = s.Pt.walk_levels;
              walk_ns = s.Pt.walk_ns;
              pte_updates = s.Pt.pte_updates;
              pte_shootdowns = s.Pt.pte_shootdowns;
              shootdown_ns = s.Pt.shootdown_ns;
              replicas_built = s.Pt.replicas_built;
              replicas_dropped = s.Pt.replicas_dropped;
              pt_frames = s.Pt.pt_frames;
              global_pt_pages = s.Pt.global_pt_pages;
              tlb_per_cpu =
                Array.init n_cpus (fun cpu -> Mmu.tlb_stats t.mmu ~cpu);
            });
    serving = Option.map (fun collect -> collect ()) t.serving_cb;
    resilience = Option.map (fun collect -> collect ()) t.resilience_cb;
  }

(* --- introspection ------------------------------------------------------ *)

let config t = t.config
let obs t = t.obs
let engine t = t.engine
let pmap_manager t = t.pmap_mgr
let numa_manager t = Numa_core.Pmap_manager.manager t.pmap_mgr
let policy t = Numa_core.Pmap_manager.policy t.pmap_mgr
let task t = t.task
let pool t = t.pool
let region_at t ?task ~vpage () =
  let task = Option.value task ~default:t.task in
  Hashtbl.find_opt t.regions_by_vpage (task.Numa_vm.Task.id, vpage)

let lpage_of t ?task ~vpage () =
  match region_at t ?task ~vpage () with
  | None -> None
  | Some r -> (
      let offset = vpage - r.base_vpage in
      match Numa_vm.Vm_object.slot r.obj ~offset with
      | Numa_vm.Vm_object.Resident lpage -> Some lpage
      | Numa_vm.Vm_object.Empty | Numa_vm.Vm_object.Paged_out _ -> None)

let migrate_pages t ~src ~dst =
  Numa_core.Pmap_manager.migrate_node_pages t.pmap_mgr ~src ~dst

let page_out t region ~page_index =
  if page_index < 0 || page_index >= region.pages then
    invalid_arg "System.page_out: page index out of range";
  Numa_vm.Vm_object.page_out region.obj ~pool:t.pool ~ops:t.ops ~offset:page_index

let profile t = t.profile
let thread_migrations t = t.thread_migrations
let check_invariants t = Numa_core.Numa_manager.check_invariants (numa_manager t)
let audit t = run_invariant_check t
let faults_injected t = t.faults_injected
let invariant_violations t = t.invariant_violations
let topo t = t.topo
let node_online t ~node = Frame_table.node_online t.frames ~node
