(** Results of one simulated run — the raw material of every experiment.

    Times follow the Unix [time(1)] split the paper measures with: user
    time is references + computation + spinning; system time is fault
    handling, protocol actions, page copies and system-call service.
    T_numa / T_global / T_local of section 3.1 are [total_user_s] of runs
    under the corresponding policies. *)

type ref_counts = {
  mutable local_reads : int;
  mutable local_writes : int;
  mutable global_reads : int;
  mutable global_writes : int;
  mutable remote_reads : int;
  mutable remote_writes : int;
}

val zero_counts : unit -> ref_counts
val total_refs : ref_counts -> int
val local_fraction : ref_counts -> float
(** Directly counted alpha: local references over all references. *)

type robustness = {
  fault_plan : string;  (** canonical {!Numa_faults.Plan.to_string} *)
  faults_injected : int;  (** injector actions applied, plan + spurious *)
  node_drains : int;
  drained_pages : int;  (** local copies evacuated off dying nodes *)
  threads_rehomed : int;  (** threads moved off offline nodes *)
  reclaim_retries : int;  (** frame-allocation failures retried via page-out *)
  reclaim_rescues : int;  (** retries that then succeeded *)
  spurious_shootdowns : int;
  oom_faults : int;  (** faults that failed even after reclamation *)
  invariant_checks : int;
  invariant_violations : int;  (** total across all checks; 0 = healthy run *)
  first_violations : string list;  (** the first check's violations, verbatim *)
}

type paging = {
  page_ins : int;  (** faults served by a modeled disk read *)
  evictions : int;  (** pages the pageout daemon pushed out *)
  clean_evictions : int;  (** evictions that skipped the disk write *)
  dirty_evictions : int;  (** evictions that paid a synchronous writeback *)
  writebacks_started : int;  (** async writebacks launched by the daemon *)
  writebacks_completed : int;
  writebacks_canceled : int;  (** in-flight writebacks whose page was freed *)
  sync_writebacks : int;  (** eviction-path writebacks (the foreground cost) *)
  redirtied : int;  (** stores that hit a page mid-writeback *)
  disk_read_ns : float;  (** total modeled page-in latency *)
  disk_write_ns : float;  (** total modeled writeback latency *)
  resident_clean : int;  (** end-of-run paging-state census *)
  resident_dirty : int;
  in_writeback : int;
}
(** The paging tier's activity summary (per-frame state machine +
    writeback daemon). *)

type pt = {
  pt_mode : string;  (** canonical {!Numa_machine.Pt.mode_to_string} *)
  walks : int;  (** charged multi-level walks (= TLB misses while attached) *)
  walk_levels : int;  (** total table levels read over all walks *)
  walk_ns : float;  (** total walk latency by the topology matrix *)
  pte_updates : int;  (** replica PTE installs (silent propagation) *)
  pte_shootdowns : int;  (** replica PTE invalidations / retargets *)
  shootdown_ns : float;
  replicas_built : int;
  replicas_dropped : int;
  pt_frames : int array;  (** per-node frames backing table pages at end of run *)
  global_pt_pages : int;  (** table pages that fell back to the shared level *)
  tlb_per_cpu : (int * int * int) array;
      (** per-CPU (hits, misses, shootdowns): the hit rate that decides how
          often the walk cost is actually paid *)
}
(** Materialised-page-table activity; present only under [--pt-mode]
    [shared] or [replicated]. *)

type serving = {
  requests : int;  (** completed requests (all arrivals are served) *)
  arrival_spec : string;  (** canonical {!Numa_util.Dist.arrival_to_string} *)
  zipf_theta : float;  (** key-popularity skew of the request stream *)
  clients : int;  (** logical client population multiplexed on the trace *)
  write_fraction : float;  (** fraction of requests that mutate their object *)
  span_ns : float;  (** first arrival to last completion *)
  throughput_rps : float;  (** requests / span *)
  mean_us : float;  (** arrival-to-completion latency, microseconds *)
  p50_us : int;
  p95_us : int;
  p99_us : int;
  p999_us : int;  (** the SLO tail the serve experiments compare policies on *)
  max_us : int;
  queue_mean_us : float;  (** arrival-to-service-start share of the latency *)
  queue_p99_us : int;
  per_worker_served : int array;  (** requests completed by each shard worker *)
}
(** Open-loop served-traffic summary (the {!Numa_apps.Serve} family):
    per-request latency percentiles with queue-delay attribution. *)

type resilience = {
  res_spec : string;  (** canonical {!Numa_apps.Resilience.to_string} *)
  deadline_us : int;  (** per-request SLO deadline *)
  arrived : int;  (** requests the workers picked up *)
  served_in_deadline : int;  (** completed within their deadline *)
  timed_out : int;  (** deadline exceeded (attempts exhausted or late) *)
  shed : int;  (** rejected immediately by an open circuit breaker *)
  timeouts : int;  (** attempt-level deadline fires (every cancelled attempt) *)
  attempts_started : int array;
      (** index [k] = requests whose attempt number [k+1] started; hedged
          seconds count as the next attempt number. Index 0 is at most
          [arrived - shed]: a request picked up already past its deadline
          (a stale backlog under overload) resolves timed-out without
          starting any attempt. *)
  hedges : int;  (** hedged second attempts launched *)
  hedge_wins : int;  (** hedged attempts that then met the deadline *)
  breaker_opens : int;  (** closed/half-open -> open transitions *)
  breaker_transitions : int;  (** all breaker state changes *)
  shard_failovers : int;  (** shard workers re-homed off a dead node *)
  goodput_rps : float;  (** in-deadline completions / serving span *)
  slo_pct : float;  (** 100 * served_in_deadline / arrived *)
  conservation_violations : int;
      (** request-conservation findings recorded at resolve time (a
          request resolved twice or resolved before arriving); 0 = every
          arrived request is exactly one of the three outcomes *)
}
(** Request-level resilience summary: outcome conservation, retry/hedge
    volume, breaker and failover activity, goodput against the SLO. *)

type t = {
  policy_name : string;
  n_cpus : int;
  n_threads : int;
  user_ns_per_cpu : float array;
  system_ns_per_cpu : float array;
  total_user_ns : float;
  total_system_ns : float;
  elapsed_ns : float;
  refs_all : ref_counts;  (** every data reference the run made *)
  refs_writable_data : ref_counts;  (** references to writable-data regions only *)
  per_region : (string * ref_counts) list;
  alpha_counted : float;
      (** measured alpha over writable data (reference counts, not the
          timing model): cross-checks equation 4 *)
  numa_enters : int;
  numa_moves : int;
  numa_copies_to_local : int;
  numa_syncs_to_global : int;
  numa_replicas_flushed : int;
  numa_mappings_dropped : int;
  numa_zero_fills_local : int;
  numa_zero_fills_global : int;
  numa_local_fallbacks : int;
  tlb_hits : int;  (** software-TLB fast-path translations *)
  tlb_misses : int;  (** translations that walked the MMU hash table *)
  tlb_shootdowns : int;  (** live cached translations invalidated by protocol actions *)
  pins : int;  (** pages pinned in global by the policy *)
  placement : (string * int) list;  (** final logical-page states *)
  policy_info : (string * string) list;
  n_events : int;
  lock_acquisitions : int;
  lock_contended_polls : int;
  bus_words : int;  (** global-memory traffic offered to the IPC bus *)
  bus_delay_ns : float;  (** queueing delay charged by the contention model *)
  robustness : robustness option;
      (** fault-drill summary; [None] on clean runs, which therefore render
          (text and JSON) byte-identically to earlier releases *)
  paging : paging option;
      (** [None] unless the run actually paged (page-ins, evictions or
          writebacks), with the same byte-identity guarantee *)
  profile : Numa_obs.Profile.snapshot option;
      (** simulated-time cost attribution; [None] unless the run was
          profiled, preserving the same byte-identity guarantee *)
  pt : pt option;
      (** page-table walk/replication counters; [None] unless tables were
          materialised, preserving the same byte-identity guarantee *)
  serving : serving option;
      (** served-traffic latency summary; [None] for batch apps, preserving
          the same byte-identity guarantee *)
  resilience : resilience option;
      (** request-level resilience summary; [None] unless the serving app
          ran with a resilience policy, preserving the same byte-identity
          guarantee *)
}

val total_user_s : t -> float
val total_system_s : t -> float

val pp : Format.formatter -> t -> unit
(** Multi-section human-readable report. *)

val summary_line : t -> string
(** One line: user/system seconds, alpha, moves, pins. *)

val counts_to_json : ref_counts -> Numa_obs.Json.t

val to_json : t -> Numa_obs.Json.t
(** The whole report as a JSON object: every counter {!pp} prints (and the
    per-CPU time arrays it does not), keyed stably for downstream tools. *)
