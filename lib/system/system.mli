(** A complete simulated ACE running Mach with NUMA page placement.

    This is the top of the substrate stack and the API applications are
    written against: it assembles the machine model (frames, MMU, costs),
    the Mach-flavoured VM (logical page pool, maps, fault handler), the
    paper's pmap layer (NUMA manager + policy) and the discrete-event
    engine, and exposes region allocation, thread spawning and
    synchronisation.

    Typical use:
    {[
      let sys = System.create ~config:(Config.ace ()) () in
      let data = System.alloc_region sys ~name:"data" ~kind:Data
                   ~sharing:Declared_write_shared ~pages:8 () in
      System.spawn sys ~name:"worker" (fun ~stack_vpage:_ ->
          Api.write data.base_vpage; Api.compute 1e6);
      let report = System.run sys in
      Format.printf "%a@." Report.pp report
    ]} *)

open Numa_machine

type policy_spec =
  | Move_limit of { threshold : int }
      (** the paper's policy; threshold 4 is the boot-time default *)
  | All_global  (** the T_global baseline *)
  | Never_pin  (** replicate/migrate forever *)
  | Random_assign of { p_global : float; seed : int64 }
  | Reconsider of { threshold : int; window_ns : float }
  | Decay of { threshold : float; half_life_ns : float }
      (** {!Numa_core.Policy.decay}: the move count halves every
          [half_life_ns] of simulated time *)
  | Bandwidth_aware of { threshold : int }
      (** {!Numa_core.Policy.bandwidth_aware}: topology latencies, link
          bandwidths and frame pressure pick the cheaper placement *)
  | Migrate_threads of { threshold : int }
      (** {!Numa_core.Policy.migrate_threads}: additionally re-homes
          threads toward their pinned pages from the daemon tick (the
          only spec for which the system applies migration hints) *)

val policy_spec_name : policy_spec -> string

val policy_spec_of_string : string -> (policy_spec, string) result
(** Parse the CLI policy syntax shared by [numa_sim] and [experiments]:
    [move-limit[:N]], [all-global], [never-pin], [random:P],
    [reconsider:N:MS], [decay[:T:HL-MS]], [bandwidth-aware[:N]],
    [migrate-threads[:N]] (durations in milliseconds of simulated
    time). *)

val builtin_policy_specs : policy_spec list
(** One representative spec per shipped policy, at its default
    parameters — the default slate for the policy tournament. *)

val policy_of_spec :
  ?pressure:(node:int -> float) ->
  policy_spec ->
  n_pages:int ->
  now:(unit -> float) ->
  topo:Numa_machine.Topo.t ->
  Numa_core.Policy.t
(** Instantiate a policy outside a full system (used by the trace-replay
    evaluator, which supplies trace timestamps as "now"). [pressure]
    (default: constantly 0) is the per-node local-pool in-use fraction
    consulted by [Bandwidth_aware]; {!create} wires it to the live frame
    table. *)

type region = private {
  base_vpage : int;
  pages : int;
  attr : Numa_vm.Region_attr.t;
  obj : Numa_vm.Vm_object.t;
  task : Numa_vm.Task.t;  (** the address space the region lives in *)
  counts : Report.ref_counts;
      (** live reference tally; shared by all regions with the same name *)
  writable_data : bool;  (** cached [Region_attr.is_writable_data attr] *)
}

type access_event = {
  at : float;
  cpu : int;
  tid : int;
  vpage : int;
  kind : Access.t;
  count : int;
  where : Location.relative;
  region : string;
}
(** One batched reference, as delivered to the trace hook. *)

type fault_notice =
  | Fault_node_offline of int
      (** the node just went offline; the system's own handling (page
          drain, pool close, table evacuation, thread rehoming) has
          already run, so the subscriber observes post-drain state *)
  | Fault_node_online of int  (** the node's memory just came back *)
(** Application-visible fault notifications (see {!set_fault_notify}) —
    the hook the serve app's shard failover and circuit breakers ride. *)

type t

val create :
  ?obs:Numa_obs.Hub.t ->
  ?policy:policy_spec ->
  ?scheduler:Numa_sim.Engine.scheduler_mode ->
  ?chunk_refs:int ->
  ?spin_poll_ns:float ->
  ?unix_master:bool ->
  ?faults:Numa_faults.Plan.t ->
  ?paranoid:bool ->
  ?profiling:bool ->
  ?victim:Numa_vm.Pageout.victim ->
  ?pt_mode:Numa_machine.Pt.mode ->
  config:Config.t ->
  unit ->
  t
(** Defaults: the paper's [Move_limit {threshold = 4}] policy, affinity
    scheduling, 2048-reference chunks, no Unix-master modelling. [obs]
    (default: a fresh hub with no sinks) is shared by every layer — bus,
    NUMA/pmap managers and engine — and stamped with the engine's virtual
    clock; attach sinks ({!Numa_obs.Chrome_trace}, {!Numa_obs.Timeseries},
    {!Numa_obs.Page_audit}) before running to observe the run.

    [faults] (default: none) is a deterministic fault schedule, validated
    against the machine ([Invalid_argument] on out-of-range nodes) and
    replayed from the engine's virtual clock; each injected batch is
    followed by a protocol-invariant audit. [paranoid] additionally runs
    the audit from the reconsideration daemon's tick. Either one makes
    {!run}'s report carry a [robustness] section; with both unset the
    report is byte-identical to earlier releases.

    [pt_mode] (default {!Numa_machine.Pt.Off}) materialises the page
    tables: table pages are allocated from the per-node frame pools,
    every software-TLB miss pays a charged multi-level walk, and (under
    [Replicated _]) per-node replica tables are kept PTE-coherent by
    shootdown. [Off] attaches nothing and reproduces the free-translation
    simulator byte for byte; the report carries a [pt] section exactly
    when a mode other than [Off] is given.

    [profiling] (default off) attaches a {!Numa_obs.Profile} to the
    engine and the cost sink: {!run}'s report then carries a [profile]
    section, and {!profile} exposes the live profiler. Profile data is
    purely virtual-time, hence deterministic; leaving it off keeps the
    report byte-identical to unprofiled releases.

    [victim] (default [Clock]) selects the pageout daemon's eviction
    policy ({!Numa_vm.Pageout.victim}). The daemon's async writeback pass
    runs from the reconsideration tick; a run that never pages renders
    the same report bytes regardless of [victim]. *)

val obs : t -> Numa_obs.Hub.t
(** The hub shared by all of this system's layers. *)

val alloc_region :
  t ->
  ?pragma:Numa_vm.Region_attr.pragma ->
  ?task:Numa_vm.Task.t ->
  name:string ->
  kind:Numa_vm.Region_attr.kind ->
  sharing:Numa_vm.Region_attr.sharing ->
  pages:int ->
  unit ->
  region
(** Allocate zero-fill virtual memory ([task] defaults to the workload
    task). [Code] regions are mapped read-only; everything else
    read-write. A [pragma] registers the section 4.3 placement override
    for the range. *)

val create_task : t -> name:string -> Numa_vm.Task.t
(** A further Mach task (its own address space and pmap). Threads are
    placed in a task via [spawn ~task]; memory is shared between tasks
    with {!map_shared}. Caveat: {!make_lock}/{!make_barrier} objects live
    at default-task addresses, so threads of other tasks can only use them
    if the sync region is mapped at the same virtual address in their
    task; cross-task workloads normally coordinate through shared memory
    instead. *)

val map_shared : t -> ?pragma:Numa_vm.Region_attr.pragma -> into:Numa_vm.Task.t -> region -> region
(** Map an existing region's memory object into another task — Mach's
    named-memory-object sharing: both tasks reach the same logical pages
    through their own pmaps, and the NUMA layer handles the cross-task
    sharing exactly like cross-thread sharing. Returns the new task's view
    (its own virtual addresses). *)

val make_lock : t -> name:string -> Numa_sim.Sync.lock
(** A spin lock on its own freshly allocated sync page. *)

val make_barrier : t -> name:string -> parties:int -> Numa_sim.Sync.barrier

val spawn :
  t -> ?cpu:int -> ?task:Numa_vm.Task.t -> ?stack_pages:int -> name:string ->
  (stack_vpage:int -> unit) -> int
(** Create a thread (in [task], default the workload task) with a private
    stack region ([stack_pages] pages, default 1); the body receives the
    stack's base page so it can issue the stack references real code
    would. Returns the tid. *)

val set_access_hook : t -> (access_event -> unit) option -> unit
(** Observe every batched reference (for tracing). *)

val set_serving_collector : t -> (unit -> Report.serving) -> unit
(** Register the served-traffic summary collector. Called by serving apps
    during setup; {!run} invokes it once after the last thread finishes to
    fill {!Report.t.serving}. Batch apps never call this, so their reports
    keep the exact key set (and bytes) of earlier releases. *)

val set_resilience_collector : t -> (unit -> Report.resilience) -> unit
(** Register the request-resilience summary collector, same lifecycle as
    {!set_serving_collector}: {!run} invokes it once to fill
    {!Report.t.resilience}. Only resilience-enabled serving apps call
    this, so every other report keeps its exact key set. *)

val set_request_conservation : t -> (unit -> int * string list) -> unit
(** Register the request-conservation sweep passed to every
    {!Numa_core.Invariant.check} audit (fault batches, [--paranoid]
    daemon ticks, and one mandatory end-of-run audit): it returns
    (requests checked, violations) and must hold at any instant.
    Registering it guarantees the final audit runs — and the report
    carries a [robustness] section — even on clean, non-paranoid runs. *)

val set_fault_notify : t -> (fault_notice -> unit) -> unit
(** Subscribe to node offline/online faults, called after the system's
    own handling of each such fault. At most one subscriber. *)

val run : t -> Report.t
(** Run all spawned threads to completion and assemble the report. *)

(** {1 Introspection (tests, pager, experiments)} *)

val config : t -> Config.t
val engine : t -> Numa_sim.Engine.t
val pmap_manager : t -> Numa_core.Pmap_manager.t
val numa_manager : t -> Numa_core.Numa_manager.t
val policy : t -> Numa_core.Policy.t
val task : t -> Numa_vm.Task.t
val pool : t -> Numa_vm.Lpage_pool.t
val region_at : t -> ?task:Numa_vm.Task.t -> vpage:int -> unit -> region option

val lpage_of : t -> ?task:Numa_vm.Task.t -> vpage:int -> unit -> int option
(** Logical page currently backing a virtual page of a task (default the
    workload task), if materialised. *)

val migrate_pages : t -> src:int -> dst:int -> int
(** Kernel page migration after a thread re-homed with [Api.migrate]:
    moves every page local-writable on [src] to [dst] without counting
    policy moves. Call from inside the migrating thread's body, right
    after [Api.migrate]. *)

val page_out : t -> region -> page_index:int -> unit
(** Evict one page of a region through the pager (exercises the
    footnote-4 pin reset). *)

val profile : t -> Numa_obs.Profile.t option
(** The attached simulated-time profiler, when [profiling] was set. *)

val thread_migrations : t -> int
(** Thread re-homings applied by the daemon on behalf of a
    [Migrate_threads] policy; 0 under every other spec. *)

val check_invariants : t -> (unit, string) result
(** The NUMA manager's original fail-fast self-check (single-owner rule
    and friends); raises on the first inconsistency. *)

val audit : t -> Numa_core.Invariant.report
(** Run the full protocol-invariant sweep now, counting it exactly like a
    scheduled paranoid check (the report's [invariant_checks] includes
    it). Never mutates protocol state. *)

val faults_injected : t -> int
(** Injector actions applied so far (plan entries + spurious shootdowns). *)

val invariant_violations : t -> int
(** Total violations across every audit so far; 0 = healthy. *)

val topo : t -> Topo.t
(** The resolved topology (distances drive shard-failover targeting). *)

val node_online : t -> node:int -> bool
(** Whether a node's memory is currently online (it starts online and
    changes only under injected node-offline/online faults). *)
