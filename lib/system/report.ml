type ref_counts = {
  mutable local_reads : int;
  mutable local_writes : int;
  mutable global_reads : int;
  mutable global_writes : int;
  mutable remote_reads : int;
  mutable remote_writes : int;
}

let zero_counts () =
  {
    local_reads = 0;
    local_writes = 0;
    global_reads = 0;
    global_writes = 0;
    remote_reads = 0;
    remote_writes = 0;
  }

let total_refs c =
  c.local_reads + c.local_writes + c.global_reads + c.global_writes + c.remote_reads
  + c.remote_writes

let local_fraction c =
  let total = total_refs c in
  if total = 0 then 0.
  else float_of_int (c.local_reads + c.local_writes) /. float_of_int total

type robustness = {
  fault_plan : string;
  faults_injected : int;
  node_drains : int;
  drained_pages : int;
  threads_rehomed : int;
  reclaim_retries : int;
  reclaim_rescues : int;
  spurious_shootdowns : int;
  oom_faults : int;
  invariant_checks : int;
  invariant_violations : int;
  first_violations : string list;
}

type paging = {
  page_ins : int;
  evictions : int;
  clean_evictions : int;
  dirty_evictions : int;
  writebacks_started : int;
  writebacks_completed : int;
  writebacks_canceled : int;
  sync_writebacks : int;
  redirtied : int;
  disk_read_ns : float;
  disk_write_ns : float;
  resident_clean : int;
  resident_dirty : int;
  in_writeback : int;
}

type pt = {
  pt_mode : string;
  walks : int;
  walk_levels : int;
  walk_ns : float;
  pte_updates : int;
  pte_shootdowns : int;
  shootdown_ns : float;
  replicas_built : int;
  replicas_dropped : int;
  pt_frames : int array;
  global_pt_pages : int;
  tlb_per_cpu : (int * int * int) array;
      (** per-CPU (hits, misses, shootdowns) — the hit rate each walk
          counter is competing against *)
}

type serving = {
  requests : int;
  arrival_spec : string;
  zipf_theta : float;
  clients : int;
  write_fraction : float;
  span_ns : float;
  throughput_rps : float;
  mean_us : float;
  p50_us : int;
  p95_us : int;
  p99_us : int;
  p999_us : int;
  max_us : int;
  queue_mean_us : float;
  queue_p99_us : int;
  per_worker_served : int array;
}

type resilience = {
  res_spec : string;
  deadline_us : int;
  arrived : int;
  served_in_deadline : int;
  timed_out : int;
  shed : int;
  timeouts : int;
  attempts_started : int array;
  hedges : int;
  hedge_wins : int;
  breaker_opens : int;
  breaker_transitions : int;
  shard_failovers : int;
  goodput_rps : float;
  slo_pct : float;
  conservation_violations : int;
}

type t = {
  policy_name : string;
  n_cpus : int;
  n_threads : int;
  user_ns_per_cpu : float array;
  system_ns_per_cpu : float array;
  total_user_ns : float;
  total_system_ns : float;
  elapsed_ns : float;
  refs_all : ref_counts;
  refs_writable_data : ref_counts;
  per_region : (string * ref_counts) list;
  alpha_counted : float;
  numa_enters : int;
  numa_moves : int;
  numa_copies_to_local : int;
  numa_syncs_to_global : int;
  numa_replicas_flushed : int;
  numa_mappings_dropped : int;
  numa_zero_fills_local : int;
  numa_zero_fills_global : int;
  numa_local_fallbacks : int;
  tlb_hits : int;
  tlb_misses : int;
  tlb_shootdowns : int;
  pins : int;
  placement : (string * int) list;
  policy_info : (string * string) list;
  n_events : int;
  lock_acquisitions : int;
  lock_contended_polls : int;
  bus_words : int;
  bus_delay_ns : float;
  robustness : robustness option;
      (** present only on faulted / paranoid runs, keeping clean reports
          byte-identical to earlier releases *)
  paging : paging option;
      (** present only when the run actually paged (page-ins, evictions or
          writebacks happened); like [robustness], its absence keeps
          pressure-free reports byte-identical *)
  profile : Numa_obs.Profile.snapshot option;
      (** present only when the run was profiled; like [robustness], its
          absence keeps unprofiled reports byte-identical *)
  pt : pt option;
      (** present only when page tables were materialised ([--pt-mode]
          other than [none]); same byte-identity guarantee *)
  serving : serving option;
      (** present only for served-traffic workloads (the app registered a
          serving collector); batch-app reports keep the same byte-identity
          guarantee *)
  resilience : resilience option;
      (** present only when the serving app ran with a resilience policy
          (deadlines/retries/hedging/breakers); plain serving runs and
          batch apps keep the same byte-identity guarantee *)
}

let total_user_s t = t.total_user_ns /. 1e9
let total_system_s t = t.total_system_ns /. 1e9

let summary_line t =
  Printf.sprintf "policy=%s cpus=%d user=%.2fs system=%.2fs alpha=%.3f moves=%d pins=%d"
    t.policy_name t.n_cpus (total_user_s t) (total_system_s t) t.alpha_counted
    t.numa_moves t.pins

let pp_counts ppf c =
  Format.fprintf ppf "local %d/%d  global %d/%d  remote %d/%d (reads/writes)"
    c.local_reads c.local_writes c.global_reads c.global_writes c.remote_reads
    c.remote_writes

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "run: policy=%s, %d CPUs, %d threads@," t.policy_name t.n_cpus
    t.n_threads;
  Format.fprintf ppf "time: user %.3f s, system %.3f s, elapsed %.3f s, %d events@,"
    (total_user_s t) (total_system_s t) (t.elapsed_ns /. 1e9) t.n_events;
  Format.fprintf ppf "refs (all): %a@," pp_counts t.refs_all;
  Format.fprintf ppf "refs (writable data): %a@," pp_counts t.refs_writable_data;
  Format.fprintf ppf "alpha (counted): %.4f@," t.alpha_counted;
  Format.fprintf ppf
    "numa: enters %d, moves %d, copies %d, syncs %d, flushes %d, unmapped %d@,"
    t.numa_enters t.numa_moves t.numa_copies_to_local t.numa_syncs_to_global
    t.numa_replicas_flushed t.numa_mappings_dropped;
  Format.fprintf ppf "zero fills: %d local, %d global; fallbacks %d; pins %d@,"
    t.numa_zero_fills_local t.numa_zero_fills_global t.numa_local_fallbacks t.pins;
  Format.fprintf ppf "locks: %d acquisitions, %d contended polls@," t.lock_acquisitions
    t.lock_contended_polls;
  (if t.tlb_hits + t.tlb_misses > 0 then
     let rate =
       float_of_int t.tlb_hits /. float_of_int (t.tlb_hits + t.tlb_misses)
     in
     Format.fprintf ppf "tlb: %d hits, %d misses (%.2f%% hit), %d shootdowns@,"
       t.tlb_hits t.tlb_misses (100. *. rate) t.tlb_shootdowns);
  if t.bus_delay_ns > 0. then
    Format.fprintf ppf "bus: %d words, %.3f s queueing delay@," t.bus_words
      (t.bus_delay_ns /. 1e9);
  Format.fprintf ppf "placement:";
  List.iter (fun (k, n) -> if n > 0 then Format.fprintf ppf " %s=%d" k n) t.placement;
  Format.fprintf ppf "@,";
  if t.policy_info <> [] then begin
    Format.fprintf ppf "policy:";
    List.iter (fun (k, v) -> Format.fprintf ppf " %s=%s" k v) t.policy_info;
    Format.fprintf ppf "@,"
  end;
  (match t.robustness with
  | None -> ()
  | Some r ->
      Format.fprintf ppf "faults: plan=%s injected=%d drains=%d drained-pages=%d@,"
        (if r.fault_plan = "" then "(none)" else r.fault_plan)
        r.faults_injected r.node_drains r.drained_pages;
      Format.fprintf ppf
        "degradation: rehomed %d, reclaim %d/%d (rescued/retried), spurious %d, oom %d@,"
        r.threads_rehomed r.reclaim_rescues r.reclaim_retries r.spurious_shootdowns
        r.oom_faults;
      Format.fprintf ppf "invariants: %d checks, %d violations@," r.invariant_checks
        r.invariant_violations;
      List.iter (fun v -> Format.fprintf ppf "  VIOLATION: %s@," v) r.first_violations);
  (match t.paging with
  | None -> ()
  | Some p ->
      Format.fprintf ppf "paging: %d page-ins, %d evictions (%d clean, %d dirty)@,"
        p.page_ins p.evictions p.clean_evictions p.dirty_evictions;
      Format.fprintf ppf
        "writeback: %d started, %d completed, %d canceled, %d sync, %d redirtied@,"
        p.writebacks_started p.writebacks_completed p.writebacks_canceled
        p.sync_writebacks p.redirtied;
      Format.fprintf ppf
        "disk: read %.3f s, write %.3f s; resident %d clean, %d dirty, %d in flight@,"
        (p.disk_read_ns /. 1e9) (p.disk_write_ns /. 1e9) p.resident_clean
        p.resident_dirty p.in_writeback);
  (match t.pt with
  | None -> ()
  | Some p ->
      Format.fprintf ppf
        "pt: mode=%s, %d walks (%d levels, %.3f s), %d pte updates, %d shootdowns \
         (%.3f s)@,"
        p.pt_mode p.walks p.walk_levels (p.walk_ns /. 1e9) p.pte_updates
        p.pte_shootdowns (p.shootdown_ns /. 1e9);
      Format.fprintf ppf "pt frames:";
      Array.iteri (fun node n -> Format.fprintf ppf " node%d=%d" node n) p.pt_frames;
      Format.fprintf ppf " global=%d; replicas built %d, dropped %d@,"
        p.global_pt_pages p.replicas_built p.replicas_dropped;
      Format.fprintf ppf "tlb per-cpu:";
      Array.iteri
        (fun cpu (h, m, _) ->
          let total = h + m in
          let rate =
            if total = 0 then 0. else 100. *. float_of_int h /. float_of_int total
          in
          Format.fprintf ppf " cpu%d=%.1f%%(%d/%d)" cpu rate h m)
        p.tlb_per_cpu;
      Format.fprintf ppf "@,");
  (match t.serving with
  | None -> ()
  | Some s ->
      Format.fprintf ppf
        "serving: %d requests, arrival=%s, zipf theta=%.2f, %d clients, %.0f%% writes@,"
        s.requests s.arrival_spec s.zipf_theta s.clients (100. *. s.write_fraction);
      Format.fprintf ppf
        "latency (us): mean %.1f, p50 %d, p95 %d, p99 %d, p99.9 %d, max %d@," s.mean_us
        s.p50_us s.p95_us s.p99_us s.p999_us s.max_us;
      Format.fprintf ppf
        "queueing (us): mean %.1f, p99 %d; span %.3f s, %.0f req/s@," s.queue_mean_us
        s.queue_p99_us (s.span_ns /. 1e9) s.throughput_rps;
      Format.fprintf ppf "served per worker:";
      Array.iteri (fun w n -> Format.fprintf ppf " w%d=%d" w n) s.per_worker_served;
      Format.fprintf ppf "@,");
  (match t.resilience with
  | None -> ()
  | Some r ->
      Format.fprintf ppf "resilience: %s, deadline %d us@," r.res_spec r.deadline_us;
      Format.fprintf ppf
        "outcomes: %d arrived = %d in-deadline + %d timed-out + %d shed; SLO %.1f%%, \
         goodput %.0f req/s@,"
        r.arrived r.served_in_deadline r.timed_out r.shed r.slo_pct r.goodput_rps;
      Format.fprintf ppf "attempt timeouts %d; attempts started:" r.timeouts;
      Array.iteri (fun i n -> Format.fprintf ppf " #%d=%d" (i + 1) n) r.attempts_started;
      Format.fprintf ppf
        "@,hedges %d (%d wins); breaker opens %d, transitions %d; shard failovers %d; \
         conservation violations %d@,"
        r.hedges r.hedge_wins r.breaker_opens r.breaker_transitions r.shard_failovers
        r.conservation_violations);
  (match t.profile with
  | None -> ()
  | Some s ->
      Format.fprintf ppf "profile: attributed %.3f cpu-s (busy %.3f, idle %.3f);"
        (s.Numa_obs.Profile.attributed_ns_total /. 1e9)
        (s.Numa_obs.Profile.busy_ns_total /. 1e9)
        (s.Numa_obs.Profile.idle_ns_total /. 1e9);
      List.iter
        (fun n ->
          if n.Numa_obs.Profile.ns > 0. then
            Format.fprintf ppf " %s=%.3fs" n.Numa_obs.Profile.label
              (n.Numa_obs.Profile.ns /. 1e9))
        s.Numa_obs.Profile.categories;
      Format.fprintf ppf "@,");
  Format.fprintf ppf "per-region:@,";
  List.iter
    (fun (name, c) -> Format.fprintf ppf "  %-24s %a@," name pp_counts c)
    t.per_region;
  Format.fprintf ppf "@]"

(* --- machine-readable export ------------------------------------------- *)

module Json = Numa_obs.Json

let counts_to_json c =
  Json.Obj
    [
      ("local_reads", Json.Int c.local_reads);
      ("local_writes", Json.Int c.local_writes);
      ("global_reads", Json.Int c.global_reads);
      ("global_writes", Json.Int c.global_writes);
      ("remote_reads", Json.Int c.remote_reads);
      ("remote_writes", Json.Int c.remote_writes);
      ("total", Json.Int (total_refs c));
      ("local_fraction", Json.Float (local_fraction c));
    ]

let float_array a = Json.List (Array.to_list (Array.map (fun f -> Json.Float f) a))

let to_json t =
  Json.Obj
    ([
      ("policy", Json.String t.policy_name);
      ("n_cpus", Json.Int t.n_cpus);
      ("n_threads", Json.Int t.n_threads);
      ("user_ns_per_cpu", float_array t.user_ns_per_cpu);
      ("system_ns_per_cpu", float_array t.system_ns_per_cpu);
      ("total_user_ns", Json.Float t.total_user_ns);
      ("total_system_ns", Json.Float t.total_system_ns);
      ("elapsed_ns", Json.Float t.elapsed_ns);
      ("refs_all", counts_to_json t.refs_all);
      ("refs_writable_data", counts_to_json t.refs_writable_data);
      ( "per_region",
        Json.Obj (List.map (fun (name, c) -> (name, counts_to_json c)) t.per_region) );
      ("alpha_counted", Json.Float t.alpha_counted);
      ( "numa",
        Json.Obj
          [
            ("enters", Json.Int t.numa_enters);
            ("moves", Json.Int t.numa_moves);
            ("copies_to_local", Json.Int t.numa_copies_to_local);
            ("syncs_to_global", Json.Int t.numa_syncs_to_global);
            ("replicas_flushed", Json.Int t.numa_replicas_flushed);
            ("mappings_dropped", Json.Int t.numa_mappings_dropped);
            ("zero_fills_local", Json.Int t.numa_zero_fills_local);
            ("zero_fills_global", Json.Int t.numa_zero_fills_global);
            ("local_fallbacks", Json.Int t.numa_local_fallbacks);
          ] );
      ( "tlb",
        Json.Obj
          [
            ("hits", Json.Int t.tlb_hits);
            ("misses", Json.Int t.tlb_misses);
            ("shootdowns", Json.Int t.tlb_shootdowns);
            ( "hit_rate",
              Json.Float
                (if t.tlb_hits + t.tlb_misses = 0 then 0.
                 else
                   float_of_int t.tlb_hits
                   /. float_of_int (t.tlb_hits + t.tlb_misses)) );
          ] );
      ("pins", Json.Int t.pins);
      ("placement", Json.Obj (List.map (fun (k, n) -> (k, Json.Int n)) t.placement));
      ( "policy_info",
        Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) t.policy_info) );
      ("n_events", Json.Int t.n_events);
      ("lock_acquisitions", Json.Int t.lock_acquisitions);
      ("lock_contended_polls", Json.Int t.lock_contended_polls);
      ("bus_words", Json.Int t.bus_words);
      ("bus_delay_ns", Json.Float t.bus_delay_ns);
    ]
    @
    (* Appended, and only on faulted/paranoid/profiled/served runs: clean
       batch reports keep the exact key set (and bytes) of earlier
       releases. *)
    (match t.serving with
    | None -> []
    | Some s ->
        [
          ( "serving",
            Json.Obj
              [
                ("requests", Json.Int s.requests);
                ("arrival", Json.String s.arrival_spec);
                ("zipf_theta", Json.Float s.zipf_theta);
                ("clients", Json.Int s.clients);
                ("write_fraction", Json.Float s.write_fraction);
                ("span_ns", Json.Float s.span_ns);
                ("throughput_rps", Json.Float s.throughput_rps);
                ("mean_us", Json.Float s.mean_us);
                ("p50_us", Json.Int s.p50_us);
                ("p95_us", Json.Int s.p95_us);
                ("p99_us", Json.Int s.p99_us);
                ("p999_us", Json.Int s.p999_us);
                ("max_us", Json.Int s.max_us);
                ("queue_mean_us", Json.Float s.queue_mean_us);
                ("queue_p99_us", Json.Int s.queue_p99_us);
                ( "per_worker_served",
                  Json.List
                    (Array.to_list
                       (Array.map (fun n -> Json.Int n) s.per_worker_served)) );
              ] );
        ])
    @
    (match t.resilience with
    | None -> []
    | Some r ->
        [
          ( "resilience",
            Json.Obj
              [
                ("spec", Json.String r.res_spec);
                ("deadline_us", Json.Int r.deadline_us);
                ("arrived", Json.Int r.arrived);
                ("served_in_deadline", Json.Int r.served_in_deadline);
                ("timed_out", Json.Int r.timed_out);
                ("shed", Json.Int r.shed);
                ("timeouts", Json.Int r.timeouts);
                ( "attempts_started",
                  Json.List
                    (Array.to_list
                       (Array.map (fun n -> Json.Int n) r.attempts_started)) );
                ("hedges", Json.Int r.hedges);
                ("hedge_wins", Json.Int r.hedge_wins);
                ("breaker_opens", Json.Int r.breaker_opens);
                ("breaker_transitions", Json.Int r.breaker_transitions);
                ("shard_failovers", Json.Int r.shard_failovers);
                ("goodput_rps", Json.Float r.goodput_rps);
                ("slo_pct", Json.Float r.slo_pct);
                ("conservation_violations", Json.Int r.conservation_violations);
              ] );
        ])
    @
    (match t.profile with
    | None -> []
    | Some s -> [ ("profile", Numa_obs.Profile.snapshot_to_json s) ])
    @
    (match t.pt with
    | None -> []
    | Some p ->
        [
          ( "pt",
            Json.Obj
              [
                ("mode", Json.String p.pt_mode);
                ("walks", Json.Int p.walks);
                ("walk_levels", Json.Int p.walk_levels);
                ("walk_ns", Json.Float p.walk_ns);
                ("pte_updates", Json.Int p.pte_updates);
                ("pte_shootdowns", Json.Int p.pte_shootdowns);
                ("shootdown_ns", Json.Float p.shootdown_ns);
                ("replicas_built", Json.Int p.replicas_built);
                ("replicas_dropped", Json.Int p.replicas_dropped);
                ( "pt_frames",
                  Json.List
                    (Array.to_list (Array.map (fun n -> Json.Int n) p.pt_frames)) );
                ("global_pt_pages", Json.Int p.global_pt_pages);
                ( "tlb_per_cpu",
                  Json.List
                    (Array.to_list
                       (Array.map
                          (fun (h, m, s) ->
                            Json.Obj
                              [
                                ("hits", Json.Int h);
                                ("misses", Json.Int m);
                                ("shootdowns", Json.Int s);
                                ( "hit_rate",
                                  Json.Float
                                    (if h + m = 0 then 0.
                                     else float_of_int h /. float_of_int (h + m)) );
                              ])
                          p.tlb_per_cpu)) );
              ] );
        ])
    @
    (match t.paging with
    | None -> []
    | Some p ->
        [
          ( "paging",
            Json.Obj
              [
                ("page_ins", Json.Int p.page_ins);
                ("evictions", Json.Int p.evictions);
                ("clean_evictions", Json.Int p.clean_evictions);
                ("dirty_evictions", Json.Int p.dirty_evictions);
                ("writebacks_started", Json.Int p.writebacks_started);
                ("writebacks_completed", Json.Int p.writebacks_completed);
                ("writebacks_canceled", Json.Int p.writebacks_canceled);
                ("sync_writebacks", Json.Int p.sync_writebacks);
                ("redirtied", Json.Int p.redirtied);
                ("disk_read_ns", Json.Float p.disk_read_ns);
                ("disk_write_ns", Json.Float p.disk_write_ns);
                ("resident_clean", Json.Int p.resident_clean);
                ("resident_dirty", Json.Int p.resident_dirty);
                ("in_writeback", Json.Int p.in_writeback);
              ] );
        ])
    @
    match t.robustness with
    | None -> []
    | Some r ->
        [
          ( "robustness",
            Json.Obj
              [
                ("fault_plan", Json.String r.fault_plan);
                ("faults_injected", Json.Int r.faults_injected);
                ("node_drains", Json.Int r.node_drains);
                ("drained_pages", Json.Int r.drained_pages);
                ("threads_rehomed", Json.Int r.threads_rehomed);
                ("reclaim_retries", Json.Int r.reclaim_retries);
                ("reclaim_rescues", Json.Int r.reclaim_rescues);
                ("spurious_shootdowns", Json.Int r.spurious_shootdowns);
                ("oom_faults", Json.Int r.oom_faults);
                ("invariant_checks", Json.Int r.invariant_checks);
                ("invariant_violations", Json.Int r.invariant_violations);
                ( "first_violations",
                  Json.List (List.map (fun v -> Json.String v) r.first_violations) );
              ] );
        ])
