open Numa_machine

type region = {
  base_vpage : int;
  npages : int;
  obj : Vm_object.t;
  obj_offset : int;
  max_prot : Prot.t;
  attr : Region_attr.t;
}

type t = { mutable regions : region list (* sorted by base_vpage *) }

let create () = { regions = [] }

let region_end r = r.base_vpage + r.npages

let overlaps a b =
  a.base_vpage < region_end b && b.base_vpage < region_end a

let next_free_vpage t =
  List.fold_left (fun acc r -> Stdlib.max acc (region_end r)) 0 t.regions

let allocate t ?at ~npages ~obj ~obj_offset ~max_prot ~attr () =
  if npages <= 0 then invalid_arg "Vm_map.allocate: empty region";
  if obj_offset < 0 || obj_offset + npages > Vm_object.size_pages obj then
    invalid_arg "Vm_map.allocate: object window out of range";
  let base_vpage = match at with Some a -> a | None -> next_free_vpage t in
  if base_vpage < 0 then invalid_arg "Vm_map.allocate: negative address";
  let region = { base_vpage; npages; obj; obj_offset; max_prot; attr } in
  if List.exists (overlaps region) t.regions then
    invalid_arg "Vm_map.allocate: overlapping region";
  t.regions <-
    List.sort (fun a b -> Int.compare a.base_vpage b.base_vpage) (region :: t.regions);
  region

let deallocate t region =
  if not (List.memq region t.regions) then
    invalid_arg "Vm_map.deallocate: region not in map";
  t.regions <- List.filter (fun r -> r != region) t.regions

let region_at t ~vpage =
  List.find_opt (fun r -> vpage >= r.base_vpage && vpage < region_end r) t.regions

let regions t = t.regions

let obj_offset_of_vpage r ~vpage =
  if vpage < r.base_vpage || vpage >= region_end r then
    invalid_arg "Vm_map.obj_offset_of_vpage: vpage outside region";
  r.obj_offset + (vpage - r.base_vpage)
