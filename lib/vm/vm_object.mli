(** A Mach memory object: the backing store of a range of virtual memory.

    Our objects are zero-fill (anonymous) memory. A page of an object is
    [Empty] until first touched, then [Resident] on a logical page; the
    pager may move it to [Paged_out], saving its contents, after which the
    next touch pages it back in on a fresh logical page. That round trip is
    the one event that legitimately resets a page's placement history
    (paper, footnote 4). *)

type slot = Empty | Resident of int  (** logical page *) | Paged_out of int  (** saved contents *)

type t

val create : id:int -> name:string -> size_pages:int -> t

val id : t -> int
val name : t -> string
val size_pages : t -> int

val slot : t -> offset:int -> slot

val lpage_for :
  t -> pool:Lpage_pool.t -> ops:Pmap_intf.ops -> offset:int ->
  (int, [ `Pool_exhausted ]) result
(** Logical page backing the given page offset, materialising it if needed:
    an [Empty] slot allocates a page and marks it zero-fill (lazily zeroed
    at first [enter]); a [Paged_out] slot allocates a page and installs the
    saved contents. *)

val page_out : t -> pool:Lpage_pool.t -> ops:Pmap_intf.ops -> offset:int -> unit
(** Evict a resident page: save its authoritative contents, remove every
    mapping, and free the logical page (starting lazy NUMA cleanup).
    No-op when the slot is not resident. *)

val resident_pages : t -> (int * int) list
(** (offset, lpage) pairs currently resident. *)
