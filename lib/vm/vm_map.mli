(** A task's virtual address map: a set of non-overlapping page-granular
    regions, each backed by a window of a {!Vm_object}. *)

open Numa_machine

type region = private {
  base_vpage : int;
  npages : int;
  obj : Vm_object.t;
  obj_offset : int;  (** page offset of the region's start within [obj] *)
  max_prot : Prot.t;
  attr : Region_attr.t;
}

type t

val create : unit -> t

val allocate :
  t ->
  ?at:int ->
  npages:int ->
  obj:Vm_object.t ->
  obj_offset:int ->
  max_prot:Prot.t ->
  attr:Region_attr.t ->
  unit ->
  region
(** Add a region. Without [?at] the map chooses the next free address.
    Raises [Invalid_argument] on overlap, empty range, or an object window
    that does not fit. *)

val deallocate : t -> region -> unit
(** Remove the region from the map. The caller is responsible for dropping
    mappings and freeing pages. Raises [Invalid_argument] if not present. *)

val region_at : t -> vpage:int -> region option

val regions : t -> region list
(** In increasing address order. *)

val obj_offset_of_vpage : region -> vpage:int -> int
(** Object page offset backing a virtual page of the region. *)
