type slot = Empty | Resident of int | Paged_out of int

type t = { id : int; name : string; slots : slot array }

let create ~id ~name ~size_pages =
  if size_pages < 0 then invalid_arg "Vm_object.create: negative size";
  { id; name; slots = Array.make size_pages Empty }

let id t = t.id
let name t = t.name
let size_pages t = Array.length t.slots

let check t offset =
  if offset < 0 || offset >= size_pages t then
    invalid_arg "Vm_object: page offset out of range"

let slot t ~offset =
  check t offset;
  t.slots.(offset)

let lpage_for t ~pool ~(ops : Pmap_intf.ops) ~offset =
  check t offset;
  match t.slots.(offset) with
  | Resident lpage -> Ok lpage
  | Empty -> (
      match Lpage_pool.alloc pool with
      | None -> Error `Pool_exhausted
      | Some lpage ->
          ops.zero_page ~lpage;
          t.slots.(offset) <- Resident lpage;
          Ok lpage)
  | Paged_out content -> (
      match Lpage_pool.alloc pool with
      | None -> Error `Pool_exhausted
      | Some lpage ->
          ops.install_page ~lpage ~content;
          t.slots.(offset) <- Resident lpage;
          Ok lpage)

let page_out t ~pool ~(ops : Pmap_intf.ops) ~offset =
  check t offset;
  match t.slots.(offset) with
  | Empty | Paged_out _ -> ()
  | Resident lpage ->
      let content = ops.extract_content ~lpage in
      ops.remove_all ~lpage;
      t.slots.(offset) <- Paged_out content;
      Lpage_pool.free pool lpage

let resident_pages t =
  let acc = ref [] in
  Array.iteri
    (fun offset -> function
      | Resident lpage -> acc := (offset, lpage) :: !acc
      | Empty | Paged_out _ -> ())
    t.slots;
  List.rev !acc
