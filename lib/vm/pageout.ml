type t = {
  pool : Lpage_pool.t;
  ops : Pmap_intf.ops;
  mutable objects : Vm_object.t array;
  low_water : int;
  high_water : int;
  mutable cursor_obj : int;
  mutable cursor_page : int;
  mutable evictions : int;
}

let create ~pool ~ops ?(low_water = 2) ?(high_water = 8) () =
  if low_water <= 0 || high_water < low_water then
    invalid_arg "Pageout.create: need 0 < low_water <= high_water";
  {
    pool;
    ops;
    objects = [||];
    low_water;
    high_water;
    cursor_obj = 0;
    cursor_page = 0;
    evictions = 0;
  }

let register t obj = t.objects <- Array.append t.objects [| obj |]

(* Advance the clock hand to the next resident page and evict it. Returns
   false when a full sweep finds nothing resident (or only [avoid], the
   page an in-flight fault is materialising — evicting it mid-request
   would free the frame under the requester's feet). *)
let evict_one ?avoid t =
  let n_objs = Array.length t.objects in
  if n_objs = 0 then false
  else begin
    let total_slots =
      Array.fold_left (fun acc o -> acc + Vm_object.size_pages o) 0 t.objects
    in
    let rec hunt steps =
      if steps > total_slots then false
      else begin
        let obj = t.objects.(t.cursor_obj) in
        if t.cursor_page >= Vm_object.size_pages obj then begin
          t.cursor_obj <- (t.cursor_obj + 1) mod n_objs;
          t.cursor_page <- 0;
          hunt steps
        end
        else begin
          let offset = t.cursor_page in
          t.cursor_page <- t.cursor_page + 1;
          match Vm_object.slot obj ~offset with
          | Vm_object.Resident lpage when avoid = Some lpage -> hunt (steps + 1)
          | Vm_object.Resident _ ->
              Vm_object.page_out obj ~pool:t.pool ~ops:t.ops ~offset;
              t.evictions <- t.evictions + 1;
              true
          | Vm_object.Empty | Vm_object.Paged_out _ -> hunt (steps + 1)
        end
      end
    in
    hunt 0
  end

let rec evict_until ?avoid t ~target =
  if Lpage_pool.n_free t.pool >= target then true
  else if evict_one ?avoid t then evict_until ?avoid t ~target
  else false

let ensure_free ?avoid t ~needed =
  if Lpage_pool.n_free t.pool >= needed then true
  else begin
    let reached = evict_until ?avoid t ~target:(max needed t.high_water) in
    reached || Lpage_pool.n_free t.pool >= needed
  end

let tick t =
  if Lpage_pool.n_free t.pool >= t.low_water then 0
  else begin
    let before = t.evictions in
    ignore (evict_until t ~target:t.high_water);
    t.evictions - before
  end

let evictions t = t.evictions
