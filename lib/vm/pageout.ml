open Numa_machine

type victim = Clock | Lru_approx

let victim_name = function Clock -> "clock" | Lru_approx -> "lru"

let victim_of_string = function
  | "clock" -> Some Clock
  | "lru" | "lru-approx" -> Some Lru_approx
  | _ -> None

type t = {
  pool : Lpage_pool.t;
  ops : Pmap_intf.ops;
  mutable objects : Vm_object.t array;
  low_water : int;
  high_water : int;
  victim : victim;
  paging : Paging.t option;
  mutable cursor_obj : int;
  mutable cursor_page : int;
  mutable evictions : int;
}

let create ~pool ~ops ?(low_water = 2) ?(high_water = 8) ?(victim = Clock) ?paging () =
  if low_water <= 0 || high_water < low_water then
    invalid_arg "Pageout.create: need 0 < low_water <= high_water";
  {
    pool;
    ops;
    objects = [||];
    low_water;
    high_water;
    victim;
    paging;
    cursor_obj = 0;
    cursor_page = 0;
    evictions = 0;
  }

let register t obj = t.objects <- Array.append t.objects [| obj |]
let victim_policy t = t.victim

(* In-flight Reading/Writeback entries are pending disk I/O and must never
   be claimed; without a paging machine every resident page is fair game. *)
let claimable t ~lpage =
  match t.paging with Some p -> Paging.evictable p ~lpage | None -> true

(* Evict the page at (obj, offset). Only a Dirty entry pays a writeback —
   synchronously, since the frame is needed now; Clean pages just drop
   (their backing copy is current). *)
let page_out_at t ~by_cpu obj ~offset ~lpage =
  (match t.paging with
  | Some p ->
      let dirty = Paging.state p ~lpage = Paging.Dirty in
      if dirty then Paging.sync_writeback p ~lpage ~by_cpu;
      Vm_object.page_out obj ~pool:t.pool ~ops:t.ops ~offset;
      Paging.note_evicted p ~lpage ~dirty
  | None -> Vm_object.page_out obj ~pool:t.pool ~ops:t.ops ~offset);
  t.evictions <- t.evictions + 1

(* Clock hand: advance to the next claimable resident page and evict it.
   Object advances count as steps too — otherwise a registry of all
   zero-sized objects recurses forever with [steps] stuck at 0 — and the
   budget allows one full sweep: every slot plus one wrap past each
   object boundary. *)
let evict_one_clock ?avoid ~by_cpu t =
  let n_objs = Array.length t.objects in
  let total_slots =
    Array.fold_left (fun acc o -> acc + Vm_object.size_pages o) 0 t.objects
  in
  if total_slots = 0 then false
  else begin
    let budget = total_slots + n_objs in
    let rec hunt steps =
      if steps > budget then false
      else begin
        let obj = t.objects.(t.cursor_obj) in
        if t.cursor_page >= Vm_object.size_pages obj then begin
          t.cursor_obj <- (t.cursor_obj + 1) mod n_objs;
          t.cursor_page <- 0;
          hunt (steps + 1)
        end
        else begin
          let offset = t.cursor_page in
          t.cursor_page <- t.cursor_page + 1;
          match Vm_object.slot obj ~offset with
          | Vm_object.Resident lpage when avoid = Some lpage -> hunt (steps + 1)
          | Vm_object.Resident lpage when not (claimable t ~lpage) -> hunt (steps + 1)
          | Vm_object.Resident lpage ->
              page_out_at t ~by_cpu obj ~offset ~lpage;
              true
          | Vm_object.Empty | Vm_object.Paged_out _ -> hunt (steps + 1)
        end
      end
    in
    hunt 0
  end

(* LRU approximation: evict the claimable resident page with the oldest
   fault-time use tick (Babaoglu-Joy style — the ACE has no reference
   bits, so faults are the only use signal). Ties break toward the lowest
   (object, offset) for determinism; without a paging machine every tick
   reads 0 and this degrades to in-order selection. *)
let evict_one_lru ?avoid ~by_cpu t =
  let best = ref None in
  Array.iteri
    (fun oi obj ->
      List.iter
        (fun (offset, lpage) ->
          if avoid <> Some lpage && claimable t ~lpage then begin
            let use =
              match t.paging with Some p -> Paging.last_use p ~lpage | None -> 0
            in
            match !best with
            | Some (u, _, _, _) when u <= use -> ()
            | _ -> best := Some (use, oi, offset, lpage)
          end)
        (Vm_object.resident_pages obj))
    t.objects;
  match !best with
  | None -> false
  | Some (_, oi, offset, lpage) ->
      page_out_at t ~by_cpu t.objects.(oi) ~offset ~lpage;
      true

let evict_one ?avoid ?(by_cpu = 0) t =
  match t.victim with
  | Clock -> evict_one_clock ?avoid ~by_cpu t
  | Lru_approx -> evict_one_lru ?avoid ~by_cpu t

let rec evict_until ?avoid ~by_cpu t ~target =
  if Lpage_pool.n_free t.pool >= target then true
  else if evict_one ?avoid ~by_cpu t then evict_until ?avoid ~by_cpu t ~target
  else false

(* When a sweep stalls because the only remaining victims are Writeback
   entries, land the in-flight writebacks (the burst cannot wait for the
   daemon tick) and sweep once more. *)
let evict_until_hard ?avoid ~by_cpu t ~target =
  if evict_until ?avoid ~by_cpu t ~target then true
  else
    match t.paging with
    | Some p when Paging.force_complete p > 0 -> evict_until ?avoid ~by_cpu t ~target
    | Some _ | None -> false

let ensure_free ?avoid ?(by_cpu = 0) t ~needed =
  if Lpage_pool.n_free t.pool >= needed then true
  else begin
    (* Burst cap: free what the caller needs plus a low-water cushion, but
       never sweep all the way to a high-water mark far above [needed] —
       that evicted whole working sets in one fault. [tick] resumes the
       climb to high water in daemon context. *)
    let target = min (needed + t.low_water) (max needed t.high_water) in
    let reached = evict_until_hard ?avoid ~by_cpu t ~target in
    reached || Lpage_pool.n_free t.pool >= needed
  end

let tick ?(by_cpu = 0) t =
  if Lpage_pool.n_free t.pool >= t.low_water then 0
  else begin
    let before = t.evictions in
    ignore (evict_until_hard ~by_cpu t ~target:t.high_water);
    t.evictions - before
  end

let daemon_tick t ~now ~by_cpu =
  (match t.paging with
  | Some p ->
      ignore (Paging.complete_due p ~now);
      (* Pre-clean while free pages are merely getting low (below high
         water), so by the time eviction is forced the victims are Clean
         and drop for free. Two per tick keeps the disk-write charges
         spread over daemon time instead of bursting. *)
      if Lpage_pool.n_free t.pool < t.high_water then
        ignore (Paging.start_writebacks p ~now ~by_cpu ~max:2)
  | None -> ());
  tick ~by_cpu t

let evictions t = t.evictions
