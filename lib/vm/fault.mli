(** The machine-independent page-fault handler.

    Mirrors the Mach resolution path the paper describes: faults occur on
    first reference, on references blocked by the NUMA manager's protection
    tightening, and after mappings are dropped; resolution always ends in a
    [pmap.enter] with the minimum protection needed by the faulting access
    and the maximum allowed by the region, on the faulting CPU. *)

open Numa_machine

type ctx = {
  ops : Pmap_intf.ops;
  config : Config.t;
  sink : Cost_sink.t;
  pool : Lpage_pool.t;
  pageout : Pageout.t option;
      (** when present, pool exhaustion triggers reclamation and one retry
          before the fault fails with [Out_of_memory] *)
  obs : Numa_obs.Hub.t option;
      (** when present, an unrescuable exhaustion emits
          {!Numa_obs.Event.Out_of_memory} before the typed error returns *)
}

type error =
  | No_region  (** the address is unmapped: a segmentation violation *)
  | Protection_violation  (** the access exceeds the region's max protection *)
  | Out_of_memory  (** the logical page pool is exhausted *)

val error_to_string : error -> string

val handle :
  ctx -> Task.t -> cpu:int -> vpage:int -> access:Access.t -> (unit, error) result
(** Resolve one fault: charge the trap cost, look up the region,
    materialise the backing logical page (zero-fill or page-in), and enter
    the mapping. On success the access is guaranteed to find a resident
    mapping with sufficient protection. *)
