open Numa_machine

type ctx = {
  ops : Pmap_intf.ops;
  config : Config.t;
  sink : Cost_sink.t;
  pool : Lpage_pool.t;
  pageout : Pageout.t option;
  obs : Numa_obs.Hub.t option;
}

type error = No_region | Protection_violation | Out_of_memory

let error_to_string = function
  | No_region -> "no region at faulting address"
  | Protection_violation -> "access exceeds region protection"
  | Out_of_memory -> "logical page pool exhausted"

let handle ctx (task : Task.t) ~cpu ~vpage ~access =
  Cost_sink.charge ctx.sink ~cpu ~cat:Numa_obs.Profile.Fault_trap
    (Cost.fault_trap_ns ctx.config);
  match Vm_map.region_at task.map ~vpage with
  | None -> Error No_region
  | Some region ->
      if not (Prot.allows region.max_prot access) then Error Protection_violation
      else
        let offset = Vm_map.obj_offset_of_vpage region ~vpage in
        let materialise () =
          (* A Paged_out slot costs a real page-in: the faulting CPU waits
             out the modeled disk read (seek + DMA into the page's home
             memory). Checked before lpage_for because materialising
             flips the slot to Resident. *)
          let paged_out =
            match Vm_object.slot region.obj ~offset with
            | Vm_object.Paged_out _ -> true
            | Vm_object.Empty | Vm_object.Resident _ -> false
          in
          match Vm_object.lpage_for region.obj ~pool:ctx.pool ~ops:ctx.ops ~offset with
          | Ok lpage as ok ->
              if paged_out then
                Cost_sink.charge ctx.sink ~cpu ~cat:Numa_obs.Profile.Disk_read ~lpage
                  (Cost.disk_read_ns ctx.config ~topo:(Config.topology ctx.config) ~lpage);
              ok
          | Error _ as e -> e
        in
        let materialise_with_reclaim () =
          match materialise () with
          | Ok _ as ok -> ok
          | Error `Pool_exhausted -> (
              (* Kick the pageout daemon and retry once. The eviction work
                 (syncing dirty copies, dropping mappings) is charged
                 through the pmap layer as it happens; approximate the
                 daemon's own latency with one pmap action. *)
              match ctx.pageout with
              | Some daemon when Pageout.ensure_free ~by_cpu:cpu daemon ~needed:1 ->
                  Cost_sink.charge ctx.sink ~cpu ~cat:Numa_obs.Profile.Pmap_action
                    (Cost.pmap_action_ns ctx.config);
                  materialise ()
              | Some _ | None -> Error `Pool_exhausted)
        in
        (match materialise_with_reclaim () with
        | Error `Pool_exhausted ->
            (* A fault the pager could not rescue is a loud, typed failure:
               the workload sees Out_of_memory, observers see the event. *)
            (match ctx.obs with
            | Some hub when Numa_obs.Hub.enabled hub ->
                Numa_obs.Hub.emit hub (Numa_obs.Event.Out_of_memory { cpu; vpage })
            | Some _ | None -> ());
            Error Out_of_memory
        | Ok lpage ->
            ctx.ops.enter ~pmap:task.pmap ~cpu ~vpage ~lpage
              ~min_prot:(Prot.of_access access) ~max_prot:region.max_prot;
            Ok ())
