type t = { id : int; name : string; map : Vm_map.t; pmap : int }

let create ~(ops : Pmap_intf.ops) ~id ~name =
  { id; name; map = Vm_map.create (); pmap = ops.pmap_create ~name }

let destroy ~(ops : Pmap_intf.ops) t = ops.pmap_destroy t.pmap
