(** The Mach logical page pool.

    Fixed-size, as in the paper's Mach (section 2.1 notes the pool cannot
    grow at run time, which bounds the replication memory). Each logical
    page corresponds 1:1 to a page of ACE global memory, so the pool size
    equals [Config.global_pages].

    Freeing goes through the pmap layer's [free_page]/[free_page_sync]
    pair so the NUMA manager can lazily tear down cache state before the
    frame is reused. *)

type t

val create : Numa_machine.Config.t -> ops:Pmap_intf.ops -> t

val size : t -> int
val n_free : t -> int
val n_allocated : t -> int

val alloc : t -> int option
(** Take a logical page, completing any pending lazy cleanup for the frame
    first. [None] when the pool is exhausted. *)

val free : t -> int -> unit
(** Release a logical page; cleanup is started lazily via the pmap layer.
    Raises [Invalid_argument] on double free or out-of-range page. *)

val is_allocated : t -> int -> bool
