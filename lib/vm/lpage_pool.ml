type slot = { mutable allocated : bool; mutable cleanup : Pmap_intf.free_tag option }

type t = {
  slots : slot array;
  mutable free : int list;
  mutable n_free : int;
  ops : Pmap_intf.ops;
}

let create (config : Numa_machine.Config.t) ~ops =
  let n = config.global_pages in
  {
    slots = Array.init n (fun _ -> { allocated = false; cleanup = None });
    free = List.init n (fun i -> i);
    n_free = n;
    ops;
  }

let size t = Array.length t.slots
let n_free t = t.n_free
let n_allocated t = size t - t.n_free

let alloc t =
  match t.free with
  | [] -> None
  | lpage :: rest ->
      t.free <- rest;
      t.n_free <- t.n_free - 1;
      let slot = t.slots.(lpage) in
      (* Reallocation point: wait for any lazy cleanup left from the
         previous life of this frame (pmap_free_page_sync). *)
      (match slot.cleanup with
      | Some tag ->
          t.ops.free_page_sync tag;
          slot.cleanup <- None
      | None -> ());
      slot.allocated <- true;
      Some lpage

let free t lpage =
  if lpage < 0 || lpage >= size t then invalid_arg "Lpage_pool.free: out of range";
  let slot = t.slots.(lpage) in
  if not slot.allocated then invalid_arg "Lpage_pool.free: double free";
  slot.allocated <- false;
  slot.cleanup <- Some (t.ops.free_page ~lpage);
  t.free <- lpage :: t.free;
  t.n_free <- t.n_free + 1

let is_allocated t lpage =
  lpage >= 0 && lpage < size t && t.slots.(lpage).allocated
