type kind = Code | Data | Stack of int | Sync

type sharing = Declared_private | Declared_read_shared | Declared_write_shared

type pragma = Cacheable | Noncacheable | Homed of int

type t = {
  name : string;
  kind : kind;
  sharing : sharing;
  pragma : pragma option;
}

let v ?pragma ~name ~kind ~sharing () = { name; kind; sharing; pragma }

let is_writable_data t =
  match t.kind with Code -> false | Data | Stack _ | Sync -> true

let kind_to_string = function
  | Code -> "code"
  | Data -> "data"
  | Stack tid -> Printf.sprintf "stack(%d)" tid
  | Sync -> "sync"

let sharing_to_string = function
  | Declared_private -> "private"
  | Declared_read_shared -> "read-shared"
  | Declared_write_shared -> "write-shared"

let pp ppf t =
  Format.fprintf ppf "%s [%s, %s%s]" t.name (kind_to_string t.kind)
    (sharing_to_string t.sharing)
    (match t.pragma with
    | None -> ""
    | Some Cacheable -> ", pragma:cacheable"
    | Some Noncacheable -> ", pragma:noncacheable"
    | Some (Homed n) -> Printf.sprintf ", pragma:homed(%d)" n)
