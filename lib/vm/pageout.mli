(** The pageout daemon.

    Mach's logical page pool is fixed at boot (section 2.1), so a workload
    whose footprint exceeds it needs page reclamation. This daemon evicts
    resident object pages — saving their contents, dropping their mappings
    and freeing their logical pages — whenever free pages fall below the
    low-water mark, until the high-water mark is restored.

    With a {!Numa_machine.Paging} state machine attached, eviction is
    dirty-aware: Clean victims drop for free, Dirty victims pay a
    synchronous disk write first, and entries with in-flight disk I/O
    (Reading/Writeback) are never claimed. {!daemon_tick} additionally
    lands due async writebacks and pre-cleans Dirty pages while free pages
    run low, so forced evictions find Clean victims.

    Page-out and page-in go through the pmap layer's
    [extract_content]/[free_page]/[install_page] operations, so an evicted
    page's NUMA placement history — including a pinning decision — is
    forgotten, exactly the footnote-4 behaviour. *)

open Numa_machine

(** Victim selection. [Clock] is round-robin over the registered objects'
    resident pages — the ACE has no page-reference bits, and FIFO-like
    rotation is what such systems actually shipped. [Lru_approx] evicts
    the page with the oldest fault-time use tick (the Babaoglu-Joy trick
    the paper cites: faults are the only use signal without reference
    bits). *)
type victim = Clock | Lru_approx

val victim_name : victim -> string

val victim_of_string : string -> victim option
(** ["clock"], ["lru"] (also accepted: ["lru-approx"]). *)

type t

val create :
  pool:Lpage_pool.t ->
  ops:Pmap_intf.ops ->
  ?low_water:int ->
  ?high_water:int ->
  ?victim:victim ->
  ?paging:Paging.t ->
  unit ->
  t
(** Defaults: low-water 2, high-water 8 (small, suited to the simulated
    pools; real systems scale these with memory size), [Clock] victims,
    no paging machine (evictions then treat every page as clean).
    Requires [0 < low_water <= high_water]. *)

val register : t -> Vm_object.t -> unit
(** Make an object's pages eligible for eviction. *)

val victim_policy : t -> victim

val evict_one : ?avoid:int -> ?by_cpu:int -> t -> bool
(** Evict a single page chosen by the victim policy; false when nothing
    is evictable. Total even on degenerate registries (all objects
    zero-sized). [by_cpu] (default 0) is charged for any synchronous
    writeback. *)

val ensure_free : ?avoid:int -> ?by_cpu:int -> t -> needed:int -> bool
(** Evict until at least [needed] logical pages are free, plus a
    low-water cushion — but capped there: the burst never sweeps on to a
    distant high-water mark (that evicted whole working sets in one
    fault); {!tick} resumes the climb in daemon context. Returns false if
    not enough evictable pages exist. [avoid] names a logical page the
    sweep must never evict — the page an in-flight fault or frame-reclaim
    pass is working on. *)

val tick : ?by_cpu:int -> t -> int
(** Daemon heartbeat: evict down to the high-water mark if below the
    low-water mark. Returns pages evicted. *)

val daemon_tick : t -> now:float -> by_cpu:int -> int
(** The full daemon beat, called from the System's reconsideration tick:
    land async writebacks due by [now], start pre-cleaning writebacks if
    free pages are below high water, then {!tick}. Returns pages
    evicted. *)

val evictions : t -> int
(** Total pages evicted over the daemon's lifetime. *)
