(** The pageout daemon.

    Mach's logical page pool is fixed at boot (section 2.1), so a workload
    whose footprint exceeds it needs page reclamation. This daemon evicts
    resident object pages — saving their contents, dropping their mappings
    and freeing their logical pages — whenever free pages fall below the
    low-water mark, until the high-water mark is restored.

    Victim selection is round-robin over the registered objects' resident
    pages: the ACE has no page-reference bits (the paper cites the
    Babaoglu-Joy trick for exactly this situation), and FIFO-like rotation
    is what such systems actually shipped.

    Page-out and page-in go through the pmap layer's
    [extract_content]/[free_page]/[install_page] operations, so an evicted
    page's NUMA placement history — including a pinning decision — is
    forgotten, exactly the footnote-4 behaviour. *)

type t

val create :
  pool:Lpage_pool.t -> ops:Pmap_intf.ops -> ?low_water:int -> ?high_water:int -> unit -> t
(** Defaults: low-water 2, high-water 8 (small, suited to the simulated
    pools; real systems scale these with memory size). Requires
    [0 < low_water <= high_water]. *)

val register : t -> Vm_object.t -> unit
(** Make an object's pages eligible for eviction. *)

val ensure_free : ?avoid:int -> t -> needed:int -> bool
(** Evict until at least [needed] logical pages are free (and, if any
    eviction happened, up to the high-water mark). Returns false if not
    enough evictable pages exist. [avoid] names a logical page the sweep
    must never evict — the page an in-flight fault or frame-reclaim pass
    is working on. *)

val tick : t -> int
(** Daemon heartbeat: evict down to the high-water mark if below the
    low-water mark. Returns pages evicted. *)

val evictions : t -> int
(** Total pages evicted over the daemon's lifetime. *)
