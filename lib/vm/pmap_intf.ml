(** The Mach pmap interface, with the paper's NUMA extensions.

    This is the boundary between the machine-independent VM system (this
    library) and the machine-dependent pmap layer (implemented for the
    simulated ACE by [Numa_core.Pmap_manager]). The paper kept the whole
    NUMA mechanism below this line; so do we.

    The three extensions of section 2.3.3 are present:
    - [enter] takes {e min} and {e max} protection, so the pmap layer may
      map with the strictest permissions and replicate writable-but-unwritten
      pages read-only;
    - [enter] takes the target [cpu] that needs the mapping;
    - [free_page] / [free_page_sync] notify the pmap layer of frame
      reallocation, split in two for lazy cleanup.

    A pmap is named by an integer handle so the interface can be carried as
    a record of functions; [free_page] tags are integers for the same
    reason. *)

open Numa_machine

type free_tag = int

type ops = {
  pmap_create : name:string -> int;
      (** New (empty) physical map for a task; returns its handle. *)
  pmap_destroy : int -> unit;
      (** Drop every mapping of the pmap and release it. *)
  enter :
    pmap:int ->
    cpu:int ->
    vpage:int ->
    lpage:int ->
    min_prot:Prot.t ->
    max_prot:Prot.t ->
    unit;
      (** Map [vpage] to the page backing logical page [lpage], on [cpu],
          with at least [min_prot] and at most [max_prot] permissions. The
          pmap layer chooses the placement and the actual protection. *)
  protect : pmap:int -> vpage:int -> n:int -> Prot.t -> unit;
      (** Clamp the protection of all resident mappings in a range. *)
  remove : pmap:int -> vpage:int -> n:int -> unit;
      (** Drop all mappings in a virtual range of one pmap. *)
  remove_all : lpage:int -> unit;
      (** Drop a logical page from every pmap it is resident in. *)
  zero_page : lpage:int -> unit;
      (** Mark the page zero-filled. Lazy: the zeroes are materialised at
          the first [enter], in whichever memory the page is placed, to
          avoid writing zeros into global memory and immediately copying
          them (section 2.3.1). *)
  install_page : lpage:int -> content:int -> unit;
      (** Fill the page with known contents (the page-in path). *)
  extract_content : lpage:int -> int;
      (** Authoritative current contents of the page, syncing any dirty
          local copy back to global memory first (the page-out path). *)
  free_page : lpage:int -> free_tag;
      (** The frame is being freed: start lazy cleanup of cache state and
          placement history, return a tag. *)
  free_page_sync : free_tag -> unit;
      (** The frame is being reallocated: wait for the tagged cleanup. *)
  resident : pmap:int -> cpu:int -> vpage:int -> (Prot.t * Location.relative) option;
      (** Current mapping, if any, as seen by a referencing CPU: its
          protection and where the backing memory is. The simulation engine
          uses this to price references and detect faults. *)
  read_slot : pmap:int -> cpu:int -> vpage:int -> int;
      (** Read the content cell through the current mapping. Requires a
          resident mapping. *)
  write_slot : pmap:int -> cpu:int -> vpage:int -> int -> unit;
      (** Write the content cell through the current mapping. Requires a
          resident, writable mapping. *)
}
