(** A Mach task: a virtual address space (a {!Vm_map}) plus its physical
    map in the machine-dependent layer. *)

type t = private { id : int; name : string; map : Vm_map.t; pmap : int }

val create : ops:Pmap_intf.ops -> id:int -> name:string -> t

val destroy : ops:Pmap_intf.ops -> t -> unit
(** Drops the task's pmap (and with it every mapping). Object pages are the
    caller's to free. *)
