(** Declared attributes of a virtual memory region.

    The kind and sharing class do not influence placement (the paper's whole
    point is that placement is automatic); they feed the evaluation
    machinery: "writable data" selection for the alpha/beta model, per-class
    reference counting, and the false-sharing analyser, which compares the
    declared sharing of objects against the observed per-page behaviour.

    The [pragma] is the section 4.3 extension: an application may force a
    region cacheable (always placed local, never pinned) or noncacheable
    (placed global immediately). [None] means placement is left to the
    policy — the paper's default. *)

type kind =
  | Code  (** program text: read-only, replicated by any reasonable system *)
  | Data  (** heap / static data *)
  | Stack of int  (** thread-private stack; argument is the thread id *)
  | Sync  (** lock words, barrier counters, work-pile indices *)

type sharing =
  | Declared_private  (** used by one thread *)
  | Declared_read_shared  (** written at most during initialisation *)
  | Declared_write_shared  (** writably shared in steady state *)

type pragma =
  | Cacheable
  | Noncacheable
  | Homed of int
      (** section 4.4 extension: place the region permanently in the local
          memory of one node; other processors reference it remotely *)

type t = {
  name : string;
  kind : kind;
  sharing : sharing;
  pragma : pragma option;
}

val v : ?pragma:pragma -> name:string -> kind:kind -> sharing:sharing -> unit -> t

val is_writable_data : t -> bool
(** Does this region count as "writable data" in the paper's measurements?
    Everything except code: the paper's T_global placed {e all data pages}
    in global memory, including data that is never written. *)

val pp : Format.formatter -> t -> unit
