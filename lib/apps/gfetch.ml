(** Gfetch: "does nothing but fetch from shared virtual memory"
    (section 3.2) — the other end of the spectrum: beta = 1, alpha = 0.

    Every thread first initialises the shared buffer (making it writably
    shared, so the move-limit policy pins it in global memory), then spends
    the whole run fetching from it. On one CPU the buffer stays local, so
    gamma approaches the G/L fetch ratio of 2.3. *)

open Numa_system
module Api = Numa_sim.Api
module W = Workload
module Region_attr = Numa_vm.Region_attr

let app : App_sig.t =
  let setup sys (p : App_sig.params) =
    let config = System.config sys in
    let wpp = config.Numa_machine.Config.page_size_words in
    let pages = 16 in
    let buffer =
      W.alloc_arr sys ~name:"gfetch.buffer" ~sharing:Region_attr.Declared_write_shared
        ~words:(pages * wpp) ()
    in
    let total_fetches = int_of_float (500_000. *. p.App_sig.scale) in
    let barrier = System.make_barrier sys ~name:"gfetch.init" ~parties:p.App_sig.nthreads in
    for i = 0 to p.App_sig.nthreads - 1 do
      ignore
        (System.spawn sys ~name:(Printf.sprintf "gfetch.%d" i)
           (fun ~stack_vpage:_ ->
             (* Initialisation: every thread stores into every page (starting
                at a different page to interleave), twice, which drives the
                pages through enough ownership moves to pin them regardless
                of the processor count. On one processor nothing moves and
                the buffer stays local, as T_local requires. *)
             for pass = 0 to 1 do
               for k = 0 to pages - 1 do
                 let page = (i + k + pass) mod pages in
                 Api.write ~count:8 ~value:i (W.vpage_of buffer (page * wpp))
               done;
               Api.barrier barrier
             done;
             let lo, hi = W.static_share ~total:total_fetches ~nthreads:p.App_sig.nthreads ~tid:i in
             let mine = hi - lo in
             let per_page = max 1 (mine / pages) in
             for k = 0 to pages - 1 do
               let page = (i + k) mod pages in
               Api.read ~count:per_page (W.vpage_of buffer (page * wpp))
             done))
    done
  in
  {
    App_sig.name = "gfetch";
    description = "pure shared-memory fetch loop (alpha = 0, beta = 1)";
    fetch_dominated = true;
    setup;
  }
