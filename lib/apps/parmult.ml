(** ParMult: "does nothing but integer multiplication" (section 3.2).

    One end of the reference-behaviour spectrum: beta = 0. The only data
    references are workload allocation — an occasional unlocked touch of a
    shared progress counter, far too infrequent to be visible through
    measurement error. *)

open Numa_system
module Api = Numa_sim.Api
module W = Workload
module Region_attr = Numa_vm.Region_attr

let blocks = 70 (* fixed, so total work is independent of thread count *)

let app : App_sig.t =
  let setup sys (p : App_sig.params) =
    let total_mults = int_of_float (120_000. *. p.App_sig.scale) in
    let mults_per_block = max 1 (total_mults / blocks) in
    let progress =
      System.alloc_region sys ~name:"parmult.progress" ~kind:Region_attr.Data
        ~sharing:Region_attr.Declared_write_shared ~pages:1 ()
    in
    for i = 0 to p.App_sig.nthreads - 1 do
      ignore
        (System.spawn sys ~name:(Printf.sprintf "parmult.%d" i)
           (fun ~stack_vpage:_ ->
             let lo, hi = W.static_share ~total:blocks ~nthreads:p.App_sig.nthreads ~tid:i in
             for _block = lo to hi - 1 do
               Api.compute
                 (float_of_int mults_per_block *. (W.Cost.int_mul_ns +. W.Cost.loop_ns));
               (* Note a block done on the shared progress page. *)
               Api.read progress.System.base_vpage;
               Api.write progress.System.base_vpage
             done))
    done
  in
  {
    App_sig.name = "parmult";
    description = "pure integer multiplication; no data references (beta = 0)";
    fetch_dominated = false;
    setup;
  }
