(** Toolkit shared by the application programs: word-addressed arrays over
    page regions, batched range/stride references, stack (subroutine
    linkage) traffic, work piles, and the ROMP-flavoured per-operation
    compute costs used to shape each program's beta. *)

open Numa_system

(** {1 Compute costs (ns per operation)}

    Calibrated so the applications land near the paper's per-program beta
    values (section 3.2); see EXPERIMENTS.md for the comparison. *)

module Cost : sig
  val loop_ns : float
  (** loop control per iteration *)

  val int_mul_ns : float
  (** software integer multiply (ROMP has none) *)

  val trial_div_ns : float
  (** the division loop of Primes1 (division is expensive on the ACE) *)

  val prime_div_ns : float
  (** the leaner division of Primes2 *)

  val flop_ns : float
  (** floating-point op through the FP accelerator *)

  val call_ns : float
  (** subroutine call/return compute, excluding the stack references *)
end

(** {1 Word arrays} *)

type arr = private { region : System.region; words : int; words_per_page : int }

val alloc_arr :
  System.t ->
  ?pragma:Numa_vm.Region_attr.pragma ->
  ?kind:Numa_vm.Region_attr.kind ->
  name:string ->
  sharing:Numa_vm.Region_attr.sharing ->
  words:int ->
  unit ->
  arr
(** A [words]-long array of 32-bit words in freshly allocated pages
    ([kind] defaults to [Data]). *)

val vpage_of : arr -> int -> int
(** Virtual page holding word [i]. *)

val n_pages : arr -> int

val read_word : arr -> int -> unit
val write_word : arr -> ?value:int -> int -> unit

val read_range : arr -> lo:int -> n:int -> unit
(** [n] consecutive word fetches starting at [lo], batched page by page. *)

val write_range : ?value:int -> arr -> lo:int -> n:int -> unit

val read_stride : arr -> lo:int -> n:int -> stride:int -> unit
(** [n] fetches at [lo], [lo+stride], ...: references are batched per page
    (a column walk touches many pages with few references each). *)

val write_stride : ?value:int -> arr -> lo:int -> n:int -> stride:int -> unit

(** {1 Stack traffic} *)

val linkage : stack_vpage:int -> refs:int -> unit
(** Subroutine-linkage stack traffic: roughly half stores (frame push) and
    half fetches (restore), all on the thread's stack page. *)

(** {1 Work pile}

    A lock-protected shared counter parcelling out work units, the
    C-Threads idiom the paper's applications use for workload allocation.
    Every [take] references the counter's page under the lock, so the
    allocation state is writably shared — and gets pinned — exactly as in
    the real programs. *)

type workpile

val make_workpile : System.t -> name:string -> total:int -> chunk:int -> workpile

val workpile_take : workpile -> (int * int) option
(** [Some (lo, hi)] (inclusive bounds) or [None] when exhausted. Must be
    called from inside a simulated thread. *)

(** {1 Work splitting} *)

val static_share : total:int -> nthreads:int -> tid:int -> int * int
(** Contiguous [lo, hi) block of an EPEX-style static loop split; empty
    shares yield [lo = hi]. *)
