(** ParMult: pure integer multiplication, the paper's beta = 0 extreme
    (section 3.2). *)

val app : App_sig.t
