(** A Unix-flavoured workload for the section 4.6 study: threads alternate
    computation with system calls (sigvec/fstat/ioctl-style) that reference
    the caller's user stack from kernel mode.

    With the Unix-master model on, those references come from CPU 0, making
    each thread's stack writably shared with the master — so stacks drift
    into global memory and every subsequent stack reference slows down.
    With the model off (the paper's ad hoc fix: the offending calls no
    longer touch user memory from the master), stacks stay local. *)

open Numa_system
module Api = Numa_sim.Api
module W = Workload

let app : App_sig.t =
  let setup sys (p : App_sig.params) =
    let iterations = max 10 (int_of_float (400. *. p.App_sig.scale)) in
    let blocks = 200 (* fixed work split *) in
    let pile = W.make_workpile sys ~name:"sysmix.alloc" ~total:blocks ~chunk:1 in
    let per_block = max 1 (iterations / blocks) in
    for i = 0 to p.App_sig.nthreads - 1 do
      ignore
        (System.spawn sys ~name:(Printf.sprintf "sysmix.%d" i)
           (fun ~stack_vpage ->
             let rec work () =
               match W.workpile_take pile with
               | None -> ()
               | Some (_, _) ->
                   for _it = 1 to per_block do
                     (* Normal user work with stack traffic. *)
                     W.linkage ~stack_vpage ~refs:400;
                     Api.compute 300_000.;
                     (* An fstat-ish call that reads/writes the user stack. *)
                     Api.syscall ~touch_stack:true ~service_ns:150_000. ()
                   done;
                   work ()
             in
             work ()))
    done
  in
  {
    App_sig.name = "syscall-mix";
    description = "compute + stack-touching system calls (Unix master study)";
    fetch_dominated = false;
    setup;
  }
