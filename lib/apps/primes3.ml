(** Primes3: parallel Sieve of Eratosthenes over a shared bit vector of odd
    numbers (section 3.2).

    The heavy, legitimate use of writably-shared memory: sieving threads
    fetch and store all over the shared bit vector, so its pages ping-pong
    between local memories until the policy pins them — the program with
    the paper's worst alpha (0.17) and highest NUMA-management overhead
    (Table 4: ΔS/T_numa ~ 25%). The scan phase then reads the whole vector
    and produces an integer result vector, also shared. *)

open Numa_system
module Api = Numa_sim.Api
module W = Workload
module Region_attr = Numa_vm.Region_attr

let limit scale = max 20_000 (int_of_float (10_000_000. *. scale))

(* [pragma] is applied to the sieve and output regions; the section 4.3
   ablation marks them noncacheable so they are placed in global memory up
   front, skipping the thrash-then-pin phase entirely. *)
let make ?pragma () : App_sig.t =
  let setup sys (p : App_sig.params) =
    let limit = limit p.App_sig.scale in
    let config = System.config sys in
    let wpp = config.Numa_machine.Config.page_size_words in
    let bits_per_page = wpp * 32 in
    let n_bits = (limit - 1) / 2 in
    let sieve =
      W.alloc_arr sys ?pragma ~name:"primes3.sieve"
        ~sharing:Region_attr.Declared_write_shared
        ~words:((n_bits + 31) / 32)
        ()
    in
    let n_sieve_pages = W.n_pages sieve in
    let sieve_primes =
      Array.to_list (Primes_util.primes_upto (Primes_util.isqrt limit))
      |> List.filter (fun q -> q >= 3)
      |> Array.of_list
    in
    let all_primes = Primes_util.primes_upto limit in
    let output =
      W.alloc_arr sys ?pragma ~name:"primes3.output"
        ~sharing:Region_attr.Declared_write_shared
        ~words:(max 1 (Array.length all_primes))
        ()
    in
    (* Primes per sieve page and their output offsets, precomputed so the
       scan phase writes each result exactly once wherever it runs. *)
    let primes_in_page = Array.make n_sieve_pages 0 in
    Array.iter
      (fun q ->
        if q >= 3 then begin
          let bit = (q - 3) / 2 in
          let pg = bit / bits_per_page in
          if pg < n_sieve_pages then primes_in_page.(pg) <- primes_in_page.(pg) + 1
        end)
      all_primes;
    let out_offset = Array.make (n_sieve_pages + 1) 0 in
    for pg = 0 to n_sieve_pages - 1 do
      out_offset.(pg + 1) <- out_offset.(pg) + primes_in_page.(pg)
    done;
    (* Marking work is parcelled as (prime, page range) units of roughly
       equal mark counts, so small primes (which mark a quarter of the
       vector) do not serialise the phase. Different threads still mark
       different primes into the same pages, preserving the heavy write
       sharing of the shared bit vector. *)
    let mark_units =
      let total_marks =
        Array.fold_left
          (fun acc q ->
            acc
            + Primes_util.count_odd_multiples_in_bit_range ~p:q ~lo_bit:0
                ~hi_bit:(n_bits - 1) ~limit)
          0 sieve_primes
      in
      let target = max 1 (total_marks / 128) in
      let units = ref [] in
      Array.iteri
        (fun qi q ->
          let pg = ref 0 in
          while !pg < n_sieve_pages do
            (* Grow the page range until it holds ~target marks. *)
            let start = !pg in
            let marks = ref 0 in
            while !pg < n_sieve_pages && !marks < target do
              let lo_bit = !pg * bits_per_page in
              let hi_bit = min ((!pg + 1) * bits_per_page) n_bits - 1 in
              if hi_bit >= lo_bit then
                marks :=
                  !marks
                  + Primes_util.count_odd_multiples_in_bit_range ~p:q ~lo_bit ~hi_bit
                      ~limit;
              incr pg
            done;
            if !marks > 0 then units := (qi, start, !pg - 1) :: !units
          done)
        sieve_primes;
      (* Order units by page position, then prime: concurrent threads then
         work different primes into the same neighbourhood of the vector,
         exactly the contention pattern of the real sieve. *)
      let arr = Array.of_list !units in
      Array.sort
        (fun (qa, pa, _) (qb, pb, _) ->
          match Int.compare pa pb with 0 -> Int.compare qa qb | c -> c)
        arr;
      arr
    in
    let mark_pile =
      W.make_workpile sys ~name:"primes3.marks" ~total:(Array.length mark_units) ~chunk:1
    in
    let scan_pile = W.make_workpile sys ~name:"primes3.scan" ~total:n_sieve_pages ~chunk:2 in
    let barrier = System.make_barrier sys ~name:"primes3.phase" ~parties:p.App_sig.nthreads in
    for i = 0 to p.App_sig.nthreads - 1 do
      ignore
        (System.spawn sys ~name:(Printf.sprintf "primes3.%d" i)
           (fun ~stack_vpage:_ ->
             (* Phase 1: each thread takes (prime, page range) units from
                the pile and masks off the composites. *)
             let mark_unit (qi, pg_lo, pg_hi) =
               let q = sieve_primes.(qi) in
               for pg = pg_lo to pg_hi do
                 let lo_bit = pg * bits_per_page in
                 let hi_bit = min ((pg + 1) * bits_per_page) n_bits - 1 in
                 if hi_bit >= lo_bit then begin
                   let m =
                     Primes_util.count_odd_multiples_in_bit_range ~p:q ~lo_bit ~hi_bit
                       ~limit
                   in
                   if m > 0 then begin
                     let vpage = W.vpage_of sieve (lo_bit / 32) in
                     (* Each mark is a fetch of the word, a store of the
                        masked word, and some loop control. *)
                     Api.read ~count:m vpage;
                     Api.write ~count:m vpage;
                     Api.compute (float_of_int m *. 2.8 *. W.Cost.loop_ns)
                   end
                 end
               done
             in
             let rec mark () =
               match W.workpile_take mark_pile with
               | None -> ()
               | Some (lo, hi) ->
                   for k = lo to hi do
                     mark_unit mark_units.(k)
                   done;
                   mark ()
             in
             mark ();
             Api.barrier barrier;
             (* Phase 2: scan the bit vector for survivors and emit them
                into the shared result vector. *)
             let scan_page pg =
               let lo_word = pg * wpp in
               let n_words = min wpp (sieve.W.words - lo_word) in
               W.read_range sieve ~lo:lo_word ~n:n_words;
               Api.compute (float_of_int (n_words * 32) *. (W.Cost.loop_ns /. 10.));
               let found = primes_in_page.(pg) in
               if found > 0 then W.write_range output ~lo:out_offset.(pg) ~n:found
             in
             let rec scan () =
               match W.workpile_take scan_pile with
               | None -> ()
               | Some (lo, hi) ->
                   for pg = lo to hi do
                     scan_page pg
                   done;
                   scan ()
             in
             scan ()))
    done
  in
  let name, description =
    match pragma with
    | None -> ("primes3", "parallel sieve over a shared bit vector; heavy write sharing")
    | Some _ ->
        ( "primes3-pragma",
          "the sieve with its shared vectors marked noncacheable up front" )
  in
  { App_sig.name; description; fetch_dominated = false; setup }

let app = make ()
let app_pragma = make ~pragma:Numa_vm.Region_attr.Noncacheable ()
