type params = { nthreads : int; scale : float; seed : int64 }

let default_params = { nthreads = 7; scale = 1.0; seed = 42L }

type t = {
  name : string;
  description : string;
  fetch_dominated : bool;
  setup : Numa_system.System.t -> params -> unit;
}
