(** IMatMult: integer matrix product (section 3.2).

    Workload allocation parcels out elements of the output matrix, so the
    output is writably shared and ends up pinned in global memory; the
    input matrices are written during initialisation and only read after,
    so they become read-only logical pages replicated in every local memory
    — the paper's showcase for "replicating data that is writable, but that
    is never written". High alpha (400 local fetches per global store), low
    beta (integer multiplication is expensive on the ACE). *)

open Numa_system
module Api = Numa_sim.Api
module W = Workload
module Region_attr = Numa_vm.Region_attr

let dimension scale = max 8 (int_of_float (160. *. Float.cbrt scale))

let app : App_sig.t =
  let setup sys (p : App_sig.params) =
    let n = dimension p.App_sig.scale in
    let alloc name sharing = W.alloc_arr sys ~name ~sharing ~words:(n * n) () in
    let a = alloc "imatmult.A" Region_attr.Declared_read_shared in
    let b = alloc "imatmult.B" Region_attr.Declared_read_shared in
    let c = alloc "imatmult.C" Region_attr.Declared_write_shared in
    let barrier = System.make_barrier sys ~name:"imatmult.init" ~parties:p.App_sig.nthreads in
    let pile = W.make_workpile sys ~name:"imatmult.alloc" ~total:(n * n) ~chunk:48 in
    for i = 0 to p.App_sig.nthreads - 1 do
      ignore
        (System.spawn sys ~name:(Printf.sprintf "imatmult.%d" i)
           (fun ~stack_vpage:_ ->
             (* Parallel initialisation: each thread fills its share of the
                input matrices; they are never written again. *)
             let lo_i, hi_i =
               W.static_share ~total:(n * n) ~nthreads:p.App_sig.nthreads ~tid:i
             in
             if hi_i > lo_i then begin
               W.write_range a ~lo:lo_i ~n:(hi_i - lo_i);
               W.write_range b ~lo:lo_i ~n:(hi_i - lo_i)
             end;
             Api.barrier barrier;
             let rec work () =
               match W.workpile_take pile with
               | None -> ()
               | Some (lo, hi) ->
                   for e = lo to hi do
                     let row = e / n and col = e mod n in
                     W.read_range a ~lo:(row * n) ~n;
                     W.read_stride b ~lo:col ~n ~stride:n;
                     Api.compute (float_of_int n *. (W.Cost.int_mul_ns +. W.Cost.loop_ns));
                     W.write_word c e
                   done;
                   work ()
             in
             work ()))
    done
  in
  {
    App_sig.name = "imatmult";
    description = "integer matrix multiply; replicated inputs, pinned output";
    fetch_dominated = true;
    setup;
  }
