(** Primes2 (after Carriero & Gelernter): trial division by previously
    found primes (section 3.2).

    The tuned version is the paper's false-sharing success story
    (section 4.2): each thread copies the divisors it needs from the shared
    output vector into a private vector, raising alpha from 0.66 to 1.00.
    Both variants are built here; the registry exposes them as "primes2"
    (segregated, the paper's final version) and "primes2-unseg" (reading
    divisors straight from the writably-shared output vector). *)

open Numa_system
module Api = Numa_sim.Api
module W = Workload
module Region_attr = Numa_vm.Region_attr

let limit scale = max 1_000 (int_of_float (60_000. *. scale))

type variant = Segregated | Unsegregated

let make variant : App_sig.t =
  let setup sys (p : App_sig.params) =
    let limit = limit p.App_sig.scale in
    let n_candidates = (limit - 3 + 2) / 2 in
    let primes = Primes_util.primes_upto limit in
    (* primes.(k) for k >= 1 are the odd primes, in order. *)
    let n_odd_primes = Array.length primes - 1 in
    let output =
      W.alloc_arr sys ~name:"primes2.output" ~sharing:Region_attr.Declared_write_shared
        ~words:(max 1 n_odd_primes) ()
    in
    let out_lock = System.make_lock sys ~name:"primes2.outlock" in
    let out_count = ref 0 in
    (* Number of odd primes <= sqrt n, i.e. the divisors the algorithm
       tries for candidate n (all of them: remainders are checked). *)
    let divisors_for n =
      let root = Primes_util.isqrt n in
      let rec count k =
        if k + 1 <= n_odd_primes && primes.(k + 1) <= root then count (k + 1) else k
      in
      count 0
    in
    let pile = W.make_workpile sys ~name:"primes2.alloc" ~total:n_candidates ~chunk:200 in
    for i = 0 to p.App_sig.nthreads - 1 do
      let private_divisors =
        match variant with
        | Unsegregated -> None
        | Segregated ->
            Some
              (W.alloc_arr sys
                 ~name:(Printf.sprintf "primes2.divisors.%d" i)
                 ~sharing:Region_attr.Declared_private
                 ~words:(max 1 (divisors_for limit + 1))
                 ())
      in
      ignore
        (System.spawn sys ~name:(Printf.sprintf "primes2.%d" i)
           (fun ~stack_vpage ->
             let copied = ref 0 in
             (* Batched appends, as in primes1: keeps output-lock
                contention negligible (the paper notes the applications do
                not contend much for locks). *)
             let buffered = ref 0 in
             let flush () =
               if !buffered > 0 then begin
                 let n = !buffered in
                 buffered := 0;
                 Api.with_lock out_lock (fun () ->
                     let lo = min !out_count (output.W.words - n - 1) in
                     out_count := !out_count + n;
                     W.write_range output ~lo:(max 0 lo) ~n)
               end
             in
             let try_candidate idx =
               let n = 3 + (2 * idx) in
               let ndiv = max 1 (divisors_for n) in
               (match private_divisors with
               | Some priv ->
                   (* Top up the private divisor vector from the shared
                      output vector, then divide out of private memory. *)
                   if ndiv > !copied then begin
                     let need = ndiv - !copied in
                     W.read_range output ~lo:!copied ~n:need;
                     W.write_range priv ~lo:!copied ~n:need;
                     copied := ndiv
                   end;
                   W.read_range priv ~lo:0 ~n:ndiv
               | None ->
                   (* False-sharing variant: fetch divisors from the shared
                      vector on every test. *)
                   W.read_range output ~lo:0 ~n:ndiv);
               W.linkage ~stack_vpage ~refs:(2 * ndiv);
               Api.compute (float_of_int ndiv *. W.Cost.prime_div_ns);
               let rec is_prime k =
                 k > n_odd_primes
                 || primes.(k) * primes.(k) > n
                 || (n mod primes.(k) <> 0 && is_prime (k + 1))
               in
               if n >= 3 && is_prime 1 then begin
                 incr buffered;
                 if !buffered >= 64 then flush ()
               end
             in
             let rec work () =
               match W.workpile_take pile with
               | None -> ()
               | Some (lo, hi) ->
                   for idx = lo to hi do
                     try_candidate idx
                   done;
                   work ()
             in
             work ();
             flush ()))
    done
  in
  let name, description =
    match variant with
    | Segregated ->
        ( "primes2",
          "trial division by private copies of found primes (tuned, alpha ~ 1.0)" )
    | Unsegregated ->
        ( "primes2-unseg",
          "trial division reading divisors from the shared vector (alpha ~ 0.66)" )
  in
  { App_sig.name; description; fetch_dominated = false; setup }

let app = make Segregated
let app_unsegregated = make Unsegregated
