let isqrt n =
  if n < 0 then invalid_arg "isqrt: negative";
  if n < 2 then n
  else begin
    let s = ref (int_of_float (sqrt (float_of_int n))) in
    while !s * !s > n do
      decr s
    done;
    while (!s + 1) * (!s + 1) <= n do
      incr s
    done;
    !s
  end

let primes_upto n =
  if n < 2 then [||]
  else begin
    let sieve = Array.make (n + 1) true in
    sieve.(0) <- false;
    sieve.(1) <- false;
    let i = ref 2 in
    while !i * !i <= n do
      if sieve.(!i) then begin
        let j = ref (!i * !i) in
        while !j <= n do
          sieve.(!j) <- false;
          j := !j + !i
        done
      end;
      incr i
    done;
    let count = ref 0 in
    Array.iter (fun b -> if b then incr count) sieve;
    let out = Array.make !count 0 in
    let k = ref 0 in
    Array.iteri
      (fun v b ->
        if b then begin
          out.(!k) <- v;
          incr k
        end)
      sieve;
    out
  end

(* Bit i of the odd-number vector represents value 2i + 3. Prime p marks
   odd multiples p*p, p*(p+2), ... i.e. values p*p + 2kp. *)
let count_odd_multiples_in_bit_range ~p ~lo_bit ~hi_bit ~limit =
  if p < 3 then invalid_arg "count_odd_multiples_in_bit_range: p must be odd >= 3";
  let value_of_bit i = (2 * i) + 3 in
  let lo_v = value_of_bit lo_bit and hi_v = min (value_of_bit hi_bit) limit in
  let first = p * p in
  if first > hi_v then 0
  else begin
    (* Smallest odd multiple of p that is >= max(first, lo_v). *)
    let start = max first lo_v in
    let m = (start + p - 1) / p in
    let m = if m mod 2 = 0 then m + 1 else m in
    let m = max m p in
    let first_val = m * p in
    if first_val > hi_v then 0 else ((hi_v - first_val) / (2 * p)) + 1
  end
