(** One hot writer, occasional readers: the remote-reference study of
    section 4.4, with and without the [Homed] pragma. *)

val app : App_sig.t
val app_homed : App_sig.t
