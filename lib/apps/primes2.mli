(** Primes2: trial division by previously found primes (section 3.2), in
    the paper's tuned form (private divisor copies) and the original
    false-sharing form that reads the shared output vector directly —
    the alpha 0.66 -> 1.00 example of section 4.2. *)

val limit : float -> int

val app : App_sig.t
(** The segregated (tuned) version. *)

val app_unsegregated : App_sig.t
(** The version that fetches divisors from the writably-shared vector. *)
