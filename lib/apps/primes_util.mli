(** Shared number-theoretic helpers for the three prime-finding workloads.
    These compute the *answers* in plain OCaml; the simulated programs then
    issue the memory references and compute time the 1989 codes would have
    spent obtaining them. *)

val isqrt : int -> int
(** Integer square root (largest s with s*s <= n). *)

val primes_upto : int -> int array
(** All primes <= n in increasing order (simple sieve). *)

val count_odd_multiples_in_bit_range : p:int -> lo_bit:int -> hi_bit:int -> limit:int -> int
(** Number of sieve marks prime [p] makes in the odd-number bit vector
    between bit indices [lo_bit] and [hi_bit] (inclusive), where bit [i]
    stands for the odd number [2*i + 3] and marking starts at [p*p],
    bounded by [limit]. *)
