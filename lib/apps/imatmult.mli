(** IMatMult: integer matrix product with work-pile output allocation
    (section 3.2). Inputs replicate read-only; the output matrix pins. *)

val dimension : float -> int
(** Matrix dimension for a given scale (exposed for tests). *)

val app : App_sig.t
