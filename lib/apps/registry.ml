let table3 =
  [
    Parmult.app;
    Gfetch.app;
    Imatmult.app;
    Primes1.app;
    Primes2.app;
    Primes3.app;
    Fft.app;
    Plytrace.app;
  ]

let table4 = [ Imatmult.app; Primes1.app; Primes2.app; Primes3.app; Fft.app ]

let all =
  table3
  @ [
      Primes2.app_unsegregated; Primes3.app_pragma; Syscall_mix.app; Phased.app;
      Lopsided.app; Lopsided.app_homed; Rebalance.app; Rebalance.app_migrate;
      Serve.app;
    ]

let find name = List.find_opt (fun (a : App_sig.t) -> a.App_sig.name = name) all

let names () = List.map (fun (a : App_sig.t) -> a.App_sig.name) all
