(** All application programs, by name. *)

val all : App_sig.t list
(** The paper's application mix (Table 3 order) plus the unsegregated
    primes2 variant used in the false-sharing study. *)

val table3 : App_sig.t list
(** Exactly the eight programs of Table 3. *)

val table4 : App_sig.t list
(** The five programs of Table 4 (IMatMult, Primes1-3, FFT). *)

val find : string -> App_sig.t option

val names : unit -> string list
