(** FFT: EPEX-style two-dimensional FFT (section 3.2): ~95% of references
    private per Baylor & Rathi; the shared array pins in the column
    phase. *)

val dimension : float -> int
(** Transform size (a power of two) for a given scale. *)

val app : App_sig.t
