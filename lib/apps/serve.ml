(** The served-traffic workload family (open-loop NUMA serving).

    A sharded key-value server: [nthreads] shard workers each own the keys
    congruent to their index, requests arrive by a Poisson process with
    burst episodes ({!Numa_util.Dist}), key popularity is zipfian, and a
    large logical client population is multiplexed onto the request
    stream. The trace (arrival instants, keys, clients, write flags) is
    precomputed from the run seed at setup, so a run is exactly
    reproducible; each worker then replays its share open-loop —
    {!Numa_sim.Api.sleep_until} to the next arrival instant, dequeue,
    serve — so a slow policy cannot slow the offered load down, it can
    only grow the queues. Per-request latency lands in a histogram and
    surfaces as the report's [serving] section with queue-delay
    attribution (the tail-latency lens the batch apps cannot provide).

    NUMA-wise the store is deliberately awkward: adjacent keys live on the
    same page but belong to different shards, so pages are read by every
    node and occasionally written (the [rw_mix] fraction), and a shared
    session table adds cross-node write churn. Placement policy therefore
    moves per-request service time, and under open-loop arrivals service
    inflation compounds into queueing — the p99.9 spread the serve-sweep
    experiment measures. *)

open Numa_system
module Api = Numa_sim.Api
module Engine = Numa_sim.Engine
module W = Workload
module Dist = Numa_util.Dist
module Prng = Numa_util.Prng
module Histogram = Numa_util.Histogram
module Region_attr = Numa_vm.Region_attr

let n_keys = 2048
let key_span = 8 (* words read (and possibly written) per request *)
let session_words = 512
let service_compute_ns = 15_000. (* request parsing / marshalling compute *)

let warmup_ns = 100e6
(* Arrivals start 100 ms in: each shard first walks its keys once, so the
   cold-start fault storm (zero fills, first placement decisions) is off
   the clock and no request measures its backlog position behind setup.
   The warmup does not promise a converged placement, though — each shard
   only touches every [nthreads]-th span, so a lazy policy (move-limit
   replicates a page per faulting node, on fault) finishes converging
   under live traffic, and that residual copy storm is part of the tail
   the serving section measures. Lengthening the window does not change
   the numbers; only serving accesses trigger the remaining work. *)

let default_arrival = Dist.arrival ~rate_per_s:100_000. ~burst:4. ()
let default_theta = 0.9
let default_clients = 1_000_000
let default_rw_mix = 0.1

let requests_for scale = max 400 (int_of_float (20_000. *. scale))

let us_of_ns ns = int_of_float ((ns +. 500.) /. 1_000.)

let make ?(arrival = default_arrival) ?(theta = default_theta)
    ?(clients = default_clients) ?(rw_mix = default_rw_mix) () : App_sig.t =
  let setup sys (p : App_sig.params) =
    let eng = System.engine sys in
    let obs = System.obs sys in
    let profile = System.profile sys in
    let nthreads = p.App_sig.nthreads in
    let n = requests_for p.App_sig.scale in
    (* The synthetic trace, from the run seed: arrival instants, zipfian
       keys, client ids, write flags. Independent streams per dimension so
       changing e.g. the write mix does not reshuffle the keys. *)
    let prng = Prng.create ~seed:p.App_sig.seed in
    let arrivals = Dist.arrival_times arrival (Prng.split prng) ~n in
    Array.iteri (fun i t -> arrivals.(i) <- t +. warmup_ns) arrivals;
    let z = Dist.zipf ~n:n_keys ~theta in
    let zp = Prng.split prng in
    let keys = Array.init n (fun _ -> Dist.zipf_draw z zp) in
    let cp = Prng.split prng in
    let client_of = Array.init n (fun _ -> Prng.int cp clients) in
    let wp = Prng.split prng in
    let writes = Array.init n (fun _ -> Prng.float wp 1.0 < rw_mix) in
    (* Modulo sharding: worker w owns keys congruent to w, so the zipf head
       spreads over all shards while store pages stay node-shared. *)
    let assigned = Array.make nthreads [] in
    for r = n - 1 downto 0 do
      let w = keys.(r) mod nthreads in
      assigned.(w) <- r :: assigned.(w)
    done;
    let store =
      W.alloc_arr sys ~name:"serve.store"
        ~sharing:Region_attr.Declared_write_shared ~words:(n_keys * key_span) ()
    in
    let sessions =
      W.alloc_arr sys ~name:"serve.sessions"
        ~sharing:Region_attr.Declared_write_shared ~words:session_words ()
    in
    let queues =
      W.alloc_arr sys ~name:"serve.queues"
        ~sharing:Region_attr.Declared_write_shared ~words:(max 1 nthreads) ()
    in
    (* Measurement state, filled in by the workers and read once by the
       collector after the last thread finishes. *)
    let lat_hist = Histogram.create () in
    let queue_hist = Histogram.create () in
    let lat_sum = ref 0. in
    let queue_sum = ref 0. in
    let served = Array.make nthreads 0 in
    let last_done = ref 0. in
    let tids = Array.make nthreads (-1) in
    for w = 0 to nthreads - 1 do
      tids.(w) <-
        System.spawn sys ~name:(Printf.sprintf "serve.%d" w)
          (fun ~stack_vpage:_ ->
            (* Warmup: fault the shard's working set in before any request
               is on the clock. *)
            let key = ref w in
            while !key < n_keys do
              W.read_range store ~lo:(!key * key_span) ~n:key_span;
              key := !key + nthreads
            done;
            W.read_word queues w;
            List.iter
              (fun r ->
                (* Open-loop: park to the arrival instant (a no-op when the
                   shard is already running behind — the backlog case). The
                   first sleep is also what parks the body at spawn time,
                   before [tids] is filled in. *)
                Api.sleep_until ~ns:arrivals.(r);
                if Numa_obs.Hub.enabled obs then
                  Numa_obs.Hub.emit obs
                    (Numa_obs.Event.Request_arrived
                       { client = client_of.(r); key = keys.(r); worker = w });
                (* Dequeue: touch the shard's queue slot. A real reference,
                   so the CPU clock read after it is current virtual time
                   (the clock is stale right after [sleep_until]). *)
                W.read_word queues w;
                let tid = tids.(w) in
                let cpu = Engine.thread_cpu eng ~tid in
                let t_start = Engine.clock_ns eng ~cpu in
                let key = keys.(r) in
                W.read_range store ~lo:(key * key_span) ~n:key_span;
                if writes.(r) then
                  W.write_range store ~lo:(key * key_span) ~n:key_span;
                W.write_word sessions (client_of.(r) mod session_words);
                Api.compute service_compute_ns;
                let cpu = Engine.thread_cpu eng ~tid in
                let t_done = Engine.clock_ns eng ~cpu in
                let queue_ns = Float.max 0. (t_start -. arrivals.(r)) in
                let latency_ns = t_done -. arrivals.(r) in
                let service_ns = t_done -. t_start in
                Histogram.add lat_hist (us_of_ns latency_ns);
                Histogram.add queue_hist (us_of_ns queue_ns);
                lat_sum := !lat_sum +. latency_ns;
                queue_sum := !queue_sum +. queue_ns;
                served.(w) <- served.(w) + 1;
                if t_done > !last_done then last_done := t_done;
                (match profile with
                | Some pr -> Numa_obs.Profile.note_request pr ~service_ns ~queue_ns
                | None -> ());
                if Numa_obs.Hub.enabled obs then
                  Numa_obs.Hub.emit obs
                    (Numa_obs.Event.Request_served
                       { client = client_of.(r); key; cpu; queue_ns; service_ns }))
              assigned.(w))
    done;
    System.set_serving_collector sys (fun () ->
        let requests = Histogram.total lat_hist in
        let first = if n > 0 then arrivals.(0) else 0. in
        let span_ns = Float.max 0. (!last_done -. first) in
        let freq = float_of_int requests in
        {
          Report.requests;
          arrival_spec = Dist.arrival_to_string arrival;
          zipf_theta = theta;
          clients;
          write_fraction = rw_mix;
          span_ns;
          throughput_rps = (if span_ns > 0. then freq /. span_ns *. 1e9 else 0.);
          mean_us = (if requests = 0 then 0. else !lat_sum /. freq /. 1e3);
          p50_us = Histogram.percentile lat_hist 50.;
          p95_us = Histogram.percentile lat_hist 95.;
          p99_us = Histogram.percentile lat_hist 99.;
          p999_us = Histogram.percentile lat_hist 99.9;
          max_us = Histogram.max_key lat_hist;
          queue_mean_us = (if requests = 0 then 0. else !queue_sum /. freq /. 1e3);
          queue_p99_us = Histogram.percentile queue_hist 99.;
          per_worker_served = Array.copy served;
        })
  in
  {
    App_sig.name = "serve";
    description = "open-loop sharded KV serving: zipfian keys, bursty Poisson arrivals";
    fetch_dominated = true;
    setup;
  }

let app = make ()
