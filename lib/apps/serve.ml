(** The served-traffic workload family (open-loop NUMA serving).

    A sharded key-value server: [nthreads] shard workers each own the keys
    congruent to their index, requests arrive by a Poisson process with
    burst episodes ({!Numa_util.Dist}), key popularity is zipfian, and a
    large logical client population is multiplexed onto the request
    stream. The trace (arrival instants, keys, clients, write flags) is
    precomputed from the run seed at setup, so a run is exactly
    reproducible; each worker then replays its share open-loop —
    {!Numa_sim.Api.sleep_until} to the next arrival instant, dequeue,
    serve — so a slow policy cannot slow the offered load down, it can
    only grow the queues. Per-request latency lands in a histogram and
    surfaces as the report's [serving] section with queue-delay
    attribution (the tail-latency lens the batch apps cannot provide).

    NUMA-wise the store is deliberately awkward: adjacent keys live on the
    same page but belong to different shards, so pages are read by every
    node and occasionally written (the [rw_mix] fraction), and a shared
    session table adds cross-node write churn. Placement policy therefore
    moves per-request service time, and under open-loop arrivals service
    inflation compounds into queueing — the p99.9 spread the serve-sweep
    experiment measures. *)

open Numa_system
module Api = Numa_sim.Api
module Engine = Numa_sim.Engine
module W = Workload
module Dist = Numa_util.Dist
module Prng = Numa_util.Prng
module Histogram = Numa_util.Histogram
module Region_attr = Numa_vm.Region_attr

let n_keys = 2048
let key_span = 8 (* words read (and possibly written) per request *)
let session_words = 512
let service_compute_ns = 15_000. (* request parsing / marshalling compute *)

let warmup_ns = 100e6
(* Arrivals start 100 ms in: each shard first walks its keys once, so the
   cold-start fault storm (zero fills, first placement decisions) is off
   the clock and no request measures its backlog position behind setup.
   The warmup does not promise a converged placement, though — each shard
   only touches every [nthreads]-th span, so a lazy policy (move-limit
   replicates a page per faulting node, on fault) finishes converging
   under live traffic, and that residual copy storm is part of the tail
   the serving section measures. Lengthening the window does not change
   the numbers; only serving accesses trigger the remaining work. *)

let default_arrival = Dist.arrival ~rate_per_s:100_000. ~burst:4. ()
let default_theta = 0.9
let default_clients = 1_000_000
let default_rw_mix = 0.1

let requests_for scale = max 400 (int_of_float (20_000. *. scale))

let us_of_ns ns = int_of_float ((ns +. 500.) /. 1_000.)

(* --- the resilient serving tier ----------------------------------------- *)

(* Request outcomes of the conservation ledger: every arrived request must
   end as exactly one of in-deadline / timed-out / shed. *)
let o_unresolved = 0
let o_in_deadline = 1
let o_timed_out = 2
let o_shed = 3

(* Circuit-breaker states, per shard worker. *)
let breaker_state_name = function 0 -> "closed" | 1 -> "open" | _ -> "half-open"

let setup_resilient sys ~eng ~obs ~profile ~(cfg : Resilience.config) ~nthreads ~n ~prng
    ~arrivals ~keys ~client_of ~writes ~assigned ~store ~sessions ~queues ~lat_hist
    ~queue_hist ~lat_sum ~queue_sum ~served ~last_done ~tids =
  let emit ev = if Numa_obs.Hub.enabled obs then Numa_obs.Hub.emit obs ev in
  (* A bare deadline spec is observe-only (SLO accounting on the unchanged
     serving path); any mechanism — retry, hedge, breaker — switches the
     deadline to an armed, cancellable timer per attempt. *)
  let enforced =
    cfg.Resilience.retry <> None || cfg.Resilience.hedge <> None
    || cfg.Resilience.breaker <> None
  in
  let deadline_ns = cfg.Resilience.deadline_ns in
  let max_attempts =
    match cfg.Resilience.retry with
    | None -> 1
    | Some rc -> rc.Resilience.max_attempts
  in
  let n_slots =
    max_attempts + (match cfg.Resilience.hedge with None -> 0 | Some _ -> 1)
  in
  (* Backoff jitter, precomputed per request at setup so that runtime
     interleaving cannot reshuffle the draws. The stream splits off the
     workload seed after the trace streams, only on resilient runs: plain
     serve draws exactly the streams it always did. *)
  let rp = Prng.split prng in
  let jitters =
    Array.init n (fun _ ->
        Array.init (max 0 (max_attempts - 1)) (fun _ -> Prng.float rp 1.0))
  in
  (* The conservation ledger. Violations are recorded the instant they
     happen (double resolve, resolve-before-arrival); the sweep adds the
     structural checks and is handed to the invariant auditor. *)
  let arrived = Array.make n false in
  let outcome = Array.make n o_unresolved in
  let cons_violations = ref [] in
  let workers_done = ref 0 in
  let resolve r o =
    if not arrived.(r) then
      cons_violations :=
        Printf.sprintf "request %d resolved before arriving" r :: !cons_violations;
    if outcome.(r) = o_unresolved then outcome.(r) <- o
    else
      cons_violations :=
        Printf.sprintf "request %d resolved twice (outcome %d, then %d)" r outcome.(r) o
        :: !cons_violations
  in
  let sweep () =
    let viols = ref [] in
    let add s = viols := s :: !viols in
    let inflight = Array.make nthreads 0 in
    let finished = !workers_done = nthreads in
    for r = 0 to n - 1 do
      (if arrived.(r) && outcome.(r) = o_unresolved then begin
         let w = keys.(r) mod nthreads in
         inflight.(w) <- inflight.(w) + 1;
         if inflight.(w) > 1 then
           add
             (Printf.sprintf "worker %d has %d requests in flight (request %d)" w
                inflight.(w) r)
       end);
      if finished then
        if not arrived.(r) then add (Printf.sprintf "request %d lost: never arrived" r)
        else if outcome.(r) = o_unresolved then
          add (Printf.sprintf "request %d lost: arrived but never resolved" r)
    done;
    (n, List.rev_append !cons_violations (List.rev !viols))
  in
  (* resilience counters *)
  let timeouts_ct = ref 0 and hedges_ct = ref 0 and hedge_wins_ct = ref 0 in
  let opens_ct = ref 0 and transitions_ct = ref 0 and failovers_ct = ref 0 in
  let attempts_started = Array.make n_slots 0 in
  let bump_attempt k =
    if k >= 1 && k <= n_slots then attempts_started.(k - 1) <- attempts_started.(k - 1) + 1
  in
  (* Per-shard circuit breakers: 0 = closed, 1 = open, 2 = half-open.
     [br_forced] remembers a node-offline forced open, so the node coming
     back half-opens the breaker immediately. *)
  let br_state = Array.make nthreads 0 in
  let br_fails = Array.make nthreads 0 in
  let br_until = Array.make nthreads 0. in
  let br_forced = Array.make nthreads (-1) in
  let br_goto w s ~until =
    if br_state.(w) <> s then begin
      incr transitions_ct;
      if s = 1 then incr opens_ct;
      emit
        (Numa_obs.Event.Breaker_transition
           {
             worker = w;
             from_state = breaker_state_name br_state.(w);
             to_state = breaker_state_name s;
           })
    end;
    br_state.(w) <- s;
    br_until.(w) <- until
  in
  let breaker_failure w ~now =
    match cfg.Resilience.breaker with
    | None -> ()
    | Some bc -> (
        match br_state.(w) with
        | 2 ->
            (* failed half-open probe: straight back to open *)
            br_fails.(w) <- 0;
            br_goto w 1 ~until:(now +. bc.Resilience.cooldown_ns)
        | 0 ->
            br_fails.(w) <- br_fails.(w) + 1;
            if br_fails.(w) >= bc.Resilience.failures then begin
              br_fails.(w) <- 0;
              br_goto w 1 ~until:(now +. bc.Resilience.cooldown_ns)
            end
        | _ -> ())
  in
  let breaker_success w =
    br_fails.(w) <- 0;
    if br_state.(w) = 2 then br_goto w 0 ~until:0.
  in
  (* Hedge delay: a multiple of the live p99 *service* time (total
     latency is queue-dominated under load and would never fit inside an
     attempt window), falling back to half the attempt budget while the
     histogram is still thin. *)
  let svc_hist = Histogram.create () in
  let hedge_delay (h : Resilience.hedge) ~tau =
    let p99 = Histogram.percentile svc_hist 99. in
    if Histogram.total svc_hist >= 32 && p99 > 0 then
      h.Resilience.factor *. (float_of_int p99 *. 1_000.)
    else tau /. 2.
  in
  for w = 0 to nthreads - 1 do
    tids.(w) <-
      System.spawn sys ~name:(Printf.sprintf "serve.%d" w) (fun ~stack_vpage:_ ->
          (* Warmup, exactly like the plain tier. *)
          let key = ref w in
          while !key < n_keys do
            W.read_range store ~lo:(!key * key_span) ~n:key_span;
            key := !key + nthreads
          done;
          W.read_word queues w;
          let cpu () = Engine.thread_cpu eng ~tid:tids.(w) in
          let now () = Engine.clock_ns eng ~cpu:(cpu ()) in
          (* One service attempt under a cancellable timer; [None] means
             the deadline fired mid-attempt and unwound it. *)
          let serve_request r ~until =
            Api.with_deadline ~until_ns:until (fun () ->
                let t_start = now () in
                let key = keys.(r) in
                W.read_range store ~lo:(key * key_span) ~n:key_span;
                if writes.(r) then W.write_range store ~lo:(key * key_span) ~n:key_span;
                W.write_word sessions (client_of.(r) mod session_words);
                Api.compute service_compute_ns;
                (t_start, now ()))
          in
          let complete r ~abs_deadline ~t_start ~t_done =
            let queue_ns = Float.max 0. (t_start -. arrivals.(r)) in
            let latency_ns = t_done -. arrivals.(r) in
            let service_ns = t_done -. t_start in
            Histogram.add lat_hist (us_of_ns latency_ns);
            Histogram.add queue_hist (us_of_ns queue_ns);
            lat_sum := !lat_sum +. latency_ns;
            queue_sum := !queue_sum +. queue_ns;
            served.(w) <- served.(w) + 1;
            if t_done > !last_done then last_done := t_done;
            Histogram.add svc_hist (us_of_ns service_ns);
            (match profile with
            | Some pr -> Numa_obs.Profile.note_request pr ~service_ns ~queue_ns
            | None -> ());
            emit
              (Numa_obs.Event.Request_served
                 {
                   client = client_of.(r);
                   key = keys.(r);
                   cpu = cpu ();
                   queue_ns;
                   service_ns;
                 });
            if t_done <= abs_deadline then begin
              resolve r o_in_deadline;
              breaker_success w
            end
            else begin
              (* served, but late: an SLO miss for the ledger and the
                 breaker, still a completion for the serving section *)
              resolve r o_timed_out;
              breaker_failure w ~now:t_done
            end
          in
          List.iter
            (fun r ->
              Api.sleep_until ~ns:arrivals.(r);
              emit
                (Numa_obs.Event.Request_arrived
                   { client = client_of.(r); key = keys.(r); worker = w });
              (* Dequeue; also refreshes the CPU clock, stale after the park. *)
              W.read_word queues w;
              arrived.(r) <- true;
              let abs_deadline = arrivals.(r) +. deadline_ns in
              if not enforced then begin
                bump_attempt 1;
                match serve_request r ~until:infinity with
                | Some (t_start, t_done) -> complete r ~abs_deadline ~t_start ~t_done
                | None -> assert false
              end
              else
                let proceed =
                  match cfg.Resilience.breaker with
                  | Some _ when br_state.(w) = 1 ->
                      if now () < br_until.(w) then begin
                        (* open breaker: reject at the door, near-zero cost *)
                        resolve r o_shed;
                        (match profile with
                        | Some pr -> Numa_obs.Profile.note_shed pr
                        | None -> ());
                        emit
                          (Numa_obs.Event.Request_shed
                             { client = client_of.(r); key = keys.(r); worker = w });
                        false
                      end
                      else begin
                        br_goto w 2 ~until:0.;
                        true
                      end
                  | _ -> true
                in
                if proceed then begin
                  let normal_attempts = ref 0 in
                  let tau = deadline_ns /. float_of_int max_attempts in
                  let fail_final () =
                    resolve r o_timed_out;
                    breaker_failure w ~now:(now ())
                  in
                  let rec attempt k =
                    if now () >= abs_deadline then fail_final ()
                    else begin
                      incr normal_attempts;
                      bump_attempt k;
                      let t0 = now () in
                      let base_until = Float.min abs_deadline (t0 +. tau) in
                      let hedge_until =
                        match cfg.Resilience.hedge with
                        | Some h when k = 1 ->
                            let d = t0 +. hedge_delay h ~tau in
                            if d < base_until then Some d else None
                        | _ -> None
                      in
                      let until =
                        match hedge_until with Some d -> d | None -> base_until
                      in
                      match serve_request r ~until with
                      | Some (t_start, t_done) -> complete r ~abs_deadline ~t_start ~t_done
                      | None -> (
                          incr timeouts_ct;
                          (match profile with
                          | Some pr -> Numa_obs.Profile.note_timeout pr
                          | None -> ());
                          emit
                            (Numa_obs.Event.Request_timeout
                               {
                                 client = client_of.(r);
                                 key = keys.(r);
                                 cpu = cpu ();
                                 attempt = k;
                               });
                          match hedge_until with
                          | Some _ -> (
                              (* the first attempt outlived the hedge point:
                                 launch the hedged attempt with the whole
                                 remaining deadline budget *)
                              incr hedges_ct;
                              bump_attempt (k + 1);
                              emit
                                (Numa_obs.Event.Request_hedged
                                   { client = client_of.(r); key = keys.(r); cpu = cpu () });
                              let h0 = now () in
                              match serve_request r ~until:abs_deadline with
                              | Some (t_start, t_done) ->
                                  (match profile with
                                  | Some pr ->
                                      Numa_obs.Profile.note_hedge pr (t_done -. h0)
                                  | None -> ());
                                  if t_done <= abs_deadline then incr hedge_wins_ct;
                                  complete r ~abs_deadline ~t_start ~t_done
                              | None ->
                                  (match profile with
                                  | Some pr ->
                                      Numa_obs.Profile.note_hedge pr (now () -. h0)
                                  | None -> ());
                                  incr timeouts_ct;
                                  (match profile with
                                  | Some pr -> Numa_obs.Profile.note_timeout pr
                                  | None -> ());
                                  emit
                                    (Numa_obs.Event.Request_timeout
                                       {
                                         client = client_of.(r);
                                         key = keys.(r);
                                         cpu = cpu ();
                                         attempt = k + 1;
                                       });
                                  maybe_retry (k + 2))
                          | None -> maybe_retry (k + 1))
                    end
                  and maybe_retry k =
                    match cfg.Resilience.retry with
                    | Some rc when !normal_attempts < rc.Resilience.max_attempts ->
                        let tnow = now () in
                        let expo =
                          Float.min rc.Resilience.max_backoff_ns
                            (rc.Resilience.base_backoff_ns
                            *. (2. ** float_of_int (!normal_attempts - 1)))
                        in
                        let u = jitters.(r).(!normal_attempts - 1) in
                        let backoff = expo *. (1. +. (rc.Resilience.jitter *. u)) in
                        let wake = tnow +. backoff in
                        if wake >= abs_deadline then fail_final ()
                        else begin
                          (match profile with
                          | Some pr -> Numa_obs.Profile.note_backoff pr backoff
                          | None -> ());
                          emit
                            (Numa_obs.Event.Request_retry
                               {
                                 client = client_of.(r);
                                 key = keys.(r);
                                 cpu = cpu ();
                                 attempt = k;
                                 backoff_ns = backoff;
                               });
                          Api.sleep_until ~ns:wake;
                          W.read_word queues w;
                          attempt k
                        end
                    | _ -> fail_final ()
                  in
                  attempt 1
                end)
            assigned.(w);
          incr workers_done)
  done;
  (* Shard failover + breaker coupling to node faults. [home] tracks each
     worker's current home CPU; the system's own rehoming may move the
     engine thread first, but re-spreading by topology distance is the
     app's job. *)
  let home = Array.init nthreads (fun w -> Engine.thread_cpu eng ~tid:tids.(w)) in
  if enforced then
    System.set_fault_notify sys (function
      | System.Fault_node_offline node ->
          let n_cpus = (System.config sys).Numa_machine.Config.n_cpus in
          let topo = System.topo sys in
          let candidates =
            List.sort
              (fun (da, ca) (db, cb) ->
                if da = db then compare (ca : int) cb else compare (da : float) db)
              (List.filter_map
                 (fun c ->
                   if c <> node && c < n_cpus && System.node_online sys ~node:c then
                     Some (Numa_machine.Topo.fetch_ns topo ~from:node ~at:c, c)
                   else None)
                 (List.init n_cpus (fun c -> c)))
          in
          let n_cand = List.length candidates in
          let next = ref 0 in
          for w = 0 to nthreads - 1 do
            if home.(w) = node then begin
              (if n_cand > 0 then begin
                 (* spread the dead node's shards over online CPUs, nearest
                    first, round-robin *)
                 let _, target = List.nth candidates (!next mod n_cand) in
                 incr next;
                 (* [rehome] returns false when the system's own drain
                    already parked the thread on [target]; the shard's
                    home still moved off the dead node, so the failover
                    counts either way. *)
                 ignore (Engine.rehome eng ~tid:tids.(w) ~cpu:target);
                 incr failovers_ct;
                 emit
                   (Numa_obs.Event.Shard_failover
                      { worker = w; from_cpu = node; to_cpu = target });
                 home.(w) <- target
               end);
              match cfg.Resilience.breaker with
              | Some bc ->
                  (* force the shard's breaker open: shed instead of paying
                     remote misses into a drained node *)
                  br_forced.(w) <- node;
                  br_fails.(w) <- 0;
                  br_goto w 1 ~until:(Engine.now eng +. bc.Resilience.cooldown_ns)
              | None -> ()
            end
          done
      | System.Fault_node_online node ->
          for w = 0 to nthreads - 1 do
            if br_forced.(w) = node then begin
              br_forced.(w) <- -1;
              if br_state.(w) = 1 then br_goto w 2 ~until:0.
            end
          done);
  System.set_request_conservation sys sweep;
  System.set_resilience_collector sys (fun () ->
      let arrived_ct = Array.fold_left (fun a b -> if b then a + 1 else a) 0 arrived in
      let count v = Array.fold_left (fun a o -> if o = v then a + 1 else a) 0 outcome in
      let in_dl = count o_in_deadline in
      let timed = count o_timed_out in
      let shed = count o_shed in
      let first = if n > 0 then arrivals.(0) else 0. in
      let span_ns = Float.max 0. (!last_done -. first) in
      let _, viols = sweep () in
      {
        Report.res_spec = Resilience.to_string cfg;
        deadline_us = int_of_float (deadline_ns /. 1_000.);
        arrived = arrived_ct;
        served_in_deadline = in_dl;
        timed_out = timed;
        shed;
        timeouts = !timeouts_ct;
        attempts_started = Array.copy attempts_started;
        hedges = !hedges_ct;
        hedge_wins = !hedge_wins_ct;
        breaker_opens = !opens_ct;
        breaker_transitions = !transitions_ct;
        shard_failovers = !failovers_ct;
        goodput_rps = (if span_ns > 0. then float_of_int in_dl /. span_ns *. 1e9 else 0.);
        slo_pct =
          (if arrived_ct = 0 then 0. else 100. *. float_of_int in_dl /. float_of_int arrived_ct);
        conservation_violations = List.length viols;
      })

let make ?(arrival = default_arrival) ?(theta = default_theta)
    ?(clients = default_clients) ?(rw_mix = default_rw_mix) ?resilience () : App_sig.t =
  let setup sys (p : App_sig.params) =
    let eng = System.engine sys in
    let obs = System.obs sys in
    let profile = System.profile sys in
    let nthreads = p.App_sig.nthreads in
    let n = requests_for p.App_sig.scale in
    (* The synthetic trace, from the run seed: arrival instants, zipfian
       keys, client ids, write flags. Independent streams per dimension so
       changing e.g. the write mix does not reshuffle the keys. *)
    let prng = Prng.create ~seed:p.App_sig.seed in
    let arrivals = Dist.arrival_times arrival (Prng.split prng) ~n in
    Array.iteri (fun i t -> arrivals.(i) <- t +. warmup_ns) arrivals;
    let z = Dist.zipf ~n:n_keys ~theta in
    let zp = Prng.split prng in
    let keys = Array.init n (fun _ -> Dist.zipf_draw z zp) in
    let cp = Prng.split prng in
    let client_of = Array.init n (fun _ -> Prng.int cp clients) in
    let wp = Prng.split prng in
    let writes = Array.init n (fun _ -> Prng.float wp 1.0 < rw_mix) in
    (* Modulo sharding: worker w owns keys congruent to w, so the zipf head
       spreads over all shards while store pages stay node-shared. *)
    let assigned = Array.make nthreads [] in
    for r = n - 1 downto 0 do
      let w = keys.(r) mod nthreads in
      assigned.(w) <- r :: assigned.(w)
    done;
    let store =
      W.alloc_arr sys ~name:"serve.store"
        ~sharing:Region_attr.Declared_write_shared ~words:(n_keys * key_span) ()
    in
    let sessions =
      W.alloc_arr sys ~name:"serve.sessions"
        ~sharing:Region_attr.Declared_write_shared ~words:session_words ()
    in
    let queues =
      W.alloc_arr sys ~name:"serve.queues"
        ~sharing:Region_attr.Declared_write_shared ~words:(max 1 nthreads) ()
    in
    (* Measurement state, filled in by the workers and read once by the
       collector after the last thread finishes. *)
    let lat_hist = Histogram.create () in
    let queue_hist = Histogram.create () in
    let lat_sum = ref 0. in
    let queue_sum = ref 0. in
    let served = Array.make nthreads 0 in
    let last_done = ref 0. in
    let tids = Array.make nthreads (-1) in
    (match resilience with
    | None ->
        for w = 0 to nthreads - 1 do
          tids.(w) <-
            System.spawn sys ~name:(Printf.sprintf "serve.%d" w)
              (fun ~stack_vpage:_ ->
                (* Warmup: fault the shard's working set in before any request
                   is on the clock. *)
                let key = ref w in
                while !key < n_keys do
                  W.read_range store ~lo:(!key * key_span) ~n:key_span;
                  key := !key + nthreads
                done;
                W.read_word queues w;
                List.iter
                  (fun r ->
                    (* Open-loop: park to the arrival instant (a no-op when the
                       shard is already running behind — the backlog case). The
                       first sleep is also what parks the body at spawn time,
                       before [tids] is filled in. *)
                    Api.sleep_until ~ns:arrivals.(r);
                    if Numa_obs.Hub.enabled obs then
                      Numa_obs.Hub.emit obs
                        (Numa_obs.Event.Request_arrived
                           { client = client_of.(r); key = keys.(r); worker = w });
                    (* Dequeue: touch the shard's queue slot. A real reference,
                       so the CPU clock read after it is current virtual time
                       (the clock is stale right after [sleep_until]). *)
                    W.read_word queues w;
                    let tid = tids.(w) in
                    let cpu = Engine.thread_cpu eng ~tid in
                    let t_start = Engine.clock_ns eng ~cpu in
                    let key = keys.(r) in
                    W.read_range store ~lo:(key * key_span) ~n:key_span;
                    if writes.(r) then
                      W.write_range store ~lo:(key * key_span) ~n:key_span;
                    W.write_word sessions (client_of.(r) mod session_words);
                    Api.compute service_compute_ns;
                    let cpu = Engine.thread_cpu eng ~tid in
                    let t_done = Engine.clock_ns eng ~cpu in
                    let queue_ns = Float.max 0. (t_start -. arrivals.(r)) in
                    let latency_ns = t_done -. arrivals.(r) in
                    let service_ns = t_done -. t_start in
                    Histogram.add lat_hist (us_of_ns latency_ns);
                    Histogram.add queue_hist (us_of_ns queue_ns);
                    lat_sum := !lat_sum +. latency_ns;
                    queue_sum := !queue_sum +. queue_ns;
                    served.(w) <- served.(w) + 1;
                    if t_done > !last_done then last_done := t_done;
                    (match profile with
                    | Some pr -> Numa_obs.Profile.note_request pr ~service_ns ~queue_ns
                    | None -> ());
                    if Numa_obs.Hub.enabled obs then
                      Numa_obs.Hub.emit obs
                        (Numa_obs.Event.Request_served
                           { client = client_of.(r); key; cpu; queue_ns; service_ns }))
                  assigned.(w))
        done
    | Some cfg ->
        setup_resilient sys ~eng ~obs ~profile ~cfg ~nthreads ~n ~prng ~arrivals ~keys
          ~client_of ~writes ~assigned ~store ~sessions ~queues ~lat_hist ~queue_hist
          ~lat_sum ~queue_sum ~served ~last_done ~tids);
    System.set_serving_collector sys (fun () ->
        let requests = Histogram.total lat_hist in
        let first = if n > 0 then arrivals.(0) else 0. in
        let span_ns = Float.max 0. (!last_done -. first) in
        let freq = float_of_int requests in
        {
          Report.requests;
          arrival_spec = Dist.arrival_to_string arrival;
          zipf_theta = theta;
          clients;
          write_fraction = rw_mix;
          span_ns;
          throughput_rps = (if span_ns > 0. then freq /. span_ns *. 1e9 else 0.);
          mean_us = (if requests = 0 then 0. else !lat_sum /. freq /. 1e3);
          p50_us = Histogram.percentile lat_hist 50.;
          p95_us = Histogram.percentile lat_hist 95.;
          p99_us = Histogram.percentile lat_hist 99.;
          p999_us = Histogram.percentile lat_hist 99.9;
          max_us = Histogram.max_key lat_hist;
          queue_mean_us = (if requests = 0 then 0. else !queue_sum /. freq /. 1e3);
          queue_p99_us = Histogram.percentile queue_hist 99.;
          per_worker_served = Array.copy served;
        })
  in
  {
    App_sig.name = "serve";
    description = "open-loop sharded KV serving: zipfian keys, bursty Poisson arrivals";
    fetch_dominated = true;
    setup;
  }

let app = make ()
