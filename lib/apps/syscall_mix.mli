(** Compute + stack-touching system calls: the Unix-master study of
    section 4.6. *)

val app : App_sig.t
