(** Write-shared warm-up followed by a long private phase: the
    pin-reconsideration study (footnote 4 / section 5). *)

val app : App_sig.t
