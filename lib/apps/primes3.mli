(** Primes3: parallel Sieve of Eratosthenes over a shared bit vector
    (section 3.2) — the paper's heavy legitimate write-sharer, with the
    worst alpha and the largest NUMA-management overhead. *)

val limit : float -> int

val app : App_sig.t

val app_pragma : App_sig.t
(** The sieve with its shared vectors marked noncacheable up front
    (the section 4.3 pragma study). *)
