(** PlyTrace (after Garcia): rendering of synthetic images whose surfaces
    are approximated by polygons (section 3.2).

    Floating-point intensive. The parallel phase uses a work pile — the
    queue of lists of polygons to be rendered. Polygon descriptions are
    written once and then only read (replicated read-only); per-thread
    scratch (edge tables, spans) is private; the output image is written by
    whichever thread renders each polygon, so image pages are writably
    shared and drift into global memory. *)

open Numa_system
module Api = Numa_sim.Api
module W = Workload
module Region_attr = Numa_vm.Region_attr

let n_polygons scale = max 40 (int_of_float (2400. *. scale))

let poly_words = 40 (* vertices, normal, material *)
let image_words = 64 * 1024 (* 256 x 256 pixels *)
let span_words = 30 (* pixels written per polygon *)
let scratch_refs = 600 (* private edge-table traffic per polygon *)
let flops_per_poly = 420.

let app : App_sig.t =
  let setup sys (p : App_sig.params) =
    let n_polys = n_polygons p.App_sig.scale in
    let db =
      W.alloc_arr sys ~name:"plytrace.polygons" ~sharing:Region_attr.Declared_read_shared
        ~words:(n_polys * poly_words) ()
    in
    let image =
      W.alloc_arr sys ~name:"plytrace.image" ~sharing:Region_attr.Declared_write_shared
        ~words:image_words ()
    in
    (* Where each polygon lands in the image is a property of the scene,
       not of scheduling: derive it deterministically from the seed. *)
    let prng = Numa_util.Prng.create ~seed:p.App_sig.seed in
    let spans =
      Array.init n_polys (fun _ -> Numa_util.Prng.int prng (image_words - span_words))
    in
    let barrier = System.make_barrier sys ~name:"plytrace.init" ~parties:p.App_sig.nthreads in
    let pile = W.make_workpile sys ~name:"plytrace.queue" ~total:n_polys ~chunk:4 in
    for i = 0 to p.App_sig.nthreads - 1 do
      let scratch =
        W.alloc_arr sys
          ~name:(Printf.sprintf "plytrace.scratch.%d" i)
          ~sharing:Region_attr.Declared_private ~words:512 ()
      in
      ignore
        (System.spawn sys ~name:(Printf.sprintf "plytrace.%d" i)
           (fun ~stack_vpage:_ ->
             (* Scene setup is parallel: each thread fills its share of the
                polygon database. *)
             let lo_i, hi_i =
               W.static_share ~total:n_polys ~nthreads:p.App_sig.nthreads ~tid:i
             in
             if hi_i > lo_i then
               W.write_range db ~lo:(lo_i * poly_words) ~n:((hi_i - lo_i) * poly_words);
             Api.barrier barrier;
             let render poly =
               W.read_range db ~lo:(poly * poly_words) ~n:poly_words;
               W.read_range scratch ~lo:0 ~n:(scratch_refs / 2);
               W.write_range scratch ~lo:0 ~n:(scratch_refs / 2);
               Api.compute (flops_per_poly *. W.Cost.flop_ns);
               W.write_range image ~lo:spans.(poly) ~n:span_words
             in
             let rec work () =
               match W.workpile_take pile with
               | None -> ()
               | Some (lo, hi) ->
                   for poly = lo to hi do
                     render poly
                   done;
                   work ()
             in
             work ()))
    done
  in
  {
    App_sig.name = "plytrace";
    description = "polygon renderer; work pile, replicated scene, shared image";
    fetch_dominated = false;
    setup;
  }
