(** Primes1: trial division by all odd numbers up to the square root
    (section 3.2). Stack-dominated references, expensive division. *)

val limit : float -> int
(** Candidate limit for a given scale (exposed for tests). *)

val app : App_sig.t
