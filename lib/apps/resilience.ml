(* Resilience policy configuration for the serve app: per-request
   deadlines, retry backoff, hedging and circuit breakers. Pure data +
   spec parsing — the mechanisms live in Serve, the knobs here. *)

type retry = {
  max_attempts : int;
  base_backoff_ns : float;
  max_backoff_ns : float;
  jitter : float;
}

type hedge = { factor : float }
type breaker = { failures : int; cooldown_ns : float }

type config = {
  deadline_ns : float;
  retry : retry option;
  hedge : hedge option;
  breaker : breaker option;
}

let default_deadline_us = 5_000
let default_retry = { max_attempts = 3; base_backoff_ns = 0.2e6; max_backoff_ns = 2e6; jitter = 0.5 }
let default_hedge = { factor = 2. }
let default_breaker = { failures = 8; cooldown_ns = 10e6 }

let make ?(deadline_us = default_deadline_us) ?retry ?hedge ?breaker () =
  if deadline_us <= 0 then
    invalid_arg "Resilience.make: deadline must be a positive microsecond count";
  { deadline_ns = float_of_int deadline_us *. 1_000.; retry; hedge; breaker }

(* --- spec parsing ------------------------------------------------------- *)

let err fmt = Format.kasprintf (fun s -> Error s) fmt

let parse_pos_float ~what s =
  match float_of_string_opt s with
  | Some f when f > 0. && Float.is_finite f -> Ok f
  | Some _ | None -> err "%s must be a positive number, got %S" what s

let retry_of_string s =
  match String.split_on_char ':' s with
  | [ n; base; max; jitter ] -> (
      match int_of_string_opt n with
      | Some attempts when attempts >= 1 -> (
          match parse_pos_float ~what:"retry base backoff (ms)" base with
          | Error _ as e -> e
          | Ok base_ms -> (
              match parse_pos_float ~what:"retry max backoff (ms)" max with
              | Error _ as e -> e
              | Ok max_ms ->
                  if max_ms < base_ms then
                    err "retry max backoff (%g ms) must be >= the base backoff (%g ms)"
                      max_ms base_ms
                  else
                    (match float_of_string_opt jitter with
                    | Some j when j >= 0. && j <= 1. ->
                        Ok
                          {
                            max_attempts = attempts;
                            base_backoff_ns = base_ms *. 1e6;
                            max_backoff_ns = max_ms *. 1e6;
                            jitter = j;
                          }
                    | Some _ | None ->
                        err "retry jitter must be a float in [0,1], got %S" jitter)))
      | Some _ | None -> err "retry attempts must be an int >= 1, got %S" n)
  | _ -> Error "retry spec must be ATTEMPTS:BASE_MS:MAX_MS:JITTER, e.g. 3:0.2:2:0.5"

let hedge_of_string s =
  match parse_pos_float ~what:"hedge factor" s with
  | Ok factor -> Ok { factor }
  | Error _ as e -> e

let breaker_of_string s =
  match String.split_on_char ':' s with
  | [ n; cooldown ] -> (
      match int_of_string_opt n with
      | Some failures when failures >= 1 -> (
          match parse_pos_float ~what:"breaker cooldown (ms)" cooldown with
          | Ok cooldown_ms -> Ok { failures; cooldown_ns = cooldown_ms *. 1e6 }
          | Error _ as e -> e)
      | Some _ | None -> err "breaker failure threshold must be an int >= 1, got %S" n)
  | _ -> Error "breaker spec must be FAILURES:COOLDOWN_MS, e.g. 8:10"

(* --- canonical rendering ------------------------------------------------ *)

let retry_to_string r =
  Printf.sprintf "%d:%g:%g:%g" r.max_attempts (r.base_backoff_ns /. 1e6)
    (r.max_backoff_ns /. 1e6) r.jitter

let hedge_to_string h = Printf.sprintf "%g" h.factor
let breaker_to_string b = Printf.sprintf "%d:%g" b.failures (b.cooldown_ns /. 1e6)

let to_string c =
  String.concat ","
    (Printf.sprintf "deadline=%dus" (int_of_float (c.deadline_ns /. 1_000.))
    :: List.filter_map
         (fun x -> x)
         [
           Option.map (fun r -> "retry=" ^ retry_to_string r) c.retry;
           Option.map (fun h -> "hedge=" ^ hedge_to_string h) c.hedge;
           Option.map (fun b -> "breaker=" ^ breaker_to_string b) c.breaker;
         ])
