(** A load-balancing workload for the section 4.7 study.

    "For load balancing in the presence of longer-lived compute-bound
    applications, we will need to migrate processes to new homes and move
    their local pages with them." This program makes the need concrete:
    one thread is repeatedly re-homed between two processors (as a load
    balancer would), working on its private pages between hops.

    Without kernel page migration, every hop makes each private page fault
    across — and each crossing counts against the move threshold, so after
    a few hops the thread's {e private} pages are pinned in global memory
    for good. With kernel page migration ([System.migrate_pages]) the
    pages follow the thread without touching its placement history. *)

open Numa_system
module Api = Numa_sim.Api
module W = Workload
module Region_attr = Numa_vm.Region_attr

type variant = Faults_only | Kernel_migration

let make variant : App_sig.t =
  let setup sys (p : App_sig.params) =
    let hops = 8 in
    let work_per_phase = max 1 (int_of_float (40. *. p.App_sig.scale)) in
    let data =
      W.alloc_arr sys ~name:"rebalance.private" ~sharing:Region_attr.Declared_private
        ~words:(4 * 512)
        ()
    in
    ignore
      (System.spawn sys ~cpu:0 ~name:"migrant" (fun ~stack_vpage:_ ->
           for hop = 0 to hops - 1 do
             let here = hop mod 2 in
             for _round = 1 to work_per_phase do
               W.write_range data ~lo:0 ~n:(4 * 512);
               W.read_range data ~lo:0 ~n:(4 * 512);
               Api.compute 500_000.
             done;
             if hop < hops - 1 then begin
               let next = (here + 1) mod 2 in
               Api.migrate ~cpu:next;
               match variant with
               | Kernel_migration -> ignore (System.migrate_pages sys ~src:here ~dst:next)
               | Faults_only -> ()
             end
           done));
    (* A second, stationary thread keeps the other CPUs honest (and makes
       single-CPU T_local runs meaningful). *)
    if p.App_sig.nthreads > 1 then
      ignore
        (System.spawn sys ~cpu:(min 2 (p.App_sig.nthreads - 1)) ~name:"resident"
           (fun ~stack_vpage ->
             for _round = 1 to hops * work_per_phase do
               W.linkage ~stack_vpage ~refs:256;
               Api.compute 500_000.
             done))
  in
  let name, description =
    match variant with
    | Faults_only ->
        ( "rebalance",
          "a thread re-homed by a load balancer; pages bounce by faulting" )
    | Kernel_migration ->
        ( "rebalance-migrate",
          "the same thread with kernel page migration moving its pages along" )
  in
  { App_sig.name; description; fetch_dominated = false; setup }

let app = make Faults_only
let app_migrate = make Kernel_migration
