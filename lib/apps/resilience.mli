(** Resilience policy knobs for the serve app.

    Pure configuration: per-request deadline, retry backoff, hedged
    second attempts and per-shard circuit breakers. The mechanisms —
    cancellable virtual-time timers, the attempt loop, breaker state
    machines and shard failover — live in {!Serve}; this module only
    carries the numbers and parses/prints the CLI spec syntax.

    Everything is deterministic: the only randomness a config induces is
    backoff jitter, drawn from a {!Numa_util.Prng} stream split off the
    workload seed, so the same seed reproduces the same run byte for
    byte. *)

type retry = {
  max_attempts : int;  (** total attempts including the first; >= 1 *)
  base_backoff_ns : float;  (** backoff before attempt 2 *)
  max_backoff_ns : float;  (** exponential backoff cap *)
  jitter : float;
      (** multiplicative jitter in [0,1]: the backoff is scaled by
          [1 + jitter * u] with [u] uniform in [0,1) per retry *)
}

type hedge = {
  factor : float;
      (** the hedged second attempt launches after [factor] times the
          live p99 service-latency estimate (falling back to half the
          deadline while the histogram is still empty) *)
}

type breaker = {
  failures : int;  (** consecutive failures that trip the breaker open *)
  cooldown_ns : float;  (** open duration before the half-open probe *)
}

type config = {
  deadline_ns : float;  (** per-request SLO deadline, from arrival *)
  retry : retry option;
  hedge : hedge option;
  breaker : breaker option;
}

val default_deadline_us : int
val default_retry : retry
val default_hedge : hedge
val default_breaker : breaker

val make :
  ?deadline_us:int -> ?retry:retry -> ?hedge:hedge -> ?breaker:breaker -> unit -> config
(** Raises [Invalid_argument] on a non-positive deadline. *)

val retry_of_string : string -> (retry, string) result
(** Parse ["ATTEMPTS:BASE_MS:MAX_MS:JITTER"] (e.g. ["3:0.2:2:0.5"]);
    errors name the offending field. *)

val hedge_of_string : string -> (hedge, string) result
(** Parse ["FACTOR"], a positive float. *)

val breaker_of_string : string -> (breaker, string) result
(** Parse ["FAILURES:COOLDOWN_MS"] (e.g. ["8:10"]). *)

val retry_to_string : retry -> string
val hedge_to_string : hedge -> string
val breaker_to_string : breaker -> string

val to_string : config -> string
(** Canonical one-line spec, echoed verbatim in
    {!Numa_system.Report.resilience} ([res_spec]); parseable back with
    the [*_of_string] functions field by field. *)
