open Numa_system
module Api = Numa_sim.Api
module Region_attr = Numa_vm.Region_attr

module Cost = struct
  let loop_ns = 1_000.
  let int_mul_ns = 3_500.
  let trial_div_ns = 38_000.
  let prime_div_ns = 10_000.
  let flop_ns = 1_000.
  let call_ns = 2_000.
end

type arr = { region : System.region; words : int; words_per_page : int }

let alloc_arr sys ?pragma ?(kind = Region_attr.Data) ~name ~sharing ~words () =
  if words <= 0 then invalid_arg "Workload.alloc_arr: words must be positive";
  let words_per_page = (System.config sys).Numa_machine.Config.page_size_words in
  let pages = (words + words_per_page - 1) / words_per_page in
  let region = System.alloc_region sys ?pragma ~name ~kind ~sharing ~pages () in
  { region; words; words_per_page }

let vpage_of a i =
  if i < 0 || i >= a.words then invalid_arg "Workload.vpage_of: index out of range";
  a.region.System.base_vpage + (i / a.words_per_page)

let n_pages a = a.region.System.pages

let read_word a i = Api.read (vpage_of a i)
let write_word a ?value i = Api.write ?value (vpage_of a i)

(* Visit the pages covering [lo, lo+n) in order, issuing one batched
   operation per page. *)
let iter_page_batches a ~lo ~n f =
  if n < 0 || lo < 0 || lo + n > a.words then
    invalid_arg "Workload: range out of bounds";
  let rec go i remaining =
    if remaining > 0 then begin
      let in_page = a.words_per_page - (i mod a.words_per_page) in
      let count = min remaining in_page in
      f (vpage_of a i) count;
      go (i + count) (remaining - count)
    end
  in
  go lo n

let read_range a ~lo ~n = iter_page_batches a ~lo ~n (fun vpage count -> Api.read ~count vpage)

let write_range ?value a ~lo ~n =
  iter_page_batches a ~lo ~n (fun vpage count -> Api.write ~count ?value vpage)

(* Strided visits: group consecutive elements that fall on the same page.
   With stride >= words_per_page every element is its own batch. *)
let iter_stride_batches a ~lo ~n ~stride f =
  if stride <= 0 then invalid_arg "Workload: stride must be positive";
  if n < 0 then invalid_arg "Workload: negative count";
  if n > 0 && (lo < 0 || lo + ((n - 1) * stride) >= a.words) then
    invalid_arg "Workload: stride range out of bounds";
  let rec go i remaining =
    if remaining > 0 then begin
      let vpage = vpage_of a i in
      let rec count_here k idx =
        if k < remaining && vpage_of a idx = vpage then count_here (k + 1) (idx + stride)
        else k
      in
      let count = count_here 1 (i + stride) in
      f vpage count;
      go (i + (count * stride)) (remaining - count)
    end
  in
  go lo n

let read_stride a ~lo ~n ~stride =
  iter_stride_batches a ~lo ~n ~stride (fun vpage count -> Api.read ~count vpage)

let write_stride ?value a ~lo ~n ~stride =
  iter_stride_batches a ~lo ~n ~stride (fun vpage count -> Api.write ~count ?value vpage)

let linkage ~stack_vpage ~refs =
  if refs > 0 then begin
    let stores = refs / 2 in
    let fetches = refs - stores in
    if stores > 0 then Api.write ~count:stores stack_vpage;
    Api.read ~count:fetches stack_vpage
  end

type workpile = {
  lock : Numa_sim.Sync.lock;
  counter_vpage : int;
  total : int;
  chunk : int;
  mutable next : int;
}

let make_workpile sys ~name ~total ~chunk =
  if total < 0 || chunk <= 0 then invalid_arg "Workload.make_workpile: bad sizes";
  let counter =
    System.alloc_region sys
      ~name:(name ^ ".counter")
      ~kind:Region_attr.Sync ~sharing:Region_attr.Declared_write_shared ~pages:1 ()
  in
  {
    lock = System.make_lock sys ~name:(name ^ ".lock");
    counter_vpage = counter.System.base_vpage;
    total;
    chunk;
    next = 0;
  }

let workpile_take wp =
  Api.with_lock wp.lock (fun () ->
      let lo = Api.read_value wp.counter_vpage in
      ignore lo;
      if wp.next >= wp.total then None
      else begin
        let lo = wp.next in
        let hi = min (lo + wp.chunk) wp.total - 1 in
        wp.next <- hi + 1;
        Api.write ~value:wp.next wp.counter_vpage;
        Some (lo, hi)
      end)

let static_share ~total ~nthreads ~tid =
  if nthreads <= 0 || tid < 0 || tid >= nthreads then
    invalid_arg "Workload.static_share: bad thread index";
  let base = total / nthreads and extra = total mod nthreads in
  let lo = (tid * base) + min tid extra in
  let len = base + if tid < extra then 1 else 0 in
  (lo, lo + len)
