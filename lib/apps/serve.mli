(** Open-loop served-traffic workload: sharded key-value serving under a
    deterministic synthetic arrival process (Poisson with burst episodes,
    zipfian key popularity, a large multiplexed client population). Fills
    the report's [serving] section with latency percentiles and
    queue-delay attribution; see docs/WORKLOADS.md for the family's
    design contract. *)

val requests_for : float -> int
(** Number of requests a run at the given [--scale] replays. *)

val make :
  ?arrival:Numa_util.Dist.arrival ->
  ?theta:float ->
  ?clients:int ->
  ?rw_mix:float ->
  unit ->
  App_sig.t
(** A serve app instance. [arrival] is the open-loop process (default
    100k req/s with 4x bursts), [theta] the zipf skew (default 0.9),
    [clients] the logical client population (default 1e6), [rw_mix] the
    fraction of requests that write their object (default 0.1). *)

val app : App_sig.t
(** The default instance, registered as ["serve"]. *)
