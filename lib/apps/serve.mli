(** Open-loop served-traffic workload: sharded key-value serving under a
    deterministic synthetic arrival process (Poisson with burst episodes,
    zipfian key popularity, a large multiplexed client population). Fills
    the report's [serving] section with latency percentiles and
    queue-delay attribution; see docs/WORKLOADS.md for the family's
    design contract. *)

val requests_for : float -> int
(** Number of requests a run at the given [--scale] replays. *)

val make :
  ?arrival:Numa_util.Dist.arrival ->
  ?theta:float ->
  ?clients:int ->
  ?rw_mix:float ->
  ?resilience:Resilience.config ->
  unit ->
  App_sig.t
(** A serve app instance. [arrival] is the open-loop process (default
    100k req/s with 4x bursts), [theta] the zipf skew (default 0.9),
    [clients] the logical client population (default 1e6), [rw_mix] the
    fraction of requests that write their object (default 0.1).

    [resilience] arms the resilient serving tier: per-request deadlines
    (cancellable virtual-time timers), optional retries with jittered
    exponential backoff, an optional hedged second attempt after a
    p99-derived delay, optional per-shard circuit breakers with
    node-fault coupling and shard failover, plus the request-conservation
    sweep and the report's [resilience] section. A config with no
    mechanisms (only a deadline) is observe-only: the serving path is the
    plain tier's, with outcomes classified against the deadline. When
    omitted, runs are byte-identical to earlier releases. *)

val app : App_sig.t
(** The default instance, registered as ["serve"]. *)
