(** Gfetch: pure shared-memory fetching, the paper's alpha = 0 / beta = 1
    extreme (section 3.2); gamma approaches the G/L fetch ratio. *)

val app : App_sig.t
