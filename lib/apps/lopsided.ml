(** A lopsided-sharing workload for the remote-reference study
    (section 4.4).

    One producer updates a status buffer continuously; the other threads
    read it only occasionally. Under the normal policy the buffer is
    writably shared and ends up pinned in global memory, so the producer
    pays global latency for every store. With the [Homed] pragma the buffer
    lives in the producer's local memory: the producer runs at local speed
    and the occasional consumers pay remote latency — profitable exactly
    when the reference pattern is lopsided enough, the question the paper
    leaves open. *)

open Numa_system
module Api = Numa_sim.Api
module W = Workload
module Region_attr = Numa_vm.Region_attr

let producer_writes scale = max 100 (int_of_float (60_000. *. scale))
let consumer_reads scale = max 10 (int_of_float (1_500. *. scale))

let make ?pragma () : App_sig.t =
  let setup sys (p : App_sig.params) =
    let buffer =
      W.alloc_arr sys ?pragma ~name:"lopsided.status"
        ~sharing:Region_attr.Declared_write_shared ~words:1024 ()
    in
    let writes = producer_writes p.App_sig.scale in
    let reads = consumer_reads p.App_sig.scale in
    for i = 0 to p.App_sig.nthreads - 1 do
      ignore
        (System.spawn sys ~name:(Printf.sprintf "lopsided.%d" i)
           (fun ~stack_vpage:_ ->
             if i = 0 then
               (* The producer: a store burst and a little bookkeeping per
                  iteration. *)
               for _it = 1 to writes / 64 do
                 W.write_range buffer ~lo:0 ~n:64;
                 Api.compute 50_000.
               done
             else
               (* Consumers: occasional polls of the status buffer. *)
               for _it = 1 to reads / 16 do
                 W.read_range buffer ~lo:0 ~n:16;
                 Api.compute 2_000_000.
               done))
    done
  in
  let name, description =
    match pragma with
    | None -> ("lopsided", "one hot writer, occasional readers; policy pins it global")
    | Some _ ->
        ( "lopsided-homed",
          "the same buffer homed in the producer's local memory (remote reads)" )
  in
  { App_sig.name; description; fetch_dominated = false; setup }

let app = make ()
let app_homed = make ~pragma:(Region_attr.Homed 0) ()
