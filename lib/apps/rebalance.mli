(** A thread repeatedly re-homed by a load balancer: the section 4.7
    page-migration study, with fault-driven page movement vs kernel page
    migration. *)

val app : App_sig.t
val app_migrate : App_sig.t
