(** Interface every application program implements.

    [setup] allocates the program's memory regions and spawns its threads
    against a fresh {!Numa_system.System.t}; the caller then runs the
    system. Programs must perform the same total work regardless of the
    thread count — the requirement of the paper's evaluation method
    (section 3.1) — so that T_local (1 thread, 1 CPU) is comparable with
    the multiprocessor runs. *)

type params = {
  nthreads : int;
  scale : float;  (** problem-size multiplier; 1.0 = the default size *)
  seed : int64;  (** drives any randomised workload structure *)
}

val default_params : params
(** 7 threads (the paper's Table 4 machine), scale 1.0. *)

type t = {
  name : string;
  description : string;
  fetch_dominated : bool;
      (** true for programs that do almost all fetches and no stores; the
          model then uses the G/L fetch ratio 2.3 instead of the mixed 2.0
          (Table 3, footnote 3) *)
  setup : Numa_system.System.t -> params -> unit;
}
