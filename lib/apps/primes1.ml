(** Primes1 (after Beck & Olien): trial division of each odd candidate by
    all odd numbers up to its square root (section 3.2).

    Computes heavily — division is expensive on the ACE — and most memory
    references are subroutine-linkage stack traffic, which is thread
    private; alpha is essentially 1 and beta small. Found primes are
    appended to a shared output vector under a lock, but far too rarely to
    matter. *)

open Numa_system
module Api = Numa_sim.Api
module W = Workload
module Region_attr = Numa_vm.Region_attr

let limit scale = max 1_000 (int_of_float (60_000. *. scale))

let app : App_sig.t =
  let setup sys (p : App_sig.params) =
    let limit = limit p.App_sig.scale in
    let n_candidates = (limit - 3 + 2) / 2 in
    let primes = Primes_util.primes_upto limit in
    let output =
      W.alloc_arr sys ~name:"primes1.output" ~sharing:Region_attr.Declared_write_shared
        ~words:(max 1 (Array.length primes)) ()
    in
    let out_lock = System.make_lock sys ~name:"primes1.outlock" in
    let out_index = ref 0 in
    let pile = W.make_workpile sys ~name:"primes1.alloc" ~total:n_candidates ~chunk:200 in
    for i = 0 to p.App_sig.nthreads - 1 do
      ignore
        (System.spawn sys ~name:(Printf.sprintf "primes1.%d" i)
           (fun ~stack_vpage ->
             (* Found primes are buffered and appended to the shared vector
                in batches, keeping the critical section rare. *)
             let buffered = ref 0 in
             let flush () =
               if !buffered > 0 then begin
                 let n = !buffered in
                 buffered := 0;
                 Api.with_lock out_lock (fun () ->
                     let lo = min !out_index (output.W.words - n - 1) in
                     out_index := !out_index + n;
                     W.write_range output ~lo:(max 0 lo) ~n)
               end
             in
             let try_candidate idx =
               let n = 3 + (2 * idx) in
               (* Divide by 3, 5, 7, ... up to sqrt n; stop early on the
                  first divisor, as the real program does. *)
               let root = Primes_util.isqrt n in
               let rec first_divisor d = if d > root then None
                 else if n mod d = 0 then Some d
                 else first_divisor (d + 2)
               in
               let divisor = if n < 9 then None else first_divisor 3 in
               let divisions =
                 match divisor with
                 | Some d -> (d - 3) / 2 + 1
                 | None -> if n < 9 then 1 else ((root - 3) / 2) + 1
               in
               W.linkage ~stack_vpage ~refs:(4 * divisions);
               Api.compute
                 (float_of_int divisions *. (W.Cost.trial_div_ns +. W.Cost.call_ns));
               if divisor = None then begin
                 incr buffered;
                 if !buffered >= 64 then flush ()
               end
             in
             let rec work () =
               match W.workpile_take pile with
               | None -> ()
               | Some (lo, hi) ->
                   for idx = lo to hi do
                     try_candidate idx
                   done;
                   work ()
             in
             work ();
             flush ()))
    done
  in
  {
    App_sig.name = "primes1";
    description = "trial division by all odd numbers; stack-dominated references";
    fetch_dominated = false;
    setup;
  }
