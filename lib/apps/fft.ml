(** FFT: EPEX-style two-dimensional fast Fourier transform of an n x n
    array of complex floats (section 3.2; the paper used 256 x 256).

    EPEX FORTRAN segregates private and shared data, and Baylor & Rathi
    found ~95% of the fft's references private. We reproduce the structure:
    each thread transforms whole rows (then, after a barrier, whole
    columns) by copying them into a private workspace, running the
    butterfly passes there against a replicated read-only twiddle table,
    and writing the result back to the shared array. The column phase makes
    the shared array writably shared, pinning it. *)

open Numa_system
module Api = Numa_sim.Api
module W = Workload
module Region_attr = Numa_vm.Region_attr

let dimension scale =
  (* Power of two near 128 * sqrt(scale), floor 16. *)
  let target = 256. *. sqrt scale in
  let rec fit n = if float_of_int (n * 2) <= target then fit (n * 2) else n in
  max 16 (fit 16)

let log2i n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n / 2) in
  go 0 n

(* EPEX FORTRAN executes many more instructions and temporaries per
   butterfly than the idealised kernel (preprocessor-generated indexing,
   unoptimised array accesses). This factor scales the private reference
   counts and the computation together, stretching run time towards the
   paper's (T_numa = 449 s for 256x256) without changing the reference
   mix — alpha and beta are ratios and are unaffected. *)
let epex_factor = 16

let app : App_sig.t =
  let setup sys (p : App_sig.params) =
    let n = dimension p.App_sig.scale in
    let words = 2 * n * n (* re + im *) in
    let data =
      W.alloc_arr sys ~name:"fft.data" ~sharing:Region_attr.Declared_write_shared ~words ()
    in
    let twiddle =
      W.alloc_arr sys ~name:"fft.twiddle" ~sharing:Region_attr.Declared_read_shared
        ~words:n ()
    in
    let barrier = System.make_barrier sys ~name:"fft.phase" ~parties:p.App_sig.nthreads in
    let passes = log2i n in
    for i = 0 to p.App_sig.nthreads - 1 do
      let workspace =
        W.alloc_arr sys
          ~name:(Printf.sprintf "fft.workspace.%d" i)
          ~sharing:Region_attr.Declared_private ~words:(2 * n) ()
      in
      ignore
        (System.spawn sys ~name:(Printf.sprintf "fft.%d" i)
           (fun ~stack_vpage:_ ->
             (* One-dimensional FFT of the private workspace: per pass,
                every element is fetched and stored, half the elements
                consume a twiddle fetch, and each butterfly is ~10 flops. *)
             let fft_private () =
               for _pass = 1 to passes do
                 for _rep = 1 to epex_factor do
                   W.read_range workspace ~lo:0 ~n:(2 * n);
                   W.write_range workspace ~lo:0 ~n:(2 * n);
                   W.read_range twiddle ~lo:0 ~n:(n / 2)
                 done;
                 Api.compute
                   (float_of_int (epex_factor * (n / 2)) *. 7. *. W.Cost.flop_ns)
               done
             in
             (* Initialisation: each thread fills its own rows (EPEX DO-loop
                style); thread 0 fills the twiddle table. *)
             let lo_i, hi_i = W.static_share ~total:n ~nthreads:p.App_sig.nthreads ~tid:i in
             W.write_range data ~lo:(lo_i * 2 * n) ~n:((hi_i - lo_i) * 2 * n);
             if i = 0 then W.write_range twiddle ~lo:0 ~n;
             Api.barrier barrier;
             (* Row phase: rows are contiguous (2n words each). *)
             let lo_r, hi_r = W.static_share ~total:n ~nthreads:p.App_sig.nthreads ~tid:i in
             for row = lo_r to hi_r - 1 do
               W.read_range data ~lo:(row * 2 * n) ~n:(2 * n);
               W.write_range workspace ~lo:0 ~n:(2 * n);
               fft_private ();
               W.read_range workspace ~lo:0 ~n:(2 * n);
               W.write_range data ~lo:(row * 2 * n) ~n:(2 * n)
             done;
             Api.barrier barrier;
             (* Column phase: column elements are 2n words apart. *)
             let lo_c, hi_c = W.static_share ~total:n ~nthreads:p.App_sig.nthreads ~tid:i in
             for col = lo_c to hi_c - 1 do
               W.read_stride data ~lo:(2 * col) ~n ~stride:(2 * n);
               W.write_range workspace ~lo:0 ~n:(2 * n);
               fft_private ();
               W.read_range workspace ~lo:0 ~n:(2 * n);
               W.write_stride data ~lo:(2 * col) ~n ~stride:(2 * n)
             done))
    done
  in
  {
    App_sig.name = "fft";
    description = "EPEX-style 2D FFT; ~95% private references, shared array pins";
    fetch_dominated = false;
    setup;
  }
