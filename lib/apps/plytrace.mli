(** PlyTrace: polygon renderer with a work-pile queue (section 3.2):
    replicated scene data, private scratch, writably-shared image. *)

val app : App_sig.t
