(** A phase-shifting workload for the pin-reconsideration study
    (footnote 4 / section 5).

    Phase 1 writes a set of pages from every thread, driving them over the
    move threshold so the default policy pins them. Phase 2 then partitions
    the same pages among the threads and hammers them privately for a long
    time. [Move_limit] leaves the pages in global memory forever; the
    [Reconsider] policy un-pins them once the pin ages out, letting phase 2
    run at local speed. *)

open Numa_system
module Api = Numa_sim.Api
module W = Workload
module Region_attr = Numa_vm.Region_attr

let app : App_sig.t =
  let setup sys (p : App_sig.params) =
    let config = System.config sys in
    let wpp = config.Numa_machine.Config.page_size_words in
    let pages_per_thread = 2 in
    let n_pages = pages_per_thread * p.App_sig.nthreads in
    let data =
      W.alloc_arr sys ~name:"phased.data" ~sharing:Region_attr.Declared_write_shared
        ~words:(n_pages * wpp) ()
    in
    let phase2_rounds = max 1 (int_of_float (60. *. p.App_sig.scale)) in
    let barrier = System.make_barrier sys ~name:"phased.phase" ~parties:p.App_sig.nthreads in
    for i = 0 to p.App_sig.nthreads - 1 do
      ignore
        (System.spawn sys ~name:(Printf.sprintf "phased.%d" i)
           (fun ~stack_vpage:_ ->
             (* Phase 1: everyone writes every page, repeatedly. *)
             for _round = 1 to 8 do
               for page = 0 to n_pages - 1 do
                 Api.write ~count:4 (W.vpage_of data (page * wpp))
               done;
               Api.barrier barrier
             done;
             Api.barrier barrier;
             (* Phase 2: strictly private access to this thread's share. *)
             for _round = 1 to phase2_rounds do
               for k = 0 to pages_per_thread - 1 do
                 let page = (i * pages_per_thread) + k in
                 let vpage = W.vpage_of data (page * wpp) in
                 Api.write ~count:256 vpage;
                 Api.read ~count:256 vpage
               done
             done))
    done
  in
  {
    App_sig.name = "phased";
    description = "write-shared warm-up, then long private phase (reconsideration study)";
    fetch_dominated = false;
    setup;
  }
