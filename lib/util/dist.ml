type zipf = { cdf : float array }

let zipf ~n ~theta =
  if n <= 0 then invalid_arg "Dist.zipf: n must be positive";
  if theta < 0. then invalid_arg "Dist.zipf: theta must be non-negative";
  let cdf = Array.make n 0. in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. (1. /. Float.pow (float_of_int (i + 1)) theta);
    cdf.(i) <- !acc
  done;
  let total = !acc in
  for i = 0 to n - 1 do
    cdf.(i) <- cdf.(i) /. total
  done;
  (* Guard against float rounding leaving the last bucket short of 1. *)
  cdf.(n - 1) <- 1.;
  { cdf }

let zipf_draw z prng =
  let u = Prng.float prng 1.0 in
  (* Smallest index with cdf.(i) > u. *)
  let lo = ref 0 and hi = ref (Array.length z.cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if z.cdf.(mid) > u then hi := mid else lo := mid + 1
  done;
  !lo

let zipf_mass z i =
  if i < 0 || i >= Array.length z.cdf then invalid_arg "Dist.zipf_mass: out of range";
  if i = 0 then z.cdf.(0) else z.cdf.(i) -. z.cdf.(i - 1)

let exponential prng ~rate_per_s =
  if rate_per_s <= 0. then invalid_arg "Dist.exponential: rate must be positive";
  let u = Prng.float prng 1.0 in
  (* 1 - u is in (0, 1], so the log is finite. *)
  -.Float.log (1. -. u) /. rate_per_s *. 1e9

type arrival = {
  rate_per_s : float;
  burst : float;
  burst_every_ns : float;
  burst_len_ns : float;
}

let arrival ?(burst_every_ns = 60e6) ?(burst_len_ns = 10e6) ~rate_per_s ~burst () =
  if rate_per_s <= 0. then invalid_arg "Dist.arrival: rate must be positive";
  if burst < 1. then invalid_arg "Dist.arrival: burst multiplier must be >= 1";
  if burst_len_ns <= 0. || burst_every_ns <= burst_len_ns then
    invalid_arg "Dist.arrival: episode must be shorter than its period";
  { rate_per_s; burst; burst_every_ns; burst_len_ns }

let arrival_of_string s =
  let mk rate burst =
    if rate <= 0. then Error "arrival rate must be positive"
    else if burst < 1. then Error "burst multiplier must be >= 1"
    else Ok (arrival ~rate_per_s:rate ~burst ())
  in
  match String.split_on_char ':' s with
  | [ r ] -> (
      match float_of_string_opt r with
      | Some rate -> mk rate 1.
      | None -> Error "expected RATE[:BURST] with RATE a number")
  | [ r; b ] -> (
      match (float_of_string_opt r, float_of_string_opt b) with
      | Some rate, Some burst -> mk rate burst
      | _ -> Error "expected RATE[:BURST] with both numbers")
  | _ -> Error "expected RATE[:BURST]"

let arrival_to_string a = Printf.sprintf "%g:%g" a.rate_per_s a.burst

let in_burst a t =
  a.burst > 1. && Float.rem t a.burst_every_ns < a.burst_len_ns

let arrival_times a prng ~n =
  if n < 0 then invalid_arg "Dist.arrival_times: negative count";
  let times = Array.make n 0. in
  let t = ref 0. in
  for i = 0 to n - 1 do
    let rate = if in_burst a !t then a.rate_per_s *. a.burst else a.rate_per_s in
    let gap = exponential prng ~rate_per_s:rate in
    (* Strictly increasing even if the exponential rounds to zero. *)
    t := !t +. Float.max gap 1.;
    times.(i) <- !t
  done;
  times
