type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = seed }

let copy t = { state = t.state }

(* SplitMix64 output function: mix the incremented state through two
   xor-shift-multiply rounds (Steele, Lea & Flood, OOPSLA 2014). *)
let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = next_int64 t in
  create ~seed

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Take the top bits (better distributed in SplitMix64) and reduce.
     Modulo bias is negligible for simulator-sized bounds (< 2^40). *)
  let raw = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  raw mod bound

let int_in t ~lo ~hi =
  if hi < lo then invalid_arg "Prng.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 uniform bits -> [0, 1) *)
  let bits = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (bits /. 9007199254740992.0)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let shuffle_in_place t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Prng.choose: empty array";
  arr.(int t (Array.length arr))
