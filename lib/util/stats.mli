(** Online summary statistics (Welford accumulation) and small helpers used
    by the experiment harness when aggregating repeated simulation runs. *)

type t

val create : unit -> t

val add : t -> float -> unit

val count : t -> int
val total : t -> float
val mean : t -> float
(** Mean of the samples; 0 if empty. *)

val variance : t -> float
(** Unbiased sample variance; 0 with fewer than two samples. *)

val stddev : t -> float
val min : t -> float
(** Smallest sample; [infinity] if empty. *)

val max : t -> float
(** Largest sample; [neg_infinity] if empty. *)

val percent : num:float -> den:float -> float
(** [percent ~num ~den] is [100 * num / den], or 0 when [den = 0]. *)

val ratio : num:float -> den:float -> float
(** [num / den], or 0 when [den = 0]. *)
