type ('k, 'v) node = { key : 'k; value : 'v; mutable children : ('k, 'v) node list }

type ('k, 'v) t = {
  cmp : 'k -> 'k -> int;
  mutable root : ('k, 'v) node option;
  mutable size : int;
}

let create ~cmp = { cmp; root = None; size = 0 }

let is_empty t = t.root = None

let length t = t.size

let meld cmp a b =
  if cmp a.key b.key <= 0 then begin
    a.children <- b :: a.children;
    a
  end
  else begin
    b.children <- a :: b.children;
    b
  end

let add t key value =
  let node = { key; value; children = [] } in
  t.size <- t.size + 1;
  match t.root with
  | None -> t.root <- Some node
  | Some r -> t.root <- Some (meld t.cmp r node)

let min_elt t =
  match t.root with
  | None -> None
  | Some r -> Some (r.key, r.value)

(* Two-pass pairing: meld children left-to-right in pairs, then meld the
   results right-to-left. This is the classic strategy with the amortised
   O(log n) delete-min bound. *)
let rec merge_pairs cmp = function
  | [] -> None
  | [ x ] -> Some x
  | a :: b :: rest -> (
      let ab = meld cmp a b in
      match merge_pairs cmp rest with
      | None -> Some ab
      | Some r -> Some (meld cmp ab r))

let pop_min t =
  match t.root with
  | None -> None
  | Some r ->
      t.root <- merge_pairs t.cmp r.children;
      t.size <- t.size - 1;
      Some (r.key, r.value)

let clear t =
  t.root <- None;
  t.size <- 0

let to_sorted_list t =
  (* Rebuild a structural copy so draining does not disturb [t]. *)
  let copy = create ~cmp:t.cmp in
  let rec push node =
    add copy node.key node.value;
    List.iter push node.children
  in
  (match t.root with None -> () | Some r -> push r);
  let rec drain acc =
    match pop_min copy with
    | None -> List.rev acc
    | Some kv -> drain (kv :: acc)
  in
  drain []
