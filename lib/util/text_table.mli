(** Plain-text table renderer for experiment output.

    All reproduced tables (Tables 1-4 of the paper, plus ablations) are
    printed through this module so they share one format: a header row, a
    rule, then data rows, columns padded to the widest cell. *)

type align = Left | Right

type t

val create : columns:(string * align) list -> t
(** A table with the given column headers and alignments. *)

val add_row : t -> string list -> unit
(** Append a row. Raises [Invalid_argument] if the arity does not match the
    number of columns. *)

val add_rule : t -> unit
(** Append a horizontal rule (rendered as dashes) between row groups. *)

val render : t -> string
(** The finished table, newline-terminated. *)

val print : t -> unit
(** [render] to stdout. *)

(* Cell formatting helpers shared by the experiment tables. *)

val cell_f1 : float -> string
(** One decimal place, e.g. "67.4" — the paper's time format. *)

val cell_f2 : float -> string
(** Two decimal places, e.g. "0.94" — the paper's alpha/beta/gamma format. *)

val cell_pct : float -> string
(** Percentage with one decimal, e.g. "24.9%". *)

val cell_int : int -> string
