module Int_map = Map.Make (Int)

type t = { mutable counts : int Int_map.t; mutable total : int }

let create () = { counts = Int_map.empty; total = 0 }

let add_many t key n =
  if n < 0 then invalid_arg "Histogram.add_many: negative count";
  let current = Option.value (Int_map.find_opt key t.counts) ~default:0 in
  t.counts <- Int_map.add key (current + n) t.counts;
  t.total <- t.total + n

let add t key = add_many t key 1

let count t key = Option.value (Int_map.find_opt key t.counts) ~default:0

let total t = t.total

let to_sorted_list t = Int_map.bindings t.counts

let keys t = List.map fst (to_sorted_list t)

let pp ppf t =
  List.iter
    (fun (k, n) -> Format.fprintf ppf "%d: %d@." k n)
    (to_sorted_list t)
