module Int_map = Map.Make (Int)

type t = { mutable counts : int Int_map.t; mutable total : int }

let create () = { counts = Int_map.empty; total = 0 }

let add_many t key n =
  if n < 0 then invalid_arg "Histogram.add_many: negative count";
  let current = Option.value (Int_map.find_opt key t.counts) ~default:0 in
  t.counts <- Int_map.add key (current + n) t.counts;
  t.total <- t.total + n

let add t key = add_many t key 1

let count t key = Option.value (Int_map.find_opt key t.counts) ~default:0

let total t = t.total

let to_sorted_list t = Int_map.bindings t.counts

let keys t = List.map fst (to_sorted_list t)

let mean t =
  if t.total = 0 then 0.
  else
    let weighted =
      Int_map.fold (fun k n acc -> acc +. (float_of_int k *. float_of_int n)) t.counts 0.
    in
    weighted /. float_of_int t.total

let max_key t =
  match Int_map.max_binding_opt t.counts with Some (k, _) -> k | None -> 0

let percentile t p =
  if p < 0. || p > 100. then invalid_arg "Histogram.percentile: p must be in [0,100]";
  if t.total = 0 then 0
  else begin
    (* Nearest-rank: the smallest key whose cumulative count reaches
       ceil(p/100 * total); p = 0 gives the smallest recorded key. *)
    let rank = max 1 (int_of_float (ceil (p /. 100. *. float_of_int t.total))) in
    let result = ref 0 and cum = ref 0 and found = ref false in
    Int_map.iter
      (fun k n ->
        if not !found then begin
          cum := !cum + n;
          if !cum >= rank then begin
            result := k;
            found := true
          end
        end)
      t.counts;
    !result
  end

let pp ppf t =
  List.iter
    (fun (k, n) -> Format.fprintf ppf "%d: %d@." k n)
    (to_sorted_list t)
