(** Imperative pairing heap keyed by a totally ordered priority.

    Used as the event queue of the discrete-event engine, where the priority
    is (virtual time, sequence number). Pairing heaps give O(1) insert and
    find-min with amortised O(log n) delete-min, which matches the engine's
    insert-heavy access pattern. *)

type ('k, 'v) t

val create : cmp:('k -> 'k -> int) -> ('k, 'v) t
(** Empty heap ordered by [cmp] (minimum first). *)

val is_empty : ('k, 'v) t -> bool

val length : ('k, 'v) t -> int
(** Number of elements currently in the heap. O(1). *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert a binding. O(1). *)

val min_elt : ('k, 'v) t -> ('k * 'v) option
(** Smallest binding without removing it. O(1). *)

val pop_min : ('k, 'v) t -> ('k * 'v) option
(** Remove and return the smallest binding. Amortised O(log n). *)

val clear : ('k, 'v) t -> unit

val to_sorted_list : ('k, 'v) t -> ('k * 'v) list
(** Drains a copy of the heap in priority order; the heap is unchanged.
    O(n log n); intended for tests and debugging. *)
