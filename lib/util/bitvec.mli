(** Fixed-size mutable bit vector.

    Backs the Primes3 sieve workload and the trace analyser's page sets.
    Bits are indexed from 0; out-of-range indices raise [Invalid_argument]. *)

type t

val create : int -> t
(** [create n] is an all-zero vector of [n] bits. Raises [Invalid_argument]
    if [n < 0]. *)

val length : t -> int

val get : t -> int -> bool
val set : t -> int -> unit
val clear : t -> int -> unit
val assign : t -> int -> bool -> unit

val fill : t -> bool -> unit
(** Set every bit to the given value. *)

val popcount : t -> int
(** Number of set bits. *)

val iter_set : t -> (int -> unit) -> unit
(** Apply a function to every set index in increasing order. *)

val union_into : dst:t -> t -> unit
(** [union_into ~dst src] ors [src] into [dst]. Lengths must match. *)

val equal : t -> t -> bool
