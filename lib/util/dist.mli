(** Deterministic samplers for synthetic request traffic.

    The served-traffic workload family needs three stochastic shapes the
    batch kernels never did: zipfian key popularity (hotspots), Poisson
    arrivals (open-loop load), and burst episodes (transient overload).
    All three draw from an explicit {!Prng.t}, so a trace generated from a
    seed is exactly reproducible — the same determinism contract every
    other stochastic choice in the simulator obeys. *)

(** {1 Zipfian keys} *)

type zipf

val zipf : n:int -> theta:float -> zipf
(** A zipfian sampler over keys [0 .. n-1] with skew [theta >= 0]:
    key [i] is drawn with probability proportional to [1/(i+1)^theta].
    [theta = 0] is the uniform distribution; [theta ~ 1] is classic web
    traffic; beyond 1 the head keys dominate outright. The cumulative
    table is precomputed, so {!zipf_draw} is a binary search.
    Raises [Invalid_argument] if [n <= 0] or [theta < 0]. *)

val zipf_draw : zipf -> Prng.t -> int
(** One key, by inverse-CDF lookup on a uniform draw. *)

val zipf_mass : zipf -> int -> float
(** The probability of key [i] (for tests; [Invalid_argument] out of
    range). *)

(** {1 Exponential inter-arrival gaps} *)

val exponential : Prng.t -> rate_per_s:float -> float
(** One inter-arrival gap in nanoseconds, exponentially distributed with
    the given mean rate (arrivals per second of simulated time).
    Raises [Invalid_argument] if the rate is not positive. *)

(** {1 The arrival process} *)

type arrival = {
  rate_per_s : float;  (** baseline mean arrival rate *)
  burst : float;  (** rate multiplier inside burst episodes (>= 1) *)
  burst_every_ns : float;  (** episode period *)
  burst_len_ns : float;  (** episode length, at the start of each period *)
}

val arrival : ?burst_every_ns:float -> ?burst_len_ns:float -> rate_per_s:float -> burst:float -> unit -> arrival
(** An open-loop arrival process: Poisson at [rate_per_s], except that the
    first [burst_len_ns] (default 10 ms) of every [burst_every_ns]
    (default 60 ms) window runs at [rate_per_s *. burst]. [burst = 1] is
    plain Poisson. Raises [Invalid_argument] on a non-positive rate,
    [burst < 1], or a window shorter than its episode. *)

val arrival_of_string : string -> (arrival, string) result
(** Parse the CLI syntax [RATE[:BURST]] — e.g. ["120000"] or
    ["120000:4"] — at the default episode geometry. *)

val arrival_to_string : arrival -> string
(** The canonical [RATE:BURST] form. *)

val arrival_times : arrival -> Prng.t -> n:int -> float array
(** The first [n] arrival instants (nanoseconds of simulated time,
    strictly increasing) of the process: gaps are exponential at the rate
    in force at the {e previous} arrival, so episodes compress the stream
    by the burst factor. Deterministic in the Prng state. *)
