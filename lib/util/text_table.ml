type align = Left | Right

type row = Cells of string list | Rule

type t = { headers : string list; aligns : align array; mutable rows : row list }

let create ~columns =
  {
    headers = List.map fst columns;
    aligns = Array.of_list (List.map snd columns);
    rows = [];
  }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Text_table.add_row: arity mismatch";
  t.rows <- Cells cells :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let render t =
  let rows = List.rev t.rows in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  let measure cells =
    List.iteri (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c)
      cells
  in
  measure t.headers;
  List.iter (function Cells cells -> measure cells | Rule -> ()) rows;
  let buf = Buffer.create 256 in
  let emit_cells cells =
    let line = Buffer.create 80 in
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string line "  ";
        Buffer.add_string line (pad t.aligns.(i) widths.(i) c))
      cells;
    (* Trim trailing padding so lines have no dangling spaces. *)
    let s = Buffer.contents line in
    let rec trim n = if n > 0 && s.[n - 1] = ' ' then trim (n - 1) else n in
    Buffer.add_string buf (String.sub s 0 (trim (String.length s)));
    Buffer.add_char buf '\n'
  in
  let emit_rule () =
    let total = Array.fold_left ( + ) 0 widths + (2 * (ncols - 1)) in
    Buffer.add_string buf (String.make total '-');
    Buffer.add_char buf '\n'
  in
  emit_cells t.headers;
  emit_rule ();
  List.iter (function Cells cells -> emit_cells cells | Rule -> emit_rule ()) rows;
  Buffer.contents buf

let print t = print_string (render t)

let cell_f1 x = Printf.sprintf "%.1f" x
let cell_f2 x = Printf.sprintf "%.2f" x
let cell_pct x = Printf.sprintf "%.1f%%" x
let cell_int = string_of_int
