type t = { bits : Bytes.t; length : int }

let create n =
  if n < 0 then invalid_arg "Bitvec.create: negative length";
  { bits = Bytes.make ((n + 7) / 8) '\000'; length = n }

let length t = t.length

let check t i =
  if i < 0 || i >= t.length then invalid_arg "Bitvec: index out of range"

let get t i =
  check t i;
  Char.code (Bytes.unsafe_get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set t i =
  check t i;
  let byte = i lsr 3 in
  Bytes.unsafe_set t.bits byte
    (Char.chr (Char.code (Bytes.unsafe_get t.bits byte) lor (1 lsl (i land 7))))

let clear t i =
  check t i;
  let byte = i lsr 3 in
  Bytes.unsafe_set t.bits byte
    (Char.chr (Char.code (Bytes.unsafe_get t.bits byte) land lnot (1 lsl (i land 7)) land 0xff))

let assign t i b = if b then set t i else clear t i

let fill t b =
  let c = if b then '\255' else '\000' in
  Bytes.fill t.bits 0 (Bytes.length t.bits) c;
  (* Keep bits beyond [length] zero so popcount stays correct. *)
  if b && t.length land 7 <> 0 then begin
    let last = Bytes.length t.bits - 1 in
    let keep = (1 lsl (t.length land 7)) - 1 in
    Bytes.set t.bits last (Char.chr (Char.code (Bytes.get t.bits last) land keep))
  end

let popcount_byte =
  let table = Array.make 256 0 in
  for i = 1 to 255 do
    table.(i) <- table.(i lsr 1) + (i land 1)
  done;
  fun c -> table.(Char.code c)

let popcount t =
  let n = ref 0 in
  for i = 0 to Bytes.length t.bits - 1 do
    n := !n + popcount_byte (Bytes.unsafe_get t.bits i)
  done;
  !n

let iter_set t f =
  for i = 0 to t.length - 1 do
    if get t i then f i
  done

let union_into ~dst src =
  if dst.length <> src.length then invalid_arg "Bitvec.union_into: length mismatch";
  for i = 0 to Bytes.length dst.bits - 1 do
    Bytes.unsafe_set dst.bits i
      (Char.chr
         (Char.code (Bytes.unsafe_get dst.bits i)
         lor Char.code (Bytes.unsafe_get src.bits i)))
  done

let equal a b = a.length = b.length && Bytes.equal a.bits b.bits
