(** Integer-valued histogram with unbounded keys.

    Used for per-page move-count distributions (how many ownership transfers
    each page suffered before pinning) and fault-kind breakdowns. *)

type t

val create : unit -> t

val add : t -> int -> unit
(** Increment the count of the given key by one. *)

val add_many : t -> int -> int -> unit
(** [add_many t key n] increments the count of [key] by [n]. *)

val count : t -> int -> int
(** Count recorded for a key (0 if never seen). *)

val total : t -> int
(** Sum of all counts. *)

val keys : t -> int list
(** Keys with non-zero count, in increasing order. *)

val mean : t -> float
(** Count-weighted mean of the keys; [0.] for an empty histogram. *)

val max_key : t -> int
(** Largest recorded key; [0] for an empty histogram. *)

val percentile : t -> float -> int
(** [percentile t p] is the nearest-rank [p]-th percentile of the
    distribution ([p] in [\[0,100\]]): the smallest key whose cumulative
    count reaches [ceil (p/100 * total)]. [0] for an empty histogram;
    [Invalid_argument] for [p] outside the range. *)

val to_sorted_list : t -> (int * int) list
(** (key, count) pairs in increasing key order. *)

val pp : Format.formatter -> t -> unit
(** One line per key: [key: count]. *)
