(** Integer-valued histogram with unbounded keys.

    Used for per-page move-count distributions (how many ownership transfers
    each page suffered before pinning) and fault-kind breakdowns. *)

type t

val create : unit -> t

val add : t -> int -> unit
(** Increment the count of the given key by one. *)

val add_many : t -> int -> int -> unit
(** [add_many t key n] increments the count of [key] by [n]. *)

val count : t -> int -> int
(** Count recorded for a key (0 if never seen). *)

val total : t -> int
(** Sum of all counts. *)

val keys : t -> int list
(** Keys with non-zero count, in increasing order. *)

val to_sorted_list : t -> (int * int) list
(** (key, count) pairs in increasing key order. *)

val pp : Format.formatter -> t -> unit
(** One line per key: [key: count]. *)
