(** Deterministic pseudo-random number generator (SplitMix64).

    Every stochastic choice in the simulator flows through an explicit
    [Prng.t] so that simulations are exactly reproducible from a seed.
    SplitMix64 is small, fast, passes BigCrush, and — unlike
    [Stdlib.Random] — has a splitting operation that lets each simulated
    thread carry an independent stream derived from the run seed. *)

type t

val create : seed:int64 -> t
(** [create ~seed] makes a fresh generator. Two generators created with the
    same seed produce identical streams. *)

val copy : t -> t
(** Independent copy with the same current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of [t]'s subsequent output. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument]
    if [bound <= 0]. *)

val int_in : t -> lo:int -> hi:int -> int
(** [int_in t ~lo ~hi] is uniform in [\[lo, hi\]] inclusive.
    Raises [Invalid_argument] if [hi < lo]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher-Yates shuffle driven by [t]. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. Raises [Invalid_argument] on an
    empty array. *)
