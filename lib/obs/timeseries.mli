(** Epoch-bucketed time-series sampler.

    Buckets hub events into fixed virtual-time epochs (default 10 ms) and
    accumulates, per epoch: reference counts by location and the locality
    fraction alpha(t), bus words and queueing delay, page moves / pins /
    copies / flushes / syncs / fallbacks, a live-replica gauge, and a
    summary (mean, p99 via {!Numa_util.Histogram.percentile}) of the
    cumulative move counts carried by that epoch's move events.

    This is the "BENCH trajectory" substrate: CSV out for plotting, JSON
    out for machine consumption. *)

type row = {
  epoch : int;
  t_start_ns : float;
  refs : int;
  local_refs : int;
  global_refs : int;
  remote_refs : int;
  alpha : float;  (** local_refs / refs, 0 for an empty epoch *)
  bus_words : int;
  bus_delay_ns : float;
  moves : int;
  pins : int;
  copies : int;
  flushes : int;
  syncs : int;
  fallbacks : int;
  live_replicas : int;  (** replica gauge at the epoch's last sample *)
  move_mean : float;
  move_p99 : int;
}

type t

val default_epoch_ns : float

val create : ?epoch_ns:float -> unit -> t

val attach : t -> Hub.t -> unit
(** Subscribe to a hub as sink ["timeseries"]. *)

val record : t -> ts:float -> Event.t -> unit

val rows : t -> row list
(** Non-empty epochs in increasing order. *)

val csv_header : string
val to_csv : t -> string
val save_csv : t -> string -> unit
val row_to_json : row -> Json.t
val to_json : t -> Json.t
