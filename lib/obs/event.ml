type loc = Local | Global | Remote

let loc_to_string = function Local -> "local" | Global -> "global" | Remote -> "remote"

type t =
  | Fault_resolved of { cpu : int; vpage : int; lpage : int; write : bool; state : string }
  | Policy_decision of { lpage : int; cpu : int; global : bool; reason : string }
  | Page_move of { lpage : int; to_node : int; moves : int }
  | Page_pin of { lpage : int; cpu : int; reason : string }
  | Page_unpin of { lpage : int }
  | Replica_create of { lpage : int; node : int }
  | Replica_flush of { lpage : int; node : int }
  | Sync_to_global of { lpage : int; node : int }
  | Zero_fill of { lpage : int; node : int option }
  | Local_fallback of { lpage : int; cpu : int }
  | Page_freed of { lpage : int; moves : int }
  | Refs of { cpu : int; n : int; write : bool; loc : loc; node : int }
  | Bus_queued of { cpu : int; words : int; delay_ns : float }
  | Lock_acquired of { lock_id : int; cpu : int; tid : int }
  | Lock_contended of { lock_id : int; cpu : int; tid : int }
  | Lock_released of { lock_id : int; cpu : int; tid : int }
  | Dispatch of { tid : int; cpu : int; name : string }
  | Syscall of { tid : int; cpu : int; service_ns : float }
  | Tlb_shootdown of { cpu : int; vpage : int; lpage : int }
  | Thread_migrated of { tid : int; from_cpu : int; to_cpu : int }
  | Reconsider_scan of { expired : int }
  | Fault_injected of { kind : string; detail : string }
  | Node_offline of { node : int }
  | Node_online of { node : int }
  | Node_drained of { node : int; pages : int; threads : int }
  | Link_degraded of { src : int; dst : int; factor : float }
  | Invariant_checked of { violations : int }
  | Out_of_memory of { cpu : int; vpage : int }
  | Page_in of { lpage : int }
  | Page_evicted of { lpage : int; dirty : bool }
  | Writeback_started of { lpage : int }
  | Writeback_done of { lpage : int; redirtied : bool }
  | Pt_walk of { cpu : int; vpage : int; lpage : int; levels : int; ns : float }
  | Pt_shootdown of { cpu : int; vpage : int; lpage : int; node : int }
  | Pt_replica_create of { pmap : int; node : int; frames : int }
  | Pt_replica_drop of { pmap : int; node : int }
  | Request_arrived of { client : int; key : int; worker : int }
  | Request_served of {
      client : int;
      key : int;
      cpu : int;
      queue_ns : float;
      service_ns : float;
    }
  | Request_timeout of { client : int; key : int; cpu : int; attempt : int }
  | Request_retry of { client : int; key : int; cpu : int; attempt : int; backoff_ns : float }
  | Request_hedged of { client : int; key : int; cpu : int }
  | Request_shed of { client : int; key : int; worker : int }
  | Breaker_transition of { worker : int; from_state : string; to_state : string }
  | Shard_failover of { worker : int; from_cpu : int; to_cpu : int }

let name = function
  | Fault_resolved _ -> "fault_resolved"
  | Policy_decision _ -> "policy_decision"
  | Page_move _ -> "page_move"
  | Page_pin _ -> "page_pin"
  | Page_unpin _ -> "page_unpin"
  | Replica_create _ -> "replica_create"
  | Replica_flush _ -> "replica_flush"
  | Sync_to_global _ -> "sync_to_global"
  | Zero_fill _ -> "zero_fill"
  | Local_fallback _ -> "local_fallback"
  | Page_freed _ -> "page_freed"
  | Refs _ -> "refs"
  | Bus_queued _ -> "bus_queued"
  | Lock_acquired _ -> "lock_acquired"
  | Lock_contended _ -> "lock_contended"
  | Lock_released _ -> "lock_released"
  | Dispatch _ -> "dispatch"
  | Syscall _ -> "syscall"
  | Tlb_shootdown _ -> "tlb_shootdown"
  | Thread_migrated _ -> "thread_migrated"
  | Reconsider_scan _ -> "reconsider_scan"
  | Fault_injected _ -> "fault_injected"
  | Node_offline _ -> "node_offline"
  | Node_online _ -> "node_online"
  | Node_drained _ -> "node_drained"
  | Link_degraded _ -> "link_degraded"
  | Invariant_checked _ -> "invariant_checked"
  | Out_of_memory _ -> "out_of_memory"
  | Page_in _ -> "page_in"
  | Page_evicted _ -> "page_evicted"
  | Writeback_started _ -> "writeback_started"
  | Writeback_done _ -> "writeback_done"
  | Pt_walk _ -> "pt_walk"
  | Pt_shootdown _ -> "pt_shootdown"
  | Pt_replica_create _ -> "pt_replica_create"
  | Pt_replica_drop _ -> "pt_replica_drop"
  | Request_arrived _ -> "request_arrived"
  | Request_served _ -> "request_served"
  | Request_timeout _ -> "request_timeout"
  | Request_retry _ -> "request_retry"
  | Request_hedged _ -> "request_hedged"
  | Request_shed _ -> "request_shed"
  | Breaker_transition _ -> "breaker_transition"
  | Shard_failover _ -> "shard_failover"

type lane = Cpu_lane of int | Protocol_lane

(* Placement-protocol bookkeeping renders on its own lane; everything that
   happens "on" a processor renders on that processor's lane. *)
let lane = function
  | Page_move _ | Page_pin _ | Page_unpin _ | Replica_create _ | Replica_flush _
  | Sync_to_global _ | Zero_fill _ | Page_freed _ | Reconsider_scan _
  | Fault_injected _ | Node_offline _ | Node_online _ | Node_drained _
  | Link_degraded _ | Invariant_checked _ | Page_in _ | Page_evicted _
  | Writeback_started _ | Writeback_done _ | Pt_replica_create _ | Pt_replica_drop _
  | Request_arrived _ | Request_shed _ | Breaker_transition _ ->
      Protocol_lane
  | Fault_resolved { cpu; _ }
  | Policy_decision { cpu; _ }
  | Local_fallback { cpu; _ }
  | Refs { cpu; _ }
  | Bus_queued { cpu; _ }
  | Lock_acquired { cpu; _ }
  | Lock_contended { cpu; _ }
  | Lock_released { cpu; _ }
  | Dispatch { cpu; _ }
  | Syscall { cpu; _ }
  | Tlb_shootdown { cpu; _ }
  | Out_of_memory { cpu; _ }
  | Pt_walk { cpu; _ }
  | Pt_shootdown { cpu; _ }
  | Request_served { cpu; _ }
  | Request_timeout { cpu; _ }
  | Request_retry { cpu; _ }
  | Request_hedged { cpu; _ } ->
      Cpu_lane cpu
  | Thread_migrated { to_cpu; _ } | Shard_failover { to_cpu; _ } -> Cpu_lane to_cpu

let lpage = function
  | Fault_resolved { lpage; _ }
  | Policy_decision { lpage; _ }
  | Page_move { lpage; _ }
  | Page_pin { lpage; _ }
  | Page_unpin { lpage; _ }
  | Replica_create { lpage; _ }
  | Replica_flush { lpage; _ }
  | Sync_to_global { lpage; _ }
  | Zero_fill { lpage; _ }
  | Local_fallback { lpage; _ }
  | Page_freed { lpage; _ }
  | Tlb_shootdown { lpage; _ }
  | Page_in { lpage }
  | Page_evicted { lpage; _ }
  | Writeback_started { lpage }
  | Writeback_done { lpage; _ }
  | Pt_walk { lpage; _ }
  | Pt_shootdown { lpage; _ } ->
      Some lpage
  | Refs _ | Bus_queued _ | Lock_acquired _ | Lock_contended _ | Lock_released _
  | Dispatch _ | Syscall _ | Thread_migrated _ | Reconsider_scan _ | Fault_injected _
  | Node_offline _ | Node_online _ | Node_drained _ | Link_degraded _
  | Invariant_checked _ | Out_of_memory _ | Pt_replica_create _ | Pt_replica_drop _
  | Request_arrived _ | Request_served _ | Request_timeout _ | Request_retry _
  | Request_hedged _ | Request_shed _ | Breaker_transition _ | Shard_failover _ ->
      None

let args ev : (string * Json.t) list =
  match ev with
  | Fault_resolved { cpu; vpage; lpage; write; state } ->
      [
        ("cpu", Json.Int cpu);
        ("vpage", Json.Int vpage);
        ("lpage", Json.Int lpage);
        ("write", Json.Bool write);
        ("state", Json.String state);
      ]
  | Policy_decision { lpage; cpu; global; reason } ->
      [
        ("lpage", Json.Int lpage);
        ("cpu", Json.Int cpu);
        ("decision", Json.String (if global then "GLOBAL" else "LOCAL"));
        ("reason", Json.String reason);
      ]
  | Page_move { lpage; to_node; moves } ->
      [ ("lpage", Json.Int lpage); ("to_node", Json.Int to_node); ("moves", Json.Int moves) ]
  | Page_pin { lpage; cpu; reason } ->
      [ ("lpage", Json.Int lpage); ("cpu", Json.Int cpu); ("reason", Json.String reason) ]
  | Page_unpin { lpage } -> [ ("lpage", Json.Int lpage) ]
  | Replica_create { lpage; node } | Replica_flush { lpage; node }
  | Sync_to_global { lpage; node } ->
      [ ("lpage", Json.Int lpage); ("node", Json.Int node) ]
  | Zero_fill { lpage; node } ->
      [
        ("lpage", Json.Int lpage);
        ("node", match node with Some n -> Json.Int n | None -> Json.String "global");
      ]
  | Local_fallback { lpage; cpu } -> [ ("lpage", Json.Int lpage); ("cpu", Json.Int cpu) ]
  | Page_freed { lpage; moves } -> [ ("lpage", Json.Int lpage); ("moves", Json.Int moves) ]
  | Refs { cpu; n; write; loc; node } ->
      [
        ("cpu", Json.Int cpu);
        ("n", Json.Int n);
        ("write", Json.Bool write);
        ("loc", Json.String (loc_to_string loc));
        ("node", Json.Int node);
      ]
  | Bus_queued { cpu; words; delay_ns } ->
      [ ("cpu", Json.Int cpu); ("words", Json.Int words); ("delay_ns", Json.Float delay_ns) ]
  | Lock_acquired { lock_id; cpu; tid }
  | Lock_contended { lock_id; cpu; tid }
  | Lock_released { lock_id; cpu; tid } ->
      [ ("lock", Json.Int lock_id); ("cpu", Json.Int cpu); ("tid", Json.Int tid) ]
  | Dispatch { tid; cpu; name } ->
      [ ("tid", Json.Int tid); ("cpu", Json.Int cpu); ("thread", Json.String name) ]
  | Syscall { tid; cpu; service_ns } ->
      [ ("tid", Json.Int tid); ("cpu", Json.Int cpu); ("service_ns", Json.Float service_ns) ]
  | Tlb_shootdown { cpu; vpage; lpage } ->
      [ ("cpu", Json.Int cpu); ("vpage", Json.Int vpage); ("lpage", Json.Int lpage) ]
  | Thread_migrated { tid; from_cpu; to_cpu } ->
      [ ("tid", Json.Int tid); ("from_cpu", Json.Int from_cpu); ("to_cpu", Json.Int to_cpu) ]
  | Reconsider_scan { expired } -> [ ("expired", Json.Int expired) ]
  | Fault_injected { kind; detail } ->
      [ ("kind", Json.String kind); ("detail", Json.String detail) ]
  | Node_offline { node } | Node_online { node } -> [ ("node", Json.Int node) ]
  | Node_drained { node; pages; threads } ->
      [ ("node", Json.Int node); ("pages", Json.Int pages); ("threads", Json.Int threads) ]
  | Link_degraded { src; dst; factor } ->
      [ ("src", Json.Int src); ("dst", Json.Int dst); ("factor", Json.Float factor) ]
  | Invariant_checked { violations } -> [ ("violations", Json.Int violations) ]
  | Out_of_memory { cpu; vpage } -> [ ("cpu", Json.Int cpu); ("vpage", Json.Int vpage) ]
  | Page_in { lpage } -> [ ("lpage", Json.Int lpage) ]
  | Page_evicted { lpage; dirty } ->
      [ ("lpage", Json.Int lpage); ("dirty", Json.Bool dirty) ]
  | Writeback_started { lpage } -> [ ("lpage", Json.Int lpage) ]
  | Writeback_done { lpage; redirtied } ->
      [ ("lpage", Json.Int lpage); ("redirtied", Json.Bool redirtied) ]
  | Pt_walk { cpu; vpage; lpage; levels; ns } ->
      [
        ("cpu", Json.Int cpu);
        ("vpage", Json.Int vpage);
        ("lpage", Json.Int lpage);
        ("levels", Json.Int levels);
        ("ns", Json.Float ns);
      ]
  | Pt_shootdown { cpu; vpage; lpage; node } ->
      [
        ("cpu", Json.Int cpu);
        ("vpage", Json.Int vpage);
        ("lpage", Json.Int lpage);
        ("node", Json.Int node);
      ]
  | Pt_replica_create { pmap; node; frames } ->
      [ ("pmap", Json.Int pmap); ("node", Json.Int node); ("frames", Json.Int frames) ]
  | Pt_replica_drop { pmap; node } ->
      [ ("pmap", Json.Int pmap); ("node", Json.Int node) ]
  | Request_arrived { client; key; worker } ->
      [ ("client", Json.Int client); ("key", Json.Int key); ("worker", Json.Int worker) ]
  | Request_served { client; key; cpu; queue_ns; service_ns } ->
      [
        ("client", Json.Int client);
        ("key", Json.Int key);
        ("cpu", Json.Int cpu);
        ("queue_ns", Json.Float queue_ns);
        ("service_ns", Json.Float service_ns);
      ]
  | Request_timeout { client; key; cpu; attempt } ->
      [
        ("client", Json.Int client);
        ("key", Json.Int key);
        ("cpu", Json.Int cpu);
        ("attempt", Json.Int attempt);
      ]
  | Request_retry { client; key; cpu; attempt; backoff_ns } ->
      [
        ("client", Json.Int client);
        ("key", Json.Int key);
        ("cpu", Json.Int cpu);
        ("attempt", Json.Int attempt);
        ("backoff_ns", Json.Float backoff_ns);
      ]
  | Request_hedged { client; key; cpu } ->
      [ ("client", Json.Int client); ("key", Json.Int key); ("cpu", Json.Int cpu) ]
  | Request_shed { client; key; worker } ->
      [ ("client", Json.Int client); ("key", Json.Int key); ("worker", Json.Int worker) ]
  | Breaker_transition { worker; from_state; to_state } ->
      [
        ("worker", Json.Int worker);
        ("from", Json.String from_state);
        ("to", Json.String to_state);
      ]
  | Shard_failover { worker; from_cpu; to_cpu } ->
      [
        ("worker", Json.Int worker);
        ("from_cpu", Json.Int from_cpu);
        ("to_cpu", Json.Int to_cpu);
      ]

let describe ev =
  match ev with
  | Fault_resolved { cpu; vpage; lpage; write; state } ->
      Printf.sprintf "fault resolved on cpu %d: vpage %d -> lpage %d (%s), state %s" cpu
        vpage lpage
        (if write then "write" else "read")
        state
  | Policy_decision { cpu; global; reason; _ } ->
      Printf.sprintf "policy for cpu %d: %s (%s)" cpu
        (if global then "GLOBAL" else "LOCAL")
        reason
  | Page_move { to_node; moves; _ } ->
      Printf.sprintf "moved to node %d's local memory (move #%d)" to_node moves
  | Page_pin { reason; _ } -> Printf.sprintf "PINNED in global memory: %s" reason
  | Page_unpin _ -> "pin expired: mappings dropped for reconsideration"
  | Replica_create { node; _ } -> Printf.sprintf "replica created in node %d" node
  | Replica_flush { node; _ } -> Printf.sprintf "replica flushed from node %d" node
  | Sync_to_global { node; _ } ->
      Printf.sprintf "dirty copy on node %d synced back to global" node
  | Zero_fill { node = Some n; _ } ->
      Printf.sprintf "zero-filled directly into node %d's local memory" n
  | Zero_fill { node = None; _ } -> "zero-filled in global memory"
  | Local_fallback { cpu; _ } ->
      Printf.sprintf "LOCAL demoted to GLOBAL: node %d's local memory full" cpu
  | Page_freed { moves; _ } ->
      Printf.sprintf "freed (placement history reset after %d moves)" moves
  | Refs { cpu; n; write; loc; node } ->
      Printf.sprintf "%d %s refs from cpu %d (%s, node %d)" n
        (if write then "store" else "fetch")
        cpu (loc_to_string loc) node
  | Bus_queued { words; delay_ns; _ } ->
      Printf.sprintf "bus backlog: %d words queued %.0f ns" words delay_ns
  | Lock_acquired { lock_id; tid; _ } ->
      Printf.sprintf "lock %d acquired by tid %d" lock_id tid
  | Lock_contended { lock_id; tid; _ } ->
      Printf.sprintf "lock %d contended (tid %d spinning)" lock_id tid
  | Lock_released { lock_id; tid; _ } ->
      Printf.sprintf "lock %d released by tid %d" lock_id tid
  | Dispatch { tid; cpu; name } ->
      Printf.sprintf "thread %d (%s) dispatched on cpu %d" tid name cpu
  | Syscall { tid; service_ns; _ } ->
      Printf.sprintf "syscall by tid %d (%.0f ns service)" tid service_ns
  | Tlb_shootdown { cpu; vpage; _ } ->
      Printf.sprintf "software-TLB entry for vpage %d shot down on cpu %d" vpage cpu
  | Thread_migrated { tid; from_cpu; to_cpu } ->
      Printf.sprintf "thread %d re-homed from cpu %d to cpu %d (toward its pinned pages)"
        tid from_cpu to_cpu
  | Reconsider_scan { expired } ->
      Printf.sprintf "reconsideration scan: %d pin%s expired" expired
        (if expired = 1 then "" else "s")
  | Fault_injected { kind; detail } -> Printf.sprintf "fault injected: %s (%s)" kind detail
  | Node_offline { node } -> Printf.sprintf "node %d local memory OFFLINE" node
  | Node_online { node } -> Printf.sprintf "node %d local memory back online" node
  | Node_drained { node; pages; threads } ->
      Printf.sprintf "node %d drained: %d page cop%s flushed, %d thread%s re-homed" node
        pages
        (if pages = 1 then "y" else "ies")
        threads
        (if threads = 1 then "" else "s")
  | Link_degraded { src; dst; factor } ->
      Printf.sprintf "link %d->%d bandwidth divided by %g" src dst factor
  | Invariant_checked { violations } ->
      if violations = 0 then "invariant check: coherent"
      else Printf.sprintf "invariant check: %d VIOLATION%s" violations
          (if violations = 1 then "" else "S")
  | Out_of_memory { cpu; vpage } ->
      Printf.sprintf "out of memory: cpu %d faulting on vpage %d found no frame even after \
                      page-out" cpu vpage
  | Page_in { lpage } -> Printf.sprintf "lpage %d read in from backing store" lpage
  | Page_evicted { lpage; dirty } ->
      Printf.sprintf "lpage %d evicted to backing store (%s)" lpage
        (if dirty then "dirty: synchronous writeback" else "clean: dropped")
  | Writeback_started { lpage } ->
      Printf.sprintf "async writeback of lpage %d started" lpage
  | Writeback_done { lpage; redirtied } ->
      Printf.sprintf "async writeback of lpage %d done%s" lpage
        (if redirtied then " (redirtied during writeback: still dirty)" else "")
  | Pt_walk { cpu; vpage; levels; ns; _ } ->
      Printf.sprintf "page-table walk on cpu %d for vpage %d: %d level%s, %.0f ns" cpu
        vpage levels
        (if levels = 1 then "" else "s")
        ns
  | Pt_shootdown { cpu; vpage; node; _ } ->
      Printf.sprintf "replica PTE for vpage %d shot down in node %d's table (by cpu %d)"
        vpage node cpu
  | Pt_replica_create { node; frames; _ } ->
      Printf.sprintf "page-table replica built in node %d (%d frame%s)" node frames
        (if frames = 1 then "" else "s")
  | Pt_replica_drop { node; _ } ->
      Printf.sprintf "page-table replica dropped from node %d" node
  | Request_arrived { client; key; worker } ->
      Printf.sprintf "request from client %d for key %d enqueued to worker %d" client key
        worker
  | Request_served { client; key; queue_ns; service_ns; _ } ->
      Printf.sprintf "request from client %d for key %d served (%.0f ns queued, %.0f ns \
                      service)" client key queue_ns service_ns
  | Request_timeout { client; key; attempt; _ } ->
      Printf.sprintf "request from client %d for key %d timed out (attempt %d cancelled)"
        client key attempt
  | Request_retry { client; key; attempt; backoff_ns; _ } ->
      Printf.sprintf "request from client %d for key %d retrying: attempt %d after %.0f \
                      ns backoff" client key attempt backoff_ns
  | Request_hedged { client; key; _ } ->
      Printf.sprintf "request from client %d for key %d hedged with a second attempt"
        client key
  | Request_shed { client; key; worker } ->
      Printf.sprintf "request from client %d for key %d SHED by worker %d's open breaker"
        client key worker
  | Breaker_transition { worker; from_state; to_state } ->
      Printf.sprintf "worker %d circuit breaker: %s -> %s" worker from_state to_state
  | Shard_failover { worker; from_cpu; to_cpu } ->
      Printf.sprintf "shard worker %d failed over from cpu %d to cpu %d" worker from_cpu
        to_cpu
