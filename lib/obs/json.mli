(** A minimal hand-rolled JSON emitter (no external dependencies).

    Every machine-readable artefact of the repository — Chrome trace
    exports, report dumps, bench records — goes through this module, so
    output stays valid JSON (string escaping, no [inf]/[nan] literals)
    without pulling in a JSON library.

    The "validation" half is deliberately parser-less: {!check_structure}
    only verifies bracket/string balance and {!has_key} only looks for a
    quoted key followed by a colon. That is enough for the structural
    round-trip tests without committing to a full parser. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val escape : string -> string
(** JSON string-body escaping (quotes, backslash, control characters). *)

val to_buffer : Buffer.t -> t -> unit
val to_string : t -> string

val save : t -> string -> unit
(** Write the document to a file, with a trailing newline. *)

val parse : string -> (t, string) result
(** Full recursive-descent parser for the documents this module emits
    (and standard JSON generally): objects, arrays, strings with escapes,
    numbers ([Int] when the literal is integral, [Float] otherwise),
    [true]/[false]/[null]. Errors carry a byte offset. Powers
    [bench-compare], which must read records written by earlier runs. *)

val load : string -> (t, string) result
(** Read and {!parse} a file; I/O failures become [Error]. *)

val member : t -> string -> t option
(** Field lookup on an [Obj]; [None] on missing key or non-object. *)

val to_float : t -> float option
(** Numeric value of an [Int] or [Float] node. *)

val check_structure : string -> (unit, string) result
(** Quote-aware bracket balancing over a serialized document: every
    [{]/[[] closes with the matching [}]/[]], strings terminate, document
    non-empty. Does not validate commas, colons or literals. *)

val has_key : string -> key:string -> bool
(** [has_key s ~key] is true when ["key"] appears in [s] as a quoted
    string immediately followed (modulo whitespace) by a colon. *)

val required_keys : string -> keys:string list -> (unit, string) result
(** First key from [keys] failing {!has_key}, as an error. *)
