type recorded = { ts : float; lane : int; ev : Event.t }

type t = {
  n_cpus : int;
  mutable events : recorded list;  (** newest first *)
  mutable n : int;
  last_ts : float array;  (** per-lane high-water mark, for monotone lanes *)
}

let protocol_lane t = t.n_cpus

let create ~n_cpus =
  if n_cpus <= 0 then invalid_arg "Chrome_trace.create: n_cpus must be positive";
  { n_cpus; events = []; n = 0; last_ts = Array.make (n_cpus + 1) 0. }

let record t ~ts ev =
  let lane =
    match Event.lane ev with
    | Event.Protocol_lane -> protocol_lane t
    | Event.Cpu_lane c -> if c >= 0 && c < t.n_cpus then c else protocol_lane t
  in
  (* Events are stamped with the engine's global virtual clock, which can
     step back slightly across inline turns; clamp per lane so each lane
     reads as a monotone timeline in the viewer. *)
  let ts = Float.max ts t.last_ts.(lane) in
  t.last_ts.(lane) <- ts;
  t.events <- { ts; lane; ev } :: t.events;
  t.n <- t.n + 1

let attach t hub = Hub.attach hub ~name:"chrome-trace" (fun ~ts ev -> record t ~ts ev)

let length t = t.n

let lane_name t lane = if lane = protocol_lane t then "protocol" else Printf.sprintf "CPU %d" lane

let pid = 1

let metadata_events t =
  let thread_name lane =
    Json.Obj
      [
        ("name", Json.String "thread_name");
        ("ph", Json.String "M");
        ("ts", Json.Float 0.);
        ("pid", Json.Int pid);
        ("tid", Json.Int lane);
        ("args", Json.Obj [ ("name", Json.String (lane_name t lane)) ]);
      ]
  in
  Json.Obj
    [
      ("name", Json.String "process_name");
      ("ph", Json.String "M");
      ("ts", Json.Float 0.);
      ("pid", Json.Int pid);
      ("tid", Json.Int 0);
      ("args", Json.Obj [ ("name", Json.String "numa_sim") ]);
    ]
  :: List.init (t.n_cpus + 1) thread_name

let event_to_json { ts; lane; ev } =
  Json.Obj
    [
      ("name", Json.String (Event.name ev));
      ("cat", Json.String "numa");
      ("ph", Json.String "i");
      ("s", Json.String "t");
      ("ts", Json.Float ts);
      ("pid", Json.Int pid);
      ("tid", Json.Int lane);
      ("args", Json.Obj (Event.args ev));
    ]

let to_json t =
  Json.Obj
    [
      ("traceEvents", Json.List (metadata_events t @ List.rev_map event_to_json t.events));
      ("displayTimeUnit", Json.String "ns");
      ( "otherData",
        Json.Obj
          [
            ("clock", Json.String "virtual-ns");
            ("cpus", Json.Int t.n_cpus);
            ("events", Json.Int t.n);
          ] );
    ]

let save t path = Json.save (to_json t) path

let iter t f = List.iter (fun r -> f ~ts:r.ts ~lane:r.lane r.ev) (List.rev t.events)
