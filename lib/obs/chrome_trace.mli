(** Chrome trace-event exporter.

    Records hub events and serializes them in the Chrome
    [chrome://tracing] / Perfetto JSON object format: one instant event
    per hub event, one lane ([tid]) per simulated CPU plus a "protocol"
    lane for placement bookkeeping, metadata events naming every lane.

    Timestamps are virtual nanoseconds written into the [ts] field
    (declared via [displayTimeUnit]/[otherData.clock]); within each lane
    they are clamped to be non-decreasing so every lane is a monotone
    timeline. *)

type t

val create : n_cpus:int -> t

val attach : t -> Hub.t -> unit
(** Subscribe to a hub as sink ["chrome-trace"]. *)

val record : t -> ts:float -> Event.t -> unit
(** Record one event directly (what {!attach} wires up). *)

val length : t -> int
(** Events recorded so far (excluding metadata). *)

val protocol_lane : t -> int
(** The lane index of the protocol lane (= [n_cpus]). *)

val to_json : t -> Json.t
val save : t -> string -> unit

val iter : t -> (ts:float -> lane:int -> Event.t -> unit) -> unit
(** Recorded events in recording order, with their clamped stamps. *)
