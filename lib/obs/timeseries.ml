module Histogram = Numa_util.Histogram

type row = {
  epoch : int;
  t_start_ns : float;
  refs : int;
  local_refs : int;
  global_refs : int;
  remote_refs : int;
  alpha : float;
  bus_words : int;
  bus_delay_ns : float;
  moves : int;
  pins : int;
  copies : int;
  flushes : int;
  syncs : int;
  fallbacks : int;
  live_replicas : int;
  move_mean : float;
  move_p99 : int;
}

type acc = {
  mutable a_refs : int;
  mutable a_local : int;
  mutable a_global : int;
  mutable a_remote : int;
  mutable a_bus_words : int;
  mutable a_bus_delay : float;
  mutable a_moves : int;
  mutable a_pins : int;
  mutable a_copies : int;
  mutable a_flushes : int;
  mutable a_syncs : int;
  mutable a_fallbacks : int;
  mutable a_live_replicas : int;  (** gauge: last value seen in the epoch *)
  a_move_hist : Histogram.t;  (** cumulative per-page move counts at move time *)
}

type t = {
  epoch_ns : float;
  epochs : (int, acc) Hashtbl.t;
  mutable live_replicas : int;  (** running replica gauge *)
}

let default_epoch_ns = 10_000_000. (* 10 simulated ms *)

let create ?(epoch_ns = default_epoch_ns) () =
  if epoch_ns <= 0. then invalid_arg "Timeseries.create: epoch_ns must be positive";
  { epoch_ns; epochs = Hashtbl.create 64; live_replicas = 0 }

let epoch_of t ts = if ts <= 0. then 0 else int_of_float (ts /. t.epoch_ns)

let acc_of t ~ts =
  let e = epoch_of t ts in
  match Hashtbl.find_opt t.epochs e with
  | Some a -> a
  | None ->
      let a =
        {
          a_refs = 0;
          a_local = 0;
          a_global = 0;
          a_remote = 0;
          a_bus_words = 0;
          a_bus_delay = 0.;
          a_moves = 0;
          a_pins = 0;
          a_copies = 0;
          a_flushes = 0;
          a_syncs = 0;
          a_fallbacks = 0;
          a_live_replicas = t.live_replicas;
          a_move_hist = Histogram.create ();
        }
      in
      Hashtbl.replace t.epochs e a;
      a

let record t ~ts (ev : Event.t) =
  match ev with
  | Event.Refs { n; loc; _ } ->
      let a = acc_of t ~ts in
      a.a_refs <- a.a_refs + n;
      (match loc with
      | Event.Local -> a.a_local <- a.a_local + n
      | Event.Global -> a.a_global <- a.a_global + n
      | Event.Remote -> a.a_remote <- a.a_remote + n)
  | Event.Bus_queued { words; delay_ns; _ } ->
      let a = acc_of t ~ts in
      a.a_bus_words <- a.a_bus_words + words;
      a.a_bus_delay <- a.a_bus_delay +. delay_ns
  | Event.Page_move { moves; _ } ->
      let a = acc_of t ~ts in
      a.a_moves <- a.a_moves + 1;
      Histogram.add a.a_move_hist moves
  | Event.Page_pin _ ->
      let a = acc_of t ~ts in
      a.a_pins <- a.a_pins + 1
  | Event.Replica_create _ ->
      t.live_replicas <- t.live_replicas + 1;
      let a = acc_of t ~ts in
      a.a_copies <- a.a_copies + 1;
      a.a_live_replicas <- t.live_replicas
  | Event.Replica_flush _ ->
      t.live_replicas <- max 0 (t.live_replicas - 1);
      let a = acc_of t ~ts in
      a.a_flushes <- a.a_flushes + 1;
      a.a_live_replicas <- t.live_replicas
  | Event.Sync_to_global _ ->
      let a = acc_of t ~ts in
      a.a_syncs <- a.a_syncs + 1
  | Event.Local_fallback _ ->
      let a = acc_of t ~ts in
      a.a_fallbacks <- a.a_fallbacks + 1
  | Event.Fault_resolved _ | Event.Policy_decision _ | Event.Page_unpin _
  | Event.Zero_fill _ | Event.Page_freed _ | Event.Lock_acquired _
  | Event.Lock_contended _ | Event.Lock_released _ | Event.Dispatch _
  | Event.Syscall _ | Event.Tlb_shootdown _ | Event.Thread_migrated _
  | Event.Reconsider_scan _ | Event.Fault_injected _ | Event.Node_offline _
  | Event.Node_online _ | Event.Node_drained _ | Event.Link_degraded _
  | Event.Invariant_checked _ | Event.Out_of_memory _ | Event.Page_in _
  | Event.Page_evicted _ | Event.Writeback_started _ | Event.Writeback_done _
  | Event.Pt_walk _ | Event.Pt_shootdown _ | Event.Pt_replica_create _
  | Event.Pt_replica_drop _ | Event.Request_arrived _ | Event.Request_served _
  | Event.Request_timeout _ | Event.Request_retry _ | Event.Request_hedged _
  | Event.Request_shed _ | Event.Breaker_transition _ | Event.Shard_failover _ ->
      ()

let attach t hub = Hub.attach hub ~name:"timeseries" (fun ~ts ev -> record t ~ts ev)

let rows t =
  Hashtbl.fold (fun e a out -> (e, a) :: out) t.epochs []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  |> List.map (fun (e, a) ->
         {
           epoch = e;
           t_start_ns = float_of_int e *. t.epoch_ns;
           refs = a.a_refs;
           local_refs = a.a_local;
           global_refs = a.a_global;
           remote_refs = a.a_remote;
           alpha =
             (if a.a_refs = 0 then 0. else float_of_int a.a_local /. float_of_int a.a_refs);
           bus_words = a.a_bus_words;
           bus_delay_ns = a.a_bus_delay;
           moves = a.a_moves;
           pins = a.a_pins;
           copies = a.a_copies;
           flushes = a.a_flushes;
           syncs = a.a_syncs;
           fallbacks = a.a_fallbacks;
           live_replicas = a.a_live_replicas;
           move_mean = Histogram.mean a.a_move_hist;
           move_p99 = Histogram.percentile a.a_move_hist 99.;
         })

let csv_header =
  String.concat ","
    [
      "epoch"; "t_start_ns"; "refs"; "local_refs"; "global_refs"; "remote_refs"; "alpha";
      "bus_words"; "bus_delay_ns"; "moves"; "pins"; "copies"; "flushes"; "syncs";
      "fallbacks"; "live_replicas"; "move_mean"; "move_p99";
    ]

let row_to_csv r =
  String.concat ","
    [
      string_of_int r.epoch;
      Printf.sprintf "%.0f" r.t_start_ns;
      string_of_int r.refs;
      string_of_int r.local_refs;
      string_of_int r.global_refs;
      string_of_int r.remote_refs;
      Printf.sprintf "%.4f" r.alpha;
      string_of_int r.bus_words;
      Printf.sprintf "%.0f" r.bus_delay_ns;
      string_of_int r.moves;
      string_of_int r.pins;
      string_of_int r.copies;
      string_of_int r.flushes;
      string_of_int r.syncs;
      string_of_int r.fallbacks;
      string_of_int r.live_replicas;
      Printf.sprintf "%.2f" r.move_mean;
      string_of_int r.move_p99;
    ]

let to_csv t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf csv_header;
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      Buffer.add_string buf (row_to_csv r);
      Buffer.add_char buf '\n')
    (rows t);
  Buffer.contents buf

let save_csv t path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_csv t))

let row_to_json r =
  Json.Obj
    [
      ("epoch", Json.Int r.epoch);
      ("t_start_ns", Json.Float r.t_start_ns);
      ("refs", Json.Int r.refs);
      ("local_refs", Json.Int r.local_refs);
      ("global_refs", Json.Int r.global_refs);
      ("remote_refs", Json.Int r.remote_refs);
      ("alpha", Json.Float r.alpha);
      ("bus_words", Json.Int r.bus_words);
      ("bus_delay_ns", Json.Float r.bus_delay_ns);
      ("moves", Json.Int r.moves);
      ("pins", Json.Int r.pins);
      ("copies", Json.Int r.copies);
      ("flushes", Json.Int r.flushes);
      ("syncs", Json.Int r.syncs);
      ("fallbacks", Json.Int r.fallbacks);
      ("live_replicas", Json.Int r.live_replicas);
      ("move_mean", Json.Float r.move_mean);
      ("move_p99", Json.Int r.move_p99);
    ]

let to_json t = Json.List (List.map row_to_json (rows t))
