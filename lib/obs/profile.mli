(** Simulated-time profiler: exact attribution of virtual nanoseconds.

    The paper's whole argument is about where simulated time goes — local
    vs remote vs global references, page moves, pmap overhead — but the
    run report only gives aggregate γ and counters. This module is the
    missing lens: every nanosecond the engine puts on a CPU clock is
    charged to exactly one category (reference class by (src, dst) node
    pair, per-link bus queueing, kernel work split by cause and context,
    lock and barrier spinning, system-call service, dispatch, idle), with
    per-entity attribution on the side (hot pages, hot locks, hot links,
    hot threads).

    The invariant that makes the numbers trustworthy is {e conservation}:
    for each CPU, the attributed total equals the engine's CPU clock, and
    after {!finalize} the grand total equals [n_cpus × elapsed]. The
    charging layers uphold it by charging at the moment the engine
    advances a clock, never earlier: kernel charges queue in
    {!Numa_machine.Cost_sink} and are profiled only when drained into a
    clock. {!check_conservation} asserts the invariant; tests run it over
    every Table 4 application.

    All data is virtual-time and therefore deterministic: profiles are
    safe to embed in golden reports and measurement JSON. *)

type kernel_cat =
  | Fault_trap  (** trap + fault bookkeeping on fault entry *)
  | Pmap_action  (** placement-protocol request overhead *)
  | Page_copy  (** page copies and syncs between memories *)
  | Zero_fill
  | Tlb_shootdown  (** software-TLB invalidations *)
  | Disk_read  (** page-ins from the modeled backing store *)
  | Disk_write  (** writebacks to the modeled backing store *)
  | Pt_walk  (** multi-level page-table walks on software-TLB misses *)
  | Pt_shootdown  (** replica page-table PTE updates / shootdowns *)

val kernel_cat_name : kernel_cat -> string

type context =
  | App  (** charged while serving the workload's own accesses *)
  | Daemon  (** charged from the reconsideration daemon's tick *)
  | Degradation  (** charged while applying injected faults *)

val context_name : context -> string

type t

val create : n_cpus:int -> n_nodes:int -> n_pages:int -> t

val set_clock : t -> (unit -> float) -> unit
(** Point the profiler at the engine's virtual clock (used to timestamp
    lock hold intervals). *)

val context : t -> context
val set_context : t -> context -> unit
(** The system layer brackets daemon ticks and fault application with
    [set_context]; kernel charges record the context current at charge
    time. *)

(** {1 Charging} — each call attributes [ns] to one category and to the
    charged CPU's busy total. Callers only invoke these when a profiler
    is attached, so the disabled path costs one [option] test. *)

val charge_ref :
  t -> cpu:int -> dst:int -> loc:Event.loc -> lpage:int -> tid:int -> float -> unit
(** Reference cost from the CPU's node to [dst], classified by the
    paper's LOCAL/GLOBAL/replica buckets; also feeds the page, thread
    and (off-node) link attributions. *)

val charge_bus : t -> cpu:int -> dst:int -> lpage:int -> float -> unit
(** Interconnect queueing delay on the [cpu -> dst] link. *)

val charge_kernel : t -> cpu:int -> ctx:context -> cat:kernel_cat -> lpage:int -> float -> unit
(** Kernel (system) time by cause and context; [lpage < 0] means no
    page attribution. Called by {!Numa_machine.Cost_sink} at drain time. *)

val charge_compute : t -> cpu:int -> tid:int -> float -> unit
val charge_lock_spin : t -> cpu:int -> tid:int -> lock_id:int -> float -> unit
(** Poll time beyond the lock-word reference itself (the reference is
    already charged by {!charge_ref}). *)

val charge_barrier_spin : t -> cpu:int -> tid:int -> float -> unit
val charge_syscall : t -> cpu:int -> float -> unit
val charge_dispatch : t -> cpu:int -> float -> unit
(** Thread dispatch / migration cost on the target CPU. *)

val charge_idle : t -> cpu:int -> float -> unit
(** A gap where the CPU's clock jumped forward without doing work
    (thread parked on a lagging CPU, syscall return, migration). *)

val note_request : t -> service_ns:float -> queue_ns:float -> unit
(** Side attribution (like the hot-page totals): record one served
    request's latency split into queueing and service. Does not charge any
    CPU — the service time is already on the clocks via the ops that made
    it up — so conservation is untouched. *)

val note_timeout : t -> unit
(** One attempt-level deadline fire (same side-attribution rules as
    {!note_request}). *)

val note_shed : t -> unit
(** One request rejected by an open circuit breaker. *)

val note_backoff : t -> float -> unit
(** Virtual time a request spent parked in retry backoff. *)

val note_hedge : t -> float -> unit
(** Service time spent inside hedged second attempts. *)

val lock_acquired : t -> lock_id:int -> unit
(** Start of a hold interval, stamped from the profiler clock. *)

val lock_released : t -> lock_id:int -> unit

(** {1 Conservation} *)

val busy_ns : t -> cpu:int -> float
val attributed_ns : t -> cpu:int -> float
(** Busy + idle: must equal the engine's clock for that CPU. *)

val finalize : t -> elapsed_ns:float -> unit
(** Add each CPU's tail idle (from its last event to the run's end) so
    the grand total is [n_cpus × elapsed]. Idempotent. *)

val check_conservation :
  t -> clocks:float array -> elapsed_ns:float -> (unit, string) result
(** Verify per-CPU attribution against the engine clocks and, when
    finalized, the grand total against [n_cpus × elapsed]; the error
    names the first CPU that leaks. *)

(** {1 Export} *)

type tree_node = {
  label : string;
  ns : float;
  children : (string * float) list;  (** sorted by descending time *)
}

type serve_split = { requests : int; service_ns : float; queue_ns : float }
(** Aggregate request-latency split recorded by {!note_request}. *)

type resilience_split = {
  timeouts : int;
  sheds : int;
  backoff_ns : float;
  hedge_ns : float;
}
(** Aggregate resilience overhead recorded by {!note_timeout},
    {!note_shed}, {!note_backoff} and {!note_hedge}. *)

type snapshot = {
  elapsed_ns : float;
  n_cpus : int;
  attributed_ns_total : float;
  busy_ns_total : float;
  idle_ns_total : float;
  categories : tree_node list;
  hot_pages : (int * float) list;  (** (lpage, ns), descending *)
  hot_locks : (int * float * float * int) list;
      (** (lock id, spin ns, hold ns, acquisitions), by spin *)
  hot_links : (int * int * float) list;  (** (src, dst, ns) off-node traffic *)
  hot_threads : (int * float) list;
  serve : serve_split option;
      (** [None] unless requests were served, so batch-app profiles render
          (text, folded and JSON) byte-identically to earlier releases *)
  resilience : resilience_split option;
      (** [None] unless some resilience overhead was recorded, with the
          same byte-identity guarantee for runs without it *)
}

val snapshot : ?top:int -> t -> snapshot
(** Immutable copy for rendering; [top] (default 10) bounds each hot
    list. *)

val render : snapshot -> string
(** [perf report]-style text breakdown. *)

val folded : snapshot -> string
(** Folded-stack lines ([a;b value] per line) for flamegraph tools. *)

val snapshot_to_json : snapshot -> Json.t
