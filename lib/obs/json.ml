type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr f =
  (* JSON has no inf/nan literals; a cost that overflowed the model is a
     bug upstream, but the export must stay loadable. *)
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 1024 in
  to_buffer buf t;
  Buffer.contents buf

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let buf = Buffer.create 65536 in
      to_buffer buf t;
      Buffer.output_buffer oc buf;
      output_char oc '\n')

(* --- parser-less structural validation --------------------------------- *)

let check_structure s =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let n = String.length s in
  if n = 0 then err "empty document"
  else begin
    let stack = ref [] in
    let in_string = ref false in
    let escaped = ref false in
    let bad = ref None in
    let fail i msg = if !bad = None then bad := Some (i, msg) in
    String.iteri
      (fun i c ->
        if !bad <> None then ()
        else if !in_string then begin
          if !escaped then escaped := false
          else if c = '\\' then escaped := true
          else if c = '"' then in_string := false
        end
        else
          match c with
          | '"' -> in_string := true
          | '{' | '[' -> stack := c :: !stack
          | '}' -> (
              match !stack with
              | '{' :: rest -> stack := rest
              | _ -> fail i "unmatched '}'")
          | ']' -> (
              match !stack with
              | '[' :: rest -> stack := rest
              | _ -> fail i "unmatched ']'")
          | _ -> ())
      s;
    match (!bad, !stack, !in_string) with
    | Some (i, msg), _, _ -> err "offset %d: %s" i msg
    | None, _ :: _, _ -> err "unclosed bracket at end of document"
    | None, [], true -> err "unterminated string at end of document"
    | None, [], false -> Ok ()
  end

let has_key s ~key =
  (* A quoted key followed (after whitespace) by a colon, anywhere in the
     document. Sufficient for required-field checks without a parser. *)
  let needle = "\"" ^ key ^ "\"" in
  let nl = String.length needle and sl = String.length s in
  let rec colon_after j =
    if j >= sl then false
    else
      match s.[j] with ' ' | '\t' | '\n' | '\r' -> colon_after (j + 1) | ':' -> true | _ -> false
  in
  let rec scan i =
    if i + nl > sl then false
    else if String.sub s i nl = needle && colon_after (i + nl) then true
    else scan (i + 1)
  in
  scan 0

let required_keys s ~keys =
  match List.find_opt (fun k -> not (has_key s ~key:k)) keys with
  | None -> Ok ()
  | Some k -> Error (Printf.sprintf "required key %S missing" k)
