type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr f =
  (* JSON has no inf/nan literals; a cost that overflowed the model is a
     bug upstream, but the export must stay loadable. *)
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 1024 in
  to_buffer buf t;
  Buffer.contents buf

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let buf = Buffer.create 65536 in
      to_buffer buf t;
      Buffer.output_buffer oc buf;
      output_char oc '\n')

(* --- parsing ------------------------------------------------------------ *)

exception Parse_failure of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail fmt =
    Printf.ksprintf
      (fun m -> raise (Parse_failure (Printf.sprintf "offset %d: %s" !pos m)))
      fmt
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos else fail "expected '%c'" c
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail "bad literal"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' ->
            incr pos;
            Buffer.contents buf
        | '\\' ->
            incr pos;
            if !pos >= n then fail "truncated escape";
            (match s.[!pos] with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | 'r' -> Buffer.add_char buf '\r'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' -> (
                if !pos + 4 >= n then fail "truncated \\u escape";
                match int_of_string_opt ("0x" ^ String.sub s (!pos + 1) 4) with
                | None -> fail "bad \\u escape"
                | Some code ->
                    (* Decode the BMP code point as UTF-8 (the emitter only
                       produces escaped control characters, all < 0x80). *)
                    if code < 0x80 then Buffer.add_char buf (Char.chr code)
                    else if code < 0x800 then begin
                      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                    end
                    else begin
                      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                    end;
                    pos := !pos + 4)
            | c -> fail "bad escape '\\%c'" c);
            incr pos;
            go ()
        | c ->
            Buffer.add_char buf c;
            incr pos;
            go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then incr pos;
    while
      !pos < n
      && match s.[!pos] with '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true | _ -> false
    do
      incr pos
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail "bad number %S" tok)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec member () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                member ()
            | Some '}' -> incr pos
            | _ -> fail "expected ',' or '}'"
          in
          member ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          List []
        end
        else begin
          let items = ref [] in
          let rec element () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                element ()
            | Some ']' -> incr pos
            | _ -> fail "expected ',' or ']'"
          in
          element ();
          List (List.rev !items)
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail "unexpected character '%c'" c
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "offset %d: trailing garbage" !pos)
    else Ok v
  with Parse_failure m -> Error m

let load path =
  match
    In_channel.with_open_text path (fun ic -> In_channel.input_all ic)
  with
  | exception Sys_error m -> Error m
  | contents -> parse contents

let member t key =
  match t with Obj fields -> List.assoc_opt key fields | _ -> None

let to_float = function Int i -> Some (float_of_int i) | Float f -> Some f | _ -> None

(* --- parser-less structural validation --------------------------------- *)

let check_structure s =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let n = String.length s in
  if n = 0 then err "empty document"
  else begin
    let stack = ref [] in
    let in_string = ref false in
    let escaped = ref false in
    let bad = ref None in
    let fail i msg = if !bad = None then bad := Some (i, msg) in
    String.iteri
      (fun i c ->
        if !bad <> None then ()
        else if !in_string then begin
          if !escaped then escaped := false
          else if c = '\\' then escaped := true
          else if c = '"' then in_string := false
        end
        else
          match c with
          | '"' -> in_string := true
          | '{' | '[' -> stack := c :: !stack
          | '}' -> (
              match !stack with
              | '{' :: rest -> stack := rest
              | _ -> fail i "unmatched '}'")
          | ']' -> (
              match !stack with
              | '[' :: rest -> stack := rest
              | _ -> fail i "unmatched ']'")
          | _ -> ())
      s;
    match (!bad, !stack, !in_string) with
    | Some (i, msg), _, _ -> err "offset %d: %s" i msg
    | None, _ :: _, _ -> err "unclosed bracket at end of document"
    | None, [], true -> err "unterminated string at end of document"
    | None, [], false -> Ok ()
  end

let has_key s ~key =
  (* A quoted key followed (after whitespace) by a colon, anywhere in the
     document. Sufficient for required-field checks without a parser. *)
  let needle = "\"" ^ key ^ "\"" in
  let nl = String.length needle and sl = String.length s in
  let rec colon_after j =
    if j >= sl then false
    else
      match s.[j] with ' ' | '\t' | '\n' | '\r' -> colon_after (j + 1) | ':' -> true | _ -> false
  in
  let rec scan i =
    if i + nl > sl then false
    else if String.sub s i nl = needle && colon_after (i + nl) then true
    else scan (i + 1)
  in
  scan 0

let required_keys s ~keys =
  match List.find_opt (fun k -> not (has_key s ~key:k)) keys with
  | None -> Ok ()
  | Some k -> Error (Printf.sprintf "required key %S missing" k)
