type entry = { ts : float; ev : Event.t }

type t = { lpage : int; mutable entries : entry list (* newest first *) }

let create ~lpage =
  if lpage < 0 then invalid_arg "Page_audit.create: negative page";
  { lpage; entries = [] }

(* Machine-wide degradation events carry no lpage but change what any
   page's later lifecycle means (a sync-to-global right after a node
   drain is evacuation, not policy): keep them in every page's story. *)
let is_fault_narrative = function
  | Event.Fault_injected _ | Event.Node_offline _ | Event.Node_online _
  | Event.Node_drained _ | Event.Link_degraded _ | Event.Out_of_memory _ ->
      true
  | _ -> false

let record t ~ts ev =
  match Event.lpage ev with
  | Some l when l = t.lpage -> t.entries <- { ts; ev } :: t.entries
  | None when is_fault_narrative ev -> t.entries <- { ts; ev } :: t.entries
  | Some _ | None -> ()

let attach t hub =
  Hub.attach hub
    ~name:(Printf.sprintf "page-audit-%d" t.lpage)
    (fun ~ts ev -> record t ~ts ev)

let entries t = List.rev t.entries
let length t = List.length t.entries
let lpage t = t.lpage

let pin_reason t =
  List.find_map
    (fun e -> match e.ev with Event.Page_pin { reason; _ } -> Some reason | _ -> None)
    (entries t)

let is_interesting = function
  (* Policy decisions repeat on every fault; keep only the transitions the
     "why did this page pin?" question needs, plus the decisions, which
     carry the reasons. *)
  | Event.Refs _ -> false
  | _ -> true

let explain t =
  let buf = Buffer.create 1024 in
  let es = List.filter (fun e -> is_interesting e.ev) (entries t) in
  Buffer.add_string buf
    (Printf.sprintf "logical page %d: %d lifecycle events\n" t.lpage (List.length es));
  if es = [] then
    Buffer.add_string buf "  (page never touched while the audit was attached)\n"
  else
    List.iter
      (fun { ts; ev } ->
        Buffer.add_string buf
          (Printf.sprintf "  t=%12.0f ns  %s\n" ts (Event.describe ev)))
      es;
  (match pin_reason t with
  | Some reason ->
      Buffer.add_string buf (Printf.sprintf "verdict: page pinned — %s\n" reason)
  | None ->
      Buffer.add_string buf "verdict: page was never pinned during this run\n");
  Buffer.contents buf
