type sink = { sink_name : string; handle : ts:float -> Event.t -> unit }

type t = { mutable sinks : sink list; mutable clock : unit -> float }

let create () = { sinks = []; clock = (fun () -> 0.) }

let enabled t = t.sinks <> []

let set_clock t f = t.clock <- f
let now t = t.clock ()

let attach t ~name handle = t.sinks <- t.sinks @ [ { sink_name = name; handle } ]

let detach t ~name = t.sinks <- List.filter (fun s -> s.sink_name <> name) t.sinks

let detach_all t = t.sinks <- []

let sink_names t = List.map (fun s -> s.sink_name) t.sinks

let emit t ev =
  match t.sinks with
  | [] -> ()
  | sinks ->
      let ts = t.clock () in
      List.iter (fun s -> s.handle ~ts ev) sinks
