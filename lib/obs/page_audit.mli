(** Per-page lifecycle audit: reconstruct one logical page's history.

    Subscribes to a hub and keeps every event that names the audited page
    (zero fill, placements, replica create/flush, moves, policy decisions
    with reasons, pin, free), plus the machine-wide fault narrative
    (injections, node offline/online/drained, link degradations, OOM) so
    a faulted run's timeline explains {e why} the page's protocol
    history suddenly changed course. {!explain} renders the history as a
    human-readable timeline answering the question the paper's
    processor-time method cannot: {e why did this page pin?} *)

type t

val create : lpage:int -> t
val attach : t -> Hub.t -> unit
val record : t -> ts:float -> Event.t -> unit

val lpage : t -> int
val length : t -> int

val pin_reason : t -> string option
(** The policy reason attached to the page's pin event, if it pinned. *)

val explain : t -> string
(** The rendered timeline plus a one-line verdict. *)
