(** Typed observability events.

    One constructor per interesting thing the stack does: fault
    resolution, policy decisions with their reason, page moves / pins /
    frees, replica lifecycle, zero fills, local-memory fallbacks, batched
    references, bus queueing, lock traffic, scheduler dispatches and
    system calls.

    The library sits {e below} the machine model in the dependency order
    (so every layer can emit), which is why locations and access kinds are
    re-expressed here as plain variants rather than
    [Numa_machine.Location.relative] / [Access.t]. *)

type loc = Local | Global | Remote

val loc_to_string : loc -> string

type t =
  | Fault_resolved of { cpu : int; vpage : int; lpage : int; write : bool; state : string }
      (** a pmap_enter completed; [state] is the page's final placement *)
  | Policy_decision of { lpage : int; cpu : int; global : bool; reason : string }
      (** the placement policy answered LOCAL or GLOBAL, with its reason *)
  | Page_move of { lpage : int; to_node : int; moves : int }
      (** ownership transfer between local memories; [moves] is the page's
          cumulative move count after this move *)
  | Page_pin of { lpage : int; cpu : int; reason : string }
      (** the policy started answering GLOBAL permanently for this page *)
  | Page_unpin of { lpage : int }
      (** reconsideration dropped the pin; next fault decides afresh *)
  | Replica_create of { lpage : int; node : int }
  | Replica_flush of { lpage : int; node : int }
  | Sync_to_global of { lpage : int; node : int }
  | Zero_fill of { lpage : int; node : int option }  (** [None] = global memory *)
  | Local_fallback of { lpage : int; cpu : int }
  | Page_freed of { lpage : int; moves : int }
  | Refs of { cpu : int; n : int; write : bool; loc : loc; node : int }
      (** a batch of [n] resolved memory references; [node] is the
          physical node whose memory served them (the shared board or
          stripe home for [Global]) *)
  | Bus_queued of { cpu : int; words : int; delay_ns : float }
      (** traffic found a backlog on the IPC bus *)
  | Lock_acquired of { lock_id : int; cpu : int; tid : int }
  | Lock_contended of { lock_id : int; cpu : int; tid : int }
  | Lock_released of { lock_id : int; cpu : int; tid : int }
      (** the holder dropped the lock; closes the lane opened by
          [Lock_acquired] in the Chrome trace *)
  | Dispatch of { tid : int; cpu : int; name : string }
  | Syscall of { tid : int; cpu : int; service_ns : float }
  | Tlb_shootdown of { cpu : int; vpage : int; lpage : int }
      (** a protocol action dropped a mapping that a CPU's software TLB was
          caching; the stale translation was precisely invalidated *)
  | Thread_migrated of { tid : int; from_cpu : int; to_cpu : int }
      (** the coordinated thread+page policy re-homed a thread toward the
          node serving its pinned pages (Phoenix-style; off by default) *)
  | Reconsider_scan of { expired : int }
      (** a periodic reconsideration scan ran and found [expired] pins
          whose hold had lapsed (each also gets its own [Page_unpin]) *)
  | Fault_injected of { kind : string; detail : string }
      (** the fault injector applied a scheduled action; [kind] is the
          plan-entry tag (e.g. ["node-offline"]) *)
  | Node_offline of { node : int }
      (** the node's local memory is gone: pool refuses allocation *)
  | Node_online of { node : int }  (** the node's (empty) pool is back *)
  | Node_drained of { node : int; pages : int; threads : int }
      (** degradation path: [pages] local copies were synced/flushed off
          the dying node and [threads] runnable threads re-homed *)
  | Link_degraded of { src : int; dst : int; factor : float }
      (** the directed link lost bandwidth by [factor] ([factor = 1]
          marks restoration at the end of a degrade window) *)
  | Invariant_checked of { violations : int }
      (** the protocol invariant checker ran over the whole directory *)
  | Out_of_memory of { cpu : int; vpage : int }
      (** a fault could not materialise its page: the logical-page pool
          was exhausted and page-out freed nothing *)
  | Page_in of { lpage : int }
      (** the page's content was read in from the modeled backing store
          (its paging entry went Reading -> Clean) *)
  | Page_evicted of { lpage : int; dirty : bool }
      (** the pageout daemon evicted the page; [dirty] means it paid a
          synchronous writeback first *)
  | Writeback_started of { lpage : int }
      (** the async writeback daemon started cleaning a Dirty entry *)
  | Writeback_done of { lpage : int; redirtied : bool }
      (** an async writeback completed; [redirtied] means a store landed
          while the disk write was in flight, so the entry stays Dirty *)
  | Pt_walk of { cpu : int; vpage : int; lpage : int; levels : int; ns : float }
      (** a software-TLB miss paid a multi-level page-table walk; [ns] is
          the summed per-level latency by node distance *)
  | Pt_shootdown of { cpu : int; vpage : int; lpage : int; node : int }
      (** a PTE update was propagated into node [node]'s replica page
          table (numaPTE-style shootdown on move / unmap / protect) *)
  | Pt_replica_create of { pmap : int; node : int; frames : int }
      (** a full per-node page-table replica was materialised (Mitosis) *)
  | Pt_replica_drop of { pmap : int; node : int }
      (** a per-node replica was torn down (node offline / evacuation) *)
  | Request_arrived of { client : int; key : int; worker : int }
      (** an open-loop serving request entered its shard worker's queue *)
  | Request_served of {
      client : int;
      key : int;
      cpu : int;
      queue_ns : float;
      service_ns : float;
    }
      (** the request completed on [cpu]; latency = queue + service *)
  | Request_timeout of { client : int; key : int; cpu : int; attempt : int }
      (** the request's deadline fired and cancelled attempt [attempt]
          (1-based) at a chunk boundary *)
  | Request_retry of { client : int; key : int; cpu : int; attempt : int; backoff_ns : float }
      (** attempt [attempt] (>= 2) is starting after a jittered
          exponential backoff of [backoff_ns] *)
  | Request_hedged of { client : int; key : int; cpu : int }
      (** the first attempt outlived the hedge delay; a hedged second
          attempt is starting with the remaining deadline budget *)
  | Request_shed of { client : int; key : int; worker : int }
      (** worker [worker]'s open circuit breaker rejected the request
          without serving it *)
  | Breaker_transition of { worker : int; from_state : string; to_state : string }
      (** a per-shard circuit breaker changed state
          (closed/open/half-open) *)
  | Shard_failover of { worker : int; from_cpu : int; to_cpu : int }
      (** the serving app re-homed a shard worker off a dead node to the
          nearest online one *)

val name : t -> string
(** Stable snake_case tag, used as the Chrome trace event name. *)

type lane = Cpu_lane of int | Protocol_lane

val lane : t -> lane
(** Which Chrome-trace lane the event renders on: per-CPU for things that
    happen on a processor, the protocol lane for placement bookkeeping. *)

val lpage : t -> int option
(** The logical page the event concerns, for per-page audits. *)

val args : t -> (string * Json.t) list
(** Payload fields, for the trace exporter's ["args"] object. *)

val describe : t -> string
(** One-line human-readable rendering, used by the page audit. *)
