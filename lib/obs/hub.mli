(** The event hub: where instrumented layers hand events to sinks.

    Emission contract: producers guard every emission site with
    {!enabled}, so with no sink attached the instrumented hot paths pay a
    single list-is-empty test and never allocate an event. ({!emit}
    re-checks, so an unguarded call is merely slower, not wrong.)

    Timestamps: the hub stamps each event with its {e clock} — virtual
    nanoseconds once an engine has claimed the hub via {!set_clock}, [0.]
    before that. Sinks receive the stamp, not the wall clock, so exports
    line up with the simulation's own notion of time. *)

type t

val create : unit -> t
(** A hub with no sinks and a clock stuck at [0.]. *)

val enabled : t -> bool
(** [true] iff at least one sink is attached. Producers check this before
    constructing an event. *)

val set_clock : t -> (unit -> float) -> unit
(** Install the virtual-time source (the engine's [now]). *)

val now : t -> float

val attach : t -> name:string -> (ts:float -> Event.t -> unit) -> unit
(** Add a sink; sinks run in attachment order on every event. *)

val detach : t -> name:string -> unit
val detach_all : t -> unit
val sink_names : t -> string list

val emit : t -> Event.t -> unit
(** Deliver an event (stamped once) to every sink. No-op without sinks. *)
