type kernel_cat =
  | Fault_trap
  | Pmap_action
  | Page_copy
  | Zero_fill
  | Tlb_shootdown
  | Disk_read
  | Disk_write
  | Pt_walk
  | Pt_shootdown

let kernel_cat_name = function
  | Fault_trap -> "fault_trap"
  | Pmap_action -> "pmap_action"
  | Page_copy -> "page_copy"
  | Zero_fill -> "zero_fill"
  | Tlb_shootdown -> "tlb_shootdown"
  | Disk_read -> "disk_read"
  | Disk_write -> "disk_write"
  | Pt_walk -> "pt_walk"
  | Pt_shootdown -> "pt_shootdown"

let n_kernel_cats = 9

let kernel_idx = function
  | Fault_trap -> 0
  | Pmap_action -> 1
  | Page_copy -> 2
  | Zero_fill -> 3
  | Tlb_shootdown -> 4
  | Disk_read -> 5
  | Disk_write -> 6
  | Pt_walk -> 7
  | Pt_shootdown -> 8

let kernel_cat_of_idx = function
  | 0 -> Fault_trap
  | 1 -> Pmap_action
  | 2 -> Page_copy
  | 3 -> Zero_fill
  | 4 -> Tlb_shootdown
  | 5 -> Disk_read
  | 6 -> Disk_write
  | 7 -> Pt_walk
  | _ -> Pt_shootdown

type context = App | Daemon | Degradation

let context_name = function
  | App -> "kernel"
  | Daemon -> "daemon"
  | Degradation -> "degradation"

let n_contexts = 3
let ctx_idx = function App -> 0 | Daemon -> 1 | Degradation -> 2
let context_of_idx = function 0 -> App | 1 -> Daemon | _ -> Degradation

let loc_idx : Event.loc -> int = function
  | Event.Local -> 0
  | Event.Global -> 1
  | Event.Remote -> 2

let loc_of_idx = function 0 -> Event.Local | 1 -> Event.Global | _ -> Event.Remote

type lock_stats = {
  mutable spin_ns : float;
  mutable hold_ns : float;
  mutable acquisitions : int;
  mutable held_since : float;  (** < 0 when free *)
}

type t = {
  n_cpus : int;
  n_nodes : int;
  mutable clock : unit -> float;
  mutable ctx : context;
  refs : float array;  (** ((cpu * n_nodes) + dst) * 3 + loc *)
  bus : float array;  (** cpu * n_nodes + dst *)
  kernel : float array;  (** ctx * n_kernel_cats + cat *)
  mutable compute_ns : float;
  mutable lock_spin_ns : float;
  mutable barrier_spin_ns : float;
  mutable syscall_ns : float;
  mutable dispatch_ns : float;
  idle : float array;  (** per cpu *)
  busy : float array;  (** per cpu; every charge except idle lands here too *)
  page_ns : float array;
  mutable thread_ns : float array;
  locks : (int, lock_stats) Hashtbl.t;
  mutable elapsed_ns : float;
  mutable finalized : bool;
  mutable serve_requests : int;
  mutable serve_service_ns : float;
  mutable serve_queue_ns : float;
  mutable res_timeouts : int;
  mutable res_sheds : int;
  mutable res_backoff_ns : float;
  mutable res_hedge_ns : float;
}

let create ~n_cpus ~n_nodes ~n_pages =
  if n_cpus <= 0 then invalid_arg "Profile.create: n_cpus must be positive";
  if n_nodes <= 0 then invalid_arg "Profile.create: n_nodes must be positive";
  {
    n_cpus;
    n_nodes;
    clock = (fun () -> 0.);
    ctx = App;
    refs = Array.make (n_cpus * n_nodes * 3) 0.;
    bus = Array.make (n_cpus * n_nodes) 0.;
    kernel = Array.make (n_contexts * n_kernel_cats) 0.;
    compute_ns = 0.;
    lock_spin_ns = 0.;
    barrier_spin_ns = 0.;
    syscall_ns = 0.;
    dispatch_ns = 0.;
    idle = Array.make n_cpus 0.;
    busy = Array.make n_cpus 0.;
    page_ns = Array.make (max 1 n_pages) 0.;
    thread_ns = Array.make 16 0.;
    locks = Hashtbl.create 16;
    elapsed_ns = 0.;
    finalized = false;
    serve_requests = 0;
    serve_service_ns = 0.;
    serve_queue_ns = 0.;
    res_timeouts = 0;
    res_sheds = 0;
    res_backoff_ns = 0.;
    res_hedge_ns = 0.;
  }

let set_clock t f = t.clock <- f
let context t = t.ctx
let set_context t ctx = t.ctx <- ctx

let touch_page t lpage ns =
  if lpage >= 0 && lpage < Array.length t.page_ns then
    t.page_ns.(lpage) <- t.page_ns.(lpage) +. ns

let touch_thread t tid ns =
  if tid >= 0 then begin
    if tid >= Array.length t.thread_ns then begin
      let grown = Array.make (max (tid + 1) (2 * Array.length t.thread_ns)) 0. in
      Array.blit t.thread_ns 0 grown 0 (Array.length t.thread_ns);
      t.thread_ns <- grown
    end;
    t.thread_ns.(tid) <- t.thread_ns.(tid) +. ns
  end

let charge_ref t ~cpu ~dst ~loc ~lpage ~tid ns =
  t.refs.((((cpu * t.n_nodes) + dst) * 3) + loc_idx loc) <-
    t.refs.((((cpu * t.n_nodes) + dst) * 3) + loc_idx loc) +. ns;
  t.busy.(cpu) <- t.busy.(cpu) +. ns;
  touch_page t lpage ns;
  touch_thread t tid ns

let charge_bus t ~cpu ~dst ~lpage ns =
  t.bus.((cpu * t.n_nodes) + dst) <- t.bus.((cpu * t.n_nodes) + dst) +. ns;
  t.busy.(cpu) <- t.busy.(cpu) +. ns;
  touch_page t lpage ns

let charge_kernel t ~cpu ~ctx ~cat ~lpage ns =
  let i = (ctx_idx ctx * n_kernel_cats) + kernel_idx cat in
  t.kernel.(i) <- t.kernel.(i) +. ns;
  t.busy.(cpu) <- t.busy.(cpu) +. ns;
  touch_page t lpage ns

let charge_compute t ~cpu ~tid ns =
  t.compute_ns <- t.compute_ns +. ns;
  t.busy.(cpu) <- t.busy.(cpu) +. ns;
  touch_thread t tid ns

let lock_stats t lock_id =
  match Hashtbl.find_opt t.locks lock_id with
  | Some ls -> ls
  | None ->
      let ls = { spin_ns = 0.; hold_ns = 0.; acquisitions = 0; held_since = -1. } in
      Hashtbl.replace t.locks lock_id ls;
      ls

let charge_lock_spin t ~cpu ~tid ~lock_id ns =
  t.lock_spin_ns <- t.lock_spin_ns +. ns;
  t.busy.(cpu) <- t.busy.(cpu) +. ns;
  let ls = lock_stats t lock_id in
  ls.spin_ns <- ls.spin_ns +. ns;
  touch_thread t tid ns

let charge_barrier_spin t ~cpu ~tid ns =
  t.barrier_spin_ns <- t.barrier_spin_ns +. ns;
  t.busy.(cpu) <- t.busy.(cpu) +. ns;
  touch_thread t tid ns

let charge_syscall t ~cpu ns =
  t.syscall_ns <- t.syscall_ns +. ns;
  t.busy.(cpu) <- t.busy.(cpu) +. ns

let charge_dispatch t ~cpu ns =
  t.dispatch_ns <- t.dispatch_ns +. ns;
  t.busy.(cpu) <- t.busy.(cpu) +. ns

let charge_idle t ~cpu ns = t.idle.(cpu) <- t.idle.(cpu) +. ns

(* Side attribution like [touch_page]: the request's service time is
   already charged to the cpu by the ops that made it up, so this must not
   touch [busy] — it only splits the serving latency into its two halves. *)
let note_request t ~service_ns ~queue_ns =
  t.serve_requests <- t.serve_requests + 1;
  t.serve_service_ns <- t.serve_service_ns +. service_ns;
  t.serve_queue_ns <- t.serve_queue_ns +. queue_ns

(* Same side-attribution discipline: the resilience machinery's time (the
   backoff sleeps, the hedged attempt's work) is already on the clocks;
   these only label how much of it was retry/hedge/shed overhead. *)
let note_timeout t = t.res_timeouts <- t.res_timeouts + 1
let note_shed t = t.res_sheds <- t.res_sheds + 1
let note_backoff t ns = t.res_backoff_ns <- t.res_backoff_ns +. ns
let note_hedge t ns = t.res_hedge_ns <- t.res_hedge_ns +. ns

let lock_acquired t ~lock_id =
  let ls = lock_stats t lock_id in
  ls.acquisitions <- ls.acquisitions + 1;
  ls.held_since <- t.clock ()

let lock_released t ~lock_id =
  let ls = lock_stats t lock_id in
  if ls.held_since >= 0. then begin
    ls.hold_ns <- ls.hold_ns +. (t.clock () -. ls.held_since);
    ls.held_since <- -1.
  end

(* --- conservation ------------------------------------------------------- *)

let busy_ns t ~cpu = t.busy.(cpu)
let attributed_ns t ~cpu = t.busy.(cpu) +. t.idle.(cpu)

let finalize t ~elapsed_ns =
  if not t.finalized then begin
    t.elapsed_ns <- elapsed_ns;
    for cpu = 0 to t.n_cpus - 1 do
      let tail = elapsed_ns -. attributed_ns t ~cpu in
      if tail > 0. then t.idle.(cpu) <- t.idle.(cpu) +. tail
    done;
    t.finalized <- true
  end

let check_conservation t ~clocks ~elapsed_ns =
  (* Charges are sums of (mostly integer-valued) costs the engine also
     added to the clocks, just in a different association order; the slack
     only has to cover float rounding, not modelling error. *)
  let eps = 1e-6 *. (elapsed_ns +. 1.) in
  let err = ref None in
  for cpu = 0 to t.n_cpus - 1 do
    if !err = None then begin
      let attributed = attributed_ns t ~cpu in
      let expect = if t.finalized then elapsed_ns else clocks.(cpu) in
      if Float.abs (attributed -. expect) > eps then
        err :=
          Some
            (Printf.sprintf
               "cpu %d: attributed %.3f ns but clock says %.3f ns (busy %.3f, idle %.3f)"
               cpu attributed expect t.busy.(cpu) t.idle.(cpu))
    end
  done;
  match !err with Some e -> Error e | None -> Ok ()

(* --- export ------------------------------------------------------------- *)

type tree_node = { label : string; ns : float; children : (string * float) list }

type serve_split = { requests : int; service_ns : float; queue_ns : float }

type resilience_split = {
  timeouts : int;
  sheds : int;
  backoff_ns : float;
  hedge_ns : float;
}

type snapshot = {
  elapsed_ns : float;
  n_cpus : int;
  attributed_ns_total : float;
  busy_ns_total : float;
  idle_ns_total : float;
  categories : tree_node list;
  hot_pages : (int * float) list;
  hot_locks : (int * float * float * int) list;
  hot_links : (int * int * float) list;
  hot_threads : (int * float) list;
  serve : serve_split option;
  resilience : resilience_split option;
}

let sum = Array.fold_left ( +. ) 0.

let desc_children kvs =
  List.sort (fun (_, a) (_, b) -> compare (b : float) a) (List.filter (fun (_, v) -> v > 0.) kvs)

let top_k k kvs cmp =
  let sorted = List.sort cmp kvs in
  List.filteri (fun i _ -> i < k) sorted

let snapshot ?(top = 10) (t : t) =
  let refs_by_loc = Array.make 3 0. in
  let link = Array.make (t.n_cpus * t.n_nodes) 0. in
  Array.iteri
    (fun i ns ->
      let loc = i mod 3 and pair = i / 3 in
      refs_by_loc.(loc) <- refs_by_loc.(loc) +. ns;
      let cpu = pair / t.n_nodes and dst = pair mod t.n_nodes in
      if cpu <> dst then link.(pair) <- link.(pair) +. ns)
    t.refs;
  Array.iteri
    (fun pair ns ->
      let cpu = pair / t.n_nodes and dst = pair mod t.n_nodes in
      if cpu <> dst then link.(pair) <- link.(pair) +. ns)
    t.bus;
  let refs_node =
    {
      label = "refs";
      ns = sum t.refs;
      children =
        desc_children
          (List.init 3 (fun l -> (Event.loc_to_string (loc_of_idx l), refs_by_loc.(l))));
    }
  in
  let bus_node =
    let children =
      List.concat
        (List.init t.n_cpus (fun cpu ->
             List.init t.n_nodes (fun dst ->
                 ( Printf.sprintf "%d->%d" cpu dst,
                   t.bus.((cpu * t.n_nodes) + dst) ))))
    in
    { label = "bus"; ns = sum t.bus; children = desc_children children }
  in
  let kernel_nodes =
    List.init n_contexts (fun c ->
        let children =
          List.init n_kernel_cats (fun k ->
              ( kernel_cat_name (kernel_cat_of_idx k),
                t.kernel.((c * n_kernel_cats) + k) ))
        in
        {
          label = context_name (context_of_idx c);
          ns = sum (Array.sub t.kernel (c * n_kernel_cats) n_kernel_cats);
          children = desc_children children;
        })
  in
  let sync_node =
    {
      label = "sync";
      ns = t.lock_spin_ns +. t.barrier_spin_ns;
      children =
        desc_children
          [ ("lock_spin", t.lock_spin_ns); ("barrier_spin", t.barrier_spin_ns) ];
    }
  in
  let leaf label ns = { label; ns; children = [] } in
  let categories =
    List.filter
      (fun n -> n.ns > 0. || n.label = "refs" || n.label = "idle")
      ([ refs_node; bus_node ]
      @ kernel_nodes
      @ [
          leaf "compute" t.compute_ns;
          sync_node;
          leaf "syscall" t.syscall_ns;
          leaf "dispatch" t.dispatch_ns;
          leaf "idle" (sum t.idle);
        ])
  in
  let hot_pages =
    let kvs = ref [] in
    Array.iteri (fun p ns -> if ns > 0. then kvs := (p, ns) :: !kvs) t.page_ns;
    top_k top !kvs (fun (_, a) (_, b) -> compare (b : float) a)
  in
  let hot_threads =
    let kvs = ref [] in
    Array.iteri (fun tid ns -> if ns > 0. then kvs := (tid, ns) :: !kvs) t.thread_ns;
    top_k top !kvs (fun (_, a) (_, b) -> compare (b : float) a)
  in
  let hot_locks =
    let kvs =
      Hashtbl.fold
        (fun id ls acc -> (id, ls.spin_ns, ls.hold_ns, ls.acquisitions) :: acc)
        t.locks []
    in
    top_k top kvs (fun (ia, sa, ha, _) (ib, sb, hb, _) ->
        let c = compare (sb : float) sa in
        if c <> 0 then c
        else
          let c = compare (hb : float) ha in
          if c <> 0 then c else compare (ia : int) ib)
  in
  let hot_links =
    let kvs = ref [] in
    Array.iteri
      (fun pair ns ->
        if ns > 0. then kvs := (pair / t.n_nodes, pair mod t.n_nodes, ns) :: !kvs)
      link;
    top_k top !kvs (fun (sa, da, a) (sb, db, b) ->
        let c = compare (b : float) a in
        if c <> 0 then c else compare (sa, da) (sb, db))
  in
  {
    elapsed_ns = t.elapsed_ns;
    n_cpus = t.n_cpus;
    attributed_ns_total = sum t.busy +. sum t.idle;
    busy_ns_total = sum t.busy;
    idle_ns_total = sum t.idle;
    categories;
    hot_pages;
    hot_locks;
    hot_threads;
    hot_links;
    serve =
      (if t.serve_requests = 0 then None
       else
         Some
           {
             requests = t.serve_requests;
             service_ns = t.serve_service_ns;
             queue_ns = t.serve_queue_ns;
           });
    resilience =
      (if
         t.res_timeouts = 0 && t.res_sheds = 0 && t.res_backoff_ns = 0.
         && t.res_hedge_ns = 0.
       then None
       else
         Some
           {
             timeouts = t.res_timeouts;
             sheds = t.res_sheds;
             backoff_ns = t.res_backoff_ns;
             hedge_ns = t.res_hedge_ns;
           });
  }

let render s =
  let buf = Buffer.create 2048 in
  let total = Float.max s.attributed_ns_total 1e-9 in
  Buffer.add_string buf
    (Printf.sprintf
       "# profile: %d cpus, elapsed %.6f s, attributed %.6f cpu-s (busy %.6f, idle %.6f)\n"
       s.n_cpus (s.elapsed_ns /. 1e9)
       (s.attributed_ns_total /. 1e9)
       (s.busy_ns_total /. 1e9) (s.idle_ns_total /. 1e9));
  Buffer.add_string buf
    (Printf.sprintf "# %-28s %14s %8s\n" "category" "cpu-seconds" "share");
  List.iter
    (fun n ->
      Buffer.add_string buf
        (Printf.sprintf "%-30s %14.6f %7.2f%%\n" n.label (n.ns /. 1e9)
           (100. *. n.ns /. total));
      List.iter
        (fun (child, ns) ->
          Buffer.add_string buf
            (Printf.sprintf "  %-28s %14.6f %7.2f%%\n" child (ns /. 1e9)
               (100. *. ns /. total)))
        n.children)
    s.categories;
  let section name rows render_row =
    if rows <> [] then begin
      Buffer.add_string buf (Printf.sprintf "# %s\n" name);
      List.iter (fun r -> Buffer.add_string buf (render_row r)) rows
    end
  in
  section "hot pages" s.hot_pages (fun (p, ns) ->
      Printf.sprintf "  lpage %-6d %14.6f\n" p (ns /. 1e9));
  section "hot locks (spin / hold seconds, acquisitions)" s.hot_locks
    (fun (id, spin, hold, acqs) ->
      Printf.sprintf "  lock %-6d %14.6f %14.6f %8d\n" id (spin /. 1e9) (hold /. 1e9)
        acqs);
  section "hot links" s.hot_links (fun (src, dst, ns) ->
      Printf.sprintf "  %d->%-6d %14.6f\n" src dst (ns /. 1e9));
  section "hot threads" s.hot_threads (fun (tid, ns) ->
      Printf.sprintf "  tid %-7d %14.6f\n" tid (ns /. 1e9));
  (match s.serve with
  | None -> ()
  | Some sv ->
      (* Wall-latency split, not cpu time: the service half is already in
         the categories above; the queueing half is time spent waiting. *)
      Buffer.add_string buf
        (Printf.sprintf "# serving (request latency split, %d requests)\n" sv.requests);
      Buffer.add_string buf
        (Printf.sprintf "  service      %14.6f\n" (sv.service_ns /. 1e9));
      Buffer.add_string buf
        (Printf.sprintf "  queueing     %14.6f\n" (sv.queue_ns /. 1e9)));
  (match s.resilience with
  | None -> ()
  | Some r ->
      Buffer.add_string buf
        (Printf.sprintf "# resilience (%d timeouts, %d shed)\n" r.timeouts r.sheds);
      Buffer.add_string buf
        (Printf.sprintf "  retry backoff %13.6f\n" (r.backoff_ns /. 1e9));
      Buffer.add_string buf
        (Printf.sprintf "  hedged work  %14.6f\n" (r.hedge_ns /. 1e9)));
  Buffer.contents buf

let folded s =
  let buf = Buffer.create 1024 in
  List.iter
    (fun n ->
      match n.children with
      | [] -> if n.ns > 0. then Buffer.add_string buf (Printf.sprintf "%s %.0f\n" n.label n.ns)
      | children ->
          let child_sum = List.fold_left (fun acc (_, ns) -> acc +. ns) 0. children in
          let self = n.ns -. child_sum in
          if self > 0.5 then
            Buffer.add_string buf (Printf.sprintf "%s %.0f\n" n.label self);
          List.iter
            (fun (child, ns) ->
              if ns > 0. then
                Buffer.add_string buf (Printf.sprintf "%s;%s %.0f\n" n.label child ns))
            children)
    s.categories;
  (match s.serve with
  | None -> ()
  | Some sv ->
      if sv.service_ns > 0. then
        Buffer.add_string buf (Printf.sprintf "serve;service %.0f\n" sv.service_ns);
      if sv.queue_ns > 0. then
        Buffer.add_string buf (Printf.sprintf "serve;queue %.0f\n" sv.queue_ns));
  (match s.resilience with
  | None -> ()
  | Some r ->
      if r.backoff_ns > 0. then
        Buffer.add_string buf (Printf.sprintf "resilience;backoff %.0f\n" r.backoff_ns);
      if r.hedge_ns > 0. then
        Buffer.add_string buf (Printf.sprintf "resilience;hedge %.0f\n" r.hedge_ns));
  Buffer.contents buf

let snapshot_to_json s =
  Json.Obj
    ([
      ("elapsed_ns", Json.Float s.elapsed_ns);
      ("n_cpus", Json.Int s.n_cpus);
      ("attributed_ns", Json.Float s.attributed_ns_total);
      ("busy_ns", Json.Float s.busy_ns_total);
      ("idle_ns", Json.Float s.idle_ns_total);
      ( "categories",
        Json.Obj
          (List.map
             (fun n ->
               ( n.label,
                 Json.Obj
                   (("total_ns", Json.Float n.ns)
                   :: List.map (fun (c, ns) -> (c, Json.Float ns)) n.children) ))
             s.categories) );
      ( "hot_pages",
        Json.List
          (List.map
             (fun (p, ns) -> Json.Obj [ ("lpage", Json.Int p); ("ns", Json.Float ns) ])
             s.hot_pages) );
      ( "hot_locks",
        Json.List
          (List.map
             (fun (id, spin, hold, acqs) ->
               Json.Obj
                 [
                   ("lock", Json.Int id);
                   ("spin_ns", Json.Float spin);
                   ("hold_ns", Json.Float hold);
                   ("acquisitions", Json.Int acqs);
                 ])
             s.hot_locks) );
      ( "hot_links",
        Json.List
          (List.map
             (fun (src, dst, ns) ->
               Json.Obj
                 [ ("src", Json.Int src); ("dst", Json.Int dst); ("ns", Json.Float ns) ])
             s.hot_links) );
      ( "hot_threads",
        Json.List
          (List.map
             (fun (tid, ns) -> Json.Obj [ ("tid", Json.Int tid); ("ns", Json.Float ns) ])
             s.hot_threads) );
    ]
    @
    (* Appended only for served-traffic runs: batch-app profiles keep the
       exact key set (and bytes) of earlier releases. *)
    (match s.serve with
    | None -> []
    | Some sv ->
        [
          ( "serve",
            Json.Obj
              [
                ("requests", Json.Int sv.requests);
                ("service_ns", Json.Float sv.service_ns);
                ("queue_ns", Json.Float sv.queue_ns);
              ] );
        ])
    @
    match s.resilience with
    | None -> []
    | Some r ->
        [
          ( "resilience",
            Json.Obj
              [
                ("timeouts", Json.Int r.timeouts);
                ("sheds", Json.Int r.sheds);
                ("backoff_ns", Json.Float r.backoff_ns);
                ("hedge_ns", Json.Float r.hedge_ns);
              ] );
        ])
