type t = {
  name : string;
  cpu_nodes : int;
  mem_node : int option;
  pool_pages : int array;
  fetch_ns : float array array;
  store_ns : float array array;
  link_words_per_ns : float array array option;
}

type place = Node of int | Shared of int

let n_nodes t = Array.length t.fetch_ns
let cpu_nodes t = t.cpu_nodes
let mem_node t = t.mem_node
let name t = t.name

let pool_pages t ~node =
  if node < 0 || node >= t.cpu_nodes then invalid_arg "Topo.pool_pages: bad node";
  t.pool_pages.(node)

let fetch_ns t ~from ~at = t.fetch_ns.(from).(at)
let store_ns t ~from ~at = t.store_ns.(from).(at)

let link_words_per_ns t ~from ~at =
  match t.link_words_per_ns with
  | None -> None
  | Some m ->
      let bw = m.(from).(at) in
      if bw > 0. then Some bw else None

let global_home t ~lpage =
  match t.mem_node with Some m -> m | None -> lpage mod t.cpu_nodes

let place_node t = function
  | Node n -> n
  | Shared lpage -> global_home t ~lpage

(* The reporting buckets stay the paper's three classes even on machines
   where the shared level is striped over CPU-node memories: a reference
   to the shared level counts as In_global regardless of which physical
   node happens to hold the stripe (the precise latency is still taken
   from the matrix entry for that node). *)
let classify _t ~cpu = function
  | Shared _ -> Location.In_global
  | Node n -> if n = cpu then Location.Local_here else Location.Remote_local

let nearest_cpu t ~from ~ok =
  let best = ref None in
  for node = 0 to t.cpu_nodes - 1 do
    if ok node then begin
      let d = t.fetch_ns.(from).(node) in
      match !best with
      | Some (_, d') when d >= d' -> ()
      | _ -> best := Some (node, d)
    end
  done;
  Option.map fst !best

let place_to_string = function
  | Node n -> Printf.sprintf "node(%d)" n
  | Shared lpage -> Printf.sprintf "shared(%d)" lpage

let two_level ~name ~n_cpus ~pool_pages ~local_fetch_ns ~local_store_ns ~global_fetch_ns
    ~global_store_ns ~remote_fetch_ns ~remote_store_ns () =
  let n = n_cpus + 1 in
  let mem = n_cpus in
  let matrix ~local ~global ~remote =
    Array.init n (fun from ->
        Array.init n (fun at ->
            if at = mem || from = mem then global
            else if from = at then local
            else remote))
  in
  {
    name;
    cpu_nodes = n_cpus;
    mem_node = Some mem;
    pool_pages = Array.make n_cpus pool_pages;
    fetch_ns =
      matrix ~local:local_fetch_ns ~global:global_fetch_ns ~remote:remote_fetch_ns;
    store_ns =
      matrix ~local:local_store_ns ~global:global_store_ns ~remote:remote_store_ns;
    link_words_per_ns = None;
  }

let validate t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let n = n_nodes t in
  let square m = Array.length m = n && Array.for_all (fun row -> Array.length row = n) m in
  let all_positive m = Array.for_all (Array.for_all (fun x -> x > 0.)) m in
  let all_non_negative m = Array.for_all (Array.for_all (fun x -> x >= 0.)) m in
  if t.cpu_nodes <= 0 then err "cpu_nodes must be positive (got %d)" t.cpu_nodes
  else if n < t.cpu_nodes then
    err "latency matrix is %dx%d but the machine has %d CPU nodes" n n t.cpu_nodes
  else if not (square t.fetch_ns) then err "fetch_ns matrix is not square %dx%d" n n
  else if not (square t.store_ns) then
    err "store_ns matrix does not match fetch_ns (%dx%d)" n n
  else if not (all_positive t.fetch_ns && all_positive t.store_ns) then
    err "latency matrix entries (including diagonals) must be positive"
  else if
    match t.mem_node with
    | None -> n <> t.cpu_nodes
    | Some m -> m < t.cpu_nodes || m >= n
  then
    err
      "mem_node must name a memory-only node in [%d, %d) (or be absent on an \
       all-CPU-node machine)"
      t.cpu_nodes n
  else if Array.length t.pool_pages <> t.cpu_nodes then
    err "pool_pages has %d entries for %d CPU nodes" (Array.length t.pool_pages)
      t.cpu_nodes
  else if not (Array.for_all (fun p -> p >= 0) t.pool_pages) then
    err "pool_pages entries must be non-negative"
  else
    match t.link_words_per_ns with
    | None -> Ok t
    | Some m ->
        if not (square m) then err "link bandwidth matrix is not %dx%d" n n
        else if not (all_non_negative m) then
          err "link bandwidths must be non-negative (0 = unmodelled link)"
        else Ok t

let pp ppf t =
  Format.fprintf ppf "%s: %d nodes (%d CPU%s)" t.name (n_nodes t) t.cpu_nodes
    (match t.mem_node with
    | Some m -> Printf.sprintf ", shared memory on node %d" m
    | None -> ", shared level striped over CPU nodes")
