type t = { pending : float array; cumulative : float array }

let create ~n_cpus =
  if n_cpus <= 0 then invalid_arg "Cost_sink.create: n_cpus must be positive";
  { pending = Array.make n_cpus 0.; cumulative = Array.make n_cpus 0. }

let charge t ~cpu ns =
  if ns < 0. then invalid_arg "Cost_sink.charge: negative charge";
  t.pending.(cpu) <- t.pending.(cpu) +. ns;
  t.cumulative.(cpu) <- t.cumulative.(cpu) +. ns

let drain t ~cpu =
  let v = t.pending.(cpu) in
  t.pending.(cpu) <- 0.;
  v

let pending t ~cpu = t.pending.(cpu)

let total_charged t ~cpu = t.cumulative.(cpu)

let grand_total t = Array.fold_left ( +. ) 0. t.cumulative
