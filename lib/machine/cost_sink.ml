module Profile = Numa_obs.Profile

(* One categorised charge awaiting drain. The context is resolved at
   charge time (the daemon tick or a fault application may be over by the
   time the charged CPU next drains); the nanoseconds are profiled only at
   drain time, when the engine actually puts them on a clock — charges
   that are never drained (e.g. a shootdown against a CPU that never
   touches memory again) never reach the profiler, keeping its totals in
   exact agreement with the CPU clocks. *)
type queued = { cat : Profile.kernel_cat; ctx : Profile.context; lpage : int; ns : float }

type t = {
  pending : float array;
  cumulative : float array;
  mutable queued : queued list array;  (* per cpu, newest first *)
  mutable profile : Profile.t option;
}

let create ~n_cpus =
  if n_cpus <= 0 then invalid_arg "Cost_sink.create: n_cpus must be positive";
  {
    pending = Array.make n_cpus 0.;
    cumulative = Array.make n_cpus 0.;
    queued = Array.make n_cpus [];
    profile = None;
  }

let set_profile t profile = t.profile <- profile
let profile t = t.profile

let charge t ~cpu ?(cat = Profile.Pmap_action) ?(lpage = -1) ns =
  if ns < 0. then invalid_arg "Cost_sink.charge: negative charge";
  t.pending.(cpu) <- t.pending.(cpu) +. ns;
  t.cumulative.(cpu) <- t.cumulative.(cpu) +. ns;
  match t.profile with
  | None -> ()
  | Some p ->
      t.queued.(cpu) <- { cat; ctx = Profile.context p; lpage; ns } :: t.queued.(cpu)

let drain t ~cpu =
  let v = t.pending.(cpu) in
  t.pending.(cpu) <- 0.;
  (match t.profile with
  | None -> ()
  | Some p ->
      List.iter
        (fun q -> Profile.charge_kernel p ~cpu ~ctx:q.ctx ~cat:q.cat ~lpage:q.lpage q.ns)
        t.queued.(cpu);
      t.queued.(cpu) <- []);
  v

let pending t ~cpu = t.pending.(cpu)

let total_charged t ~cpu = t.cumulative.(cpu)

let grand_total t = Array.fold_left ( +. ) 0. t.cumulative
