(** Physical memory locations on the ACE.

    The machine has one local memory per processor module and a pool of
    global memory boards on the IPC bus. A physical page therefore lives
    either in the local memory of a specific node or in global memory.

    [where_from] classifies a location relative to the CPU making a
    reference; the cost model prices each class separately. Remote
    references (one processor reaching into another's local memory) are
    supported by the hardware but deliberately unused by the paper's
    policies (section 4.4); the classification keeps the hook. *)

type node = int
(** Node index; on the ACE every processor module carries its own local
    memory, so nodes and CPUs are the same index space. *)

type t = Local of node | Global

type relative = Local_here | Remote_local | In_global
(** A location as seen from a referencing CPU. *)

val where_from : cpu:int -> t -> relative

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
