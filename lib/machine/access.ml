type t = Load | Store

let is_store = function Store -> true | Load -> false

let to_string = function Load -> "load" | Store -> "store"

let pp ppf t = Format.pp_print_string ppf (to_string t)
