(** Per-processor address-translation state (the Rosetta model).

    A mapping binds (pmap, cpu, virtual page) to a physical page — either a
    local frame on the referencing CPU's node or a global frame — with a
    protection. Mappings are per-CPU, as on the ACE, because the NUMA
    manager must know which processors can reach which pages; the paper
    added a target-processor argument to [pmap_enter] for exactly this
    reason.

    A reverse index from logical page to the mappings that reach it backs
    [pmap_remove_all]-style protocol actions. *)

type phys = Frame of Frame_table.local_frame | Global_frame of int

type entry = private {
  pmap : int;
  cpu : int;
  vpage : int;
  lpage : int;
  mutable prot : Prot.t;
  mutable phys : phys;
}

type t

val create : ?obs:Numa_obs.Hub.t -> Config.t -> t
(** [obs] (default: a fresh hub with no sinks) receives a [Tlb_shootdown]
    event each time dropping a mapping invalidates a live software-TLB
    entry. *)

val attach_pt : t -> Pt.t -> unit
(** Materialise the page tables: from then on every mapping install /
    retarget / protection change / removal is mirrored into the {!Pt}
    layer (master table plus replica shootdowns) and every software-TLB
    miss in {!translate} pays a charged multi-level walk. Without it (the
    default) translation stays free, exactly as before. *)

val pt : t -> Pt.t option

val enter :
  t -> pmap:int -> cpu:int -> vpage:int -> lpage:int -> prot:Prot.t -> phys:phys -> unit
(** Install or replace a mapping. Replacement shoots down any cached
    translation of the old mapping. *)

val lookup : t -> pmap:int -> cpu:int -> vpage:int -> entry option

val translate : t -> pmap:int -> cpu:int -> vpage:int -> entry option
(** Like {!lookup} but through the referencing CPU's software TLB
    ({!Tlb}): a hit resolves in O(1) without touching the forward hash
    table, a miss fills the cache. Counts one TLB hit or miss; use
    {!lookup} from paths (protocol actions, introspection) that should not
    perturb the counters. *)

val tlb_hits : t -> int
val tlb_misses : t -> int
val tlb_shootdowns : t -> int
(** Software-TLB counters summed over all CPUs. *)

val tlb_stats : t -> cpu:int -> int * int * int
(** One CPU's [(hits, misses, shootdowns)], for per-CPU hit-rate
    reporting. *)

val set_prot : t -> entry -> Prot.t -> unit
val set_phys : t -> entry -> phys -> unit

val remove : t -> pmap:int -> cpu:int -> vpage:int -> unit
(** Drop one mapping if present. *)

val remove_entry : t -> entry -> unit

val entries_of_lpage : t -> lpage:int -> entry list
(** Every mapping, on any processor and in any pmap, that reaches the
    logical page. *)

val entries_of_pmap : t -> pmap:int -> entry list
(** Every mapping of one pmap. Linear in the total number of mappings;
    used only on the rare pmap-destroy path. *)

val remove_range : t -> pmap:int -> vpage:int -> n:int -> unit
(** Drop all mappings (on every CPU) for a virtual range of one pmap. *)

val iter_range : t -> pmap:int -> vpage:int -> n:int -> (entry -> unit) -> unit

val n_mappings : t -> int
val phys_location : cpu:int -> phys -> Location.relative
(** Where the mapped physical page sits relative to a referencing CPU. *)

val phys_node : topo:Topo.t -> phys -> int
(** The node whose memory physically holds the page: a local frame's
    node, or the shared level's home ({!Topo.global_home}) for a global
    frame. *)
