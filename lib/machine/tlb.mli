(** A per-CPU software TLB: a fixed-size direct-mapped translation cache
    in front of the pmap layer.

    Mitosis and numaPTE make the case that per-CPU replication/caching of
    translation state is the lever for NUMA page-table cost; this module
    models (and lets the simulator benefit from) exactly that structure.
    A hit resolves a [(pmap, vpage)] translation in O(1) array reads
    without re-entering the pmap manager / NUMA manager / MMU hash path.

    The cache is payload-polymorphic so it can sit below {!Mmu} in the
    dependency order: the MMU instantiates it with its own entry type.

    Correctness contract: every path that drops or replaces a mapping must
    call {!invalidate} for the affected (cpu, pmap, vpage); {!Mmu} funnels
    all such drops through [remove_entry], which does. Entries whose
    payload is mutated in place (protection clamp, physical retarget) need
    no shootdown as the payload is shared, not copied. *)

type 'a t

val create : ?slots:int -> unit -> 'a t
(** [slots] (default 1024) is rounded up to a power of two. *)

val size : 'a t -> int
(** Actual slot count after rounding. *)

val lookup : 'a t -> pmap:int -> vpage:int -> 'a option
(** O(1) probe. Counts one hit or one miss. *)

val insert : 'a t -> pmap:int -> vpage:int -> 'a -> unit
(** Fill the slot, silently evicting any conflicting entry (direct-mapped:
    eviction is a future miss, never a correctness problem). *)

val invalidate : 'a t -> pmap:int -> vpage:int -> bool
(** Precise shootdown. True when a live matching entry was dropped (counts
    one shootdown); false when the slot held nothing or another page. *)

val flush : 'a t -> unit
(** Drop everything (not counted as shootdowns). *)

val hits : 'a t -> int
val misses : 'a t -> int
val shootdowns : 'a t -> int
