(** Per-CPU accumulator for kernel (system) time.

    The VM and NUMA layers charge protocol work here as they perform it;
    the simulation engine drains the accumulator after each operation and
    advances the faulting CPU's clock by the drained amount. Keeping the
    sink separate from the engine lets the lower layers stay ignorant of
    scheduling. *)

type t

val create : n_cpus:int -> t

val charge : t -> cpu:int -> float -> unit
(** Add [ns] of system time against a CPU. Negative charges are rejected. *)

val drain : t -> cpu:int -> float
(** Return and reset the pending system time of a CPU. *)

val pending : t -> cpu:int -> float
(** Peek without resetting. *)

val total_charged : t -> cpu:int -> float
(** Cumulative system time ever charged to a CPU (not reset by [drain]). *)

val grand_total : t -> float
(** Cumulative system time across all CPUs. *)
