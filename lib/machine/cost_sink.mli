(** Per-CPU accumulator for kernel (system) time.

    The VM and NUMA layers charge protocol work here as they perform it;
    the simulation engine drains the accumulator after each operation and
    advances the faulting CPU's clock by the drained amount. Keeping the
    sink separate from the engine lets the lower layers stay ignorant of
    scheduling.

    When a {!Numa_obs.Profile} is attached, every charge is additionally
    queued with its cause category, the profiler context current at
    charge time and (when known) the logical page — and profiled at
    {e drain} time, the moment the nanoseconds actually land on a CPU
    clock. Never-drained residue therefore never reaches the profiler,
    which is what makes its conservation invariant exact. *)

type t

val create : n_cpus:int -> t

val set_profile : t -> Numa_obs.Profile.t option -> unit
(** Attach (or detach) the profiler receiving categorised charges. *)

val profile : t -> Numa_obs.Profile.t option

val charge :
  t -> cpu:int -> ?cat:Numa_obs.Profile.kernel_cat -> ?lpage:int -> float -> unit
(** Add [ns] of system time against a CPU, categorised for the profiler
    ([cat] defaults to [Pmap_action], [lpage] to none). Negative charges
    are rejected. *)

val drain : t -> cpu:int -> float
(** Return and reset the pending system time of a CPU, flushing its
    queued charges to the attached profiler. *)

val pending : t -> cpu:int -> float
(** Peek without resetting. *)

val total_charged : t -> cpu:int -> float
(** Cumulative system time ever charged to a CPU (not reset by [drain]). *)

val grand_total : t -> float
(** Cumulative system time across all CPUs. *)
