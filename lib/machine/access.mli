(** A single memory-reference kind: a 32-bit fetch or a 32-bit store.

    The ACE timing model prices these differently for each memory level
    (local / global / remote), and the NUMA consistency protocol reacts
    differently to reads and writes, so the distinction runs through the
    whole stack. *)

type t = Load | Store

val is_store : t -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string
