module Hub = Numa_obs.Hub
module Event = Numa_obs.Event
module Profile = Numa_obs.Profile

type mode = Off | Shared | Replicated of int option

let mode_to_string = function
  | Off -> "none"
  | Shared -> "shared"
  | Replicated None -> "replicated"
  | Replicated (Some n) -> Printf.sprintf "replicated:%d" n

let mode_of_string s =
  match String.split_on_char ':' s with
  | [ "none" ] -> Ok Off
  | [ "shared" ] -> Ok Shared
  | [ "replicated" ] -> Ok (Replicated None)
  | [ "replicated"; n ] -> (
      match int_of_string_opt n with
      | Some n when n >= 1 -> Ok (Replicated (Some n))
      | Some _ | None ->
          Error (Printf.sprintf "pt-mode replicated:%s: cap must be a positive integer" n))
  | _ ->
      Error
        (Printf.sprintf "unknown pt-mode %S (expected none, shared, replicated or \
                         replicated:N)" s)

type pte = {
  pte_lpage : int;
  pte_frame : Frame_table.local_frame option;
  pte_prot : Prot.t;
}

(* One radix-table page. [home] is where its backing memory physically
   sits: a frame taken from a node's pool, or the shared level when the
   pool refused (the pseudo-page [prefix] picks the stripe home). *)
type home = Local of Frame_table.local_frame | Global of int

type table = {
  t_node : int;  (** master: first-touch node; replica: its node *)
  pages : (int * int, home) Hashtbl.t;  (** (level, prefix) -> page home *)
  ptes : (int * int, pte) Hashtbl.t;  (** (cpu, vpage) -> leaf entry *)
}

type space = {
  sp_pmap : int;
  master : table;
  replicas : (int, table) Hashtbl.t;  (** node -> full table copy *)
}

type counters = {
  mutable c_walks : int;
  mutable c_walk_levels : int;
  mutable c_walk_ns : float;
  mutable c_pte_updates : int;
  mutable c_pte_shootdowns : int;
  mutable c_shootdown_ns : float;
  mutable c_replicas_built : int;
  mutable c_replicas_dropped : int;
  mutable c_global_pt_pages : int;
}

type t = {
  mode : mode;
  levels : int;
  bits : int;
  config : Config.t;
  topo : Topo.t;
  frames : Frame_table.t;
  sink : Cost_sink.t;
  obs : Hub.t;
  spaces : (int, space) Hashtbl.t;  (** pmap -> its tables *)
  c : counters;
}

let create ?obs ~config ~frames ~sink ~mode () =
  {
    mode;
    levels = 3;
    bits = 8;
    config;
    topo = Config.topology config;
    frames;
    sink;
    obs = (match obs with Some h -> h | None -> Hub.create ());
    spaces = Hashtbl.create 8;
    c =
      {
        c_walks = 0;
        c_walk_levels = 0;
        c_walk_ns = 0.;
        c_pte_updates = 0;
        c_pte_shootdowns = 0;
        c_shootdown_ns = 0.;
        c_replicas_built = 0;
        c_replicas_dropped = 0;
        c_global_pt_pages = 0;
      };
  }

let mode t = t.mode
let levels t = t.levels

(* Path prefix of [vpage] at radix [level]: the root (level 0) has one
   page, each deeper level refines by [bits] index bits. Vpages small
   enough share the level-1 directory page, as real address spaces do. *)
let prefix_at t ~level vpage = vpage lsr (t.bits * (t.levels - level))

let home_node t = function
  | Local f -> f.Frame_table.node
  | Global prefix -> Topo.global_home t.topo ~lpage:prefix

let home_place t = function
  | Local f -> Topo.Node f.Frame_table.node
  | Global prefix -> Topo.Shared (prefix mod t.config.Config.global_pages)

(* Allocate the backing for one table page, preferring [node]'s pool and
   falling back to the shared level when it is full, squeezed or offline
   (the table still exists — it just lives in slow memory). *)
let alloc_page t ~node ~prefix =
  match Frame_table.alloc_pt t.frames ~node with
  | Some f -> Local f
  | None ->
      t.c.c_global_pt_pages <- t.c.c_global_pt_pages + 1;
      Global prefix

let free_page t = function
  | Local f -> Frame_table.free_pt t.frames f
  | Global _ -> ()

let ensure_page t tbl ~alloc_node ~level ~prefix =
  match Hashtbl.find_opt tbl.pages (level, prefix) with
  | Some home -> home
  | None ->
      let home = alloc_page t ~node:alloc_node ~prefix in
      Hashtbl.replace tbl.pages (level, prefix) home;
      home

let ensure_path t tbl ~alloc_node ~vpage =
  for level = 0 to t.levels - 1 do
    ignore (ensure_page t tbl ~alloc_node ~level ~prefix:(prefix_at t ~level vpage))
  done

let new_table t ~node =
  let tbl = { t_node = node; pages = Hashtbl.create 16; ptes = Hashtbl.create 64 } in
  ignore (ensure_page t tbl ~alloc_node:node ~level:0 ~prefix:0);
  tbl

let online t ~node = Frame_table.node_online t.frames ~node

(* Materialise a full copy of the master on [node]: every table page is
   copied (a real page copy, charged to [by_cpu] like any other), every
   PTE mirrored. *)
let build_replica t space ~node ~by_cpu =
  let r = { t_node = node; pages = Hashtbl.create 16; ptes = Hashtbl.create 64 } in
  let copied = ref 0 in
  Hashtbl.iter
    (fun (level, prefix) src_home ->
      let dst_home = alloc_page t ~node ~prefix in
      Hashtbl.replace r.pages (level, prefix) dst_home;
      incr copied;
      Cost_sink.charge t.sink ~cpu:by_cpu ~cat:Profile.Page_copy
        (Cost.place_page_copy_ns t.config ~topo:t.topo ~cpu:by_cpu
           ~src:(home_place t src_home) ~dst:(home_place t dst_home)))
    space.master.pages;
  Hashtbl.iter (fun k pte -> Hashtbl.replace r.ptes k pte) space.master.ptes;
  Hashtbl.replace space.replicas node r;
  t.c.c_replicas_built <- t.c.c_replicas_built + 1;
  if Hub.enabled t.obs then
    Hub.emit t.obs
      (Event.Pt_replica_create { pmap = space.sp_pmap; node; frames = !copied });
  r

let ensure_space t ~pmap ~cpu =
  match Hashtbl.find_opt t.spaces pmap with
  | Some sp -> sp
  | None ->
      let sp =
        { sp_pmap = pmap; master = new_table t ~node:cpu; replicas = Hashtbl.create 4 }
      in
      Hashtbl.replace t.spaces pmap sp;
      (match t.mode with
      | Replicated None ->
          for node = 0 to Topo.cpu_nodes t.topo - 1 do
            if node <> sp.master.t_node && online t ~node then
              ignore (build_replica t sp ~node ~by_cpu:cpu)
          done
      | Off | Shared | Replicated (Some _) -> ());
      sp

(* --- PTE propagation ----------------------------------------------------- *)

let leaf_home t tbl ~vpage =
  match Hashtbl.find_opt tbl.pages (t.levels - 1, prefix_at t ~level:(t.levels - 1) vpage)
  with
  | Some home -> home_node t home
  | None -> tbl.t_node

(* A silent propagation: the new PTE value is stored into each replica's
   leaf page (remote store at matrix latency). *)
let propagate_update t space ~cpu ~vpage ~lpage pte =
  Hashtbl.iter
    (fun _node r ->
      ensure_path t r ~alloc_node:r.t_node ~vpage;
      Hashtbl.replace r.ptes (cpu, vpage) pte;
      let ns =
        Cost.node_reference_ns ~topo:t.topo ~access:Access.Store ~cpu
          ~node:(leaf_home t r ~vpage)
      in
      t.c.c_pte_updates <- t.c.c_pte_updates + 1;
      t.c.c_shootdown_ns <- t.c.c_shootdown_ns +. ns;
      Cost_sink.charge t.sink ~cpu ~cat:Profile.Pt_shootdown ~lpage ns)
    space.replicas

(* An invalidation-style shootdown: the stale replica PTE is overwritten
   (or cleared) and the remote node pays the IPI-style interrupt, so the
   cost is the remote store plus the configured shootdown service time. *)
let propagate_shootdown t space ~cpu ~vpage ~lpage pte_opt =
  Hashtbl.iter
    (fun node r ->
      if Hashtbl.mem r.ptes (cpu, vpage) then begin
        (match pte_opt with
        | Some pte -> Hashtbl.replace r.ptes (cpu, vpage) pte
        | None -> Hashtbl.remove r.ptes (cpu, vpage));
        let ns =
          Cost.node_reference_ns ~topo:t.topo ~access:Access.Store ~cpu
            ~node:(leaf_home t r ~vpage)
          +. Cost.tlb_shootdown_ns t.config
        in
        t.c.c_pte_shootdowns <- t.c.c_pte_shootdowns + 1;
        t.c.c_shootdown_ns <- t.c.c_shootdown_ns +. ns;
        Cost_sink.charge t.sink ~cpu ~cat:Profile.Pt_shootdown ~lpage ns;
        if Hub.enabled t.obs then
          Hub.emit t.obs (Event.Pt_shootdown { cpu; vpage; lpage; node })
      end)
    space.replicas

let enter t ~pmap ~cpu ~vpage ~lpage ~frame ~prot =
  let sp = ensure_space t ~pmap ~cpu in
  ensure_path t sp.master ~alloc_node:cpu ~vpage;
  let pte = { pte_lpage = lpage; pte_frame = frame; pte_prot = prot } in
  Hashtbl.replace sp.master.ptes (cpu, vpage) pte;
  propagate_update t sp ~cpu ~vpage ~lpage pte

let remove t ~pmap ~cpu ~vpage ~lpage =
  match Hashtbl.find_opt t.spaces pmap with
  | None -> ()
  | Some sp ->
      Hashtbl.remove sp.master.ptes (cpu, vpage);
      propagate_shootdown t sp ~cpu ~vpage ~lpage None

let update_pte t ~pmap ~cpu ~vpage ~lpage f =
  match Hashtbl.find_opt t.spaces pmap with
  | None -> ()
  | Some sp -> (
      match Hashtbl.find_opt sp.master.ptes (cpu, vpage) with
      | None -> ()
      | Some old ->
          let pte = f old in
          Hashtbl.replace sp.master.ptes (cpu, vpage) pte;
          propagate_shootdown t sp ~cpu ~vpage ~lpage (Some pte))

let update_phys t ~pmap ~cpu ~vpage ~lpage ~frame =
  update_pte t ~pmap ~cpu ~vpage ~lpage (fun old ->
      { old with pte_lpage = lpage; pte_frame = frame })

let update_prot t ~pmap ~cpu ~vpage ~lpage ~prot =
  update_pte t ~pmap ~cpu ~vpage ~lpage (fun old -> { old with pte_prot = prot })

(* --- the walk ------------------------------------------------------------ *)

let walk t ~pmap ~cpu ~vpage ~lpage =
  match t.mode with
  | Off -> ()
  | Shared | Replicated _ ->
      let sp = ensure_space t ~pmap ~cpu in
      let tbl =
        match t.mode with
        | Off | Shared -> sp.master
        | Replicated cap -> (
            if cpu = sp.master.t_node then sp.master
            else
              match Hashtbl.find_opt sp.replicas cpu with
              | Some r -> r
              | None -> (
                  (* On demand: the first local walk pays for mitosis, up
                     to the cap; past it, keep walking the master. *)
                  match cap with
                  | Some n when Hashtbl.length sp.replicas < n && online t ~node:cpu ->
                      build_replica t sp ~node:cpu ~by_cpu:cpu
                  | Some _ -> sp.master
                  | None -> sp.master))
      in
      (* Read down the radix path: one fetch per existing level, each at
         the matrix latency to wherever that table page lives. The walk
         stops at the first absent page (a fault-path walk reads the
         levels that exist and finds no entry). *)
      let read = ref 0 in
      let ns = ref 0. in
      (try
         for level = 0 to t.levels - 1 do
           match Hashtbl.find_opt tbl.pages (level, prefix_at t ~level vpage) with
           | Some home ->
               incr read;
               ns :=
                 !ns
                 +. Cost.node_reference_ns ~topo:t.topo ~access:Access.Load ~cpu
                      ~node:(home_node t home)
           | None -> raise Exit
         done
       with Exit -> ());
      t.c.c_walks <- t.c.c_walks + 1;
      t.c.c_walk_levels <- t.c.c_walk_levels + !read;
      t.c.c_walk_ns <- t.c.c_walk_ns +. !ns;
      Cost_sink.charge t.sink ~cpu ~cat:Profile.Pt_walk ~lpage !ns;
      if Hub.enabled t.obs then
        Hub.emit t.obs (Event.Pt_walk { cpu; vpage; lpage; levels = !read; ns = !ns })

(* --- degradation and the daemon ------------------------------------------ *)

let sorted_pmaps t =
  List.sort Int.compare (Hashtbl.fold (fun pmap _ acc -> pmap :: acc) t.spaces [])

let drop_replica t space ~node =
  match Hashtbl.find_opt space.replicas node with
  | None -> ()
  | Some r ->
      Hashtbl.iter (fun _ home -> free_page t home) r.pages;
      Hashtbl.remove space.replicas node;
      t.c.c_replicas_dropped <- t.c.c_replicas_dropped + 1;
      if Hub.enabled t.obs then
        Hub.emit t.obs (Event.Pt_replica_drop { pmap = space.sp_pmap; node })

let node_offline t ~node =
  List.iter
    (fun pmap ->
      let sp = Hashtbl.find t.spaces pmap in
      drop_replica t sp ~node;
      (* Master pages living on the dying node move to the nearest online
         pool (or the shared level): the table must outlive the memory. *)
      let doomed =
        Hashtbl.fold
          (fun key home acc ->
            match home with
            | Local f when f.Frame_table.node = node -> (key, home) :: acc
            | Local _ | Global _ -> acc)
          sp.master.pages []
      in
      let target =
        Topo.nearest_cpu t.topo ~from:node ~ok:(fun n ->
            n <> node && online t ~node:n
            && Frame_table.local_in_use t.frames ~node:n
               < Frame_table.local_capacity t.frames ~node:n)
      in
      List.iter
        (fun ((level, prefix), home) ->
          free_page t home;
          let fresh =
            match target with
            | Some n -> alloc_page t ~node:n ~prefix
            | None ->
                t.c.c_global_pt_pages <- t.c.c_global_pt_pages + 1;
                Global prefix
          in
          Hashtbl.replace sp.master.pages (level, prefix) fresh;
          Cost_sink.charge t.sink ~cpu:node ~cat:Profile.Page_copy
            (Cost.place_page_copy_ns t.config ~topo:t.topo ~cpu:node
               ~src:(home_place t home) ~dst:(home_place t fresh)))
        doomed)
    (sorted_pmaps t)

let daemon_sweep t ~by_cpu =
  match t.mode with
  | Off | Shared | Replicated (Some _) -> 0
  | Replicated None ->
      let built = ref 0 in
      List.iter
        (fun pmap ->
          let sp = Hashtbl.find t.spaces pmap in
          for node = 0 to Topo.cpu_nodes t.topo - 1 do
            if
              node <> sp.master.t_node && online t ~node
              && not (Hashtbl.mem sp.replicas node)
            then begin
              ignore (build_replica t sp ~node ~by_cpu);
              incr built
            end
          done)
        (sorted_pmaps t);
      !built

(* --- fault injection ----------------------------------------------------- *)

let corrupt_replica t ~lpage =
  let hit = ref None in
  List.iter
    (fun pmap ->
      if !hit = None then
        let sp = Hashtbl.find t.spaces pmap in
        let nodes =
          List.sort Int.compare (Hashtbl.fold (fun n _ acc -> n :: acc) sp.replicas [])
        in
        List.iter
          (fun node ->
            if !hit = None then
              let r = Hashtbl.find sp.replicas node in
              let victim =
                Hashtbl.fold
                  (fun key pte best ->
                    if pte.pte_lpage <> lpage then best
                    else
                      match best with
                      | Some (k, _) when compare k key <= 0 -> best
                      | _ -> Some (key, pte))
                  r.ptes None
              in
              match victim with
              | None -> ()
              | Some (key, pte) ->
                  (* Retarget the replica PTE at the wrong logical page —
                     exactly the stale translation a missed shootdown
                     would leave behind. *)
                  Hashtbl.replace r.ptes key { pte with pte_lpage = pte.pte_lpage + 1 };
                  hit := Some (pmap, node))
          nodes)
    (sorted_pmaps t);
  !hit

(* --- introspection ------------------------------------------------------- *)

let pmaps t = sorted_pmaps t

let master_pte t ~pmap ~cpu ~vpage =
  match Hashtbl.find_opt t.spaces pmap with
  | None -> None
  | Some sp -> Hashtbl.find_opt sp.master.ptes (cpu, vpage)

let replica_nodes t ~pmap =
  match Hashtbl.find_opt t.spaces pmap with
  | None -> []
  | Some sp ->
      List.sort Int.compare (Hashtbl.fold (fun n _ acc -> n :: acc) sp.replicas [])

let replica_pte t ~pmap ~node ~cpu ~vpage =
  match Hashtbl.find_opt t.spaces pmap with
  | None -> None
  | Some sp -> (
      match Hashtbl.find_opt sp.replicas node with
      | None -> None
      | Some r -> Hashtbl.find_opt r.ptes (cpu, vpage))

let table_ptes tbl = Hashtbl.fold (fun key pte acc -> (key, pte) :: acc) tbl.ptes []

let master_ptes t ~pmap =
  match Hashtbl.find_opt t.spaces pmap with
  | None -> []
  | Some sp -> table_ptes sp.master

let replica_ptes t ~pmap ~node =
  match Hashtbl.find_opt t.spaces pmap with
  | None -> []
  | Some sp -> (
      match Hashtbl.find_opt sp.replicas node with
      | None -> []
      | Some r -> table_ptes r)

let table_frames t =
  let acc = ref [] in
  let add_table tbl =
    Hashtbl.iter
      (fun _ home ->
        match home with
        | Local f -> acc := (f.Frame_table.node, f) :: !acc
        | Global _ -> ())
      tbl.pages
  in
  Hashtbl.iter
    (fun _ sp ->
      add_table sp.master;
      Hashtbl.iter (fun _ r -> add_table r) sp.replicas)
    t.spaces;
  !acc

type stats = {
  walks : int;
  walk_levels : int;
  walk_ns : float;
  pte_updates : int;
  pte_shootdowns : int;
  shootdown_ns : float;
  replicas_built : int;
  replicas_dropped : int;
  pt_frames : int array;
  global_pt_pages : int;
}

let stats t =
  {
    walks = t.c.c_walks;
    walk_levels = t.c.c_walk_levels;
    walk_ns = t.c.c_walk_ns;
    pte_updates = t.c.c_pte_updates;
    pte_shootdowns = t.c.c_pte_shootdowns;
    shootdown_ns = t.c.c_shootdown_ns;
    replicas_built = t.c.c_replicas_built;
    replicas_dropped = t.c.c_replicas_dropped;
    pt_frames =
      Array.init (Topo.cpu_nodes t.topo) (fun node ->
          Frame_table.pt_in_use t.frames ~node);
    global_pt_pages = t.c.c_global_pt_pages;
  }
