(** Page protection as seen by the MMU.

    Ordered by permissiveness: [No_access < Read_only < Read_write].
    The Mach pmap interface (as extended by the paper) passes protections
    in min/max pairs: the minimum is what is needed to resolve the fault,
    the maximum is what the user is legally allowed. *)

type t = No_access | Read_only | Read_write

val compare : t -> t -> int
(** Orders by permissiveness. *)

val allows : t -> Access.t -> bool
(** Does a mapping with this protection satisfy the given reference? *)

val of_access : Access.t -> t
(** Minimum protection required to perform the reference. *)

val min : t -> t -> t
(** Stricter of the two. *)

val max : t -> t -> t
(** Looser of the two. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
