type node = int

type t = Local of node | Global

type relative = Local_here | Remote_local | In_global

let where_from ~cpu = function
  | Global -> In_global
  | Local n -> if n = cpu then Local_here else Remote_local

let equal a b =
  match (a, b) with
  | Global, Global -> true
  | Local a, Local b -> a = b
  | Global, Local _ | Local _, Global -> false

let to_string = function
  | Global -> "global"
  | Local n -> Printf.sprintf "local(%d)" n

let pp ppf t = Format.pp_print_string ppf (to_string t)
