module Profile = Numa_obs.Profile
module Hub = Numa_obs.Hub
module Event = Numa_obs.Event

type state = Empty | Reading | Clean | Dirty | Writeback

let state_name = function
  | Empty -> "empty"
  | Reading -> "reading"
  | Clean -> "clean"
  | Dirty -> "dirty"
  | Writeback -> "writeback"

(* One backing-store entry per logical page. [redirtied] is only
   meaningful in Writeback: a store raced the in-flight disk write, so
   completion lands back in Dirty instead of Clean. [last_use] is a tick
   of the structure's own monotone use clock (bumped on every fault-time
   touch), which the LRU-approx victim policy compares. *)
type entry = {
  mutable st : state;
  mutable redirtied : bool;
  mutable wb_done_at : float;
  mutable last_use : int;
}

type stats = {
  page_ins : int;
  writebacks_started : int;
  writebacks_completed : int;
  writebacks_canceled : int;
  sync_writebacks : int;
  redirtied : int;
  clean_evictions : int;
  dirty_evictions : int;
  disk_read_ns : float;
  disk_write_ns : float;
  n_clean : int;
  n_dirty : int;
  n_writeback : int;
}

type t = {
  config : Config.t;
  topo : Topo.t;
  sink : Cost_sink.t option;
  obs : Hub.t option;
  entries : entry array;
  mutable in_flight : int list;  (* lpages currently in Writeback *)
  mutable wb_cursor : int;  (* round-robin start of the dirty scan *)
  mutable use_clock : int;
  mutable page_ins : int;
  mutable writebacks_started : int;
  mutable writebacks_completed : int;
  mutable writebacks_canceled : int;
  mutable sync_writebacks : int;
  mutable redirtied_count : int;
  mutable clean_evictions : int;
  mutable dirty_evictions : int;
  mutable disk_read_total : float;
  mutable disk_write_total : float;
}

let create ?sink ?obs ~(config : Config.t) () =
  {
    config;
    topo = Config.topology config;
    sink;
    obs;
    entries =
      Array.init config.Config.global_pages (fun _ ->
          { st = Empty; redirtied = false; wb_done_at = 0.; last_use = 0 });
    in_flight = [];
    wb_cursor = 0;
    use_clock = 0;
    page_ins = 0;
    writebacks_started = 0;
    writebacks_completed = 0;
    writebacks_canceled = 0;
    sync_writebacks = 0;
    redirtied_count = 0;
    clean_evictions = 0;
    dirty_evictions = 0;
    disk_read_total = 0.;
    disk_write_total = 0.;
  }

let entry t ~lpage =
  if lpage < 0 || lpage >= Array.length t.entries then
    invalid_arg (Printf.sprintf "Paging: lpage %d out of range" lpage);
  t.entries.(lpage)

let state t ~lpage = (entry t ~lpage).st
let n_pages t = Array.length t.entries
let in_flight_lpages t = t.in_flight

let emit t ev =
  match t.obs with Some h when Hub.enabled h -> Hub.emit h ev | _ -> ()

let charge t ~by_cpu ~cat ~lpage ns =
  match t.sink with
  | Some s -> Cost_sink.charge s ~cpu:by_cpu ~cat ~lpage ns
  | None -> ()

let read_cost t ~lpage = Cost.disk_read_ns t.config ~topo:t.topo ~lpage
let write_cost t ~lpage = Cost.disk_write_ns t.config ~topo:t.topo ~lpage

let bad t ~lpage ~op =
  invalid_arg
    (Printf.sprintf "Paging.%s: lpage %d is %s" op lpage
       (state_name (entry t ~lpage).st))

let touch t ~lpage =
  t.use_clock <- t.use_clock + 1;
  (entry t ~lpage).last_use <- t.use_clock

let last_use t ~lpage = (entry t ~lpage).last_use

(* Transitions. Each function implements exactly the arrows of the state
   diagram (DESIGN.md section 9); anything else raises, and the Invariant
   checker re-verifies the reachable-state side conditions after the fact. *)

let begin_read t ~lpage =
  let e = entry t ~lpage in
  (* Dirty -> Reading covers re-installing content over a zero-filled
     entry that was never entered (the pager overwrites it wholesale). *)
  match e.st with
  | Empty | Dirty ->
      e.st <- Reading;
      e.redirtied <- false
  | Reading | Clean | Writeback -> bad t ~lpage ~op:"begin_read"

let end_read t ~lpage =
  let e = entry t ~lpage in
  match e.st with
  | Reading ->
      e.st <- Clean;
      t.page_ins <- t.page_ins + 1;
      t.disk_read_total <- t.disk_read_total +. read_cost t ~lpage;
      emit t (Event.Page_in { lpage })
  | Empty | Clean | Dirty | Writeback -> bad t ~lpage ~op:"end_read"

let note_zero_fill t ~lpage =
  let e = entry t ~lpage in
  match e.st with
  | Empty | Dirty -> e.st <- Dirty
  | Reading | Clean | Writeback -> bad t ~lpage ~op:"note_zero_fill"

let mark_dirty t ~lpage =
  let e = entry t ~lpage in
  match e.st with
  (* A store can reach an Empty entry when the pmap layer is driven
     without the VM object tier (the protocol property tests): the page is
     implicitly born dirty, exactly like a zero-fill. Under the full
     stack the Invariant checker still rejects mappings into Empty. *)
  | Empty -> e.st <- Dirty
  | Reading -> ()  (* the page-in DMA itself landing; not a mutation *)
  | Clean -> e.st <- Dirty
  | Dirty -> ()
  | Writeback ->
      if not e.redirtied then begin
        e.redirtied <- true;
        t.redirtied_count <- t.redirtied_count + 1
      end

(* A frame whose disk I/O is in flight must never be claimed: Reading and
   Writeback are the RWLock-style pending states. *)
let evictable t ~lpage =
  match (entry t ~lpage).st with
  | Clean | Dirty -> true
  | Empty | Reading | Writeback -> false

let start_writeback t ~lpage ~now ~by_cpu =
  let e = entry t ~lpage in
  match e.st with
  | Dirty ->
      (* Dirty is the only entry arrow into Writeback, which is what makes
         "Writeback implies previously Dirty" structural. *)
      e.st <- Writeback;
      e.redirtied <- false;
      let ns = write_cost t ~lpage in
      e.wb_done_at <- now +. ns;
      t.in_flight <- lpage :: t.in_flight;
      t.writebacks_started <- t.writebacks_started + 1;
      t.disk_write_total <- t.disk_write_total +. ns;
      charge t ~by_cpu ~cat:Profile.Disk_write ~lpage ns;
      emit t (Event.Writeback_started { lpage })
  | Empty | Reading | Clean | Writeback -> bad t ~lpage ~op:"start_writeback"

let complete_one t lpage =
  let e = entry t ~lpage in
  let redirtied = e.redirtied in
  e.st <- (if redirtied then Dirty else Clean);
  e.redirtied <- false;
  t.writebacks_completed <- t.writebacks_completed + 1;
  emit t (Event.Writeback_done { lpage; redirtied })

let complete_due t ~now =
  let due, still =
    List.partition (fun lpage -> (entry t ~lpage).wb_done_at <= now) t.in_flight
  in
  t.in_flight <- still;
  List.iter (complete_one t) due;
  List.length due

let force_complete t =
  let due = t.in_flight in
  t.in_flight <- [];
  List.iter (complete_one t) due;
  List.length due

(* Scan the entry table round-robin from the persistent cursor and push up
   to [max] Dirty entries into Writeback; returns how many were started.
   The cursor survives across ticks so writeback pressure spreads over the
   whole pool instead of hammering the low lpages. *)
let start_writebacks t ~now ~by_cpu ~max =
  let n = Array.length t.entries in
  let started = ref 0 in
  let scanned = ref 0 in
  while !started < max && !scanned < n do
    let lpage = t.wb_cursor in
    t.wb_cursor <- (t.wb_cursor + 1) mod n;
    incr scanned;
    if t.entries.(lpage).st = Dirty then begin
      start_writeback t ~lpage ~now ~by_cpu;
      incr started
    end
  done;
  !started

(* Eviction-time synchronous flush: the pageout daemon found a Dirty
   victim, so the eviction pays the full disk write before the frame can
   be reused ("only Dirty frames pay writeback"). *)
let sync_writeback t ~lpage ~by_cpu =
  let e = entry t ~lpage in
  match e.st with
  | Dirty ->
      let ns = write_cost t ~lpage in
      e.st <- Clean;
      t.sync_writebacks <- t.sync_writebacks + 1;
      t.disk_write_total <- t.disk_write_total +. ns;
      charge t ~by_cpu ~cat:Profile.Disk_write ~lpage ns
  | Empty | Reading | Clean | Writeback -> bad t ~lpage ~op:"sync_writeback"

let note_evicted t ~lpage ~dirty =
  if dirty then t.dirty_evictions <- t.dirty_evictions + 1
  else t.clean_evictions <- t.clean_evictions + 1;
  emit t (Event.Page_evicted { lpage; dirty })

(* Freeing an lpage abandons its entry unconditionally: an in-flight
   writeback is cancelled (the disk time was already charged; the result
   no longer matters), everything else just drops to Empty. Never raises —
   the manual [System.page_out] API frees pages in any state. *)
let note_free t ~lpage =
  let e = entry t ~lpage in
  (match e.st with
  | Writeback ->
      t.in_flight <- List.filter (fun l -> l <> lpage) t.in_flight;
      t.writebacks_canceled <- t.writebacks_canceled + 1
  | Empty | Reading | Clean | Dirty -> ());
  e.st <- Empty;
  e.redirtied <- false

let count t st =
  Array.fold_left (fun acc e -> if e.st = st then acc + 1 else acc) 0 t.entries

(* Paging activity, not state census: zero-fills leave every touched page
   Dirty even on a machine with ample RAM, so [active] keys off the
   events that only pressure can cause. Clean-run reports stay
   byte-identical because this stays false. *)
let active t =
  t.page_ins > 0 || t.writebacks_started > 0 || t.sync_writebacks > 0
  || t.clean_evictions > 0 || t.dirty_evictions > 0

let stats t =
  {
    page_ins = t.page_ins;
    writebacks_started = t.writebacks_started;
    writebacks_completed = t.writebacks_completed;
    writebacks_canceled = t.writebacks_canceled;
    sync_writebacks = t.sync_writebacks;
    redirtied = t.redirtied_count;
    clean_evictions = t.clean_evictions;
    dirty_evictions = t.dirty_evictions;
    disk_read_ns = t.disk_read_total;
    disk_write_ns = t.disk_write_total;
    n_clean = count t Clean;
    n_dirty = count t Dirty;
    n_writeback = count t Writeback;
  }
