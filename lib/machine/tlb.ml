type 'a t = {
  mask : int;
  pmaps : int array;
  vpages : int array;
  slots : 'a option array;
  mutable hits : int;
  mutable misses : int;
  mutable shootdowns : int;
}

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

let create ?(slots = 1024) () =
  if slots <= 0 then invalid_arg "Tlb.create: slots must be positive";
  let size = pow2_at_least slots 1 in
  {
    mask = size - 1;
    pmaps = Array.make size (-1);
    vpages = Array.make size (-1);
    slots = Array.make size None;
    hits = 0;
    misses = 0;
    shootdowns = 0;
  }

let size t = t.mask + 1

(* Direct-mapped by virtual page; the pmap id perturbs the index so that
   the same vpage in different address spaces does not always collide. *)
let index t ~pmap ~vpage = (vpage lxor (pmap * 61)) land t.mask

let lookup t ~pmap ~vpage =
  let i = index t ~pmap ~vpage in
  if t.pmaps.(i) = pmap && t.vpages.(i) = vpage then begin
    match t.slots.(i) with
    | Some _ as payload ->
        t.hits <- t.hits + 1;
        payload
    | None ->
        t.misses <- t.misses + 1;
        None
  end
  else begin
    t.misses <- t.misses + 1;
    None
  end

let insert t ~pmap ~vpage payload =
  let i = index t ~pmap ~vpage in
  t.pmaps.(i) <- pmap;
  t.vpages.(i) <- vpage;
  t.slots.(i) <- Some payload

let invalidate t ~pmap ~vpage =
  let i = index t ~pmap ~vpage in
  if t.pmaps.(i) = pmap && t.vpages.(i) = vpage && t.slots.(i) <> None then begin
    t.pmaps.(i) <- -1;
    t.vpages.(i) <- -1;
    t.slots.(i) <- None;
    t.shootdowns <- t.shootdowns + 1;
    true
  end
  else false

let flush t =
  Array.fill t.pmaps 0 (Array.length t.pmaps) (-1);
  Array.fill t.vpages 0 (Array.length t.vpages) (-1);
  Array.fill t.slots 0 (Array.length t.slots) None

let hits t = t.hits
let misses t = t.misses
let shootdowns t = t.shootdowns
