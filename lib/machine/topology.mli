(** Textual rendering of the machine architecture (Figure 1 of the paper).

    The figure itself is a diagram; we regenerate it as an ASCII topology
    derived from the live {!Config.t}, so any reconfiguration of the
    simulated machine is reflected in the reproduced figure. *)

val render : Config.t -> string
(** Multi-line drawing. Classic configs reproduce Figure 1: processor
    modules with MMU and local memory on the IPC bus, global memory
    boards, and the measured reference times. Configs with an explicit
    {!Topo.t} get the general N-node rendering: node boxes (with or
    without a shared memory board) and the fetch latency matrix. *)

val summary : Config.t -> string
(** One-line description, e.g. for log headers. *)
