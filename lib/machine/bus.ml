type link = {
  bw : float;  (** words per ns on this directed link *)
  mutable link_clears_at : float;
}

type t = {
  words_per_ns : float;
  links : link array array option;
      (** per-directed-link fluid queues when the topology prices links
          individually; [None] = one shared bus *)
  obs : Numa_obs.Hub.t;
  degrades : (int * int, float) Hashtbl.t;
      (** fault injection: (src, dst) -> bandwidth divisor currently active *)
  mutable backlog_clears_at : float;  (** virtual time when queued traffic drains *)
  mutable total_words : int;
  mutable total_delay_ns : float;
}

let create ?obs (config : Config.t) =
  let links =
    match (Config.topology config).Topo.link_words_per_ns with
    | None -> None
    | Some m ->
        Some (Array.map (Array.map (fun bw -> { bw; link_clears_at = 0. })) m)
  in
  {
    words_per_ns = config.bus_words_per_ns;
    links;
    obs = (match obs with Some h -> h | None -> Numa_obs.Hub.create ());
    degrades = Hashtbl.create 8;
    backlog_clears_at = 0.;
    total_words = 0;
    total_delay_ns = 0.;
  }

let enabled t = t.words_per_ns > 0. || t.links <> None

let set_degrade t ~src ~dst ~factor =
  if factor < 1. then invalid_arg "Bus.set_degrade: factor must be >= 1";
  Hashtbl.replace t.degrades (src, dst) factor

let clear_degrade t ~src ~dst = Hashtbl.remove t.degrades (src, dst)

let degrade_factor t ~src ~dst =
  match Hashtbl.find_opt t.degrades (src, dst) with Some f -> f | None -> 1.

(* A single shared bus has no per-pair queues, so a degraded "link" slows
   the whole bus by the worst active factor — pessimistic, but it keeps
   link-degrade faults meaningful on bus machines like the ACE. *)
let shared_factor t =
  Hashtbl.fold (fun _ f acc -> Float.max f acc) t.degrades 1.

let charge t ~cpu ~now ~words ~bw ~clears_at ~set_clears_at =
  t.total_words <- t.total_words + words;
  let service_ns = float_of_int words /. bw in
  let start = Float.max now clears_at in
  let delay = start -. now in
  set_clears_at (start +. service_ns);
  t.total_delay_ns <- t.total_delay_ns +. delay;
  if delay > 0. && Numa_obs.Hub.enabled t.obs then
    Numa_obs.Hub.emit t.obs (Numa_obs.Event.Bus_queued { cpu; words; delay_ns = delay });
  delay

let delay_ns ?(cpu = 0) ?src ?dst t ~now ~words =
  if words <= 0 then 0.
  else
    match (t.links, src, dst) with
    | Some m, Some s, Some d ->
        let link = m.(s).(d) in
        if link.bw <= 0. then 0.
        else
          let bw = link.bw /. degrade_factor t ~src:s ~dst:d in
          charge t ~cpu ~now ~words ~bw ~clears_at:link.link_clears_at
            ~set_clears_at:(fun at -> link.link_clears_at <- at)
    | _ ->
        if t.words_per_ns <= 0. then 0.
        else
          let bw = t.words_per_ns /. shared_factor t in
          charge t ~cpu ~now ~words ~bw ~clears_at:t.backlog_clears_at
            ~set_clears_at:(fun at -> t.backlog_clears_at <- at)

let total_words t = t.total_words
let total_delay_ns t = t.total_delay_ns
