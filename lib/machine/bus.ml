type t = {
  words_per_ns : float;
  obs : Numa_obs.Hub.t;
  mutable backlog_clears_at : float;  (** virtual time when queued traffic drains *)
  mutable total_words : int;
  mutable total_delay_ns : float;
}

let create ?obs (config : Config.t) =
  {
    words_per_ns = config.bus_words_per_ns;
    obs = (match obs with Some h -> h | None -> Numa_obs.Hub.create ());
    backlog_clears_at = 0.;
    total_words = 0;
    total_delay_ns = 0.;
  }

let enabled t = t.words_per_ns > 0.

let delay_ns ?(cpu = 0) t ~now ~words =
  if not (enabled t) || words <= 0 then 0.
  else begin
    t.total_words <- t.total_words + words;
    let service_ns = float_of_int words /. t.words_per_ns in
    let start = Float.max now t.backlog_clears_at in
    let delay = start -. now in
    t.backlog_clears_at <- start +. service_ns;
    t.total_delay_ns <- t.total_delay_ns +. delay;
    if delay > 0. && Numa_obs.Hub.enabled t.obs then
      Numa_obs.Hub.emit t.obs (Numa_obs.Event.Bus_queued { cpu; words; delay_ns = delay });
    delay
  end

let total_words t = t.total_words
let total_delay_ns t = t.total_delay_ns
