type local_frame = { node : int; id : int; mutable cell : int; mutable lpage : int }

type node_pool = {
  capacity : int;
  mutable free : local_frame list;
  mutable in_use : int;
  free_set : (int, unit) Hashtbl.t;  (** ids currently free, to detect double frees *)
  mutable online : bool;  (** offline pools refuse allocation *)
  mutable limit : int;  (** effective capacity; squeezed below [capacity] by faults *)
  mutable pt_in_use : int;  (** frames of [in_use] backing page-table pages *)
}

type t = {
  globals : int array;
  pools : node_pool array;
  mutable paging : Paging.t option;
}

let create (config : Config.t) =
  let topo = Config.topology config in
  let make_pool node =
    let capacity = Topo.pool_pages topo ~node in
    let frames = List.init capacity (fun id -> { node; id; cell = 0; lpage = -1 }) in
    let free_set = Hashtbl.create 64 in
    List.iter (fun f -> Hashtbl.replace free_set f.id ()) frames;
    {
      capacity;
      free = frames;
      in_use = 0;
      free_set;
      online = true;
      limit = capacity;
      pt_in_use = 0;
    }
  in
  {
    globals = Array.make config.global_pages 0;
    pools = Array.init (Topo.cpu_nodes topo) make_pool;
    paging = None;
  }

let attach_paging t paging = t.paging <- Some paging
let paging t = t.paging

let mark_dirty t ~lpage =
  match t.paging with
  | Some p when lpage >= 0 -> Paging.mark_dirty p ~lpage
  | _ -> ()

let read_global t ~lpage = t.globals.(lpage)

let write_global t ~lpage v =
  t.globals.(lpage) <- v;
  mark_dirty t ~lpage

let alloc_local t ~node =
  let pool = t.pools.(node) in
  if (not pool.online) || pool.in_use >= pool.limit then None
  else
    match pool.free with
    | [] -> None
    | frame :: rest ->
        pool.free <- rest;
        pool.in_use <- pool.in_use + 1;
        Hashtbl.remove pool.free_set frame.id;
        frame.cell <- 0;
        frame.lpage <- -1;
        Some frame

let free_local t frame =
  let pool = t.pools.(frame.node) in
  if Hashtbl.mem pool.free_set frame.id then
    invalid_arg
      (Printf.sprintf "Frame_table.free_local: double free of frame %d on node %d"
         frame.id frame.node);
  Hashtbl.replace pool.free_set frame.id ();
  pool.free <- frame :: pool.free;
  pool.in_use <- pool.in_use - 1;
  frame.lpage <- -1

(* Page-table pages draw from the same pools as data pages — that is the
   point: table pages compete for local memory and are visible to
   pressure. The pt counter only tracks the split for the census. *)
let alloc_pt t ~node =
  match alloc_local t ~node with
  | None -> None
  | Some frame ->
      let pool = t.pools.(node) in
      pool.pt_in_use <- pool.pt_in_use + 1;
      Some frame

let free_pt t frame =
  let pool = t.pools.(frame.node) in
  if pool.pt_in_use <= 0 then
    invalid_arg
      (Printf.sprintf
         "Frame_table.free_pt: frame %d on node %d was not allocated as a page-table \
          page"
         frame.id frame.node);
  pool.pt_in_use <- pool.pt_in_use - 1;
  free_local t frame

let pt_in_use t ~node = t.pools.(node).pt_in_use

let local_in_use t ~node = t.pools.(node).in_use

let local_capacity t ~node =
  let pool = t.pools.(node) in
  if pool.online then pool.limit else 0

let node_online t ~node = t.pools.(node).online
let set_node_online t ~node online = t.pools.(node).online <- online

let squeeze t ~node ~frac =
  if frac < 0. || frac > 1. then invalid_arg "Frame_table.squeeze: frac not in [0,1]";
  let pool = t.pools.(node) in
  (* In-use frames above the new limit stay allocated; the squeeze only
     gates future allocations, like a real balloon driver. Round half-up:
     plain truncation undershoots on binary-float artifacts (0.3 * 10 =
     2.9999... would squeeze a 10-frame pool to 2, and frac = 1.0 could
     fail to restore full capacity). *)
  pool.limit <- int_of_float ((frac *. float_of_int pool.capacity) +. 0.5);
  pool.limit

let frame_is_free t (frame : local_frame) =
  Hashtbl.mem t.pools.(frame.node).free_set frame.id

let read_local (f : local_frame) = f.cell

let write_local t (f : local_frame) v =
  f.cell <- v;
  mark_dirty t ~lpage:f.lpage

let copy_global_to_local t ~lpage frame =
  frame.cell <- t.globals.(lpage);
  frame.lpage <- lpage

(* Syncing a local copy back to the global master is not a new mutation:
   the store that dirtied the local frame already marked the page, so the
   direct assignment here deliberately bypasses [write_global]'s hook. *)
let copy_local_to_global t frame ~lpage = t.globals.(lpage) <- frame.cell

let zero_local t ~lpage frame =
  frame.cell <- 0;
  frame.lpage <- lpage;
  mark_dirty t ~lpage

let zero_global t ~lpage =
  t.globals.(lpage) <- 0;
  mark_dirty t ~lpage
