(** Physical page frames.

    Following the paper's two-level model, global memory is identical in
    size to the Mach logical page pool: logical page [l] *is* global frame
    [l] (section 2.3.1). Local memories are caches: local frames are
    allocated on demand from a fixed per-node pool when the NUMA manager
    replicates or migrates a page, and freed when copies are flushed.

    Each frame carries a single integer cell standing in for the page's
    contents. The protocol's copy/sync operations move the cell, which lets
    the test suite check coherence (a read must observe the value of the
    most recent write) without simulating full page data.

    Fault injection can take a node's pool {e offline} (allocation refused,
    capacity reported as 0 so callers fall back to global memory) or
    {e squeeze} it to a fraction of its capacity; frames already handed out
    stay valid either way, so the NUMA manager can still sync and free them
    while draining a dying node. *)

type local_frame = private {
  node : int;  (** owning local memory *)
  id : int;  (** unique among this node's frames *)
  mutable cell : int;
  mutable lpage : int;
      (** the logical page this frame currently caches, [-1] when free or
          not yet bound; lets stores through the frame reach the paging
          state machine's dirty tracking *)
}

type t

val create : Config.t -> t

val attach_paging : t -> Paging.t -> unit
(** Install the paging state machine: from then on {!write_global},
    {!write_local} and the zero-fills mark the written page Dirty. Without
    it (the default, and every direct Frame_table test) all hooks are
    no-ops. *)

val paging : t -> Paging.t option

(** {1 Global frames} *)

val read_global : t -> lpage:int -> int
val write_global : t -> lpage:int -> int -> unit

(** {1 Local frames} *)

val alloc_local : t -> node:int -> local_frame option
(** Take a frame from a node's pool; [None] when the local memory is full,
    squeezed to its limit, or offline (the caller then falls back to a
    GLOBAL placement, possibly after reclaiming). *)

val free_local : t -> local_frame -> unit
(** Return a frame to its pool (works on an offline pool: draining a dead
    node frees its frames). Raises [Invalid_argument] — naming the frame
    and node — on double free. *)

val alloc_pt : t -> node:int -> local_frame option
(** {!alloc_local}, but the frame will back a page-table page: it draws
    from the same pool (table pages compete with data pages for local
    memory, and a squeezed or offline pool refuses them identically) and
    is additionally counted in {!pt_in_use} so the invariant sweep can
    audit the split. *)

val free_pt : t -> local_frame -> unit
(** Return a page-table frame taken with {!alloc_pt}. Raises
    [Invalid_argument] when the pool's page-table census is already zero
    (the frame cannot have been a table page). *)

val pt_in_use : t -> node:int -> int
(** How many of the node's in-use frames currently back page-table
    pages. *)

val local_in_use : t -> node:int -> int

val local_capacity : t -> node:int -> int
(** Effective capacity: the squeeze limit while online, 0 while offline.
    The NUMA manager's "node full" pre-demotion reads this, so LOCAL
    answers degrade to GLOBAL on a dead or squeezed node. *)

val node_online : t -> node:int -> bool
val set_node_online : t -> node:int -> bool -> unit

val squeeze : t -> node:int -> frac:float -> int
(** Shrink (or restore, [frac = 1.]) the node's allocation limit to
    [frac] of its capacity, rounding half-up (so [frac = 1.0] restores
    full capacity exactly); returns the new limit. Frames in use above the
    limit stay valid — only future allocations are gated. *)

val frame_is_free : t -> local_frame -> bool
(** Whether the frame currently sits in its pool's free list (a mapping or
    replica pointing at such a frame is a protocol invariant violation). *)

val read_local : local_frame -> int

val write_local : t -> local_frame -> int -> unit
(** Store through a local mapping; marks the frame's bound page Dirty
    when paging is attached. *)

(** {1 Page transfers}

    These move cell contents the way the kernel's copy loops move words;
    they do no cost accounting (the caller charges {!Cost}).
    [copy_global_to_local] binds the frame to [lpage];
    [copy_local_to_global] deliberately does {e not} re-mark the page
    Dirty — the store that dirtied the local copy already did. *)

val copy_global_to_local : t -> lpage:int -> local_frame -> unit
val copy_local_to_global : t -> local_frame -> lpage:int -> unit

val zero_local : t -> lpage:int -> local_frame -> unit
(** Zero-fill a local frame as the first materialisation of [lpage];
    binds the frame and marks the page Dirty. *)

val zero_global : t -> lpage:int -> unit
