(** The Inter-Processor Communication bus.

    Every reference to global memory (and every word of a page copy that
    crosses the bus) consumes IPC-bus bandwidth. The paper's measurement
    method explicitly assumes runs "relatively free of lock, bus or memory
    contention"; this model lets the bus-contention ablation check where
    that assumption breaks.

    The model is a deterministic fluid queue: traffic drains at the
    configured bandwidth; arrivals beyond the drain rate accumulate a
    backlog, and each batch of references is delayed by the backlog in
    front of it. With [bus_words_per_ns = 0] the bus is infinite and
    {!delay_ns} always returns 0.

    A topology with a per-link bandwidth matrix
    ({!Topo.link_words_per_ns}) gets one independent fluid queue per
    directed (src, dst) node pair instead of the single shared queue;
    links priced 0 are unmodelled (no contention). *)

type t

val create : ?obs:Numa_obs.Hub.t -> Config.t -> t
(** [obs] receives a {!Numa_obs.Event.Bus_queued} event whenever traffic
    finds a backlog (only when a sink is attached; free otherwise). *)

val enabled : t -> bool

val delay_ns : ?cpu:int -> ?src:int -> ?dst:int -> t -> now:float -> words:int -> float
(** Register [words] of interconnect traffic starting at virtual time
    [now] and return the queueing delay those words suffer. [now] must be
    non-decreasing across calls up to the engine's event ordering; small
    reorderings are tolerated (the backlog simply drains less). [cpu]
    (default 0) attributes the traffic in emitted events. [src]/[dst]
    name the node pair the traffic crosses; with a per-link bandwidth
    matrix they select the link's own queue, otherwise the shared bus is
    charged. *)

val set_degrade : t -> src:int -> dst:int -> factor:float -> unit
(** Fault injection: divide the bandwidth of the directed link
    [src -> dst] by [factor] (>= 1, else [Invalid_argument]) until
    {!clear_degrade}. On a machine with a single shared bus the whole bus
    slows by the worst active factor, since there is no per-pair queue. *)

val clear_degrade : t -> src:int -> dst:int -> unit
(** Restore the link's full bandwidth. Clearing an undegraded link is a
    no-op. *)

val total_words : t -> int
(** Total traffic ever offered. *)

val total_delay_ns : t -> float
(** Total queueing delay ever charged. *)
