(** Machine configuration: geometry and reference timing.

    The defaults are the IBM ACE prototype the paper measured: up to eight
    ROMP processor modules with 8 MB of local memory each, one or more
    16 MB global memory boards on the 80 MB/s IPC bus, and the measured
    32-bit reference times of section 2.2 (local fetch 0.65 us, local store
    0.84 us, global fetch 1.5 us, global store 1.4 us). *)

type t = {
  n_cpus : int;  (** processor modules; the ACE backplane allows 1-8 *)
  page_size_words : int;  (** 32-bit words per page (ROMP pages are 2 KB) *)
  local_pages_per_cpu : int;  (** capacity of each local-memory cache *)
  global_pages : int;  (** global memory = the Mach logical page pool *)
  local_fetch_ns : float;
  local_store_ns : float;
  global_fetch_ns : float;
  global_store_ns : float;
  remote_fetch_ns : float;  (** another node's local memory; unused by default policies *)
  remote_store_ns : float;
  bus_words_per_ns : float;
      (** IPC-bus bandwidth in 32-bit words per nanosecond; 0 disables
          contention modelling (infinite bus). The real bus moves 80 MB/s
          = 0.02 words/ns *)
  fault_trap_ns : float;  (** fixed cost of taking and dispatching a page fault *)
  pmap_action_ns : float;  (** bookkeeping per NUMA-manager protocol action *)
  tlb_shootdown_ns : float;  (** dropping one mapping on one processor *)
}

val ace : ?n_cpus:int -> ?local_pages_per_cpu:int -> ?global_pages:int -> unit -> t
(** The "typical" ACE of the paper: [n_cpus] defaults to 7 (the
    configuration of Table 4), 2 KB pages, 8 MB local memory per CPU and
    16 MB of global memory, with the measured reference times. *)

val butterfly_like : ?n_cpus:int -> unit -> t
(** A machine without physically global memory, in the style of the BBN
    Butterfly / IBM RP3 the paper discusses in section 4.4: all memory
    belongs to some processor, and "global" placement actually means a
    page in somebody's (slower to everyone else) local memory. Modelled by
    pricing the global level at the remote timings — section 4.4's
    expectation that "remote memory is likely to be significantly slower
    than global memory on most machines". The placement machinery is
    unchanged; the paper argues such machines would lean on pragmas. *)

val validate : t -> (t, string) result
(** Checks that geometry and timings are positive and mutually consistent. *)

val global_to_local_fetch_ratio : t -> float
(** G/L for pure fetch streams: 2.3 on the ACE. *)

val global_to_local_ratio : t -> store_fraction:float -> float
(** G/L for a mixed reference stream; the paper quotes "about 2" at 45%
    stores. *)

val page_size_bytes : t -> int

val pp : Format.formatter -> t -> unit
