(** Machine configuration: geometry and reference timing.

    The defaults are the IBM ACE prototype the paper measured: up to eight
    ROMP processor modules with 8 MB of local memory each, one or more
    16 MB global memory boards on the 80 MB/s IPC bus, and the measured
    32-bit reference times of section 2.2 (local fetch 0.65 us, local store
    0.84 us, global fetch 1.5 us, global store 1.4 us). *)

type t = {
  n_cpus : int;  (** processor modules; the ACE backplane allows 1-8 *)
  page_size_words : int;  (** 32-bit words per page (ROMP pages are 2 KB) *)
  local_pages_per_cpu : int;  (** capacity of each local-memory cache *)
  global_pages : int;  (** global memory = the Mach logical page pool *)
  local_fetch_ns : float;
  local_store_ns : float;
  global_fetch_ns : float;
  global_store_ns : float;
  remote_fetch_ns : float;  (** another node's local memory; unused by default policies *)
  remote_store_ns : float;
  bus_words_per_ns : float;
      (** IPC-bus bandwidth in 32-bit words per nanosecond; 0 disables
          contention modelling (infinite bus). The real bus moves 80 MB/s
          = 0.02 words/ns *)
  fault_trap_ns : float;  (** fixed cost of taking and dispatching a page fault *)
  pmap_action_ns : float;  (** bookkeeping per NUMA-manager protocol action *)
  tlb_shootdown_ns : float;  (** dropping one mapping on one processor *)
  disk_read_ns : float;
      (** fixed latency (seek + rotation) of one page-in from the modeled
          backing store; the per-word transfer is added by {!Cost} *)
  disk_write_ns : float;  (** fixed latency of one page writeback *)
  topology : Topo.t option;
      (** explicit N-node distance-matrix topology; [None] means the
          classic two-level ACE derived from the scalar fields (see
          {!topology}). When present, the matrix is authoritative for the
          simulator; the scalar timing fields hold class representatives
          for analysis code that still thinks in the three classes. *)
}

val ace : ?n_cpus:int -> ?local_pages_per_cpu:int -> ?global_pages:int -> unit -> t
(** The "typical" ACE of the paper: [n_cpus] defaults to 7 (the
    configuration of Table 4), 2 KB pages, 8 MB local memory per CPU and
    16 MB of global memory, with the measured reference times. *)

val butterfly_like : ?n_cpus:int -> unit -> t
(** A machine without physically global memory, in the style of the BBN
    Butterfly / IBM RP3 the paper discusses in section 4.4: all memory
    belongs to some processor, and "global" placement actually means a
    page in somebody's (slower to everyone else) local memory. Modelled by
    pricing the global level at the remote timings — section 4.4's
    expectation that "remote memory is likely to be significantly slower
    than global memory on most machines". The placement machinery is
    unchanged; the paper argues such machines would lean on pragmas. *)

val topology : t -> Topo.t
(** The machine's topology. With an explicit [topology] field, that; for
    a classic config, the two-level ACE shape derived on demand from the
    scalar fields — so record-update tweaks of the scalars (the G/L
    sweep) are always reflected. The derived matrix copies the scalars
    verbatim: costs computed from it are bit-identical to the scalar
    cost model. *)

val with_topology : t -> Topo.t -> t
(** Install an explicit topology, rewriting [n_cpus] and the scalar
    timing fields to class representatives as seen by node 0 (so
    class-based analysis code keeps making sense). The shared-level
    representative is the memory board's row, or — on a striped machine —
    the round-robin average over stripe homes. *)

val butterfly : ?n_cpus:int -> ?local_pages_per_cpu:int -> ?global_pages:int -> unit -> t
(** A true all-local Butterfly/RP3-class machine as an explicit topology:
    every node is a CPU node, there is no memory board, and the shared
    ("global") level is striped round-robin over the nodes' local
    memories — so a shared reference is local-speed when the stripe home
    is the referencing node and remote-speed otherwise. Contrast with
    {!butterfly_like}, which merely reprices the two-level shared board. *)

val multi_socket : ?n_cpus:int -> ?local_pages_per_cpu:int -> ?global_pages:int -> unit -> t
(** A two-tier multi-socket machine: CPU nodes in adjacent pairs
    (sockets), remote references within a socket cheaper than across
    sockets, plus a shared memory board. [n_cpus] defaults to 4. *)

val builtin_topologies : string list
(** Names accepted by {!of_topology_name}. *)

val of_topology_name : ?n_cpus:int -> string -> t option
(** Build a named built-in machine: ["ace"], ["butterfly-like"],
    ["butterfly"] or ["multi-socket"]. *)

val validate : t -> (t, string) result
(** Checks that geometry and timings are positive and mutually
    consistent, including the topology fields when present (square
    matrices, positive latencies, pool sizes, node-count agreement). *)

val global_to_local_fetch_ratio : t -> float
(** G/L for pure fetch streams: 2.3 on the ACE. *)

val global_to_local_ratio : t -> store_fraction:float -> float
(** G/L for a mixed reference stream; the paper quotes "about 2" at 45%
    stores. *)

val page_size_bytes : t -> int

val pp : Format.formatter -> t -> unit
