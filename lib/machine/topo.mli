(** General N-node NUMA topology: a per-pair distance (latency) matrix.

    The paper's placement machinery is machine-independent; this module
    makes the machine layer so too. A topology is a set of nodes — each
    CPU node carries a processor plus a pool of local page frames; at most
    one further node is a memory-only board — and two N x N latency
    matrices giving the fetch and store cost of one 32-bit reference from
    any node to memory on any node.

    The ACE of the paper is the two-level special case ({!two_level}):
    CPU nodes with identical latencies plus one shared memory board. A
    Butterfly/RP3-class machine has no board: the shared ("global") level
    is striped round-robin over the CPU nodes' own memories
    ({!global_home}), so a shared reference is fast when the stripe lands
    on the referencing node. Multi-socket machines get distinct near/far
    remote latencies in the matrix.

    The three {!Location.relative} classes survive as reporting buckets
    ({!classify}); precise costs come from the matrix. *)

type t = {
  name : string;  (** short identifier, e.g. ["ace"], ["butterfly"] *)
  cpu_nodes : int;
      (** nodes [0 .. cpu_nodes-1] each carry a CPU and its local memory;
          CPUs and CPU nodes share an index space as on the ACE *)
  mem_node : int option;
      (** index of the memory-only node backing the shared ("global")
          level; [None] stripes the shared level over the CPU nodes *)
  pool_pages : int array;
      (** per-CPU-node local frame pool capacity; length [cpu_nodes] *)
  fetch_ns : float array array;
      (** [fetch_ns.(from).(at)]: one 32-bit fetch issued by node [from]
          to memory on node [at] *)
  store_ns : float array array;  (** likewise for stores *)
  link_words_per_ns : float array array option;
      (** per-directed-link interconnect bandwidth; [None] means a single
          shared bus (the config's [bus_words_per_ns]); an entry of 0
          leaves that link's contention unmodelled *)
}

type place = Node of int | Shared of int
(** A physical residence: memory on a specific node, or logical page
    [lpage] in the shared level (whose node is {!global_home}). *)

val n_nodes : t -> int
val cpu_nodes : t -> int
val mem_node : t -> int option
val name : t -> string

val pool_pages : t -> node:int -> int
(** Local-pool capacity of a CPU node. *)

val fetch_ns : t -> from:int -> at:int -> float
val store_ns : t -> from:int -> at:int -> float

val link_words_per_ns : t -> from:int -> at:int -> float option
(** Modelled bandwidth of the directed link [from -> at], in 32-bit words
    per nanosecond. [None] when the machine has a single shared bus (no
    per-link matrix) or when the matrix leaves this link unmodelled
    (entry 0). Bandwidth-aware policies treat [None] as "no link-pressure
    information". *)

val global_home : t -> lpage:int -> int
(** The node whose memory holds logical page [lpage] when it lives in
    the shared level: the memory board if there is one, otherwise
    [lpage mod cpu_nodes]. *)

val place_node : t -> place -> int

val nearest_cpu : t -> from:int -> ok:(int -> bool) -> int option
(** The CPU node closest to [from] by fetch latency among those passing
    [ok] (lowest index on ties); [None] when none passes. Used to pick a
    re-home target for threads stranded on a node that went offline. *)

val classify : t -> cpu:int -> place -> Location.relative
(** Reporting bucket of a place as seen from [cpu]: the shared level is
    always [In_global]; a node place is [Local_here] or [Remote_local]. *)

val place_to_string : place -> string

val two_level :
  name:string ->
  n_cpus:int ->
  pool_pages:int ->
  local_fetch_ns:float ->
  local_store_ns:float ->
  global_fetch_ns:float ->
  global_store_ns:float ->
  remote_fetch_ns:float ->
  remote_store_ns:float ->
  unit ->
  t
(** The classic ACE shape: [n_cpus] CPU nodes plus a shared memory board,
    with class-uniform latencies (the matrix entries are exactly the six
    scalars, so costs derived from it match the scalar cost model
    bit-for-bit). *)

val validate : t -> (t, string) result
(** Square matrices, positive latencies (diagonals included), pool sizes
    non-negative, [mem_node] consistent with the node count, link
    bandwidths non-negative. *)

val pp : Format.formatter -> t -> unit
