type t = No_access | Read_only | Read_write

let rank = function No_access -> 0 | Read_only -> 1 | Read_write -> 2

let compare a b = Int.compare (rank a) (rank b)

let allows t access =
  match (t, access) with
  | No_access, (Access.Load | Access.Store) -> false
  | Read_only, Access.Load -> true
  | Read_only, Access.Store -> false
  | Read_write, (Access.Load | Access.Store) -> true

let of_access = function Access.Load -> Read_only | Access.Store -> Read_write

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let to_string = function
  | No_access -> "none"
  | Read_only -> "read-only"
  | Read_write -> "read-write"

let pp ppf t = Format.pp_print_string ppf (to_string t)
