(** Per-frame paging state machine over the modeled backing store.

    Global memory is a cache over a (much slower) paging device; this
    module tracks one entry per logical page through the classic cache
    states

    {v
      Empty -> Reading -> Clean <-> Dirty -> Writeback -> Clean|Dirty
    v}

    in the style of a cache state machine with RWLock-style pending
    states: [Reading] and [Writeback] mark in-flight disk I/O, and the
    pageout path refuses to evict or double-claim such entries
    ({!evictable}). Disk latency is priced by {!Cost.disk_read_ns} /
    {!Cost.disk_write_ns} and charged through the {!Cost_sink} (category
    [Disk_read] / [Disk_write]); transitions are mirrored to the
    observability hub as [Page_in] / [Page_evicted] / [Writeback_started]
    / [Writeback_done] events.

    All transition functions raise [Invalid_argument] on an arrow that is
    not in the diagram, except {!note_free}, which must accept any state
    (freeing cancels in-flight writebacks). *)

type state = Empty | Reading | Clean | Dirty | Writeback

val state_name : state -> string

type stats = {
  page_ins : int;
  writebacks_started : int;
  writebacks_completed : int;
  writebacks_canceled : int;
  sync_writebacks : int;  (** eviction-time synchronous flushes of Dirty victims *)
  redirtied : int;  (** stores that raced an in-flight writeback *)
  clean_evictions : int;
  dirty_evictions : int;
  disk_read_ns : float;  (** total modeled page-in time *)
  disk_write_ns : float;  (** total modeled writeback time (sync + async) *)
  n_clean : int;  (** state census at snapshot time *)
  n_dirty : int;
  n_writeback : int;
}

type t

val create : ?sink:Cost_sink.t -> ?obs:Numa_obs.Hub.t -> config:Config.t -> unit -> t
(** One entry per [config.global_pages] logical page, all [Empty]. *)

val state : t -> lpage:int -> state
val n_pages : t -> int

val in_flight_lpages : t -> int list
(** Exactly the entries currently in [Writeback]; the Invariant checker
    cross-checks this against the per-entry states. *)

val touch : t -> lpage:int -> unit
(** Bump the entry's last-use tick (called on every fault-time entry);
    feeds the LRU-approx victim policy. *)

val last_use : t -> lpage:int -> int

val begin_read : t -> lpage:int -> unit
(** [Empty | Dirty] -> [Reading]: a page-in starts. The [Dirty] arrow
    covers the pager overwriting a zero-filled entry that was never
    entered. *)

val end_read : t -> lpage:int -> unit
(** [Reading] -> [Clean]: the page-in landed; counts and emits
    [Page_in]. The disk-read time itself is charged by the fault path,
    which knows the faulting CPU. *)

val note_zero_fill : t -> lpage:int -> unit
(** [Empty | Dirty] -> [Dirty]: a zero-filled page has no backing copy,
    so it is born dirty. *)

val mark_dirty : t -> lpage:int -> unit
(** A store landed: [Clean] -> [Dirty]; [Dirty] stays; [Writeback] sets
    the redirtied flag so completion lands back in [Dirty]; [Reading] is
    a no-op (the page-in DMA itself); [Empty] -> [Dirty] — an implicit
    dirty birth, for harnesses that drive the pmap layer without the VM
    object tier's [zero_page]. Under the full stack {!Numa_core.Invariant}
    still rejects mappings into [Empty] entries. *)

val evictable : t -> lpage:int -> bool
(** [Clean] or [Dirty]. In-flight [Reading]/[Writeback] entries must
    never be claimed. *)

val start_writeback : t -> lpage:int -> now:float -> by_cpu:int -> unit
(** [Dirty] -> [Writeback] (the only arrow in, making "Writeback implies
    previously Dirty" structural); schedules completion at [now] + the
    modeled disk-write time and charges the writing CPU. *)

val complete_due : t -> now:float -> int
(** Land every in-flight writeback whose completion time has passed:
    [Writeback] -> [Clean], or -> [Dirty] if redirtied. Returns how many
    completed. *)

val force_complete : t -> int
(** Land all in-flight writebacks regardless of deadline (memory-pressure
    fallback so a burst eviction is never wedged behind the daemon tick). *)

val start_writebacks : t -> now:float -> by_cpu:int -> max:int -> int
(** Round-robin over the entry table (persistent cursor) starting up to
    [max] async writebacks on [Dirty] entries; returns the number
    started. *)

val sync_writeback : t -> lpage:int -> by_cpu:int -> unit
(** [Dirty] -> [Clean] paying the full disk write synchronously: the
    eviction path's flush. Only Dirty victims pay this. *)

val note_evicted : t -> lpage:int -> dirty:bool -> unit
(** Count and emit a [Page_evicted]; called by the pageout daemon after
    the victim's content is extracted. *)

val note_free : t -> lpage:int -> unit
(** Any state -> [Empty]. Cancels an in-flight writeback (counted as
    canceled). Never raises. *)

val count : t -> state -> int

val active : t -> bool
(** True iff any paging activity (page-ins, writebacks, evictions)
    happened — the gate for the optional report section. Deliberately
    ignores the state census: zero-fills dirty entries even on clean
    runs. *)

val stats : t -> stats
