let render_classic (c : Config.t) =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  let mb_local = c.local_pages_per_cpu * Config.page_size_bytes c / (1024 * 1024) in
  let mb_global = c.global_pages * Config.page_size_bytes c / (1024 * 1024) in
  add "ACE memory architecture (Figure 1)";
  add "";
  let module_box i =
    Printf.sprintf "[cpu%-2d mmu local:%dMB]" i mb_local
  in
  let shown = min c.n_cpus 4 in
  let boxes = List.init shown module_box in
  let ellipsis = if c.n_cpus > shown then " ..." else "" in
  add "  %s%s   (%d processor modules)" (String.concat " " boxes) ellipsis c.n_cpus;
  let width =
    String.length (String.concat " " boxes) + String.length ellipsis + 2
  in
  add "  %s" (String.make (max width 24) '=');
  add "   Inter-Processor Communication (IPC) bus, 32-bit, 80 MB/s";
  add "  %s" (String.make (max width 24) '=');
  add "  [global memory: %d MB = %d pages of %d B]" mb_global c.global_pages
    (Config.page_size_bytes c);
  add "";
  add "  32-bit reference times:";
  add "    local : fetch %.2f us, store %.2f us" (c.local_fetch_ns /. 1000.)
    (c.local_store_ns /. 1000.);
  add "    global: fetch %.2f us, store %.2f us   (G/L fetch = %.1f, mixed ~ %.1f)"
    (c.global_fetch_ns /. 1000.) (c.global_store_ns /. 1000.)
    (Config.global_to_local_fetch_ratio c)
    (Config.global_to_local_ratio c ~store_fraction:0.45);
  Buffer.contents buf

(* General N-node machines: node boxes on the interconnect, then the
   fetch latency matrix (stores follow the same shape). *)
let render_topo (c : Config.t) (topo : Topo.t) =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  let n = Topo.n_nodes topo in
  let cpus = Topo.cpu_nodes topo in
  let mb_of pages = pages * Config.page_size_bytes c / (1024 * 1024) in
  add "%s memory architecture (%d nodes, %d with CPUs)" (Topo.name topo) n cpus;
  add "";
  let node_box i =
    Printf.sprintf "[cpu%-2d local:%dMB]" i (mb_of (Topo.pool_pages topo ~node:i))
  in
  let shown = min cpus 4 in
  let boxes = List.init shown node_box in
  let ellipsis = if cpus > shown then " ..." else "" in
  add "  %s%s" (String.concat " " boxes) ellipsis;
  let width =
    max 24 (String.length (String.concat " " boxes) + String.length ellipsis + 2)
  in
  add "  %s" (String.make width '=');
  (match topo.Topo.link_words_per_ns with
  | None -> add "   shared interconnect"
  | Some _ -> add "   point-to-point links (per-link bandwidth matrix)");
  add "  %s" (String.make width '=');
  (match Topo.mem_node topo with
  | Some m ->
      add "  [node %d: shared memory board, %d MB = %d pages]" m (mb_of c.global_pages)
        c.global_pages
  | None ->
      add "  (no shared board: %d global pages striped round-robin over the %d nodes)"
        c.global_pages cpus);
  add "";
  add "  fetch latency matrix (us, from row to column):";
  let header =
    String.concat ""
      (List.init n (fun j -> Printf.sprintf "%8s" (Printf.sprintf "n%d" j)))
  in
  add "        %s" header;
  for i = 0 to n - 1 do
    let row =
      String.concat ""
        (List.init n (fun j ->
             Printf.sprintf "%8.2f" (Topo.fetch_ns topo ~from:i ~at:j /. 1000.)))
    in
    add "    n%-2d %s" i row
  done;
  Buffer.contents buf

let render (c : Config.t) =
  match c.topology with None -> render_classic c | Some topo -> render_topo c topo

let summary (c : Config.t) =
  match c.topology with
  | None ->
      Printf.sprintf "ACE: %d CPUs, %d B pages, %d local pages/CPU, %d global pages"
        c.n_cpus (Config.page_size_bytes c) c.local_pages_per_cpu c.global_pages
  | Some topo ->
      Printf.sprintf "%s: %d nodes (%d CPUs), %d B pages, %d global pages"
        (Topo.name topo) (Topo.n_nodes topo) (Topo.cpu_nodes topo)
        (Config.page_size_bytes c) c.global_pages
