let render (c : Config.t) =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  let mb_local = c.local_pages_per_cpu * Config.page_size_bytes c / (1024 * 1024) in
  let mb_global = c.global_pages * Config.page_size_bytes c / (1024 * 1024) in
  add "ACE memory architecture (Figure 1)";
  add "";
  let module_box i =
    Printf.sprintf "[cpu%-2d mmu local:%dMB]" i mb_local
  in
  let shown = min c.n_cpus 4 in
  let boxes = List.init shown module_box in
  let ellipsis = if c.n_cpus > shown then " ..." else "" in
  add "  %s%s   (%d processor modules)" (String.concat " " boxes) ellipsis c.n_cpus;
  let width =
    String.length (String.concat " " boxes) + String.length ellipsis + 2
  in
  add "  %s" (String.make (max width 24) '=');
  add "   Inter-Processor Communication (IPC) bus, 32-bit, 80 MB/s";
  add "  %s" (String.make (max width 24) '=');
  add "  [global memory: %d MB = %d pages of %d B]" mb_global c.global_pages
    (Config.page_size_bytes c);
  add "";
  add "  32-bit reference times:";
  add "    local : fetch %.2f us, store %.2f us" (c.local_fetch_ns /. 1000.)
    (c.local_store_ns /. 1000.);
  add "    global: fetch %.2f us, store %.2f us   (G/L fetch = %.1f, mixed ~ %.1f)"
    (c.global_fetch_ns /. 1000.) (c.global_store_ns /. 1000.)
    (Config.global_to_local_fetch_ratio c)
    (Config.global_to_local_ratio c ~store_fraction:0.45);
  Buffer.contents buf

let summary (c : Config.t) =
  Printf.sprintf "ACE: %d CPUs, %d B pages, %d local pages/CPU, %d global pages"
    c.n_cpus (Config.page_size_bytes c) c.local_pages_per_cpu c.global_pages
