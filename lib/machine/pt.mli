(** Materialised page tables: radix tables with a physical home.

    Until now translation was free: {!Mmu.translate} consulted a hash
    table and no page-table page existed anywhere. This module gives each
    pmap a real multi-level radix table whose interior nodes are backed by
    frames from {!Frame_table} — page-table pages compete with data pages
    for the per-node pools — and prices every software-TLB miss as a
    {e walk}: one fetch per level, each at the matrix latency from the
    walking CPU to the node holding that level's page.

    Two mechanisms sit on top, following Mitosis and numaPTE (PAPERS.md):

    - {e per-node replication}: a full copy of a pmap's table can be
      materialised on other nodes, either eagerly on every online node or
      on demand (capped), so walks resolve from node-local table pages;
    - {e shootdown-aware PTE management}: every PTE install, retarget,
      protection change or removal is propagated synchronously into every
      replica table, each propagation charged as a remote store (plus an
      IPI-style shootdown cost for invalidations). A replica PTE that
      disagrees with the master — reachable only through fault injection —
      is a protocol violation the {!Numa_core.Invariant} sweep reports.

    The module is cost + bookkeeping + invariant state only: the
    functional truth of translation stays in {!Mmu}'s forward table, so
    attaching a [Pt.t] changes timings and counters but never behaviour,
    and not attaching one ([--pt-mode none]) reproduces the free-walk
    simulator byte for byte. *)

type mode =
  | Off  (** no materialised tables: translation is free, as before *)
  | Shared  (** one master table per pmap; remote CPUs walk it remotely *)
  | Replicated of int option
      (** per-node replica tables; [None] = eager on every online node,
          [Some n] = built on demand by the first local walk, at most [n]
          replicas per pmap *)

val mode_of_string : string -> (mode, string) result
(** ["none"], ["shared"], ["replicated"], ["replicated:N"] (N >= 1). *)

val mode_to_string : mode -> string

type pte = {
  pte_lpage : int;
  pte_frame : Frame_table.local_frame option;  (** [None] = global frame *)
  pte_prot : Prot.t;
}
(** Leaf-level snapshot of one mapping, as stored in a table. *)

type t

val create :
  ?obs:Numa_obs.Hub.t ->
  config:Config.t ->
  frames:Frame_table.t ->
  sink:Cost_sink.t ->
  mode:mode ->
  unit ->
  t
(** Walk and shootdown charges queue in [sink] under the [Pt_walk] /
    [Pt_shootdown] profiler categories (replica-build copies under
    [Page_copy]), so the drain discipline keeps conservation exact. *)

val mode : t -> mode
val levels : t -> int
(** Radix depth (3: root, directory, leaf; 8 index bits per level). *)

(** {1 Hooks from the MMU} — called by {!Mmu} when a [Pt.t] is attached.
    [frame] is the physical target ([None] = the global frame). *)

val enter :
  t -> pmap:int -> cpu:int -> vpage:int -> lpage:int ->
  frame:Frame_table.local_frame option -> prot:Prot.t -> unit
(** Install the PTE in the master table (allocating path pages
    first-touch from [cpu]'s pool, falling back to the shared level when
    the pool refuses) and propagate it into every replica. *)

val remove : t -> pmap:int -> cpu:int -> vpage:int -> lpage:int -> unit
(** Clear the PTE everywhere; each replica invalidation is a shootdown
    (remote store + IPI cost, [Pt_shootdown] event). *)

val update_phys :
  t -> pmap:int -> cpu:int -> vpage:int -> lpage:int ->
  frame:Frame_table.local_frame option -> unit
(** Retarget the PTE after a page move; shoots down every replica copy. *)

val update_prot :
  t -> pmap:int -> cpu:int -> vpage:int -> lpage:int -> prot:Prot.t -> unit

val walk : t -> pmap:int -> cpu:int -> vpage:int -> lpage:int -> unit
(** Price one software-TLB miss: read each existing level of the chosen
    table (the node-local replica when one exists or on-demand
    replication builds one, the master otherwise), charging the matrix
    fetch latency per level. [lpage < 0] when the walk finds no PTE (the
    fault path). *)

(** {1 Degradation and the daemon} *)

val node_offline : t -> node:int -> unit
(** Evacuate the dying node: drop its replica tables (freeing their
    frames) and re-home master table pages living there onto the nearest
    online pool (or the shared level). Call after the pool is marked
    offline so re-allocation cannot land back on it. *)

val daemon_sweep : t -> by_cpu:int -> int
(** Eager mode only: build any replica missing on an online node (a node
    that came back, or whose build was deferred); returns how many were
    built. On-demand and shared modes do nothing. *)

val corrupt_replica : t -> lpage:int -> (int * int) option
(** Deliberately make one replica PTE stale (deterministically: lowest
    pmap, then lowest node, holding a PTE for [lpage]); returns the
    [(pmap, node)] hit, or [None] when no replica maps the page. Fault
    injection only — this is the bug numaPTE-style management must not
    create, planted so the invariant sweep can prove it would catch it. *)

(** {1 Introspection} — for the invariant sweep and the report *)

val pmaps : t -> int list
(** Pmaps with materialised tables, sorted. *)

val master_pte : t -> pmap:int -> cpu:int -> vpage:int -> pte option

val replica_nodes : t -> pmap:int -> int list
(** Nodes holding a replica of the pmap's table, sorted. *)

val replica_pte : t -> pmap:int -> node:int -> cpu:int -> vpage:int -> pte option

val replica_ptes : t -> pmap:int -> node:int -> ((int * int) * pte) list
(** [((cpu, vpage), pte)] for every PTE in the replica, unordered. *)

val master_ptes : t -> pmap:int -> ((int * int) * pte) list

val table_frames : t -> (int * Frame_table.local_frame) list
(** Every frame backing a page-table page, master and replica, paired
    with the node whose pool it came from; unordered. *)

type stats = {
  walks : int;
  walk_levels : int;  (** total levels read over all walks *)
  walk_ns : float;
  pte_updates : int;  (** replica PTE installs (silent propagation) *)
  pte_shootdowns : int;  (** replica PTE invalidations / retargets *)
  shootdown_ns : float;
  replicas_built : int;
  replicas_dropped : int;
  pt_frames : int array;  (** per-node frames currently backing tables *)
  global_pt_pages : int;  (** path pages that fell back to the shared level *)
}

val stats : t -> stats
