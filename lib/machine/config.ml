type t = {
  n_cpus : int;
  page_size_words : int;
  local_pages_per_cpu : int;
  global_pages : int;
  local_fetch_ns : float;
  local_store_ns : float;
  global_fetch_ns : float;
  global_store_ns : float;
  remote_fetch_ns : float;
  remote_store_ns : float;
  bus_words_per_ns : float;
  fault_trap_ns : float;
  pmap_action_ns : float;
  tlb_shootdown_ns : float;
  disk_read_ns : float;
  disk_write_ns : float;
  topology : Topo.t option;
}

let ace ?(n_cpus = 7) ?(local_pages_per_cpu = 4096) ?(global_pages = 8192) () =
  {
    n_cpus;
    page_size_words = 512 (* 2 KB ROMP pages *);
    local_pages_per_cpu (* 8 MB of 2 KB pages *);
    global_pages (* 16 MB board *);
    local_fetch_ns = 650.;
    local_store_ns = 840.;
    global_fetch_ns = 1500.;
    global_store_ns = 1400.;
    (* The paper does not quote remote times; section 4.4 expects remote to
       be "significantly slower than global" on most machines, so we model
       it a little above global. No default policy uses these. *)
    remote_fetch_ns = 1800.;
    remote_store_ns = 1700.;
    (* Contention is off by default: at the paper's scale the 80 MB/s bus
       is far from saturated (the measurement method requires it); the
       bus-contention ablation turns this on. *)
    bus_words_per_ns = 0.;
    fault_trap_ns = 150_000.;
    pmap_action_ns = 25_000.;
    tlb_shootdown_ns = 20_000.;
    (* Paging device of the era: a SCSI disk behind the IPC bus. Seek +
       rotational delay dominates; the per-word transfer is priced
       separately by Cost from the page size and the home node's store
       rate. Writes pay a slightly longer settle time. *)
    disk_read_ns = 10_000_000.;
    disk_write_ns = 12_000_000.;
    topology = None;
  }

let butterfly_like ?(n_cpus = 7) () =
  let base = ace ~n_cpus () in
  {
    base with
    global_fetch_ns = base.remote_fetch_ns;
    global_store_ns = base.remote_store_ns;
  }

(* With no explicit topology the machine is the classic ACE shape, derived
   on demand from the scalar fields so that record-update tweaks
   ([{ c with global_fetch_ns = ... }], used by the G/L ablation and the
   tests) keep working untouched. The derived matrix copies the six
   scalars verbatim; costs computed from it are bit-identical to the
   scalar cost model. *)
let topology t =
  match t.topology with
  | Some topo -> topo
  | None ->
      Topo.two_level ~name:"ace" ~n_cpus:t.n_cpus ~pool_pages:t.local_pages_per_cpu
        ~local_fetch_ns:t.local_fetch_ns ~local_store_ns:t.local_store_ns
        ~global_fetch_ns:t.global_fetch_ns ~global_store_ns:t.global_store_ns
        ~remote_fetch_ns:t.remote_fetch_ns ~remote_store_ns:t.remote_store_ns ()

(* Overriding the topology also rewrites the scalar timing fields to
   class representatives (node 0's view: its own memory, the shared
   level's home for page 0, and the first other node), so class-based
   consumers — the trace analyzers, the flat memory model, G/L ratios in
   headers — stay meaningful. The matrix is authoritative for the
   simulator itself. *)
let with_topology t topo =
  let rep access ~at =
    match access with
    | `Fetch -> topo.Topo.fetch_ns.(0).(at)
    | `Store -> topo.Topo.store_ns.(0).(at)
  in
  (* Shared-level representative: the board's row if there is one; on a
     striped machine the round-robin average over stripe homes as seen by
     node 0 (taking any single stripe would price the shared level at
     local or remote speed and wreck the G/L ratio the analysis layer
     feeds into equations 1-5). *)
  let shared access =
    match Topo.mem_node topo with
    | Some board -> rep access ~at:board
    | None ->
        let n = Topo.cpu_nodes topo in
        let sum = ref 0. in
        for at = 0 to n - 1 do
          sum := !sum +. rep access ~at
        done;
        !sum /. float_of_int n
  in
  let other = if Topo.cpu_nodes topo > 1 then 1 else 0 in
  {
    t with
    n_cpus = Topo.cpu_nodes topo;
    local_fetch_ns = rep `Fetch ~at:0;
    local_store_ns = rep `Store ~at:0;
    global_fetch_ns = shared `Fetch;
    global_store_ns = shared `Store;
    remote_fetch_ns = rep `Fetch ~at:other;
    remote_store_ns = rep `Store ~at:other;
    topology = Some topo;
  }

let butterfly ?(n_cpus = 7) ?(local_pages_per_cpu = 4096) ?(global_pages = 8192) () =
  let base = ace ~n_cpus ~local_pages_per_cpu ~global_pages () in
  let matrix ~local ~remote =
    Array.init n_cpus (fun from ->
        Array.init n_cpus (fun at -> if from = at then local else remote))
  in
  let topo =
    {
      Topo.name = "butterfly";
      cpu_nodes = n_cpus;
      mem_node = None;
      pool_pages = Array.make n_cpus local_pages_per_cpu;
      fetch_ns = matrix ~local:base.local_fetch_ns ~remote:base.remote_fetch_ns;
      store_ns = matrix ~local:base.local_store_ns ~remote:base.remote_store_ns;
      link_words_per_ns = None;
    }
  in
  with_topology base topo

let multi_socket ?(n_cpus = 4) ?(local_pages_per_cpu = 4096) ?(global_pages = 8192) () =
  let base = ace ~n_cpus ~local_pages_per_cpu ~global_pages () in
  let board = n_cpus in
  let n = n_cpus + 1 in
  (* Sockets are adjacent pairs: a remote reference within a socket is
     cheaper than one across sockets; the shared board sits between. *)
  let same_socket i j = i / 2 = j / 2 in
  let matrix ~local ~near ~far ~board_ns =
    Array.init n (fun from ->
        Array.init n (fun at ->
            if from = board || at = board then board_ns
            else if from = at then local
            else if same_socket from at then near
            else far))
  in
  let topo =
    {
      Topo.name = "multi-socket";
      cpu_nodes = n_cpus;
      mem_node = Some board;
      pool_pages = Array.make n_cpus local_pages_per_cpu;
      fetch_ns =
        matrix ~local:base.local_fetch_ns ~near:1100. ~far:base.remote_fetch_ns
          ~board_ns:base.global_fetch_ns;
      store_ns =
        matrix ~local:base.local_store_ns ~near:1050. ~far:base.remote_store_ns
          ~board_ns:base.global_store_ns;
      link_words_per_ns = None;
    }
  in
  with_topology base topo

let builtin_topologies = [ "ace"; "butterfly-like"; "butterfly"; "multi-socket" ]

let of_topology_name ?n_cpus name =
  match name with
  | "ace" -> Some (ace ?n_cpus ())
  | "butterfly-like" -> Some (butterfly_like ?n_cpus ())
  | "butterfly" -> Some (butterfly ?n_cpus ())
  | "multi-socket" -> Some (multi_socket ?n_cpus ())
  | _ -> None

let validate t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if t.n_cpus <= 0 then err "n_cpus must be positive (got %d)" t.n_cpus
  else if t.page_size_words <= 0 then err "page_size_words must be positive"
  else if t.local_pages_per_cpu < 0 then err "local_pages_per_cpu must be non-negative"
  else if t.global_pages <= 0 then err "global_pages must be positive"
  else if
    t.local_fetch_ns <= 0. || t.local_store_ns <= 0. || t.global_fetch_ns <= 0.
    || t.global_store_ns <= 0. || t.remote_fetch_ns <= 0. || t.remote_store_ns <= 0.
  then err "reference times must be positive"
  else if t.fault_trap_ns < 0. || t.pmap_action_ns < 0. || t.tlb_shootdown_ns < 0. then
    err "overhead times must be non-negative"
  else if t.disk_read_ns < 0. || t.disk_write_ns < 0. then
    err "disk times must be non-negative"
  else if t.bus_words_per_ns < 0. then err "bus bandwidth must be non-negative"
  else if t.global_fetch_ns < t.local_fetch_ns then
    err "global fetch faster than local fetch: not a NUMA machine"
  else
    match t.topology with
    | None -> Ok t
    | Some topo -> (
        match Topo.validate topo with
        | Error msg -> err "topology: %s" msg
        | Ok _ ->
            if Topo.cpu_nodes topo <> t.n_cpus then
              err "topology has %d CPU nodes but n_cpus is %d" (Topo.cpu_nodes topo)
                t.n_cpus
            else Ok t)

let global_to_local_fetch_ratio t = t.global_fetch_ns /. t.local_fetch_ns

let global_to_local_ratio t ~store_fraction =
  let f = store_fraction in
  if f < 0. || f > 1. then invalid_arg "Config.global_to_local_ratio: bad store fraction";
  let g = ((1. -. f) *. t.global_fetch_ns) +. (f *. t.global_store_ns) in
  let l = ((1. -. f) *. t.local_fetch_ns) +. (f *. t.local_store_ns) in
  g /. l

let page_size_bytes t = t.page_size_words * 4

let pp ppf t =
  (match t.topology with
  | None -> ()
  | Some topo -> Format.fprintf ppf "topology %a@\n" Topo.pp topo);
  Format.fprintf ppf
    "@[<v>ACE-class machine: %d CPUs, %d-word pages@,\
     local: %d pages/CPU (%d KB), global: %d pages (%d KB)@,\
     ref ns (fetch/store): local %.0f/%.0f  global %.0f/%.0f  remote %.0f/%.0f@,\
     overheads ns: fault %.0f  pmap action %.0f  tlb %.0f@,\
     disk ns: read %.0f  write %.0f@]"
    t.n_cpus t.page_size_words t.local_pages_per_cpu
    (t.local_pages_per_cpu * page_size_bytes t / 1024)
    t.global_pages
    (t.global_pages * page_size_bytes t / 1024)
    t.local_fetch_ns t.local_store_ns t.global_fetch_ns t.global_store_ns
    t.remote_fetch_ns t.remote_store_ns t.fault_trap_ns t.pmap_action_ns
    t.tlb_shootdown_ns t.disk_read_ns t.disk_write_ns
