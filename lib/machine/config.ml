type t = {
  n_cpus : int;
  page_size_words : int;
  local_pages_per_cpu : int;
  global_pages : int;
  local_fetch_ns : float;
  local_store_ns : float;
  global_fetch_ns : float;
  global_store_ns : float;
  remote_fetch_ns : float;
  remote_store_ns : float;
  bus_words_per_ns : float;
  fault_trap_ns : float;
  pmap_action_ns : float;
  tlb_shootdown_ns : float;
}

let ace ?(n_cpus = 7) ?(local_pages_per_cpu = 4096) ?(global_pages = 8192) () =
  {
    n_cpus;
    page_size_words = 512 (* 2 KB ROMP pages *);
    local_pages_per_cpu (* 8 MB of 2 KB pages *);
    global_pages (* 16 MB board *);
    local_fetch_ns = 650.;
    local_store_ns = 840.;
    global_fetch_ns = 1500.;
    global_store_ns = 1400.;
    (* The paper does not quote remote times; section 4.4 expects remote to
       be "significantly slower than global" on most machines, so we model
       it a little above global. No default policy uses these. *)
    remote_fetch_ns = 1800.;
    remote_store_ns = 1700.;
    (* Contention is off by default: at the paper's scale the 80 MB/s bus
       is far from saturated (the measurement method requires it); the
       bus-contention ablation turns this on. *)
    bus_words_per_ns = 0.;
    fault_trap_ns = 150_000.;
    pmap_action_ns = 25_000.;
    tlb_shootdown_ns = 20_000.;
  }

let butterfly_like ?(n_cpus = 7) () =
  let base = ace ~n_cpus () in
  {
    base with
    global_fetch_ns = base.remote_fetch_ns;
    global_store_ns = base.remote_store_ns;
  }

let validate t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if t.n_cpus <= 0 then err "n_cpus must be positive (got %d)" t.n_cpus
  else if t.page_size_words <= 0 then err "page_size_words must be positive"
  else if t.local_pages_per_cpu < 0 then err "local_pages_per_cpu must be non-negative"
  else if t.global_pages <= 0 then err "global_pages must be positive"
  else if
    t.local_fetch_ns <= 0. || t.local_store_ns <= 0. || t.global_fetch_ns <= 0.
    || t.global_store_ns <= 0. || t.remote_fetch_ns <= 0. || t.remote_store_ns <= 0.
  then err "reference times must be positive"
  else if t.fault_trap_ns < 0. || t.pmap_action_ns < 0. || t.tlb_shootdown_ns < 0. then
    err "overhead times must be non-negative"
  else if t.bus_words_per_ns < 0. then err "bus bandwidth must be non-negative"
  else if t.global_fetch_ns < t.local_fetch_ns then
    err "global fetch faster than local fetch: not a NUMA machine"
  else Ok t

let global_to_local_fetch_ratio t = t.global_fetch_ns /. t.local_fetch_ns

let global_to_local_ratio t ~store_fraction =
  let f = store_fraction in
  if f < 0. || f > 1. then invalid_arg "Config.global_to_local_ratio: bad store fraction";
  let g = ((1. -. f) *. t.global_fetch_ns) +. (f *. t.global_store_ns) in
  let l = ((1. -. f) *. t.local_fetch_ns) +. (f *. t.local_store_ns) in
  g /. l

let page_size_bytes t = t.page_size_words * 4

let pp ppf t =
  Format.fprintf ppf
    "@[<v>ACE-class machine: %d CPUs, %d-word pages@,\
     local: %d pages/CPU (%d KB), global: %d pages (%d KB)@,\
     ref ns (fetch/store): local %.0f/%.0f  global %.0f/%.0f  remote %.0f/%.0f@,\
     overheads ns: fault %.0f  pmap action %.0f  tlb %.0f@]"
    t.n_cpus t.page_size_words t.local_pages_per_cpu
    (t.local_pages_per_cpu * page_size_bytes t / 1024)
    t.global_pages
    (t.global_pages * page_size_bytes t / 1024)
    t.local_fetch_ns t.local_store_ns t.global_fetch_ns t.global_store_ns
    t.remote_fetch_ns t.remote_store_ns t.fault_trap_ns t.pmap_action_ns
    t.tlb_shootdown_ns
