let reference_ns (c : Config.t) ~access ~where =
  match (where, access) with
  | Location.Local_here, Access.Load -> c.local_fetch_ns
  | Location.Local_here, Access.Store -> c.local_store_ns
  | Location.In_global, Access.Load -> c.global_fetch_ns
  | Location.In_global, Access.Store -> c.global_store_ns
  | Location.Remote_local, Access.Load -> c.remote_fetch_ns
  | Location.Remote_local, Access.Store -> c.remote_store_ns

let references_ns c ~access ~where ~count =
  if count < 0 then invalid_arg "Cost.references_ns: negative count";
  float_of_int count *. reference_ns c ~access ~where

let page_copy_ns (c : Config.t) ~src ~dst =
  let per_word =
    reference_ns c ~access:Access.Load ~where:src
    +. reference_ns c ~access:Access.Store ~where:dst
  in
  float_of_int c.page_size_words *. per_word

let page_zero_ns (c : Config.t) ~dst =
  float_of_int c.page_size_words *. reference_ns c ~access:Access.Store ~where:dst

let fault_trap_ns (c : Config.t) = c.fault_trap_ns
let pmap_action_ns (c : Config.t) = c.pmap_action_ns
let tlb_shootdown_ns (c : Config.t) = c.tlb_shootdown_ns
