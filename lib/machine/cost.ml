let reference_ns (c : Config.t) ~access ~where =
  match (where, access) with
  | Location.Local_here, Access.Load -> c.local_fetch_ns
  | Location.Local_here, Access.Store -> c.local_store_ns
  | Location.In_global, Access.Load -> c.global_fetch_ns
  | Location.In_global, Access.Store -> c.global_store_ns
  | Location.Remote_local, Access.Load -> c.remote_fetch_ns
  | Location.Remote_local, Access.Store -> c.remote_store_ns

let references_ns c ~access ~where ~count =
  if count < 0 then invalid_arg "Cost.references_ns: negative count";
  float_of_int count *. reference_ns c ~access ~where

let page_copy_ns (c : Config.t) ~src ~dst =
  let per_word =
    reference_ns c ~access:Access.Load ~where:src
    +. reference_ns c ~access:Access.Store ~where:dst
  in
  float_of_int c.page_size_words *. per_word

let page_zero_ns (c : Config.t) ~dst =
  float_of_int c.page_size_words *. reference_ns c ~access:Access.Store ~where:dst

(* Node-precise variants: the same formulas, but priced from the topology
   matrix instead of the three classes. On a classic (matrix-less) config
   the derived matrix copies the scalars verbatim, so these agree with
   the class-based functions bit for bit. *)

let node_reference_ns ~(topo : Topo.t) ~access ~cpu ~node =
  match access with
  | Access.Load -> Topo.fetch_ns topo ~from:cpu ~at:node
  | Access.Store -> Topo.store_ns topo ~from:cpu ~at:node

let place_reference_ns ~topo ~access ~cpu ~place =
  node_reference_ns ~topo ~access ~cpu ~node:(Topo.place_node topo place)

let place_page_copy_ns (c : Config.t) ~topo ~cpu ~src ~dst =
  let per_word =
    place_reference_ns ~topo ~access:Access.Load ~cpu ~place:src
    +. place_reference_ns ~topo ~access:Access.Store ~cpu ~place:dst
  in
  float_of_int c.page_size_words *. per_word

let place_page_zero_ns (c : Config.t) ~topo ~cpu ~dst =
  float_of_int c.page_size_words
  *. place_reference_ns ~topo ~access:Access.Store ~cpu ~place:dst

(* Backing-store (paging-device) costs: a fixed seek + rotation latency
   from the config plus the word-by-word DMA transfer, priced at the
   page's home memory's own matrix row. A page-in stores words into the
   home memory; a writeback fetches them out. *)

let disk_transfer_ns (c : Config.t) ~(topo : Topo.t) ~access ~lpage =
  let home = Topo.global_home topo ~lpage in
  float_of_int c.page_size_words *. node_reference_ns ~topo ~access ~cpu:home ~node:home

let disk_read_ns (c : Config.t) ~topo ~lpage =
  c.disk_read_ns +. disk_transfer_ns c ~topo ~access:Access.Store ~lpage

let disk_write_ns (c : Config.t) ~topo ~lpage =
  c.disk_write_ns +. disk_transfer_ns c ~topo ~access:Access.Load ~lpage

let fault_trap_ns (c : Config.t) = c.fault_trap_ns
let pmap_action_ns (c : Config.t) = c.pmap_action_ns
let tlb_shootdown_ns (c : Config.t) = c.tlb_shootdown_ns
