(** The ACE cost model.

    Everything the simulator charges for — individual references, page
    copies, zero-fills, TLB operations, fault traps — is priced here from
    the machine {!Config.t}, so experiments can sweep timing parameters
    (e.g. the G/L ratio ablation) without touching any other module. *)

val reference_ns : Config.t -> access:Access.t -> where:Location.relative -> float
(** Cost of one 32-bit reference of the given kind to memory at the given
    relative location. *)

val references_ns :
  Config.t -> access:Access.t -> where:Location.relative -> count:int -> float
(** [count] back-to-back references. *)

val page_copy_ns : Config.t -> src:Location.relative -> dst:Location.relative -> float
(** Copying one page word-by-word: each word is a fetch from [src] plus a
    store to [dst], as the kernel's copy loop would issue. The [src]/[dst]
    classification is relative to the CPU performing the copy. *)

val page_zero_ns : Config.t -> dst:Location.relative -> float
(** Zero-filling one page: a store per word at the destination. *)

(** {2 Node-precise costs}

    The same formulas priced from the topology's distance matrix rather
    than the three classes. On a classic config the derived matrix copies
    the scalars verbatim, so these agree with the class-based functions
    bit for bit; on an explicit topology they resolve the actual node
    pair (e.g. a striped shared page on a Butterfly, or near vs. far
    remote on a multi-socket machine). *)

val node_reference_ns : topo:Topo.t -> access:Access.t -> cpu:int -> node:int -> float
(** One reference issued by [cpu] (= its node) to memory on [node]. *)

val place_reference_ns : topo:Topo.t -> access:Access.t -> cpu:int -> place:Topo.place -> float

val place_page_copy_ns :
  Config.t -> topo:Topo.t -> cpu:int -> src:Topo.place -> dst:Topo.place -> float
(** Word-by-word page copy performed by [cpu]: a fetch from [src] plus a
    store to [dst] per word. *)

val place_page_zero_ns : Config.t -> topo:Topo.t -> cpu:int -> dst:Topo.place -> float

val disk_read_ns : Config.t -> topo:Topo.t -> lpage:int -> float
(** One page-in from the modeled backing store: the fixed
    [Config.disk_read_ns] seek + rotation latency plus the word-by-word
    DMA transfer into the page's home memory (a store per word priced at
    the home node's own matrix row). *)

val disk_write_ns : Config.t -> topo:Topo.t -> lpage:int -> float
(** One page writeback to the backing store: [Config.disk_write_ns] plus
    a fetch per word out of the page's home memory. *)

val fault_trap_ns : Config.t -> float
val pmap_action_ns : Config.t -> float
val tlb_shootdown_ns : Config.t -> float
