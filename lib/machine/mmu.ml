type phys = Frame of Frame_table.local_frame | Global_frame of int

type entry = {
  pmap : int;
  cpu : int;
  vpage : int;
  lpage : int;
  mutable prot : Prot.t;
  mutable phys : phys;
}

type key = { k_pmap : int; k_cpu : int; k_vpage : int }

type t = {
  n_cpus : int;
  forward : (key, entry) Hashtbl.t;
  reverse : (int, (key, entry) Hashtbl.t) Hashtbl.t;  (** lpage -> its mappings *)
  tlbs : entry Tlb.t array;  (** per-CPU software translation caches *)
  obs : Numa_obs.Hub.t;
  mutable pt : Pt.t option;  (** materialised page tables, when attached *)
}

let create ?obs (config : Config.t) =
  {
    n_cpus = config.n_cpus;
    forward = Hashtbl.create 1024;
    reverse = Hashtbl.create 256;
    tlbs = Array.init config.n_cpus (fun _ -> Tlb.create ());
    obs = (match obs with Some h -> h | None -> Numa_obs.Hub.create ());
    pt = None;
  }

let attach_pt t pt = t.pt <- Some pt
let pt t = t.pt

let pte_frame = function Frame f -> Some f | Global_frame _ -> None

let key_of_entry e = { k_pmap = e.pmap; k_cpu = e.cpu; k_vpage = e.vpage }

let reverse_bucket t lpage =
  match Hashtbl.find_opt t.reverse lpage with
  | Some b -> b
  | None ->
      let b = Hashtbl.create 8 in
      Hashtbl.replace t.reverse lpage b;
      b

let unlink_reverse t e =
  match Hashtbl.find_opt t.reverse e.lpage with
  | None -> ()
  | Some b ->
      Hashtbl.remove b (key_of_entry e);
      if Hashtbl.length b = 0 then Hashtbl.remove t.reverse e.lpage

(* Every mapping drop funnels through here, so this is the one precise
   shootdown point for the software TLBs: the protocol actions (invalidate,
   ownership move, pin, pageout) all reach mappings via the reverse maps
   and remove them entry by entry. *)
let remove_entry t e =
  Hashtbl.remove t.forward (key_of_entry e);
  unlink_reverse t e;
  (match t.pt with
  | Some pt -> Pt.remove pt ~pmap:e.pmap ~cpu:e.cpu ~vpage:e.vpage ~lpage:e.lpage
  | None -> ());
  if
    Tlb.invalidate t.tlbs.(e.cpu) ~pmap:e.pmap ~vpage:e.vpage
    && Numa_obs.Hub.enabled t.obs
  then
    Numa_obs.Hub.emit t.obs
      (Numa_obs.Event.Tlb_shootdown { cpu = e.cpu; vpage = e.vpage; lpage = e.lpage })

let enter t ~pmap ~cpu ~vpage ~lpage ~prot ~phys =
  if cpu < 0 || cpu >= t.n_cpus then invalid_arg "Mmu.enter: bad cpu";
  let key = { k_pmap = pmap; k_cpu = cpu; k_vpage = vpage } in
  (match Hashtbl.find_opt t.forward key with
  | Some old -> remove_entry t old
  | None -> ());
  let e = { pmap; cpu; vpage; lpage; prot; phys } in
  Hashtbl.replace t.forward key e;
  Hashtbl.replace (reverse_bucket t lpage) key e;
  match t.pt with
  | Some pt -> Pt.enter pt ~pmap ~cpu ~vpage ~lpage ~frame:(pte_frame phys) ~prot
  | None -> ()

let lookup t ~pmap ~cpu ~vpage =
  Hashtbl.find_opt t.forward { k_pmap = pmap; k_cpu = cpu; k_vpage = vpage }

(* The fast path: consult the CPU's software TLB first, fill it from the
   forward table on a miss. Entries are shared records, so protection
   clamps and physical retargets done in place are visible on later hits;
   only [remove_entry] needs to shoot entries down. *)
let translate t ~pmap ~cpu ~vpage =
  let tlb = t.tlbs.(cpu) in
  match Tlb.lookup tlb ~pmap ~vpage with
  | Some _ as hit -> hit
  | None ->
      let found =
        Hashtbl.find_opt t.forward { k_pmap = pmap; k_cpu = cpu; k_vpage = vpage }
      in
      (* A miss is where the hardware would walk: charge the multi-level
         table walk when tables are materialised. A walk that finds no
         PTE (the fault path) still reads the levels that exist. *)
      (match t.pt with
      | Some pt ->
          let lpage = match found with Some e -> e.lpage | None -> -1 in
          Pt.walk pt ~pmap ~cpu ~vpage ~lpage
      | None -> ());
      (match found with Some e -> Tlb.insert tlb ~pmap ~vpage e | None -> ());
      found

let sum_over_tlbs t f = Array.fold_left (fun acc tlb -> acc + f tlb) 0 t.tlbs

let tlb_hits t = sum_over_tlbs t Tlb.hits
let tlb_misses t = sum_over_tlbs t Tlb.misses
let tlb_shootdowns t = sum_over_tlbs t Tlb.shootdowns

let tlb_stats t ~cpu =
  let tlb = t.tlbs.(cpu) in
  (Tlb.hits tlb, Tlb.misses tlb, Tlb.shootdowns tlb)

let set_prot t e prot =
  e.prot <- prot;
  match t.pt with
  | Some pt ->
      Pt.update_prot pt ~pmap:e.pmap ~cpu:e.cpu ~vpage:e.vpage ~lpage:e.lpage ~prot
  | None -> ()

let set_phys t e phys =
  e.phys <- phys;
  match t.pt with
  | Some pt ->
      Pt.update_phys pt ~pmap:e.pmap ~cpu:e.cpu ~vpage:e.vpage ~lpage:e.lpage
        ~frame:(pte_frame phys)
  | None -> ()

let remove t ~pmap ~cpu ~vpage =
  match lookup t ~pmap ~cpu ~vpage with
  | None -> ()
  | Some e -> remove_entry t e

let entries_of_lpage t ~lpage =
  match Hashtbl.find_opt t.reverse lpage with
  | None -> []
  | Some b -> Hashtbl.fold (fun _ e acc -> e :: acc) b []

let entries_of_pmap t ~pmap =
  Hashtbl.fold (fun _ e acc -> if e.pmap = pmap then e :: acc else acc) t.forward []

let iter_range t ~pmap ~vpage ~n f =
  for v = vpage to vpage + n - 1 do
    for cpu = 0 to t.n_cpus - 1 do
      match lookup t ~pmap ~cpu ~vpage:v with
      | Some e -> f e
      | None -> ()
    done
  done

let remove_range t ~pmap ~vpage ~n =
  let doomed = ref [] in
  iter_range t ~pmap ~vpage ~n (fun e -> doomed := e :: !doomed);
  List.iter (remove_entry t) !doomed

let n_mappings t = Hashtbl.length t.forward

let phys_location ~cpu = function
  | Global_frame _ -> Location.In_global
  | Frame f -> if f.Frame_table.node = cpu then Location.Local_here else Location.Remote_local

let phys_node ~topo = function
  | Frame f -> f.Frame_table.node
  | Global_frame lpage -> Topo.global_home topo ~lpage
