type phys = Frame of Frame_table.local_frame | Global_frame of int

type entry = {
  pmap : int;
  cpu : int;
  vpage : int;
  lpage : int;
  mutable prot : Prot.t;
  mutable phys : phys;
}

type key = { k_pmap : int; k_cpu : int; k_vpage : int }

type t = {
  n_cpus : int;
  forward : (key, entry) Hashtbl.t;
  reverse : (int, (key, entry) Hashtbl.t) Hashtbl.t;  (** lpage -> its mappings *)
}

let create (config : Config.t) =
  { n_cpus = config.n_cpus; forward = Hashtbl.create 1024; reverse = Hashtbl.create 256 }

let key_of_entry e = { k_pmap = e.pmap; k_cpu = e.cpu; k_vpage = e.vpage }

let reverse_bucket t lpage =
  match Hashtbl.find_opt t.reverse lpage with
  | Some b -> b
  | None ->
      let b = Hashtbl.create 8 in
      Hashtbl.replace t.reverse lpage b;
      b

let unlink_reverse t e =
  match Hashtbl.find_opt t.reverse e.lpage with
  | None -> ()
  | Some b ->
      Hashtbl.remove b (key_of_entry e);
      if Hashtbl.length b = 0 then Hashtbl.remove t.reverse e.lpage

let remove_entry t e =
  Hashtbl.remove t.forward (key_of_entry e);
  unlink_reverse t e

let enter t ~pmap ~cpu ~vpage ~lpage ~prot ~phys =
  if cpu < 0 || cpu >= t.n_cpus then invalid_arg "Mmu.enter: bad cpu";
  let key = { k_pmap = pmap; k_cpu = cpu; k_vpage = vpage } in
  (match Hashtbl.find_opt t.forward key with
  | Some old -> remove_entry t old
  | None -> ());
  let e = { pmap; cpu; vpage; lpage; prot; phys } in
  Hashtbl.replace t.forward key e;
  Hashtbl.replace (reverse_bucket t lpage) key e

let lookup t ~pmap ~cpu ~vpage =
  Hashtbl.find_opt t.forward { k_pmap = pmap; k_cpu = cpu; k_vpage = vpage }

let set_prot _t e prot = e.prot <- prot
let set_phys _t e phys = e.phys <- phys

let remove t ~pmap ~cpu ~vpage =
  match lookup t ~pmap ~cpu ~vpage with
  | None -> ()
  | Some e -> remove_entry t e

let entries_of_lpage t ~lpage =
  match Hashtbl.find_opt t.reverse lpage with
  | None -> []
  | Some b -> Hashtbl.fold (fun _ e acc -> e :: acc) b []

let entries_of_pmap t ~pmap =
  Hashtbl.fold (fun _ e acc -> if e.pmap = pmap then e :: acc else acc) t.forward []

let iter_range t ~pmap ~vpage ~n f =
  for v = vpage to vpage + n - 1 do
    for cpu = 0 to t.n_cpus - 1 do
      match lookup t ~pmap ~cpu ~vpage:v with
      | Some e -> f e
      | None -> ()
    done
  done

let remove_range t ~pmap ~vpage ~n =
  let doomed = ref [] in
  iter_range t ~pmap ~vpage ~n (fun e -> doomed := e :: !doomed);
  List.iter (remove_entry t) !doomed

let n_mappings t = Hashtbl.length t.forward

let phys_location ~cpu = function
  | Global_frame _ -> Location.In_global
  | Frame f -> if f.Frame_table.node = cpu then Location.Local_here else Location.Remote_local
