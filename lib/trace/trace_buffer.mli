(** Reference-trace capture.

    Section 5 of the paper calls for trace-driven analyses "to rectify the
    weakness" of the processor-time method (it cannot separate placement
    errors from legitimate sharing). This module records the batched
    reference stream of a run; {!Classify}, {!False_sharing} and {!Optimal}
    analyse it. *)

type event = Numa_system.System.access_event

type t

val create : unit -> t

val attach : t -> Numa_system.System.t -> unit
(** Install this buffer as the system's access hook (replacing any other). *)

val add : t -> event -> unit

val length : t -> int
(** Number of recorded (batched) events. *)

val total_references : t -> int
(** Sum of the batch counts. *)

val iter : t -> (event -> unit) -> unit
(** In record order (= virtual time order). *)

val events_by_vpage : t -> (int, event list) Hashtbl.t
(** Per-page event lists, each in time order. *)

val save : t -> string -> unit
(** Write a tab-separated text trace (one batched event per line). *)

val load : string -> t
(** Read a trace written by {!save}. Raises [Failure] on malformed input. *)
