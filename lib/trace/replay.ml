open Numa_machine
module Sys_ = Numa_system.System
module Pmap_manager = Numa_core.Pmap_manager

type result = {
  policy_name : string;
  ref_ns : float;
  protocol_ns : float;
  moves : int;
  pins : int;
  local_refs : int;
  global_refs : int;
  remote_refs : int;
}

let replay ~config ~policy buffer =
  let now_cell = ref 0. in
  let pol =
    Sys_.policy_of_spec policy ~n_pages:config.Config.global_pages
      ~now:(fun () -> !now_cell)
      ~topo:(Config.topology config)
  in
  let mgr = Pmap_manager.create ~config ~policy:pol () in
  let ops = Pmap_manager.ops mgr in
  let sink = Pmap_manager.sink mgr in
  let pmap = ops.Numa_vm.Pmap_intf.pmap_create ~name:"replay" in
  (* Map the trace's virtual pages onto fresh logical pages on first touch. *)
  let lpage_of_vpage = Hashtbl.create 256 in
  let next_lpage = ref 0 in
  let lpage_for vpage =
    match Hashtbl.find_opt lpage_of_vpage vpage with
    | Some l -> l
    | None ->
        if !next_lpage >= config.Config.global_pages then
          failwith "Replay.replay: trace touches more pages than the pool holds";
        let l = !next_lpage in
        incr next_lpage;
        Hashtbl.replace lpage_of_vpage vpage l;
        ops.Numa_vm.Pmap_intf.zero_page ~lpage:l;
        l
  in
  let ref_ns = ref 0. in
  let protocol_ns = ref 0. in
  let local = ref 0 and global = ref 0 and remote = ref 0 in
  Trace_buffer.iter buffer (fun e ->
      now_cell := e.Sys_.at;
      let lpage = lpage_for e.Sys_.vpage in
      let cpu = e.Sys_.cpu and kind = e.Sys_.kind in
      (* Fault loop, as in the live system. *)
      let rec ensure n =
        if n > 3 then failwith "Replay.replay: fault loop did not converge";
        match ops.Numa_vm.Pmap_intf.resident ~pmap ~cpu ~vpage:e.Sys_.vpage with
        | Some (prot, where) when Prot.allows prot kind -> where
        | Some _ | None ->
            protocol_ns := !protocol_ns +. Cost.fault_trap_ns config;
            ops.Numa_vm.Pmap_intf.enter ~pmap ~cpu ~vpage:e.Sys_.vpage ~lpage
              ~min_prot:(Prot.of_access kind) ~max_prot:Prot.Read_write;
            ensure (n + 1)
      in
      let where = ensure 0 in
      ref_ns := !ref_ns +. Cost.references_ns config ~access:kind ~where ~count:e.Sys_.count;
      (match where with
      | Location.Local_here -> local := !local + e.Sys_.count
      | Location.In_global -> global := !global + e.Sys_.count
      | Location.Remote_local -> remote := !remote + e.Sys_.count);
      protocol_ns := !protocol_ns +. Cost_sink.drain sink ~cpu);
  let stats = Pmap_manager.stats mgr in
  {
    policy_name = Sys_.policy_spec_name policy;
    ref_ns = !ref_ns;
    protocol_ns = !protocol_ns;
    moves = stats.Numa_core.Numa_stats.moves;
    pins = pol.Numa_core.Policy.n_pinned ();
    local_refs = !local;
    global_refs = !global;
    remote_refs = !remote;
  }

let compare_policies ~config ~policies buffer =
  List.map (fun policy -> replay ~config ~policy buffer) policies

let render results =
  let open Numa_util in
  let table =
    Text_table.create
      ~columns:
        [
          ("policy", Text_table.Left);
          ("refs (s)", Text_table.Right);
          ("protocol (s)", Text_table.Right);
          ("total (s)", Text_table.Right);
          ("moves", Text_table.Right);
          ("pins", Text_table.Right);
          ("local frac", Text_table.Right);
        ]
  in
  List.iter
    (fun r ->
      let total_refs = r.local_refs + r.global_refs + r.remote_refs in
      Text_table.add_row table
        [
          r.policy_name;
          Printf.sprintf "%.3f" (r.ref_ns /. 1e9);
          Printf.sprintf "%.3f" (r.protocol_ns /. 1e9);
          Printf.sprintf "%.3f" ((r.ref_ns +. r.protocol_ns) /. 1e9);
          string_of_int r.moves;
          string_of_int r.pins;
          (if total_refs = 0 then "na"
           else Printf.sprintf "%.3f" (float_of_int r.local_refs /. float_of_int total_refs));
        ])
    results;
  Text_table.render table
