module Region_attr = Numa_vm.Region_attr

type verdict = Consistent | False_shared | Over_declared | Segregation_candidate

type finding = {
  page : Classify.summary;
  declared : Region_attr.sharing;
  verdict : verdict;
}

(* Read-dominance threshold for flagging a write-shared page whose readers
   could be served by replicas if the rare writes were segregated away. *)
let read_dominance = 20

let judge declared (s : Classify.summary) =
  match (declared, s.Classify.cls) with
  | (Region_attr.Declared_private | Region_attr.Declared_read_shared),
    Classify.Class_write_shared ->
      False_shared
  | Region_attr.Declared_write_shared, Classify.Class_private -> Over_declared
  | Region_attr.Declared_write_shared, Classify.Class_write_shared
    when s.Classify.writes > 0
         && s.Classify.reads >= read_dominance * s.Classify.writes
         && List.length s.Classify.readers > 1 ->
      Segregation_candidate
  | ( ( Region_attr.Declared_private | Region_attr.Declared_read_shared
      | Region_attr.Declared_write_shared ),
      ( Classify.Class_private | Classify.Class_read_shared
      | Classify.Class_write_shared ) ) ->
      Consistent

let analyse ~declared_of summaries =
  List.filter_map
    (fun (s : Classify.summary) ->
      match declared_of ~vpage:s.Classify.vpage with
      | None -> None
      | Some declared -> Some { page = s; declared; verdict = judge declared s })
    summaries

let declared_of_system sys ~vpage =
  match Numa_system.System.region_at sys ~vpage () with
  | None -> None
  | Some r -> Some r.Numa_system.System.attr.Region_attr.sharing

let problems findings = List.filter (fun f -> f.verdict <> Consistent) findings

let verdict_to_string = function
  | Consistent -> "ok"
  | False_shared -> "FALSE SHARING"
  | Over_declared -> "over-declared"
  | Segregation_candidate -> "segregation candidate"

let sharing_to_string = function
  | Region_attr.Declared_private -> "private"
  | Region_attr.Declared_read_shared -> "read-shared"
  | Region_attr.Declared_write_shared -> "write-shared"

let render findings =
  let open Numa_util in
  let table =
    Text_table.create
      ~columns:
        [
          ("page", Text_table.Right);
          ("region", Text_table.Left);
          ("declared", Text_table.Left);
          ("observed", Text_table.Left);
          ("verdict", Text_table.Left);
        ]
  in
  List.iter
    (fun f ->
      Text_table.add_row table
        [
          string_of_int f.page.Classify.vpage;
          f.page.Classify.region;
          sharing_to_string f.declared;
          Classify.class_to_string f.page.Classify.cls;
          verdict_to_string f.verdict;
        ])
    findings;
  Text_table.render table
