open Numa_machine
module Sys_ = Numa_system.System

(* Page placement states, encoded as integers:
   fresh (before first touch), global-writable, local-writable on node c,
   or read-only with a replica bitmask. n_cpus <= 16 keeps masks small. *)
type state = Fresh | Gw | Lw of int | Ro of int

let encode = function
  | Fresh -> -1
  | Gw -> 0
  | Lw c -> 1 + c
  | Ro mask -> 1024 + mask

type result = {
  actual_ns : float;
  optimal_ns : float;
  pages : int;
  per_page_gap : (int * float) list;
}

let ref_cost config ~kind ~where ~count = Cost.references_ns config ~access:kind ~where ~count

let copy_in config = Cost.page_copy_ns config ~src:Location.In_global ~dst:Location.Local_here

let sync_out config ~by ~owner =
  let src = if by = owner then Location.Local_here else Location.Remote_local in
  Cost.page_copy_ns config ~src ~dst:Location.In_global

let zero_local config = Cost.page_zero_ns config ~dst:Location.Local_here
let zero_global config = Cost.page_zero_ns config ~dst:Location.In_global

let popcount mask =
  let rec go acc m = if m = 0 then acc else go (acc + (m land 1)) (m lsr 1) in
  go 0 mask

(* Cost of moving from [s] to a target serving CPU [c], per the protocol's
   action repertoire. Returns None for illegal targets (a write served from
   read-only state is not a state; callers only request legal targets). *)
let transition config s target ~c =
  let act = Cost.pmap_action_ns config in
  let tlb n = float_of_int n *. Cost.tlb_shootdown_ns config in
  match (s, target) with
  | Fresh, Gw -> zero_global config +. act
  | Fresh, Lw c' when c' = c -> zero_local config +. act
  | Fresh, Ro mask when mask = 1 lsl c -> zero_local config +. act
  | Gw, Gw -> 0.
  | Gw, Lw c' when c' = c -> copy_in config +. tlb 1 +. act
  | Gw, Ro mask when mask = 1 lsl c -> copy_in config +. tlb 1 +. act
  | Lw o, Gw -> sync_out config ~by:c ~owner:o +. tlb 1 +. act
  | Lw o, Lw c' when c' = c ->
      if o = c then 0.
      else sync_out config ~by:c ~owner:o +. copy_in config +. tlb 1 +. act
  | Lw o, Ro mask when mask = 1 lsl c ->
      if o = c then act (* re-protect in place *)
      else sync_out config ~by:c ~owner:o +. copy_in config +. tlb 1 +. act
  | Ro mask, Gw -> tlb (popcount mask) +. act
  | Ro mask, Lw c' when c' = c ->
      let others = popcount (mask land lnot (1 lsl c)) in
      let copy = if mask land (1 lsl c) <> 0 then 0. else copy_in config in
      copy +. tlb others +. act
  | Ro mask, Ro mask' when mask' = mask lor (1 lsl c) ->
      if mask land (1 lsl c) <> 0 then 0. else copy_in config +. act
  | _, _ -> infinity

let serve_cost config target ~c ~kind ~count =
  match target with
  | Gw -> ref_cost config ~kind ~where:Location.In_global ~count
  | Lw c' when c' = c -> ref_cost config ~kind ~where:Location.Local_here ~count
  | Ro mask when mask land (1 lsl c) <> 0 ->
      ref_cost config ~kind ~where:Location.Local_here ~count
  | Fresh | Lw _ | Ro _ -> infinity

(* One DP step: for every frontier state, consider the legal targets for
   this event and accumulate minimum costs. Frontier is pruned to the
   cheapest [max_states] entries to bound mask blow-up. *)
let max_states = 96

let page_optimal_ns ~config events =
  let frontier : (int, float * state) Hashtbl.t = Hashtbl.create 32 in
  Hashtbl.replace frontier (encode Fresh) (0., Fresh);
  let step (e : Sys_.access_event) =
    let c = e.Sys_.cpu and kind = e.Sys_.kind and count = e.Sys_.count in
    let targets =
      match kind with
      | Access.Store -> [ Gw; Lw c ]
      | Access.Load ->
          (* Reads may also extend a read-only replica set; candidate masks
             derive from each source state below. *)
          [ Gw; Lw c ]
    in
    let next : (int, float * state) Hashtbl.t = Hashtbl.create 32 in
    let offer cost state =
      if cost < infinity then begin
        let key = encode state in
        match Hashtbl.find_opt next key with
        | Some (best, _) when best <= cost -> ()
        | Some _ | None -> Hashtbl.replace next key (cost, state)
      end
    in
    Hashtbl.iter
      (fun _ (cost, s) ->
        List.iter
          (fun target ->
            offer
              (cost +. transition config s target ~c +. serve_cost config target ~c ~kind ~count)
              target)
          targets;
        (* Read-only target: the reachable mask depends on the source. *)
        if kind = Access.Load then begin
          let ro_target =
            match s with
            | Ro mask -> Some (Ro (mask lor (1 lsl c)))
            | Fresh | Gw | Lw _ -> Some (Ro (1 lsl c))
          in
          match ro_target with
          | Some target ->
              offer
                (cost +. transition config s target ~c
                +. serve_cost config target ~c ~kind ~count)
                target
          | None -> ()
        end)
      frontier;
    (* Prune. *)
    Hashtbl.reset frontier;
    let entries = Hashtbl.fold (fun k v acc -> (k, v) :: acc) next [] in
    let entries =
      List.sort (fun (_, (a, _)) (_, (b, _)) -> Float.compare a b) entries
    in
    List.iteri
      (fun i (k, v) -> if i < max_states then Hashtbl.replace frontier k v)
      entries
  in
  List.iter step events;
  Hashtbl.fold (fun _ (cost, _) best -> Float.min best cost) frontier infinity

(* Estimate the protocol work the live run actually performed on one page
   from its observed placement sequence. Replica sets matter: consecutive
   local reads on different CPUs are replication (one copy per new
   replica), not migration, while a local write implies exclusivity and
   flushes the other holders. This mirrors the protocol's own actions, so
   the "actual" side is comparable with the DP optimum. *)
module Int_set = Set.Make (Int)

type inferred = I_global | I_locals of Int_set.t

let page_actual_ns ~config events =
  let refs = ref 0. and proto = ref (Cost.pmap_action_ns config (* first touch *)) in
  let tlb n = float_of_int n *. Cost.tlb_shootdown_ns config in
  let act () = proto := !proto +. Cost.pmap_action_ns config in
  let state = ref I_global in
  let step (e : Sys_.access_event) =
    refs :=
      !refs +. ref_cost config ~kind:e.Sys_.kind ~where:e.Sys_.where ~count:e.Sys_.count;
    let c = e.Sys_.cpu in
    match (e.Sys_.where, e.Sys_.kind, !state) with
    | Location.In_global, _, I_global -> ()
    | Location.In_global, _, I_locals s ->
        (* The run moved the page to global: sync one holder, flush all. *)
        proto := !proto +. sync_out config ~by:c ~owner:c +. tlb (Int_set.cardinal s);
        act ();
        state := I_global
    | Location.Local_here, Access.Load, I_global ->
        proto := !proto +. copy_in config +. tlb 1;
        act ();
        state := I_locals (Int_set.singleton c)
    | Location.Local_here, Access.Load, I_locals s ->
        if not (Int_set.mem c s) then begin
          proto := !proto +. copy_in config;
          act ();
          state := I_locals (Int_set.add c s)
        end
    | Location.Local_here, Access.Store, I_global ->
        proto := !proto +. copy_in config +. tlb 1;
        act ();
        state := I_locals (Int_set.singleton c)
    | Location.Local_here, Access.Store, I_locals s ->
        if not (Int_set.equal s (Int_set.singleton c)) then begin
          let others = Int_set.cardinal (Int_set.remove c s) in
          let copy = if Int_set.mem c s then 0. else sync_out config ~by:c ~owner:c +. copy_in config in
          proto := !proto +. copy +. tlb others;
          act ();
          state := I_locals (Int_set.singleton c)
        end
    | Location.Remote_local, _, _ ->
        (* Remote placements are stable by construction; no transition. *)
        ()
  in
  List.iter step events;
  !refs +. !proto

let analyse ~config buffer =
  let by_page = Trace_buffer.events_by_vpage buffer in
  let gaps = ref [] in
  let actual = ref 0. in
  let optimal = ref 0. in
  let pages = ref 0 in
  Hashtbl.iter
    (fun vpage events ->
      incr pages;
      let opt = page_optimal_ns ~config events in
      let act = page_actual_ns ~config events in
      actual := !actual +. act;
      optimal := !optimal +. opt;
      gaps := (vpage, act -. opt) :: !gaps)
    by_page;
  let per_page_gap =
    List.sort (fun (_, a) (_, b) -> Float.compare b a) !gaps
    |> List.filteri (fun i _ -> i < 16)
  in
  { actual_ns = !actual; optimal_ns = !optimal; pages = !pages; per_page_gap }

let render r =
  let buf = Buffer.create 256 in
  Printf.bprintf buf
    "offline placement analysis over %d pages:\n\
     \  trace at observed placements: %.3f s (references + inferred protocol work)\n\
     \  future-knowledge optimum:     %.3f s (references + protocol work)\n\
     \  headroom for any OS policy:   %.1f%%\n"
    r.pages (r.actual_ns /. 1e9) (r.optimal_ns /. 1e9)
    (100. *. (r.actual_ns -. r.optimal_ns) /. Float.max r.actual_ns 1.);
  if r.per_page_gap <> [] then begin
    Buffer.add_string buf "  largest per-page gaps (vpage, seconds):\n";
    List.iter
      (fun (vpage, gap) ->
        if gap > 0. then Printf.bprintf buf "    %6d  %.4f\n" vpage (gap /. 1e9))
      r.per_page_gap
  end;
  Buffer.contents buf
