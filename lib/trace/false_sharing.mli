(** False-sharing detection (section 4.2).

    An object is falsely shared when it is not writably shared itself but
    sits on a writably shared page. Our regions declare their intended
    sharing; comparing the declaration with the observed per-page behaviour
    from a trace flags the suspects:

    - a [Declared_private] or [Declared_read_shared] page observed
      write-shared is suffering interference from co-located data
      (the primes2-unsegregated divisor vector is the paper's example);
    - a [Declared_write_shared] page observed private suggests padding or
      segregation opportunity in the other direction (the page could have
      been cached locally all along). *)

type verdict =
  | Consistent
  | False_shared  (** declared private/read-shared, observed write-shared *)
  | Over_declared  (** declared write-shared, observed private *)
  | Segregation_candidate
      (** write-shared as declared, but reads dominate writes by a wide
          margin: the readers are paying global-memory latency for data
          that is almost never written — copy-out segregation (the primes2
          fix) or page-sized padding would let it replicate *)

type finding = {
  page : Classify.summary;
  declared : Numa_vm.Region_attr.sharing;
  verdict : verdict;
}

val analyse :
  declared_of:(vpage:int -> Numa_vm.Region_attr.sharing option) ->
  Classify.summary list ->
  finding list
(** Pair each page's observed class with its region's declaration.
    Pages with no known region declaration are skipped. *)

val declared_of_system : Numa_system.System.t -> vpage:int -> Numa_vm.Region_attr.sharing option

val problems : finding list -> finding list
(** Only the non-[Consistent] findings. *)

val render : finding list -> string
