(** Trace-driven policy evaluation.

    Section 5: "Trace-driven analyses can provide much more detailed
    understanding than what we could garner through the processor-time
    based approach" — and they are also cheap: once one run's reference
    trace is captured, any number of candidate policies can be compared by
    replaying the same reference stream through a fresh pmap layer,
    without re-running the application. This is the methodology of the
    contemporaneous policy-comparison studies the paper cites (Holliday;
    LaRowe & Ellis).

    The replay drives the real {!Numa_core.Pmap_manager} — the same
    protocol, cost model and policy code as the live system — so its cost
    estimates are consistent with live runs up to scheduling interactions
    (spin waits and convoy effects do not replay). *)

type result = {
  policy_name : string;
  ref_ns : float;  (** reference time at the placements the policy chose *)
  protocol_ns : float;  (** fault/copy/shootdown work *)
  moves : int;
  pins : int;
  local_refs : int;
  global_refs : int;
  remote_refs : int;
}

val replay :
  config:Numa_machine.Config.t ->
  policy:Numa_system.System.policy_spec ->
  Trace_buffer.t ->
  result
(** Replay every event in trace order under the given policy. Pages seen
    in the trace are assigned fresh logical pages on first touch; raises
    [Failure] if the trace touches more distinct pages than the
    configuration's logical page pool holds. For the [Reconsider] policy,
    "now" is the trace timestamp of the event being replayed. *)

val compare_policies :
  config:Numa_machine.Config.t ->
  policies:Numa_system.System.policy_spec list ->
  Trace_buffer.t ->
  result list

val render : result list -> string
