open Numa_machine

type event = Numa_system.System.access_event

type t = { mutable events : event array; mutable len : int }

let create () = { events = [||]; len = 0 }

let add t (e : event) =
  if t.len = Array.length t.events then begin
    let cap = max 1024 (2 * Array.length t.events) in
    let grown = Array.make cap e in
    Array.blit t.events 0 grown 0 t.len;
    t.events <- grown
  end;
  t.events.(t.len) <- e;
  t.len <- t.len + 1

let attach t sys = Numa_system.System.set_access_hook sys (Some (add t))

let length t = t.len

let total_references t =
  let n = ref 0 in
  for i = 0 to t.len - 1 do
    n := !n + t.events.(i).Numa_system.System.count
  done;
  !n

let iter t f =
  for i = 0 to t.len - 1 do
    f t.events.(i)
  done

let events_by_vpage t =
  let table = Hashtbl.create 256 in
  (* Build in reverse so each list comes out in time order. *)
  for i = t.len - 1 downto 0 do
    let e = t.events.(i) in
    let existing =
      Option.value (Hashtbl.find_opt table e.Numa_system.System.vpage) ~default:[]
    in
    Hashtbl.replace table e.Numa_system.System.vpage (e :: existing)
  done;
  table

let kind_to_char = function Access.Load -> 'R' | Access.Store -> 'W'

let kind_of_char = function
  | 'R' -> Access.Load
  | 'W' -> Access.Store
  | c -> failwith (Printf.sprintf "Trace_buffer.load: bad access kind %C" c)

let where_to_string = function
  | Location.Local_here -> "local"
  | Location.In_global -> "global"
  | Location.Remote_local -> "remote"

let where_of_string = function
  | "local" -> Location.Local_here
  | "global" -> Location.In_global
  | "remote" -> Location.Remote_local
  | s -> failwith (Printf.sprintf "Trace_buffer.load: bad location %S" s)

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      iter t (fun e ->
          Printf.fprintf oc "%.0f\t%d\t%d\t%d\t%c\t%d\t%s\t%s\n"
            e.Numa_system.System.at e.Numa_system.System.cpu e.Numa_system.System.tid
            e.Numa_system.System.vpage
            (kind_to_char e.Numa_system.System.kind)
            e.Numa_system.System.count
            (where_to_string e.Numa_system.System.where)
            e.Numa_system.System.region))

let load path =
  let t = create () in
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      try
        while true do
          let line = input_line ic in
          match String.split_on_char '\t' line with
          | [ at; cpu; tid; vpage; kind; count; where; region ] ->
              add t
                {
                  Numa_system.System.at = float_of_string at;
                  cpu = int_of_string cpu;
                  tid = int_of_string tid;
                  vpage = int_of_string vpage;
                  kind = kind_of_char kind.[0];
                  count = int_of_string count;
                  where = where_of_string where;
                  region;
                }
          | _ -> failwith ("Trace_buffer.load: malformed line: " ^ line)
        done;
        assert false
      with End_of_file -> t)
