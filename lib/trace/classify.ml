open Numa_machine
module Sys_ = Numa_system.System

type page_class = Class_private | Class_read_shared | Class_write_shared

type summary = {
  vpage : int;
  region : string;
  reads : int;
  writes : int;
  readers : int list;
  writers : int list;
  cls : page_class;
}

let class_to_string = function
  | Class_private -> "private"
  | Class_read_shared -> "read-shared"
  | Class_write_shared -> "write-shared"

module Int_set = Set.Make (Int)

type acc = {
  mutable a_region : string;
  mutable a_reads : int;
  mutable a_writes : int;
  mutable a_readers : Int_set.t;
  mutable a_writers : Int_set.t;
}

let classify buffer =
  let pages : (int, acc) Hashtbl.t = Hashtbl.create 256 in
  Trace_buffer.iter buffer (fun e ->
      let acc =
        match Hashtbl.find_opt pages e.Sys_.vpage with
        | Some a -> a
        | None ->
            let a =
              {
                a_region = e.Sys_.region;
                a_reads = 0;
                a_writes = 0;
                a_readers = Int_set.empty;
                a_writers = Int_set.empty;
              }
            in
            Hashtbl.replace pages e.Sys_.vpage a;
            a
      in
      match e.Sys_.kind with
      | Access.Load ->
          acc.a_reads <- acc.a_reads + e.Sys_.count;
          acc.a_readers <- Int_set.add e.Sys_.cpu acc.a_readers
      | Access.Store ->
          acc.a_writes <- acc.a_writes + e.Sys_.count;
          acc.a_writers <- Int_set.add e.Sys_.cpu acc.a_writers);
  Hashtbl.fold
    (fun vpage a out ->
      let users = Int_set.union a.a_readers a.a_writers in
      let cls =
        if Int_set.cardinal a.a_writers >= 1 && Int_set.cardinal users > 1 then
          Class_write_shared
        else if Int_set.cardinal users <= 1 then Class_private
        else Class_read_shared
      in
      {
        vpage;
        region = a.a_region;
        reads = a.a_reads;
        writes = a.a_writes;
        readers = Int_set.elements a.a_readers;
        writers = Int_set.elements a.a_writers;
        cls;
      }
      :: out)
    pages []
  |> List.sort (fun a b -> Int.compare a.vpage b.vpage)

let by_region summaries =
  let order = ref [] in
  let groups = Hashtbl.create 32 in
  List.iter
    (fun s ->
      if not (Hashtbl.mem groups s.region) then begin
        order := s.region :: !order;
        Hashtbl.replace groups s.region []
      end;
      Hashtbl.replace groups s.region (s :: Hashtbl.find groups s.region))
    summaries;
  List.rev_map (fun r -> (r, List.rev (Hashtbl.find groups r))) !order

let render summaries =
  let open Numa_util in
  let table =
    Text_table.create
      ~columns:
        [
          ("page", Text_table.Right);
          ("region", Text_table.Left);
          ("reads", Text_table.Right);
          ("writes", Text_table.Right);
          ("readers", Text_table.Right);
          ("writers", Text_table.Right);
          ("class", Text_table.Left);
        ]
  in
  List.iter
    (fun s ->
      Text_table.add_row table
        [
          string_of_int s.vpage;
          s.region;
          string_of_int s.reads;
          string_of_int s.writes;
          string_of_int (List.length s.readers);
          string_of_int (List.length s.writers);
          class_to_string s.cls;
        ])
    summaries;
  Text_table.render table
