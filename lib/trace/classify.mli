(** Per-page sharing classification from a reference trace.

    Applies the paper's definitions (section 4.2): a page is {e writably
    shared} if at least one processor writes it and more than one reads or
    writes it; pages used by one processor are private; pages written by
    nobody (after initialisation, by at most one) are read-shared. *)

type page_class = Class_private | Class_read_shared | Class_write_shared

type summary = {
  vpage : int;
  region : string;
  reads : int;  (** individual references, not batches *)
  writes : int;
  readers : int list;  (** CPUs, sorted *)
  writers : int list;
  cls : page_class;
}

val class_to_string : page_class -> string

val classify : Trace_buffer.t -> summary list
(** One summary per touched page, in page order. *)

val by_region : summary list -> (string * summary list) list
(** Group page summaries by region name, region order by first page. *)

val render : summary list -> string
(** Text table: page, region, reads/writes, reader/writer counts, class. *)
