(** Offline (future-knowledge) placement analysis: a T_optimal estimate.

    The paper compares T_numa against T_local because T_optimal — the time
    under a placement strategy that minimises user + NUMA system time with
    future knowledge — could not be measured (section 3.1). With a
    reference trace we can do better: for each page, a dynamic program over
    the protocol's state space (global-writable, local-writable per node,
    read-only with any replica set) finds the cheapest way to serve the
    page's exact reference sequence, charging the same per-reference and
    page-copy costs as the live system.

    The result is per-run: [actual_ns] prices the trace at the placements
    the policy actually chose; [optimal_ns] is the DP optimum. Their ratio
    bounds how much any operating-system policy could still win — the
    paper's claim that the simple policy is near what "any operating system
    level strategy could have" achieved becomes checkable. *)

type result = {
  actual_ns : float;
      (** trace priced at observed placements: references plus an estimate
          of the protocol work implied by each observed placement change *)
  optimal_ns : float;  (** DP optimum: references + protocol transitions *)
  pages : int;  (** pages analysed *)
  per_page_gap : (int * float) list;
      (** pages with the largest (actual - optimal) gaps, descending *)
}

val analyse : config:Numa_machine.Config.t -> Trace_buffer.t -> result

val page_optimal_ns :
  config:Numa_machine.Config.t -> Numa_system.System.access_event list -> float
(** DP optimum for one page's event list (time-ordered). Exposed for
    unit tests. *)

val render : result -> string
