(** Deterministic fault injection driven by the engine's virtual clock.

    The injector turns a {!Plan} into a flat, time-sorted schedule of
    primitive actions and replays it as simulated time advances: the
    system layer polls {!due} at every scheduling turn and applies what
    has come due. Spurious shootdowns are generated on a fixed cadence
    (one per [1/rate] milliseconds) targeting pages drawn from a seeded
    PRNG, so the whole schedule — plan plus noise — is a pure function of
    (plan, seed) and a faulted run is exactly reproducible. *)

type action =
  | Set_node_offline of int
  | Set_node_online of int
  | Begin_link_degrade of { src : int; dst : int; factor : float }
  | End_link_degrade of { src : int; dst : int }
  | Squeeze_frames of { node : int; frac : float }
  | Spurious_shootdown of { lpage : int }
  | Corrupt_replica_pte of { lpage : int }
      (** plant a stale replica page-table PTE for [lpage] *)

type fired = { at_ns : float; action : action }

type t

val create : ?seed:int64 -> Plan.t -> n_pages:int -> t
(** [seed] (default a fixed constant) drives only the spurious-shootdown
    page draws; [n_pages] bounds them. *)

val due : t -> now:float -> fired list
(** Pop every action scheduled at or before [now], in schedule order.
    [now] must be non-decreasing across calls. *)

val remaining : t -> int
(** Plan actions not yet fired (excludes future spurious shootdowns). *)

val fired : t -> int
(** Total actions handed out so far. *)
