(** Typed, parseable fault schedules.

    A plan is a deterministic list of machine faults to inject at given
    points of {e simulated} time, plus an optional rate of spurious TLB
    shootdowns. The concrete syntax (comma-separated entries, times in
    milliseconds of simulated time) is shared by [numa_sim run --faults]
    and [experiments chaos-sweep]:

    - [node-offline:NODE@MS] — node [NODE]'s local memory goes away at
      [MS]: its frames are drained and freed, threads re-home, future
      LOCAL placements degrade to GLOBAL.
    - [node-online:NODE@MS] — the node comes back; its (empty) pool
      accepts allocations again.
    - [link-degrade:SRC:DST:FACTOR@MS..MS] — the directed interconnect
      link loses bandwidth by [FACTOR] (>= 1) over the window.
    - [frame-squeeze:NODE:FRAC@MS] — the node's frame pool shrinks to
      [FRAC] (in [0,1]) of its capacity.
    - [stale-pte:LPAGE@MS] — one replica page-table PTE for logical page
      [LPAGE] is silently corrupted (requires [--pt-mode replicated]; a
      no-op otherwise). The next invariant audit must report it.
    - [spurious-shootdown:RATE] — [RATE] spurious mapping invalidations
      per millisecond of simulated time, on seeded pseudo-random pages.

    The same plan and the same workload seed always produce the same run,
    byte for byte: plans are data, and injection is driven from the
    engine's virtual clock ({!Injector}). *)

type event =
  | Node_offline of { node : int }
  | Node_online of { node : int }
  | Link_degrade of { src : int; dst : int; factor : float; until_ns : float }
      (** bandwidth divided by [factor] until [until_ns] *)
  | Frame_squeeze of { node : int; frac : float }
  | Stale_pte of { lpage : int }
      (** corrupt one replica page-table PTE mapping [lpage] *)

type timed = { at_ns : float; event : event }

type t

val empty : t
val is_empty : t -> bool

val events : t -> timed list
(** Sorted by [at_ns]; simultaneous entries keep their written order. *)

val shootdown_rate : t -> float
(** Spurious shootdowns per millisecond of simulated time (0 = none). *)

val of_string : string -> (t, string) result
(** Parse the CLI syntax above. The empty string is the empty plan. *)

val to_string : t -> string
(** Canonical rendering, parseable by {!of_string}. *)

val validate : t -> cpu_nodes:int -> n_nodes:int -> (unit, string) result
(** Check every node index against the machine: offline / online / squeeze
    targets must be CPU nodes (they act on frame pools), link endpoints
    may be any node including a memory-only board. *)
