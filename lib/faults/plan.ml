type event =
  | Node_offline of { node : int }
  | Node_online of { node : int }
  | Link_degrade of { src : int; dst : int; factor : float; until_ns : float }
  | Frame_squeeze of { node : int; frac : float }
  | Stale_pte of { lpage : int }

type timed = { at_ns : float; event : event }

type t = { events : timed list; shootdown_rate : float }

let empty = { events = []; shootdown_rate = 0. }
let is_empty t = t.events = [] && t.shootdown_rate <= 0.
let events t = t.events
let shootdown_rate t = t.shootdown_rate

let ms_to_ns ms = ms *. 1e6

(* --- parsing ----------------------------------------------------------- *)

(* One entry is KIND:ARGS@MS (or KIND:RATE for spurious-shootdown); a plan
   is a comma-separated list of entries. All times are milliseconds of
   simulated time. *)

let ( let* ) = Result.bind

let err fmt = Printf.ksprintf (fun s -> Error s) fmt

let parse_int ~what s =
  match int_of_string_opt s with
  | Some n when n >= 0 -> Ok n
  | Some _ | None -> err "%s must be a non-negative int (got %S)" what s

let parse_float ~what s =
  match float_of_string_opt s with
  | Some f when f >= 0. -> Ok f
  | Some _ | None -> err "%s must be a non-negative number (got %S)" what s

(* Split "body@MS" into the body and the parsed time. *)
let parse_at entry =
  match String.index_opt entry '@' with
  | None -> err "entry %S needs an @MS time" entry
  | Some i ->
      let body = String.sub entry 0 i in
      let time = String.sub entry (i + 1) (String.length entry - i - 1) in
      let* ms = parse_float ~what:"time (ms)" time in
      Ok (body, ms_to_ns ms)

(* Split "MS1..MS2" on the first "..". *)
let split_window times =
  let n = String.length times in
  let rec find i =
    if i + 1 >= n then None
    else if times.[i] = '.' && times.[i + 1] = '.' then
      Some (String.sub times 0 i, String.sub times (i + 2) (n - i - 2))
    else find (i + 1)
  in
  find 0

(* "body@MS1..MS2" for windowed entries. *)
let parse_window entry =
  match String.index_opt entry '@' with
  | None -> err "entry %S needs an @MS..MS window" entry
  | Some i -> (
      let body = String.sub entry 0 i in
      let times = String.sub entry (i + 1) (String.length entry - i - 1) in
      match split_window times with
      | None -> err "entry %S: window must be MS..MS" entry
      | Some (a, b) ->
          let* from_ms = parse_float ~what:"window start (ms)" a in
          let* until_ms = parse_float ~what:"window end (ms)" b in
          if until_ms <= from_ms then
            err "entry %S: window end must be after its start" entry
          else Ok (body, ms_to_ns from_ms, ms_to_ns until_ms))

let parse_entry entry =
  match String.split_on_char ':' entry with
  | "node-offline" :: _ ->
      let* body, at_ns = parse_at entry in
      let* node =
        match String.split_on_char ':' body with
        | [ _; n ] -> parse_int ~what:"node" n
        | _ -> err "expected node-offline:NODE@MS (got %S)" entry
      in
      Ok (`Timed [ { at_ns; event = Node_offline { node } } ])
  | "node-online" :: _ ->
      let* body, at_ns = parse_at entry in
      let* node =
        match String.split_on_char ':' body with
        | [ _; n ] -> parse_int ~what:"node" n
        | _ -> err "expected node-online:NODE@MS (got %S)" entry
      in
      Ok (`Timed [ { at_ns; event = Node_online { node } } ])
  | "link-degrade" :: _ ->
      let* body, from_ns, until_ns = parse_window entry in
      let* src, dst, factor =
        match String.split_on_char ':' body with
        | [ _; s; d; f ] ->
            let* src = parse_int ~what:"src node" s in
            let* dst = parse_int ~what:"dst node" d in
            let* factor = parse_float ~what:"factor" f in
            if factor < 1. then err "link-degrade factor must be >= 1 (got %g)" factor
            else Ok (src, dst, factor)
        | _ -> err "expected link-degrade:SRC:DST:FACTOR@MS..MS (got %S)" entry
      in
      Ok (`Timed [ { at_ns = from_ns; event = Link_degrade { src; dst; factor; until_ns } } ])
  | "frame-squeeze" :: _ ->
      let* body, at_ns = parse_at entry in
      let* node, frac =
        match String.split_on_char ':' body with
        | [ _; n; f ] ->
            let* node = parse_int ~what:"node" n in
            let* frac = parse_float ~what:"fraction" f in
            if frac > 1. then err "frame-squeeze fraction must be in [0,1] (got %g)" frac
            else Ok (node, frac)
        | _ -> err "expected frame-squeeze:NODE:FRAC@MS (got %S)" entry
      in
      Ok (`Timed [ { at_ns; event = Frame_squeeze { node; frac } } ])
  | "stale-pte" :: _ ->
      let* body, at_ns = parse_at entry in
      let* lpage =
        match String.split_on_char ':' body with
        | [ _; l ] -> parse_int ~what:"lpage" l
        | _ -> err "expected stale-pte:LPAGE@MS (got %S)" entry
      in
      Ok (`Timed [ { at_ns; event = Stale_pte { lpage } } ])
  | "node-flap" :: _ ->
      (* Convenience sugar: node-flap:N:PERIOD_MS@MS1..MS2 canonicalises
         into alternating offline/online events — offline at the start of
         each period, online half a period later (clamped to the window
         end, so the node always finishes the window online). *)
      let* body, from_ns, until_ns = parse_window entry in
      let* node, period_ns =
        match String.split_on_char ':' body with
        | [ _; n; p ] ->
            let* node = parse_int ~what:"node" n in
            let* period_ms = parse_float ~what:"period (ms)" p in
            if period_ms <= 0. then
              err "node-flap period must be a positive number of ms (got %g)" period_ms
            else Ok (node, ms_to_ns period_ms)
        | _ -> err "expected node-flap:NODE:PERIOD_MS@MS..MS (got %S)" entry
      in
      let rec cycles t acc =
        if t >= until_ns then List.rev acc
        else
          let back = Float.min (t +. (period_ns /. 2.)) until_ns in
          cycles (t +. period_ns)
            ({ at_ns = back; event = Node_online { node } }
            :: { at_ns = t; event = Node_offline { node } }
            :: acc)
      in
      Ok (`Timed (cycles from_ns []))
  | [ "spurious-shootdown"; r ] ->
      let* rate = parse_float ~what:"rate (events/ms)" r in
      Ok (`Rate rate)
  | _ ->
      err
        "unknown fault %S; use node-offline:NODE@MS, node-online:NODE@MS, \
         node-flap:NODE:PERIOD_MS@MS..MS, link-degrade:SRC:DST:FACTOR@MS..MS, \
         frame-squeeze:NODE:FRAC@MS, stale-pte:LPAGE@MS or \
         spurious-shootdown:RATE"
        entry

let of_string s =
  let entries =
    String.split_on_char ',' (String.trim s)
    |> List.map String.trim
    |> List.filter (fun e -> e <> "")
  in
  let rec fold acc rate = function
    | [] ->
        (* Stable by arrival time: simultaneous faults apply in the order
           written, so a plan is a deterministic schedule, not a set. *)
        Ok
          {
            events = List.stable_sort (fun a b -> Float.compare a.at_ns b.at_ns)
                       (List.rev acc);
            shootdown_rate = rate;
          }
    | entry :: rest -> (
        match parse_entry entry with
        | Error _ as e -> e
        | Ok (`Timed evs) -> fold (List.rev_append evs acc) rate rest
        | Ok (`Rate r) -> fold acc r rest)
  in
  fold [] 0. entries

let event_to_string = function
  | Node_offline { node } -> Printf.sprintf "node-offline:%d" node
  | Node_online { node } -> Printf.sprintf "node-online:%d" node
  | Link_degrade { src; dst; factor; _ } ->
      Printf.sprintf "link-degrade:%d:%d:%g" src dst factor
  | Frame_squeeze { node; frac } -> Printf.sprintf "frame-squeeze:%d:%g" node frac
  | Stale_pte { lpage } -> Printf.sprintf "stale-pte:%d" lpage

let timed_to_string { at_ns; event } =
  match event with
  | Link_degrade { until_ns; _ } ->
      Printf.sprintf "%s@%g..%g" (event_to_string event) (at_ns /. 1e6)
        (until_ns /. 1e6)
  | Node_offline _ | Node_online _ | Frame_squeeze _ | Stale_pte _ ->
      Printf.sprintf "%s@%g" (event_to_string event) (at_ns /. 1e6)

let to_string t =
  let entries = List.map timed_to_string t.events in
  let entries =
    if t.shootdown_rate > 0. then
      entries @ [ Printf.sprintf "spurious-shootdown:%g" t.shootdown_rate ]
    else entries
  in
  String.concat "," entries

let validate t ~cpu_nodes ~n_nodes =
  let check ~what ~bound node =
    if node < 0 || node >= bound then
      err "%s %d out of range (machine has %d)" what node bound
    else Ok ()
  in
  let rec go = function
    | [] -> Ok ()
    | { event; _ } :: rest ->
        let* () =
          match event with
          (* Only CPU nodes carry a frame pool to kill or squeeze; links
             may also reach the memory-only board. *)
          | Node_offline { node } | Node_online { node } | Frame_squeeze { node; _ } ->
              check ~what:"CPU node" ~bound:cpu_nodes node
          | Link_degrade { src; dst; _ } ->
              let* () = check ~what:"link src node" ~bound:n_nodes src in
              check ~what:"link dst node" ~bound:n_nodes dst
          (* Page range depends on the workload, not the machine; an
             out-of-range lpage just finds no replica PTE to corrupt. *)
          | Stale_pte _ -> Ok ()
        in
        go rest
  in
  go t.events
