type action =
  | Set_node_offline of int
  | Set_node_online of int
  | Begin_link_degrade of { src : int; dst : int; factor : float }
  | End_link_degrade of { src : int; dst : int }
  | Squeeze_frames of { node : int; frac : float }
  | Spurious_shootdown of { lpage : int }
  | Corrupt_replica_pte of { lpage : int }

type fired = { at_ns : float; action : action }

type t = {
  mutable pending : fired list;  (** sorted by at_ns; popped as time passes *)
  shootdown_period_ns : float;  (** infinity when the plan has no rate *)
  mutable next_shootdown_at : float;
  prng : Numa_util.Prng.t;
  n_pages : int;
  mutable fired : int;
}

(* A windowed link degrade expands into a begin and an end action so the
   injector's output is a flat, time-sorted schedule. *)
let expand (tv : Plan.timed) =
  match tv.Plan.event with
  | Plan.Node_offline { node } ->
      [ { at_ns = tv.Plan.at_ns; action = Set_node_offline node } ]
  | Plan.Node_online { node } ->
      [ { at_ns = tv.Plan.at_ns; action = Set_node_online node } ]
  | Plan.Frame_squeeze { node; frac } ->
      [ { at_ns = tv.Plan.at_ns; action = Squeeze_frames { node; frac } } ]
  | Plan.Stale_pte { lpage } ->
      [ { at_ns = tv.Plan.at_ns; action = Corrupt_replica_pte { lpage } } ]
  | Plan.Link_degrade { src; dst; factor; until_ns } ->
      [
        { at_ns = tv.Plan.at_ns; action = Begin_link_degrade { src; dst; factor } };
        { at_ns = until_ns; action = End_link_degrade { src; dst } };
      ]

let create ?(seed = 0xFA17L) plan ~n_pages =
  let rate = Plan.shootdown_rate plan in
  let period = if rate > 0. then 1e6 /. rate else Float.infinity in
  {
    pending =
      List.concat_map expand (Plan.events plan)
      |> List.stable_sort (fun a b -> Float.compare a.at_ns b.at_ns);
    shootdown_period_ns = period;
    next_shootdown_at = period;
    prng = Numa_util.Prng.create ~seed;
    n_pages = max 1 n_pages;
    fired = 0;
  }

let due t ~now =
  let rec planned acc = function
    | ev :: rest when ev.at_ns <= now -> planned (ev :: acc) rest
    | rest ->
        t.pending <- rest;
        List.rev acc
  in
  let from_plan = planned [] t.pending in
  (* Spurious shootdowns fire on a fixed seeded cadence: the k-th fires at
     k / rate milliseconds, targeting a pseudo-random page. Determinism
     comes free — virtual time and the PRNG are both run-invariant. *)
  let rec spurious acc =
    if t.next_shootdown_at > now then List.rev acc
    else begin
      let at_ns = t.next_shootdown_at in
      t.next_shootdown_at <- t.next_shootdown_at +. t.shootdown_period_ns;
      let lpage = Numa_util.Prng.int t.prng t.n_pages in
      spurious ({ at_ns; action = Spurious_shootdown { lpage } } :: acc)
    end
  in
  let fired =
    List.merge (fun a b -> Float.compare a.at_ns b.at_ns) from_plan (spurious [])
  in
  t.fired <- t.fired + List.length fired;
  fired

let remaining t = List.length t.pending
let fired t = t.fired
