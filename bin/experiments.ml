(* Regenerates every table and figure of the paper, plus the ablation
   studies indexed in DESIGN.md. `experiments all` is what EXPERIMENTS.md
   records. *)

open Cmdliner
module Runner = Numa_metrics.Runner
module Table3 = Numa_metrics.Table3
module Table4 = Numa_metrics.Table4
module Ablations = Numa_metrics.Ablations
module Tournament = Numa_metrics.Tournament
module Chaos = Numa_metrics.Chaos
module Pressure = Numa_metrics.Pressure
module Pt_sweep = Numa_metrics.Pt_sweep
module Serve_sweep = Numa_metrics.Serve_sweep
module Resilience = Numa_metrics.Resilience
module System = Numa_system.System

let scale_arg =
  Arg.(
    value & opt float 1.0
    & info [ "scale" ] ~docv:"S" ~doc:"Problem-size multiplier for all workloads.")

let cpus_arg =
  Arg.(value & opt int 7 & info [ "cpus" ] ~docv:"N" ~doc:"Number of processors.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"J"
        ~doc:
          "Distribute the independent simulated runs of each experiment over $(docv) \
           domains. Results are identical to --jobs 1; only wall-clock time changes.")

let topology_arg =
  Arg.(
    value
    & opt string "ace"
    & info [ "topology" ] ~docv:"NAME"
        ~doc:
          (Printf.sprintf
             "Machine for the policy tournament: one of %s. Other sections always run \
              the paper's ACE."
             (String.concat ", " Numa_machine.Config.builtin_topologies)))

let json_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json-out" ] ~docv:"FILE"
        ~doc:
          "Where the policy tournament / chaos sweep / pressure sweep / pt sweep / \
           serve sweep writes its JSON artifact (defaults: policy-tournament.json, \
           chaos-sweep.json, pressure-sweep.json, pt-sweep.json, serve-sweep.json).")

let apps_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "apps" ] ~docv:"A,B,..."
        ~doc:
          "Comma-separated application subset for the policy tournament and the \
           chaos / pressure / pt sweeps (default: the Table 4 set).")

let policies_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "policies" ] ~docv:"P,Q,..."
        ~doc:
          "Comma-separated policy subset for the policy tournament, in the run/measure \
           --policy syntax (default: every shipped policy).")

let profile_arg =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Attach the simulated-time profiler to every measured run. Sections \
           whose JSON artifacts embed full reports (the chaos sweep) then carry \
           a per-run profile section; text reports print a one-line summary.")

let spec_of ~scale ~cpus ~profiling =
  { Runner.default_spec with Runner.scale; n_cpus = cpus; nthreads = cpus; profiling }

let parse_apps s =
  List.map
    (fun name ->
      match Numa_apps.Registry.find name with
      | Some app -> app
      | None ->
          failwith
            (Printf.sprintf "unknown app %S; known: %s" name
               (String.concat ", " (Numa_apps.Registry.names ()))))
    (String.split_on_char ',' s)

let parse_policies s =
  List.map
    (fun p ->
      match System.policy_spec_of_string p with
      | Ok spec -> spec
      | Error msg -> failwith (Printf.sprintf "bad policy %S: %s" p msg))
    (String.split_on_char ',' s)

let topology_tweak ~topology (c : Numa_machine.Config.t) =
  match
    Numa_machine.Config.of_topology_name ~n_cpus:c.Numa_machine.Config.n_cpus topology
  with
  | Some c' -> c'
  | None ->
      failwith
        (Printf.sprintf "unknown topology %S; known: %s" topology
           (String.concat ", " Numa_machine.Config.builtin_topologies))

let policy_tournament ~spec ~jobs ~topology ~json_out ~apps ~policies =
  let apps = Option.map parse_apps apps in
  let policies = Option.map parse_policies policies in
  let rows =
    Tournament.run ~jobs ?policies ?apps
      ~spec:{ spec with Runner.config_tweak = topology_tweak ~topology }
      ()
  in
  print_endline (Tournament.render ~topology rows);
  let json_out = Option.value json_out ~default:"policy-tournament.json" in
  Numa_obs.Json.save (Tournament.to_json ~topology rows) json_out;
  Printf.printf "tournament JSON written to %s\n" json_out

let chaos_sweep ~spec ~jobs ~topology ~json_out ~apps =
  let apps = Option.map parse_apps apps in
  let rows =
    Chaos.run ~jobs ?apps ~spec:{ spec with Runner.config_tweak = topology_tweak ~topology } ()
  in
  print_endline (Chaos.render ~topology rows);
  let json_out = Option.value json_out ~default:"chaos-sweep.json" in
  Numa_obs.Json.save (Chaos.to_json ~topology rows) json_out;
  Printf.printf "chaos JSON written to %s\n" json_out;
  let violations = Chaos.total_violations rows in
  if violations > 0 then
    failwith
      (Printf.sprintf "chaos sweep found %d protocol invariant violations" violations)

let pressure_sweep ~spec ~jobs ~topology ~json_out ~apps =
  let apps = Option.map parse_apps apps in
  let rows =
    Pressure.run ~jobs ?apps
      ~spec:{ spec with Runner.config_tweak = topology_tweak ~topology }
      ()
  in
  print_endline (Pressure.render ~topology rows);
  let json_out = Option.value json_out ~default:"pressure-sweep.json" in
  Numa_obs.Json.save (Pressure.to_json ~topology rows) json_out;
  Printf.printf "pressure JSON written to %s\n" json_out;
  let violations = Pressure.total_violations rows in
  if violations > 0 then
    failwith
      (Printf.sprintf "pressure sweep found %d protocol invariant violations" violations)

let pt_sweep ~spec ~jobs ~json_out ~apps =
  (* The sweep owns its topology axis (each variant names one), so the
     --topology flag does not apply here. *)
  let apps = Option.map parse_apps apps in
  let rows = Pt_sweep.run ~jobs ?apps ~spec () in
  print_endline (Pt_sweep.render rows);
  let json_out = Option.value json_out ~default:"pt-sweep.json" in
  Numa_obs.Json.save (Pt_sweep.to_json rows) json_out;
  Printf.printf "pt-sweep JSON written to %s\n" json_out;
  let violations = Pt_sweep.total_violations rows in
  if violations > 0 then
    failwith
      (Printf.sprintf "pt sweep found %d protocol invariant violations" violations)

let serve_sweep ~spec ~jobs ~json_out ~policies =
  (* Like the pt sweep, the grid owns its topology axis (every row names
     one), so --topology does not apply; --policies narrows the slate. *)
  let policies = Option.map parse_policies policies in
  let rows = Serve_sweep.run ~jobs ?policies ~spec () in
  print_endline (Serve_sweep.render ~scale:spec.Runner.scale rows);
  let json_out = Option.value json_out ~default:"serve-sweep.json" in
  Numa_obs.Json.save (Serve_sweep.to_json rows) json_out;
  Printf.printf "serve-sweep JSON written to %s\n" json_out;
  let violations = Serve_sweep.total_violations rows in
  if violations > 0 then
    failwith
      (Printf.sprintf "serve sweep found %d protocol invariant violations" violations)

let resilience_sweep ~spec ~jobs ~json_out =
  (* The grid pins its own machine, traffic and fault plans (the 2x
     node-offline recovery it reports is an acceptance gate, so the
     scenario must not drift with --cpus/--scale); only the seed carries
     over. Fails on any protocol-invariant or request-conservation
     violation. *)
  let rows = Resilience.run ~jobs ~spec () in
  print_endline (Resilience.render rows);
  let json_out = Option.value json_out ~default:"resilience-sweep.json" in
  Numa_obs.Json.save (Resilience.to_json rows) json_out;
  Printf.printf "resilience-sweep JSON written to %s\n" json_out;
  let violations = Resilience.total_violations rows in
  if violations > 0 then
    failwith
      (Printf.sprintf
         "resilience sweep found %d invariant/conservation violations" violations)

let table1 () =
  print_endline (Numa_core.Protocol.render_table Numa_machine.Access.Load)

let table2 () =
  print_endline (Numa_core.Protocol.render_table Numa_machine.Access.Store)

let figure1 ~cpus =
  print_endline (Numa_machine.Topology.render (Numa_machine.Config.ace ~n_cpus:cpus ()))

let figure2 () = print_endline (Numa_core.Pmap_manager.figure2 ())

let table3 ~spec ~jobs =
  let rows = Table3.run ~jobs ~spec () in
  print_endline (Table3.render rows);
  print_endline (Table3.render_comparison rows);
  rows

let table4_from rows =
  let t4 = Table4.of_measurements rows in
  print_endline (Table4.render t4);
  print_endline (Table4.render_comparison t4)

let false_sharing ~spec =
  let measure name =
    let app = Option.get (Numa_apps.Registry.find name) in
    Runner.measure app spec
  in
  let seg = measure "primes2" and unseg = measure "primes2-unseg" in
  Printf.printf
    "Ablation A2: false sharing in primes2 (section 4.2)\n\
     variant          alpha(model)  alpha(counted)  Tnuma\n\
     unsegregated     %.2f          %.2f            %.1f\n\
     segregated       %.2f          %.2f            %.1f\n\
     (the paper reports the same tuning took alpha from 0.66 to 1.00)\n"
    unseg.Runner.alpha unseg.Runner.r_numa.Numa_system.Report.alpha_counted
    unseg.Runner.times.Numa_metrics.Model.t_numa seg.Runner.alpha
    seg.Runner.r_numa.Numa_system.Report.alpha_counted
    seg.Runner.times.Numa_metrics.Model.t_numa

let optimal_study ~spec =
  (* Trace an imatmult numa run and compare against the DP optimum. *)
  let app = Option.get (Numa_apps.Registry.find "imatmult") in
  let config = Numa_machine.Config.ace ~n_cpus:spec.Runner.n_cpus () in
  let sys = System.create ~policy:spec.Runner.policy ~config () in
  let buffer = Numa_trace.Trace_buffer.create () in
  Numa_trace.Trace_buffer.attach buffer sys;
  app.Numa_apps.App_sig.setup sys
    {
      Numa_apps.App_sig.nthreads = spec.Runner.nthreads;
      scale = spec.Runner.scale;
      seed = spec.Runner.seed;
    };
  ignore (System.run sys);
  print_endline "Ablation A7: offline optimal placement vs the live policy (imatmult)";
  print_endline (Numa_trace.Optimal.render (Numa_trace.Optimal.analyse ~config buffer))

let replay_study ~spec =
  (* Trace one primes3 run, then evaluate every policy on the same trace —
     the cheap comparison methodology of section 5. *)
  let app = Option.get (Numa_apps.Registry.find "primes3") in
  let config = Numa_machine.Config.ace ~n_cpus:spec.Runner.n_cpus () in
  let sys = System.create ~policy:spec.Runner.policy ~config () in
  let buffer = Numa_trace.Trace_buffer.create () in
  Numa_trace.Trace_buffer.attach buffer sys;
  app.Numa_apps.App_sig.setup sys
    {
      Numa_apps.App_sig.nthreads = spec.Runner.nthreads;
      scale = 0.2 *. spec.Runner.scale;
      seed = spec.Runner.seed;
    };
  ignore (System.run sys);
  Printf.printf
    "Trace-driven policy comparison (primes3 trace: %d events, %d references)\n"
    (Numa_trace.Trace_buffer.length buffer)
    (Numa_trace.Trace_buffer.total_references buffer);
  print_endline
    (Numa_trace.Replay.render
       (Numa_trace.Replay.compare_policies ~config
          ~policies:
            [
              System.Move_limit { threshold = 0 };
              System.Move_limit { threshold = 4 };
              System.Move_limit { threshold = 16 };
              System.Never_pin;
              System.All_global;
              System.Random_assign { p_global = 0.5; seed = 7L };
            ]
          buffer))

let run_section section ~spec ~cpus ~jobs ~topology ~json_out ~apps ~policies =
  match section with
  | "table1" -> table1 ()
  | "table2" -> table2 ()
  | "figure1" -> figure1 ~cpus
  | "figure2" -> figure2 ()
  | "table3" -> ignore (table3 ~spec ~jobs)
  | "table4" -> table4_from (Table3.run ~apps:Numa_apps.Registry.table4 ~jobs ~spec ())
  | "threshold-sweep" ->
      print_endline
        (Ablations.render_threshold_sweep (Ablations.threshold_sweep ~jobs ~spec ()))
  | "false-sharing" -> false_sharing ~spec
  | "scheduler" ->
      print_endline
        (Ablations.render_scheduler_study (Ablations.scheduler_study ~jobs ~spec ()))
  | "gl-sweep" ->
      print_endline (Ablations.render_gl_sweep (Ablations.gl_sweep ~jobs ~spec ()))
  | "pragmas" ->
      print_endline (Ablations.render_pragma_study (Ablations.pragma_study ~spec ()))
  | "unix-master" ->
      print_endline
        (Ablations.render_unix_master_study (Ablations.unix_master_study ~spec ()))
  | "optimal" -> optimal_study ~spec
  | "remote" ->
      print_endline (Ablations.render_remote_study (Ablations.remote_study ~spec ()))
  | "replay" -> replay_study ~spec
  | "bus" ->
      print_endline (Ablations.render_bus_study (Ablations.bus_study ~jobs ~spec ()))
  | "migration" ->
      print_endline (Ablations.render_migration_study (Ablations.migration_study ~spec ()))
  | "cpu-sweep" ->
      print_endline (Ablations.render_cpu_sweep (Ablations.cpu_sweep ~jobs ~spec ()))
  | "butterfly" ->
      print_endline
        (Ablations.render_butterfly_study (Ablations.butterfly_study ~jobs ~spec ()))
  | "topology-sweep" ->
      List.iter
        (fun name ->
          match Numa_machine.Config.of_topology_name ~n_cpus:cpus name with
          | Some config -> print_endline (Numa_machine.Topology.render config)
          | None -> ())
        Numa_machine.Config.builtin_topologies;
      print_endline
        (Ablations.render_topology_sweep (Ablations.topology_sweep ~jobs ~spec ()))
  | "reconsider" ->
      print_endline
        (Ablations.render_reconsider_study (Ablations.reconsider_study ~spec ()))
  | "policy-tournament" -> policy_tournament ~spec ~jobs ~topology ~json_out ~apps ~policies
  | "chaos-sweep" -> chaos_sweep ~spec ~jobs ~topology ~json_out ~apps
  | "pressure-sweep" -> pressure_sweep ~spec ~jobs ~topology ~json_out ~apps
  | "pt-sweep" -> pt_sweep ~spec ~jobs ~json_out ~apps
  | "serve-sweep" -> serve_sweep ~spec ~jobs ~json_out ~policies
  | "resilience-sweep" -> resilience_sweep ~spec ~jobs ~json_out
  | other -> failwith ("unknown section: " ^ other)

let sections =
  [
    "table1"; "table2"; "figure1"; "figure2"; "table3"; "table4"; "threshold-sweep";
    "false-sharing"; "scheduler"; "gl-sweep"; "pragmas"; "unix-master"; "optimal";
    "remote"; "replay"; "bus"; "migration"; "cpu-sweep"; "butterfly"; "topology-sweep";
    "reconsider"; "policy-tournament"; "chaos-sweep"; "pressure-sweep"; "pt-sweep";
    "serve-sweep"; "resilience-sweep";
  ]

let all ~spec ~cpus ~jobs ~topology ~json_out ~apps ~policies =
  table1 ();
  table2 ();
  figure1 ~cpus;
  figure2 ();
  let rows = table3 ~spec ~jobs in
  table4_from rows;
  print_endline
    (Ablations.render_threshold_sweep (Ablations.threshold_sweep ~jobs ~spec ()));
  false_sharing ~spec;
  print_endline
    (Ablations.render_scheduler_study (Ablations.scheduler_study ~jobs ~spec ()));
  print_endline (Ablations.render_gl_sweep (Ablations.gl_sweep ~jobs ~spec ()));
  print_endline (Ablations.render_pragma_study (Ablations.pragma_study ~spec ()));
  print_endline (Ablations.render_unix_master_study (Ablations.unix_master_study ~spec ()));
  optimal_study ~spec;
  print_endline (Ablations.render_remote_study (Ablations.remote_study ~spec ()));
  replay_study ~spec;
  print_endline (Ablations.render_bus_study (Ablations.bus_study ~jobs ~spec ()));
  print_endline (Ablations.render_migration_study (Ablations.migration_study ~spec ()));
  print_endline (Ablations.render_cpu_sweep (Ablations.cpu_sweep ~jobs ~spec ()));
  print_endline
    (Ablations.render_butterfly_study (Ablations.butterfly_study ~jobs ~spec ()));
  print_endline
    (Ablations.render_topology_sweep (Ablations.topology_sweep ~jobs ~spec ()));
  print_endline (Ablations.render_reconsider_study (Ablations.reconsider_study ~spec ()));
  policy_tournament ~spec ~jobs ~topology ~json_out ~apps ~policies

let bench_compare_cmd =
  let module BC = Numa_metrics.Bench_compare in
  let old_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"OLD"
          ~doc:
            "Baseline bench record: either a full BENCH_JSON_OUT file or the \
             compact baseline written by --write-baseline.")
  in
  let new_arg =
    Arg.(
      value
      & pos 1 (some file) None
      & info [] ~docv:"NEW" ~doc:"Current bench record to compare against $(b,OLD).")
  in
  let max_regress_arg =
    Arg.(
      value & opt float 25.0
      & info [ "max-regress" ] ~docv:"PCT"
          ~doc:
            "Regression threshold in percent: fail when events/sec drops, or any \
             application's gamma or NUMA-policy run time rises, by more than \
             $(docv). Wall-clock throughput is noisy; leave headroom.")
  in
  let write_baseline_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "write-baseline" ] ~docv:"FILE"
          ~doc:
            "Summarize $(b,OLD) (or $(b,NEW) when given) into a compact baseline \
             record at $(docv), suitable for committing to the repository.")
  in
  let action old_path new_path max_regress write_baseline =
    let load path =
      match BC.load path with
      | Ok s -> s
      | Error msg ->
          Printf.eprintf "bench-compare: %s\n" msg;
          exit 2
    in
    let baseline = load old_path in
    let status =
      match new_path with
      | None ->
          if write_baseline = None then
            print_string (Numa_obs.Json.to_string (BC.to_json baseline) ^ "\n");
          0
      | Some path -> (
          let current = load path in
          match BC.diff ~baseline ~current ~max_regress with
          | Error msg ->
              Printf.eprintf "bench-compare: %s\n" msg;
              2
          | Ok lines ->
              print_string (BC.render lines);
              if BC.regressed lines then begin
                Printf.eprintf
                  "bench-compare: performance regression beyond %.1f%%\n" max_regress;
                1
              end
              else 0)
    in
    (match write_baseline with
    | None -> ()
    | Some out ->
        let summary =
          match new_path with None -> baseline | Some p -> load p
        in
        Numa_obs.Json.save (BC.to_json summary) out;
        Printf.printf "baseline written to %s\n" out);
    status
  in
  Cmd.v
    (Cmd.info "bench-compare"
       ~doc:
         "Diff two bench records (BENCH_JSON_OUT files or compact baselines): \
          events/sec plus each application's gamma and NUMA run time. Exits 1 \
          when any metric regressed beyond --max-regress percent, 2 when the \
          records are unreadable or not comparable.")
    Term.(const action $ old_arg $ new_arg $ max_regress_arg $ write_baseline_arg)

let () =
  let action section scale cpus jobs topology json_out apps policies profiling =
    let spec = spec_of ~scale ~cpus ~profiling in
    try
      if section = "all" then all ~spec ~cpus ~jobs ~topology ~json_out ~apps ~policies
      else run_section section ~spec ~cpus ~jobs ~topology ~json_out ~apps ~policies;
      0
    with Failure msg ->
      (* bad --apps / --policies / --topology values surface here *)
      Printf.eprintf "experiments: %s\n" msg;
      1
  in
  (* One subcommand per section keeps the historical `experiments SECTION
     [options]` syntax working alongside bench-compare; a bare
     `experiments` still runs everything. *)
  let section_term section =
    Term.(
      const action $ const section $ scale_arg $ cpus_arg $ jobs_arg $ topology_arg
      $ json_out_arg $ apps_arg $ policies_arg $ profile_arg)
  in
  let section_cmd section =
    Cmd.v
      (Cmd.info section ~doc:(Printf.sprintf "Regenerate the %s section." section))
      (section_term section)
  in
  let cmd =
    Cmd.group
      ~default:(section_term "all")
      (Cmd.info "experiments" ~version:"1.0.0"
         ~doc:
           "Regenerate the paper's tables/figures and the ablation studies; \
            bench-compare diffs two benchmark records for the regression gate.")
      (bench_compare_cmd :: List.map section_cmd ("all" :: sections))
  in
  exit (Cmd.eval' cmd)
