(* Command-line driver: run one application on the simulated ACE, or run
   the paper's three-measurement protocol for it. *)

open Cmdliner
module System = Numa_system.System
module Report = Numa_system.Report
module Runner = Numa_metrics.Runner
module Model = Numa_metrics.Model

let policy_conv =
  let parse s =
    match System.policy_spec_of_string s with
    | Ok spec -> Ok spec
    | Error msg -> Error (`Msg msg)
  in
  let print ppf p = Format.pp_print_string ppf (System.policy_spec_name p) in
  Arg.conv (parse, print)

let scheduler_conv =
  Arg.enum
    [ ("affinity", Numa_sim.Engine.Affinity); ("single-queue", Numa_sim.Engine.Single_queue) ]

let app_arg =
  let doc = "Application to run (see the list command)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"APP" ~doc)

let policy_arg =
  Arg.(
    value
    & opt policy_conv (System.Move_limit { threshold = 4 })
    & info [ "policy"; "p" ] ~docv:"POLICY" ~doc:"NUMA placement policy.")

let cpus_arg =
  Arg.(value & opt int 7 & info [ "cpus" ] ~docv:"N" ~doc:"Number of processors.")

let threads_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "threads" ] ~docv:"N" ~doc:"Number of threads (default: one per CPU).")

let scale_arg =
  Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"S" ~doc:"Problem-size multiplier.")

let seed_arg =
  Arg.(value & opt int64 42L & info [ "seed" ] ~docv:"SEED" ~doc:"Workload seed.")

let scheduler_arg =
  Arg.(
    value
    & opt scheduler_conv Numa_sim.Engine.Affinity
    & info [ "scheduler" ] ~docv:"MODE" ~doc:"affinity or single-queue (section 4.7).")

let unix_master_arg =
  Arg.(
    value & flag
    & info [ "unix-master" ] ~doc:"Serialise system calls on CPU 0 (section 4.6).")

let topology_conv =
  let parse s =
    if List.mem s Numa_machine.Config.builtin_topologies then Ok s
    else
      Error
        (`Msg
          (Printf.sprintf "unknown topology %S; known: %s" s
             (String.concat ", " Numa_machine.Config.builtin_topologies)))
  in
  Arg.conv (parse, Format.pp_print_string)

let topology_arg =
  Arg.(
    value & opt topology_conv "ace"
    & info [ "topology" ] ~docv:"TOPO"
        ~doc:
          "Machine topology: ace (two-level, the default), butterfly-like (shared \
           level repriced at remote speed), butterfly (no shared board; global \
           pages striped over the CPU nodes) or multi-socket (two-tier 4-socket \
           distance matrix).")

let config_of_topology ~topology (c : Numa_machine.Config.t) =
  match
    Numa_machine.Config.of_topology_name ~n_cpus:c.Numa_machine.Config.n_cpus topology
  with
  | Some c' -> c'
  | None -> c

let pt_mode_conv =
  let parse s =
    match Numa_machine.Pt.mode_of_string s with
    | Ok m -> Ok m
    | Error msg -> Error (`Msg msg)
  in
  let print ppf m = Format.pp_print_string ppf (Numa_machine.Pt.mode_to_string m) in
  Arg.conv (parse, print)

let pt_mode_arg =
  Arg.(
    value
    & opt pt_mode_conv Numa_machine.Pt.Off
    & info [ "pt-mode" ] ~docv:"MODE"
        ~doc:
          "Page-table materialisation: none (translation is free, the default), \
           shared (one master table per address space, backed by real frames; \
           every software-TLB miss pays a charged multi-level walk), replicated \
           (a per-node copy of each table, eagerly on every online node, kept \
           coherent by PTE shootdowns) or replicated:N (replicas built on demand \
           by the first local walk, at most N per address space).")

let find_app name =
  match Numa_apps.Registry.find name with
  | Some app -> Ok app
  | None ->
      Error
        (Printf.sprintf "unknown application %S; known: %s" name
           (String.concat ", " (Numa_apps.Registry.names ())))

(* --- served-traffic knobs (only meaningful for the serve app) ----------- *)

let arrival_conv =
  let parse s =
    match Numa_util.Dist.arrival_of_string s with
    | Ok a -> Ok a
    | Error msg -> Error (`Msg msg)
  in
  let print ppf a = Format.pp_print_string ppf (Numa_util.Dist.arrival_to_string a) in
  Arg.conv (parse, print)

let arrival_arg =
  Arg.(
    value
    & opt (some arrival_conv) None
    & info [ "arrival" ] ~docv:"RATE[:BURST]"
        ~doc:
          "Open-loop arrival process for the serve app: mean $(docv) requests per \
           second of simulated time, optionally multiplied by BURST during the \
           periodic burst episodes (default 100000:4).")

let zipf_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "zipf" ] ~docv:"THETA"
        ~doc:
          "Zipf skew of the serve app's key popularity: 0 is uniform, ~1 is classic \
           web traffic (default 0.9).")

let clients_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "clients" ] ~docv:"N"
        ~doc:
          "Logical client population the serve app multiplexes onto the request \
           stream (default 1000000).")

let rw_mix_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "rw-mix" ] ~docv:"F"
        ~doc:
          "Fraction of serve requests that write their object, in [0,1] (default \
           0.1). 0 makes the store read-shared (replication-friendly); higher \
           values churn the placement protocol.")

(* --- resilience knobs (serve app only) ---------------------------------- *)

let retry_conv =
  let parse s =
    match Numa_apps.Resilience.retry_of_string s with
    | Ok r -> Ok r
    | Error msg -> Error (`Msg msg)
  in
  let print ppf r =
    Format.pp_print_string ppf (Numa_apps.Resilience.retry_to_string r)
  in
  Arg.conv (parse, print)

let hedge_conv =
  let parse s =
    match Numa_apps.Resilience.hedge_of_string s with
    | Ok h -> Ok h
    | Error msg -> Error (`Msg msg)
  in
  let print ppf h =
    Format.pp_print_string ppf (Numa_apps.Resilience.hedge_to_string h)
  in
  Arg.conv (parse, print)

let breaker_conv =
  let parse s =
    match Numa_apps.Resilience.breaker_of_string s with
    | Ok b -> Ok b
    | Error msg -> Error (`Msg msg)
  in
  let print ppf b =
    Format.pp_print_string ppf (Numa_apps.Resilience.breaker_to_string b)
  in
  Arg.conv (parse, print)

let deadline_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "deadline" ] ~docv:"US"
        ~doc:
          "Per-request deadline for the serve app, in microseconds of simulated \
           time. Alone it is observe-only (the report's resilience section \
           classifies outcomes against the SLO); combined with --retry, --hedge \
           or --breaker the deadline is armed as a cancellable virtual-time \
           timer per attempt (default 5000 when a mechanism needs one).")

let retry_arg =
  Arg.(
    value
    & opt (some retry_conv) None
    & info [ "retry" ] ~docv:"ATTEMPTS:BASE_MS:MAX_MS:JITTER"
        ~doc:
          "Retry budget for the serve app: up to ATTEMPTS tries per request, \
           with exponential backoff from BASE_MS capped at MAX_MS and \
           multiplied by (1 + JITTER*u) for a seeded uniform u (e.g. \
           3:0.2:2:0.5).")

let hedge_arg =
  Arg.(
    value
    & opt (some hedge_conv) None
    & info [ "hedge" ] ~docv:"FACTOR"
        ~doc:
          "Hedged requests for the serve app: when the first attempt outlives \
           FACTOR times the live p99 latency, launch a second attempt with the \
           remaining deadline budget and take whichever finishes.")

let breaker_arg =
  Arg.(
    value
    & opt (some breaker_conv) None
    & info [ "breaker" ] ~docv:"FAILURES:COOLDOWN_MS"
        ~doc:
          "Per-shard circuit breakers for the serve app: open after FAILURES \
           consecutive deadline misses (shedding requests at near-zero cost), \
           half-open after COOLDOWN_MS of simulated time, close on a successful \
           probe. Breakers also force open on node-offline faults and half-open \
           when the node returns, after failing the shard over to the nearest \
           online node.")

let resolve_app name ~arrival ~zipf ~clients ~rw_mix ~deadline ~retry ~hedge ~breaker =
  match find_app name with
  | Error _ as e -> e
  | Ok app ->
      let resilient =
        deadline <> None || retry <> None || hedge <> None || breaker <> None
      in
      if
        arrival = None && zipf = None && clients = None && rw_mix = None
        && not resilient
      then Ok app
      else if app.Numa_apps.App_sig.name <> "serve" then
        Error
          (Printf.sprintf
             "--arrival/--zipf/--clients/--rw-mix/--deadline/--retry/--hedge/--breaker \
              shape served traffic and only apply to the serve app, not %S"
             name)
      else if (match zipf with Some t -> t < 0. | None -> false) then
        Error "--zipf must be >= 0"
      else if (match clients with Some c -> c <= 0 | None -> false) then
        Error "--clients must be positive"
      else if (match rw_mix with Some f -> f < 0. || f > 1. | None -> false) then
        Error "--rw-mix must be in [0,1]"
      else if (match deadline with Some d -> d <= 0 | None -> false) then
        Error "--deadline must be a positive number of microseconds"
      else
        let resilience =
          if resilient then
            Some
              (Numa_apps.Resilience.make ?deadline_us:deadline ?retry ?hedge ?breaker
                 ())
          else None
        in
        Ok (Numa_apps.Serve.make ?arrival ?theta:zipf ?clients ?rw_mix ?resilience ())

let spec_of ?(topology = "ace") ?(faults = Numa_faults.Plan.empty) ?(paranoid = false)
    ?(profiling = false) ?(victim = Numa_vm.Pageout.Clock)
    ?(pt_mode = Numa_machine.Pt.Off) ~policy ~cpus ~threads ~scale ~seed ~scheduler
    ~unix_master () =
  {
    Runner.policy;
    n_cpus = cpus;
    nthreads = Option.value threads ~default:cpus;
    scale;
    seed;
    scheduler;
    unix_master;
    config_tweak = config_of_topology ~topology;
    faults;
    paranoid;
    profiling;
    victim;
    pt_mode;
  }

let faults_conv =
  let parse s =
    match Numa_faults.Plan.of_string s with
    | Ok p -> Ok p
    | Error msg -> Error (`Msg msg)
  in
  let print ppf p = Format.pp_print_string ppf (Numa_faults.Plan.to_string p) in
  Arg.conv (parse, print)

let faults_arg =
  Arg.(
    value
    & opt faults_conv Numa_faults.Plan.empty
    & info [ "faults" ] ~docv:"PLAN"
        ~doc:
          "Deterministic fault schedule, comma-separated: \
           node-offline:NODE\\@MS, node-online:NODE\\@MS, \
           node-flap:NODE:PERIOD_MS\\@MS..MS (sugar for alternating \
           offline/online), link-degrade:SRC:DST:FACTOR\\@MS..MS, \
           frame-squeeze:NODE:FRAC\\@MS, \
           stale-pte:LPAGE\\@MS (needs --pt-mode replicated), \
           spurious-shootdown:RATE (times in milliseconds of simulated time). \
           The same plan and workload seed reproduce the run byte for byte.")

let victim_conv =
  let parse s =
    match Numa_vm.Pageout.victim_of_string s with
    | Some v -> Ok v
    | None -> Error (`Msg (Printf.sprintf "unknown victim policy %S; known: clock, lru" s))
  in
  let print ppf v = Format.pp_print_string ppf (Numa_vm.Pageout.victim_name v) in
  Arg.conv (parse, print)

let victim_arg =
  Arg.(
    value
    & opt victim_conv Numa_vm.Pageout.Clock
    & info [ "victim" ] ~docv:"POLICY"
        ~doc:
          "Pageout victim selection: clock (second-chance hand over the object \
           list, the default) or lru (approximate least-recently-used over \
           fault-time use stamps). Only matters under memory pressure.")

let pages_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "pages" ] ~docv:"N"
        ~doc:
          "Cap the logical-page pool at $(docv) pages (default: the machine's \
           full global memory). A pool smaller than the working set makes the \
           pageout daemon carry the run — one pressure-sweep cell as a single \
           run, useful with --paranoid and --victim.")

let paranoid_arg =
  Arg.(
    value & flag
    & info [ "paranoid" ]
        ~doc:
          "Audit the coherence protocol's invariants from the periodic daemon \
           tick (single owner, replicas only when read-only, no mapping into a \
           freed or offline frame, cached cells coherent, pinned pages hold no \
           local copies). The run exits nonzero if any audit finds a violation.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace-event JSON timeline of the run (load it in \
           Perfetto or chrome://tracing; one lane per CPU plus a protocol lane, \
           timestamps in simulated nanoseconds).")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write epoch-bucketed time-series metrics as CSV: one row per 10 ms \
           epoch with alpha, bus traffic/delay, moves, pins, copies and live \
           replica count.")

let report_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "report-json" ] ~docv:"FILE"
        ~doc:"Write the full run report as JSON (every counter the text report prints).")

let explain_page_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "explain-page" ] ~docv:"LPAGE"
        ~doc:
          "Audit logical page $(docv): after the run, print its full placement \
           timeline (faults, moves, replicas, policy decisions with reasons) and \
           why it did or did not pin.")

let profile_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "profile-out" ] ~docv:"FILE"
        ~doc:
          "Attach the simulated-time profiler and write its snapshot as JSON \
           (category tree in virtual nanoseconds plus hot pages, locks, links \
           and threads). The text and JSON reports also gain a profile section.")

let run_cmd =
  let action app_name policy cpus threads scale seed scheduler unix_master topology
      faults paranoid victim pt_mode pages trace_out metrics_out report_json
      explain_page profile_out arrival zipf clients rw_mix deadline retry hedge
      breaker =
    match
      resolve_app app_name ~arrival ~zipf ~clients ~rw_mix ~deadline ~retry ~hedge
        ~breaker
    with
    | Error msg ->
        prerr_endline msg;
        1
    | Ok app ->
        let spec =
          spec_of ~topology ~faults ~paranoid ~victim ~pt_mode ~policy ~cpus ~threads
            ~scale ~seed ~scheduler ~unix_master ()
        in
        let spec =
          match pages with
          | None -> spec
          | Some n ->
              let base = spec.Runner.config_tweak in
              {
                spec with
                Runner.config_tweak =
                  (fun c -> { (base c) with Numa_machine.Config.global_pages = n });
              }
        in
        let config = Runner.config_for spec ~n_cpus:spec.Runner.n_cpus in
        let obs = Numa_obs.Hub.create () in
        let chrome =
          match trace_out with
          | None -> None
          | Some path ->
              let tr = Numa_obs.Chrome_trace.create ~n_cpus:spec.Runner.n_cpus in
              Numa_obs.Chrome_trace.attach tr obs;
              Some (tr, path)
        in
        let series =
          match metrics_out with
          | None -> None
          | Some path ->
              let ts = Numa_obs.Timeseries.create () in
              Numa_obs.Timeseries.attach ts obs;
              Some (ts, path)
        in
        let audit =
          match explain_page with
          | None -> None
          | Some lpage ->
              let a = Numa_obs.Page_audit.create ~lpage in
              Numa_obs.Page_audit.attach a obs;
              Some a
        in
        match
          System.create ~obs ~policy:spec.Runner.policy ~scheduler:spec.Runner.scheduler
            ~chunk_refs:2048 ~unix_master:spec.Runner.unix_master
            ~faults:spec.Runner.faults ~paranoid:spec.Runner.paranoid
            ~profiling:(profile_out <> None) ~victim:spec.Runner.victim
            ~pt_mode:spec.Runner.pt_mode ~config ()
        with
        | exception Invalid_argument msg ->
            (* A fault plan can be well-formed yet name a node the chosen
               machine does not have; that is a usage error, not a crash. *)
            Printf.eprintf "numa_sim: %s\n" msg;
            1
        | sys ->
        app.Numa_apps.App_sig.setup sys
          {
            Numa_apps.App_sig.nthreads = spec.Runner.nthreads;
            scale = spec.Runner.scale;
            seed = spec.Runner.seed;
          };
        let report = System.run sys in
        Format.printf "%a@." Report.pp report;
        let save_errors = ref 0 in
        let saving what path f =
          try f () with Sys_error msg ->
            incr save_errors;
            Printf.eprintf "numa_sim: cannot write %s %s: %s\n" what path msg
        in
        (match chrome with
        | None -> ()
        | Some (tr, path) ->
            saving "trace" path (fun () ->
                Numa_obs.Chrome_trace.save tr path;
                Printf.printf "trace: wrote %d events to %s\n"
                  (Numa_obs.Chrome_trace.length tr)
                  path));
        (match series with
        | None -> ()
        | Some (ts, path) ->
            saving "metrics" path (fun () ->
                Numa_obs.Timeseries.save_csv ts path;
                Printf.printf "metrics: wrote %d epochs to %s\n"
                  (List.length (Numa_obs.Timeseries.rows ts))
                  path));
        (match report_json with
        | None -> ()
        | Some path ->
            saving "report" path (fun () ->
                Numa_obs.Json.save (Report.to_json report) path;
                Printf.printf "report: wrote JSON to %s\n" path));
        (match (profile_out, report.Report.profile) with
        | None, _ | _, None -> ()
        | Some path, Some snap ->
            saving "profile" path (fun () ->
                Numa_obs.Json.save (Numa_obs.Profile.snapshot_to_json snap) path;
                Printf.printf "profile: wrote JSON to %s\n" path));
        (match audit with
        | None -> ()
        | Some a -> print_string (Numa_obs.Page_audit.explain a));
        let violations =
          match report.Report.robustness with
          | Some r -> r.Report.invariant_violations
          | None -> 0
        in
        if violations > 0 then begin
          Printf.eprintf "numa_sim: %d protocol invariant violations\n" violations;
          1
        end
        else if !save_errors > 0 then 1
        else 0
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run one application once and print the full report. Optional fault \
          injection and invariant auditing; optional exports: Chrome trace \
          timeline, per-epoch metrics CSV, JSON report, per-page audit.")
    Term.(
      const action $ app_arg $ policy_arg $ cpus_arg $ threads_arg $ scale_arg $ seed_arg
      $ scheduler_arg $ unix_master_arg $ topology_arg $ faults_arg $ paranoid_arg
      $ victim_arg $ pt_mode_arg $ pages_arg $ trace_out_arg $ metrics_out_arg
      $ report_json_arg $ explain_page_arg $ profile_out_arg $ arrival_arg $ zipf_arg
      $ clients_arg $ rw_mix_arg $ deadline_arg $ retry_arg $ hedge_arg $ breaker_arg)

let profile_cmd =
  let top_arg =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"K" ~doc:"How many hot pages/locks/links/threads to show.")
  in
  let folded_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "folded-out" ] ~docv:"FILE"
          ~doc:
            "Also write the profile in folded-stack format (one \
             'cat;subcat ns' line per leaf; feed to a flame-graph tool).")
  in
  let json_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json-out" ] ~docv:"FILE" ~doc:"Also write the profile snapshot as JSON.")
  in
  let action app_name policy cpus threads scale seed scheduler unix_master topology
      faults pt_mode top folded_out json_out arrival zipf clients rw_mix deadline
      retry hedge breaker =
    match
      resolve_app app_name ~arrival ~zipf ~clients ~rw_mix ~deadline ~retry ~hedge
        ~breaker
    with
    | Error msg ->
        prerr_endline msg;
        1
    | Ok app -> (
        let spec =
          spec_of ~topology ~faults ~profiling:true ~pt_mode ~policy ~cpus ~threads
            ~scale ~seed ~scheduler ~unix_master ()
        in
        let config = Runner.config_for spec ~n_cpus:spec.Runner.n_cpus in
        match
          System.create ~policy:spec.Runner.policy ~scheduler:spec.Runner.scheduler
            ~chunk_refs:2048 ~unix_master:spec.Runner.unix_master
            ~faults:spec.Runner.faults ~profiling:true ~pt_mode:spec.Runner.pt_mode
            ~config ()
        with
        | exception Invalid_argument msg ->
            Printf.eprintf "numa_sim: %s\n" msg;
            1
        | sys -> (
            app.Numa_apps.App_sig.setup sys
              {
                Numa_apps.App_sig.nthreads = spec.Runner.nthreads;
                scale = spec.Runner.scale;
                seed = spec.Runner.seed;
              };
            let report = System.run sys in
            match (System.profile sys, report.Report.profile) with
            | None, _ | _, None ->
                prerr_endline "numa_sim: profiler was not attached (internal error)";
                1
            | Some p, Some _ ->
                let snap = Numa_obs.Profile.snapshot ~top p in
                print_string (Numa_obs.Profile.render snap);
                let save_errors = ref 0 in
                let saving what path f =
                  try f ()
                  with Sys_error msg ->
                    incr save_errors;
                    Printf.eprintf "numa_sim: cannot write %s %s: %s\n" what path msg
                in
                (match folded_out with
                | None -> ()
                | Some path ->
                    saving "folded profile" path (fun () ->
                        Out_channel.with_open_text path (fun oc ->
                            Out_channel.output_string oc (Numa_obs.Profile.folded snap));
                        Printf.printf "profile: wrote folded stacks to %s\n" path));
                (match json_out with
                | None -> ()
                | Some path ->
                    saving "profile JSON" path (fun () ->
                        Numa_obs.Json.save (Numa_obs.Profile.snapshot_to_json snap) path;
                        Printf.printf "profile: wrote JSON to %s\n" path));
                if !save_errors > 0 then 1 else 0))
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run one application with the simulated-time profiler attached and print \
          a perf-report-style breakdown of every virtual nanosecond: references by \
          destination and class, bus queueing per link, kernel work by cause, lock \
          spin/hold, idle — plus the hottest pages, locks, links and threads. The \
          category totals are guaranteed to sum to the CPUs' elapsed time.")
    Term.(
      const action $ app_arg $ policy_arg $ cpus_arg $ threads_arg $ scale_arg $ seed_arg
      $ scheduler_arg $ unix_master_arg $ topology_arg $ faults_arg $ pt_mode_arg
      $ top_arg $ folded_out_arg $ json_out_arg $ arrival_arg $ zipf_arg $ clients_arg
      $ rw_mix_arg $ deadline_arg $ retry_arg $ hedge_arg $ breaker_arg)

let measure_cmd =
  let action app_name policy cpus threads scale seed scheduler unix_master topology
      pt_mode arrival zipf clients rw_mix deadline retry hedge breaker =
    match
      resolve_app app_name ~arrival ~zipf ~clients ~rw_mix ~deadline ~retry ~hedge
        ~breaker
    with
    | Error msg ->
        prerr_endline msg;
        1
    | Ok app ->
        let spec =
          spec_of ~topology ~pt_mode ~policy ~cpus ~threads ~scale ~seed ~scheduler
            ~unix_master ()
        in
        let m = Runner.measure app spec in
        let t = m.Runner.times in
        Format.printf
          "@[<v>%s (G/L = %.2f)@,\
           Tglobal = %.3f s@,Tnuma   = %.3f s@,Tlocal  = %.3f s@,\
           alpha = %.3f   beta = %.3f   gamma = %.3f@,\
           alpha (counted, numa run) = %.3f@]@."
          m.Runner.app_name m.Runner.gl t.Model.t_global t.Model.t_numa t.Model.t_local
          m.Runner.alpha m.Runner.beta m.Runner.gamma
          m.Runner.r_numa.Report.alpha_counted;
        0
  in
  Cmd.v
    (Cmd.info "measure"
       ~doc:"Run the three-measurement protocol (Tnuma/Tglobal/Tlocal) and the model.")
    Term.(
      const action $ app_arg $ policy_arg $ cpus_arg $ threads_arg $ scale_arg $ seed_arg
      $ scheduler_arg $ unix_master_arg $ topology_arg $ pt_mode_arg $ arrival_arg
      $ zipf_arg $ clients_arg $ rw_mix_arg $ deadline_arg $ retry_arg $ hedge_arg
      $ breaker_arg)

let trace_cmd =
  let path_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "output"; "o" ] ~docv:"FILE" ~doc:"Where to write the trace (TSV).")
  in
  let action app_name policy cpus threads scale seed scheduler unix_master path =
    match find_app app_name with
    | Error msg ->
        prerr_endline msg;
        1
    | Ok app ->
        let spec =
          spec_of ~policy ~cpus ~threads ~scale ~seed ~scheduler ~unix_master ()
        in
        let config = Numa_machine.Config.ace ~n_cpus:spec.Runner.n_cpus () in
        let sys =
          System.create ~policy:spec.Runner.policy ~scheduler:spec.Runner.scheduler
            ~unix_master:spec.Runner.unix_master ~config ()
        in
        let buffer = Numa_trace.Trace_buffer.create () in
        Numa_trace.Trace_buffer.attach buffer sys;
        app.Numa_apps.App_sig.setup sys
          {
            Numa_apps.App_sig.nthreads = spec.Runner.nthreads;
            scale = spec.Runner.scale;
            seed = spec.Runner.seed;
          };
        ignore (System.run sys);
        Numa_trace.Trace_buffer.save buffer path;
        Printf.printf "wrote %d events (%d references) to %s\n"
          (Numa_trace.Trace_buffer.length buffer)
          (Numa_trace.Trace_buffer.total_references buffer)
          path;
        0
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Run one application and save its reference trace.")
    Term.(
      const action $ app_arg $ policy_arg $ cpus_arg $ threads_arg $ scale_arg $ seed_arg
      $ scheduler_arg $ unix_master_arg $ path_arg)

let replay_cmd =
  let path_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"TRACE" ~doc:"Trace file written by the trace command.")
  in
  let policies_arg =
    Arg.(
      value
      & opt_all policy_conv []
      & info [ "policy"; "p" ] ~docv:"POLICY"
          ~doc:"Policy to evaluate (repeatable; default: a standard slate).")
  in
  let action path policies cpus =
    let buffer = Numa_trace.Trace_buffer.load path in
    let config = Numa_machine.Config.ace ~n_cpus:cpus () in
    let policies =
      if policies <> [] then policies
      else
        [
          System.Move_limit { threshold = 0 };
          System.Move_limit { threshold = 4 };
          System.Never_pin;
          System.All_global;
        ]
    in
    print_endline
      (Numa_trace.Replay.render
         (Numa_trace.Replay.compare_policies ~config ~policies buffer));
    0
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Evaluate placement policies on a saved trace (no application re-run).")
    Term.(const action $ path_arg $ policies_arg $ cpus_arg)

let list_cmd =
  let action () =
    List.iter
      (fun (a : Numa_apps.App_sig.t) ->
        Printf.printf "%-16s %s\n" a.Numa_apps.App_sig.name a.Numa_apps.App_sig.description)
      Numa_apps.Registry.all;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List the available applications.") Term.(const action $ const ())

let topology_cmd =
  let name_arg =
    Arg.(
      value & pos 0 string "ace"
      & info [] ~docv:"TOPO"
          ~doc:
            (Printf.sprintf "Topology to draw: %s, or all."
               (String.concat ", " Numa_machine.Config.builtin_topologies)))
  in
  let action cpus name =
    let render n =
      match Numa_machine.Config.of_topology_name ~n_cpus:cpus n with
      | Some config ->
          print_string (Numa_machine.Topology.render config);
          true
      | None -> false
    in
    if name = "all" then begin
      List.iter
        (fun n -> ignore (render n))
        Numa_machine.Config.builtin_topologies;
      0
    end
    else if render name then 0
    else begin
      Printf.eprintf "unknown topology %S; known: all, %s\n" name
        (String.concat ", " Numa_machine.Config.builtin_topologies);
      1
    end
  in
  Cmd.v
    (Cmd.info "topology"
       ~doc:
         "Print the machine architecture (Figure 1 for the ACE; a distance-matrix \
          drawing for the other built-in topologies).")
    Term.(const action $ cpus_arg $ name_arg)

let tables_cmd =
  let action () =
    print_endline (Numa_core.Protocol.render_table Numa_machine.Access.Load);
    print_endline (Numa_core.Protocol.render_table Numa_machine.Access.Store);
    print_endline (Numa_core.Pmap_manager.figure2 ());
    0
  in
  Cmd.v
    (Cmd.info "tables" ~doc:"Print the protocol action tables (Tables 1-2) and Figure 2.")
    Term.(const action $ const ())

let () =
  let info =
    Cmd.info "numa_sim" ~version:"1.0.0"
      ~doc:"Simulated ACE multiprocessor with Mach NUMA page placement (SOSP '89)."
  in
  exit (Cmd.eval' (Cmd.group info
       [
         run_cmd;
         profile_cmd;
         measure_cmd;
         trace_cmd;
         replay_cmd;
         list_cmd;
         topology_cmd;
         tables_cmd;
       ]))
