(* The benchmark harness.

   Two halves:

   1. Reproduction: prints every table and figure of the paper — the
      protocol action tables (Tables 1-2), the machine and pmap-layer
      diagrams (Figures 1-2), and the measured Tables 3-4 with the
      paper-vs-simulation comparison. Scale with BENCH_SCALE (default 1.0)
      and BENCH_CPUS (default 7); BENCH_JOBS (default 1) spreads the
      Table 3 measurements over that many domains without changing any
      result.

   2. Micro-benchmarks: one Bechamel Test.make per reproduced artefact,
      timing the computational kernel behind it (protocol transitions for
      Tables 1-2, topology/diagram rendering for Figures 1-2, a bounded
      simulation run for Table 3, the system-time accounting path for
      Table 4, and the trace DP behind the optimal study). Skip with
      BENCH_SKIP_MICRO=1.

   Set BENCH_JSON_OUT=FILE to also write the Table 3 measurements (model
   parameters plus all three per-run reports for every application) as a
   machine-readable JSON record. *)

open Bechamel
open Toolkit
module System = Numa_system.System
module Runner = Numa_metrics.Runner
module Table3 = Numa_metrics.Table3
module Table4 = Numa_metrics.Table4

let env_float name default =
  match Sys.getenv_opt name with
  | Some v -> ( match float_of_string_opt v with Some f -> f | None -> default)
  | None -> default

let env_int name default =
  match Sys.getenv_opt name with
  | Some v -> ( match int_of_string_opt v with Some i -> i | None -> default)
  | None -> default

let scale = env_float "BENCH_SCALE" 1.0
let cpus = env_int "BENCH_CPUS" 7
let jobs = env_int "BENCH_JOBS" 1

(* Profiled runs: the profiler's data is pure virtual time, so attaching
   it changes no result — but it puts a profile section in every report
   of the JSON record, giving each bench artifact a full cost breakdown. *)
let spec =
  { Runner.default_spec with Runner.scale; n_cpus = cpus; nthreads = cpus; profiling = true }

(* --- part 1: reproduce the paper's artefacts -------------------------- *)

let reproduce () =
  Printf.printf "=== Reproduction (scale %.2f, %d CPUs) ===\n\n" scale cpus;
  print_endline (Numa_core.Protocol.render_table Numa_machine.Access.Load);
  print_endline (Numa_core.Protocol.render_table Numa_machine.Access.Store);
  print_endline (Numa_machine.Topology.render (Numa_machine.Config.ace ~n_cpus:cpus ()));
  print_endline (Numa_core.Pmap_manager.figure2 ());
  let wall_start = Unix.gettimeofday () in
  let rows = Table3.run ~jobs ~spec () in
  let wall_s = Unix.gettimeofday () -. wall_start in
  let total_events =
    List.fold_left
      (fun acc (r : Table3.row) ->
        let n (rep : Numa_system.Report.t) = rep.Numa_system.Report.n_events in
        acc + n r.Table3.m.Runner.r_numa + n r.Table3.m.Runner.r_global
        + n r.Table3.m.Runner.r_local)
      0 rows
  in
  let events_per_sec = if wall_s > 0. then float_of_int total_events /. wall_s else 0. in
  print_endline (Table3.render rows);
  print_endline (Table3.render_comparison rows);
  let t4 = Table4.of_measurements rows in
  print_endline (Table4.render t4);
  print_endline (Table4.render_comparison t4);
  Printf.printf "throughput: %d events in %.2f s wall = %.0f events/sec\n\n" total_events
    wall_s events_per_sec;
  match Sys.getenv_opt "BENCH_JSON_OUT" with
  | None -> ()
  | Some path ->
      let record =
        Numa_obs.Json.Obj
          [
            ("scale", Numa_obs.Json.Float scale);
            ("cpus", Numa_obs.Json.Int cpus);
            ("wall_s", Numa_obs.Json.Float wall_s);
            ("total_events", Numa_obs.Json.Int total_events);
            ("events_per_sec", Numa_obs.Json.Float events_per_sec);
            ( "measurements",
              Numa_obs.Json.List
                (List.map (fun (r : Table3.row) -> Runner.measurement_to_json r.Table3.m) rows)
            );
          ]
      in
      Numa_obs.Json.save record path;
      Printf.printf "wrote JSON measurements to %s\n\n" path

(* --- part 2: micro-benchmarks ------------------------------------------ *)

(* Table 1 kernel: the read-request transition function over all states. *)
let bench_table1 =
  Test.make ~name:"table1/protocol-read-transitions"
    (Staged.stage (fun () ->
         List.iter
           (fun state ->
             List.iter
               (fun decision ->
                 ignore
                   (Numa_core.Protocol.transition ~access:Numa_machine.Access.Load ~state
                      ~decision))
               Numa_core.Protocol.all_decisions)
           Numa_core.Protocol.all_state_views))

(* Table 2 kernel: ditto for writes. *)
let bench_table2 =
  Test.make ~name:"table2/protocol-write-transitions"
    (Staged.stage (fun () ->
         List.iter
           (fun state ->
             List.iter
               (fun decision ->
                 ignore
                   (Numa_core.Protocol.transition ~access:Numa_machine.Access.Store ~state
                      ~decision))
               Numa_core.Protocol.all_decisions)
           Numa_core.Protocol.all_state_views))

(* Figure 1 kernel: topology rendering from a live config. *)
let bench_figure1 =
  let config = Numa_machine.Config.ace () in
  Test.make ~name:"figure1/topology-render"
    (Staged.stage (fun () -> ignore (Numa_machine.Topology.render config)))

(* Figure 2 kernel: a full pmap-layer construction (manager + MMU + policy
   wiring), which is what the figure depicts. *)
let bench_figure2 =
  let config = Numa_machine.Config.ace ~local_pages_per_cpu:32 ~global_pages:64 () in
  Test.make ~name:"figure2/pmap-layer-build"
    (Staged.stage (fun () ->
         let policy = Numa_core.Policy.move_limit ~n_pages:64 () in
         ignore (Numa_core.Pmap_manager.create ~config ~policy ())))

(* Table 3 kernel: a bounded end-to-end simulation (ping-pong workload
   driving the full fault/protocol/accounting path). *)
let run_small_simulation policy =
  let config =
    Numa_machine.Config.ace ~n_cpus:4 ~local_pages_per_cpu:64 ~global_pages:128 ()
  in
  let sys = System.create ~policy ~config () in
  let data =
    System.alloc_region sys ~name:"bench" ~kind:Numa_vm.Region_attr.Data
      ~sharing:Numa_vm.Region_attr.Declared_write_shared ~pages:4 ()
  in
  let barrier = System.make_barrier sys ~name:"b" ~parties:4 in
  for cpu = 0 to 3 do
    ignore
      (System.spawn sys ~cpu ~name:(Printf.sprintf "t%d" cpu) (fun ~stack_vpage:_ ->
           for round = 1 to 10 do
             Numa_sim.Api.write ~count:32 (data.System.base_vpage + (round mod 4));
             Numa_sim.Api.barrier barrier
           done))
  done;
  System.run sys

let bench_table3 =
  Test.make ~name:"table3/simulation-run-numa"
    (Staged.stage (fun () ->
         ignore (run_small_simulation (System.Move_limit { threshold = 4 }))))

(* Table 4 kernel: the same run under all-global (the baseline whose system
   time the table differences against). *)
let bench_table4 =
  Test.make ~name:"table4/simulation-run-all-global"
    (Staged.stage (fun () -> ignore (run_small_simulation System.All_global)))

(* Optimal-study kernel: the per-page DP over a synthetic trace. *)
let bench_optimal =
  let config = Numa_machine.Config.ace ~n_cpus:4 () in
  let events =
    List.init 64 (fun i ->
        {
          System.at = float_of_int i;
          cpu = i mod 4;
          tid = i mod 4;
          vpage = 0;
          kind =
            (if i mod 3 = 0 then Numa_machine.Access.Store else Numa_machine.Access.Load);
          count = 16;
          where = Numa_machine.Location.In_global;
          region = "bench";
        })
  in
  Test.make ~name:"optimal/per-page-dp"
    (Staged.stage (fun () -> ignore (Numa_trace.Optimal.page_optimal_ns ~config events)))

let micro_tests =
  [
    bench_table1; bench_table2; bench_figure1; bench_figure2; bench_table3;
    bench_table4; bench_optimal;
  ]

let run_micro () =
  print_endline "=== Micro-benchmarks (Bechamel, monotonic clock) ===";
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ~stabilize:true
      ()
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analysed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ estimate ] -> Printf.printf "%-40s %12.1f ns/run\n" name estimate
          | Some _ | None -> Printf.printf "%-40s (no estimate)\n" name)
        analysed)
    micro_tests;
  print_newline ()

let () =
  reproduce ();
  if Sys.getenv_opt "BENCH_SKIP_MICRO" <> Some "1" then run_micro ()
