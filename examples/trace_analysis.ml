(* Trace-driven analysis (the paper's section 5 future work): record a
   run's reference trace, classify each page's observed sharing, flag
   false-sharing suspects, and compute the offline-optimal placement bound.

   Run with: dune exec examples/trace_analysis.exe *)

module System = Numa_system.System
module Trace_buffer = Numa_trace.Trace_buffer
module Classify = Numa_trace.Classify

let () =
  let config = Numa_machine.Config.ace ~n_cpus:4 () in
  let sys = System.create ~config () in
  let buffer = Trace_buffer.create () in
  Trace_buffer.attach buffer sys;

  (* Trace the unsegregated primes2 — the paper's false-sharing example. *)
  let app = Option.get (Numa_apps.Registry.find "primes2-unseg") in
  app.Numa_apps.App_sig.setup sys
    { Numa_apps.App_sig.nthreads = 4; scale = 0.1; seed = 42L };
  ignore (System.run sys);

  Printf.printf "trace: %d batched events, %d references\n\n" (Trace_buffer.length buffer)
    (Trace_buffer.total_references buffer);

  (* Per-page sharing classes, summarised per region. *)
  let summaries = Classify.classify buffer in
  print_endline "observed sharing by region:";
  List.iter
    (fun (region, pages) ->
      let count cls =
        List.length (List.filter (fun (s : Classify.summary) -> s.Classify.cls = cls) pages)
      in
      Printf.printf "  %-24s %3d pages: %d private, %d read-shared, %d write-shared\n"
        region (List.length pages)
        (count Classify.Class_private)
        (count Classify.Class_read_shared)
        (count Classify.Class_write_shared))
    (Classify.by_region summaries);

  (* False-sharing findings: declared intent vs observed behaviour. *)
  let findings =
    Numa_trace.False_sharing.analyse
      ~declared_of:(Numa_trace.False_sharing.declared_of_system sys)
      summaries
  in
  let problems = Numa_trace.False_sharing.problems findings in
  Printf.printf "\nfalse-sharing findings (%d):\n" (List.length problems);
  if problems <> [] then print_string (Numa_trace.False_sharing.render problems);

  (* Offline optimal placement: how much headroom was left? *)
  print_newline ();
  print_string (Numa_trace.Optimal.render (Numa_trace.Optimal.analyse ~config buffer));

  (* Round-trip the trace through the on-disk format. *)
  let path = Filename.temp_file "numa_trace" ".tsv" in
  Trace_buffer.save buffer path;
  let reloaded = Trace_buffer.load path in
  Printf.printf "\ntrace saved to %s and reloaded: %d events (match: %b)\n" path
    (Trace_buffer.length reloaded)
    (Trace_buffer.length reloaded = Trace_buffer.length buffer);
  Sys.remove path
