(* The paper's false-sharing story (section 4.2), reproduced end to end.

   Primes2 originally read its divisors straight out of the writably
   shared output vector; because the divisors live on write-shared pages,
   every division pays global-memory latency. The tuned program copies the
   divisors into a per-thread private vector, and alpha jumps from 0.66 to
   1.00. We run both variants and diff their model parameters.

   Run with: dune exec examples/false_sharing.exe *)

module Runner = Numa_metrics.Runner
module Model = Numa_metrics.Model

let () =
  let spec = { Runner.default_spec with Runner.scale = 0.5 } in
  let measure name =
    Runner.measure (Option.get (Numa_apps.Registry.find name)) spec
  in
  let unseg = measure "primes2-unseg" in
  let seg = measure "primes2" in
  let show tag (m : Runner.measurement) =
    Printf.printf
      "%-14s Tnuma %6.2f s   alpha %.2f (counted %.2f)   beta %.2f   gamma %.3f\n" tag
      m.Runner.times.Model.t_numa m.Runner.alpha
      m.Runner.r_numa.Numa_system.Report.alpha_counted m.Runner.beta m.Runner.gamma
  in
  print_endline "primes2, divisors fetched from the shared output vector vs private copies:";
  show "unsegregated" unseg;
  show "segregated" seg;
  Printf.printf
    "\nspeedup from eliminating the false sharing: %.1f%% of user time\n"
    (100.
    *. (unseg.Runner.times.Model.t_numa -. seg.Runner.times.Model.t_numa)
    /. unseg.Runner.times.Model.t_numa);
  print_endline "(the paper reports alpha 0.66 -> 1.00 for the same change)"
