(* Quickstart: build a simulated ACE, run a tiny parallel program on it,
   and read the placement report.

   Run with: dune exec examples/quickstart.exe *)

module System = Numa_system.System
module Report = Numa_system.Report
module Api = Numa_sim.Api
module Region_attr = Numa_vm.Region_attr

let () =
  (* A 4-processor ACE with the paper's memory timings. *)
  let config = Numa_machine.Config.ace ~n_cpus:4 () in
  let sys = System.create ~policy:(System.Move_limit { threshold = 4 }) ~config () in

  (* One read-mostly table, one writably-shared accumulator. *)
  let table =
    System.alloc_region sys ~name:"lookup-table" ~kind:Region_attr.Data
      ~sharing:Region_attr.Declared_read_shared ~pages:2 ()
  in
  let accumulator =
    System.alloc_region sys ~name:"accumulator" ~kind:Region_attr.Data
      ~sharing:Region_attr.Declared_write_shared ~pages:1 ()
  in
  let lock = System.make_lock sys ~name:"accumulator-lock" in
  let barrier = System.make_barrier sys ~name:"start" ~parties:4 in

  for cpu = 0 to 3 do
    ignore
      (System.spawn sys ~cpu ~name:(Printf.sprintf "worker-%d" cpu)
         (fun ~stack_vpage ->
           (* Worker 0 initialises the table; then everyone reads it
              (it will be replicated read-only into each local memory)
              and updates the shared accumulator (which will migrate,
              then get pinned in global memory). *)
           if cpu = 0 then Api.write ~count:256 table.System.base_vpage;
           Api.barrier barrier;
           for _round = 1 to 50 do
             Api.read ~count:200 table.System.base_vpage;
             Api.read ~count:20 stack_vpage;
             Api.compute 200_000.;
             Api.with_lock lock (fun () ->
                 let v = Api.read_value accumulator.System.base_vpage in
                 Api.write ~value:(v + 1) accumulator.System.base_vpage)
           done))
  done;

  let report = System.run sys in
  Format.printf "%a@." Report.pp report;

  (* Where did the pages end up? *)
  let show name vpage =
    match System.lpage_of sys ~vpage () with
    | None -> Format.printf "%-14s never touched@." name
    | Some lpage ->
        Format.printf "%-14s %a@." name Numa_core.Numa_manager.pp_state
          (Numa_core.Numa_manager.state_of (System.numa_manager sys) ~lpage)
  in
  show "lookup-table" table.System.base_vpage;
  show "accumulator" accumulator.System.base_vpage
