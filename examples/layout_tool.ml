(* The language-processor layout tool (sections 4.2 and 5): the same
   program run with a 1989-loader layout (objects packed in declaration
   order) and with the automatic sharing-class segregation.

   With the naive layout, each thread's private counter shares a page with
   the writably-shared log, so the counter pages thrash and pin in global
   memory; the segregated layout gives every thread's private data its own
   pages, which migrate once and stay local.

   Run with: dune exec examples/layout_tool.exe *)

module System = Numa_system.System
module Report = Numa_system.Report
module Api = Numa_sim.Api
module Layout = Numa_lang.Layout
module Region_attr = Numa_vm.Region_attr

let n_threads = 4
let rounds = 400

(* The program's objects: per-thread counters (private), a lookup table
   (read-shared), and a small shared log (writably shared) — declared
   interleaved, the way source code tends to declare them. *)
let objects =
  List.concat
    (List.init n_threads (fun i ->
         [
           Layout.obj ~owner:i ~name:(Printf.sprintf "counter.%d" i) ~words:24
             ~sharing:Region_attr.Declared_private ();
           Layout.obj
             ~name:(Printf.sprintf "log.%d" i)
             ~words:40 ~sharing:Region_attr.Declared_write_shared ();
         ]))
  @ [ Layout.obj ~name:"table" ~words:600 ~sharing:Region_attr.Declared_read_shared () ]

let run_with_plan name plan =
  let config = Numa_machine.Config.ace ~n_cpus:n_threads () in
  let sys = System.create ~config () in
  let located = Layout.materialise sys plan in
  let find n = Hashtbl.find located n in
  let barrier = System.make_barrier sys ~name:"start" ~parties:n_threads in
  for i = 0 to n_threads - 1 do
    ignore
      (System.spawn sys ~cpu:i ~name:(Printf.sprintf "t%d" i) (fun ~stack_vpage:_ ->
           let counter = find (Printf.sprintf "counter.%d" i) in
           let log = find (Printf.sprintf "log.%d" i) in
           let table = find "table" in
           if i = 0 then
             (* Fill the lookup table once. *)
             for w = 0 to table.Layout.l_words - 1 do
               if w mod 128 = 0 then Api.write ~count:128 (Layout.vpage_of_word table w)
             done;
           Api.barrier barrier;
           for _round = 1 to rounds do
             (* Hot private work. *)
             Api.write ~count:40 (Layout.vpage_of_word counter 0);
             Api.read ~count:40 (Layout.vpage_of_word counter 0);
             (* Some table lookups. *)
             Api.read ~count:20 (Layout.vpage_of_word table (97 * _round mod 600));
             (* An occasional log append, read by neighbours. *)
             if _round mod 20 = 0 then begin
               Api.write ~count:4 (Layout.vpage_of_word log 0);
               let neighbour = find (Printf.sprintf "log.%d" ((i + 1) mod n_threads)) in
               Api.read ~count:4 (Layout.vpage_of_word neighbour 0)
             end;
             Api.compute 100_000.
           done))
  done;
  let report = System.run sys in
  Printf.printf "%-11s alpha(counted) %.3f   user %.3f s   moves %4d   pins %3d\n" name
    report.Report.alpha_counted (Report.total_user_s report) report.Report.numa_moves
    report.Report.pins;
  report

let () =
  let page_words = (Numa_machine.Config.ace ()).Numa_machine.Config.page_size_words in
  print_endline "object layout produced by the segregating tool:";
  print_string (Layout.describe (Layout.segregated ~page_words objects));
  print_newline ();
  let naive = run_with_plan "naive" (Layout.naive objects) in
  let seg = run_with_plan "segregated" (Layout.segregated ~page_words objects) in
  Printf.printf
    "\nsegregation removed %.1f%% of user time by keeping private pages local\n"
    (100.
    *. (Report.total_user_s naive -. Report.total_user_s seg)
    /. Report.total_user_s naive)
