(* Placement pragmas (section 4.3): data known to be writably shared can be
   marked noncacheable up front, skipping the migrate-until-pinned phase
   and its page-copy overhead.

   Run with: dune exec examples/pragma_tuning.exe *)

module Report = Numa_system.Report
module Runner = Numa_metrics.Runner

let () =
  let spec = { Runner.default_spec with Runner.scale = 0.5 } in
  let run name =
    (name, Runner.run (Option.get (Numa_apps.Registry.find name)) spec)
  in
  let plain = run "primes3" and pragma = run "primes3-pragma" in
  Printf.printf "%-18s %10s %10s %8s %8s\n" "variant" "user (s)" "system (s)" "moves"
    "copies";
  List.iter
    (fun (name, r) ->
      Printf.printf "%-18s %10.2f %10.2f %8d %8d\n" name (Report.total_user_s r)
        (Report.total_system_s r) r.Report.numa_moves r.Report.numa_copies_to_local)
    [ plain; pragma ];
  let _, rp = plain and _, rq = pragma in
  Printf.printf
    "\nthe pragma removes %d page moves and cuts NUMA-management system time by %.0f%%\n"
    (rp.Report.numa_moves - rq.Report.numa_moves)
    (100.
    *. (Report.total_system_s rp -. Report.total_system_s rq)
    /. Float.max (Report.total_system_s rp) 1e-9)
