(* Compare every placement policy on the sieve workload — the program with
   the heaviest writable sharing, where policy differences are starkest.

   Run with: dune exec examples/policy_comparison.exe *)

module System = Numa_system.System
module Report = Numa_system.Report
module Runner = Numa_metrics.Runner

let () =
  let app = Option.get (Numa_apps.Registry.find "primes3") in
  let spec = { Runner.default_spec with Runner.scale = 0.25 } in
  let policies =
    [
      System.Move_limit { threshold = 4 };
      System.Move_limit { threshold = 0 };
      System.All_global;
      System.Never_pin;
      System.Random_assign { p_global = 0.5; seed = 7L };
      System.Reconsider { threshold = 4; window_ns = 50e6 };
    ]
  in
  Printf.printf "%-18s %10s %10s %8s %8s %8s\n" "policy" "user (s)" "system (s)" "moves"
    "pins" "alpha";
  List.iter
    (fun policy ->
      let r = Runner.run app { spec with Runner.policy } in
      Printf.printf "%-18s %10.2f %10.2f %8d %8d %8.2f\n"
        (System.policy_spec_name policy)
        (Report.total_user_s r) (Report.total_system_s r) r.Report.numa_moves
        r.Report.pins r.Report.alpha_counted)
    policies;
  print_endline
    "\nnever-pin thrashes (watch system time); the simple move-limit policy is\n\
     within noise of the best of these, which is the paper's conclusion."
