(* Tests for the pageout daemon, both standalone and end-to-end through a
   workload whose footprint exceeds the logical page pool. *)

open Numa_machine
open Numa_vm
module System = Numa_system.System
module Api = Numa_sim.Api
module Region_attr = Numa_vm.Region_attr

let make_env ~global_pages =
  let config = Config.ace ~n_cpus:2 ~local_pages_per_cpu:8 ~global_pages () in
  let policy = Numa_core.Policy.move_limit ~n_pages:global_pages () in
  let pmap_mgr = Numa_core.Pmap_manager.create ~config ~policy () in
  let ops = Numa_core.Pmap_manager.ops pmap_mgr in
  let pool = Lpage_pool.create config ~ops in
  (config, ops, pool)

let test_daemon_evicts_to_high_water () =
  let _, ops, pool = make_env ~global_pages:8 in
  let daemon = Pageout.create ~pool ~ops ~low_water:2 ~high_water:4 () in
  let obj = Vm_object.create ~id:0 ~name:"o" ~size_pages:8 in
  Pageout.register daemon obj;
  (* Fill the pool. *)
  for offset = 0 to 7 do
    ignore (Result.get_ok (Vm_object.lpage_for obj ~pool ~ops ~offset))
  done;
  Alcotest.(check int) "pool full" 0 (Lpage_pool.n_free pool);
  let evicted = Pageout.tick daemon in
  Alcotest.(check int) "evicted to high water" 4 evicted;
  Alcotest.(check int) "free restored" 4 (Lpage_pool.n_free pool);
  Alcotest.(check int) "counter" 4 (Pageout.evictions daemon);
  (* Above low water: tick is a no-op. *)
  Alcotest.(check int) "no-op tick" 0 (Pageout.tick daemon)

let test_daemon_preserves_content () =
  let _, ops, pool = make_env ~global_pages:4 in
  let daemon = Pageout.create ~pool ~ops ~low_water:1 ~high_water:2 () in
  let obj = Vm_object.create ~id:0 ~name:"o" ~size_pages:8 in
  Pageout.register daemon obj;
  (* Touch every page, writing a distinct value, reclaiming as needed. *)
  for offset = 0 to 7 do
    if Lpage_pool.n_free pool = 0 then
      Alcotest.(check bool) "reclaim" true (Pageout.ensure_free daemon ~needed:1);
    let lpage = Result.get_ok (Vm_object.lpage_for obj ~pool ~ops ~offset) in
    ops.Pmap_intf.install_page ~lpage ~content:(1000 + offset)
  done;
  (* Read them all back, reclaiming again; contents must survive. *)
  for offset = 0 to 7 do
    (match Vm_object.slot obj ~offset with
    | Vm_object.Resident _ -> ()
    | Vm_object.Paged_out _ ->
        if Lpage_pool.n_free pool = 0 then
          ignore (Pageout.ensure_free daemon ~needed:1)
    | Vm_object.Empty -> Alcotest.fail "page lost");
    let lpage = Result.get_ok (Vm_object.lpage_for obj ~pool ~ops ~offset) in
    Alcotest.(check int)
      (Printf.sprintf "content of page %d" offset)
      (1000 + offset)
      (ops.Pmap_intf.extract_content ~lpage)
  done

let test_daemon_gives_up_when_nothing_evictable () =
  let _, ops, pool = make_env ~global_pages:2 in
  let daemon = Pageout.create ~pool ~ops ~low_water:1 ~high_water:2 () in
  (* No registered objects: allocate the pool dry directly. *)
  ignore (Lpage_pool.alloc pool);
  ignore (Lpage_pool.alloc pool);
  Alcotest.(check bool) "cannot reclaim" false (Pageout.ensure_free daemon ~needed:1)

(* End to end: a workload with a footprint twice the pool size runs to
   completion through transparent reclamation, and values written before
   eviction are read back correctly after page-in. *)
let test_system_overcommit () =
  let config = Config.ace ~n_cpus:2 ~local_pages_per_cpu:32 ~global_pages:16 () in
  let sys = System.create ~config () in
  let data =
    System.alloc_region sys ~name:"big" ~kind:Region_attr.Data
      ~sharing:Region_attr.Declared_private ~pages:28 ()
  in
  let mismatches = ref 0 in
  ignore
    (System.spawn sys ~cpu:0 ~name:"writer" (fun ~stack_vpage:_ ->
         for p = 0 to 27 do
           Api.write ~value:(500 + p) ~count:4 (data.System.base_vpage + p)
         done;
         for p = 0 to 27 do
           if Api.read_value (data.System.base_vpage + p) <> 500 + p then incr mismatches
         done));
  let report = System.run sys in
  Alcotest.(check int) "all values survive eviction" 0 !mismatches;
  Alcotest.(check bool) "run produced work" true (report.Numa_system.Report.total_user_ns > 0.);
  match System.check_invariants sys with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "invariants: %s" msg

(* Pin reset through the daemon: a pinned page that is evicted and paged
   back in starts fresh and can live locally again (footnote 4). *)
let test_overcommit_resets_pins () =
  let config = Config.ace ~n_cpus:2 ~local_pages_per_cpu:32 ~global_pages:12 () in
  let sys = System.create ~policy:(System.Move_limit { threshold = 1 }) ~config () in
  let shared =
    System.alloc_region sys ~name:"shared" ~kind:Region_attr.Data
      ~sharing:Region_attr.Declared_write_shared ~pages:1 ()
  in
  let filler =
    System.alloc_region sys ~name:"filler" ~kind:Region_attr.Data
      ~sharing:Region_attr.Declared_private ~pages:20 ()
  in
  let barrier = System.make_barrier sys ~name:"b" ~parties:2 in
  ignore
    (System.spawn sys ~cpu:0 ~name:"a" (fun ~stack_vpage:_ ->
         (* Ping-pong to pin the shared page. *)
         for _ = 1 to 6 do
           Api.write shared.System.base_vpage;
           Api.barrier barrier
         done;
         (* Churn through the filler to force the shared page out. *)
         for p = 0 to 19 do
           Api.write ~count:2 (filler.System.base_vpage + p)
         done;
         Api.barrier barrier;
         (* Touch the shared page again: fresh history. *)
         Api.write ~count:8 shared.System.base_vpage;
         Api.barrier barrier));
  ignore
    (System.spawn sys ~cpu:1 ~name:"b" (fun ~stack_vpage:_ ->
         for _ = 1 to 6 do
           Api.barrier barrier;
           Api.write shared.System.base_vpage
         done;
         Api.barrier barrier;
         Api.barrier barrier));
  ignore (System.run sys);
  match System.check_invariants sys with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "invariants: %s" msg

(* Regression: a registry whose objects all have size_pages = 0 used to
   recurse forever in the clock hunt (the object-advance branch did not
   count as a step, so the budget never decreased). evict_one must stay
   total and simply report that nothing is evictable. *)
let test_evict_one_zero_sized_objects () =
  let _, ops, pool = make_env ~global_pages:4 in
  let daemon = Pageout.create ~pool ~ops ~low_water:1 ~high_water:2 () in
  Pageout.register daemon (Vm_object.create ~id:0 ~name:"z0" ~size_pages:0);
  Pageout.register daemon (Vm_object.create ~id:1 ~name:"z1" ~size_pages:0);
  Alcotest.(check bool) "zero-sized registry terminates" false (Pageout.evict_one daemon);
  (* A real page hiding behind the empty objects is still found: the
     budget covers the object advances. *)
  let obj = Vm_object.create ~id:2 ~name:"real" ~size_pages:1 in
  Pageout.register daemon obj;
  ignore (Result.get_ok (Vm_object.lpage_for obj ~pool ~ops ~offset:0));
  Alcotest.(check bool) "page behind empty objects found" true
    (Pageout.evict_one daemon);
  Alcotest.(check bool) "then nothing again" false (Pageout.evict_one daemon)

(* ensure_free frees what the fault needs plus the low-water cushion and
   stops — the old burst swept on to the high-water mark, evicting whole
   working sets on a single fault. The daemon tick resumes the climb. *)
let test_ensure_free_burst_is_capped () =
  let _, ops, pool = make_env ~global_pages:16 in
  let daemon = Pageout.create ~pool ~ops ~low_water:2 ~high_water:8 () in
  let obj = Vm_object.create ~id:0 ~name:"o" ~size_pages:16 in
  Pageout.register daemon obj;
  for offset = 0 to 15 do
    ignore (Result.get_ok (Vm_object.lpage_for obj ~pool ~ops ~offset))
  done;
  Alcotest.(check bool) "reclaim succeeds" true (Pageout.ensure_free daemon ~needed:1);
  Alcotest.(check int) "burst capped at needed + low water" 3
    (Pageout.evictions daemon);
  Alcotest.(check int) "free matches" 3 (Lpage_pool.n_free pool);
  (* Above low water, the tick leaves things alone... *)
  Alcotest.(check int) "tick is a no-op above low water" 0 (Pageout.tick daemon);
  (* ...but once the pool dips below, it finishes the climb to high water. *)
  ignore (Lpage_pool.alloc pool);
  ignore (Lpage_pool.alloc pool);
  Alcotest.(check int) "tick resumes to high water" 7 (Pageout.tick daemon);
  Alcotest.(check int) "high water restored" 8 (Lpage_pool.n_free pool)

(* Clock-hand fairness: the cursor resumes where it stopped, across object
   boundaries, instead of restarting at object 0 — a restarting hand would
   evict the same early pages over and over. *)
let test_clock_hand_resumes_across_objects () =
  let _, ops, pool = make_env ~global_pages:4 in
  let daemon = Pageout.create ~pool ~ops ~low_water:1 ~high_water:2 () in
  let a = Vm_object.create ~id:0 ~name:"a" ~size_pages:2 in
  let b = Vm_object.create ~id:1 ~name:"b" ~size_pages:2 in
  Pageout.register daemon a;
  Pageout.register daemon b;
  List.iter
    (fun (obj, offset) ->
      ignore (Result.get_ok (Vm_object.lpage_for obj ~pool ~ops ~offset)))
    [ (a, 0); (a, 1); (b, 0); (b, 1) ];
  let paged_out obj ~offset =
    match Vm_object.slot obj ~offset with
    | Vm_object.Paged_out _ -> true
    | Vm_object.Empty | Vm_object.Resident _ -> false
  in
  Alcotest.(check bool) "evicts a.0" true (Pageout.evict_one daemon);
  Alcotest.(check bool) "a.0 out" true (paged_out a ~offset:0);
  (* Bring a.0 back: a restarting hand would claim it again next. *)
  ignore (Result.get_ok (Vm_object.lpage_for a ~pool ~ops ~offset:0));
  Alcotest.(check bool) "evicts a.1" true (Pageout.evict_one daemon);
  Alcotest.(check bool) "hand did not restart at a.0" false (paged_out a ~offset:0);
  Alcotest.(check bool) "a.1 out" true (paged_out a ~offset:1);
  (* The hand crosses into object b... *)
  Alcotest.(check bool) "evicts b.0" true (Pageout.evict_one daemon);
  Alcotest.(check bool) "b.0 out" true (paged_out b ~offset:0);
  Alcotest.(check bool) "evicts b.1" true (Pageout.evict_one daemon);
  Alcotest.(check bool) "b.1 out" true (paged_out b ~offset:1);
  (* ...and wraps back around to the resurrected a.0. *)
  Alcotest.(check bool) "wraps to a.0" true (Pageout.evict_one daemon);
  Alcotest.(check bool) "a.0 out after wrap" true (paged_out a ~offset:0);
  Alcotest.(check bool) "registry drained" false (Pageout.evict_one daemon)

(* [avoid] names the page an in-flight fault is placing: even when it is
   the only eviction candidate left, the sweep must fail rather than pull
   the page out from under the fault. *)
let test_avoid_protects_inflight_page () =
  let _, ops, pool = make_env ~global_pages:2 in
  let daemon = Pageout.create ~pool ~ops ~low_water:1 ~high_water:2 () in
  let obj = Vm_object.create ~id:0 ~name:"o" ~size_pages:2 in
  Pageout.register daemon obj;
  let l0 = Result.get_ok (Vm_object.lpage_for obj ~pool ~ops ~offset:0) in
  ignore (Result.get_ok (Vm_object.lpage_for obj ~pool ~ops ~offset:1));
  Alcotest.(check bool) "evicts the other page" true
    (Pageout.ensure_free ~avoid:l0 daemon ~needed:1);
  Alcotest.(check bool) "protected page still resident" true
    (Vm_object.slot obj ~offset:0 = Vm_object.Resident l0);
  (* Exhaustion: the only candidate left is the protected page. *)
  Alcotest.(check bool) "sweep refuses the avoided page" false
    (Pageout.ensure_free ~avoid:l0 daemon ~needed:2);
  Alcotest.(check bool) "still resident after refusal" true
    (Vm_object.slot obj ~offset:0 = Vm_object.Resident l0)

(* The per-frame state machine itself: legal arrows land where the diagram
   says, pending states block eviction, redirty during writeback is
   tracked, and an illegal arrow raises. *)
let test_paging_state_machine () =
  let config = Config.ace ~n_cpus:2 ~global_pages:4 () in
  let p = Paging.create ~config () in
  let check_st msg want ~lpage =
    Alcotest.(check string) msg (Paging.state_name want)
      (Paging.state_name (Paging.state p ~lpage))
  in
  check_st "born empty" Paging.Empty ~lpage:0;
  Paging.note_zero_fill p ~lpage:0;
  check_st "zero fill is a dirty birth" Paging.Dirty ~lpage:0;
  Alcotest.(check bool) "dirty is evictable" true (Paging.evictable p ~lpage:0);
  Paging.start_writeback p ~lpage:0 ~now:0. ~by_cpu:0;
  check_st "writeback pending" Paging.Writeback ~lpage:0;
  Alcotest.(check bool) "in flight is not evictable" false (Paging.evictable p ~lpage:0);
  Alcotest.(check (list int)) "on the in-flight list" [ 0 ] (Paging.in_flight_lpages p);
  Alcotest.(check int) "not due yet" 0 (Paging.complete_due p ~now:1.0);
  (* A store racing the disk write: completion must land back in Dirty. *)
  Paging.mark_dirty p ~lpage:0;
  check_st "still writing" Paging.Writeback ~lpage:0;
  Alcotest.(check int) "lands when due" 1 (Paging.complete_due p ~now:1e12);
  check_st "redirtied lands dirty" Paging.Dirty ~lpage:0;
  Paging.sync_writeback p ~lpage:0 ~by_cpu:0;
  check_st "sync writeback cleans" Paging.Clean ~lpage:0;
  (* An undisturbed async writeback lands clean. *)
  Paging.mark_dirty p ~lpage:0;
  Paging.start_writeback p ~lpage:0 ~now:0. ~by_cpu:0;
  Alcotest.(check int) "force landing" 1 (Paging.force_complete p);
  check_st "clean after landing" Paging.Clean ~lpage:0;
  Paging.note_free p ~lpage:0;
  check_st "free resets to empty" Paging.Empty ~lpage:0;
  (* The page-in bracket. *)
  Paging.begin_read p ~lpage:1;
  check_st "reading" Paging.Reading ~lpage:1;
  Alcotest.(check bool) "reading is not evictable" false (Paging.evictable p ~lpage:1);
  Paging.end_read p ~lpage:1;
  check_st "read lands clean" Paging.Clean ~lpage:1;
  (* Freeing mid-writeback cancels the I/O. *)
  Paging.mark_dirty p ~lpage:2;
  Paging.start_writeback p ~lpage:2 ~now:0. ~by_cpu:0;
  Paging.note_free p ~lpage:2;
  check_st "cancel on free" Paging.Empty ~lpage:2;
  Alcotest.(check (list int)) "in-flight list drained" [] (Paging.in_flight_lpages p);
  let s = Paging.stats p in
  Alcotest.(check int) "one page-in" 1 s.Paging.page_ins;
  Alcotest.(check int) "three writebacks started" 3 s.Paging.writebacks_started;
  Alcotest.(check int) "two landed" 2 s.Paging.writebacks_completed;
  Alcotest.(check int) "one canceled" 1 s.Paging.writebacks_canceled;
  Alcotest.(check int) "one redirty" 1 s.Paging.redirtied;
  Alcotest.(check int) "one sync flush" 1 s.Paging.sync_writebacks;
  (* Illegal arrows raise instead of corrupting the census. *)
  (match Paging.end_read p ~lpage:1 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "end_read on a Clean entry must raise");
  match Paging.start_writeback p ~lpage:1 ~now:0. ~by_cpu:0 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "start_writeback on a Clean entry must raise"

(* End to end under sustained pressure: the reconsideration tick drives the
   async writeback daemon, the report grows its paging section, and a full
   audit — including the per-frame relation — stays clean. *)
let test_system_pressure_audit () =
  let config = Config.ace ~n_cpus:2 ~local_pages_per_cpu:32 ~global_pages:16 () in
  let sys = System.create ~paranoid:true ~config () in
  let data =
    System.alloc_region sys ~name:"big" ~kind:Region_attr.Data
      ~sharing:Region_attr.Declared_private ~pages:28 ()
  in
  ignore
    (System.spawn sys ~cpu:0 ~name:"churn" (fun ~stack_vpage:_ ->
         (* Enough batched accesses to cross the 512-access reconsideration
            interval several times while the working set keeps overflowing
            the pool (each Api.write is one batch). *)
         for round = 1 to 60 do
           for p = 0 to 27 do
             Api.write ~value:(round + p) ~count:8 (data.System.base_vpage + p)
           done
         done));
  let report = System.run sys in
  (match report.Numa_system.Report.paging with
  | None -> Alcotest.fail "pressured run must carry a paging section"
  | Some pg ->
      Alcotest.(check bool) "page-ins happened" true (pg.Numa_system.Report.page_ins > 0);
      Alcotest.(check bool) "evictions happened" true
        (pg.Numa_system.Report.evictions > 0);
      Alcotest.(check bool) "the daemon started async writebacks" true
        (pg.Numa_system.Report.writebacks_started > 0);
      Alcotest.(check int) "nothing left mid-writeback unaccounted" 0
        (pg.Numa_system.Report.in_writeback
        - List.length
            (Numa_machine.Paging.in_flight_lpages
               (Numa_core.Pmap_manager.paging (System.pmap_manager sys)))));
  let audit = System.audit sys in
  Alcotest.(check (list string)) "audit clean under pressure" []
    audit.Numa_core.Invariant.violations;
  Alcotest.(check bool) "per-frame relation was checked" true
    (audit.Numa_core.Invariant.paging_checked > 0);
  match report.Numa_system.Report.robustness with
  | None -> Alcotest.fail "paranoid run must carry a robustness section"
  | Some r ->
      Alcotest.(check int) "no violations during the run" 0
        r.Numa_system.Report.invariant_violations;
      Alcotest.(check int) "no OOM" 0 r.Numa_system.Report.oom_faults

(* The LRU-approx victim evicts the coldest page: fault-time use ticks are
   the only reference signal, and the page never touched again since the
   beginning must go first. *)
let test_lru_evicts_coldest () =
  let config = Config.ace ~n_cpus:2 ~local_pages_per_cpu:32 ~global_pages:8 () in
  let sys = System.create ~victim:Numa_vm.Pageout.Lru_approx ~config () in
  let data =
    System.alloc_region sys ~name:"d" ~kind:Region_attr.Data
      ~sharing:Region_attr.Declared_private ~pages:12 ()
  in
  let survived = ref true in
  ignore
    (System.spawn sys ~cpu:0 ~name:"w" (fun ~stack_vpage:_ ->
         (* Touch pages 0..11 in order; the pool overflows along the way,
            so by the end the low offsets (coldest) must have been the
            ones paged out. *)
         for p = 0 to 11 do
           Api.write ~value:p (data.System.base_vpage + p)
         done;
         if Api.read_value (data.System.base_vpage + 11) <> 11 then survived := false));
  ignore (System.run sys);
  Alcotest.(check bool) "hottest page survived" true !survived;
  let cold_out =
    match Numa_vm.Vm_object.slot data.System.obj ~offset:0 with
    | Numa_vm.Vm_object.Paged_out _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "coldest page was evicted" true cold_out

let suite =
  [
    Alcotest.test_case "daemon evicts to high water" `Quick test_daemon_evicts_to_high_water;
    Alcotest.test_case "daemon preserves content" `Quick test_daemon_preserves_content;
    Alcotest.test_case "daemon gives up gracefully" `Quick
      test_daemon_gives_up_when_nothing_evictable;
    Alcotest.test_case "overcommitted workload completes" `Quick test_system_overcommit;
    Alcotest.test_case "overcommit resets pins" `Quick test_overcommit_resets_pins;
    Alcotest.test_case "zero-sized registry terminates" `Quick
      test_evict_one_zero_sized_objects;
    Alcotest.test_case "ensure_free burst is capped" `Quick
      test_ensure_free_burst_is_capped;
    Alcotest.test_case "clock hand resumes across objects" `Quick
      test_clock_hand_resumes_across_objects;
    Alcotest.test_case "avoid protects the in-flight page" `Quick
      test_avoid_protects_inflight_page;
    Alcotest.test_case "paging state machine" `Quick test_paging_state_machine;
    Alcotest.test_case "pressure run: daemon + audit" `Quick test_system_pressure_audit;
    Alcotest.test_case "lru evicts the coldest page" `Quick test_lru_evicts_coldest;
  ]
