(* Tests for the pageout daemon, both standalone and end-to-end through a
   workload whose footprint exceeds the logical page pool. *)

open Numa_machine
open Numa_vm
module System = Numa_system.System
module Api = Numa_sim.Api
module Region_attr = Numa_vm.Region_attr

let make_env ~global_pages =
  let config = Config.ace ~n_cpus:2 ~local_pages_per_cpu:8 ~global_pages () in
  let policy = Numa_core.Policy.move_limit ~n_pages:global_pages () in
  let pmap_mgr = Numa_core.Pmap_manager.create ~config ~policy () in
  let ops = Numa_core.Pmap_manager.ops pmap_mgr in
  let pool = Lpage_pool.create config ~ops in
  (config, ops, pool)

let test_daemon_evicts_to_high_water () =
  let _, ops, pool = make_env ~global_pages:8 in
  let daemon = Pageout.create ~pool ~ops ~low_water:2 ~high_water:4 () in
  let obj = Vm_object.create ~id:0 ~name:"o" ~size_pages:8 in
  Pageout.register daemon obj;
  (* Fill the pool. *)
  for offset = 0 to 7 do
    ignore (Result.get_ok (Vm_object.lpage_for obj ~pool ~ops ~offset))
  done;
  Alcotest.(check int) "pool full" 0 (Lpage_pool.n_free pool);
  let evicted = Pageout.tick daemon in
  Alcotest.(check int) "evicted to high water" 4 evicted;
  Alcotest.(check int) "free restored" 4 (Lpage_pool.n_free pool);
  Alcotest.(check int) "counter" 4 (Pageout.evictions daemon);
  (* Above low water: tick is a no-op. *)
  Alcotest.(check int) "no-op tick" 0 (Pageout.tick daemon)

let test_daemon_preserves_content () =
  let _, ops, pool = make_env ~global_pages:4 in
  let daemon = Pageout.create ~pool ~ops ~low_water:1 ~high_water:2 () in
  let obj = Vm_object.create ~id:0 ~name:"o" ~size_pages:8 in
  Pageout.register daemon obj;
  (* Touch every page, writing a distinct value, reclaiming as needed. *)
  for offset = 0 to 7 do
    if Lpage_pool.n_free pool = 0 then
      Alcotest.(check bool) "reclaim" true (Pageout.ensure_free daemon ~needed:1);
    let lpage = Result.get_ok (Vm_object.lpage_for obj ~pool ~ops ~offset) in
    ops.Pmap_intf.install_page ~lpage ~content:(1000 + offset)
  done;
  (* Read them all back, reclaiming again; contents must survive. *)
  for offset = 0 to 7 do
    (match Vm_object.slot obj ~offset with
    | Vm_object.Resident _ -> ()
    | Vm_object.Paged_out _ ->
        if Lpage_pool.n_free pool = 0 then
          ignore (Pageout.ensure_free daemon ~needed:1)
    | Vm_object.Empty -> Alcotest.fail "page lost");
    let lpage = Result.get_ok (Vm_object.lpage_for obj ~pool ~ops ~offset) in
    Alcotest.(check int)
      (Printf.sprintf "content of page %d" offset)
      (1000 + offset)
      (ops.Pmap_intf.extract_content ~lpage)
  done

let test_daemon_gives_up_when_nothing_evictable () =
  let _, ops, pool = make_env ~global_pages:2 in
  let daemon = Pageout.create ~pool ~ops ~low_water:1 ~high_water:2 () in
  (* No registered objects: allocate the pool dry directly. *)
  ignore (Lpage_pool.alloc pool);
  ignore (Lpage_pool.alloc pool);
  Alcotest.(check bool) "cannot reclaim" false (Pageout.ensure_free daemon ~needed:1)

(* End to end: a workload with a footprint twice the pool size runs to
   completion through transparent reclamation, and values written before
   eviction are read back correctly after page-in. *)
let test_system_overcommit () =
  let config = Config.ace ~n_cpus:2 ~local_pages_per_cpu:32 ~global_pages:16 () in
  let sys = System.create ~config () in
  let data =
    System.alloc_region sys ~name:"big" ~kind:Region_attr.Data
      ~sharing:Region_attr.Declared_private ~pages:28 ()
  in
  let mismatches = ref 0 in
  ignore
    (System.spawn sys ~cpu:0 ~name:"writer" (fun ~stack_vpage:_ ->
         for p = 0 to 27 do
           Api.write ~value:(500 + p) ~count:4 (data.System.base_vpage + p)
         done;
         for p = 0 to 27 do
           if Api.read_value (data.System.base_vpage + p) <> 500 + p then incr mismatches
         done));
  let report = System.run sys in
  Alcotest.(check int) "all values survive eviction" 0 !mismatches;
  Alcotest.(check bool) "run produced work" true (report.Numa_system.Report.total_user_ns > 0.);
  match System.check_invariants sys with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "invariants: %s" msg

(* Pin reset through the daemon: a pinned page that is evicted and paged
   back in starts fresh and can live locally again (footnote 4). *)
let test_overcommit_resets_pins () =
  let config = Config.ace ~n_cpus:2 ~local_pages_per_cpu:32 ~global_pages:12 () in
  let sys = System.create ~policy:(System.Move_limit { threshold = 1 }) ~config () in
  let shared =
    System.alloc_region sys ~name:"shared" ~kind:Region_attr.Data
      ~sharing:Region_attr.Declared_write_shared ~pages:1 ()
  in
  let filler =
    System.alloc_region sys ~name:"filler" ~kind:Region_attr.Data
      ~sharing:Region_attr.Declared_private ~pages:20 ()
  in
  let barrier = System.make_barrier sys ~name:"b" ~parties:2 in
  ignore
    (System.spawn sys ~cpu:0 ~name:"a" (fun ~stack_vpage:_ ->
         (* Ping-pong to pin the shared page. *)
         for _ = 1 to 6 do
           Api.write shared.System.base_vpage;
           Api.barrier barrier
         done;
         (* Churn through the filler to force the shared page out. *)
         for p = 0 to 19 do
           Api.write ~count:2 (filler.System.base_vpage + p)
         done;
         Api.barrier barrier;
         (* Touch the shared page again: fresh history. *)
         Api.write ~count:8 shared.System.base_vpage;
         Api.barrier barrier));
  ignore
    (System.spawn sys ~cpu:1 ~name:"b" (fun ~stack_vpage:_ ->
         for _ = 1 to 6 do
           Api.barrier barrier;
           Api.write shared.System.base_vpage
         done;
         Api.barrier barrier;
         Api.barrier barrier));
  ignore (System.run sys);
  match System.check_invariants sys with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "invariants: %s" msg

let suite =
  [
    Alcotest.test_case "daemon evicts to high water" `Quick test_daemon_evicts_to_high_water;
    Alcotest.test_case "daemon preserves content" `Quick test_daemon_preserves_content;
    Alcotest.test_case "daemon gives up gracefully" `Quick
      test_daemon_gives_up_when_nothing_evictable;
    Alcotest.test_case "overcommitted workload completes" `Quick test_system_overcommit;
    Alcotest.test_case "overcommit resets pins" `Quick test_overcommit_resets_pins;
  ]
