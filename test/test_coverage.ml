(* Second-pass coverage: focused cases for behaviours the main suites do
   not pin down — engine batching/slicing details, report accounting,
   per-region bookkeeping, policy introspection, bus integration, stats. *)

open Numa_machine
module System = Numa_system.System
module Report = Numa_system.Report
module Engine = Numa_sim.Engine
module Api = Numa_sim.Api
module Memory_iface = Numa_sim.Memory_iface
module Region_attr = Numa_vm.Region_attr
module Policy = Numa_core.Policy
module W = Numa_apps.Workload

(* --- engine details ------------------------------------------------------- *)

let flat_engine ?(n_cpus = 4) ?(engine_tweak = Fun.id) () =
  let machine = Config.ace ~n_cpus () in
  Engine.create
    (engine_tweak (Engine.default_config ~n_cpus))
    ~memory:(Memory_iface.flat machine) ~scheduler:Engine.Affinity

let test_engine_large_batch_spans_chunks () =
  (* A 10_000-reference batch with 1024-reference chunks: the accounting
     must be exact regardless of the chunking. *)
  let e = flat_engine ~engine_tweak:(fun c -> { c with Engine.chunk_refs = 1024 }) () in
  ignore (Engine.spawn e ~cpu:0 ~name:"t" (fun () -> Api.read ~count:10_000 3));
  Engine.run e;
  Alcotest.(check (float 1.)) "exact batch accounting" (10_000. *. 650.)
    (Engine.user_ns e ~cpu:0)

let test_engine_compute_slicing_exact () =
  (* Computation larger than the slice must still total exactly. *)
  let e =
    flat_engine ~engine_tweak:(fun c -> { c with Engine.compute_slice_ns = 1e5 }) ()
  in
  ignore (Engine.spawn e ~cpu:1 ~name:"t" (fun () -> Api.compute 1.23e6));
  Engine.run e;
  Alcotest.(check (float 1e-3)) "sliced compute exact" 1.23e6 (Engine.user_ns e ~cpu:1)

let test_engine_write_value_persists_across_chunks () =
  let e = flat_engine ~engine_tweak:(fun c -> { c with Engine.chunk_refs = 16 }) () in
  let got = ref 0 in
  ignore
    (Engine.spawn e ~cpu:0 ~name:"t" (fun () ->
         Api.write ~count:100 ~value:77 5;
         got := Api.read_value 5));
  Engine.run e;
  Alcotest.(check int) "value survives chunked write" 77 !got

let test_engine_barrier_single_party () =
  let e = flat_engine () in
  let b = Engine.make_barrier e ~vpage:0 ~parties:1 in
  let passed = ref false in
  ignore
    (Engine.spawn e ~name:"solo" (fun () ->
         Api.barrier b;
         passed := true));
  Engine.run e;
  Alcotest.(check bool) "single-party barrier releases immediately" true !passed

let test_engine_lock_handoff_deterministic () =
  (* Spin locks are not FIFO (the winner is whoever's poll lands first
     after the release), but the handoff must be reproducible run to run. *)
  let handoff_order () =
    let e = flat_engine () in
    let lock = Engine.make_lock e ~vpage:0 in
    let order = ref [] in
    ignore
      (Engine.spawn e ~cpu:0 ~name:"holder" (fun () ->
           Api.lock lock;
           Api.compute 1e6;
           Api.unlock lock));
    List.iter
      (fun (cpu, name, delay) ->
        ignore
          (Engine.spawn e ~cpu ~name (fun () ->
               Api.compute delay;
               Api.lock lock;
               order := name :: !order;
               Api.unlock lock)))
      [ (1, "early", 1e4); (2, "late", 5e5) ];
    Engine.run e;
    List.rev !order
  in
  let a = handoff_order () in
  Alcotest.(check int) "both acquired" 2 (List.length a);
  Alcotest.(check (list string)) "reproducible handoff" a (handoff_order ())

let test_engine_syscall_without_stack_page () =
  (* touch_stack with no stack page registered must be harmless. *)
  let e = flat_engine ~engine_tweak:(fun c -> { c with Engine.unix_master = true }) () in
  ignore
    (Engine.spawn e ~cpu:1 ~name:"t" (fun () ->
         Api.syscall ~touch_stack:true ~service_ns:1e6 ()));
  Engine.run e;
  Alcotest.(check (float 1.)) "service on master" 1e6 (Engine.system_ns e ~cpu:0)

let test_engine_thread_count () =
  let e = flat_engine () in
  for i = 0 to 4 do
    ignore (Engine.spawn e ~name:(string_of_int i) (fun () -> Api.compute 1e3))
  done;
  Engine.run e;
  Alcotest.(check int) "n_threads" 5 (Engine.n_threads e)

(* --- system accounting ------------------------------------------------------ *)

let small_config ?(n_cpus = 4) () =
  Config.ace ~n_cpus ~local_pages_per_cpu:64 ~global_pages:256 ()

let test_per_region_counts_are_exact () =
  let sys = System.create ~config:(small_config ()) () in
  let a =
    System.alloc_region sys ~name:"A" ~kind:Region_attr.Data
      ~sharing:Region_attr.Declared_private ~pages:1 ()
  in
  let b =
    System.alloc_region sys ~name:"B" ~kind:Region_attr.Data
      ~sharing:Region_attr.Declared_private ~pages:1 ()
  in
  ignore
    (System.spawn sys ~cpu:0 ~name:"t" (fun ~stack_vpage:_ ->
         Api.read ~count:10 a.System.base_vpage;
         Api.write ~count:3 a.System.base_vpage;
         Api.write ~count:7 b.System.base_vpage));
  let r = System.run sys in
  let counts name = List.assoc name r.Report.per_region in
  Alcotest.(check int) "A reads" 10 (counts "A").Report.local_reads;
  Alcotest.(check int) "A writes" 3 (counts "A").Report.local_writes;
  Alcotest.(check int) "B writes" 7 (counts "B").Report.local_writes;
  Alcotest.(check int) "B reads" 0 (counts "B").Report.local_reads;
  (* Totals include the regions plus nothing else (no lock/barrier here;
     the thread never touched its stack). *)
  Alcotest.(check int) "total refs" 20 (Report.total_refs r.Report.refs_all)

let test_report_summary_and_counts_helpers () =
  let c = Report.zero_counts () in
  Alcotest.(check int) "empty total" 0 (Report.total_refs c);
  Alcotest.(check (float 0.)) "empty local fraction" 0. (Report.local_fraction c);
  c.Report.local_reads <- 3;
  c.Report.global_writes <- 1;
  Alcotest.(check (float 1e-9)) "local fraction" 0.75 (Report.local_fraction c);
  let sys = System.create ~config:(small_config ()) () in
  let a =
    System.alloc_region sys ~name:"A" ~kind:Region_attr.Data
      ~sharing:Region_attr.Declared_private ~pages:1 ()
  in
  ignore
    (System.spawn sys ~name:"t" (fun ~stack_vpage:_ -> Api.write a.System.base_vpage));
  let r = System.run sys in
  let line = Report.summary_line r in
  Alcotest.(check bool) "summary mentions policy" true
    (String.length line > 0
    &&
    let rec has i =
      i + 10 <= String.length line && (String.sub line i 10 = "policy=mov" || has (i + 1))
    in
    has 0)

let test_access_hook_detach () =
  let sys = System.create ~config:(small_config ()) () in
  let a =
    System.alloc_region sys ~name:"A" ~kind:Region_attr.Data
      ~sharing:Region_attr.Declared_private ~pages:1 ()
  in
  let seen = ref 0 in
  System.set_access_hook sys (Some (fun _ -> incr seen));
  System.set_access_hook sys None;
  ignore
    (System.spawn sys ~name:"t" (fun ~stack_vpage:_ ->
         Api.write ~count:5 a.System.base_vpage));
  ignore (System.run sys);
  Alcotest.(check int) "detached hook sees nothing" 0 !seen

let test_policy_spec_names () =
  Alcotest.(check string) "move-limit" "move-limit(4)"
    (System.policy_spec_name (System.Move_limit { threshold = 4 }));
  Alcotest.(check string) "all-global" "all-global" (System.policy_spec_name System.All_global);
  Alcotest.(check string) "never-pin" "never-pin" (System.policy_spec_name System.Never_pin);
  Alcotest.(check string) "random" "random(0.25)"
    (System.policy_spec_name (System.Random_assign { p_global = 0.25; seed = 1L }));
  Alcotest.(check string) "reconsider" "reconsider(3)"
    (System.policy_spec_name (System.Reconsider { threshold = 3; window_ns = 1e6 }))

let test_bus_integration_slows_global_refs () =
  (* Two variants of the same global-heavy run: with a tiny bus the user
     time must be strictly larger and the delay recorded in the report. *)
  let run bus_words_per_ns =
    let config = { (small_config ~n_cpus:4 ()) with Config.bus_words_per_ns } in
    let sys = System.create ~policy:System.All_global ~config () in
    let a =
      System.alloc_region sys ~name:"hot" ~kind:Region_attr.Data
        ~sharing:Region_attr.Declared_write_shared ~pages:1 ()
    in
    for cpu = 0 to 3 do
      ignore
        (System.spawn sys ~cpu ~name:(Printf.sprintf "t%d" cpu) (fun ~stack_vpage:_ ->
             Api.read ~count:5000 a.System.base_vpage))
    done;
    System.run sys
  in
  let free = run 0. and congested = run 0.0005 (* 2 MB/s: far under demand *) in
  Alcotest.(check (float 0.)) "no delay without bus model" 0. free.Report.bus_delay_ns;
  Alcotest.(check bool) "delay recorded" true (congested.Report.bus_delay_ns > 0.);
  Alcotest.(check bool) "congestion slows the run" true
    (congested.Report.total_user_ns > free.Report.total_user_ns)

(* --- stats / policy introspection ------------------------------------------- *)

let test_numa_stats_assoc_and_histogram () =
  let stats = Numa_core.Numa_stats.create () in
  stats.Numa_core.Numa_stats.moves <- 7;
  Numa_core.Numa_stats.record_final_moves stats 3;
  Numa_core.Numa_stats.record_final_moves stats 3;
  Numa_core.Numa_stats.record_final_moves stats 0;
  Alcotest.(check int) "histogram count" 2
    (Numa_util.Histogram.count stats.Numa_core.Numa_stats.move_histogram 3);
  let assoc = Numa_core.Numa_stats.to_assoc stats in
  Alcotest.(check (option string)) "moves in assoc" (Some "7")
    (List.assoc_opt "page moves" assoc)

let test_policy_info_strings () =
  let p = Policy.move_limit ~threshold:9 ~n_pages:4 () in
  Alcotest.(check (option string)) "threshold surfaced" (Some "9")
    (List.assoc_opt "threshold" (p.Policy.info ()));
  let r =
    Policy.reconsider ~threshold:2 ~window_ns:5e6 ~now:(fun () -> 0.) ~n_pages:4 ()
  in
  Alcotest.(check bool) "reconsider exposes window" true
    (List.mem_assoc "window_ns" (r.Policy.info ()))

(* --- workload odds and ends ----------------------------------------------------- *)

let test_workpile_single_chunk_covers_all () =
  let sys = System.create ~config:(small_config ()) () in
  let pile = W.make_workpile sys ~name:"p" ~total:5 ~chunk:100 in
  let got = ref None in
  ignore
    (System.spawn sys ~name:"t" (fun ~stack_vpage:_ ->
         got := W.workpile_take pile;
         Alcotest.(check bool) "then empty" true (W.workpile_take pile = None)));
  ignore (System.run sys);
  Alcotest.(check (option (pair int int))) "whole range at once" (Some (0, 4)) !got

let test_static_share_more_threads_than_work () =
  let covered = Array.make 3 0 in
  for tid = 0 to 6 do
    let lo, hi = W.static_share ~total:3 ~nthreads:7 ~tid in
    for i = lo to hi - 1 do
      covered.(i) <- covered.(i) + 1
    done
  done;
  Array.iter (fun n -> Alcotest.(check int) "each unit once" 1 n) covered

let test_alloc_arr_rejects_empty () =
  let sys = System.create ~config:(small_config ()) () in
  Alcotest.check_raises "empty array"
    (Invalid_argument "Workload.alloc_arr: words must be positive") (fun () ->
      ignore
        (W.alloc_arr sys ~name:"x" ~sharing:Region_attr.Declared_private ~words:0 ()))

(* --- protocol rendering ------------------------------------------------------------ *)

let test_protocol_tables_have_all_states () =
  List.iter
    (fun access ->
      let rendered = Numa_core.Protocol.render_table access in
      List.iter
        (fun sv ->
          let label = Numa_core.Protocol.state_view_to_string sv in
          let contains sub s =
            let n = String.length s and m = String.length sub in
            let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
            go 0
          in
          Alcotest.(check bool) (label ^ " column present") true (contains label rendered))
        Numa_core.Protocol.all_state_views)
    [ Access.Load; Access.Store ]

(* --- table renderers ------------------------------------------------------------------ *)

let test_ablation_renderers_nonempty () =
  (* Renderers must produce headers even for empty row lists. *)
  Alcotest.(check bool) "threshold" true
    (String.length (Numa_metrics.Ablations.render_threshold_sweep []) > 0);
  Alcotest.(check bool) "scheduler" true
    (String.length (Numa_metrics.Ablations.render_scheduler_study []) > 0);
  Alcotest.(check bool) "gl" true
    (String.length (Numa_metrics.Ablations.render_gl_sweep []) > 0);
  Alcotest.(check bool) "bus" true
    (String.length (Numa_metrics.Ablations.render_bus_study []) > 0);
  Alcotest.(check bool) "migration" true
    (String.length (Numa_metrics.Ablations.render_migration_study []) > 0);
  Alcotest.(check bool) "cpu sweep" true
    (String.length (Numa_metrics.Ablations.render_cpu_sweep []) > 0);
  Alcotest.(check bool) "butterfly" true
    (String.length (Numa_metrics.Ablations.render_butterfly_study []) > 0)

let suite =
  [
    Alcotest.test_case "engine: large batch spans chunks" `Quick
      test_engine_large_batch_spans_chunks;
    Alcotest.test_case "engine: compute slicing exact" `Quick
      test_engine_compute_slicing_exact;
    Alcotest.test_case "engine: write value across chunks" `Quick
      test_engine_write_value_persists_across_chunks;
    Alcotest.test_case "engine: single-party barrier" `Quick test_engine_barrier_single_party;
    Alcotest.test_case "engine: deterministic lock handoff" `Quick
      test_engine_lock_handoff_deterministic;
    Alcotest.test_case "engine: syscall without stack" `Quick
      test_engine_syscall_without_stack_page;
    Alcotest.test_case "engine: thread count" `Quick test_engine_thread_count;
    Alcotest.test_case "system: per-region counts exact" `Quick
      test_per_region_counts_are_exact;
    Alcotest.test_case "report: helpers" `Quick test_report_summary_and_counts_helpers;
    Alcotest.test_case "system: hook detach" `Quick test_access_hook_detach;
    Alcotest.test_case "system: policy spec names" `Quick test_policy_spec_names;
    Alcotest.test_case "system: bus integration" `Quick test_bus_integration_slows_global_refs;
    Alcotest.test_case "stats: assoc and histogram" `Quick test_numa_stats_assoc_and_histogram;
    Alcotest.test_case "policy: info strings" `Quick test_policy_info_strings;
    Alcotest.test_case "workpile: single chunk" `Quick test_workpile_single_chunk_covers_all;
    Alcotest.test_case "static share: thin work" `Quick
      test_static_share_more_threads_than_work;
    Alcotest.test_case "alloc_arr rejects empty" `Quick test_alloc_arr_rejects_empty;
    Alcotest.test_case "protocol: tables list all states" `Quick
      test_protocol_tables_have_all_states;
    Alcotest.test_case "ablation renderers" `Quick test_ablation_renderers_nonempty;
  ]
