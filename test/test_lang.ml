(* Tests for the layout tool. *)

module Layout = Numa_lang.Layout
module Region_attr = Numa_vm.Region_attr
module System = Numa_system.System

let objects =
  [
    Layout.obj ~owner:0 ~name:"c0" ~words:10 ~sharing:Region_attr.Declared_private ();
    Layout.obj ~name:"log" ~words:20 ~sharing:Region_attr.Declared_write_shared ();
    Layout.obj ~owner:1 ~name:"c1" ~words:10 ~sharing:Region_attr.Declared_private ();
    Layout.obj ~name:"table" ~words:700 ~sharing:Region_attr.Declared_read_shared ();
    Layout.obj ~name:"queue" ~words:6 ~sharing:Region_attr.Declared_write_shared ();
  ]

let placement plan name =
  List.find
    (fun (p : Layout.placement) -> p.Layout.p_obj.Layout.o_name = name)
    plan.Layout.placements

let test_naive_packs_in_order () =
  let plan = Layout.naive objects in
  Alcotest.(check int) "one region" 1 (List.length plan.Layout.regions);
  Alcotest.(check int) "c0 first" 0 (placement plan "c0").Layout.p_offset_words;
  Alcotest.(check int) "log follows" 10 (placement plan "log").Layout.p_offset_words;
  Alcotest.(check int) "c1 follows" 30 (placement plan "c1").Layout.p_offset_words;
  let r = List.hd plan.Layout.regions in
  Alcotest.(check int) "region covers everything" (10 + 20 + 10 + 700 + 6)
    r.Layout.r_words

let test_segregated_groups_by_class () =
  let plan = Layout.segregated ~page_words:512 objects in
  (* Groups: private.0, write-shared, private.1, read-shared. *)
  Alcotest.(check int) "four regions" 4 (List.length plan.Layout.regions);
  Alcotest.(check string) "c0 in its own private region" "private.0"
    (placement plan "c0").Layout.p_region;
  Alcotest.(check string) "c1 separate" "private.1" (placement plan "c1").Layout.p_region;
  Alcotest.(check string) "log write-shared" "write-shared"
    (placement plan "log").Layout.p_region;
  (* Write-shared objects page-padded apart. *)
  Alcotest.(check int) "log at 0" 0 (placement plan "log").Layout.p_offset_words;
  Alcotest.(check int) "queue on its own page" 512
    (placement plan "queue").Layout.p_offset_words;
  (* Region sizes are page multiples. *)
  List.iter
    (fun (r : Layout.planned_region) ->
      Alcotest.(check int) (r.Layout.r_name ^ " page aligned") 0 (r.Layout.r_words mod 512))
    plan.Layout.regions

let test_segregated_no_padding_option () =
  let plan = Layout.segregated ~page_words:512 ~pad_write_shared:false objects in
  Alcotest.(check int) "queue directly after log" 20
    (placement plan "queue").Layout.p_offset_words

let test_every_object_placed_once () =
  List.iter
    (fun plan ->
      let names =
        List.map (fun (p : Layout.placement) -> p.Layout.p_obj.Layout.o_name)
          plan.Layout.placements
      in
      Alcotest.(check int) "all objects" (List.length objects) (List.length names);
      Alcotest.(check int) "no duplicates" (List.length names)
        (List.length (List.sort_uniq compare names)))
    [ Layout.naive objects; Layout.segregated ~page_words:512 objects ]

let test_materialise_and_address () =
  let config = Numa_machine.Config.ace ~n_cpus:2 ~local_pages_per_cpu:32 ~global_pages:64 () in
  let sys = System.create ~config () in
  let plan = Layout.segregated ~page_words:512 objects in
  let located = Layout.materialise sys plan in
  Alcotest.(check int) "all objects located" (List.length objects) (Hashtbl.length located);
  let table = Hashtbl.find located "table" in
  (* 700 words spill onto a second page. *)
  Alcotest.(check bool) "page split" true
    (Layout.vpage_of_word table 0 <> Layout.vpage_of_word table 699);
  Alcotest.(check int) "consecutive pages" 1
    (Layout.vpage_of_word table 699 - Layout.vpage_of_word table 0);
  (* Distinct objects in the same group can share a region but the private
     groups must be disjoint regions. *)
  let c0 = Hashtbl.find located "c0" and c1 = Hashtbl.find located "c1" in
  Alcotest.(check bool) "private objects on different pages" true
    (Layout.vpage_of_word c0 0 <> Layout.vpage_of_word c1 0);
  Alcotest.check_raises "address out of range"
    (Invalid_argument "Layout.vpage_of_word: out of range") (fun () ->
      ignore (Layout.vpage_of_word c0 10))

let test_naive_vs_segregated_behaviour () =
  (* End to end: a private counter colocated with a shared log pins under
     the naive layout and stays local under segregation. *)
  let run plan_of =
    let config = Numa_machine.Config.ace ~n_cpus:2 ~local_pages_per_cpu:32 ~global_pages:64 () in
    let sys = System.create ~config () in
    let objs =
      [
        Layout.obj ~owner:0 ~name:"mine" ~words:8 ~sharing:Region_attr.Declared_private ();
        Layout.obj ~name:"shared" ~words:8 ~sharing:Region_attr.Declared_write_shared ();
      ]
    in
    let located = Layout.materialise sys (plan_of objs) in
    let mine = Hashtbl.find located "mine" and shared = Hashtbl.find located "shared" in
    let barrier = System.make_barrier sys ~name:"b" ~parties:2 in
    for i = 0 to 1 do
      ignore
        (System.spawn sys ~cpu:i ~name:(Printf.sprintf "t%d" i) (fun ~stack_vpage:_ ->
             for _r = 1 to 12 do
               if i = 0 then Numa_sim.Api.write ~count:16 (Layout.vpage_of_word mine 0);
               Numa_sim.Api.write ~count:2 (Layout.vpage_of_word shared 0);
               Numa_sim.Api.barrier barrier
             done))
    done;
    let report = System.run sys in
    (report, Layout.vpage_of_word mine 0 = Layout.vpage_of_word shared 0)
  in
  let naive_report, naive_colocated = run Layout.naive in
  let seg_report, seg_colocated =
    run (fun objs -> Layout.segregated ~page_words:512 objs)
  in
  Alcotest.(check bool) "naive colocates" true naive_colocated;
  Alcotest.(check bool) "segregated separates" false seg_colocated;
  Alcotest.(check bool) "segregation raises alpha" true
    (seg_report.Numa_system.Report.alpha_counted
    > naive_report.Numa_system.Report.alpha_counted +. 0.2)

let suite =
  [
    Alcotest.test_case "naive packs in order" `Quick test_naive_packs_in_order;
    Alcotest.test_case "segregated groups by class" `Quick test_segregated_groups_by_class;
    Alcotest.test_case "padding can be disabled" `Quick test_segregated_no_padding_option;
    Alcotest.test_case "every object placed once" `Quick test_every_object_placed_once;
    Alcotest.test_case "materialise and address" `Quick test_materialise_and_address;
    Alcotest.test_case "naive vs segregated behaviour" `Quick
      test_naive_vs_segregated_behaviour;
  ]
