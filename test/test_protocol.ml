(* Exhaustive check of the protocol transition function against Tables 1
   and 2 of the paper, entry by entry. *)

open Numa_core
open Numa_machine

let outcome = Alcotest.testable
    (Fmt.of_to_string (fun (o : Protocol.outcome) ->
         Printf.sprintf "[%s] -> %s"
           (String.concat "; " (List.map Protocol.action_to_string o.actions))
           (Protocol.new_state_to_string o.new_state)))
    ( = )

let check ~access ~state ~decision ~actions ~new_state () =
  Alcotest.check outcome
    (Printf.sprintf "%s / %s / %s"
       (Access.to_string access)
       (Protocol.decision_to_string decision)
       (Protocol.state_view_to_string state))
    { Protocol.actions; new_state }
    (Protocol.transition ~access ~state ~decision)

(* Table 1: read requests. *)
let test_table1 () =
  let open Protocol in
  check ~access:Access.Load ~decision:Place_local ~state:Sv_read_only
    ~actions:[ Copy_to_local ] ~new_state:Becomes_read_only ();
  check ~access:Access.Load ~decision:Place_local ~state:Sv_global_writable
    ~actions:[ Unmap_all; Copy_to_local ] ~new_state:Becomes_read_only ();
  check ~access:Access.Load ~decision:Place_local ~state:Sv_local_writable_own
    ~actions:[] ~new_state:Becomes_local_writable ();
  check ~access:Access.Load ~decision:Place_local ~state:Sv_local_writable_other
    ~actions:[ Sync_and_flush_other; Copy_to_local ] ~new_state:Becomes_read_only ();
  check ~access:Access.Load ~decision:Place_global ~state:Sv_read_only
    ~actions:[ Flush_all ] ~new_state:Becomes_global_writable ();
  check ~access:Access.Load ~decision:Place_global ~state:Sv_global_writable ~actions:[]
    ~new_state:Becomes_global_writable ();
  check ~access:Access.Load ~decision:Place_global ~state:Sv_local_writable_own
    ~actions:[ Sync_and_flush_own ] ~new_state:Becomes_global_writable ();
  check ~access:Access.Load ~decision:Place_global ~state:Sv_local_writable_other
    ~actions:[ Sync_and_flush_other ] ~new_state:Becomes_global_writable ()

(* Table 2: write requests. *)
let test_table2 () =
  let open Protocol in
  check ~access:Access.Store ~decision:Place_local ~state:Sv_read_only
    ~actions:[ Flush_other; Copy_to_local ] ~new_state:Becomes_local_writable ();
  check ~access:Access.Store ~decision:Place_local ~state:Sv_global_writable
    ~actions:[ Unmap_all; Copy_to_local ] ~new_state:Becomes_local_writable ();
  check ~access:Access.Store ~decision:Place_local ~state:Sv_local_writable_own
    ~actions:[] ~new_state:Becomes_local_writable ();
  check ~access:Access.Store ~decision:Place_local ~state:Sv_local_writable_other
    ~actions:[ Sync_and_flush_other; Copy_to_local ] ~new_state:Becomes_local_writable ();
  check ~access:Access.Store ~decision:Place_global ~state:Sv_read_only
    ~actions:[ Flush_all ] ~new_state:Becomes_global_writable ();
  check ~access:Access.Store ~decision:Place_global ~state:Sv_global_writable ~actions:[]
    ~new_state:Becomes_global_writable ();
  check ~access:Access.Store ~decision:Place_global ~state:Sv_local_writable_own
    ~actions:[ Sync_and_flush_own ] ~new_state:Becomes_global_writable ();
  check ~access:Access.Store ~decision:Place_global ~state:Sv_local_writable_other
    ~actions:[ Sync_and_flush_other ] ~new_state:Becomes_global_writable ()

(* Structural properties that hold across the whole table. *)
let test_global_decisions_never_copy () =
  List.iter
    (fun access ->
      List.iter
        (fun state ->
          let o = Protocol.transition ~access ~state ~decision:Protocol.Place_global in
          Alcotest.(check bool)
            "GLOBAL never copies to local" false
            (List.mem Protocol.Copy_to_local o.actions);
          Alcotest.(check bool)
            "GLOBAL always ends global" true
            (o.new_state = Protocol.Becomes_global_writable))
        Protocol.all_state_views)
    [ Access.Load; Access.Store ]

let test_local_decisions_end_cached () =
  List.iter
    (fun access ->
      List.iter
        (fun state ->
          let o = Protocol.transition ~access ~state ~decision:Protocol.Place_local in
          Alcotest.(check bool)
            "LOCAL never ends global" false
            (o.new_state = Protocol.Becomes_global_writable))
        Protocol.all_state_views)
    [ Access.Load; Access.Store ]

let test_writes_never_end_read_only () =
  List.iter
    (fun decision ->
      List.iter
        (fun state ->
          let o = Protocol.transition ~access:Access.Store ~state ~decision in
          Alcotest.(check bool)
            "store never yields read-only" false
            (o.new_state = Protocol.Becomes_read_only))
        Protocol.all_state_views)
    Protocol.all_decisions

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_render_tables () =
  let t1 = Protocol.render_table Access.Load in
  let t2 = Protocol.render_table Access.Store in
  Alcotest.(check bool) "table 1 mentions unmap" true (contains ~sub:"unmap all" t1);
  Alcotest.(check bool) "table 2 mentions flush other" true
    (contains ~sub:"flush other" t2)

let suite =
  [
    Alcotest.test_case "table 1 entries" `Quick test_table1;
    Alcotest.test_case "table 2 entries" `Quick test_table2;
    Alcotest.test_case "GLOBAL row invariants" `Quick test_global_decisions_never_copy;
    Alcotest.test_case "LOCAL row invariants" `Quick test_local_decisions_end_cached;
    Alcotest.test_case "stores never end read-only" `Quick test_writes_never_end_read_only;
    Alcotest.test_case "tables render" `Quick test_render_tables;
  ]
