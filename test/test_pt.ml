(* Materialised page tables: the mode parser, walk charging on TLB misses,
   table-frame accounting against the per-node pools, Mitosis-style
   replication (eager and on-demand) with shootdown-aware PTE management,
   the stale-replica-PTE invariant regression, conservation under
   replication, and the byte-identity of [--pt-mode none]. *)

open Numa_machine
module System = Numa_system.System
module Report = Numa_system.Report
module Engine = Numa_sim.Engine
module Profile = Numa_obs.Profile
module App_sig = Numa_apps.App_sig
module Pmap_manager = Numa_core.Pmap_manager

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let parse_plan s =
  match Numa_faults.Plan.of_string s with
  | Ok p -> p
  | Error e -> Alcotest.failf "plan %S failed to parse: %s" s e

let run_app ?(pt_mode = Pt.Off) ?(paranoid = false) ?(profiling = false)
    ?(faults = Numa_faults.Plan.empty) ?(n_cpus = 4) ?(scale = 0.05)
    ?(config_tweak = Fun.id) name =
  let app = Option.get (Numa_apps.Registry.find name) in
  let config = config_tweak (Config.ace ~n_cpus ()) in
  let sys = System.create ~pt_mode ~paranoid ~profiling ~faults ~config () in
  app.App_sig.setup sys { App_sig.nthreads = n_cpus; scale; seed = 42L };
  let report = System.run sys in
  (sys, report)

let pt_of sys =
  match Mmu.pt (Pmap_manager.mmu (System.pmap_manager sys)) with
  | Some pt -> pt
  | None -> Alcotest.fail "expected a Pt.t attached to the MMU"

let pt_section (r : Report.t) =
  match r.Report.pt with
  | Some p -> p
  | None -> Alcotest.fail "expected a pt section in the report"

let violations_of (r : Report.t) =
  match r.Report.robustness with
  | Some rb -> rb.Report.invariant_violations
  | None -> Alcotest.fail "expected a robustness section"

(* --- the mode parser ----------------------------------------------------- *)

let test_mode_parse () =
  List.iter
    (fun (s, m) ->
      (match Pt.mode_of_string s with
      | Ok got -> Alcotest.(check bool) (s ^ " parses") true (got = m)
      | Error e -> Alcotest.failf "%S failed to parse: %s" s e);
      (* Canonical renderings round-trip. *)
      let canonical = Pt.mode_to_string m in
      match Pt.mode_of_string canonical with
      | Ok got -> Alcotest.(check bool) (canonical ^ " round-trips") true (got = m)
      | Error e -> Alcotest.failf "%S failed to reparse: %s" canonical e)
    [
      ("none", Pt.Off);
      ("shared", Pt.Shared);
      ("replicated", Pt.Replicated None);
      ("replicated:1", Pt.Replicated (Some 1));
      ("replicated:3", Pt.Replicated (Some 3));
    ];
  List.iter
    (fun s ->
      match Pt.mode_of_string s with
      | Ok _ -> Alcotest.failf "%S should not parse" s
      | Error msg ->
          Alcotest.(check bool) (s ^ " has a message") true (String.length msg > 0))
    [ "off"; "replicated:0"; "replicated:-1"; "replicated:x"; "mitosis"; "" ]

(* --- off = byte-identical ------------------------------------------------ *)

let test_off_attaches_nothing () =
  let sys, r = run_app "imatmult" in
  (match Mmu.pt (Pmap_manager.mmu (System.pmap_manager sys)) with
  | None -> ()
  | Some _ -> Alcotest.fail "default run must not materialise page tables");
  Alcotest.(check bool) "no pt section" true (r.Report.pt = None);
  let json = Numa_obs.Json.to_string (Report.to_json r) in
  Alcotest.(check bool) "no pt key in JSON" false (contains ~sub:"\"pt\"" json);
  let text = Format.asprintf "%a" Report.pp r in
  Alcotest.(check bool) "no pt line in text" false (contains ~sub:"pt:" text)

(* --- walk charging ------------------------------------------------------- *)

let test_walks_price_tlb_misses () =
  let _, r_off = run_app "imatmult" in
  let _, r = run_app ~pt_mode:Pt.Shared "imatmult" in
  let p = pt_section r in
  Alcotest.(check string) "mode rendered" "shared" p.Report.pt_mode;
  (* Walk charges shift the clock, which can shift migration timing and
     with it shootdown-induced misses — but every miss this run took paid
     for exactly one walk. *)
  Alcotest.(check int) "one walk per software-TLB miss" r.Report.tlb_misses
    p.Report.walks;
  Alcotest.(check bool) "walks happened" true (p.Report.walks > 0);
  Alcotest.(check bool) "each walk reads at least the root" true
    (p.Report.walk_levels >= p.Report.walks);
  Alcotest.(check bool) "walk latency charged" true (p.Report.walk_ns > 0.);
  (* Walks are kernel work: the run must be slower than the free one. *)
  Alcotest.(check bool) "system time grew" true
    (r.Report.total_system_ns > r_off.Report.total_system_ns);
  (* The per-CPU TLB split the section carries sums to the totals. *)
  let hits = Array.fold_left (fun a (h, _, _) -> a + h) 0 p.Report.tlb_per_cpu in
  let misses = Array.fold_left (fun a (_, m, _) -> a + m) 0 p.Report.tlb_per_cpu in
  Alcotest.(check int) "per-cpu hits sum" r.Report.tlb_hits hits;
  Alcotest.(check int) "per-cpu misses sum" r.Report.tlb_misses misses

let test_off_report_unchanged_by_other_modes_existing () =
  (* The pt-mode axis must not leak into mode-off reports: running other
     modes first (same process, fresh systems) changes nothing. *)
  let _, r1 = run_app "primes3" in
  let _, _ = run_app ~pt_mode:(Pt.Replicated None) "primes3" in
  let _, r2 = run_app "primes3" in
  Alcotest.(check string) "byte-identical text report"
    (Format.asprintf "%a" Report.pp r1)
    (Format.asprintf "%a" Report.pp r2)

(* --- table frames in the pools ------------------------------------------- *)

let test_table_frames_census () =
  let sys, r = run_app ~pt_mode:Pt.Shared ~paranoid:true "imatmult" in
  Alcotest.(check int) "paranoid sweep clean" 0 (violations_of r);
  let pt = pt_of sys in
  let s = Pt.stats pt in
  let frames = System.pmap_manager sys |> Pmap_manager.frames in
  Array.iteri
    (fun node n ->
      Alcotest.(check int)
        (Printf.sprintf "pt_in_use on node %d" node)
        n
        (Frame_table.pt_in_use frames ~node))
    s.Pt.pt_frames;
  let total = Array.fold_left ( + ) 0 s.Pt.pt_frames in
  Alcotest.(check int) "table_frames matches the census"
    (total + s.Pt.global_pt_pages)
    (List.length (Pt.table_frames pt) + s.Pt.global_pt_pages);
  Alcotest.(check bool) "tables are physically backed" true
    (total + s.Pt.global_pt_pages > 0)

let test_pt_pages_fall_back_to_global () =
  (* Starve the pools: with one local frame per CPU the radix path pages
     cannot all live locally, so allocation degrades to the shared level
     instead of failing. *)
  let _, r =
    run_app ~pt_mode:Pt.Shared ~paranoid:true
      ~config_tweak:(fun c -> { c with Config.local_pages_per_cpu = 1 })
      "imatmult"
  in
  Alcotest.(check int) "paranoid sweep clean" 0 (violations_of r);
  let p = pt_section r in
  Alcotest.(check bool) "some table pages went global" true
    (p.Report.global_pt_pages > 0)

(* --- replication --------------------------------------------------------- *)

let test_eager_replication () =
  let sys, r = run_app ~pt_mode:(Pt.Replicated None) ~paranoid:true "imatmult" in
  Alcotest.(check int) "paranoid sweep clean" 0 (violations_of r);
  let p = pt_section r in
  Alcotest.(check bool) "replicas built" true (p.Report.replicas_built > 0);
  Alcotest.(check bool) "installs propagated" true (p.Report.pte_updates > 0);
  let pt = pt_of sys in
  List.iter
    (fun pmap ->
      let nodes = Pt.replica_nodes pt ~pmap in
      Alcotest.(check int)
        (Printf.sprintf "pmap %d replicated on every other node" pmap)
        3 (List.length nodes);
      (* Every replica is an exact image of the master. *)
      let master = List.sort compare (Pt.master_ptes pt ~pmap) in
      List.iter
        (fun node ->
          Alcotest.(check bool)
            (Printf.sprintf "pmap %d node %d replica coherent" pmap node)
            true
            (List.sort compare (Pt.replica_ptes pt ~pmap ~node) = master))
        nodes)
    (Pt.pmaps pt)

let test_on_demand_replication_capped () =
  let sys, r = run_app ~pt_mode:(Pt.Replicated (Some 1)) ~paranoid:true "imatmult" in
  Alcotest.(check int) "paranoid sweep clean" 0 (violations_of r);
  let pt = pt_of sys in
  List.iter
    (fun pmap ->
      Alcotest.(check bool)
        (Printf.sprintf "pmap %d at most 1 replica" pmap)
        true
        (List.length (Pt.replica_nodes pt ~pmap) <= 1))
    (Pt.pmaps pt);
  let p = pt_section r in
  Alcotest.(check bool) "walks still charged" true (p.Report.walks > 0)

let test_node_offline_drops_replicas () =
  let _, r =
    run_app ~pt_mode:(Pt.Replicated None) ~paranoid:true
      ~faults:(parse_plan "node-offline:1@5") "imatmult"
  in
  Alcotest.(check int) "zero violations through the drill" 0 (violations_of r);
  let p = pt_section r in
  Alcotest.(check bool) "dying node's replicas dropped" true
    (p.Report.replicas_dropped > 0);
  Alcotest.(check int) "no table frames left on the dead node" 0
    p.Report.pt_frames.(1)

(* --- the stale-replica regression ---------------------------------------- *)

let test_stale_replica_caught () =
  (* Plant the bug shootdown-aware PTE management exists to prevent; the
     sweep must name it. This is the ISSUE's acceptance regression. *)
  let sys, r = run_app ~pt_mode:(Pt.Replicated None) ~paranoid:true "imatmult" in
  Alcotest.(check int) "clean before the corruption" 0 (violations_of r);
  let pt = pt_of sys in
  let lpage =
    (* Corrupt a page that is certainly in some replica: take any
       master PTE of the first pmap. *)
    match Pt.pmaps pt with
    | pmap :: _ -> (
        match Pt.master_ptes pt ~pmap with
        | (_, pte) :: _ -> pte.Pt.pte_lpage
        | [] -> Alcotest.fail "no master PTEs to corrupt")
    | [] -> Alcotest.fail "no pmaps materialised"
  in
  (match Pt.corrupt_replica pt ~lpage with
  | Some _ -> ()
  | None -> Alcotest.failf "no replica PTE found for lpage %d" lpage);
  let report = System.audit sys in
  let stale =
    List.filter
      (fun v -> contains ~sub:"STALE replica PTE" v)
      report.Numa_core.Invariant.violations
  in
  Alcotest.(check bool) "sweep names the stale replica PTE" true (stale <> []);
  Alcotest.(check bool) "pt relation was actually swept" true
    (report.Numa_core.Invariant.pt_checked > 0)

let test_stale_pte_fault_plan () =
  (* End to end through the injector: the planted corruption surfaces as
     report violations; on a mode without replicas it is a no-op. *)
  let _, r =
    run_app ~pt_mode:(Pt.Replicated None) ~paranoid:true
      ~faults:(parse_plan "stale-pte:0@50") "imatmult"
  in
  Alcotest.(check bool) "violations reported" true (violations_of r > 0);
  (match r.Report.robustness with
  | Some rb ->
      Alcotest.(check bool) "first violation names the stale PTE" true
        (List.exists (fun v -> contains ~sub:"STALE replica PTE" v)
           rb.Report.first_violations)
  | None -> Alcotest.fail "expected robustness");
  let _, r_shared =
    run_app ~pt_mode:Pt.Shared ~paranoid:true
      ~faults:(parse_plan "stale-pte:0@50") "imatmult"
  in
  Alcotest.(check int) "no replicas, nothing to corrupt" 0 (violations_of r_shared)

(* --- conservation -------------------------------------------------------- *)

let test_conservation_under_replication () =
  List.iter
    (fun pt_mode ->
      let sys, r = run_app ~pt_mode ~profiling:true "imatmult" in
      let p = Option.get (System.profile sys) in
      let engine = System.engine sys in
      let n_cpus = (System.config sys).Config.n_cpus in
      let clocks = Array.init n_cpus (fun cpu -> Engine.clock_ns engine ~cpu) in
      (match
         Profile.check_conservation p ~clocks ~elapsed_ns:(Engine.elapsed_ns engine)
       with
      | Ok () -> ()
      | Error msg ->
          Alcotest.failf "%s: conservation violated: %s" (Pt.mode_to_string pt_mode)
            msg);
      (* The new categories actually carry the charges. *)
      let snap = Option.get r.Report.profile in
      let ns_of label =
        (* Kernel categories are children of the context nodes. *)
        List.fold_left
          (fun acc (n : Profile.tree_node) ->
            List.fold_left
              (fun a (l, ns) -> if l = label then a +. ns else a)
              acc n.Profile.children)
          0. snap.Profile.categories
      in
      Alcotest.(check bool)
        (Pt.mode_to_string pt_mode ^ " pt_walk charged")
        true (ns_of "pt_walk" > 0.))
    [ Pt.Shared; Pt.Replicated None ]

(* --- pressure interaction (satellite: squeeze + pages + replicated) ------ *)

let test_squeeze_under_replication () =
  (* A shrunk logical-page pool (the --pages path) plus a frame squeeze,
     under eager replication: the pager and the table allocator now fight
     for the same pools, and the paging free-list/census invariants must
     hold throughout. *)
  let _, r =
    run_app ~pt_mode:(Pt.Replicated None) ~paranoid:true
      ~faults:(parse_plan "frame-squeeze:0:0.5@5")
      ~config_tweak:(fun c -> { c with Config.global_pages = 12 })
      ~scale:0.1 "imatmult"
  in
  Alcotest.(check int) "zero violations under squeeze + pressure" 0 (violations_of r);
  (match r.Report.paging with
  | Some pg -> Alcotest.(check bool) "the run actually paged" true (pg.Report.evictions > 0)
  | None -> Alcotest.fail "expected paging activity under a 12-page pool");
  let p = pt_section r in
  Alcotest.(check bool) "tables stayed materialised" true
    (Array.fold_left ( + ) 0 p.Report.pt_frames + p.Report.global_pt_pages > 0)

(* --- explain-page sees walks (satellite: timeline events) ----------------- *)

let test_explain_page_has_pt_events () =
  let app = Option.get (Numa_apps.Registry.find "imatmult") in
  let config = Config.ace ~n_cpus:4 () in
  let obs = Numa_obs.Hub.create () in
  let audit = Numa_obs.Page_audit.create ~lpage:0 in
  Numa_obs.Page_audit.attach audit obs;
  let sys = System.create ~obs ~pt_mode:(Pt.Replicated None) ~config () in
  app.App_sig.setup sys { App_sig.nthreads = 4; scale = 0.05; seed = 42L };
  ignore (System.run sys);
  let story = Numa_obs.Page_audit.explain audit in
  Alcotest.(check bool) "timeline shows page-table walks" true
    (contains ~sub:"page-table walk" story)

(* --- determinism --------------------------------------------------------- *)

let test_replicated_deterministic () =
  let once () =
    let _, r = run_app ~pt_mode:(Pt.Replicated None) ~paranoid:true "primes3" in
    Format.asprintf "%a" Report.pp r
  in
  Alcotest.(check string) "same bytes twice" (once ()) (once ())

let suite =
  [
    Alcotest.test_case "pt-mode parser round-trips and rejects" `Quick test_mode_parse;
    Alcotest.test_case "pt-mode none attaches nothing" `Quick test_off_attaches_nothing;
    Alcotest.test_case "every TLB miss pays a charged walk" `Quick
      test_walks_price_tlb_misses;
    Alcotest.test_case "mode-off reports unaffected by other runs" `Quick
      test_off_report_unchanged_by_other_modes_existing;
    Alcotest.test_case "table frames tracked in the per-node pools" `Quick
      test_table_frames_census;
    Alcotest.test_case "starved pools send table pages global" `Quick
      test_pt_pages_fall_back_to_global;
    Alcotest.test_case "eager replication mirrors the master" `Quick
      test_eager_replication;
    Alcotest.test_case "on-demand replication respects its cap" `Quick
      test_on_demand_replication_capped;
    Alcotest.test_case "node offline drops and evacuates tables" `Quick
      test_node_offline_drops_replicas;
    Alcotest.test_case "invariant sweep catches a stale replica PTE" `Quick
      test_stale_replica_caught;
    Alcotest.test_case "stale-pte fault plan end to end" `Quick
      test_stale_pte_fault_plan;
    Alcotest.test_case "conservation holds with walk/shootdown charges" `Quick
      test_conservation_under_replication;
    Alcotest.test_case "squeeze + small pool + replication stays coherent" `Quick
      test_squeeze_under_replication;
    Alcotest.test_case "explain-page timeline includes walks" `Quick
      test_explain_page_has_pt_events;
    Alcotest.test_case "replicated runs are deterministic" `Quick
      test_replicated_deterministic;
  ]
