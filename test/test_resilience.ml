(* The resilient serving tier: cancellable virtual-time deadline timers,
   the CLI spec parsers' error paths, the serve app's resilience section
   end to end (accounting identities, request conservation under chaos,
   breaker shedding, shard failover), and the resilience sweep's
   acceptance gate. *)

module Engine = Numa_sim.Engine
module Api = Numa_sim.Api
module Memory_iface = Numa_sim.Memory_iface
module Config = Numa_machine.Config
module Plan = Numa_faults.Plan
module Report = Numa_system.Report
module Runner = Numa_metrics.Runner
module Serve = Numa_apps.Serve
module R = Numa_apps.Resilience

(* --- with_deadline: the cancellable timer ------------------------------- *)

(* Timers fire at chunk boundaries; a fine compute slice makes the
   boundary land exactly on the deadline so the timings below are crisp. *)
let engine () =
  let machine = Config.ace ~n_cpus:2 () in
  let memory = Memory_iface.flat machine in
  Engine.create
    { (Engine.default_config ~n_cpus:2) with Engine.compute_slice_ns = 0.25e6 }
    ~memory ~scheduler:Engine.Affinity

let test_with_deadline_cancels_long_compute () =
  let e = engine () in
  let result = ref (Some 0) in
  ignore
    (Engine.spawn e ~cpu:0 ~name:"t" (fun () ->
         result :=
           Api.with_deadline ~until_ns:1e6 (fun () ->
               Api.compute 5e6;
               1)));
  Engine.run e;
  Alcotest.(check (option int)) "cancelled attempt returns None" None !result;
  (* The cancel fires at the deadline instant, not when the compute would
     have finished. *)
  Alcotest.(check (float 1.)) "time stops at the deadline" 1e6 (Engine.elapsed_ns e)

let test_with_deadline_in_time_returns_some () =
  let e = engine () in
  let result = ref None in
  ignore
    (Engine.spawn e ~cpu:0 ~name:"t" (fun () ->
         result :=
           Api.with_deadline ~until_ns:5e6 (fun () ->
               Api.compute 1e6;
               42)));
  Engine.run e;
  Alcotest.(check (option int)) "in-time attempt returns its value" (Some 42) !result;
  Alcotest.(check (float 1.)) "no time charged beyond the work" 1e6
    (Engine.elapsed_ns e)

let test_with_deadline_nests () =
  let e = engine () in
  let inner = ref (Some 0) and outer = ref None in
  ignore
    (Engine.spawn e ~cpu:0 ~name:"t" (fun () ->
         outer :=
           Api.with_deadline ~until_ns:10e6 (fun () ->
               inner :=
                 Api.with_deadline ~until_ns:1e6 (fun () ->
                     Api.compute 5e6;
                     1);
               Api.compute 1e6;
               2)));
  Engine.run e;
  (* The inner timer fires and unwinds only its own scope; the outer
     attempt keeps running and completes. *)
  Alcotest.(check (option int)) "inner timer cancelled its scope" None !inner;
  Alcotest.(check (option int)) "outer scope survived" (Some 2) !outer;
  Alcotest.(check (float 1.)) "inner cancel at 1ms, then 1ms more work" 2e6
    (Engine.elapsed_ns e)

let test_with_deadline_wakes_parked_sleeper () =
  let e = engine () in
  let result = ref (Some 0) in
  ignore
    (Engine.spawn e ~cpu:0 ~name:"t" (fun () ->
         result :=
           Api.with_deadline ~until_ns:2e6 (fun () ->
               (* Parked far past the deadline: the timer must wake and
                  cancel the sleeper at its own instant. *)
               Api.sleep_until ~ns:50e6;
               1);
         (* The body resumes right at the cancel; work from here is charged
            from the deadline instant, not the abandoned sleep target. *)
         Api.compute 1e6));
  Engine.run e;
  Alcotest.(check (option int)) "parked attempt cancelled" None !result;
  Alcotest.(check (float 1.)) "only the post-cancel compute is charged" 1e6
    (Engine.user_ns e ~cpu:0);
  Alcotest.(check (float 1.)) "woken at the deadline, not the sleep target" 3e6
    (Engine.elapsed_ns e)

(* --- spec parsers' error paths ------------------------------------------ *)

let contains ~needle hay =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let check_error ~what ~needle = function
  | Ok _ -> Alcotest.failf "%s should not parse" what
  | Error msg ->
      if not (contains ~needle msg) then
        Alcotest.failf "%s error %S does not name %S" what msg needle

let test_retry_spec_errors () =
  List.iter
    (fun (s, needle) -> check_error ~what:("retry " ^ s) ~needle (R.retry_of_string s))
    [
      ("banana", "ATTEMPTS:BASE_MS:MAX_MS:JITTER");
      ("3:0.2:2", "ATTEMPTS:BASE_MS:MAX_MS:JITTER");
      ("0:0.2:2:0.5", "attempts");
      ("3:-1:2:0.5", "base backoff");
      ("3:0.2:x:0.5", "max backoff");
      ("3:0.2:2:1.5", "jitter");
    ]

let test_hedge_spec_errors () =
  List.iter
    (fun (s, needle) -> check_error ~what:("hedge " ^ s) ~needle (R.hedge_of_string s))
    [ ("fast", "factor"); ("0", "factor"); ("-2", "factor") ]

let test_breaker_spec_errors () =
  List.iter
    (fun (s, needle) ->
      check_error ~what:("breaker " ^ s) ~needle (R.breaker_of_string s))
    [
      ("oops", "FAILURES:COOLDOWN_MS");
      ("5", "FAILURES:COOLDOWN_MS");
      ("0:10", "failure threshold");
      ("5:0", "cooldown");
    ]

let test_spec_roundtrip () =
  (match R.retry_of_string "3:0.2:2:0.5" with
  | Error e -> Alcotest.fail e
  | Ok r ->
      Alcotest.(check string) "retry round-trips" "3:0.2:2:0.5" (R.retry_to_string r));
  (match R.hedge_of_string "1.5" with
  | Error e -> Alcotest.fail e
  | Ok h -> Alcotest.(check string) "hedge round-trips" "1.5" (R.hedge_to_string h));
  match R.breaker_of_string "8:10" with
  | Error e -> Alcotest.fail e
  | Ok b -> Alcotest.(check string) "breaker round-trips" "8:10" (R.breaker_to_string b)

(* --- the serve app's resilience section --------------------------------- *)

let arrival () = Numa_util.Dist.arrival ~rate_per_s:11_000. ~burst:1. ()

let res_spec =
  {
    Runner.default_spec with
    Runner.scale = 0.05;
    n_cpus = 4;
    nthreads = 4;
    paranoid = true;
  }

let plan s =
  match Plan.of_string s with
  | Ok p -> p
  | Error e -> Alcotest.failf "plan %S failed to parse: %s" s e

let run_res ?faults cfg =
  let spec =
    match faults with
    | None -> res_spec
    | Some f -> { res_spec with Runner.faults = plan f }
  in
  Runner.run (Serve.make ~arrival:(arrival ()) ~resilience:cfg ()) spec

let resilience_of r =
  match r.Report.resilience with
  | Some res -> res
  | None -> Alcotest.fail "resilient run produced no resilience section"

(* Every arrived request resolves to exactly one outcome; attempt ladders
   are monotone; the SLO percentage is what the counters say. *)
let check_identities res =
  Alcotest.(check int) "outcomes partition the arrivals" res.Report.arrived
    (res.Report.served_in_deadline + res.Report.timed_out + res.Report.shed);
  Alcotest.(check int) "no conservation violations" 0
    res.Report.conservation_violations;
  let att = res.Report.attempts_started in
  (* A request picked up already past its deadline starts no attempt, so
     the first rung is bounded by, not equal to, the unshed arrivals. *)
  Alcotest.(check bool) "first attempts <= arrived - shed" true
    (Array.length att = 0 || att.(0) <= res.Report.arrived - res.Report.shed);
  let expected =
    if res.Report.arrived = 0 then 0.
    else 100. *. float_of_int res.Report.served_in_deadline /. float_of_int res.Report.arrived
  in
  Alcotest.(check (float 1e-9)) "slo_pct consistent" expected res.Report.slo_pct

let test_plain_run_has_no_resilience_section () =
  let r = Runner.run (Serve.make ~arrival:(arrival ()) ()) res_spec in
  Alcotest.(check bool) "section absent without a config" true
    (r.Report.resilience = None)

let test_observe_only_section () =
  let r = run_res (R.make ~deadline_us:1_500 ()) in
  let res = resilience_of r in
  check_identities res;
  (* No mechanisms: nothing shed, hedged or retried; the serving path is
     the plain tier's with outcomes classified against the deadline. *)
  Alcotest.(check int) "nothing shed" 0 res.Report.shed;
  Alcotest.(check int) "no hedges" 0 res.Report.hedges;
  Alcotest.(check int) "single attempt ladder" 1
    (Array.length res.Report.attempts_started);
  Alcotest.(check int) "observe-only serves every arrival once"
    res.Report.arrived res.Report.attempts_started.(0);
  Alcotest.(check bool) "all requests arrived" true (res.Report.arrived > 0);
  let s =
    match r.Report.serving with
    | Some s -> s
    | None -> Alcotest.fail "no serving section"
  in
  Alcotest.(check int) "resilience sees every served request" s.Report.requests
    res.Report.arrived

let full_config =
  R.make ~deadline_us:1_500 ~retry:R.default_retry ~hedge:R.default_hedge
    ~breaker:R.default_breaker ()

let test_resilient_run_deterministic () =
  let once () =
    Numa_obs.Json.to_string
      (Report.to_json (run_res ~faults:"node-offline:1@110,node-online:1@160" full_config))
  in
  Alcotest.(check string) "byte-identical resilient reports" (once ()) (once ())

let test_conservation_under_chaos () =
  (* Paranoid node outage + recovery: the ledger must still balance for
     every mechanism mix. *)
  List.iter
    (fun cfg ->
      let r = run_res ~faults:"node-offline:1@110,node-online:1@160" cfg in
      let res = resilience_of r in
      check_identities res;
      (match r.Report.robustness with
      | None -> Alcotest.fail "faulted paranoid run lost its robustness section"
      | Some rb ->
          Alcotest.(check int) "no invariant violations" 0
            rb.Report.invariant_violations))
    [
      R.make ~deadline_us:1_500 ();
      R.make ~deadline_us:1_500 ~retry:R.default_retry ();
      full_config;
    ]

let test_breaker_sheds_on_starved_shard () =
  (* Node 1's frame pool squeezed to zero before warmup: shard 1 serves
     out of global memory for the whole run, slow enough that its breaker
     must trip and shed. *)
  let cfg =
    R.make ~deadline_us:1_500 ~retry:R.default_retry ~breaker:R.default_breaker ()
  in
  let res = resilience_of (run_res ~faults:"frame-squeeze:1:0@0" cfg) in
  check_identities res;
  Alcotest.(check bool) "breaker opened" true (res.Report.breaker_opens > 0);
  Alcotest.(check bool) "requests shed" true (res.Report.shed > 0)

let test_failover_on_node_offline () =
  let res =
    resilience_of
      (run_res ~faults:"node-offline:1@110,node-online:1@160" full_config)
  in
  check_identities res;
  Alcotest.(check bool) "shard workers re-homed off the dead node" true
    (res.Report.shard_failovers > 0);
  Alcotest.(check bool) "retries happened" true
    (Array.length res.Report.attempts_started > 1
    && res.Report.attempts_started.(1) > 0)

(* --- the sweep and its acceptance gate ---------------------------------- *)

let test_sweep_gate_and_determinism () =
  let module RS = Numa_metrics.Resilience in
  let rows = RS.run ~jobs:2 () in
  Alcotest.(check int) "4 scenarios" 4 (List.length rows);
  List.iter
    (fun row ->
      Alcotest.(check int) (row.RS.name ^ " has the full slate") 4
        (List.length row.RS.cells))
    rows;
  Alcotest.(check int) "no violations anywhere in the grid" 0
    (RS.total_violations rows);
  let gate = RS.node_offline_gate rows in
  if not (gate.RS.ratio >= 2.) then
    Alcotest.failf
      "node-offline gate: retry+breaker %.0f vs no-resilience %.0f is only %.2fx \
       (need >= 2x)"
      gate.RS.retry_breaker_goodput gate.RS.no_resilience_goodput gate.RS.ratio;
  (* Same grid at a different fan-out: byte-identical artifact. *)
  let json rows = Numa_obs.Json.to_string (RS.to_json rows) in
  Alcotest.(check string) "jobs do not change the artifact" (json rows)
    (json (RS.run ~jobs:1 ()))

let suite =
  [
    Alcotest.test_case "with_deadline cancels long compute" `Quick
      test_with_deadline_cancels_long_compute;
    Alcotest.test_case "with_deadline returns Some in time" `Quick
      test_with_deadline_in_time_returns_some;
    Alcotest.test_case "with_deadline nests" `Quick test_with_deadline_nests;
    Alcotest.test_case "with_deadline wakes parked sleeper" `Quick
      test_with_deadline_wakes_parked_sleeper;
    Alcotest.test_case "retry spec errors name the field" `Quick
      test_retry_spec_errors;
    Alcotest.test_case "hedge spec errors name the field" `Quick
      test_hedge_spec_errors;
    Alcotest.test_case "breaker spec errors name the field" `Quick
      test_breaker_spec_errors;
    Alcotest.test_case "spec round-trips" `Quick test_spec_roundtrip;
    Alcotest.test_case "plain run has no resilience section" `Quick
      test_plain_run_has_no_resilience_section;
    Alcotest.test_case "observe-only section and identities" `Quick
      test_observe_only_section;
    Alcotest.test_case "resilient run deterministic" `Quick
      test_resilient_run_deterministic;
    Alcotest.test_case "conservation under chaos" `Quick
      test_conservation_under_chaos;
    Alcotest.test_case "breaker sheds on a starved shard" `Quick
      test_breaker_sheds_on_starved_shard;
    Alcotest.test_case "failover on node offline" `Quick
      test_failover_on_node_offline;
    Alcotest.test_case "sweep gate and determinism" `Slow
      test_sweep_gate_and_determinism;
  ]
