(* Integration tests for the application programs: each runs at small
   scale on the full stack and must exhibit its characteristic placement
   behaviour. *)

module System = Numa_system.System
module Report = Numa_system.Report
module Runner = Numa_metrics.Runner
module App_sig = Numa_apps.App_sig

let small_spec ?(scale = 0.05) ?(n_cpus = 4) () =
  { Runner.default_spec with Runner.scale; n_cpus; nthreads = n_cpus }

let run ?scale ?policy name =
  let app = Option.get (Numa_apps.Registry.find name) in
  let spec = small_spec ?scale () in
  let spec = match policy with None -> spec | Some policy -> { spec with Runner.policy } in
  Runner.run app spec

let test_registry_complete () =
  Alcotest.(check int) "8 table-3 apps" 8 (List.length Numa_apps.Registry.table3);
  Alcotest.(check int) "5 table-4 apps" 5 (List.length Numa_apps.Registry.table4);
  Alcotest.(check bool) "find works" true (Numa_apps.Registry.find "fft" <> None);
  Alcotest.(check bool) "unknown rejected" true (Numa_apps.Registry.find "nope" = None);
  (* Names are unique. *)
  let names = Numa_apps.Registry.names () in
  Alcotest.(check int) "unique names" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_every_app_runs_and_keeps_invariants () =
  List.iter
    (fun (app : App_sig.t) ->
      let spec = small_spec ~scale:0.02 () in
      let config = Numa_machine.Config.ace ~n_cpus:spec.Runner.n_cpus () in
      let sys = System.create ~config () in
      app.App_sig.setup sys
        { App_sig.nthreads = spec.Runner.nthreads; scale = spec.Runner.scale; seed = 1L };
      let report = System.run sys in
      (match System.check_invariants sys with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s: invariant: %s" app.App_sig.name msg);
      Alcotest.(check bool)
        (app.App_sig.name ^ " did some work")
        true
        (report.Report.total_user_ns > 0.))
    Numa_apps.Registry.all

let test_work_independent_of_thread_count () =
  (* The evaluation method requires the same total work regardless of the
     number of threads (section 3.1): compare the reference counts of a
     1-thread and a 4-thread run. Allow a small tolerance for
     synchronisation traffic. *)
  List.iter
    (fun name ->
      let app = Option.get (Numa_apps.Registry.find name) in
      let refs_of nthreads n_cpus =
        let spec = { (small_spec ~scale:0.03 ~n_cpus ()) with Runner.nthreads } in
        let r = Runner.run app spec in
        Report.total_refs r.Report.refs_all
      in
      let one = refs_of 1 1 and four = refs_of 4 4 in
      let ratio = float_of_int four /. float_of_int (max one 1) in
      if ratio < 0.9 || ratio > 1.35 then
        Alcotest.failf "%s: work varies with threads (1->%d refs, 4->%d refs)" name one
          four)
    [ "parmult"; "imatmult"; "primes1"; "primes3"; "fft"; "plytrace" ]

let test_gfetch_is_global_and_fetch_only () =
  let r = run "gfetch" ~scale:0.5 in
  Alcotest.(check bool) "alpha ~ 0" true (r.Report.alpha_counted < 0.15);
  let c = r.Report.refs_all in
  Alcotest.(check bool) "fetch dominated" true
    (c.Report.global_reads + c.Report.local_reads
    > 10 * (c.Report.global_writes + c.Report.local_writes))

let test_parmult_barely_references () =
  let r = run "parmult" in
  let refs = Report.total_refs r.Report.refs_all in
  (* Virtually all time is computation. *)
  let ref_time_ns = float_of_int refs *. 1500. in
  Alcotest.(check bool) "references negligible" true
    (ref_time_ns < 0.05 *. r.Report.total_user_ns)

let test_imatmult_replicates_inputs () =
  let r = run "imatmult" ~scale:0.05 in
  (* Inputs A and B must be overwhelmingly local (replicated) reads. *)
  List.iter
    (fun input ->
      match List.assoc_opt input r.Report.per_region with
      | None -> Alcotest.failf "region %s missing" input
      | Some c ->
          let local = c.Report.local_reads and global = c.Report.global_reads in
          Alcotest.(check bool)
            (input ^ " mostly local")
            true
            (float_of_int local > 0.9 *. float_of_int (local + global)))
    [ "imatmult.A"; "imatmult.B" ];
  (* The output matrix is writably shared: it must have global writes. *)
  match List.assoc_opt "imatmult.C" r.Report.per_region with
  | None -> Alcotest.fail "imatmult.C missing"
  | Some c -> Alcotest.(check bool) "C went global" true (c.Report.global_writes > 0)

let test_primes_apps_agree_on_primes () =
  (* All three prime finders are driven by the same ground truth; check
     the shared count logic via primes_upto directly. *)
  let p = Numa_apps.Primes_util.primes_upto 3000 in
  Alcotest.(check int) "pi(3000)" 430 (Array.length p)

let test_primes1_stack_dominated () =
  let r = run "primes1" ~scale:0.05 in
  let stacks =
    List.filter
      (fun (name, _) -> Filename.check_suffix name ".stack")
      r.Report.per_region
  in
  let stack_refs =
    List.fold_left (fun acc (_, c) -> acc + Report.total_refs c) 0 stacks
  in
  let total = Report.total_refs r.Report.refs_all in
  Alcotest.(check bool) "most references are stack" true
    (float_of_int stack_refs > 0.8 *. float_of_int total)

let test_primes2_variants_alpha_gap () =
  let seg = run "primes2" ~scale:0.3 in
  let unseg = run "primes2-unseg" ~scale:0.3 in
  Alcotest.(check bool) "segregated nearly all local" true
    (seg.Report.alpha_counted > 0.95);
  Alcotest.(check bool) "unsegregated around 2/3 local" true
    (unseg.Report.alpha_counted > 0.5 && unseg.Report.alpha_counted < 0.85)

let test_primes3_pins_the_sieve () =
  let r = run "primes3" ~scale:0.05 in
  Alcotest.(check bool) "lots of pinned pages" true (r.Report.pins > 3);
  Alcotest.(check bool) "low alpha" true (r.Report.alpha_counted < 0.5);
  (* The pragma variant must make far fewer page moves. *)
  let rp = run "primes3-pragma" ~scale:0.05 in
  Alcotest.(check bool) "pragma cuts moves" true
    (rp.Report.numa_moves < r.Report.numa_moves)

let test_fft_private_dominated () =
  let r = run "fft" ~scale:0.02 in
  Alcotest.(check bool) "~95% local (private workspaces)" true
    (r.Report.alpha_counted > 0.9);
  (* The shared array must end up written by several CPUs (column phase). *)
  match List.assoc_opt "fft.data" r.Report.per_region with
  | None -> Alcotest.fail "fft.data missing"
  | Some c -> Alcotest.(check bool) "shared array written globally" true (c.Report.global_writes > 0)

let test_plytrace_scene_replicated () =
  let r = run "plytrace" ~scale:0.05 in
  (match List.assoc_opt "plytrace.polygons" r.Report.per_region with
  | None -> Alcotest.fail "polygons missing"
  | Some c ->
      Alcotest.(check bool) "scene reads mostly local" true
        (float_of_int c.Report.local_reads
        > 0.8 *. float_of_int (c.Report.local_reads + c.Report.global_reads)));
  Alcotest.(check bool) "high alpha overall" true (r.Report.alpha_counted > 0.85)

let test_syscall_mix_stacks_poisoned_only_with_master () =
  let app = Option.get (Numa_apps.Registry.find "syscall-mix") in
  let run_master unix_master =
    Runner.run app { (small_spec ~scale:0.1 ()) with Runner.unix_master }
  in
  let with_master = run_master true and without = run_master false in
  let stack_globals (r : Report.t) =
    List.fold_left
      (fun acc (name, c) ->
        if Filename.check_suffix name ".stack" then
          acc + c.Report.global_reads + c.Report.global_writes
        else acc)
      0 r.Report.per_region
  in
  Alcotest.(check bool) "master poisons stacks" true (stack_globals with_master > 0);
  Alcotest.(check int) "fixed kernel leaves stacks local" 0 (stack_globals without)

let test_lopsided_homed_uses_remote () =
  let plain = run "lopsided" ~scale:0.2 in
  let homed = run "lopsided-homed" ~scale:0.2 in
  let remote (r : Report.t) =
    r.Report.refs_all.Report.remote_reads + r.Report.refs_all.Report.remote_writes
  in
  Alcotest.(check int) "normal policy makes no remote refs" 0 (remote plain);
  Alcotest.(check bool) "homed buffer is read remotely" true (remote homed > 0);
  (* The hot producer (cpu 0) runs faster when its buffer is home. *)
  Alcotest.(check bool) "producer faster when homed" true
    (homed.Report.user_ns_per_cpu.(0) < plain.Report.user_ns_per_cpu.(0))

let test_rebalance_page_migration_prevents_pinning () =
  let faults = run "rebalance" ~scale:1.0 in
  let kernel = run "rebalance-migrate" ~scale:1.0 in
  Alcotest.(check bool) "fault-driven hops count moves" true (faults.Report.numa_moves > 0);
  Alcotest.(check bool) "fault-driven hops pin private pages" true (faults.Report.pins > 0);
  Alcotest.(check int) "kernel migration counts no moves" 0 kernel.Report.numa_moves;
  Alcotest.(check int) "kernel migration pins nothing" 0 kernel.Report.pins;
  Alcotest.(check bool) "kernel migration keeps everything local" true
    (kernel.Report.alpha_counted > 0.99);
  Alcotest.(check bool) "and is faster" true
    (kernel.Report.total_user_ns < faults.Report.total_user_ns)

let test_phased_reconsider_beats_move_limit () =
  let app = Option.get (Numa_apps.Registry.find "phased") in
  let spec = small_spec ~scale:1.0 () in
  let fixed = Runner.run app spec in
  let reconsider =
    Runner.run app
      {
        spec with
        Runner.policy = System.Reconsider { threshold = 4; window_ns = 20e6 };
      }
  in
  Alcotest.(check bool) "reconsideration recovers the private phase" true
    (reconsider.Report.total_user_ns < fixed.Report.total_user_ns)

let suite =
  [
    Alcotest.test_case "registry complete" `Quick test_registry_complete;
    Alcotest.test_case "every app runs, invariants hold" `Slow
      test_every_app_runs_and_keeps_invariants;
    Alcotest.test_case "work independent of threads" `Slow
      test_work_independent_of_thread_count;
    Alcotest.test_case "gfetch global fetch-only" `Quick test_gfetch_is_global_and_fetch_only;
    Alcotest.test_case "parmult barely references" `Quick test_parmult_barely_references;
    Alcotest.test_case "imatmult replicates inputs" `Quick test_imatmult_replicates_inputs;
    Alcotest.test_case "primes ground truth" `Quick test_primes_apps_agree_on_primes;
    Alcotest.test_case "primes1 stack dominated" `Quick test_primes1_stack_dominated;
    Alcotest.test_case "primes2 false-sharing gap" `Quick test_primes2_variants_alpha_gap;
    Alcotest.test_case "primes3 pins the sieve" `Quick test_primes3_pins_the_sieve;
    Alcotest.test_case "fft private dominated" `Quick test_fft_private_dominated;
    Alcotest.test_case "plytrace scene replicated" `Quick test_plytrace_scene_replicated;
    Alcotest.test_case "syscall-mix unix master" `Quick
      test_syscall_mix_stacks_poisoned_only_with_master;
    Alcotest.test_case "lopsided: homed uses remote" `Quick test_lopsided_homed_uses_remote;
    Alcotest.test_case "rebalance: page migration" `Quick
      test_rebalance_page_migration_prevents_pinning;
    Alcotest.test_case "phased: reconsider wins" `Quick
      test_phased_reconsider_beats_move_limit;
  ]
