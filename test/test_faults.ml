(* Fault injection and graceful degradation: plan parsing, the
   deterministic injector, node/link/frame degradation end to end, and the
   protocol invariant checker — plus the CLI-facing parsers' error paths. *)

open Numa_machine
module Plan = Numa_faults.Plan
module Injector = Numa_faults.Injector
module System = Numa_system.System
module Report = Numa_system.Report
module App_sig = Numa_apps.App_sig

let parse_ok s =
  match Plan.of_string s with
  | Ok p -> p
  | Error e -> Alcotest.failf "plan %S failed to parse: %s" s e

(* --- plan parsing ------------------------------------------------------- *)

let test_plan_roundtrip () =
  List.iter
    (fun s ->
      let canonical = Plan.to_string (parse_ok s) in
      Alcotest.(check string) (s ^ " canonical") s canonical;
      Alcotest.(check string)
        (s ^ " reparse stable") canonical
        (Plan.to_string (parse_ok canonical)))
    [
      "node-offline:1@5";
      "node-online:1@7.5";
      "link-degrade:0:1:8@2..10";
      "frame-squeeze:0:0.25@3";
      "spurious-shootdown:0.5";
      "stale-pte:3@5";
      "node-offline:1@5,stale-pte:0@20,node-online:1@40,spurious-shootdown:2";
      "node-offline:1@5,node-online:1@40,spurious-shootdown:2";
    ]

let test_plan_sorts_by_time () =
  (* Entries sort by time; the rate rider always renders last. *)
  Alcotest.(check string) "canonical order"
    "frame-squeeze:0:0.5@2,node-offline:1@9"
    (Plan.to_string (parse_ok "node-offline:1@9,frame-squeeze:0:0.5@2"))

let test_plan_empty () =
  let p = parse_ok "" in
  Alcotest.(check bool) "empty plan" true (Plan.is_empty p);
  Alcotest.(check string) "renders empty" "" (Plan.to_string p)

let test_plan_malformed () =
  List.iter
    (fun s ->
      match Plan.of_string s with
      | Ok _ -> Alcotest.failf "plan %S should not parse" s
      | Error msg ->
          Alcotest.(check bool) (s ^ " has a message") true (String.length msg > 0))
    [
      "node-offline";
      "node-offline:1";
      "node-offline:x@5";
      "node-offline:-1@5";
      "node-online:1@";
      "node-online:1:2@5";
      "link-degrade:0:1:0.5@2..10";
      "link-degrade:0:1:2@5..3";
      "link-degrade:0:1:2@5";
      "link-degrade:0:2@5..9";
      "frame-squeeze:0:1.5@2";
      "frame-squeeze:0@2";
      "spurious-shootdown:-1";
      "spurious-shootdown:";
      "wibble:3@4";
      "stale-pte";
      "stale-pte:1";
      "stale-pte:x@5";
      "stale-pte:1:2@5";
      "node-offline:1@5ms";
      "node-flap:1:0@110..190";
      "node-flap:1:-5@110..190";
      "node-flap:9@1";
      "node-flap:1:40@190..110";
    ]

let test_node_flap_canonicalises () =
  (* The sugar expands to alternating offline/online pairs: offline at the
     start of each period, back online half a period later. *)
  Alcotest.(check string) "flap expands to offline/online pairs"
    "node-offline:1@110,node-online:1@130,node-offline:1@150,node-online:1@170"
    (Plan.to_string (parse_ok "node-flap:1:40@110..190"));
  (* The canonical form reparses to the same schedule. *)
  let canonical = Plan.to_string (parse_ok "node-flap:1:40@110..190") in
  Alcotest.(check string) "canonical form reparses stable" canonical
    (Plan.to_string (parse_ok canonical));
  (* A recovery that would overshoot the window clamps to its end, so the
     node always finishes the window online. *)
  Alcotest.(check string) "last recovery clamps to the window end"
    "node-offline:0@100,node-online:0@130,node-offline:0@160,node-online:0@175"
    (Plan.to_string (parse_ok "node-flap:0:60@100..175"))

let test_plan_validate () =
  let ok plan = Alcotest.(check bool) (plan ^ " valid") true
      (Result.is_ok (Plan.validate (parse_ok plan) ~cpu_nodes:2 ~n_nodes:3))
  and bad plan = Alcotest.(check bool) (plan ^ " rejected") true
      (Result.is_error (Plan.validate (parse_ok plan) ~cpu_nodes:2 ~n_nodes:3))
  in
  ok "node-offline:1@5";
  ok "frame-squeeze:1:0.5@5";
  (* Links may reach the memory-only board (node 2 of 3)... *)
  ok "link-degrade:0:2:4@1..2";
  (* ...but frame pools exist only on CPU nodes. *)
  bad "node-offline:2@5";
  bad "node-online:2@5";
  bad "frame-squeeze:2:0.5@5";
  bad "link-degrade:0:3:4@1..2";
  bad "link-degrade:3:0:4@1..2"

(* --- the injector ------------------------------------------------------- *)

let test_injector_schedule () =
  let plan = parse_ok "node-offline:1@5,frame-squeeze:0:0.5@5,node-online:1@10" in
  let inj = Injector.create plan ~n_pages:8 in
  Alcotest.(check int) "nothing before 5 ms" 0
    (List.length (Injector.due inj ~now:4.9e6));
  (match Injector.due inj ~now:5e6 with
  | [ a; b ] ->
      (match (a.Injector.action, b.Injector.action) with
      | Injector.Set_node_offline 1, Injector.Squeeze_frames { node = 0; _ } -> ()
      | _ -> Alcotest.fail "wrong actions (or wrong written order) at 5 ms")
  | l -> Alcotest.failf "expected 2 actions at 5 ms, got %d" (List.length l));
  Alcotest.(check int) "one action left" 1 (Injector.remaining inj);
  (match Injector.due inj ~now:20e6 with
  | [ { Injector.action = Injector.Set_node_online 1; _ } ] -> ()
  | _ -> Alcotest.fail "expected the node-online action");
  Alcotest.(check int) "drained" 0 (Injector.remaining inj);
  Alcotest.(check int) "three fired in total" 3 (Injector.fired inj)

let test_injector_spurious_deterministic () =
  let draws () =
    let inj = Injector.create (parse_ok "spurious-shootdown:2") ~n_pages:16 in
    List.map
      (fun f ->
        match f.Injector.action with
        | Injector.Spurious_shootdown { lpage } -> (f.Injector.at_ns, lpage)
        | _ -> Alcotest.fail "non-shootdown action in a rate-only plan")
      (Injector.due inj ~now:5e6)
  in
  let a = draws () and b = draws () in
  Alcotest.(check bool) "some shootdowns in 5 ms" true (List.length a > 0);
  Alcotest.(check bool) "pages in range" true
    (List.for_all (fun (_, l) -> l >= 0 && l < 16) a);
  if a <> b then Alcotest.fail "same seed produced different shootdown schedules"

(* --- machine-level degradation primitives ------------------------------- *)

let test_offline_online_pool () =
  let t = Frame_table.create (Config.ace ~n_cpus:2 ~local_pages_per_cpu:4 ()) in
  let f = Option.get (Frame_table.alloc_local t ~node:1) in
  Alcotest.(check bool) "online initially" true (Frame_table.node_online t ~node:1);
  Frame_table.set_node_online t ~node:1 false;
  Alcotest.(check bool) "alloc refused offline" true
    (Frame_table.alloc_local t ~node:1 = None);
  Alcotest.(check int) "capacity reads 0 offline" 0
    (Frame_table.local_capacity t ~node:1);
  (* Frames already handed out stay valid so a drain can still free them. *)
  Frame_table.free_local t f;
  Frame_table.set_node_online t ~node:1 true;
  Alcotest.(check bool) "alloc works again" true
    (Frame_table.alloc_local t ~node:1 <> None)

let test_squeeze_pool () =
  let t = Frame_table.create (Config.ace ~n_cpus:2 ~local_pages_per_cpu:4 ()) in
  let limit = Frame_table.squeeze t ~node:0 ~frac:0.5 in
  Alcotest.(check int) "limit halved" 2 limit;
  Alcotest.(check int) "capacity follows the limit" 2
    (Frame_table.local_capacity t ~node:0);
  let f1 = Option.get (Frame_table.alloc_local t ~node:0) in
  let _f2 = Option.get (Frame_table.alloc_local t ~node:0) in
  Alcotest.(check bool) "third alloc refused" true
    (Frame_table.alloc_local t ~node:0 = None);
  Frame_table.free_local t f1;
  Alcotest.(check bool) "alloc after free ok" true
    (Frame_table.alloc_local t ~node:0 <> None);
  Alcotest.check_raises "frac out of range"
    (Invalid_argument "Frame_table.squeeze: frac not in [0,1]") (fun () ->
      ignore (Frame_table.squeeze t ~node:0 ~frac:1.5));
  (* Rounding is half-up, not truncation: 0.9 of 4 frames is 4, not 3 —
     and frac 1.0 must restore the exact capacity, where int_of_float of
     a product like 4.0 *. 0.9999999 used to lose a frame. *)
  Alcotest.(check int) "0.9 rounds up to 4" 4 (Frame_table.squeeze t ~node:0 ~frac:0.9);
  Alcotest.(check int) "0.6 rounds to 2" 2 (Frame_table.squeeze t ~node:0 ~frac:0.6);
  Alcotest.(check int) "0.85 rounds to 3" 3 (Frame_table.squeeze t ~node:0 ~frac:0.85);
  Alcotest.(check int) "frac 1.0 restores full capacity" 4
    (Frame_table.squeeze t ~node:0 ~frac:1.0);
  Alcotest.(check int) "capacity back to 4" 4 (Frame_table.local_capacity t ~node:0)

let test_bus_degrade () =
  (* Queueing delay: the second burst at the same instant waits for the
     first to drain, so its delay is the first burst's service time — which
     a degraded link stretches by the factor. *)
  let config = { (Config.ace ~n_cpus:2 ()) with Config.bus_words_per_ns = 1.0 } in
  let second_burst_delay ~degrade =
    let bus = Bus.create config in
    if degrade then Bus.set_degrade bus ~src:0 ~dst:1 ~factor:4.;
    ignore (Bus.delay_ns ~src:0 ~dst:1 bus ~now:0. ~words:100);
    Bus.delay_ns ~src:0 ~dst:1 bus ~now:0. ~words:100
  in
  Alcotest.(check (float 1e-9)) "healthy service" 100. (second_burst_delay ~degrade:false);
  Alcotest.(check (float 1e-9)) "degraded 4x" 400. (second_burst_delay ~degrade:true);
  let bus = Bus.create config in
  Bus.set_degrade bus ~src:0 ~dst:1 ~factor:4.;
  Bus.clear_degrade bus ~src:0 ~dst:1;
  ignore (Bus.delay_ns ~src:0 ~dst:1 bus ~now:0. ~words:100);
  Alcotest.(check (float 1e-9)) "clear restores bandwidth" 100.
    (Bus.delay_ns ~src:0 ~dst:1 bus ~now:0. ~words:100)

(* --- end-to-end faulted runs -------------------------------------------- *)

let run_faulted ?(name = "imatmult") ?(n_cpus = 2) ?(scale = 0.05)
    ?(local_pages_per_cpu = 1024) ~plan () =
  let app = Option.get (Numa_apps.Registry.find name) in
  let config = Config.ace ~n_cpus ~local_pages_per_cpu () in
  let sys = System.create ~faults:(parse_ok plan) ~paranoid:true ~config () in
  app.App_sig.setup sys { App_sig.nthreads = n_cpus; scale; seed = 42L };
  (System.run sys, sys)

let robustness (r : Report.t) =
  match r.Report.robustness with
  | Some rb -> rb
  | None -> Alcotest.fail "faulted run lost its robustness section"

let test_node_offline_drains () =
  let r, sys = run_faulted ~plan:"node-offline:1@2" () in
  let rb = robustness r in
  Alcotest.(check int) "one fault injected" 1 rb.Report.faults_injected;
  Alcotest.(check int) "one drain" 1 rb.Report.node_drains;
  Alcotest.(check int) "no violations" 0 rb.Report.invariant_violations;
  Alcotest.(check bool) "audits actually ran" true (rb.Report.invariant_checks > 1);
  let frames = Numa_core.Pmap_manager.frames (System.pmap_manager sys) in
  Alcotest.(check bool) "node 1 is down" false (Frame_table.node_online frames ~node:1);
  Alcotest.(check int) "node 1 fully evacuated" 0
    (Frame_table.local_in_use frames ~node:1);
  (* Degraded, not dead: the run finished, and LOCAL placements simply
     stopped landing on the dead node. *)
  Alcotest.(check bool) "run completed" true (r.Report.elapsed_ns > 0.)

let test_node_offline_rehomes_threads () =
  let r, sys = run_faulted ~plan:"node-offline:1@2" () in
  let rb = robustness r in
  Alcotest.(check bool) "threads moved off the node" true
    (rb.Report.threads_rehomed > 0);
  let engine = System.engine sys in
  for tid = 0 to Numa_sim.Engine.n_threads engine - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "thread %d not homed on the dead node" tid)
      true
      (Numa_sim.Engine.thread_cpu engine ~tid <> 1)
  done

let test_spurious_shootdowns_harmless () =
  let r, _sys = run_faulted ~plan:"spurious-shootdown:2" () in
  let rb = robustness r in
  Alcotest.(check bool) "shootdowns fired" true (rb.Report.spurious_shootdowns > 0);
  Alcotest.(check int) "no violations" 0 rb.Report.invariant_violations

let test_faulted_run_byte_identical () =
  let bytes () =
    let r, _ =
      run_faulted ~plan:"node-offline:1@2,node-online:1@30,spurious-shootdown:1" ()
    in
    Numa_obs.Json.to_string (Report.to_json r)
  in
  Alcotest.(check string) "same plan, same bytes" (bytes ()) (bytes ())

let test_squeeze_forces_fallback () =
  (* Starve the local pools mid-run: allocation failures must degrade to
     GLOBAL (fallbacks counted), never fail the run or corrupt state. *)
  let r, _sys =
    run_faulted ~plan:"frame-squeeze:0:0.02@1,frame-squeeze:1:0.02@1"
      ~local_pages_per_cpu:64 ()
  in
  let rb = robustness r in
  Alcotest.(check int) "two faults" 2 rb.Report.faults_injected;
  Alcotest.(check bool) "fallbacks happened" true (r.Report.numa_local_fallbacks > 0);
  Alcotest.(check bool) "reclaim retried first" true (rb.Report.reclaim_retries > 0);
  Alcotest.(check int) "no violations" 0 rb.Report.invariant_violations

let test_clean_run_has_no_robustness_section () =
  let app = Option.get (Numa_apps.Registry.find "imatmult") in
  let config = Config.ace ~n_cpus:2 () in
  let sys = System.create ~config () in
  app.App_sig.setup sys { App_sig.nthreads = 2; scale = 0.03; seed = 42L };
  let r = System.run sys in
  Alcotest.(check bool) "no robustness section" true (r.Report.robustness = None)

let test_bad_plan_rejected_by_create () =
  let config = Config.ace ~n_cpus:2 () in
  match System.create ~faults:(parse_ok "node-offline:5@1") ~config () with
  | _ -> Alcotest.fail "out-of-range fault plan accepted"
  | exception Invalid_argument _ -> ()

(* --- the invariant checker catches real damage --------------------------- *)

let test_checker_catches_undrained_offline () =
  let open Numa_core in
  let config = Config.ace ~n_cpus:2 ~global_pages:8 () in
  let mgr =
    Pmap_manager.create ~config ~policy:(Policy.move_limit ~n_pages:8 ()) ()
  in
  let ops = Pmap_manager.ops mgr in
  let pmap = ops.Numa_vm.Pmap_intf.pmap_create ~name:"chk" in
  (* First-touch store under move-limit places the page local-writable on
     CPU 0's node. *)
  ops.Numa_vm.Pmap_intf.enter ~pmap ~cpu:0 ~vpage:0 ~lpage:0
    ~min_prot:(Prot.of_access Access.Store) ~max_prot:Prot.Read_write;
  ops.Numa_vm.Pmap_intf.write_slot ~pmap ~cpu:0 ~vpage:0 42;
  let check () =
    Invariant.check
      ~manager:(Pmap_manager.manager mgr)
      ~mmu:(Pmap_manager.mmu mgr) ~frames:(Pmap_manager.frames mgr) ~config ()
  in
  Alcotest.(check int) "coherent before the damage" 0
    (List.length (check ()).Invariant.violations);
  (* Yank the node without draining: a dirty owner is now stranded on
     offline memory — exactly what the checker exists to catch. *)
  Frame_table.set_node_online (Pmap_manager.frames mgr) ~node:0 false;
  let rep = check () in
  Alcotest.(check bool) "undrained offline detected" true
    (List.length rep.Invariant.violations > 0);
  Alcotest.(check bool) "result is an error" true (Result.is_error (Invariant.result rep))

(* --- satellite: malformed policy specs ---------------------------------- *)

let test_policy_spec_errors () =
  List.iter
    (fun s ->
      match System.policy_spec_of_string s with
      | Ok _ -> Alcotest.failf "policy spec %S should not parse" s
      | Error msg ->
          Alcotest.(check bool) (s ^ " has a message") true (String.length msg > 0))
    [
      "";
      "unknown";
      "move-limit:x";
      "move-limit:-1";
      "move-limit:4:2";
      "random:";
      "random:1.5";
      "random:x";
      "reconsider:4";
      "reconsider:x:50";
      "reconsider:4:0";
      "decay:3";
      "decay:3:0";
      "decay:x:50";
      "bandwidth-aware:x";
      "bandwidth-aware:-2";
      "migrate-threads:x";
      "all-global:1";
    ]

let test_policy_spec_ok () =
  List.iter
    (fun s ->
      match System.policy_spec_of_string s with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "policy spec %S rejected: %s" s msg)
    [
      "move-limit"; "move-limit:7"; "all-global"; "never-pin"; "random:0.5";
      "reconsider:4:50"; "decay"; "decay:3:50"; "bandwidth-aware";
      "bandwidth-aware:2"; "migrate-threads"; "migrate-threads:9";
    ]

(* --- satellite: pool exhaustion is a typed, observable outcome ----------- *)

let test_oom_is_typed_and_observed () =
  let open Numa_vm in
  let config = Config.ace ~n_cpus:2 ~global_pages:8 () in
  let policy = Numa_core.Policy.move_limit ~n_pages:config.Config.global_pages () in
  let pmap_mgr = Numa_core.Pmap_manager.create ~config ~policy () in
  let ops = Numa_core.Pmap_manager.ops pmap_mgr in
  let pool = Lpage_pool.create config ~ops in
  let task = Task.create ~ops ~id:0 ~name:"oom" in
  let hub = Numa_obs.Hub.create () in
  let oom_events = ref [] in
  Numa_obs.Hub.attach hub ~name:"test" (fun ~ts:_ ev ->
      match ev with
      | Numa_obs.Event.Out_of_memory { cpu; vpage } ->
          oom_events := (cpu, vpage) :: !oom_events
      | _ -> ());
  let ctx =
    {
      Fault.ops;
      config;
      sink = Numa_core.Pmap_manager.sink pmap_mgr;
      pool;
      pageout = None;
      obs = Some hub;
    }
  in
  let obj = Vm_object.create ~id:0 ~name:"big" ~size_pages:16 in
  let region =
    Vm_map.allocate task.Task.map ~npages:16 ~obj ~obj_offset:0
      ~max_prot:Prot.Read_write
      ~attr:
        (Region_attr.v ~name:"big" ~kind:Region_attr.Data
           ~sharing:Region_attr.Declared_private ())
      ()
  in
  let base = region.Vm_map.base_vpage in
  let rec touch vpage =
    if vpage >= base + 16 then Alcotest.fail "pool never ran out"
    else
      match Fault.handle ctx task ~cpu:0 ~vpage ~access:Access.Store with
      | Ok () -> touch (vpage + 1)
      | Error Fault.Out_of_memory -> vpage
      | Error e -> Alcotest.failf "unexpected fault error: %s" (Fault.error_to_string e)
  in
  let failed_at = touch base in
  Alcotest.(check int) "pool exhausted after 8 pages" (base + 8) failed_at;
  Alcotest.(check (list (pair int int))) "exactly one OOM event, at the failing access"
    [ (0, failed_at) ] !oom_events

let suite =
  [
    Alcotest.test_case "plan round-trips" `Quick test_plan_roundtrip;
    Alcotest.test_case "plan sorts by time" `Quick test_plan_sorts_by_time;
    Alcotest.test_case "empty plan" `Quick test_plan_empty;
    Alcotest.test_case "malformed plans rejected" `Quick test_plan_malformed;
    Alcotest.test_case "node-flap canonicalises" `Quick test_node_flap_canonicalises;
    Alcotest.test_case "plan validation bounds" `Quick test_plan_validate;
    Alcotest.test_case "injector schedule" `Quick test_injector_schedule;
    Alcotest.test_case "spurious shootdowns deterministic" `Quick
      test_injector_spurious_deterministic;
    Alcotest.test_case "pool offline/online" `Quick test_offline_online_pool;
    Alcotest.test_case "pool squeeze" `Quick test_squeeze_pool;
    Alcotest.test_case "bus link degrade" `Quick test_bus_degrade;
    Alcotest.test_case "node offline drains" `Quick test_node_offline_drains;
    Alcotest.test_case "node offline rehomes threads" `Quick
      test_node_offline_rehomes_threads;
    Alcotest.test_case "spurious shootdowns harmless" `Quick
      test_spurious_shootdowns_harmless;
    Alcotest.test_case "faulted run byte-identical" `Quick
      test_faulted_run_byte_identical;
    Alcotest.test_case "squeeze forces fallback + reclaim" `Quick
      test_squeeze_forces_fallback;
    Alcotest.test_case "clean run has no robustness section" `Quick
      test_clean_run_has_no_robustness_section;
    Alcotest.test_case "bad plan rejected by create" `Quick
      test_bad_plan_rejected_by_create;
    Alcotest.test_case "checker catches undrained offline" `Quick
      test_checker_catches_undrained_offline;
    Alcotest.test_case "malformed policy specs rejected" `Quick test_policy_spec_errors;
    Alcotest.test_case "valid policy specs accepted" `Quick test_policy_spec_ok;
    Alcotest.test_case "OOM is typed and observed" `Quick test_oom_is_typed_and_observed;
  ]
